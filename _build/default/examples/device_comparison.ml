(* Device comparison: run the same MD workload through every architecture
   model and print a Table-1-style comparison, including each device's
   time breakdown.

     dune exec examples/device_comparison.exe -- [atoms] [steps] *)

let () =
  let atoms =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 512
  in
  let steps =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 10
  in
  let system = Mdcore.Init.build ~n:atoms () in
  Printf.printf "Workload: %d atoms, %d velocity-Verlet steps\n\n" atoms steps;
  let profile = Mdports.Cell_port.profile_run ~steps system in
  let cell spes =
    Mdports.Cell_port.time_with profile
      { Mdports.Cell_port.default_config with n_spes = spes }
  in
  let results =
    [ Mdports.Opteron_port.run ~steps system;
      cell 1;
      cell 8;
      Mdports.Cell_port.time_ppe_only profile;
      Mdports.Gpu_port.run ~steps system;
      Mdports.Mta_port.run ~steps system;
      Mdports.Mta_port.run ~steps
        ~mode:Mdports.Mta_port.Partially_multithreaded system ]
  in
  let opteron_seconds = (List.hd results).Mdports.Run_result.seconds in
  let table =
    Sim_util.Table.create
      ~headers:
        [ "Device"; "Runtime"; "vs Opteron"; "Energy drift"; "Biggest cost" ]
  in
  List.iter
    (fun (r : Mdports.Run_result.t) ->
      let biggest =
        List.fold_left
          (fun (bk, bv) (k, v) -> if v > bv then (k, v) else (bk, bv))
          ("-", 0.0) r.Mdports.Run_result.breakdown
      in
      Sim_util.Table.add_row table
        [ r.Mdports.Run_result.device;
          Sim_util.Table.fmt_seconds r.Mdports.Run_result.seconds;
          Printf.sprintf "%.2fx"
            (opteron_seconds /. r.Mdports.Run_result.seconds);
          Printf.sprintf "%.1e" (Mdports.Run_result.energy_drift r);
          Printf.sprintf "%s (%.0f%%)" (fst biggest)
            (100.0 *. snd biggest /. r.Mdports.Run_result.seconds) ])
    results;
  print_endline (Sim_util.Table.render table);
  print_endline
    "\nNote: 'vs Opteron' > 1 means faster than the reference processor.\n\
     Single-precision devices (Cell, GPU) show larger energy drift than\n\
     the double-precision Opteron and MTA-2 — the paper's open issue."
