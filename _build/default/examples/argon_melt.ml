(* Argon melt: the classic bio/chem-adjacent MD scenario the paper's kernel
   class serves.  We simulate solid argon heated through its melting point,
   reporting observables in real units (the LJ parameters for argon are
   epsilon/kB = 119.8 K, sigma = 3.405 A, tau = 2.156 ps), and use the
   neighbour-list engine — the standard optimization the paper's kernel
   deliberately omits — to make the longer run cheap.

     dune exec examples/argon_melt.exe *)

let argon_epsilon_k = 119.8 (* K *)
let argon_sigma_angstrom = 3.405
let argon_tau_ps = 2.156

let kelvin t_reduced = t_reduced *. argon_epsilon_k
let picoseconds t_reduced = t_reduced *. argon_tau_ps

let () =
  (* Solid argon: FCC at reduced density 1.0, cold start (T* = 0.3 ~ 36 K;
     argon melts around T* ~ 0.7 at this density). *)
  let system =
    Mdcore.Init.build ~n:500 ~density:1.0 ~temperature:0.3
      ~params:{ Mdcore.Params.default with Mdcore.Params.dt = 0.002 }
      ()
  in
  let pairlist = Mdcore.Pairlist.create ~skin:0.4 system in
  let engine = Mdcore.Pairlist.engine pairlist in
  Printf.printf
    "Argon: %d atoms, box %.2f A, starting at %.0f K (solid FCC)\n\n"
    system.Mdcore.System.n
    (system.Mdcore.System.box *. argon_sigma_angstrom)
    (kelvin (Mdcore.Observables.temperature system));
  let table =
    Sim_util.Table.create
      ~headers:[ "t (ps)"; "target T (K)"; "actual T (K)"; "PE/atom (eps)" ]
  in
  let steps_per_stage = 50 in
  let stages = [ 0.3; 0.5; 0.7; 0.9; 1.1 ] in
  let elapsed = ref 0.0 in
  List.iter
    (fun target ->
      Mdcore.Thermostat.rescale system ~target;
      let last = ref None in
      let records =
        Mdcore.Verlet.run system ~engine ~steps:steps_per_stage ()
      in
      List.iter (fun r -> last := Some r) records;
      elapsed := !elapsed +. (float_of_int steps_per_stage *. 0.002);
      match !last with
      | Some r ->
        Sim_util.Table.add_row table
          [ Printf.sprintf "%.2f" (picoseconds !elapsed);
            Printf.sprintf "%.0f" (kelvin target);
            Printf.sprintf "%.0f" (kelvin r.Mdcore.Verlet.temperature);
            Printf.sprintf "%.3f"
              (r.Mdcore.Verlet.pe /. float_of_int system.Mdcore.System.n) ]
      | None -> ())
    stages;
  print_endline (Sim_util.Table.render table);
  (* Structural fingerprint: the radial distribution function after the
     melt.  A solid shows sharp, well-separated shells; a liquid keeps
     only a broad first peak. *)
  let bins = 16 in
  let rmax = system.Mdcore.System.box /. 2.0 in
  let g = Mdcore.Observables.radial_distribution system ~bins ~rmax in
  let centers = Mdcore.Observables.bin_centers ~bins ~rmax in
  Printf.printf "\ng(r) after the run (ASCII, each # = 0.25):\n";
  Array.iteri
    (fun b r ->
      if r > 0.7 then
        Printf.printf "  r=%4.2f A %5.2f %s\n" (r *. argon_sigma_angstrom)
          g.(b)
          (String.concat ""
             (List.init
                (min 40 (int_of_float (g.(b) /. 0.25)))
                (fun _ -> "#"))))
    centers;
  Printf.printf
    "\nneighbour list rebuilt %d times (%d stored pairs at the end)\n"
    (Mdcore.Pairlist.rebuild_count pairlist)
    (Mdcore.Pairlist.neighbour_count pairlist);
  print_endline
    "The PE/atom rise with temperature and the loss of the deep solid\n\
     minimum past ~85 K mark the melt; the same kernel the paper ports is\n\
     doing all force work here."
