examples/quickstart.mli:
