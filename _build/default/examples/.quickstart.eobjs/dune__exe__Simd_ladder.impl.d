examples/simd_ladder.ml: Array Isa List Mdcore Mdports Printf Sim_util Sys
