examples/sequence_alignment.ml: Gpustream List Mta Printf Seqalign Sim_util String
