examples/argon_melt.ml: Array List Mdcore Printf Sim_util String
