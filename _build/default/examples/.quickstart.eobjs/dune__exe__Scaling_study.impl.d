examples/scaling_study.ml: Array List Mdcore Mdports Printf Sim_util
