examples/brook_md.ml: Array Float Gpustream Mdcore Mdports Printf Sim_util Streamdsl Sys Vecmath
