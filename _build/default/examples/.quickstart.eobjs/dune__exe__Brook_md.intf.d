examples/brook_md.mli:
