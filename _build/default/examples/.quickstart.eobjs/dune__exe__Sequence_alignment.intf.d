examples/sequence_alignment.mli:
