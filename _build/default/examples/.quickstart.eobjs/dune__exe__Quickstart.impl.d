examples/quickstart.ml: List Mdcore Printf Sim_util Vecmath
