examples/device_comparison.ml: Array List Mdcore Mdports Printf Sim_util Sys
