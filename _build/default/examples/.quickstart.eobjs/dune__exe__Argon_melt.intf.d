examples/argon_melt.mli:
