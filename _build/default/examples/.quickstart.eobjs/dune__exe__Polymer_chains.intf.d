examples/polymer_chains.mli:
