examples/simd_ladder.mli:
