examples/polymer_chains.ml: Array List Mdcore Printf Sim_util
