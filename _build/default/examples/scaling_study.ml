(* Scaling study: how each device's runtime grows with the atom count —
   the Fig. 8/9 analysis plus fitted power-law exponents.  The MTA-2
   tracks the N^2 pair count almost exactly; the Opteron's exponent creeps
   above 2 once the arrays outgrow its L1.

     dune exec examples/scaling_study.exe *)

let sizes = [ 256; 512; 1024; 2048; 4096 ]

let () =
  let steps = 5 in
  let table =
    Sim_util.Table.create
      ~headers:[ "Atoms"; "Opteron (s)"; "MTA-2 (s)"; "GPU (s)" ]
  in
  let opt = ref [] and mta = ref [] and gpu = ref [] in
  List.iter
    (fun n ->
      let system = Mdcore.Init.build ~n () in
      let o = (Mdports.Opteron_port.run ~steps system).Mdports.Run_result.seconds in
      let m = (Mdports.Mta_port.run ~steps system).Mdports.Run_result.seconds in
      let g = (Mdports.Gpu_port.run ~steps system).Mdports.Run_result.seconds in
      opt := o :: !opt;
      mta := m :: !mta;
      gpu := g :: !gpu;
      Sim_util.Table.add_row table
        [ string_of_int n;
          Sim_util.Table.fmt_sig4 o;
          Sim_util.Table.fmt_sig4 m;
          Sim_util.Table.fmt_sig4 g ])
    sizes;
  print_endline (Sim_util.Table.render table);
  let x = Array.of_list (List.map float_of_int sizes) in
  let exponent series =
    Sim_util.Stats.power_law_exponent ~x
      ~y:(Array.of_list (List.rev series))
  in
  let k_opt = exponent !opt and k_mta = exponent !mta and k_gpu = exponent !gpu in
  Printf.printf "\nfitted runtime ~ N^k exponents over this sweep:\n";
  Printf.printf "  Opteron  k = %.3f\n" k_opt;
  Printf.printf "  MTA-2    k = %.3f\n" k_mta;
  Printf.printf "  GPU      k = %.3f\n" k_gpu;
  Printf.printf
    "\nReading them: the falling interaction fraction pulls every device \
     slightly\nbelow 2; the Opteron ends ABOVE the MTA-2 (%+.3f) because its \
     caches run\nout at the top of the sweep, while the MTA-2 tracks pure \
     flops — Fig. 9's\npoint.  The GPU sits lowest: its fixed per-step bus \
     costs are still\namortizing.\n"
    (k_opt -. k_mta)
