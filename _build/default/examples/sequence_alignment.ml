(* Sequence alignment on the emerging architectures — the other
   computational-biology workload the paper's related work surveys
   (Smith-Waterman on GPUs, full/empty-bit dynamic programming on the
   MTA-2).  A query is aligned against a small synthetic database on the
   scalar reference, the MTA-2 wavefront port and the GPU anti-diagonal
   port; all three must agree on every score.

     dune exec examples/sequence_alignment.exe *)

module Dna = Seqalign.Dna
module Reference = Seqalign.Reference
module Rng = Sim_util.Rng

let () =
  let rng = Rng.create 2007 in
  let query = Dna.random rng ~length:64 in
  (* Database: mutated copies (homologs) and unrelated sequences. *)
  let database =
    List.init 6 (fun k ->
        if k < 3 then
          ( Printf.sprintf "homolog-%d (%d%% mutated)" k (10 * (k + 1)),
            Dna.mutate (Rng.split rng)
              ~rate:(0.1 *. float_of_int (k + 1))
              query )
        else
          ( Printf.sprintf "unrelated-%d" (k - 3),
            Dna.random (Rng.split rng) ~length:64 ))
  in
  let mta_machine = Mta.Machine.create (Mta.Config.mta2 ()) in
  let gpu_machine =
    Gpustream.Machine.create Gpustream.Config.geforce_7900gtx
  in
  let gpu_aligner = Seqalign.Gpu_sw.create gpu_machine in
  let table =
    Sim_util.Table.create
      ~headers:[ "Subject"; "Score"; "MTA-2"; "GPU"; "Identity" ]
  in
  List.iter
    (fun (name, subject) ->
      let r = Reference.align query subject in
      let mta = Seqalign.Mta_sw.align ~machine:mta_machine query subject in
      let gpu = Seqalign.Gpu_sw.align gpu_aligner query subject in
      let tb = Reference.align_traceback query subject in
      let matches = ref 0 in
      String.iteri
        (fun k c -> if c = tb.Reference.aligned_b.[k] then incr matches)
        tb.Reference.aligned_a;
      let identity =
        if String.length tb.Reference.aligned_a = 0 then 0.0
        else
          100.0 *. float_of_int !matches
          /. float_of_int (String.length tb.Reference.aligned_a)
      in
      Sim_util.Table.add_row table
        [ name;
          string_of_int r.Reference.score;
          (if mta.Reference.score = r.Reference.score then "agrees"
           else "MISMATCH");
          (if gpu.Reference.score = r.Reference.score then "agrees"
           else "MISMATCH");
          Printf.sprintf "%.0f%%" identity ])
    database;
  Printf.printf "Smith-Waterman: 64-base query vs a 6-sequence database\n\n";
  print_endline (Sim_util.Table.render table);
  Printf.printf "\ndevice time, whole database scan:\n";
  Printf.printf "  MTA-2 (full/empty wavefront): %s\n"
    (Sim_util.Table.fmt_seconds (Mta.Machine.time mta_machine));
  let ledger = Gpustream.Machine.ledger gpu_machine in
  Printf.printf "  GPU (anti-diagonal passes):   %s (excl. one-time JIT)\n"
    (Sim_util.Table.fmt_seconds
       (Gpustream.Machine.time gpu_machine
       -. Gpustream.Ledger.get ledger Gpustream.Ledger.Setup));
  Printf.printf
    "  GPU breakdown: %.0f%% draw-call overhead — why the cited GPU \
     Smith-Waterman\n\
    \  papers batch thousands of database sequences per pass.\n"
    (100.0
    *. Gpustream.Ledger.fraction ledger Gpustream.Ledger.Dispatch);
  (* The batching remedy: one set of passes for the whole database. *)
  let batch_machine =
    Gpustream.Machine.create Gpustream.Config.geforce_7900gtx
  in
  let batch_aligner = Seqalign.Gpu_sw.create batch_machine in
  let batch =
    Seqalign.Gpu_sw.align_batch batch_aligner ~query (List.map snd database)
  in
  let agree =
    List.for_all2
      (fun (_, subject) (r : Reference.result) ->
        r.Reference.score = (Reference.align query subject).Reference.score)
      database batch
  in
  let batch_ledger = Gpustream.Machine.ledger batch_machine in
  Printf.printf
    "  batched GPU scan (all 6 subjects in one pass set): %s — scores %s\n"
    (Sim_util.Table.fmt_seconds
       (Gpustream.Machine.time batch_machine
       -. Gpustream.Ledger.get batch_ledger Gpustream.Ledger.Setup))
    (if agree then "all agree" else "MISMATCH");
  let best_name, best_seq =
    List.hd database
  in
  let tb = Reference.align_traceback query best_seq in
  Printf.printf "\nbest alignment (%s):\n  %s\n  %s\n" best_name
    tb.Reference.aligned_a tb.Reference.aligned_b
