(* Quickstart: build a small Lennard-Jones system, integrate it with the
   reference double-precision engine, and watch energy conservation.

     dune exec examples/quickstart.exe *)

let () =
  (* 256 atoms of LJ fluid at reduced density 0.8 and temperature 1.0. *)
  let system = Mdcore.Init.build ~n:256 ~density:0.8 ~temperature:1.0 () in
  Printf.printf "System: %d atoms, box %.3f sigma, density %.2f\n\n"
    system.Mdcore.System.n system.Mdcore.System.box
    (Mdcore.System.density system);
  let table =
    Sim_util.Table.create
      ~headers:[ "step"; "time"; "PE"; "KE"; "total"; "T" ]
  in
  let record (r : Mdcore.Verlet.step_record) =
    if r.Mdcore.Verlet.step mod 10 = 0 then
      Sim_util.Table.add_row table
        [ string_of_int r.Mdcore.Verlet.step;
          Printf.sprintf "%.3f" r.Mdcore.Verlet.sim_time;
          Printf.sprintf "%.3f" r.Mdcore.Verlet.pe;
          Printf.sprintf "%.3f" r.Mdcore.Verlet.ke;
          Printf.sprintf "%.4f" r.Mdcore.Verlet.total_energy;
          Printf.sprintf "%.3f" r.Mdcore.Verlet.temperature ]
  in
  let records =
    Mdcore.Verlet.run system ~engine:Mdcore.Forces.gather_engine ~steps:100
      ~record ()
  in
  print_endline (Sim_util.Table.render table);
  let first = List.hd records and last = List.nth records 100 in
  let drift =
    abs_float
      ((last.Mdcore.Verlet.total_energy -. first.Mdcore.Verlet.total_energy)
      /. first.Mdcore.Verlet.total_energy)
  in
  Printf.printf "\nrelative energy drift over 100 steps: %.2e\n" drift;
  Printf.printf "net momentum: %g (conserved)\n"
    (Vecmath.Vec3.norm (Mdcore.Observables.total_momentum system))
