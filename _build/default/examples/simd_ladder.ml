(* SIMD ladder: walk the paper's Fig. 5 optimization sequence on the SPE
   model and show where each rung's cycles go.

     dune exec examples/simd_ladder.exe -- [atoms] *)

module Variant = Mdports.Cell_variant
module Spe = Isa.Spe_pipe

let () =
  let atoms =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1024
  in
  let system = Mdcore.Init.build ~n:atoms () in
  let profile = Mdports.Cell_port.profile_run ~steps:10 system in
  Printf.printf
    "Fig. 5 ladder on one SPE, %d atoms x 10 steps (every rung keeps the \
     previous ones):\n\n"
    atoms;
  let table =
    Sim_util.Table.create
      ~headers:
        [ "Optimization"; "base tp"; "base cp"; "accel time"; "cumulative" ]
  in
  let original =
    Mdports.Cell_port.accel_seconds
      (Mdports.Cell_port.time_with profile
         { Mdports.Cell_port.default_config with
           n_spes = 1;
           variant = Variant.Original })
  in
  List.iter
    (fun v ->
      let base = Mdports.Kernels.spe_base v in
      let seconds =
        Mdports.Cell_port.accel_seconds
          (Mdports.Cell_port.time_with profile
             { Mdports.Cell_port.default_config with n_spes = 1; variant = v })
      in
      Sim_util.Table.add_row table
        [ Variant.name v;
          string_of_int (Spe.throughput_cycles base);
          string_of_int (Spe.critical_path_cycles base);
          Sim_util.Table.fmt_seconds seconds;
          Printf.sprintf "%.2fx" (original /. seconds) ])
    Variant.all;
  print_endline (Sim_util.Table.render table);
  print_endline
    "\n'base tp' is the dual-issue throughput bound and 'base cp' the\n\
     dependence critical path of one candidate-pair iteration; the SIMD\n\
     reflection rung collapses both, which is why the paper calls it\n\
     'a very large speedup'."
