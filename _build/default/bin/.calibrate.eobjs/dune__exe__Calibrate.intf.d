bin/calibrate.mli:
