bin/calibrate.ml: Isa List Mdports Printf
