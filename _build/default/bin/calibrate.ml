(* Developer tool: print the per-pair cycle figures that emerge from the
   kernel blocks and pipeline models, next to the ratios the paper's prose
   demands.  Used to sanity-check calibration; the authoritative checks
   are the harness shape tests. *)

let () =
  let hit_fraction = 0.025 in
  Printf.printf "SPE variants (hit fraction %.3f, overlap %.2f):\n"
    hit_fraction Mdports.Kernels.spe_overlap;
  List.iter
    (fun v ->
      let c = Mdports.Kernels.spe_pair_cycles v ~hit_fraction in
      Printf.printf "  %-32s %8.1f cycles/pair\n" (Mdports.Cell_variant.name v)
        c)
    Mdports.Cell_variant.all;
  let v0 =
    Mdports.Kernels.spe_pair_cycles Mdports.Cell_variant.Original ~hit_fraction
  in
  let cyc v = Mdports.Kernels.spe_pair_cycles v ~hit_fraction in
  Printf.printf "\n  ladder ratios (want: copysign small; reflect cum ~1.55x; \
                 direction ~1.21x; length ~1.15x; accel ~1.03x)\n";
  let prev = ref v0 in
  List.iter
    (fun v ->
      let c = cyc v in
      Printf.printf "  %-32s step %.3fx cumulative %.3fx\n"
        (Mdports.Cell_variant.name v) (!prev /. c) (v0 /. c);
      prev := c)
    Mdports.Cell_variant.all;
  let opteron_pair =
    Isa.Opteron_pipe.per_iteration_cycles Mdports.Kernels.opteron_base
      ~overlap:Mdports.Kernels.opteron_overlap
    +. hit_fraction
       *. Isa.Opteron_pipe.per_iteration_cycles Mdports.Kernels.opteron_hit
            ~overlap:Mdports.Kernels.opteron_overlap
  in
  Printf.printf "\nOpteron: %.1f cycles/pair -> %.3f s at 2048 atoms x 10 \
                 steps (paper ~4.5 s)\n"
    opteron_pair
    (2048.0 *. 2047.0 *. 10.0 *. opteron_pair /. 2.2e9);
  let spe_v5 = cyc Mdports.Cell_variant.Simd_acceleration in
  Printf.printf "SPE v5 : %.1f cycles/pair -> %.3f s on 1 SPE (want ~= \
                 Opteron)\n"
    spe_v5
    (2048.0 *. 2047.0 *. 10.0 *. spe_v5 /. 3.2e9);
  let gpu_cand = Isa.Gpu_pipe.cycles_per_fragment Mdports.Kernels.gpu_candidate in
  Printf.printf "GPU    : %.1f slots/candidate -> %.4f s shader time at 2048 \
                 x 10 steps (24 pipes, 650 MHz)\n"
    gpu_cand
    (2048.0 *. 2048.0 *. 10.0 *. gpu_cand /. 24.0 /. 650e6);
  let mta_instr = Isa.Block.length Mdports.Kernels.mta_pair_body in
  let mta_mem =
    Isa.Block.count_if Mdports.Kernels.mta_pair_body Isa.Op.is_memory
  in
  Printf.printf "MTA    : %d instrs (%d mem) per pair -> fully-MT %.2f s, \
                 serial %.2f s at 2048 x 10 steps\n"
    mta_instr mta_mem
    (2048.0 *. 2047.0 *. 10.0 *. float_of_int mta_instr /. 200e6)
    (2048.0 *. 2047.0 *. 10.0
     *. float_of_int (mta_instr + (mta_mem * 100))
     /. 200e6)

let () =
  Printf.printf "\nSPE block diagnostics (tp = throughput bound, cp = critical path):\n";
  List.iter
    (fun v ->
      let base = Mdports.Kernels.spe_base v in
      let hit = Mdports.Kernels.spe_hit v in
      Printf.printf
        "  %-32s base tp %3d cp %3d | hit tp %3d cp %3d\n"
        (Mdports.Cell_variant.name v)
        (Isa.Spe_pipe.throughput_cycles base)
        (Isa.Spe_pipe.critical_path_cycles base)
        (Isa.Spe_pipe.throughput_cycles hit)
        (Isa.Spe_pipe.critical_path_cycles hit))
    Mdports.Cell_variant.all;
  Printf.printf "Opteron base: res %.1f cp %d | hit res %.1f cp %d\n"
    (Isa.Opteron_pipe.resource_cycles Mdports.Kernels.opteron_base)
    (Isa.Opteron_pipe.critical_path_cycles Mdports.Kernels.opteron_base)
    (Isa.Opteron_pipe.resource_cycles Mdports.Kernels.opteron_hit)
    (Isa.Opteron_pipe.critical_path_cycles Mdports.Kernels.opteron_hit)
