bin/mdsim.mli:
