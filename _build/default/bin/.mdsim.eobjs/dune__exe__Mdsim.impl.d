bin/mdsim.ml: Arg Cmd Cmdliner Format Fun Gpustream Harness List Mdcore Mdports Mta Printf Seqalign Sim_util String Term
