(** Wall-clock decomposition for the GPU machine.  Fig. 7's small-N
    behaviour is entirely an Upload/Readback/Dispatch-vs-Shader story, so
    the split is kept explicit. *)

type category =
  | Setup      (** one-time JIT compilation / context creation *)
  | Upload     (** host-to-device transfers *)
  | Readback   (** device-to-host transfers *)
  | Dispatch   (** per-draw-call driver overhead *)
  | Shader     (** shader-core execution *)
  | Cpu        (** host-side work between dispatches *)

val category_name : category -> string
val all_categories : category list

include Sim_util.Ledger_f.S with type category := category
