lib/gpu/ledger.mli: Sim_util
