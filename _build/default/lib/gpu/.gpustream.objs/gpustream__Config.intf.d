lib/gpu/config.mli: Sim_util
