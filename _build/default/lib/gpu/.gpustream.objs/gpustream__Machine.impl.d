lib/gpu/machine.ml: Array Config Isa Ledger List Printf Sim_util Vecmath
