lib/gpu/machine.mli: Config Isa Ledger Vecmath
