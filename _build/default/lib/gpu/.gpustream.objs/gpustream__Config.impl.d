lib/gpu/config.ml: Sim_util
