lib/gpu/ledger.ml: Sim_util
