type t = {
  clock : Sim_util.Units.clock;
  pipes : int;
  vram_bytes : int;
  upload_bandwidth : float;
  readback_bandwidth : float;
  transfer_latency : float;
  dispatch_overhead : float;
  jit_seconds : float;
  max_inputs : int;
  max_outputs : int;
  max_texels : int;
  shader_efficiency : float;
}

let geforce_7900gtx =
  { clock = Sim_util.Units.clock ~hz:650e6 ~label:"G71 650 MHz";
    pipes = 24;
    vram_bytes = Sim_util.Units.mib 512;
    upload_bandwidth = Sim_util.Units.bytes_per_second ~gb_per_s:2.2;
    readback_bandwidth = Sim_util.Units.bytes_per_second ~gb_per_s:1.0;
    transfer_latency = 3.0e-4
    (* driver/bus round trip; a synchronous glReadPixels of that era
       stalls the pipeline for a fraction of a millisecond *);
    dispatch_overhead = 2.0e-4;
    jit_seconds = 0.25 (* "a fraction of a second ... occurs only once" *);
    max_inputs = 16;
    max_outputs = 4;
    max_texels = 4096 * 4096 (* 4096^2 2D textures, addressed linearly *);
    shader_efficiency = 0.32
    (* achieved fraction of peak fragment issue rate for GPGPU shaders on
       G7x-class parts (register pressure, texture stalls); calibrated
       against the paper's ~6x-at-2048-atoms result *) }

let geforce_8800_like =
  { geforce_7900gtx with
    clock = Sim_util.Units.clock ~hz:1.35e9 ~label:"G80 shader clock";
    pipes = 128;
    vram_bytes = Sim_util.Units.mib 768;
    upload_bandwidth = Sim_util.Units.bytes_per_second ~gb_per_s:3.0;
    readback_bandwidth = Sim_util.Units.bytes_per_second ~gb_per_s:1.5;
    shader_efficiency = 0.5 }

let validate t =
  let check name ok = if not ok then invalid_arg ("Gpustream.Config: bad " ^ name) in
  check "pipes" (t.pipes > 0);
  check "vram_bytes" (t.vram_bytes > 0);
  check "upload_bandwidth" (t.upload_bandwidth > 0.0);
  check "readback_bandwidth" (t.readback_bandwidth > 0.0);
  check "transfer_latency" (t.transfer_latency >= 0.0);
  check "dispatch_overhead" (t.dispatch_overhead >= 0.0);
  check "jit_seconds" (t.jit_seconds >= 0.0);
  check "max_inputs" (t.max_inputs > 0);
  check "max_outputs" (t.max_outputs > 0);
  check "max_texels" (t.max_texels > 0);
  check "shader_efficiency"
    (t.shader_efficiency > 0.0 && t.shader_efficiency <= 1.0)
