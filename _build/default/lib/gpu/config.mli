(** GPU device parameters (GeForce 7900GTX-class, the card in the paper).

    Hardware constants are public-record 2006 values: 650 MHz core clock,
    24 pixel pipelines, 512 MB of local memory.  Bus costs are the
    empirically dominant ones the paper discusses: "sending the position
    array and reading the acceleration array across the PCIe bus every time
    step ... make the GPU implementation take longer to run than the CPU
    version at very small numbers of atoms". *)

type t = {
  clock : Sim_util.Units.clock;   (** shader core clock *)
  pipes : int;                    (** parallel pixel pipelines *)
  vram_bytes : int;
  upload_bandwidth : float;       (** host->device, bytes/s *)
  readback_bandwidth : float;     (** device->host, slower on that era *)
  transfer_latency : float;       (** per-transfer driver/bus setup, s *)
  dispatch_overhead : float;      (** per-draw-call setup, s *)
  jit_seconds : float;            (** one-time shader JIT at startup *)
  max_inputs : int;               (** bindable input arrays per shader *)
  max_outputs : int;              (** bindable output arrays per shader *)
  max_texels : int;
      (** largest allocatable array: 2006 hardware capped textures at
          4096x4096 texels (we address them linearly) *)
  shader_efficiency : float;
      (** achieved fraction of peak shader issue rate, in (0, 1] —
          2006-era GPGPU code ran well below peak *)
}

val geforce_7900gtx : t

val geforce_8800_like : t
(** The "next generation" the paper gestures at ("the parallelism is
    increasing ... and that number is growing"): a unified-shader
    G80-class part — more, faster ALUs, better achieved efficiency
    (scalar ALUs remove the vectorization penalty), same bus story. *)

val validate : t -> unit
