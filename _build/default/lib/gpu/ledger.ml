module Category = struct
  type t = Setup | Upload | Readback | Dispatch | Shader | Cpu

  let all = [ Setup; Upload; Readback; Dispatch; Shader; Cpu ]

  let name = function
    | Setup -> "setup"
    | Upload -> "upload"
    | Readback -> "readback"
    | Dispatch -> "dispatch"
    | Shader -> "shader"
    | Cpu -> "cpu"
end

type category = Category.t = Setup | Upload | Readback | Dispatch | Shader | Cpu

include (
  Sim_util.Ledger_f.Make (Category) :
    Sim_util.Ledger_f.S with type category := category)

let category_name = Category.name
let all_categories = Category.all
