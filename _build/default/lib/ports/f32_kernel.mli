(** Shared binary32 arithmetic of the MD pair kernel.

    The Cell and GPU ports both run the force evaluation in single
    precision; this module centralizes the staged constants and the
    per-pair math so the two ports (and their tests) agree bit-for-bit on
    the arithmetic they model. *)

type params = {
  box : float;
  half_box : float;
  rc2 : float;
  sigma2 : float;
  eps24 : float;
  eps4 : float;
  inv_mass : float;
}
(** All fields are binary32 values (pre-rounded). *)

val of_system : Mdcore.System.t -> params

val min_image : params -> float -> float
(** Minimum-image displacement for a binary32 coordinate difference of
    wrapped positions (selects among the three unit-cell images, as the
    kernel's reflection search does). *)

val r2 : params -> dx:float -> dy:float -> dz:float -> float
(** Squared distance with binary32 rounding at every step. *)

val pair_terms : params -> float -> (float * float) option
(** [pair_terms p r2] is [Some (coeff, pe)] when the pair interacts
    ([0 < r2 < rc2]): [coeff] is the acceleration coefficient
    (force/r x 1/m) and [pe] the pair's PE contribution, both binary32.
    [None] outside the cutoff (or at zero distance — the GPU shader's
    self-exclusion test). *)
