(** Instruction-level descriptions of the MD inner loop on each target.

    Every port charges virtual time as

    {v pairs_examined * cycles(base block)
       + interacting_pairs * cycles(hit block) v}

    where the blocks below describe one candidate pair of the paper's
    kernel: load the neighbour's position, compute the per-axis
    displacement, search the neighbouring unit-cell images for the closest
    instance (the "27 neighboring unit cells" search, which is separable
    into 3 candidates per axis), form the direction vector, compute the
    length, and test the cutoff; the hit block adds the Lennard-Jones
    force, the acceleration accumulation and the PE accumulation.

    The Cell blocks vary along the {!Cell_variant} ladder — branchy scalar
    code, then [copysign], then progressively more quadword SIMD — and the
    Fig. 5 speedups are {e outputs} of {!Isa.Spe_pipe} on these blocks,
    not inputs. *)

(** {1 Cell SPE} *)

val spe_base : Cell_variant.t -> Isa.Block.t
val spe_hit : Cell_variant.t -> Isa.Block.t
val spe_row_overhead : Isa.Block.t
(** Per-i-atom loop bookkeeping (loading atom i, storing its acceleration,
    loop control). *)

val spe_overlap : float
(** Iteration-overlap factor for {!Isa.Spe_pipe.loop_cycles} (how well
    spu-gcc software-pipelines the loop). *)

val spe_pair_cycles : Cell_variant.t -> hit_fraction:float -> float
(** Expected per-pair cycles at a given interacting fraction (for
    reports). *)

val spe_base_dp : Isa.Block.t
(** The fully-optimized kernel rewritten in double precision — the
    paper's Section 6 open issue ("the availability and support for
    double-precision floating-point calculations").  The SPE's DP unit is
    2-wide and unpipelined, so the block uses twice the vector operations
    and every one stalls issue; the resulting slowdown is an output of
    {!Isa.Spe_pipe}. *)

val spe_hit_dp : Isa.Block.t

(** {1 Opteron reference} *)

val opteron_base : Isa.Block.t
val opteron_hit : Isa.Block.t
val opteron_row_overhead : Isa.Block.t
val opteron_integration : Isa.Block.t
(** Per-atom cost of one whole integration step outside the force loop
    (two half-kicks, drift, wrap, energy accumulation). *)

val ppe_stage_block : Isa.Block.t
(** Per-atom double→float staging conversion on the PPE (three loads,
    three converts, three stores) — paid once before and once after every
    SPE offload. *)

val opteron_overlap : float

(** {1 GPU shader} *)

val gpu_candidate : Isa.Block.t
(** Per candidate neighbour, inside one fragment.  Predicated: the force
    math executes for every candidate and is masked, as on
    non-branching 2006 fragment hardware — there is no separate hit
    block. *)

val gpu_fragment_prologue : Isa.Block.t
(** Per-fragment fixed work (computing the atom's own position fetch,
    initializing accumulators, writing the output). *)

(** {1 MTA-2} *)

val mta_pair_body : Isa.Block.t
(** Per candidate pair, double precision.  MTA conditionals compile to
    cheap predicated operations, and memory references dominate. *)

val mta_hit_body : Isa.Block.t
val mta_integration_body : Isa.Block.t
(** Per atom, one integration step (steps 1, 3, 4, 5 of the kernel). *)
