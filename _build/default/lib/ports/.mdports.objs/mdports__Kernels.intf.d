lib/ports/kernels.mli: Cell_variant Isa
