lib/ports/f32_kernel.mli: Mdcore
