lib/ports/gpu_port.ml: Array F32_kernel Gpustream Isa Kernels List Mdcore Option Printf Run_result Sim_util Vecmath
