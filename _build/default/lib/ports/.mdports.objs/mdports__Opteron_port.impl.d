lib/ports/opteron_port.ml: Array Isa Kernels Mdcore Memsim Run_result Sim_util
