lib/ports/gpu_port.mli: Gpustream Mdcore Run_result
