lib/ports/cell_variant.ml:
