lib/ports/mta_port.mli: Mdcore Mta Run_result
