lib/ports/mta_port.ml: Kernels List Mdcore Mta Printf Run_result
