lib/ports/kernels.ml: Cell_variant Isa List
