lib/ports/cell_port.mli: Cell_variant Cellbe Mdcore Run_result
