lib/ports/run_result.mli: Format Mdcore
