lib/ports/cell_variant.mli:
