lib/ports/run_result.ml: Format List Mdcore
