lib/ports/f32_kernel.ml: Mdcore Sim_util
