lib/ports/cell_port.ml: Array Cell_variant Cellbe F32_kernel Kernels List Mdcore Printf Run_result Sim_util
