lib/ports/opteron_port.mli: Mdcore Memsim Run_result Sim_util
