(** The cumulative SIMD-optimization ladder of the paper's Fig. 5.

    Each rung keeps all previous optimizations and adds one more, exactly
    as the figure's bars are labelled. *)

type t =
  | Original            (** scalar port, branchy 27-cell reflection search *)
  | Copysign            (** "replace [if] with [copysign]" *)
  | Simd_reflection     (** "SIMD unit cell reflection": all three axes
                            searched simultaneously *)
  | Simd_direction      (** "SIMD direction vector" *)
  | Simd_length         (** "SIMD length calculation" *)
  | Simd_acceleration   (** "SIMD acceleration" (hit path only) *)

val all : t list
(** In ladder order. *)

val name : t -> string
(** The paper's bar label. *)

val rank : t -> int
(** Position in the ladder, [Original] = 0. *)

val includes : t -> t -> bool
(** [includes v rung] — does variant [v] contain optimization [rung]?
    (Cumulative ladder: true iff [rank rung <= rank v].) *)
