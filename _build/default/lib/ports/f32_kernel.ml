module F32 = Sim_util.F32

type params = {
  box : float;
  half_box : float;
  rc2 : float;
  sigma2 : float;
  eps24 : float;
  eps4 : float;
  inv_mass : float;
}

let of_system (s : Mdcore.System.t) =
  let p = s.Mdcore.System.params in
  let box = F32.round s.Mdcore.System.box in
  { box;
    half_box = F32.mul 0.5 box;
    rc2 = F32.round (Mdcore.Params.cutoff2 p);
    sigma2 = F32.round (p.Mdcore.Params.sigma *. p.Mdcore.Params.sigma);
    eps24 = F32.round (24.0 *. p.Mdcore.Params.epsilon);
    eps4 = F32.round (4.0 *. p.Mdcore.Params.epsilon);
    inv_mass = F32.round (1.0 /. p.Mdcore.Params.mass) }

let min_image p dx =
  if dx > p.half_box then F32.sub dx p.box
  else if dx < -.p.half_box then F32.add dx p.box
  else dx

let r2 _p ~dx ~dy ~dz =
  F32.add (F32.add (F32.mul dx dx) (F32.mul dy dy)) (F32.mul dz dz)

let pair_terms p r2 =
  if r2 < p.rc2 && r2 > 0.0 then begin
    let s2 = F32.div p.sigma2 r2 in
    let s6 = F32.mul (F32.mul s2 s2) s2 in
    let s12 = F32.mul s6 s6 in
    let tm = F32.sub (F32.add s12 s12) s6 in
    let coeff = F32.mul (F32.div (F32.mul p.eps24 tm) r2) p.inv_mass in
    let pe = F32.mul p.eps4 (F32.sub s12 s6) in
    Some (coeff, pe)
  end
  else None
