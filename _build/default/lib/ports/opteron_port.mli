(** The reference implementation: the paper's 2.2 GHz Opteron run.

    Physics is the double-precision gather kernel from
    {!Mdcore.Forces}; virtual time combines

    - pipeline cycles: per-pair base + per-interaction hit blocks from
      {!Kernels} through {!Isa.Opteron_pipe}, plus per-atom row and
      integration overheads, and
    - memory-hierarchy stalls: the inner loop's address stream replayed
      through {!Memsim.Hierarchy} (a 64 KB L1 / 1 MB L2 Opteron), charging
      the cycles in excess of an L1 hit.  Because the j-sweep is identical
      for every i, the sweep is replayed for a sample of rows per step and
      scaled — exact for this access pattern, and cheap.

    This cache term is what bends Fig. 9's Opteron curve above the pure
    N² line once the position arrays outgrow the L1. *)

type config = {
  clock : Sim_util.Units.clock;
  hierarchy : Memsim.Hierarchy.config;
  sample_rows : int;  (** i-rows replayed through the cache model per step *)
}

val default_config : config

val run : ?steps:int -> ?config:config -> Mdcore.System.t -> Run_result.t
(** Simulate [steps] (default 10) velocity-Verlet steps on a copy of the
    system.  The breakdown separates ["compute"] and ["memory"] seconds. *)

val seconds_for : ?steps:int -> ?config:config -> n:int -> unit -> float
(** Convenience for sweeps: build a default system of [n] atoms
    ({!Mdcore.Init.build}) and return the virtual runtime. *)

val memory_excess_cycles_per_pair : ?config:config -> n:int -> unit -> float
(** The measured average memory-stall cycles per pair at a given system
    size (diagnostic for the Fig. 9 analysis). *)

val run_pairlist : ?steps:int -> ?config:config -> ?skin:float ->
  Mdcore.System.t -> Run_result.t
(** The ablation the paper declines to run (Section 3.4): the same
    Opteron with a Verlet neighbour list.  Per step the inner loop visits
    only the stored neighbours; a full O(N^2) scan is charged on the
    steps where the list is rebuilt.  Quantifies how much the "no
    cache-friendly optimizations" methodology costs the baseline. *)
