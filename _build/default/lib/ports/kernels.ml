module Block = Isa.Block
module Op = Isa.Op
module B = Isa.Block.Builder

(* ------------------------------------------------------------------ *)
(* Shared shapes                                                      *)
(* ------------------------------------------------------------------ *)

(* Scalar reflection search for one axis: three candidate images
   (dx - box, dx, dx + box), keeping the one with the smallest magnitude.

   [`Branchy flush] models the original code's
   [if (fabs(cand) < fabs(best))]: compare, conditional branch around the
   update, and the update move.  Compilers already if-convert most such
   diamonds, so only the occasional unconverted one flushes the
   unpredicted SPE pipeline — [flush] charges one 18-cycle flush for the
   whole axis group (making the copysign rung the "small speedup" the
   paper reports).  [`Branchless] is the paper's copysign rewrite:
   sign-transfer + compare + two selects, no control flow. *)
let scalar_axis_search b ~style ~dx =
  let best = ref dx in
  List.iteri
    (fun k _shift ->
      let cand = B.push b Op.Fadd ~deps:[ dx ] in
      let mag = B.push b Op.Fcopysign ~deps:[ cand ] (* fabs *) in
      let cmp = B.push b Op.Fcmp ~deps:[ mag; !best ] in
      match style with
      | `Branchy flush ->
        let br =
          B.push b
            (if flush && k = 1 then Op.Branch_miss else Op.Branch_not_taken)
            ~deps:[ cmp ]
        in
        best := B.push b Op.Ialu ~deps:[ br; cand ]
      | `Branchless ->
        let m = B.push b Op.Fsel ~deps:[ cmp; mag; !best ] in
        ignore m;
        best := B.push b Op.Fsel ~deps:[ cmp; cand; !best ])
    [ -1; 0; 1 ];
  !best

(* Inner-loop control: counter increment, bound test, hinted backward
   branch, and the address arithmetic of walking the position array. *)
let loop_control b =
  let i = B.push b Op.Ialu ~deps:[] in
  let _addr = B.push b Op.Ialu ~deps:[ i ] in
  let _cmp = B.push b Op.Ialu ~deps:[ i ] in
  let _br = B.push b Op.Branch_taken ~deps:[] in
  ()

(* Vectorized reflection search: the three axes ride in one quadword, so
   the three shift candidates are three vector iterations. *)
let simd_reflection_search b ~dxv =
  let best = ref dxv in
  List.iter
    (fun _shift ->
      let cand = B.push b Op.Fadd ~deps:[ dxv ] in
      let mag = B.push b Op.Fcopysign ~deps:[ cand ] in
      let cmp = B.push b Op.Fcmp ~deps:[ mag; !best ] in
      best := B.push b Op.Fsel ~deps:[ cmp; cand; !best ])
    [ -1; 0; 1 ];
  !best

(* ------------------------------------------------------------------ *)
(* Cell SPE blocks                                                    *)
(* ------------------------------------------------------------------ *)

(* No cross-iteration pipelining: the paper notes that the 4.x GNU
   toolchain it used is "currently unable to perform significant code
   optimization" on the SPE, so each pair's dependence chain is fully
   exposed. *)
let spe_overlap = 0.0

let spe_base variant =
  let open Cell_variant in
  let simd_reflect = includes variant Simd_reflection in
  let simd_direction = includes variant Simd_direction in
  let simd_length = includes variant Simd_length in
  let branchy = not (includes variant Copysign) in
  let b = B.create () in
  if simd_reflect then begin
    (* One quadword load brings x,y,z of the neighbour. *)
    let posj = B.push b Op.Load ~deps:[] in
    let dxv = B.push b Op.Fadd ~deps:[ posj ] (* xi - xj, vector *) in
    let bestv = simd_reflection_search b ~dxv in
    let dir =
      if simd_direction then bestv
      else begin
        (* Pre-SIMD-direction code keeps the direction vector in a
           dir[3] array: extract each lane, store it to the local store,
           and reload for the downstream scalar math. *)
        let l0 = B.push b Op.Shuffle ~deps:[ bestv ] in
        let l1 = B.push b Op.Shuffle ~deps:[ bestv ] in
        let l2 = B.push b Op.Shuffle ~deps:[ bestv ] in
        let s0 = B.push b Op.Store ~deps:[ l0 ] in
        let s1 = B.push b Op.Store ~deps:[ l1 ] in
        let s2 = B.push b Op.Store ~deps:[ l2 ] in
        let r0 = B.push b Op.Load ~deps:[ s0 ] in
        let r1 = B.push b Op.Load ~deps:[ s1 ] in
        let r2 = B.push b Op.Load ~deps:[ s2 ] in
        B.push b Op.Shuffle ~deps:[ r0; r1; r2 ]
      end
    in
    let r =
      if simd_length then begin
        (* vector multiply + two shuffle/add reduction steps + rsqrt *)
        let sq = B.push b Op.Fmul ~deps:[ dir; dir ] in
        let sh1 = B.push b Op.Shuffle ~deps:[ sq ] in
        let s1 = B.push b Op.Fadd ~deps:[ sq; sh1 ] in
        let sh2 = B.push b Op.Shuffle ~deps:[ s1 ] in
        let r2 = B.push b Op.Fadd ~deps:[ s1; sh2 ] in
        let est = B.push b Op.Frsqrt_est ~deps:[ r2 ] in
        let nr = B.push b Op.Fmadd ~deps:[ est; r2 ] in
        B.push b Op.Fmul ~deps:[ nr; r2 ] (* r = r2 * rsqrt(r2) *)
      end
      else begin
        (* scalar: extract three lanes, three muls, two adds, sqrt
           expansion (estimate + Newton step + mul) *)
        let l0 = B.push b Op.Shuffle ~deps:[ dir ] in
        let l1 = B.push b Op.Shuffle ~deps:[ dir ] in
        let l2 = B.push b Op.Shuffle ~deps:[ dir ] in
        let m0 = B.push b Op.Fmul ~deps:[ l0; l0 ] in
        let m1 = B.push b Op.Fmul ~deps:[ l1; l1 ] in
        let m2 = B.push b Op.Fmul ~deps:[ l2; l2 ] in
        let s1 = B.push b Op.Fadd ~deps:[ m0; m1 ] in
        let r2 = B.push b Op.Fadd ~deps:[ s1; m2 ] in
        let est = B.push b Op.Frsqrt_est ~deps:[ r2 ] in
        let nr1 = B.push b Op.Fmul ~deps:[ est; est ] in
        let nr2 = B.push b Op.Fmadd ~deps:[ nr1; r2 ] in
        let nr3 = B.push b Op.Fmul ~deps:[ nr2; est ] in
        B.push b Op.Fmul ~deps:[ nr3; r2 ]
      end
    in
    let cmp = B.push b Op.Fcmp ~deps:[ r ] in
    let _ = B.push b Op.Branch_not_taken ~deps:[ cmp ] in
    loop_control b;
    B.finish b
  end
  else begin
    (* Fully scalar variants (original / copysign): three separate loads,
       three axis searches, scalar direction, scalar length.  A scalar
       float on the SPU must be rotated into the register's preferred
       slot after every load — one of the reasons scalar code is so poor
       on this architecture. *)
    let xj0 = B.push b Op.Load ~deps:[] in
    let yj0 = B.push b Op.Load ~deps:[] in
    let zj0 = B.push b Op.Load ~deps:[] in
    let xj = B.push b Op.Shuffle ~deps:[ xj0 ] in
    let yj = B.push b Op.Shuffle ~deps:[ yj0 ] in
    let zj = B.push b Op.Shuffle ~deps:[ zj0 ] in
    let dx = B.push b Op.Fadd ~deps:[ xj ] in
    let dy = B.push b Op.Fadd ~deps:[ yj ] in
    let dz = B.push b Op.Fadd ~deps:[ zj ] in
    let style_first = if branchy then `Branchy true else `Branchless in
    let style_rest = if branchy then `Branchy false else `Branchless in
    let bx = scalar_axis_search b ~style:style_first ~dx in
    let by = scalar_axis_search b ~style:style_rest ~dx:dy in
    let bz = scalar_axis_search b ~style:style_rest ~dx:dz in
    let m0 = B.push b Op.Fmul ~deps:[ bx; bx ] in
    let m1 = B.push b Op.Fmul ~deps:[ by; by ] in
    let m2 = B.push b Op.Fmul ~deps:[ bz; bz ] in
    let s1 = B.push b Op.Fadd ~deps:[ m0; m1 ] in
    let r2 = B.push b Op.Fadd ~deps:[ s1; m2 ] in
    let est = B.push b Op.Frsqrt_est ~deps:[ r2 ] in
    let nr1 = B.push b Op.Fmul ~deps:[ est; est ] in
    let nr2 = B.push b Op.Fmadd ~deps:[ nr1; r2 ] in
    let nr3 = B.push b Op.Fmul ~deps:[ nr2; est ] in
    let r = B.push b Op.Fmul ~deps:[ nr3; r2 ] in
    let cmp = B.push b Op.Fcmp ~deps:[ r ] in
    let _ = B.push b Op.Branch_not_taken ~deps:[ cmp ] in
    loop_control b;
    B.finish b
  end

let spe_hit variant =
  let simd_accel = Cell_variant.includes variant Simd_acceleration in
  let b = B.create () in
  (* Taken branch into the interaction path: unhinted on the SPE. *)
  let br = B.push b Op.Branch_miss ~deps:[] in
  (* s2 = sigma^2 / r2 via reciprocal estimate + Newton step *)
  let re = B.push b Op.Frecip_est ~deps:[ br ] in
  let nr = B.push b Op.Fmadd ~deps:[ re ] in
  let s2 = B.push b Op.Fmul ~deps:[ nr ] in
  let s4 = B.push b Op.Fmul ~deps:[ s2; s2 ] in
  let s6 = B.push b Op.Fmul ~deps:[ s4; s2 ] in
  let s12 = B.push b Op.Fmul ~deps:[ s6; s6 ] in
  let t = B.push b Op.Fmadd ~deps:[ s12; s6 ] in
  let coeff = B.push b Op.Fmul ~deps:[ t; nr ] in
  if simd_accel then begin
    (* splat the coefficient, one vector madd into the register-resident
       accumulator, one vector madd folds the PE contribution *)
    let spl = B.push b Op.Shuffle ~deps:[ coeff ] in
    let _acc = B.push b Op.Fmadd ~deps:[ spl ] in
    let _pe = B.push b Op.Fmadd ~deps:[ t ] in
    B.finish b
  end
  else begin
    (* Scalar conversion into an acc[3] array: per component, extract the
       direction lane, multiply by the coefficient, and read-modify-write
       the local-store accumulator — on the SPU an RMW of one float is a
       load, two rotates, an add, a merge shuffle and a store. *)
    List.iter
      (fun _axis ->
        let lane = B.push b Op.Shuffle ~deps:[ br ] in
        let m = B.push b Op.Fmul ~deps:[ coeff; lane ] in
        let old0 = B.push b Op.Load ~deps:[ br ] in
        let old = B.push b Op.Shuffle ~deps:[ old0 ] in
        let sum = B.push b Op.Fadd ~deps:[ m; old ] in
        let merged = B.push b Op.Shuffle ~deps:[ sum; old0 ] in
        let _st = B.push b Op.Store ~deps:[ merged ] in
        ())
      [ 0; 1; 2 ];
    let pe_old0 = B.push b Op.Load ~deps:[ br ] in
    let pe_old = B.push b Op.Shuffle ~deps:[ pe_old0 ] in
    let pe_new = B.push b Op.Fadd ~deps:[ t; pe_old ] in
    let pe_merged = B.push b Op.Shuffle ~deps:[ pe_new; pe_old0 ] in
    let _ = B.push b Op.Store ~deps:[ pe_merged ] in
    B.finish b
  end

let spe_row_overhead =
  let b = B.create () in
  let xi = B.push b Op.Load ~deps:[] in
  let _ = B.push b Op.Shuffle ~deps:[ xi ] (* splat own position *) in
  let _ = B.push b Op.Ialu ~deps:[] (* loop counter *) in
  let _ = B.push b Op.Store ~deps:[] (* write accumulated acceleration *) in
  let _ = B.push b Op.Store ~deps:[] (* write PE contribution *) in
  let _ = B.push b Op.Branch_taken ~deps:[] (* hinted backward branch *) in
  B.finish b

(* Double-precision rewrite of the fully-SIMDized kernel: the SPE's DP
   registers hold two doubles, so three-axis work needs two vector
   operations where the single-precision code needs one, and there are no
   DP estimate instructions — divides and square roots are full microcoded
   sequences. *)
let spe_base_dp =
  let b = B.create () in
  let posj_lo = B.push b Op.Load ~deps:[] in
  let posj_hi = B.push b Op.Load ~deps:[] in
  let dx_lo = B.push b Op.Fadd_dp ~deps:[ posj_lo ] in
  let dx_hi = B.push b Op.Fadd_dp ~deps:[ posj_hi ] in
  let best_lo = ref dx_lo and best_hi = ref dx_hi in
  List.iter
    (fun _shift ->
      let cand_lo = B.push b Op.Fadd_dp ~deps:[ dx_lo ] in
      let cand_hi = B.push b Op.Fadd_dp ~deps:[ dx_hi ] in
      let mag_lo = B.push b Op.Fcopysign ~deps:[ cand_lo ] in
      let mag_hi = B.push b Op.Fcopysign ~deps:[ cand_hi ] in
      let cmp_lo = B.push b Op.Fcmp ~deps:[ mag_lo; !best_lo ] in
      let cmp_hi = B.push b Op.Fcmp ~deps:[ mag_hi; !best_hi ] in
      best_lo := B.push b Op.Fsel ~deps:[ cmp_lo; cand_lo; !best_lo ];
      best_hi := B.push b Op.Fsel ~deps:[ cmp_hi; cand_hi; !best_hi ])
    [ -1; 0; 1 ];
  let sq_lo = B.push b Op.Fmul_dp ~deps:[ !best_lo; !best_lo ] in
  let sq_hi = B.push b Op.Fmul_dp ~deps:[ !best_hi; !best_hi ] in
  let sh = B.push b Op.Shuffle ~deps:[ sq_lo ] in
  let s1 = B.push b Op.Fadd_dp ~deps:[ sq_lo; sh ] in
  let r2 = B.push b Op.Fadd_dp ~deps:[ s1; sq_hi ] in
  let r = B.push b Op.Fsqrt_dp ~deps:[ r2 ] in
  let cmp = B.push b Op.Fcmp ~deps:[ r ] in
  let _ = B.push b Op.Branch_not_taken ~deps:[ cmp ] in
  loop_control b;
  B.finish b

let spe_hit_dp =
  let b = B.create () in
  let br = B.push b Op.Branch_miss ~deps:[] in
  let inv = B.push b Op.Fdiv_dp ~deps:[ br ] in
  let s4 = B.push b Op.Fmul_dp ~deps:[ inv; inv ] in
  let s6 = B.push b Op.Fmul_dp ~deps:[ s4; inv ] in
  let s12 = B.push b Op.Fmul_dp ~deps:[ s6; s6 ] in
  let t = B.push b Op.Fmadd_dp ~deps:[ s12; s6 ] in
  let coeff = B.push b Op.Fmul_dp ~deps:[ t; inv ] in
  let spl = B.push b Op.Shuffle ~deps:[ coeff ] in
  let _acc_lo = B.push b Op.Fmadd_dp ~deps:[ spl ] in
  let _acc_hi = B.push b Op.Fmadd_dp ~deps:[ spl ] in
  let _pe = B.push b Op.Fmadd_dp ~deps:[ t ] in
  B.finish b

let expected_cycles base hit ~hit_fraction ~overlap ~pipe_per_iter =
  ignore pipe_per_iter;
  Isa.Spe_pipe.per_iteration_cycles base ~overlap
  +. (hit_fraction *. Isa.Spe_pipe.per_iteration_cycles hit ~overlap)

let spe_pair_cycles variant ~hit_fraction =
  expected_cycles (spe_base variant) (spe_hit variant) ~hit_fraction
    ~overlap:spe_overlap ~pipe_per_iter:()

(* ------------------------------------------------------------------ *)
(* Opteron blocks (double precision, branchy, scalar SSE2)            *)
(* ------------------------------------------------------------------ *)

let opteron_overlap = 0.85

let opteron_base =
  let b = B.create () in
  let xj = B.push b Op.Load ~deps:[] in
  let yj = B.push b Op.Load ~deps:[] in
  let zj = B.push b Op.Load ~deps:[] in
  let dx = B.push b Op.Fadd ~deps:[ xj ] in
  let dy = B.push b Op.Fadd ~deps:[ yj ] in
  let dz = B.push b Op.Fadd ~deps:[ zj ] in
  let bx = scalar_axis_search b ~style:(`Branchy true) ~dx in
  let by = scalar_axis_search b ~style:(`Branchy true) ~dx:dy in
  let bz = scalar_axis_search b ~style:(`Branchy true) ~dx:dz in
  let m0 = B.push b Op.Fmul ~deps:[ bx; bx ] in
  let m1 = B.push b Op.Fmul ~deps:[ by; by ] in
  let m2 = B.push b Op.Fmul ~deps:[ bz; bz ] in
  let s1 = B.push b Op.Fadd ~deps:[ m0; m1 ] in
  let r2 = B.push b Op.Fadd ~deps:[ s1; m2 ] in
  (* the reference kernel compares true distances, so: one sqrt per pair *)
  let r = B.push b Op.Fsqrt ~deps:[ r2 ] in
  let cmp = B.push b Op.Fcmp ~deps:[ r ] in
  let _ = B.push b Op.Branch_not_taken ~deps:[ cmp ] in
  loop_control b;
  B.finish b

let opteron_hit =
  let b = B.create () in
  let br = B.push b Op.Branch_miss ~deps:[] in
  let inv = B.push b Op.Fdiv ~deps:[ br ] (* sigma^2 / r2 *) in
  let s4 = B.push b Op.Fmul ~deps:[ inv; inv ] in
  let s6 = B.push b Op.Fmul ~deps:[ s4; inv ] in
  let s12 = B.push b Op.Fmul ~deps:[ s6; s6 ] in
  let t = B.push b Op.Fadd ~deps:[ s12; s6 ] in
  let coeff = B.push b Op.Fdiv ~deps:[ t ] (* ... / r2 *) in
  let cm = B.push b Op.Fmul ~deps:[ coeff ] in
  let _ax = B.push b Op.Fmadd ~deps:[ cm ] in
  let _ay = B.push b Op.Fmadd ~deps:[ cm ] in
  let _az = B.push b Op.Fmadd ~deps:[ cm ] in
  let _pe = B.push b Op.Fadd ~deps:[ t ] in
  B.finish b

let opteron_row_overhead =
  let b = B.create () in
  let _ = B.push b Op.Load ~deps:[] in
  let _ = B.push b Op.Load ~deps:[] in
  let _ = B.push b Op.Load ~deps:[] in
  let _ = B.push b Op.Ialu ~deps:[] in
  let _ = B.push b Op.Store ~deps:[] in
  let _ = B.push b Op.Store ~deps:[] in
  let _ = B.push b Op.Store ~deps:[] in
  let _ = B.push b Op.Branch_taken ~deps:[] in
  B.finish b

let opteron_integration =
  (* Two half-kicks, a drift with wrap, and energy accumulation per atom:
     ~9 loads, 9 stores, ~20 flops, a few conversions for the wrap. *)
  let b = B.create () in
  let loads = B.push_n b Op.Load ~n:9 ~deps:[] in
  let kicks =
    List.concat_map (fun l -> [ B.push b Op.Fmadd ~deps:[ l ] ]) loads
  in
  List.iter (fun k -> ignore (B.push b Op.Fmadd ~deps:[ k ])) kicks;
  let _ = B.push_n b Op.Fconvert ~n:3 ~deps:[] (* wrap rounding *) in
  let _ = B.push_n b Op.Fmul ~n:3 ~deps:[] in
  let _ = B.push_n b Op.Fadd ~n:4 ~deps:[] (* KE accumulation *) in
  let _ = B.push_n b Op.Store ~n:9 ~deps:[] in
  B.finish b

let ppe_stage_block =
  let b = B.create () in
  let loads = B.push_n b Op.Load ~n:3 ~deps:[] in
  let convs =
    List.map (fun l -> B.push b Op.Fconvert ~deps:[ l ]) loads
  in
  List.iter (fun c -> ignore (B.push b Op.Store ~deps:[ c ])) convs;
  B.finish b

(* ------------------------------------------------------------------ *)
(* GPU shader blocks                                                  *)
(* ------------------------------------------------------------------ *)

let gpu_candidate =
  let b = B.create () in
  let posj = B.push b Op.Load ~deps:[] (* texture fetch, float4 *) in
  let dxv = B.push b Op.Fadd ~deps:[ posj ] in
  let bestv = simd_reflection_search b ~dxv in
  (* r2 via dot: one mul + two adds on swizzles *)
  let sq = B.push b Op.Fmul ~deps:[ bestv; bestv ] in
  let s1 = B.push b Op.Fadd ~deps:[ sq ] in
  let r2 = B.push b Op.Fadd ~deps:[ s1 ] in
  (* cutoff and self-interaction masks *)
  let m1 = B.push b Op.Fcmp ~deps:[ r2 ] in
  let m2 = B.push b Op.Fcmp ~deps:[ r2 ] in
  let mask = B.push b Op.Ialu ~deps:[ m1; m2 ] in
  (* predicated force math: executes for every candidate *)
  let rcp = B.push b Op.Frecip_est ~deps:[ r2 ] in
  let s2 = B.push b Op.Fmul ~deps:[ rcp ] in
  let s4 = B.push b Op.Fmul ~deps:[ s2; s2 ] in
  let s6 = B.push b Op.Fmul ~deps:[ s4; s2 ] in
  let s12 = B.push b Op.Fmul ~deps:[ s6; s6 ] in
  let t = B.push b Op.Fmadd ~deps:[ s12; s6 ] in
  let coeff = B.push b Op.Fmul ~deps:[ t; rcp ] in
  let masked = B.push b Op.Fsel ~deps:[ mask; coeff ] in
  let _acc = B.push b Op.Fmadd ~deps:[ masked; bestv ] in
  let pe = B.push b Op.Fsel ~deps:[ mask; t ] in
  let _pe_acc = B.push b Op.Fadd ~deps:[ pe ] in
  B.finish b

let gpu_fragment_prologue =
  let b = B.create () in
  let _own = B.push b Op.Load ~deps:[] (* own position fetch *) in
  let _ = B.push b Op.Ialu ~deps:[] (* accumulator init *) in
  let _ = B.push b Op.Fconvert ~deps:[] (* output pack *) in
  let _ = B.push b Op.Store ~deps:[] (* single output write *) in
  B.finish b

(* ------------------------------------------------------------------ *)
(* MTA-2 loop bodies (double precision)                               *)
(* ------------------------------------------------------------------ *)

let mta_pair_body =
  (* Conditionals on the MTA compile to predicated updates, so the body is
     branch-free; what matters for the stream model is the instruction
     count and the three position loads. *)
  let b = B.create () in
  let xj = B.push b Op.Load ~deps:[] in
  let yj = B.push b Op.Load ~deps:[] in
  let zj = B.push b Op.Load ~deps:[] in
  let dx = B.push b Op.Fadd ~deps:[ xj ] in
  let dy = B.push b Op.Fadd ~deps:[ yj ] in
  let dz = B.push b Op.Fadd ~deps:[ zj ] in
  let bx = scalar_axis_search b ~style:`Branchless ~dx in
  let by = scalar_axis_search b ~style:`Branchless ~dx:dy in
  let bz = scalar_axis_search b ~style:`Branchless ~dx:dz in
  let m0 = B.push b Op.Fmul ~deps:[ bx; bx ] in
  let m1 = B.push b Op.Fmul ~deps:[ by; by ] in
  let m2 = B.push b Op.Fmul ~deps:[ bz; bz ] in
  let s1 = B.push b Op.Fadd ~deps:[ m0; m1 ] in
  let r2 = B.push b Op.Fadd ~deps:[ s1; m2 ] in
  let r = B.push b Op.Fsqrt ~deps:[ r2 ] in
  let _cmp = B.push b Op.Fcmp ~deps:[ r ] in
  loop_control b;
  B.finish b

let mta_hit_body =
  let b = B.create () in
  let inv = B.push b Op.Fdiv ~deps:[] in
  let s4 = B.push b Op.Fmul ~deps:[ inv; inv ] in
  let s6 = B.push b Op.Fmul ~deps:[ s4; inv ] in
  let s12 = B.push b Op.Fmul ~deps:[ s6; s6 ] in
  let t = B.push b Op.Fadd ~deps:[ s12; s6 ] in
  let coeff = B.push b Op.Fdiv ~deps:[ t ] in
  let _ax = B.push b Op.Fmadd ~deps:[ coeff ] in
  let _ay = B.push b Op.Fmadd ~deps:[ coeff ] in
  let _az = B.push b Op.Fmadd ~deps:[ coeff ] in
  let _pe = B.push b Op.Fadd ~deps:[ t ] in
  B.finish b

let mta_integration_body =
  let b = B.create () in
  let loads = B.push_n b Op.Load ~n:9 ~deps:[] in
  List.iter (fun l -> ignore (B.push b Op.Fmadd ~deps:[ l ])) loads;
  let _ = B.push_n b Op.Fmadd ~n:9 ~deps:[] in
  let _ = B.push_n b Op.Fconvert ~n:3 ~deps:[] in
  let _ = B.push_n b Op.Fadd ~n:4 ~deps:[] in
  let _ = B.push_n b Op.Store ~n:9 ~deps:[] in
  B.finish b
