type t =
  | Original
  | Copysign
  | Simd_reflection
  | Simd_direction
  | Simd_length
  | Simd_acceleration

let all =
  [ Original; Copysign; Simd_reflection; Simd_direction; Simd_length;
    Simd_acceleration ]

let name = function
  | Original -> "original"
  | Copysign -> "replace \"if\" with \"copysign\""
  | Simd_reflection -> "SIMD unit cell reflection"
  | Simd_direction -> "SIMD direction vector"
  | Simd_length -> "SIMD length calculation"
  | Simd_acceleration -> "SIMD acceleration"

let rank = function
  | Original -> 0
  | Copysign -> 1
  | Simd_reflection -> 2
  | Simd_direction -> 3
  | Simd_length -> 4
  | Simd_acceleration -> 5

let includes v rung = rank rung <= rank v
