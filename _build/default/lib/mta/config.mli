(** Cray MTA-2 machine parameters.

    The MTA-2 hides its flat ~100-cycle memory latency behind 128 hardware
    streams per processor; it has no data caches at all.  The paper notes
    its clock is "about 11x slower than the 2.2 GHz Opteron", i.e.
    200 MHz.  The largest MTA-2 had 256 processors; the follow-on XMT
    (modelled by {!xmt_like}) scales to 8000 but gives up uniform memory
    latency, which the paper flags as a future programming concern. *)

type t = {
  clock : Sim_util.Units.clock;
  n_procs : int;
  streams_per_proc : int;      (** 128 hardware thread contexts *)
  mem_latency : int;           (** cycles; uniform — no caches, no locality *)
  region_overhead : int;       (** cycles to fork/join a parallel region *)
  sync_retry_cycles : int;     (** extra cost of a full/empty-bit retry *)
  nonuniform_penalty : float;
      (** multiplier (>= 1) on memory latency for remote references;
          1.0 on the MTA-2 (uniform), > 1 for XMT-like configurations *)
}

val mta2 : ?n_procs:int -> unit -> t
(** Default single-processor MTA-2 (the paper's kernel study). *)

val xmt_like : ?n_procs:int -> unit -> t
(** The announced XMT: faster clock (500 MHz), up to 8000 processors, and
    a non-uniform memory penalty — the paper's "future plans" system. *)

val validate : t -> unit
