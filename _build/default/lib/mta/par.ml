let reduce_loop body =
  Loop.make ~name:"par-reduce" ~body ~carries_dependency:true
    ~pragma_no_dependence:true ()

let reduce machine ~body ~f ~init arr =
  let loop = reduce_loop body in
  let n = Array.length arr in
  if n = 0 then init
  else begin
    (* Tree reduction: each level halves the active width. *)
    let work = Array.copy arr in
    let rec level width =
      if width = 1 then work.(0)
      else begin
        let half = (width + 1) / 2 in
        Machine.charged_region machine ~loop ~n:(width / 2) ~f:(fun () ->
            for i = 0 to (width / 2) - 1 do
              work.(i) <- f work.(i) work.(i + half)
            done);
        level half
      end
    in
    f init (level n)
  end

let scan_loop body = Loop.make ~name:"par-scan" ~body ()

let scan_inclusive machine ~body ~f arr =
  let loop = scan_loop body in
  let n = Array.length arr in
  let work = Array.copy arr in
  let stride = ref 1 in
  while !stride < n do
    let s = !stride in
    let prev = Array.copy work in
    Machine.charged_region machine ~loop ~n:(n - s) ~f:(fun () ->
        for i = s to n - 1 do
          work.(i) <- f prev.(i - s) prev.(i)
        done);
    stride := 2 * s
  done;
  work

let atomic_sum_body =
  (* load + synchronized read-modify-write *)
  Isa.Block.of_instrs
    [ { Isa.Block.op = Isa.Op.Load; deps = [] };
      { Isa.Block.op = Isa.Op.Fadd_dp; deps = [] };
      { Isa.Block.op = Isa.Op.Store; deps = [] } ]

let atomic_sum machine arr =
  let loop =
    Loop.make ~name:"atomic-sum" ~body:atomic_sum_body
      ~carries_dependency:true ~pragma_no_dependence:true ()
  in
  let acc = Sync_cell.create_full machine 0.0 in
  Machine.charged_region machine ~loop ~n:(Array.length arr) ~f:(fun () ->
      Array.iter (fun v -> ignore (Sync_cell.fetch_add acc v)) arr);
  Sync_cell.readff acc

let parallel_map machine ~body ~f n =
  if n < 0 then invalid_arg "Par.parallel_map: n < 0";
  let loop = Loop.make ~name:"par-map" ~body () in
  let out = Array.make (max n 1) 0.0 in
  Machine.charged_region machine ~loop ~n ~f:(fun () ->
      for i = 0 to n - 1 do
        out.(i) <- f i
      done);
  if n = 0 then [||] else Array.sub out 0 n

module Work_queue = struct
  type t = { machine : Machine.t; head : Sync_cell.t; n : int }

  let create machine ~n =
    if n < 0 then invalid_arg "Work_queue.create: n < 0";
    { machine; head = Sync_cell.create_full machine 0.0; n }

  let steal t =
    (* readfe/writeef pair: the classic full/empty fetch-and-increment. *)
    let current = int_of_float (Sync_cell.readfe t.head) in
    if current >= t.n then begin
      Sync_cell.writeef t.head (float_of_int current);
      None
    end
    else begin
      Sync_cell.writeef t.head (float_of_int (current + 1));
      Some current
    end

  let drain t ~f =
    let count = ref 0 in
    let rec go () =
      match steal t with
      | None -> !count
      | Some task ->
        f task;
        incr count;
        go ()
    in
    go ()
end
