(** The Cray MTA-2 machine model.

    Execution is functional (loop bodies really run, in double precision —
    the paper's MTA port is the only double-precision one); time is
    modelled per loop:

    - a {e parallel} loop with [n] iterations running on [P] processors
      with [S] streams each costs
      [max(issue bound, latency bound) + region overhead], where the issue
      bound is one instruction per processor per cycle and the latency
      bound is the single-stream iteration cost divided by the concurrency
      [min(n, P*S)] — the textbook MTA saturation condition ("keep its
      processors saturated, so that each processor always has a thread
      whose next instruction can be executed");
    - a {e serial} loop (the compiler refused to parallelize it) runs on
      one stream and pays the full uniform memory latency on every
      reference — this is the "partially multithreaded" case of Fig. 8.

    Whether a loop is parallel or serial is decided by {!Loop.parallelizable},
    i.e. by the modelled compiler analysis, not by the caller. *)

type t

val create : Config.t -> t
val config : t -> Config.t
val time : t -> float
val ledger : t -> Ledger.t
(** Invariant (tested): ledger total = machine time. *)

val reset : t -> unit

val for_loop : t -> loop:Loop.t -> n:int -> f:(int -> unit) -> unit
(** Run [f 0 .. f (n-1)] (sequentially in host order; bodies must be safe
    to run in any interleaving as on the real machine) and charge time
    according to the compiler's parallelization decision for [loop]. *)

val charged_region : t -> loop:Loop.t -> n:int -> f:(unit -> 'a) -> 'a
(** Like {!for_loop} but the caller owns the iteration structure: [f] is
    invoked once and should perform the whole region's work ([n]
    iterations of [loop]'s body, in whatever loop shape is fastest to
    execute host-side).  Timing and the concurrency visible to
    {!Sync_cell} are identical to [for_loop]. *)

val parallel_seconds : t -> loop:Loop.t -> n:int -> float
(** The cost model itself (no execution): time a parallel run of [n]
    iterations would take.  Exposed for tests and capacity planning. *)

val serial_seconds : t -> loop:Loop.t -> n:int -> float

val concurrency : t -> n:int -> int
(** [min(n, procs * streams)] — the number of iterations in flight. *)

val charge_sync_op : t -> unit
(** Account one full/empty-bit operation (called by {!Sync_cell}). *)
