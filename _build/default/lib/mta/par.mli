(** Parallel primitives built on the MTA's execution and synchronization
    model — the building blocks the MTA-2 literature the paper cites
    (Bokhari & Sauer) composes its algorithms from.

    All primitives execute functionally on the host while charging the
    machine per the stream-scheduling model; primitives that synchronize
    do so through {!Sync_cell}, so their full/empty traffic is accounted
    too. *)

val reduce : Machine.t -> body:Isa.Block.t -> f:('a -> 'a -> 'a) ->
  init:'a -> 'a array -> 'a
(** Tree reduction over an array: charged as log2(n) parallel regions of
    halving width (the shape the MTA compiler generates for marked
    reductions).  [f] must be associative. *)

val scan_inclusive : Machine.t -> body:Isa.Block.t ->
  f:(float -> float -> float) -> float array -> float array
(** Inclusive prefix scan (Hillis–Steele): log2(n) parallel sweeps over
    the full width. *)

val atomic_sum : Machine.t -> float array -> float
(** The paper's own idiom: a reduction performed inside a parallel loop
    body with one full/empty accumulate per element ("we moved the
    reduction operation inside the loop body").  Much more sync traffic
    than {!reduce}; exposed so the two strategies can be compared. *)

val parallel_map : Machine.t -> body:Isa.Block.t -> f:(int -> float) ->
  int -> float array
(** Embarrassingly parallel map over [0, n). *)

module Work_queue : sig
  (** Dynamic work distribution via a full/empty head pointer — how MTA
      codes load-balance irregular work without locks. *)

  type t

  val create : Machine.t -> n:int -> t
  (** A queue holding tasks [0 .. n-1]. *)

  val steal : t -> int option
  (** Atomically take the next task; [None] when exhausted.  Each steal
      performs one full/empty read-modify-write. *)

  val drain : t -> f:(int -> unit) -> int
  (** Steal until empty, running [f] per task; returns tasks executed. *)
end
