(** Full/empty-bit synchronized memory words.

    Every MTA memory word carries a full/empty tag; [readfe]/[writeef]
    give lock-free producer/consumer and atomic-update idioms (the
    Bokhari & Sauer MTA-2 sequence-alignment work the paper cites leans
    on them heavily, and the paper's own reduction restructuring is the
    same idiom).  In this sequential functional model a blocking
    operation that could never be satisfied is a programming error and
    raises {!Protocol_violation} instead of deadlocking. *)

exception Protocol_violation of string

type t

val create_full : Machine.t -> float -> t
val create_empty : Machine.t -> t

val is_full : t -> bool

val readfe : t -> float
(** Read-when-full, leave empty.  Charges one sync operation. *)

val writeef : t -> float -> unit
(** Write-when-empty, leave full.  Charges one sync operation. *)

val readff : t -> float
(** Read-when-full, leave full (snapshot). *)

val fetch_add : t -> float -> float
(** Atomic [readfe]+[writeef] accumulate; returns the previous value.
    This is the restructured in-loop reduction of the paper's Section
    5.3. *)
