exception Protocol_violation of string

type state = Full | Empty

type t = {
  machine : Machine.t;
  mutable value : float;
  mutable state : state;
}

let create_full machine v = { machine; value = v; state = Full }
let create_empty machine = { machine; value = 0.0; state = Empty }

let is_full t = t.state = Full

let readfe t =
  Machine.charge_sync_op t.machine;
  match t.state with
  | Empty ->
    raise (Protocol_violation "readfe on an empty cell would block forever")
  | Full ->
    t.state <- Empty;
    t.value

let writeef t v =
  Machine.charge_sync_op t.machine;
  match t.state with
  | Full ->
    raise (Protocol_violation "writeef on a full cell would block forever")
  | Empty ->
    t.state <- Full;
    t.value <- v

let readff t =
  Machine.charge_sync_op t.machine;
  match t.state with
  | Empty ->
    raise (Protocol_violation "readff on an empty cell would block forever")
  | Full -> t.value

let fetch_add t delta =
  let old = readfe t in
  writeef t (old +. delta);
  old
