type t = {
  name : string;
  body : Isa.Block.t;
  carries_dependency : bool;
  pragma_no_dependence : bool;
}

let make ~name ~body ?(carries_dependency = false)
    ?(pragma_no_dependence = false) () =
  { name; body; carries_dependency; pragma_no_dependence }

let parallelizable t = t.pragma_no_dependence || not t.carries_dependency

let instructions t = Isa.Block.length t.body

let memory_ops t = Isa.Block.count_if t.body Isa.Op.is_memory
