type t = {
  clock : Sim_util.Units.clock;
  n_procs : int;
  streams_per_proc : int;
  mem_latency : int;
  region_overhead : int;
  sync_retry_cycles : int;
  nonuniform_penalty : float;
}

let mta2 ?(n_procs = 1) () =
  { clock = Sim_util.Units.clock ~hz:200e6 ~label:"MTA-2 200 MHz";
    n_procs;
    streams_per_proc = 128;
    mem_latency = 100;
    region_overhead = 400;
    sync_retry_cycles = 8;
    nonuniform_penalty = 1.0 }

let xmt_like ?(n_procs = 64) () =
  { clock = Sim_util.Units.clock ~hz:500e6 ~label:"XMT 500 MHz";
    n_procs;
    streams_per_proc = 128;
    mem_latency = 150;
    region_overhead = 600;
    sync_retry_cycles = 8;
    nonuniform_penalty = 1.6 }

let validate t =
  let check name ok = if not ok then invalid_arg ("Mta.Config: bad " ^ name) in
  check "n_procs" (t.n_procs >= 1 && t.n_procs <= 8192);
  check "streams_per_proc" (t.streams_per_proc >= 1);
  check "mem_latency" (t.mem_latency >= 1);
  check "region_overhead" (t.region_overhead >= 0);
  check "sync_retry_cycles" (t.sync_retry_cycles >= 0);
  check "nonuniform_penalty" (t.nonuniform_penalty >= 1.0)
