(** Loop descriptors as the MTA compiler sees them.

    The paper's key MTA-2 finding is a compiler story: the hot loop (step 2
    of the kernel) "was not automatically parallelized by the MTA compiler
    because it found a dependency on the reduction operation", and became
    parallel only after the authors restructured the reduction and added a
    [#pragma mta assert no dependence] hint.  A loop here carries exactly
    that information: its body (for timing) and its dependence analysis
    (for the parallelize/serialize decision). *)

type t = {
  name : string;
  body : Isa.Block.t;              (** one iteration's instruction stream *)
  carries_dependency : bool;
      (** the compiler's conservative analysis found a loop-carried
          dependence (e.g. a scalar reduction) *)
  pragma_no_dependence : bool;     (** the programmer asserted otherwise *)
}

val make : name:string -> body:Isa.Block.t -> ?carries_dependency:bool ->
  ?pragma_no_dependence:bool -> unit -> t
(** Both flags default to [false]. *)

val parallelizable : t -> bool
(** The compiler parallelizes a loop when its analysis finds no dependence
    or the programmer overrides it. *)

val instructions : t -> int
(** Instructions per iteration (block length). *)

val memory_ops : t -> int
(** Loads + stores per iteration. *)
