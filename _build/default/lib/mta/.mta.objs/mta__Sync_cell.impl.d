lib/mta/sync_cell.ml: Machine
