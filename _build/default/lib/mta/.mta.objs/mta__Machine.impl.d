lib/mta/machine.ml: Config Float Fun Ledger Loop Sim_util
