lib/mta/par.ml: Array Isa Loop Machine Sync_cell
