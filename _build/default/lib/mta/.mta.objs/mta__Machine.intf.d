lib/mta/machine.mli: Config Ledger Loop
