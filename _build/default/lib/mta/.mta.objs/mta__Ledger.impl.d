lib/mta/ledger.ml: Sim_util
