lib/mta/loop.ml: Isa
