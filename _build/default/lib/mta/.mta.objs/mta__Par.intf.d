lib/mta/par.mli: Isa Machine
