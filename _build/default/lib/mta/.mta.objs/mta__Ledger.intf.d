lib/mta/ledger.mli: Sim_util
