lib/mta/sync_cell.mli: Machine
