lib/mta/config.ml: Sim_util
