lib/mta/loop.mli: Isa
