lib/mta/config.mli: Sim_util
