module Category = struct
  type t = Parallel | Serial | Region | Sync

  let all = [ Parallel; Serial; Region; Sync ]

  let name = function
    | Parallel -> "parallel"
    | Serial -> "serial"
    | Region -> "region"
    | Sync -> "sync"
end

type category = Category.t = Parallel | Serial | Region | Sync

include (
  Sim_util.Ledger_f.Make (Category) :
    Sim_util.Ledger_f.S with type category := category)

let category_name = Category.name
let all_categories = Category.all
