(** Wall-clock decomposition for the MTA machine: how much time went to
    saturated parallel regions vs latency-exposed serial loops — the
    fully-vs-partially-multithreaded contrast of Fig. 8. *)

type category =
  | Parallel   (** multithreaded regions *)
  | Serial     (** single-stream loops (latency fully exposed) *)
  | Region     (** fork/join overhead of parallel regions *)
  | Sync       (** full/empty-bit retries *)

val category_name : category -> string
val all_categories : category list

include Sim_util.Ledger_f.S with type category := category
