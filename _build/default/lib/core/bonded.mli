(** Bonded force terms — "calculation of forces between bonded atoms is
    straightforward and less computationally intensive" (paper §3.5),
    implemented here so the library covers the whole MD kernel its users
    need, not only the paper's benchmarked half.

    Both terms {e accumulate} into the acceleration arrays (callers zero
    or pre-fill them) and return their potential-energy contribution. *)

val accumulate_bonds : Topology.t -> System.t -> float
(** Harmonic bonds, V = k/2 (r − r0)², with minimum-image displacements. *)

val accumulate_angles : Topology.t -> System.t -> float
(** Harmonic angles, V = k/2 (θ − θ0)²; the three forces sum to zero
    (tested) and are the exact gradient of V (tested numerically). *)

val molecular_engine : Topology.t -> Engine.t
(** Full molecular force field: non-bonded LJ over all pairs {e except}
    the topology's 1-2/1-3 exclusions, plus bonds and angles.  Returns
    the total PE. *)

val compute_nonbonded_excluded : Topology.t -> System.t -> float
(** The LJ gather with exclusions only (exposed for tests). *)
