(** System construction: lattice placement and Maxwell–Boltzmann
    velocities.

    The paper's experiments sweep power-of-two atom counts (256 … 8192) at
    a fixed liquid-like density; we place atoms on a simple cubic lattice
    (evenly thinned when the count is not a perfect cube) and draw
    velocities from the Maxwell distribution at the requested temperature,
    removing net momentum so the box does not drift. *)

val lattice_box : n:int -> density:float -> float
(** Box side length giving [n] atoms the target number density. *)

val build : ?seed:int -> ?density:float -> ?temperature:float ->
  ?params:Params.t -> n:int -> unit -> System.t
(** [build ~n ()] makes a ready-to-run system.

    Defaults: seed 42, density 0.8 (reduced LJ liquid), temperature 1.0,
    {!Params.default}.  Raises [Invalid_argument] if the implied box
    violates the minimum-image criterion (i.e. [n] too small for the
    density/cutoff combination) or any parameter is nonpositive. *)

val build_chains : ?seed:int -> ?density:float -> ?temperature:float ->
  ?params:Params.t -> n_chains:int -> length:int -> r0:float -> unit ->
  System.t
(** A melt of bead–spring chains matching
    {!Topology.linear_chains}'s chain-major atom numbering: chain origins
    sit on a coarse lattice and each chain grows by random steps of
    length [r0], then the configuration is relaxed and thermalized.
    Density counts beads ([n_chains * length] atoms total). *)

val maxwell_velocities : System.t -> temperature:float -> Sim_util.Rng.t ->
  unit
(** Redraw all velocities at the given temperature and remove the net
    momentum. *)

val remove_net_momentum : System.t -> unit

val relax : System.t -> iterations:int -> max_step:float -> unit
(** Capped steepest-descent relaxation (used by [build] to defuse the
    sub-σ pairs a thinned lattice can contain).  Clears the acceleration
    arrays afterwards. *)

val jitter_positions : System.t -> magnitude:float -> Sim_util.Rng.t -> unit
(** Displace every coordinate uniformly within ±magnitude (breaks lattice
    symmetry so forces are nonzero at step 0), re-wrapping afterwards. *)
