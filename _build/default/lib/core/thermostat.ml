let scale_velocities (s : System.t) factor =
  for i = 0 to s.System.n - 1 do
    s.System.vel_x.(i) <- factor *. s.System.vel_x.(i);
    s.System.vel_y.(i) <- factor *. s.System.vel_y.(i);
    s.System.vel_z.(i) <- factor *. s.System.vel_z.(i)
  done

let rescale s ~target =
  if target < 0.0 then invalid_arg "Thermostat.rescale: negative target";
  let current = Observables.temperature s in
  if current > 0.0 then scale_velocities s (sqrt (target /. current))

let berendsen s ~target ~tau =
  if target < 0.0 then invalid_arg "Thermostat.berendsen: negative target";
  if tau <= 0.0 then invalid_arg "Thermostat.berendsen: tau must be positive";
  let current = Observables.temperature s in
  if current > 0.0 then begin
    let dt = s.System.params.Params.dt in
    let lambda2 = 1.0 +. (dt /. tau *. ((target /. current) -. 1.0)) in
    (* Guard against pathological overshoot on tiny tau or cold systems. *)
    let lambda2 = Float.max 0.25 (Float.min 4.0 lambda2) in
    scale_velocities s (sqrt lambda2)
  end

let equilibrate s ~engine ~target ~steps ?tau () =
  if steps < 0 then invalid_arg "Thermostat.equilibrate: steps < 0";
  let tau =
    match tau with
    | Some t -> t
    | None -> 20.0 *. s.System.params.Params.dt
  in
  Verlet.run s ~engine ~steps
    ~record:(fun r ->
      if r.Verlet.step > 0 then berendsen s ~target ~tau)
    ()
