(** Temperature control for NVT-style runs.

    The paper's kernel is pure NVE (no thermostat), but any downstream
    user equilibrating a system needs one; these are the two standard
    weak-coupling schemes. *)

val rescale : System.t -> target:float -> unit
(** Velocity rescaling: scale all velocities so the instantaneous
    temperature equals [target] exactly.  No-op on a zero-temperature
    system.  [target] must be nonnegative. *)

val berendsen : System.t -> target:float -> tau:float -> unit
(** One Berendsen weak-coupling step: velocities scale by
    sqrt(1 + (dt/tau)(target/T - 1)), relaxing T toward [target] with
    time constant [tau] (> 0, in reduced time units).  Gentler than
    {!rescale}; the standard equilibration choice. *)

val equilibrate : System.t -> engine:Engine.t -> target:float ->
  steps:int -> ?tau:float -> unit -> Verlet.step_record list
(** Integrate [steps] velocity-Verlet steps applying a Berendsen step
    after each (default [tau] = 20·dt), returning the records.  Leaves
    the system near [target] temperature. *)
