(** Physical parameters of the Lennard-Jones MD kernel, in reduced units
    (σ = ε = m = k_B = 1 for argon-like systems, the conventional setting
    for the paper's class of benchmark kernel).

    The LJ 6-12 potential the paper gives:
    V(r) = 4ε ((σ/r)^12 − (σ/r)^6),
    truncated at [cutoff]: "It is assumed that atoms within a cutoff limit
    contribute to the force and energy calculations on an atom." *)

type t = {
  epsilon : float;   (** well depth ε *)
  sigma : float;     (** zero-crossing distance σ *)
  cutoff : float;    (** interaction range r_c (absolute, not in σ) *)
  mass : float;      (** atom mass m *)
  dt : float;        (** integration time step Δt *)
}

val default : t
(** ε = σ = m = 1, r_c = 2.5σ, Δt = 0.004 τ — the classic LJ-melt setup. *)

val validate : t -> unit
(** All quantities must be strictly positive; raises otherwise. *)

val cutoff2 : t -> float
(** r_c². *)

val lj_potential : t -> float -> float
(** [lj_potential p r2] is V at squared distance [r2] ({e without} cutoff
    truncation — callers apply the cutoff test; this keeps the function
    total and property-testable).  [r2] must be positive. *)

val lj_force_over_r : t -> float -> float
(** [lj_force_over_r p r2] is F(r)/r = 24ε(2(σ/r)^12 − (σ/r)^6)/r², the
    scalar that multiplies the displacement vector to give the force.
    Positive values are repulsive. *)

val lj_minimum : t -> float
(** r_min = 2^(1/6) σ, where the force changes sign (used by tests). *)
