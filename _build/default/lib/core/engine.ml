type t = { name : string; compute : System.t -> float }

let make ~name ~compute = { name; compute }
