lib/core/min_image.mli: Vecmath
