lib/core/thermostat.mli: Engine System Verlet
