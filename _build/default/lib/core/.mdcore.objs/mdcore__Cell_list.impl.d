lib/core/cell_list.ml: Array Engine Min_image Params System
