lib/core/bonded.ml: Array Engine Float Min_image Params System Topology
