lib/core/topology.mli:
