lib/core/pairlist.mli: Engine System
