lib/core/cell_list.mli: Engine System
