lib/core/forces.ml: Array Domain Engine List Min_image Params System Vecmath
