lib/core/verlet.mli: Engine System
