lib/core/params.mli:
