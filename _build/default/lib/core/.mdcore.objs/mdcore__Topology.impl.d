lib/core/topology.ml: Array Float Hashtbl Int List Printf
