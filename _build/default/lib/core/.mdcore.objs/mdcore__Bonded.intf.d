lib/core/bonded.mli: Engine System Topology
