lib/core/verlet.ml: Array Engine List Observables Params System
