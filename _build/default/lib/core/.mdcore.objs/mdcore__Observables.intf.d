lib/core/observables.mli: System Vecmath
