lib/core/init.mli: Params Sim_util System
