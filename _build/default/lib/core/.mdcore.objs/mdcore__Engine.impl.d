lib/core/engine.ml: System
