lib/core/min_image.ml: Float Vecmath
