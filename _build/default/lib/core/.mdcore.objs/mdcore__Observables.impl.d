lib/core/observables.ml: Array Float List Min_image Params System Vecmath
