lib/core/engine.mli: System
