lib/core/xyz.mli: System
