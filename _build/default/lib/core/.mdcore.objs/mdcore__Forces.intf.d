lib/core/forces.mli: Engine System Vecmath
