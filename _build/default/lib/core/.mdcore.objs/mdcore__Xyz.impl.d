lib/core/xyz.ml: Array Fun List Printf String System
