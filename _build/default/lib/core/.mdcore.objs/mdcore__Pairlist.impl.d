lib/core/pairlist.ml: Array Engine Float Min_image Params System
