lib/core/system.ml: Array Float Params Printf Vecmath
