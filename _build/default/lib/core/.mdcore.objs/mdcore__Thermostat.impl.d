lib/core/thermostat.ml: Array Float Observables Params System Verlet
