lib/core/system.mli: Params Vecmath
