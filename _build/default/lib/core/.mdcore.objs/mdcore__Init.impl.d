lib/core/init.ml: Array Cell_list Float Forces Params Sim_util System Vecmath
