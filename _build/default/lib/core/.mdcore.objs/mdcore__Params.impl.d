lib/core/params.ml: Float
