type bond = { i : int; j : int; r0 : float; k_bond : float }

type angle = {
  a : int;
  center : int;
  c : int;
  theta0 : float;
  k_angle : float;
}

type t = {
  bond_list : bond array;
  angle_list : angle array;
  (* per-atom sorted exclusion lists (1-2 and 1-3 partners) *)
  exclusions : int array array;
}

let empty = { bond_list = [||]; angle_list = [||]; exclusions = [||] }

let validate_index n_atoms what idx =
  if idx < 0 || idx >= n_atoms then
    invalid_arg (Printf.sprintf "Topology: %s index %d out of range" what idx)

let create ?(bonds = []) ?(angles = []) ~n_atoms () =
  if n_atoms <= 0 then invalid_arg "Topology.create: n_atoms";
  List.iter
    (fun b ->
      validate_index n_atoms "bond" b.i;
      validate_index n_atoms "bond" b.j;
      if b.i = b.j then invalid_arg "Topology.create: bond to self";
      if b.r0 <= 0.0 || b.k_bond <= 0.0 then
        invalid_arg "Topology.create: bond parameters must be positive")
    bonds;
  List.iter
    (fun a ->
      validate_index n_atoms "angle" a.a;
      validate_index n_atoms "angle" a.center;
      validate_index n_atoms "angle" a.c;
      if a.a = a.center || a.c = a.center || a.a = a.c then
        invalid_arg "Topology.create: angle members must be distinct";
      if a.k_angle <= 0.0 || a.theta0 <= 0.0 || a.theta0 > Float.pi then
        invalid_arg "Topology.create: angle parameters out of range")
    angles;
  let pairs = Hashtbl.create (2 * List.length bonds) in
  let add_pair i j =
    if i <> j then begin
      Hashtbl.replace pairs (i, j) ();
      Hashtbl.replace pairs (j, i) ()
    end
  in
  List.iter (fun b -> add_pair b.i b.j) bonds;
  (* 1-3 exclusions: the outer atoms of every angle. *)
  List.iter (fun a -> add_pair a.a a.c) angles;
  let per_atom = Array.make n_atoms [] in
  Hashtbl.iter (fun (i, j) () -> per_atom.(i) <- j :: per_atom.(i)) pairs;
  { bond_list = Array.of_list bonds;
    angle_list = Array.of_list angles;
    exclusions =
      Array.map
        (fun l ->
          let arr = Array.of_list l in
          Array.sort compare arr;
          arr)
        per_atom }

let bonds t = Array.copy t.bond_list
let angles t = Array.copy t.angle_list
let n_bonds t = Array.length t.bond_list
let n_angles t = Array.length t.angle_list

let excluded t i j =
  i < Array.length t.exclusions
  && Array.exists (Int.equal j) t.exclusions.(i)

let linear_chains ~n_chains ~length ~r0 ~k_bond ?angle () =
  if n_chains <= 0 || length <= 0 then
    invalid_arg "Topology.linear_chains: counts must be positive";
  let bonds = ref [] and angles = ref [] in
  for c = 0 to n_chains - 1 do
    let base = c * length in
    for k = 0 to length - 2 do
      bonds := { i = base + k; j = base + k + 1; r0; k_bond } :: !bonds
    done;
    match angle with
    | None -> ()
    | Some (theta0, k_angle) ->
      for k = 1 to length - 2 do
        angles :=
          { a = base + k - 1; center = base + k; c = base + k + 1; theta0;
            k_angle }
          :: !angles
      done
  done;
  create ~bonds:!bonds ~angles:!angles ~n_atoms:(n_chains * length) ()
