let cells_per_axis (s : System.t) =
  int_of_float (s.System.box /. s.System.params.Params.cutoff)

let compute (s : System.t) =
  let { System.n; box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    s
  in
  let m = cells_per_axis s in
  if m < 3 then
    invalid_arg "Cell_list.compute: box too small (needs >= 3 cells per axis)";
  let cell_size = box /. float_of_int m in
  let ncells = m * m * m in
  (* Linked-list cells, as in classic MD codes: head.(c) is the first atom
     in cell c, next.(i) chains the rest. *)
  let head = Array.make ncells (-1) in
  let next = Array.make n (-1) in
  let cell_of i =
    let idx v =
      let k = int_of_float (v /. cell_size) in
      (* Guard the v = box edge case produced by rounding. *)
      if k >= m then m - 1 else if k < 0 then 0 else k
    in
    let cx = idx pos_x.(i) and cy = idx pos_y.(i) and cz = idx pos_z.(i) in
    (cz * m * m) + (cy * m) + cx
  in
  for i = 0 to n - 1 do
    let c = cell_of i in
    next.(i) <- head.(c);
    head.(c) <- i
  done;
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe2 = ref 0.0 in
  let wrap k = ((k mod m) + m) mod m in
  for i = 0 to n - 1 do
    let xi = pos_x.(i) and yi = pos_y.(i) and zi = pos_z.(i) in
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    let ci = cell_of i in
    let cix = ci mod m and ciy = ci / m mod m and ciz = ci / (m * m) in
    for sz = -1 to 1 do
      for sy = -1 to 1 do
        for sx = -1 to 1 do
          let c =
            (wrap (ciz + sz) * m * m) + (wrap (ciy + sy) * m) + wrap (cix + sx)
          in
          let j = ref head.(c) in
          while !j >= 0 do
            if !j <> i then begin
              let dx = Min_image.delta ~box (xi -. pos_x.(!j))
              and dy = Min_image.delta ~box (yi -. pos_y.(!j))
              and dz = Min_image.delta ~box (zi -. pos_z.(!j)) in
              let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
              if r2 < rc2 then begin
                let f_over_r = Params.lj_force_over_r params r2 in
                fx := !fx +. (f_over_r *. dx);
                fy := !fy +. (f_over_r *. dy);
                fz := !fz +. (f_over_r *. dz);
                pe2 := !pe2 +. Params.lj_potential params r2
              end
            end;
            j := next.(!j)
          done
        done
      done
    done;
    acc_x.(i) <- !fx *. inv_mass;
    acc_y.(i) <- !fy *. inv_mass;
    acc_z.(i) <- !fz *. inv_mass
  done;
  0.5 *. !pe2

let engine = Engine.make ~name:"cell-list" ~compute
