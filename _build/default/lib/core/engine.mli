(** A force engine: the pluggable "step 2" of the paper's kernel.

    Each architecture port (and each optimization ladder rung) is an
    engine: given the current positions it fills the acceleration arrays
    and returns the potential energy.  The integrator ({!Verlet}) is
    engine-agnostic, which is exactly the paper's structure — only the
    acceleration computation was offloaded to the SPEs / GPU. *)

type t = {
  name : string;
  compute : System.t -> float;
      (** Overwrites [acc_*]; returns the total potential energy. *)
}

val make : name:string -> compute:(System.t -> float) -> t
