(** Molecular topology: the bonded structure of the system.

    The paper's kernel treats only the non-bonded part ("there are only a
    very small number of bonded interactions as compared to the non-bonded
    interactions"), but a bio-molecular simulation needs both; this module
    carries the bond/angle lists and the resulting non-bonded exclusions
    (directly bonded pairs must not also feel the LJ wall, or molecules
    blow apart — the standard 1-2 exclusion rule). *)

type bond = {
  i : int;
  j : int;
  r0 : float;       (** equilibrium length *)
  k_bond : float;   (** harmonic stiffness, V = k/2 (r - r0)^2 *)
}

type angle = {
  a : int;
  center : int;
  c : int;
  theta0 : float;   (** equilibrium angle, radians *)
  k_angle : float;  (** V = k/2 (theta - theta0)^2 *)
}

type t

val empty : t
val create : ?bonds:bond list -> ?angles:angle list -> n_atoms:int -> unit -> t
(** Validates every index against [n_atoms], bond endpoints distinct,
    angle members distinct, and positive [r0]/[k] parameters. *)

val bonds : t -> bond array
val angles : t -> angle array
val n_bonds : t -> int
val n_angles : t -> int

val excluded : t -> int -> int -> bool
(** [excluded t i j] — are atoms [i] and [j] directly bonded (1-2) or
    separated by one bond (1-3, the two ends of an angle)?  Such pairs
    are skipped by the non-bonded engine. *)

val linear_chains : n_chains:int -> length:int -> r0:float -> k_bond:float ->
  ?angle:float * float -> unit -> t
(** Topology for [n_chains] bead–spring chains of [length] atoms each
    (atom ids assigned chain-major: chain c owns
    [c*length .. (c+1)*length - 1]).  [angle = (theta0, k_angle)] adds a
    bending term at every interior bead.  The classic coarse-grained
    polymer workload. *)
