(** XYZ trajectory output — the lingua-franca format every MD
    visualization tool (VMD, OVITO, ...) reads, so runs from this library
    can be inspected with standard tooling. *)

val write_frame : ?element:string -> ?comment:string -> out_channel ->
  System.t -> unit
(** Append one frame: the atom count line, a comment line, then one
    "EL x y z" line per atom (positions in reduced units; pass a
    [comment] like "t = 0.40" to tag frames). *)

val write_trajectory : path:string -> ?element:string ->
  frames:System.t list -> unit -> unit
(** Write a whole trajectory file (frames are snapshots, e.g. collected
    with {!System.copy} during a run). *)

val frame_count : path:string -> int
(** Count the frames in an XYZ file (validates the atom-count headers;
    raises [Failure] on a malformed file). *)
