(** Linked-cell force engine — the O(N) companion ablation to {!Pairlist}.

    The box is divided into cells at least one cutoff wide; an atom
    interacts only with atoms in its own and the 26 surrounding cells.
    (This is the other standard technique the paper's §3.4 declines to
    use; note the pleasing coincidence that its 27-cell stencil mirrors
    the 27-image minimum-image search the paper's kernel performs.)

    The engine is stateless across calls: the cell assignment is rebuilt
    on every force evaluation, which is O(N) and keeps the engine usable
    on any system without lifetime bookkeeping. *)

val engine : Engine.t

val compute : System.t -> float
(** Raises [Invalid_argument] if the box is smaller than 3 cells per axis
    (the stencil would visit the same cell twice; fall back to
    {!Forces.gather_engine} for such tiny systems). *)

val cells_per_axis : System.t -> int
