type t = {
  system : System.t;
  skin : float;
  (* Half-list: for each i, neighbours j > i within cutoff+skin. *)
  mutable neighbours : int array array;
  ref_x : float array;  (* positions at last build *)
  ref_y : float array;
  ref_z : float array;
  mutable built : bool;
  mutable rebuilds : int;
  mutable last_hits : int;
}

let create ?(skin = 0.4) (s : System.t) =
  if skin <= 0.0 then invalid_arg "Pairlist.create: skin must be positive";
  let reach = s.System.params.Params.cutoff +. skin in
  if s.System.box < 2.0 *. reach then
    invalid_arg "Pairlist.create: box too small for cutoff + skin";
  { system = s;
    skin;
    neighbours = Array.make s.System.n [||];
    ref_x = Array.make s.System.n 0.0;
    ref_y = Array.make s.System.n 0.0;
    ref_z = Array.make s.System.n 0.0;
    built = false;
    rebuilds = 0;
    last_hits = 0 }

let build t =
  let s = t.system in
  let { System.n; box; pos_x; pos_y; pos_z; _ } = s in
  let reach = s.System.params.Params.cutoff +. t.skin in
  let reach2 = reach *. reach in
  t.neighbours <-
    Array.init n (fun i ->
        let acc = ref [] in
        for j = n - 1 downto i + 1 do
          let dx = Min_image.delta ~box (pos_x.(i) -. pos_x.(j))
          and dy = Min_image.delta ~box (pos_y.(i) -. pos_y.(j))
          and dz = Min_image.delta ~box (pos_z.(i) -. pos_z.(j)) in
          if (dx *. dx) +. (dy *. dy) +. (dz *. dz) < reach2 then
            acc := j :: !acc
        done;
        Array.of_list !acc);
  Array.blit pos_x 0 t.ref_x 0 n;
  Array.blit pos_y 0 t.ref_y 0 n;
  Array.blit pos_z 0 t.ref_z 0 n;
  t.built <- true;
  t.rebuilds <- t.rebuilds + 1

let max_drift t =
  let s = t.system in
  let { System.n; box; pos_x; pos_y; pos_z; _ } = s in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = Min_image.delta ~box (pos_x.(i) -. t.ref_x.(i))
    and dy = Min_image.delta ~box (pos_y.(i) -. t.ref_y.(i))
    and dz = Min_image.delta ~box (pos_z.(i) -. t.ref_z.(i)) in
    worst := Float.max !worst ((dx *. dx) +. (dy *. dy) +. (dz *. dz))
  done;
  sqrt !worst

let needs_rebuild t = (not t.built) || max_drift t > 0.5 *. t.skin

let compute t (s : System.t) =
  if s != t.system then
    invalid_arg "Pairlist: engine used with a different system";
  if needs_rebuild t then build t;
  let { System.n; box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe = ref 0.0 and hits = ref 0 in
  System.clear_accelerations s;
  for i = 0 to n - 1 do
    let xi = pos_x.(i) and yi = pos_y.(i) and zi = pos_z.(i) in
    Array.iter
      (fun j ->
        let dx = Min_image.delta ~box (xi -. pos_x.(j))
        and dy = Min_image.delta ~box (yi -. pos_y.(j))
        and dz = Min_image.delta ~box (zi -. pos_z.(j)) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < rc2 then begin
          let f_over_r = Params.lj_force_over_r params r2 in
          let ax = f_over_r *. dx *. inv_mass
          and ay = f_over_r *. dy *. inv_mass
          and az = f_over_r *. dz *. inv_mass in
          acc_x.(i) <- acc_x.(i) +. ax;
          acc_y.(i) <- acc_y.(i) +. ay;
          acc_z.(i) <- acc_z.(i) +. az;
          acc_x.(j) <- acc_x.(j) -. ax;
          acc_y.(j) <- acc_y.(j) -. ay;
          acc_z.(j) <- acc_z.(j) -. az;
          pe := !pe +. Params.lj_potential params r2;
          incr hits
        end)
      t.neighbours.(i)
  done;
  t.last_hits <- !hits;
  !pe

let engine t = Engine.make ~name:"pairlist" ~compute:(compute t)

let rebuild_count t = t.rebuilds

let last_interaction_count t = t.last_hits

let neighbour_count t =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 t.neighbours

let force_rebuild t = build t
