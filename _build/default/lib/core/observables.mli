(** Physical observables: the quantities step 5 of the paper's kernel
    computes ("calculate new kinetic and total energies") and the
    conservation laws the test suite checks. *)

val kinetic_energy : System.t -> float
(** KE = ½ m Σ v². *)

val temperature : System.t -> float
(** T = 2·KE / (3·(N−1)) in reduced units (N−1: three momentum constraints
    remove one atom's worth of degrees of freedom). *)

val total_momentum : System.t -> Vecmath.Vec3.t
(** Σ m·v — conserved (≈0 after {!Init.maxwell_velocities}). *)

val total_energy : System.t -> pe:float -> float
(** KE + PE for a PE the force engine just returned. *)

val radial_distribution : System.t -> bins:int -> rmax:float -> float array
(** g(r): the pair-correlation histogram over [\[0, rmax)], normalized so
    an ideal gas gives 1 in every bin — the standard structural probe
    that distinguishes the solid's sharp shells from the liquid's broad
    first peak.  Requires [0 < rmax <= box/2] (minimum image) and
    [bins > 0].  O(N^2). *)

val bin_centers : bins:int -> rmax:float -> float array
(** The r value at each bin's midpoint, for plotting alongside
    {!radial_distribution}. *)

val velocity_autocorrelation : System.t list -> float array
(** Normalized velocity autocorrelation function from a list of
    trajectory snapshots (equal [n], chronological):
    C(k) = <v(0)·v(k)> / <v(0)·v(0)>, so C(0) = 1.  Raises on an empty
    list or mismatched sizes. *)

val diffusion_coefficient : System.t list -> dt:float -> float
(** Green–Kubo estimate D = (1/3) ∫ <v(0)·v(t)> dt over the snapshot
    window (trapezoidal rule, [dt] = time between snapshots). *)
