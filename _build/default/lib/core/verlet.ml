type step_record = {
  step : int;
  sim_time : float;
  pe : float;
  ke : float;
  total_energy : float;
  temperature : float;
}

let half_kick (s : System.t) =
  let h = 0.5 *. s.System.params.Params.dt in
  for i = 0 to s.System.n - 1 do
    s.System.vel_x.(i) <- s.System.vel_x.(i) +. (h *. s.System.acc_x.(i));
    s.System.vel_y.(i) <- s.System.vel_y.(i) +. (h *. s.System.acc_y.(i));
    s.System.vel_z.(i) <- s.System.vel_z.(i) +. (h *. s.System.acc_z.(i))
  done

let drift (s : System.t) =
  let dt = s.System.params.Params.dt in
  for i = 0 to s.System.n - 1 do
    s.System.pos_x.(i) <- s.System.pos_x.(i) +. (dt *. s.System.vel_x.(i));
    s.System.pos_y.(i) <- s.System.pos_y.(i) +. (dt *. s.System.vel_y.(i));
    s.System.pos_z.(i) <- s.System.pos_z.(i) +. (dt *. s.System.vel_z.(i));
    System.wrap_atom s i
  done

let prepare s ~engine = engine.Engine.compute s

let step s ~engine =
  half_kick s;
  drift s;
  let pe = engine.Engine.compute s in
  half_kick s;
  pe

let make_record s ~step:n ~pe =
  let ke = Observables.kinetic_energy s in
  { step = n;
    sim_time = float_of_int n *. s.System.params.Params.dt;
    pe;
    ke;
    total_energy = ke +. pe;
    temperature = Observables.temperature s }

let run s ~engine ~steps ?(record = fun _ -> ()) () =
  if steps < 0 then invalid_arg "Verlet.run: steps < 0";
  let pe0 = prepare s ~engine in
  let first = make_record s ~step:0 ~pe:pe0 in
  record first;
  let rest =
    List.init steps (fun k ->
        let pe = step s ~engine in
        let r = make_record s ~step:(k + 1) ~pe in
        record r;
        r)
  in
  first :: rest
