type t = {
  epsilon : float;
  sigma : float;
  cutoff : float;
  mass : float;
  dt : float;
}

let default =
  { epsilon = 1.0; sigma = 1.0; cutoff = 2.5; mass = 1.0; dt = 0.004 }

let validate t =
  let check name v =
    if not (v > 0.0 && Float.is_finite v) then
      invalid_arg ("Mdcore.Params: " ^ name ^ " must be positive and finite")
  in
  check "epsilon" t.epsilon;
  check "sigma" t.sigma;
  check "cutoff" t.cutoff;
  check "mass" t.mass;
  check "dt" t.dt

let cutoff2 t = t.cutoff *. t.cutoff

let lj_potential t r2 =
  if r2 <= 0.0 then invalid_arg "Params.lj_potential: r2 must be positive";
  let s2 = t.sigma *. t.sigma /. r2 in
  let s6 = s2 *. s2 *. s2 in
  4.0 *. t.epsilon *. ((s6 *. s6) -. s6)

let lj_force_over_r t r2 =
  if r2 <= 0.0 then invalid_arg "Params.lj_force_over_r: r2 must be positive";
  let s2 = t.sigma *. t.sigma /. r2 in
  let s6 = s2 *. s2 *. s2 in
  24.0 *. t.epsilon *. ((2.0 *. s6 *. s6) -. s6) /. r2

let lj_minimum t = t.sigma *. Float.pow 2.0 (1.0 /. 6.0)
