lib/vec/vec4f.mli: Format Vec3
