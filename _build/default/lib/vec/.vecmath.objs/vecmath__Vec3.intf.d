lib/vec/vec3.mli: Format
