lib/vec/vec4f.ml: Float Format Sim_util Stdlib Vec3
