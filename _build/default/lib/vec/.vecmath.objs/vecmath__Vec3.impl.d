lib/vec/vec3.ml: Format
