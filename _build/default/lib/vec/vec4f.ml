module F32 = Sim_util.F32

type t = { a : float; b : float; c : float; d : float }

let make a b c d =
  { a = F32.round a; b = F32.round b; c = F32.round c; d = F32.round d }

let splat v = make v v v v
let zero = splat 0.0

let of_vec3 (v : Vec3.t) ~w = make v.x v.y v.z w
let to_vec3 v = Vec3.make v.a v.b v.c

let lane v i =
  match i with
  | 0 -> v.a
  | 1 -> v.b
  | 2 -> v.c
  | 3 -> v.d
  | _ -> invalid_arg "Vec4f.lane: index out of range"

let with_lane v i x =
  let x = F32.round x in
  match i with
  | 0 -> { v with a = x }
  | 1 -> { v with b = x }
  | 2 -> { v with c = x }
  | 3 -> { v with d = x }
  | _ -> invalid_arg "Vec4f.with_lane: index out of range"

let x v = v.a
let y v = v.b
let z v = v.c
let w v = v.d

let map2 f u v = { a = f u.a v.a; b = f u.b v.b; c = f u.c v.c; d = f u.d v.d }
let map f v = { a = f v.a; b = f v.b; c = f v.c; d = f v.d }

let add = map2 F32.add
let sub = map2 F32.sub
let mul = map2 F32.mul
let div = map2 F32.div
let neg = map F32.neg
let sqrt = map F32.sqrt

let madd u v w = { a = F32.madd u.a v.a w.a; b = F32.madd u.b v.b w.b;
                   c = F32.madd u.c v.c w.c; d = F32.madd u.d v.d w.d }

let nmsub u v w =
  { a = F32.sub w.a (F32.mul u.a v.a);
    b = F32.sub w.b (F32.mul u.b v.b);
    c = F32.sub w.c (F32.mul u.c v.c);
    d = F32.sub w.d (F32.mul u.d v.d) }

let recip_est = map F32.recip_est
let rsqrt_est = map F32.rsqrt_est
let min = map2 Stdlib.min
let max = map2 Stdlib.max
let abs = map abs_float
let copysign = map2 F32.copysign
let floor = map (fun x -> F32.round (Float.floor x))

let round_nearest =
  map (fun x -> F32.round (Float.round x))

type mask = { ma : bool; mb : bool; mc : bool; md : bool }

let cmp f u v = { ma = f u.a v.a; mb = f u.b v.b; mc = f u.c v.c; md = f u.d v.d }
let cmp_gt = cmp ( > )
let cmp_lt = cmp ( < )
let cmp_ge = cmp ( >= )
let cmp_le = cmp ( <= )
let mask_all m = m.ma && m.mb && m.mc && m.md
let mask_any m = m.ma || m.mb || m.mc || m.md

let mask_lane m i =
  match i with
  | 0 -> m.ma
  | 1 -> m.mb
  | 2 -> m.mc
  | 3 -> m.md
  | _ -> invalid_arg "Vec4f.mask_lane: index out of range"

let select m ~if_true ~if_false =
  { a = (if m.ma then if_true.a else if_false.a);
    b = (if m.mb then if_true.b else if_false.b);
    c = (if m.mc then if_true.c else if_false.c);
    d = (if m.md then if_true.d else if_false.d) }

let shuffle v (i, j, k, l) = make (lane v i) (lane v j) (lane v k) (lane v l)

let hsum3 v = F32.add (F32.add v.a v.b) v.c
let hsum4 v = F32.add (hsum3 v) v.d
let dot3 u v = hsum3 (mul u v)

let equal ?(eps = 0.0) u v =
  let close a b = abs_float (a -. b) <= eps in
  close u.a v.a && close u.b v.b && close u.c v.c && close u.d v.d

let to_array v = [| v.a; v.b; v.c; v.d |]

let of_array arr =
  match arr with
  | [| a; b; c; d |] -> make a b c d
  | _ -> invalid_arg "Vec4f.of_array: expected 4 elements"

let pp fmt v = Format.fprintf fmt "(%g, %g, %g, %g)" v.a v.b v.c v.d
