(** Quadword single-precision SIMD emulation.

    Models the 128-bit vector registers of the Cell SPE (and the 4-component
    pixel values of the GPU): four binary32 lanes, with every arithmetic
    result rounded to binary32 per lane (see {!Sim_util.F32}).  The paper's
    ports keep x, y, z in the first three lanes and either waste the fourth
    or — on the GPU — smuggle the per-atom potential-energy contribution in
    it ("read back ... for free"); this module supports both uses.

    Values are immutable.  Lane indices are 0..3. *)

type t

val make : float -> float -> float -> float -> t
(** Each component is rounded to binary32. *)

val splat : float -> t
val zero : t

val of_vec3 : Vec3.t -> w:float -> t
(** Pack a double-precision 3-vector into lanes 0..2 (rounding each to
    binary32) with an explicit fourth lane. *)

val to_vec3 : t -> Vec3.t
(** Lanes 0..2; the w lane is dropped. *)

val lane : t -> int -> float
(** Extract a lane; raises [Invalid_argument] outside 0..3. *)

val with_lane : t -> int -> float -> t
val x : t -> float
val y : t -> float
val z : t -> float
val w : t -> float

(** {1 Arithmetic — each lane rounded to binary32} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val sqrt : t -> t
val madd : t -> t -> t -> t
(** [madd a b c] lanes = round(round(a*b) + c). *)

val nmsub : t -> t -> t -> t
(** [nmsub a b c] lanes = round(c - round(a*b)) — the SPE [fnms] form used
    in Newton–Raphson refinement. *)

val recip_est : t -> t
val rsqrt_est : t -> t
val min : t -> t -> t
val max : t -> t -> t
val abs : t -> t
val copysign : t -> t -> t
(** Per-lane [copysign magnitude sign] — the branch-free kernel trick. *)

val floor : t -> t
val round_nearest : t -> t
(** Round-half-away-from-zero per lane (matches C [roundf]). *)

(** {1 Comparison and selection} *)

type mask
(** Per-lane boolean mask, as produced by vector compares. *)

val cmp_gt : t -> t -> mask
val cmp_lt : t -> t -> mask
val cmp_ge : t -> t -> mask
val cmp_le : t -> t -> mask
val mask_all : mask -> bool
val mask_any : mask -> bool
val mask_lane : mask -> int -> bool
val select : mask -> if_true:t -> if_false:t -> t
(** Per-lane select, the SPE [selb] instruction. *)

(** {1 Horizontal / cross-lane operations} *)

val shuffle : t -> int * int * int * int -> t
(** [shuffle v (a,b,c,d)] builds a vector from lanes [a..d] of [v]. *)

val hsum3 : t -> float
(** Sum of lanes 0..2 with f32 rounding at each add (left-to-right), as the
    SPE shuffle+add reduction sequence produces. *)

val hsum4 : t -> float
val dot3 : t -> t -> float
(** f32 dot product over lanes 0..2 (mul then left-to-right adds). *)

val equal : ?eps:float -> t -> t -> bool
val to_array : t -> float array
val of_array : float array -> t
val pp : Format.formatter -> t -> unit
