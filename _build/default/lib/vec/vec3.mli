(** Double-precision 3-vectors.

    Used by the MD reference implementation and the MTA-2 port (both run in
    double precision, per the paper).  Immutable records; the hot inner
    loops in the ports work on unboxed SoA float arrays instead, so this
    type is for setup, observables and tests. *)

type t = { x : float; y : float; z : float }

val zero : t
val make : float -> float -> float -> t
val splat : float -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Component-wise product. *)

val dot : t -> t -> float
val cross : t -> t -> t
val norm2 : t -> float
(** Squared Euclidean norm. *)

val norm : t -> float
val normalize : t -> t
(** Raises [Invalid_argument] on the zero vector. *)

val dist2 : t -> t -> float
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val lerp : t -> t -> float -> t
(** [lerp a b u] = a + u*(b-a). *)

val of_array : float array -> t
(** From a 3-element array; raises [Invalid_argument] otherwise. *)

val to_array : t -> float array
val equal : ?eps:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance (default exact). *)

val pp : Format.formatter -> t -> unit
