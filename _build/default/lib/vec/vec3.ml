type t = { x : float; y : float; z : float }

let zero = { x = 0.0; y = 0.0; z = 0.0 }
let make x y z = { x; y; z }
let splat v = { x = v; y = v; z = v }

let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let neg a = { x = -.a.x; y = -.a.y; z = -.a.z }
let scale k a = { x = k *. a.x; y = k *. a.y; z = k *. a.z }
let mul a b = { x = a.x *. b.x; y = a.y *. b.y; z = a.z *. b.z }

let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let cross a b =
  { x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x) }

let norm2 a = dot a a
let norm a = sqrt (norm2 a)

let normalize a =
  let n = norm a in
  if n = 0.0 then invalid_arg "Vec3.normalize: zero vector";
  scale (1.0 /. n) a

let dist2 a b = norm2 (sub a b)

let map f a = { x = f a.x; y = f a.y; z = f a.z }
let map2 f a b = { x = f a.x b.x; y = f a.y b.y; z = f a.z b.z }
let fold f acc a = f (f (f acc a.x) a.y) a.z

let lerp a b u = add a (scale u (sub b a))

let of_array arr =
  match arr with
  | [| x; y; z |] -> { x; y; z }
  | _ -> invalid_arg "Vec3.of_array: expected 3 elements"

let to_array a = [| a.x; a.y; a.z |]

let equal ?(eps = 0.0) a b =
  let close u v = abs_float (u -. v) <= eps in
  close a.x b.x && close a.y b.y && close a.z b.z

let pp fmt a = Format.fprintf fmt "(%g, %g, %g)" a.x a.y a.z
