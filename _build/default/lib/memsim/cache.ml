type line = { mutable tag : int; mutable valid : bool; mutable lru : int }

type t = {
  line_bytes : int;
  sets : int;
  ways : int;
  offset_bits : int;
  index_mask : int;
  data : line array array; (* data.(set).(way) *)
  mutable clock : int;     (* monotonic counter for LRU ordering *)
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let create ~line_bytes ~sets ~ways =
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if not (is_pow2 sets) then
    invalid_arg "Cache.create: sets must be a power of two";
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  let data =
    Array.init sets (fun _ ->
        Array.init ways (fun _ -> { tag = 0; valid = false; lru = 0 }))
  in
  { line_bytes; sets; ways; offset_bits = log2 line_bytes;
    index_mask = sets - 1; data; clock = 0; hits = 0; misses = 0 }

let capacity_bytes t = t.line_bytes * t.sets * t.ways
let line_bytes t = t.line_bytes

type outcome = Hit | Miss

let locate t addr =
  if addr < 0 then invalid_arg "Cache: negative address";
  let block = addr lsr t.offset_bits in
  let set = block land t.index_mask in
  let tag = block lsr (log2 t.sets) in
  (set, tag)

let access t addr =
  let set, tag = locate t addr in
  let lines = t.data.(set) in
  t.clock <- t.clock + 1;
  let found = ref None in
  Array.iter
    (fun l -> if l.valid && l.tag = tag && !found = None then found := Some l)
    lines;
  match !found with
  | Some l ->
    l.lru <- t.clock;
    t.hits <- t.hits + 1;
    Hit
  | None ->
    (* Choose an invalid way if any, else the least recently used. *)
    let victim = ref lines.(0) in
    Array.iter
      (fun l ->
        if not l.valid && !victim.valid then victim := l
        else if l.valid && !victim.valid && l.lru < !victim.lru then
          victim := l)
      lines;
    !victim.tag <- tag;
    !victim.valid <- true;
    !victim.lru <- t.clock;
    t.misses <- t.misses + 1;
    Miss

let contains t addr =
  let set, tag = locate t addr in
  Array.exists (fun l -> l.valid && l.tag = tag) t.data.(set)

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let miss_rate t =
  let n = accesses t in
  if n = 0 then 0.0 else float_of_int t.misses /. float_of_int n

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.iter (Array.iter (fun l -> l.valid <- false)) t.data;
  t.clock <- 0;
  reset_stats t
