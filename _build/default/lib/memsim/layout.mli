(** Virtual address-space layout for trace generation.

    The cache simulator needs realistic byte addresses for the arrays the
    MD kernel touches.  This allocator hands out disjoint, aligned address
    ranges exactly like a bump allocator in a real runtime would, so that
    array-vs-array set conflicts behave plausibly. *)

type t

val create : ?base:int -> unit -> t
(** Default base is 4096 (skip the null page, as a real mmap would). *)

val alloc : t -> bytes:int -> align:int -> int
(** [alloc t ~bytes ~align] reserves [bytes] and returns the base address.
    [align] must be a positive power of two; [bytes] nonnegative. *)

val alloc_float_array : t -> n:int -> int
(** Convenience: [n] doubles, 64-byte (cache-line) aligned — the layout a
    C [posix_memalign]'d array of doubles would get. *)

val used_bytes : t -> int
