(** Two-level cache hierarchy backed by DRAM.

    The Opteron port charges every modelled load with the cycle cost this
    hierarchy reports, so miss behaviour — not a fitted curve — produces
    Fig. 9's divergence from pure N^2 scaling. *)

type t

type config = {
  l1_line_bytes : int;
  l1_sets : int;
  l1_ways : int;
  l1_hit_cycles : int;     (** load-to-use on an L1 hit *)
  l2_line_bytes : int;
  l2_sets : int;
  l2_ways : int;
  l2_hit_cycles : int;     (** additional cycles on L1 miss / L2 hit *)
  dram_cycles : int;       (** additional cycles on L2 miss *)
}

val opteron_2_2ghz : config
(** The paper's reference machine: 64 KB 2-way L1 with 64-byte lines,
    1 MB 16-way L2, ~3/12/200-cycle access costs at 2.2 GHz. *)

val create : config -> t
val config : t -> config

val access : t -> int -> int
(** [access t addr] returns the cycle cost of a load at byte address
    [addr], updating both levels (inclusive hierarchy: an L2 hit refills
    L1; a DRAM access refills both). *)

val l1_miss_rate : t -> float
val l2_miss_rate : t -> float
(** L2 miss rate over L2 accesses (i.e., over L1 misses). *)

val accesses : t -> int
val total_cycles : t -> int
(** Sum of all costs charged since creation or the last [reset]. *)

val average_cycles : t -> float
val reset_stats : t -> unit
val flush : t -> unit
