(** Set-associative cache with LRU replacement.

    Fig. 9 of the paper attributes the Opteron's super-quadratic runtime
    growth to cache misses once the position arrays outgrow the caches.
    Rather than asserting that effect, the Opteron port replays its actual
    inner-loop address stream through this simulator and charges the
    resulting miss penalties. *)

type t

val create : line_bytes:int -> sets:int -> ways:int -> t
(** All three parameters must be positive; [line_bytes] and [sets] must be
    powers of two (index/offset extraction is by bit masking, as in
    hardware). *)

val capacity_bytes : t -> int
val line_bytes : t -> int

type outcome = Hit | Miss

val access : t -> int -> outcome
(** [access t addr] looks up the byte address, updating recency and
    allocating on miss (write-allocate; reads and writes behave alike at
    this resolution).  Addresses must be nonnegative. *)

val contains : t -> int -> bool
(** Lookup without disturbing recency or allocating (for tests). *)

val hits : t -> int
val misses : t -> int
val accesses : t -> int
val miss_rate : t -> float
(** 0 when no accesses have been made. *)

val reset_stats : t -> unit
val flush : t -> unit
(** Empty all lines and reset statistics. *)
