lib/memsim/hierarchy.ml: Cache
