lib/memsim/cache.mli:
