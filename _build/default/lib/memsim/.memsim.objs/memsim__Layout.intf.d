lib/memsim/layout.mli:
