lib/memsim/tlb.mli:
