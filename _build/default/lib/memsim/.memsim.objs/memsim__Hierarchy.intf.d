lib/memsim/hierarchy.mli:
