lib/memsim/layout.ml:
