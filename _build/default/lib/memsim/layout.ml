type t = { base : int; mutable cursor : int }

let create ?(base = 4096) () =
  if base < 0 then invalid_arg "Layout.create: negative base";
  { base; cursor = base }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let alloc t ~bytes ~align =
  if bytes < 0 then invalid_arg "Layout.alloc: negative size";
  if not (is_pow2 align) then
    invalid_arg "Layout.alloc: align must be a positive power of two";
  let aligned = (t.cursor + align - 1) land lnot (align - 1) in
  t.cursor <- aligned + bytes;
  aligned

let alloc_float_array t ~n = alloc t ~bytes:(n * 8) ~align:64

let used_bytes t = t.cursor - t.base
