(** Translation lookaside buffer: fully-associative, LRU, fixed page
    size.

    The K8's L1 DTLB holds 32 entries of 4 KB pages — under 2 MB of
    reach, which the MD kernel's nine arrays outgrow well before the
    caches do.  The Opteron port charges TLB miss penalties alongside the
    cache hierarchy, adding the second ingredient of Fig. 9's
    super-quadratic growth. *)

type t

val create : ?page_bytes:int -> ?entries:int -> ?miss_cycles:int -> unit -> t
(** Defaults: 4 KB pages, 32 entries, 25-cycle page-walk penalty
    (K8 figures).  [page_bytes] must be a power of two. *)

val access : t -> int -> int
(** [access t addr] returns the cycle cost of the translation: 0 on a TLB
    hit, the miss penalty on a walk (which also installs the entry). *)

val hits : t -> int
val misses : t -> int
val miss_rate : t -> float
val reach_bytes : t -> int
(** [entries * page_bytes] — the address range the TLB can cover. *)

val flush : t -> unit
