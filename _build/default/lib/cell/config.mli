(** Cell Broadband Engine machine parameters.

    Hardware constants come from the Cell BE Handbook / the paper's
    description (3.2 GHz clock, 8 SPEs, 256 KB local stores, 25.6 GB/s
    aggregate memory bandwidth).  The thread-spawn cost is the one genuinely
    software-dependent parameter: the paper shows (Fig. 6) that on their
    2.6-series kernel, launching an SPE thread was expensive enough that
    respawning every time step destroyed the 8-SPE speedup, and mailboxes
    had to be used instead.  It is calibrated in
    {!Harness.Calibration} against the prose ratios and asserted by test. *)

type t = {
  clock : Sim_util.Units.clock;       (** SPE clock, 3.2 GHz *)
  n_spes : int;                       (** 8 on the paper's blades *)
  ls_bytes : int;                     (** 256 KB local store per SPE *)
  dma_bandwidth : float;              (** bytes/s one SPE's DMA engine can
                                          sustain alone *)
  mem_bandwidth : float;              (** bytes/s of the shared memory
                                          interface (25.6 GB/s XDR) — the
                                          EIB itself is faster, so main
                                          memory is the contended
                                          resource when several SPEs
                                          stream at once *)
  dma_latency : float;                (** per-request setup time, seconds *)
  dma_max_request : int;              (** 16 KB hardware limit per request *)
  spawn_seconds : float;              (** PPE cost to create one SPE thread *)
  mailbox_seconds : float;            (** one blocking mailbox send/recv *)
  ppe_slowdown : float;
      (** in-order PPE cycles-per-op handicap relative to the Opteron model
          running the same block (the paper measures the PPE at roughly
          5x the Opteron runtime) *)
}

val default : t
(** Paper-era blade with the calibrated software costs. *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical values (used by tests and by
    [Machine.create]). *)
