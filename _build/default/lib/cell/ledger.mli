(** Wall-clock decomposition ledger for the Cell machine.

    Fig. 6 of the paper plots the total runtime next to the part of it
    spent launching SPE threads; the machine model therefore accounts every
    second of virtual wall time to a category so that the breakdown is a
    measurement, not an estimate. *)

type category =
  | Spawn        (** PPE creating SPE threads *)
  | Signal       (** mailbox handshakes *)
  | Dma          (** data movement on the critical path *)
  | Compute      (** SPE computation on the critical path *)
  | Ppe          (** serial PPE work (integration, energy sums) *)
  | Sync         (** barriers / completion waits *)

val category_name : category -> string
val all_categories : category list

include Sim_util.Ledger_f.S with type category := category
