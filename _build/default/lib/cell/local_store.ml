module F32 = Sim_util.F32

exception Overflow of { requested : int; available : int }

type t = {
  capacity : int;
  mutable used : int;
  mutable generation : int;
}

type buffer = {
  store : t;
  buf_name : string;
  data : float array;
  born : int; (* generation at allocation; stale after reset *)
}

let create ~capacity_bytes =
  if capacity_bytes <= 0 then
    invalid_arg "Local_store.create: capacity must be positive";
  { capacity = capacity_bytes; used = 0; generation = 0 }

let quadword_bytes floats = ((floats * 4) + 15) / 16 * 16

let alloc t ~name ~floats =
  if floats < 0 then invalid_arg "Local_store.alloc: negative size";
  let bytes = quadword_bytes floats in
  if t.used + bytes > t.capacity then
    raise (Overflow { requested = bytes; available = t.capacity - t.used });
  t.used <- t.used + bytes;
  { store = t; buf_name = name; data = Array.make floats 0.0;
    born = t.generation }

let reset t =
  t.used <- 0;
  t.generation <- t.generation + 1

let used_bytes t = t.used
let capacity_bytes t = t.capacity

let check_live b =
  if b.born <> b.store.generation then
    invalid_arg
      (Printf.sprintf "Local_store: buffer %S used after reset" b.buf_name)

let length b = Array.length b.data
let name b = b.buf_name

let get b i =
  check_live b;
  b.data.(i)

let set b i v =
  check_live b;
  b.data.(i) <- F32.round v

let fill b v =
  check_live b;
  Array.fill b.data 0 (Array.length b.data) (F32.round v)

let blit_from_array ~src ~src_pos ~dst ~dst_pos ~len =
  check_live dst;
  if len < 0 || src_pos < 0 || dst_pos < 0
     || src_pos + len > Array.length src
     || dst_pos + len > Array.length dst.data
  then invalid_arg "Local_store.blit_from_array: range";
  for k = 0 to len - 1 do
    dst.data.(dst_pos + k) <- F32.round src.(src_pos + k)
  done

let blit_to_array ~src ~src_pos ~dst ~dst_pos ~len =
  check_live src;
  if len < 0 || src_pos < 0 || dst_pos < 0
     || src_pos + len > Array.length src.data
     || dst_pos + len > Array.length dst
  then invalid_arg "Local_store.blit_to_array: range";
  Array.blit src.data src_pos dst dst_pos len
