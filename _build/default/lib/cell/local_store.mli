(** An SPE's 256 KB local store.

    The local store is the defining constraint of the Cell programming
    model: code and data must be staged into it explicitly by DMA, and a
    kernel whose working set exceeds it must tile.  This module enforces
    the capacity (allocation past it raises {!Overflow}), and stores
    single-precision values — every [set] rounds to binary32, because
    that is what the SPE's quadword registers and the paper's port hold. *)

exception Overflow of { requested : int; available : int }

type t
type buffer

val create : capacity_bytes:int -> t
val alloc : t -> name:string -> floats:int -> buffer
(** Allocates a buffer of [floats] binary32 slots (4 bytes each, rounded up
    to quadword alignment).  Raises {!Overflow} if it does not fit. *)

val reset : t -> unit
(** Release all buffers (a new kernel run starts with an empty store).
    Previously returned buffers must not be used afterwards; access raises
    [Invalid_argument]. *)

val used_bytes : t -> int
val capacity_bytes : t -> int

val length : buffer -> int
val name : buffer -> string
val get : buffer -> int -> float
val set : buffer -> int -> float -> unit
(** Rounds the value to binary32. *)

val fill : buffer -> float -> unit
val blit_from_array : src:float array -> src_pos:int -> dst:buffer ->
  dst_pos:int -> len:int -> unit
(** Copy doubles in, rounding each to binary32 (what a DMA of float data
    produced by a float-converting PPE staging loop holds). *)

val blit_to_array : src:buffer -> src_pos:int -> dst:float array ->
  dst_pos:int -> len:int -> unit
