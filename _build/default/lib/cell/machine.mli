(** The Cell BE machine model: one PPE orchestrating SPE offloads.

    The model follows the paper's "Asynchronous Thread Runtime" usage: the
    PPE runs the serial parts of the application and offloads a
    performance-critical function to [k] SPE threads.  Each offload is
    simulated functionally — the kernel really computes, in single
    precision, against its SPE's local store — while virtual wall time is
    accrued as

    {v spawn/signal (serial on the PPE)  +  max over SPEs of
       (DMA time + compute time) v}

    and decomposed into a {!Ledger} (Fig. 6 plots exactly that
    decomposition).  Thread-launch amortization is the experiment: in
    [Respawn] mode every offload pays thread creation for each SPE; in
    [Persistent] mode threads are created once and subsequent offloads pay
    only a mailbox handshake per SPE. *)

type t

val create : Config.t -> t
val config : t -> Config.t

val time : t -> float
(** Virtual wall-clock seconds accrued so far. *)

val ledger : t -> Ledger.t
(** Invariant (tested): [Ledger.total (ledger t) = time t]. *)

val reset : t -> unit
(** Zero the clock and ledger and terminate persistent threads. *)

val spawned_spes : t -> int
(** Number of persistent SPE threads currently alive. *)

(** {1 SPE-side context} *)

type spe_ctx

val spe_id : spe_ctx -> int
val local_store : spe_ctx -> Local_store.t

val dma_get : spe_ctx -> src:float array -> src_pos:int ->
  dst:Local_store.buffer -> dst_pos:int -> len:int -> unit
(** Transfer [len] floats from main memory into the local store (rounding
    to binary32), charging the SPE's DMA engine: the transfer is split into
    requests of at most [dma_max_request] bytes, each paying the request
    latency plus bytes/bandwidth. *)

val dma_put : spe_ctx -> src:Local_store.buffer -> src_pos:int ->
  dst:float array -> dst_pos:int -> len:int -> unit

val charge_cycles : spe_ctx -> float -> unit
(** Add raw SPE compute cycles (must be nonnegative). *)

val charge_block : spe_ctx -> Isa.Block.t -> iterations:int ->
  overlap:float -> unit
(** Charge a basic block's estimated cycles via {!Isa.Spe_pipe}. *)

val dma_busy : spe_ctx -> float
val compute_busy : spe_ctx -> float

(** {1 PPE-side operations} *)

type launch_mode = Respawn | Persistent

val offload : t -> spes:int -> mode:launch_mode -> (spe_ctx -> unit) -> unit
(** Run the kernel on [spes] SPE threads.  The kernel function is invoked
    once per SPE with that SPE's context; kernels run concurrently in
    virtual time (wall time advances by the maximum busy time), so kernels
    must not depend on each other's side effects within one offload.
    Raises [Invalid_argument] if [spes] is outside [1 .. n_spes]. *)

val ppe_charge : t -> seconds:float -> unit
(** Serial PPE work measured externally. *)

val ppe_block : t -> Isa.Block.t -> iterations:int -> unit
(** Serial PPE work estimated from a block: the in-order PPE is modelled
    as the Opteron resource model handicapped by [ppe_slowdown], at the
    Cell clock. *)

val dma_seconds : ?active_spes:int -> t -> bytes:int -> float
(** The DMA cost function, exposed for tests and capacity planning:
    per-request latency plus bytes over the effective bandwidth — one
    SPE's engine limit, or a fair share of the 25.6 GB/s memory interface
    when [active_spes] stream concurrently (default 1). *)
