lib/cell/machine.ml: Array Config Float Isa Ledger Local_store Printf Sim_util
