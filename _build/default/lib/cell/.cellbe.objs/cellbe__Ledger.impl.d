lib/cell/ledger.ml: Sim_util
