lib/cell/machine.mli: Config Isa Ledger Local_store
