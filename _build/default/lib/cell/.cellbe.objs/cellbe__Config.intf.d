lib/cell/config.mli: Sim_util
