lib/cell/ledger.mli: Sim_util
