lib/cell/local_store.ml: Array Printf Sim_util
