lib/cell/config.ml: Sim_util
