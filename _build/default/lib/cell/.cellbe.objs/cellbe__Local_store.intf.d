lib/cell/local_store.mli:
