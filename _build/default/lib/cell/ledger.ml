module Category = struct
  type t = Spawn | Signal | Dma | Compute | Ppe | Sync

  let all = [ Spawn; Signal; Dma; Compute; Ppe; Sync ]

  let name = function
    | Spawn -> "spawn"
    | Signal -> "signal"
    | Dma -> "dma"
    | Compute -> "compute"
    | Ppe -> "ppe"
    | Sync -> "sync"
end

type category = Category.t = Spawn | Signal | Dma | Compute | Ppe | Sync

include (
  Sim_util.Ledger_f.Make (Category) :
    Sim_util.Ledger_f.S with type category := category)

let category_name = Category.name
let all_categories = Category.all
