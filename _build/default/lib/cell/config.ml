type t = {
  clock : Sim_util.Units.clock;
  n_spes : int;
  ls_bytes : int;
  dma_bandwidth : float;
  mem_bandwidth : float;
  dma_latency : float;
  dma_max_request : int;
  spawn_seconds : float;
  mailbox_seconds : float;
  ppe_slowdown : float;
}

let default =
  { clock = Sim_util.Units.clock ~hz:3.2e9 ~label:"SPE 3.2 GHz";
    n_spes = 8;
    ls_bytes = Sim_util.Units.kib 256;
    dma_bandwidth = Sim_util.Units.bytes_per_second ~gb_per_s:16.0;
    mem_bandwidth = Sim_util.Units.bytes_per_second ~gb_per_s:25.6;
    dma_latency = 1.0e-6 (* request setup incl. PPE-side MMIO *);
    dma_max_request = Sim_util.Units.kib 16;
    spawn_seconds = 0.010
    (* 2.6-series-kernel SPE thread creation; calibrated so that
       respawn-per-step makes 8 SPEs only ~1.5x faster than one (Fig. 6) *);
    mailbox_seconds = 3.1e-4
    (* blocking mailbox handshake incl. the PPE polling loop *);
    ppe_slowdown = 6.7 }

let validate t =
  let check name ok = if not ok then invalid_arg ("Cellbe.Config: bad " ^ name) in
  check "n_spes" (t.n_spes >= 1 && t.n_spes <= 16);
  check "ls_bytes" (t.ls_bytes > 0);
  check "dma_bandwidth" (t.dma_bandwidth > 0.0);
  check "mem_bandwidth" (t.mem_bandwidth > 0.0);
  check "dma_latency" (t.dma_latency >= 0.0);
  check "dma_max_request" (t.dma_max_request > 0);
  check "spawn_seconds" (t.spawn_seconds >= 0.0);
  check "mailbox_seconds" (t.mailbox_seconds >= 0.0);
  check "ppe_slowdown" (t.ppe_slowdown >= 1.0)
