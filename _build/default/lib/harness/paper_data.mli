(** The paper's quantitative claims, as testable bands.

    The OCR of the paper lost the exact Table 1 cell values, so the
    authoritative targets are the prose statements (each quoted at its
    band below).  Bands are deliberately wide enough to absorb the
    model-vs-testbed gap and tight enough that the *shape* — who wins, by
    roughly what factor, where crossovers fall — cannot silently invert.
    Every band is asserted by the experiment checks and by the test
    suite. *)

type band = { lo : float; hi : float; claim : string }

val in_band : band -> float -> bool
val describe : band -> float -> string
(** "<value> in [lo, hi] (claim)" or "... OUTSIDE ...". *)

(** {1 Table 1 / Cell} *)

val cell_8spe_vs_opteron : band
(** "using all 8 SPEs results in a better than 5x performance improvement
    relative to the Opteron" *)

val cell_1spe_vs_opteron : band
(** "even a single SPE just edges out the Opteron in total performance"
    (ratio Opteron/1-SPE, slightly above 1) *)

val cell_8spe_vs_ppe : band
(** "26x faster than the PPE alone" *)

(** {1 Fig. 5 — SIMD ladder, step speedups} *)

(** "a small speedup" *)
val ladder_copysign : band
val ladder_reflection : band
(** "running over 1.5x faster than the original" — cumulative vs V0 *)

(** "21% improvement" *)
val ladder_direction : band

(** "15% improvement" *)
val ladder_length : band
val ladder_acceleration : band
(** "the total improvement in runtime was only 3%" *)

(** {1 Fig. 6 — launch overhead} *)

val respawn_8spe_vs_1spe : band
(** "makes even an efficient parallelization run only about 1.5x faster
    using all SPEs" *)

val persistent_8spe_vs_1spe : band
(** "this eight-SPE version is now 4.5x faster than this single-SPE
    version" *)

(** {1 Fig. 7 — GPU} *)

val gpu_vs_opteron_2048 : band
(** "For a run of 2048 atoms, the GPU implementation is almost 6x faster
    than the CPU" *)

val gpu_crossover_max_atoms : int
(** The GPU must be the slower device at some N at or below this size
    ("these costs ... make the GPU implementation take longer to run than
    the CPU version at very small numbers of atoms"). *)

(** {1 Fig. 8 / Fig. 9 — MTA-2} *)

val mta_fully_vs_partially_2048 : band
(** Fully multithreaded wins by a large, N-growing margin (figure reads
    roughly 5-15x at the top of the sweep). *)

val mta_increase_tolerance : float
(** Fig. 9: MTA runtime growth tracks the N^2 pair-count growth within
    this relative tolerance ("proportional to the increase in the
    floating-point computation requirements"). *)

val opteron_increase_excess_min : float
(** Fig. 9: at the top of the sweep the Opteron's normalized increase
    must exceed the MTA's by at least this factor ("the runtime on the
    Opteron processor increases at a relatively faster rate"). *)
