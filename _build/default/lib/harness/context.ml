type scale = {
  atoms : int;
  steps : int;
  gpu_sweep : int list;
  mta_sweep : int list;
  seed : int;
}

let paper_scale =
  { atoms = 2048;
    steps = 10;
    gpu_sweep = [ 128; 256; 512; 1024; 2048; 4096 ];
    mta_sweep = [ 256; 512; 1024; 2048; 4096 ];
    seed = 42 }

let quick_scale =
  { atoms = 192;
    steps = 3;
    (* all sizes respect the minimum-image criterion at density 0.8 *)
    gpu_sweep = [ 128; 160; 192 ];
    mta_sweep = [ 128; 160; 192 ];
    seed = 42 }

type t = {
  scale : scale;
  systems : (int, Mdcore.System.t) Hashtbl.t;
  mutable opteron_main : Mdports.Run_result.t option;
  opteron_sweep : (int, float) Hashtbl.t;
  gpu_sweep : (int, float) Hashtbl.t;
  mta_sweep : (bool * int, float) Hashtbl.t;
  mutable profile : Mdports.Cell_port.profile option;
}

let create ?(scale = paper_scale) () =
  { scale;
    systems = Hashtbl.create 8;
    opteron_main = None;
    opteron_sweep = Hashtbl.create 8;
    gpu_sweep = Hashtbl.create 8;
    mta_sweep = Hashtbl.create 8;
    profile = None }

let scale t = t.scale

let system_of t ~n =
  match Hashtbl.find_opt t.systems n with
  | Some s -> s
  | None ->
    let s = Mdcore.Init.build ~seed:t.scale.seed ~n () in
    Hashtbl.add t.systems n s;
    s

let system t = system_of t ~n:t.scale.atoms

let opteron t =
  match t.opteron_main with
  | Some r -> r
  | None ->
    let r = Mdports.Opteron_port.run ~steps:t.scale.steps (system t) in
    t.opteron_main <- Some r;
    r

let opteron_seconds_of t ~n =
  if n = t.scale.atoms then (opteron t).Mdports.Run_result.seconds
  else begin
    match Hashtbl.find_opt t.opteron_sweep n with
    | Some s -> s
    | None ->
      let r = Mdports.Opteron_port.run ~steps:t.scale.steps (system_of t ~n) in
      Hashtbl.add t.opteron_sweep n r.Mdports.Run_result.seconds;
      r.Mdports.Run_result.seconds
  end

let memo tbl key compute =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.add tbl key v;
    v

let gpu_seconds_of t ~n =
  memo t.gpu_sweep n (fun () ->
      (Mdports.Gpu_port.run ~steps:t.scale.steps (system_of t ~n))
        .Mdports.Run_result.seconds)

let mta_seconds_of t ~mode ~n =
  memo t.mta_sweep
    (mode = Mdports.Mta_port.Fully_multithreaded, n)
    (fun () ->
      (Mdports.Mta_port.run ~steps:t.scale.steps ~mode (system_of t ~n))
        .Mdports.Run_result.seconds)

let cell_profile t =
  match t.profile with
  | Some p -> p
  | None ->
    let p = Mdports.Cell_port.profile_run ~steps:t.scale.steps (system t) in
    t.profile <- Some p;
    p
