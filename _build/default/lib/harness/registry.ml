let all =
  [ Exp_table1.experiment;
    Exp_fig5.experiment;
    Exp_fig6.experiment;
    Exp_fig7.experiment;
    Exp_fig8.experiment;
    Exp_fig9.experiment ]

let extensions =
  [ Exp_ext_precision.experiment;
    Exp_ext_xmt.experiment;
    Exp_ext_pairlist.experiment;
    Exp_ext_gpu_reduction.experiment;
    Exp_ext_gpu_next.experiment;
    Exp_ext_cutoff.experiment ]

let find id =
  List.find_opt (fun e -> e.Experiment.id = id) (all @ extensions)

let ids = List.map (fun e -> e.Experiment.id) all
let extension_ids = List.map (fun e -> e.Experiment.id) extensions
