(** All reproduced experiments, in paper order, plus the extension
    studies (ablations and the paper's Section 6 what-ifs). *)

val all : Experiment.t list
(** The paper's six artifacts: table1, fig5 … fig9. *)

val extensions : Experiment.t list
(** Beyond the paper: ext-precision, ext-xmt, ext-pairlist,
    ext-gpu-reduction, ext-gpu-next, ext-cutoff. *)

val find : string -> Experiment.t option
(** Look up by id across both lists. *)

val ids : string list
val extension_ids : string list
