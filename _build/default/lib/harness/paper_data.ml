type band = { lo : float; hi : float; claim : string }

let in_band b v = v >= b.lo && v <= b.hi

let describe b v =
  Printf.sprintf "%.3f %s [%.3f, %.3f] (%s)" v
    (if in_band b v then "in" else "OUTSIDE")
    b.lo b.hi b.claim

let cell_8spe_vs_opteron =
  { lo = 4.5; hi = 7.0; claim = "8 SPEs better than 5x over the Opteron" }

let cell_1spe_vs_opteron =
  { lo = 1.0; hi = 1.45; claim = "a single SPE just edges out the Opteron" }

let cell_8spe_vs_ppe =
  { lo = 18.0; hi = 34.0; claim = "8 SPEs 26x faster than the PPE alone" }

let ladder_copysign =
  { lo = 1.02; hi = 1.18; claim = "copysign: a small speedup" }

let ladder_reflection =
  { lo = 1.4; hi = 1.9;
    claim = "SIMD reflection: over 1.5x faster than the original (cumulative)" }

let ladder_direction =
  { lo = 1.08; hi = 1.32; claim = "SIMD direction: ~21% improvement" }

let ladder_length =
  { lo = 1.04; hi = 1.25; claim = "SIMD length: ~15% improvement" }

let ladder_acceleration =
  { lo = 1.002; hi = 1.08; claim = "SIMD acceleration: only ~3%" }

let respawn_8spe_vs_1spe =
  { lo = 1.15; hi = 1.9;
    claim = "respawning each step: only about 1.5x faster with all 8 SPEs" }

let persistent_8spe_vs_1spe =
  { lo = 3.5; hi = 5.8;
    claim = "persistent threads: 8 SPEs 4.5x faster than a single SPE" }

let gpu_vs_opteron_2048 =
  { lo = 4.5; hi = 7.5; claim = "GPU almost 6x faster than the CPU at 2048" }

let gpu_crossover_max_atoms = 256

let mta_fully_vs_partially_2048 =
  { lo = 3.0; hi = 15.0;
    claim = "fully multithreaded significantly faster; gap grows with N" }

let mta_increase_tolerance = 0.10

let opteron_increase_excess_min = 1.02
