(** Running experiments and rendering their outcomes. *)

val render_outcome : Experiment.outcome -> string
(** Title, data table, per-check PASS/FAIL lines and notes, as plain
    text. *)

val run_one : Context.t -> Experiment.t -> Experiment.outcome

val run_all : Context.t -> Experiment.outcome list
(** Paper order. *)

val render_all : Experiment.outcome list -> string

val write_csvs : dir:string -> Experiment.outcome list -> string list
(** Write one CSV per outcome into [dir] (created if missing); returns
    the file paths. *)

val to_markdown : Experiment.outcome list -> string
(** A self-contained Markdown report: per-artifact section with the data
    table, the rendered figure (fenced), check results and notes, plus
    the summary line — ready to paste into an issue or EXPERIMENTS-style
    document. *)

val summary_line : Experiment.outcome list -> string
(** e.g. "6/6 experiments reproduce the paper's shape (23/23 checks)". *)
