lib/harness/exp_ext_gpu_next.ml: Context Experiment Gpustream List Mdports Printf Sim_util
