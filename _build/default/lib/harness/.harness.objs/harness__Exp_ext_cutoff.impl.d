lib/harness/exp_ext_cutoff.ml: Context Experiment List Mdcore Mdports Printf Sim_util String
