lib/harness/exp_ext_pairlist.ml: Context Experiment List Mdports Printf Sim_util
