lib/harness/exp_fig5.ml: Context Experiment List Mdports Paper_data Printf Sim_util
