lib/harness/context.ml: Hashtbl Mdcore Mdports
