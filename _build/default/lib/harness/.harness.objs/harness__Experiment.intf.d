lib/harness/experiment.mli: Context Paper_data Sim_util
