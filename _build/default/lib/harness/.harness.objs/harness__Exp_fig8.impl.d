lib/harness/exp_fig8.ml: Context Experiment List Mdports Paper_data Printf Sim_util String
