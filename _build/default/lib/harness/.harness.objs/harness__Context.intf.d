lib/harness/context.mli: Mdcore Mdports
