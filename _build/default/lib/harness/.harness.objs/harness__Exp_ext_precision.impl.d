lib/harness/exp_ext_precision.ml: Context Experiment Isa Mdports Printf Sim_util
