lib/harness/exp_fig6.ml: Context Experiment List Mdports Paper_data Printf Sim_util
