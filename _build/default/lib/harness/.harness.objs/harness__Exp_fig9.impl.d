lib/harness/exp_fig9.ml: Context Experiment List Mdports Paper_data Printf Sim_util
