lib/harness/exp_fig7.ml: Context Experiment List Paper_data Printf Sim_util
