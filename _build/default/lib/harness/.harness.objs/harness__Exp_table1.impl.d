lib/harness/exp_table1.ml: Context Experiment Mdports Paper_data Printf Sim_util
