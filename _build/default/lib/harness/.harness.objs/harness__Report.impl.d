lib/harness/report.ml: Buffer Experiment Filename Fun List Printf Registry Sim_util String Sys
