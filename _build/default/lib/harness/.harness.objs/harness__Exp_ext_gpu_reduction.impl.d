lib/harness/exp_ext_gpu_reduction.ml: Context Experiment Float List Mdports Printf Sim_util
