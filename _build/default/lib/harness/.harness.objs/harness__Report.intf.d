lib/harness/report.mli: Context Experiment
