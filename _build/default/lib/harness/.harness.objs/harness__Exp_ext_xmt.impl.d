lib/harness/exp_ext_xmt.ml: Context Experiment List Mdports Mta Printf Sim_util
