lib/harness/experiment.ml: Context List Paper_data Sim_util
