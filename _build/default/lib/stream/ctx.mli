(** A stream-programming context: one GPU device plus the bookkeeping a
    Brook-style runtime keeps (unique resource names, a compiled-kernel
    cache).

    Section 4 of the paper points at exactly this layer: "I. Buck presents
    acceleration strategies for GROMACS ... on GPU using a streaming
    language, Brook", and Section 3.2 notes that vendors were announcing
    "non-graphics oriented APIs" to hide the shader machinery.  This
    library is that abstraction over {!Gpustream}: immutable streams and
    kernel application instead of textures, render targets and draw
    calls — with the same costs charged underneath, so the convenience
    layer's overheads stay visible. *)

type t

val create : ?config:Gpustream.Config.t -> unit -> t
val machine : t -> Gpustream.Machine.t

val time : t -> float
(** Virtual seconds accrued on the underlying device. *)

val fresh_name : t -> string -> string
(** [fresh_name t prefix] generates a unique resource name. *)

val compiled : t -> name:string -> body:Isa.Block.t ->
  prologue:Isa.Block.t -> Gpustream.Machine.shader
(** Kernel cache: the first request JITs (charging the one-time setup
    cost); later requests with the same [name] reuse the compiled
    shader, as a Brook runtime caches its generated Cg. *)
