(** Immutable device-resident streams of float4 values.

    The Brook model the paper's related work uses: "arrays must be
    designated as either input or output, but not both" — a stream is a
    read-only value; every kernel application produces a {e new} stream,
    and the runtime pays a render-to-texture resolve to make the result
    readable (exactly the ping-pong a Brook runtime performs).  All bus
    and shader costs accrue on the context's machine, so programs written
    at this level can be compared fairly against hand-written ports. *)

type t

val length : t -> int
val ctx : t -> Ctx.t

(** {1 Host <-> device} *)

val of_array : Ctx.t -> Vecmath.Vec4f.t array -> t
(** Upload (charges host-to-device transfer). *)

val of_floats : Ctx.t -> float array -> t
(** Upload scalars in the x lane. *)

val to_array : t -> Vecmath.Vec4f.t array
(** Read a stream back: one copy kernel into a render target plus the
    device-to-host transfer (streams are textures; the bus only sees
    render targets — a real 2006 constraint this layer preserves). *)

val to_floats : t -> float array
(** x lanes of {!to_array}. *)

(** {1 Kernels}

    Every kernel application takes a [body] block (the per-invocation
    instruction stream, used for timing) and a pure function (the
    semantics).  Input streams may be read at any index; the output index
    is fixed per invocation — the gather-only contract. *)

val map : ?name:string -> body:Isa.Block.t ->
  f:(Vecmath.Vec4f.t -> Vecmath.Vec4f.t) -> t -> t

val map2 : ?name:string -> body:Isa.Block.t ->
  f:(Vecmath.Vec4f.t -> Vecmath.Vec4f.t -> Vecmath.Vec4f.t) -> t -> t -> t
(** Element-wise over two streams of equal length (raises otherwise). *)

val gather : ?name:string -> body:Isa.Block.t -> loop_trip:int ->
  out_len:int ->
  f:((int -> Vecmath.Vec4f.t) -> int -> Vecmath.Vec4f.t) -> t -> t
(** [gather ~body ~loop_trip ~out_len ~f s] runs [f fetch i] for each
    output index [i] in [0, out_len); [fetch j] reads element [j] of
    [s].  [loop_trip] is the number of [body] iterations one invocation
    performs (for timing); the MD force kernel is
    [gather ~loop_trip:(length s)]. *)

val free : t -> unit
(** Release the stream's device memory.  Long pipelines should free
    intermediates they no longer need; using a freed stream is a
    host-program bug (unchecked, as on the real driver). *)

val reduce_sum : ?lane:int -> t -> float
(** Multi-pass 8-to-1 on-device sum of one lane (default lane 0),
    finishing with a one-texel readback — the Brook [reduce] primitive,
    with its real multi-pass cost. *)
