lib/stream/ctx.mli: Gpustream Isa
