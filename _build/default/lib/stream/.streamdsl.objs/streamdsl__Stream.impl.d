lib/stream/stream.ml: Array Ctx Gpustream Isa List Sim_util Vecmath
