lib/stream/ctx.ml: Gpustream Hashtbl Printf
