lib/stream/stream.mli: Ctx Isa Vecmath
