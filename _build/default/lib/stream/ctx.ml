type t = {
  machine : Gpustream.Machine.t;
  mutable counter : int;
  shaders : (string, Gpustream.Machine.shader) Hashtbl.t;
}

let create ?(config = Gpustream.Config.geforce_7900gtx) () =
  { machine = Gpustream.Machine.create config;
    counter = 0;
    shaders = Hashtbl.create 16 }

let machine t = t.machine
let time t = Gpustream.Machine.time t.machine

let fresh_name t prefix =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s-%d" prefix t.counter

let compiled t ~name ~body ~prologue =
  match Hashtbl.find_opt t.shaders name with
  | Some s -> s
  | None ->
    let s = Gpustream.Machine.compile t.machine ~name ~body ~prologue in
    Hashtbl.add t.shaders name s;
    s
