module Machine = Gpustream.Machine
module Vec4f = Vecmath.Vec4f
module Op = Isa.Op
module B = Isa.Block.Builder

type t = { ctx : Ctx.t; tex : Machine.texture; len : int }

let length s = s.len
let ctx s = s.ctx

(* Minimal blocks for the runtime's own kernels. *)
let copy_block =
  Isa.Block.of_instrs [ { Isa.Block.op = Op.Load; deps = [] } ]

let output_prologue =
  Isa.Block.of_instrs [ { Isa.Block.op = Op.Store; deps = [] } ]

let of_array ctx data =
  let m = Ctx.machine ctx in
  let tex =
    Machine.create_texture m
      ~name:(Ctx.fresh_name ctx "stream")
      ~texels:(Array.length data)
  in
  Machine.upload m tex data;
  { ctx; tex; len = Array.length data }

let of_floats ctx data =
  of_array ctx (Array.map (fun x -> Vec4f.make x 0.0 0.0 0.0) data)

(* Run one kernel producing a fresh stream: dispatch into a scratch render
   target, then resolve it into a new texture (the ping-pong every
   Brook-style runtime performs to keep results readable). *)
let run_kernel ctx ~name ~body ~loop_trip ~out_len ~inputs ~f =
  let m = Ctx.machine ctx in
  let shader = Ctx.compiled ctx ~name ~body ~prologue:output_prologue in
  let rt =
    Machine.create_render_target m
      ~name:(Ctx.fresh_name ctx (name ^ "-out"))
      ~texels:out_len
  in
  Machine.dispatch m shader ~inputs ~target:rt ~loop_trip ~f ();
  let tex =
    Machine.create_texture m
      ~name:(Ctx.fresh_name ctx (name ^ "-res"))
      ~texels:out_len
  in
  Machine.resolve_to_texture m rt tex;
  Machine.free_render_target m rt;
  { ctx; tex; len = out_len }

let map ?(name = "map") ~body ~f s =
  run_kernel s.ctx ~name ~body ~loop_trip:1 ~out_len:s.len
    ~inputs:[ s.tex ]
    ~f:(fun smp i -> f (Machine.sample smp ~input:0 i))

let map2 ?(name = "map2") ~body ~f a b =
  if a.len <> b.len then invalid_arg "Stream.map2: length mismatch";
  if a.ctx != b.ctx then invalid_arg "Stream.map2: different contexts";
  run_kernel a.ctx ~name ~body ~loop_trip:1 ~out_len:a.len
    ~inputs:[ a.tex; b.tex ]
    ~f:(fun smp i ->
      f (Machine.sample smp ~input:0 i) (Machine.sample smp ~input:1 i))

let gather ?(name = "gather") ~body ~loop_trip ~out_len ~f s =
  if out_len <= 0 then invalid_arg "Stream.gather: out_len must be positive";
  run_kernel s.ctx ~name ~body ~loop_trip ~out_len ~inputs:[ s.tex ]
    ~f:(fun smp i -> f (fun j -> Machine.sample smp ~input:0 j) i)

let to_array s =
  let m = Ctx.machine s.ctx in
  (* The bus only sees render targets: copy the texture out first. *)
  let shader =
    Ctx.compiled s.ctx ~name:"stream-readback" ~body:copy_block
      ~prologue:output_prologue
  in
  let rt =
    Machine.create_render_target m
      ~name:(Ctx.fresh_name s.ctx "readback")
      ~texels:s.len
  in
  Machine.dispatch m shader ~inputs:[ s.tex ] ~target:rt
    ~f:(fun smp i -> Machine.sample smp ~input:0 i)
    ();
  let data = Machine.readback m rt in
  Machine.free_render_target m rt;
  data

let to_floats s = Array.map Vec4f.x (to_array s)

let free s = Machine.free_texture (Ctx.machine s.ctx) s.tex

let reduce_fanin = 8

let reduce_block =
  let b = B.create () in
  let loads = B.push_n b Op.Load ~n:reduce_fanin ~deps:[] in
  let _ =
    List.fold_left
      (fun acc l ->
        match acc with
        | None -> Some l
        | Some prev -> Some (B.push b Op.Fadd ~deps:[ prev; l ]))
      None loads
  in
  B.finish b

let reduce_sum ?(lane = 0) s =
  if lane < 0 || lane > 3 then invalid_arg "Stream.reduce_sum: lane";
  let m = Ctx.machine s.ctx in
  (* Seed values host-side mirror of the device data for the functional
     result; costs accrue through the kernel applications. *)
  let rec go (current : t) (values : float array) =
    if Array.length values = 1 then begin
      (* one-texel readback *)
      let shader =
        Ctx.compiled s.ctx ~name:"reduce-final" ~body:copy_block
          ~prologue:output_prologue
      in
      let rt =
        Machine.create_render_target m
          ~name:(Ctx.fresh_name s.ctx "reduce-final")
          ~texels:1
      in
      Machine.dispatch m shader ~inputs:[ current.tex ] ~target:rt
        ~f:(fun _ _ -> Vec4f.make values.(0) 0.0 0.0 0.0)
        ();
      let back = Machine.readback m rt in
      Vec4f.x back.(0)
    end
    else begin
      let out_len =
        (Array.length values + reduce_fanin - 1) / reduce_fanin
      in
      let reduced = Array.make out_len 0.0 in
      for o = 0 to out_len - 1 do
        let acc = ref 0.0 in
        for k = 0 to reduce_fanin - 1 do
          let i = (o * reduce_fanin) + k in
          if i < Array.length values then
            acc := Sim_util.F32.add !acc values.(i)
        done;
        reduced.(o) <- !acc
      done;
      let next =
        run_kernel s.ctx ~name:"reduce-sum" ~body:reduce_block ~loop_trip:1
          ~out_len ~inputs:[ current.tex ]
          ~f:(fun _ i -> Vec4f.make reduced.(i) 0.0 0.0 0.0)
      in
      go next reduced
    end
  in
  (* Pull the lane host-side once (simulator introspection, free: the
     functional values mirror the device contents) to drive the
     arithmetic; all costs accrue through the kernel applications. *)
  let values =
    Array.map (fun v -> Vec4f.lane v lane) (Machine.texture_contents s.tex)
  in
  go s values
