lib/isa/opteron_pipe.ml: Array Block Float List Op
