lib/isa/spe_pipe.ml: Array Block Float List Op
