lib/isa/spe_pipe.mli: Block Op
