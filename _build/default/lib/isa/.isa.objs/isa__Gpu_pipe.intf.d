lib/isa/gpu_pipe.mli: Block Op
