lib/isa/gpu_pipe.ml: Array Block Op Printf
