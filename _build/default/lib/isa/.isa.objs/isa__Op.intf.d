lib/isa/op.mli:
