lib/isa/block.mli: Format Op
