lib/isa/block.ml: Array Format List Op Printf String
