lib/isa/opteron_pipe.mli: Block Op
