lib/isa/op.ml:
