type pipe = Even | Odd

let pipe_of (op : Op.t) =
  match op with
  | Fadd | Fmul | Fmadd | Fadd_dp | Fmul_dp | Fmadd_dp | Fdiv_dp | Fsqrt_dp
  | Fdiv | Fsqrt | Frecip_est | Frsqrt_est | Fcmp | Fsel | Fcopysign
  | Fconvert | Ialu ->
    Even
  | Load | Store | Shuffle | Branch_taken | Branch_not_taken | Branch_miss ->
    Odd

(* Cell BE Handbook, SPU instruction latencies (single precision). *)
let latency (op : Op.t) =
  match op with
  | Fadd | Fmul | Fmadd -> 6
  | Fadd_dp | Fmul_dp | Fmadd_dp -> 13
  | Fdiv_dp -> 2 * 13 (* estimate + two Newton steps in double *)
  | Fsqrt_dp -> 2 * 13
  | Fdiv -> 17 (* expanded to estimate + refinement by the compiler *)
  | Fsqrt -> 17
  | Frecip_est | Frsqrt_est -> 4
  | Fcmp -> 2
  | Fsel -> 2
  | Fcopysign -> 2 (* sign-bit logic ops *)
  | Fconvert -> 7
  | Ialu -> 2
  | Load -> 6
  | Store -> 6 (* commit latency; does not stall consumers *)
  | Shuffle -> 4
  | Branch_taken | Branch_not_taken -> 1
  | Branch_miss -> 1

let branch_miss_penalty = 18

(* The first-generation SPE's double-precision unit is not pipelined: a DP
   instruction blocks *all* instruction issue for six cycles beyond its
   own ("making the Cell an uncertain target for scientific applications
   in the minds of many developers"). *)
let issue_stall (op : Op.t) = if Op.is_double_precision op then 7 else 1

(* In-order dual-issue list scheduling.  [issue.(i)] is the cycle at which
   instruction [i] issues; completion is issue + latency.  At most one even
   and one odd instruction issue per cycle, in program order; a
   Branch_miss delays the *next* fetch by the flush penalty. *)
let schedule (block : Block.t) =
  let instrs = Block.instrs block in
  let n = Array.length instrs in
  let issue = Array.make n 0 in
  let next_fetch = ref 0 in
  (* Cycle occupancy of each pipe at the current frontier: we only need the
     last cycle each pipe issued in, because issue is in program order. *)
  let last_even = ref (-1) and last_odd = ref (-1) in
  let finish = ref 0 in
  for i = 0 to n - 1 do
    let ins = instrs.(i) in
    let ready =
      List.fold_left
        (fun acc d ->
          max acc (issue.(d) + latency instrs.(d).op))
        !next_fetch ins.deps
    in
    let pipe_free =
      match pipe_of ins.op with
      | Even -> !last_even + 1
      | Odd -> !last_odd + 1
    in
    (* In-order issue: cannot issue before the previous instruction's issue
       cycle. *)
    let prev_issue = if i = 0 then 0 else issue.(i - 1) in
    let t = max ready (max pipe_free prev_issue) in
    issue.(i) <- t;
    (match pipe_of ins.op with
    | Even -> last_even := t
    | Odd -> last_odd := t);
    next_fetch := max !next_fetch (t + issue_stall ins.op - 1);
    if ins.op = Branch_miss then next_fetch := t + branch_miss_penalty;
    finish := max !finish (t + latency ins.op)
  done;
  !finish

let critical_path_cycles block =
  if Block.length block = 0 then 0 else schedule block

let throughput_cycles block =
  let even =
    Array.fold_left
      (fun acc ({ op; _ } : Block.instr) ->
        if pipe_of op = Even then acc + issue_stall op else acc)
      0 (Block.instrs block)
  in
  let odd = Block.count_if block (fun op -> pipe_of op = Odd) in
  let miss = Block.count block Branch_miss in
  max even odd + (miss * branch_miss_penalty)

let per_iteration_cycles block ~overlap =
  if overlap < 0.0 || overlap > 1.0 then
    invalid_arg "Spe_pipe: overlap must be in [0,1]";
  let cp = float_of_int (critical_path_cycles block) in
  let tp = float_of_int (throughput_cycles block) in
  tp +. ((1.0 -. overlap) *. Float.max 0.0 (cp -. tp))

let loop_cycles block ~iterations ~overlap =
  if iterations < 0 then invalid_arg "Spe_pipe.loop_cycles: iterations < 0";
  float_of_int iterations *. per_iteration_cycles block ~overlap
