(** Static timing model of the Cell SPE pipeline.

    The SPE is dual-issue and strictly in-order: one "even" instruction
    (arithmetic) and one "odd" instruction (load/store/shuffle/branch) can
    issue per cycle, in program order.  There is no branch prediction — an
    unhinted taken branch flushes the fetch pipeline for
    [branch_miss_penalty] cycles, which is exactly why the paper's first
    optimization replaces an [if] with [copysign] arithmetic.

    The scheduler computes two figures for a block:
    - {!critical_path_cycles}: completion time of one isolated iteration
      under in-order dual issue with full dependence stalls;
    - {!throughput_cycles}: the issue-bandwidth lower bound
      (max of even-pipe and odd-pipe occupancy, plus branch penalties).

    A real software-pipelined/unrolled loop lands between the two;
    {!loop_cycles} interpolates with an [overlap] knob in [0,1]
    (0 = no overlap between iterations, 1 = perfectly pipelined). *)

type pipe = Even | Odd

val pipe_of : Op.t -> pipe
val latency : Op.t -> int
(** Result latency in cycles (per the Cell BE Handbook's SPU tables:
    single-precision FP 6, loads 6, shuffles 4, simple fixed-point 2...). *)

val branch_miss_penalty : int
(** 18 cycles, the documented SPU mispredict flush. *)

val critical_path_cycles : Block.t -> int
val throughput_cycles : Block.t -> int

val loop_cycles : Block.t -> iterations:int -> overlap:float -> float
(** Total cycles to run [iterations] back-to-back iterations of the block.
    Raises [Invalid_argument] if [overlap] is outside [0,1] or
    [iterations < 0]. *)

val per_iteration_cycles : Block.t -> overlap:float -> float
(** [loop_cycles b ~iterations:1] under the same interpolation — handy for
    reporting tables of per-pair costs. *)
