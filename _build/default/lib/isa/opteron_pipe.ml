let latency (op : Op.t) =
  match op with
  | Fadd | Fadd_dp -> 4
  | Fmul | Fmul_dp -> 4
  | Fmadd | Fmadd_dp -> 8 (* no FMA on K8: mul feeding add *)
  | Fdiv -> 20
  | Fdiv_dp -> 20
  | Fsqrt -> 27
  | Fsqrt_dp -> 27
  | Frecip_est | Frsqrt_est -> 3
  | Fcmp -> 4
  | Fsel -> 2
  | Fcopysign -> 2
  | Fconvert -> 5
  | Ialu -> 1
  | Load -> 3
  | Store -> 3
  | Shuffle -> 2
  | Branch_taken | Branch_not_taken -> 1
  | Branch_miss -> 11 (* K8 mispredict penalty *)

let critical_path_cycles (block : Block.t) =
  let instrs = Block.instrs block in
  let n = Array.length instrs in
  let finish = Array.make n 0 in
  let result = ref 0 in
  for i = 0 to n - 1 do
    let ready =
      List.fold_left (fun acc d -> max acc finish.(d)) 0 instrs.(i).deps
    in
    finish.(i) <- ready + latency instrs.(i).op;
    result := max !result finish.(i)
  done;
  !result

(* Functional-unit occupancy in cycles for the whole block. *)
let resource_cycles (block : Block.t) =
  let fadd = ref 0.0
  and fmul = ref 0.0
  and mem = ref 0.0
  and total = ref 0.0
  and unpipelined = ref 0.0 in
  Array.iter
    (fun ({ op; _ } : Block.instr) ->
      total := !total +. 1.0;
      (match op with
      | Op.Fadd | Op.Fadd_dp | Op.Fcmp -> fadd := !fadd +. 1.0
      | Op.Fmul | Op.Fmul_dp | Op.Fcopysign | Op.Fsel | Op.Fconvert
      | Op.Frecip_est | Op.Frsqrt_est | Op.Shuffle ->
        fmul := !fmul +. 1.0
      | Op.Fmadd | Op.Fmadd_dp ->
        (* decomposes into one mul and one add *)
        fadd := !fadd +. 1.0;
        fmul := !fmul +. 1.0;
        total := !total +. 1.0
      | Op.Fdiv | Op.Fdiv_dp ->
        unpipelined := !unpipelined +. float_of_int (latency Op.Fdiv)
      | Op.Fsqrt | Op.Fsqrt_dp ->
        unpipelined := !unpipelined +. float_of_int (latency Op.Fsqrt)
      | Op.Load | Op.Store -> mem := !mem +. 0.5 (* two ports *)
      | Op.Ialu | Op.Branch_taken | Op.Branch_not_taken -> ()
      | Op.Branch_miss ->
        unpipelined := !unpipelined +. float_of_int (latency Op.Branch_miss)))
    (Block.instrs block);
  let decode = !total /. 3.0 in
  Float.max decode (Float.max !fadd (Float.max !fmul !mem)) +. !unpipelined

let per_iteration_cycles block ~overlap =
  if overlap < 0.0 || overlap > 1.0 then
    invalid_arg "Opteron_pipe: overlap must be in [0,1]";
  let cp = float_of_int (critical_path_cycles block) in
  let tp = resource_cycles block in
  tp +. ((1.0 -. overlap) *. Float.max 0.0 (cp -. tp))

let loop_cycles block ~iterations ~overlap =
  if iterations < 0 then invalid_arg "Opteron_pipe.loop_cycles: iterations < 0";
  float_of_int iterations *. per_iteration_cycles block ~overlap
