(** Static timing model of a 2006-era GPU pixel pipeline (GeForce
    7900GTX-class, the card the paper measures).

    A fragment (shader invocation) is timed by a pure throughput model:
    GPUs of that generation keep hundreds of fragments in flight, so
    dependence latency is fully hidden and the cost of a fragment is the
    sum of per-op issue costs.  The device runs [pipes] fragments in
    parallel (24 pixel pipelines on the 7900GTX), so a dispatch of [n]
    fragments takes [n * cycles_per_fragment / pipes] cycles of shader
    core time. *)

val issue_cost : Op.t -> float
(** Issue slots consumed by one op in one pipeline.  Vector (4-wide) ops
    cost the same as scalar ones — the hardware is natively 4-wide, which
    is exactly why the paper packs x,y,z(,PE) into one register. *)

val cycles_per_fragment : Block.t -> float
(** Sum of issue costs; raises on blocks containing [Store]s beyond one
    output write or on data-dependent branches (modelled as both-sides
    execution, the 2006 hardware reality). *)

val dispatch_cycles : Block.t -> fragments:int -> pipes:int -> float
(** Shader-core cycles to process [fragments] invocations of the block on
    [pipes] parallel pipelines (ceil-free fluid model; the error is
    negligible at the fragment counts the paper uses). *)
