(** Static timing model of a 2.2 GHz AMD Opteron (K8) core — the paper's
    reference processor.

    The K8 is a 3-wide out-of-order design with one FADD pipe, one FMUL
    pipe and two load/store ports; divides and square roots are unpipelined
    in the FMUL unit.  Out-of-order execution across loop iterations hides
    most dependence latency, so the model is resource-throughput-based:

    cycles/iter = max(decode bound, FADD-pipe bound, FMUL-pipe bound,
                      memory-port bound) + unpipelined div/sqrt occupancy
                  + exposed-latency correction (1-overlap fraction of the
                    dependence critical path).

    Cache behaviour is {e not} part of this model — memory-hierarchy stalls
    come from {!Memsim} via the port's address trace, because Fig. 9's
    super-quadratic Opteron scaling is specifically a cache effect. *)

val latency : Op.t -> int
(** Dependence latency in cycles (K8: FP add/mul 4, SSE divide ~20,
    sqrt ~27, L1 load-to-use 3). *)

val critical_path_cycles : Block.t -> int
(** Dataflow critical path (ignores issue width; lower bound on one
    isolated iteration). *)

val resource_cycles : Block.t -> float
(** Throughput bound from functional-unit occupancy. *)

val per_iteration_cycles : Block.t -> overlap:float -> float
val loop_cycles : Block.t -> iterations:int -> overlap:float -> float
