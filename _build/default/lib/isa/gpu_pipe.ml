(* NV4x/G7x shader ALUs execute one 4-wide MAD per cycle per pipeline;
   transcendentals and divides run on a mini-ALU at lower throughput;
   texture fetches are pipelined at one per cycle per pipe (we assume
   cache-resident textures — the position texture the paper streams is at
   most 128 KB). *)
let issue_cost (op : Op.t) =
  match op with
  | Fadd_dp | Fmul_dp | Fmadd_dp | Fdiv_dp | Fsqrt_dp ->
    invalid_arg
      (Printf.sprintf
         "Gpu_pipe: %s — 2006 fragment hardware has no double-precision           units (the paper's outstanding issue)"
         (Op.to_string op))
  | Fadd | Fmul | Fmadd -> 1.0
  | Fdiv -> 4.0
  | Fsqrt -> 4.0
  | Frecip_est -> 2.0
  | Frsqrt_est -> 2.0
  | Fcmp -> 1.0
  | Fsel -> 1.0
  | Fcopysign -> 1.0
  | Fconvert -> 1.0
  | Ialu -> 1.0
  | Load -> 1.0 (* texture fetch, cache hit *)
  | Store -> 1.0 (* the single output write *)
  | Shuffle -> 1.0 (* free swizzles, but budget one slot when explicit *)
  | Branch_taken | Branch_not_taken | Branch_miss ->
    (* SM3-era "branching" predicates both sides; charging one slot per
       branch op models the predication overhead. *)
    1.0

let cycles_per_fragment block =
  let stores = Block.count block Op.Store in
  if stores > 1 then
    invalid_arg
      "Gpu_pipe.cycles_per_fragment: a fragment has a single output write";
  Array.fold_left
    (fun acc ({ op; _ } : Block.instr) -> acc +. issue_cost op)
    0.0 (Block.instrs block)

let dispatch_cycles block ~fragments ~pipes =
  if fragments < 0 then invalid_arg "Gpu_pipe.dispatch_cycles: fragments < 0";
  if pipes <= 0 then invalid_arg "Gpu_pipe.dispatch_cycles: pipes <= 0";
  float_of_int fragments *. cycles_per_fragment block /. float_of_int pipes
