(** Smith–Waterman on the 2006 GPU, anti-diagonal passes.

    The structure of the GPU Smith–Waterman implementations the paper
    cites (W. Liu et al., Y. Liu et al.): the only parallelism a
    gather-only device can exploit in the DP recurrence is within one
    anti-diagonal, so the matrix is computed as a sequence of draw calls
    — one per diagonal, reading the two previous diagonals as textures —
    plus a running-maximum pass, and a final max-reduction.

    The per-diagonal dispatch overhead is the point: for short sequences
    the GPU spends its time in draw-call setup, which is why the cited
    papers batch many database sequences per pass. *)

type t
(** A prepared aligner: compiled shaders bound to one device (the JIT
    cost is paid once, as in a real port that scans a whole database). *)

val create : Gpustream.Machine.t -> t
val machine : t -> Gpustream.Machine.t

val align : ?scoring:Scoring.t -> t -> Dna.t -> Dna.t -> Reference.result
(** Identical score to {!Reference.align} (tested); the best-cell
    coordinates are not recovered (the real GPU ports return scores
    only — tracebacks run on the CPU for the few best hits). *)

val align_batch : ?scoring:Scoring.t -> t -> query:Dna.t -> Dna.t list ->
  Reference.result list
(** The batching trick of the cited GPU Smith–Waterman papers: align one
    query against many database subjects in a single sequence of
    anti-diagonal passes — the DP matrices ride side by side in one wide
    texture, so the draw-call count is independent of the batch size and
    its overhead amortizes across the whole database.  Scores equal the
    per-pair {!align} results (tested). *)

val cell_block : Isa.Block.t
val dispatches : Dna.t -> Dna.t -> int
(** Number of draw calls a single alignment will issue (diagnostic). *)
