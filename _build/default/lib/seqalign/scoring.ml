type t = { match_score : int; mismatch : int; gap : int }

let default = { match_score = 2; mismatch = -1; gap = -2 }

let validate t =
  if t.match_score <= 0 then invalid_arg "Scoring: match_score must be > 0";
  if t.mismatch >= 0 then invalid_arg "Scoring: mismatch must be < 0";
  if t.gap >= 0 then invalid_arg "Scoring: gap must be < 0"

let score t a b = if a = b then t.match_score else t.mismatch
