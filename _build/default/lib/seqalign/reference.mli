(** Scalar Smith–Waterman local alignment — the correctness oracle for
    the device ports, plus a traceback for human-readable alignments. *)

type result = {
  score : int;          (** best local-alignment score (>= 0) *)
  end_a : int;          (** index in [a] just past the best cell *)
  end_b : int;
}

val align : ?scoring:Scoring.t -> Dna.t -> Dna.t -> result
(** Full-matrix DP, O(|a|·|b|) time, O(min) memory. *)

type traceback = {
  aligned_a : string;   (** with '-' for gaps *)
  aligned_b : string;
  result : result;
}

val align_traceback : ?scoring:Scoring.t -> Dna.t -> Dna.t -> traceback
(** Keeps the whole matrix; intended for modest sequence lengths. *)

val align_affine : ?scoring:Scoring.t -> gap_open:int -> gap_extend:int ->
  Dna.t -> Dna.t -> result
(** Gotoh's affine-gap variant: opening a gap costs [gap_open] and each
    further gapped base [gap_extend] (both < 0, with
    [gap_open <= gap_extend] — opening at least as costly as extending).
    The match/mismatch scores come from [scoring]; its linear [gap] field
    is ignored.  With [gap_open = gap_extend = scoring.gap] this equals
    {!align} (tested). *)

val cells : Dna.t -> Dna.t -> int
(** Number of DP cells — the devices' workload metric. *)
