module Machine = Mta.Machine
module Sync_cell = Mta.Sync_cell
module Op = Isa.Op
module B = Isa.Block.Builder

(* Integer DP cell: load the two sequence bases, three synchronized loads
   of predecessor cells, compare/max chain, synchronized store. *)
let cell_block =
  let b = B.create () in
  let base_a = B.push b Op.Load ~deps:[] in
  let base_b = B.push b Op.Load ~deps:[] in
  let cmp = B.push b Op.Ialu ~deps:[ base_a; base_b ] in
  let diag = B.push b Op.Load ~deps:[] in
  let up = B.push b Op.Load ~deps:[] in
  let left = B.push b Op.Load ~deps:[] in
  let s1 = B.push b Op.Ialu ~deps:[ diag; cmp ] in
  let s2 = B.push b Op.Ialu ~deps:[ up ] in
  let s3 = B.push b Op.Ialu ~deps:[ left ] in
  let m1 = B.push b Op.Ialu ~deps:[ s1; s2 ] in
  let m2 = B.push b Op.Ialu ~deps:[ m1; s3 ] in
  let m3 = B.push b Op.Ialu ~deps:[ m2 ] (* max with 0 *) in
  let _ = B.push b Op.Store ~deps:[ m3 ] in
  B.finish b

let wavefront_loop =
  Mta.Loop.make ~name:"sw-wavefront" ~body:cell_block ()

let align ?(scoring = Scoring.default) ~machine a b =
  Scoring.validate scoring;
  let m = Dna.length a and n = Dna.length b in
  let result = ref { Reference.score = 0; end_a = 0; end_b = 0 } in
  if m > 0 && n > 0 then begin
    (* Full/empty-tagged matrix: borders pre-filled (full, 0), interior
       empty until the wavefront writes it. *)
    let h =
      Array.init (m + 1) (fun i ->
          Array.init (n + 1) (fun j ->
              if i = 0 || j = 0 then Sync_cell.create_full machine 0.0
              else Sync_cell.create_empty machine))
    in
    let best = ref 0 and best_i = ref 0 and best_j = ref 0 in
    (* Anti-diagonal d holds the cells with i + j = d. *)
    for d = 2 to m + n do
      let i_lo = max 1 (d - n) and i_hi = min m (d - 1) in
      let width = i_hi - i_lo + 1 in
      if width > 0 then
        Machine.charged_region machine ~loop:wavefront_loop ~n:width
          ~f:(fun () ->
            for i = i_lo to i_hi do
              let j = d - i in
              let diag =
                int_of_float (Sync_cell.readff h.(i - 1).(j - 1))
                + Scoring.score scoring (Dna.get a (i - 1)) (Dna.get b (j - 1))
              in
              let up =
                int_of_float (Sync_cell.readff h.(i - 1).(j))
                + scoring.Scoring.gap
              in
              let left =
                int_of_float (Sync_cell.readff h.(i).(j - 1))
                + scoring.Scoring.gap
              in
              let v = max 0 (max diag (max up left)) in
              Sync_cell.writeef h.(i).(j) (float_of_int v);
              if v > !best then begin
                best := v;
                best_i := i;
                best_j := j
              end
            done)
    done;
    result := { Reference.score = !best; end_a = !best_i; end_b = !best_j }
  end;
  !result
