lib/seqalign/reference.mli: Dna Scoring
