lib/seqalign/dna.ml: Array Char Printf Sim_util String
