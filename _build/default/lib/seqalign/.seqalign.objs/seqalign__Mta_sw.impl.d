lib/seqalign/mta_sw.ml: Array Dna Isa Mta Reference Scoring
