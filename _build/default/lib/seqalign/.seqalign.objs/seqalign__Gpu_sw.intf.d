lib/seqalign/gpu_sw.mli: Dna Gpustream Isa Reference Scoring
