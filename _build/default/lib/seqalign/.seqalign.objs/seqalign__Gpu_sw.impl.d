lib/seqalign/gpu_sw.ml: Array Char Dna Float Gpustream Isa List Printf Reference Scoring Vecmath
