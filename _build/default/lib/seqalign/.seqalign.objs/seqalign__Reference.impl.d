lib/seqalign/reference.ml: Array Buffer Dna Scoring
