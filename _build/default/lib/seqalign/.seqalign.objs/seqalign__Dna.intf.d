lib/seqalign/dna.mli: Sim_util
