lib/seqalign/scoring.mli:
