lib/seqalign/scoring.ml:
