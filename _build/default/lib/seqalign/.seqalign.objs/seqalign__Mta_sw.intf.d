lib/seqalign/mta_sw.mli: Dna Isa Mta Reference Scoring
