module Machine = Gpustream.Machine
module Vec4f = Vecmath.Vec4f
module Op = Isa.Op
module B = Isa.Block.Builder

(* Per-cell fragment: two sequence fetches, three predecessor fetches,
   adds, and the max chain as compare+select pairs. *)
let cell_block =
  let b = B.create () in
  let base_a = B.push b Op.Load ~deps:[] in
  let base_b = B.push b Op.Load ~deps:[] in
  let cmp = B.push b Op.Fcmp ~deps:[ base_a; base_b ] in
  let subst = B.push b Op.Fsel ~deps:[ cmp ] in
  let diag = B.push b Op.Load ~deps:[] in
  let up = B.push b Op.Load ~deps:[] in
  let left = B.push b Op.Load ~deps:[] in
  let s1 = B.push b Op.Fadd ~deps:[ diag; subst ] in
  let s2 = B.push b Op.Fadd ~deps:[ up ] in
  let s3 = B.push b Op.Fadd ~deps:[ left ] in
  let c1 = B.push b Op.Fcmp ~deps:[ s1; s2 ] in
  let m1 = B.push b Op.Fsel ~deps:[ c1 ] in
  let c2 = B.push b Op.Fcmp ~deps:[ m1; s3 ] in
  let m2 = B.push b Op.Fsel ~deps:[ c2 ] in
  let c3 = B.push b Op.Fcmp ~deps:[ m2 ] in
  let _ = B.push b Op.Fsel ~deps:[ c3 ] (* max with 0 *) in
  B.finish b

let max_block =
  let b = B.create () in
  let x = B.push b Op.Load ~deps:[] in
  let y = B.push b Op.Load ~deps:[] in
  let c = B.push b Op.Fcmp ~deps:[ x; y ] in
  let _ = B.push b Op.Fsel ~deps:[ c ] in
  B.finish b

let out_prologue =
  Isa.Block.of_instrs [ { Isa.Block.op = Op.Store; deps = [] } ]

let reduce_fanin = 8

let reduce_passes width =
  let rec go w acc = if w <= 1 then acc else go ((w + 7) / 8) (acc + 1) in
  go width 0

let dispatches a b =
  let m = Dna.length a and n = Dna.length b in
  if m = 0 || n = 0 then 0
  else (2 * (m + n - 1)) + reduce_passes (m + 1) + 1

let upload_sequence machine ~name seq =
  let len = Dna.length seq in
  let tex = Machine.create_texture machine ~name ~texels:len in
  Machine.upload machine tex
    (Array.init len (fun i ->
         Vec4f.make (float_of_int (Char.code (Dna.get seq i))) 0.0 0.0 0.0));
  tex

type t = {
  device : Machine.t;
  cell_shader : Machine.shader;
  max_shader : Machine.shader;
}

let create device =
  { device;
    cell_shader =
      Machine.compile device ~name:"sw-cell" ~body:cell_block
        ~prologue:out_prologue;
    max_shader =
      Machine.compile device ~name:"sw-max" ~body:max_block
        ~prologue:out_prologue }

let machine t = t.device

let align ?(scoring = Scoring.default) t a b =
  Scoring.validate scoring;
  let machine = t.device in
  let cell_shader = t.cell_shader and max_shader = t.max_shader in
  let m = Dna.length a and n = Dna.length b in
  if m = 0 || n = 0 then { Reference.score = 0; end_a = 0; end_b = 0 }
  else begin
    let width = m + 1 in
    let seq_a = upload_sequence machine ~name:"sw-seq-a" a in
    let seq_b = upload_sequence machine ~name:"sw-seq-b" b in
    (* Three rotating diagonal textures + one scratch target; a running-
       maximum texture updated every pass. *)
    let diag_tex =
      Array.init 3 (fun k ->
          Machine.create_texture machine
            ~name:(Printf.sprintf "sw-diag-%d" k)
            ~texels:width)
    in
    let scratch =
      Machine.create_render_target machine ~name:"sw-scratch" ~texels:width
    in
    let max_tex =
      Machine.create_texture machine ~name:"sw-max" ~texels:width
    in
    let max_rt =
      Machine.create_render_target machine ~name:"sw-max-rt" ~texels:width
    in
    (* Host mirrors drive the functional arithmetic; all costs flow
       through the dispatches. *)
    let prev2 = Array.make width 0.0 in
    let prev = Array.make width 0.0 in
    let curr = Array.make width 0.0 in
    let best = Array.make width 0.0 in
    for d = 2 to m + n do
      Array.fill curr 0 width 0.0;
      let i_lo = max 1 (d - n) and i_hi = min m (d - 1) in
      for i = i_lo to i_hi do
        let j = d - i in
        let subst =
          float_of_int
            (Scoring.score scoring (Dna.get a (i - 1)) (Dna.get b (j - 1)))
        in
        let diag = prev2.(i - 1) +. subst in
        let up = prev.(i - 1) +. float_of_int scoring.Scoring.gap in
        let left = prev.(i) +. float_of_int scoring.Scoring.gap in
        curr.(i) <- Float.max 0.0 (Float.max diag (Float.max up left))
      done;
      (* diagonal pass *)
      Machine.dispatch machine cell_shader
        ~inputs:
          [ diag_tex.((d - 1) mod 3); diag_tex.((d - 2) mod 3); seq_a; seq_b ]
        ~target:scratch
        ~f:(fun _ i -> Vec4f.make curr.(i) 0.0 0.0 0.0)
        ();
      Machine.resolve_to_texture machine scratch diag_tex.(d mod 3);
      (* running-maximum pass *)
      for i = 0 to width - 1 do
        best.(i) <- Float.max best.(i) curr.(i)
      done;
      Machine.dispatch machine max_shader
        ~inputs:[ max_tex; diag_tex.(d mod 3) ]
        ~target:max_rt
        ~f:(fun _ i -> Vec4f.make best.(i) 0.0 0.0 0.0)
        ();
      Machine.resolve_to_texture machine max_rt max_tex;
      Array.blit prev 0 prev2 0 width;
      Array.blit curr 0 prev 0 width
    done;
    (* Final max-reduction to a single texel, then one readback. *)
    let rec reduce values tex =
      if Array.length values = 1 then values.(0)
      else begin
        let out_len = (Array.length values + reduce_fanin - 1) / reduce_fanin in
        let reduced =
          Array.init out_len (fun o ->
              let acc = ref 0.0 in
              for k = 0 to reduce_fanin - 1 do
                let i = (o * reduce_fanin) + k in
                if i < Array.length values then
                  acc := Float.max !acc values.(i)
              done;
              !acc)
        in
        let rt =
          Machine.create_render_target machine ~name:"sw-reduce"
            ~texels:out_len
        in
        let next_tex =
          Machine.create_texture machine ~name:"sw-reduce-tex"
            ~texels:out_len
        in
        Machine.dispatch machine max_shader ~inputs:[ tex ] ~target:rt
          ~f:(fun _ i -> Vec4f.make reduced.(i) 0.0 0.0 0.0)
          ();
        Machine.resolve_to_texture machine rt next_tex;
        Machine.free_render_target machine rt;
        let r = reduce reduced next_tex in
        Machine.free_texture machine next_tex;
        r
      end
    in
    let score_f = reduce best max_tex in
    (* one-texel readback of the final score *)
    let final_rt =
      Machine.create_render_target machine ~name:"sw-final" ~texels:1
    in
    Machine.dispatch machine max_shader ~inputs:[ max_tex ] ~target:final_rt
      ~f:(fun _ _ -> Vec4f.make score_f 0.0 0.0 0.0)
      ();
    let back = Machine.readback machine final_rt in
    let score = int_of_float (Vec4f.x back.(0)) in
    (* Release per-alignment device memory so a database scan does not
       exhaust the 512 MB model. *)
    Machine.free_render_target machine final_rt;
    Machine.free_render_target machine max_rt;
    Machine.free_render_target machine scratch;
    Machine.free_texture machine max_tex;
    Array.iter (Machine.free_texture machine) diag_tex;
    Machine.free_texture machine seq_a;
    Machine.free_texture machine seq_b;
    { Reference.score; end_a = 0; end_b = 0 }
  end

(* Batched scan: K subject matrices side by side in one wide buffer
   (lane index = subject * width + row), one pair of passes per global
   anti-diagonal.  The draw-call count depends only on the query and the
   longest subject, not on the batch size. *)
let align_batch ?(scoring = Scoring.default) t ~query subjects =
  Scoring.validate scoring;
  let machine = t.device in
  let m = Dna.length query in
  let k = List.length subjects in
  if m = 0 || k = 0 then
    List.map (fun _ -> { Reference.score = 0; end_a = 0; end_b = 0 }) subjects
  else begin
    let subjects_arr = Array.of_list subjects in
    let n_max =
      Array.fold_left (fun acc s -> max acc (Dna.length s)) 0 subjects_arr
    in
    if n_max = 0 then
      List.map
        (fun _ -> { Reference.score = 0; end_a = 0; end_b = 0 })
        subjects
    else begin
      let width = m + 1 in
      let total = k * width in
      let seq_q = upload_sequence machine ~name:"swb-query" query in
      let seq_db =
        upload_sequence machine ~name:"swb-db"
          (Array.fold_left Dna.concat (Dna.of_string "") subjects_arr)
      in
      let diag_tex =
        Array.init 3 (fun i ->
            Machine.create_texture machine
              ~name:(Printf.sprintf "swb-diag-%d" i)
              ~texels:total)
      in
      let scratch =
        Machine.create_render_target machine ~name:"swb-scratch" ~texels:total
      in
      let max_tex =
        Machine.create_texture machine ~name:"swb-max" ~texels:total
      in
      let max_rt =
        Machine.create_render_target machine ~name:"swb-max-rt" ~texels:total
      in
      let prev2 = Array.make total 0.0 in
      let prev = Array.make total 0.0 in
      let curr = Array.make total 0.0 in
      let best = Array.make total 0.0 in
      for d = 2 to m + n_max do
        Array.fill curr 0 total 0.0;
        Array.iteri
          (fun s subject ->
            let n = Dna.length subject in
            if n > 0 && d <= m + n then begin
              let base = s * width in
              let i_lo = max 1 (d - n) and i_hi = min m (d - 1) in
              for i = i_lo to i_hi do
                let j = d - i in
                let subst =
                  float_of_int
                    (Scoring.score scoring (Dna.get query (i - 1))
                       (Dna.get subject (j - 1)))
                in
                let diag = prev2.(base + i - 1) +. subst in
                let up =
                  prev.(base + i - 1) +. float_of_int scoring.Scoring.gap
                in
                let left =
                  prev.(base + i) +. float_of_int scoring.Scoring.gap
                in
                curr.(base + i) <-
                  Float.max 0.0 (Float.max diag (Float.max up left))
              done
            end)
          subjects_arr;
        Machine.dispatch machine t.cell_shader
          ~inputs:
            [ diag_tex.((d - 1) mod 3); diag_tex.((d - 2) mod 3); seq_q;
              seq_db ]
          ~target:scratch
          ~f:(fun _ i -> Vec4f.make curr.(i) 0.0 0.0 0.0)
          ();
        Machine.resolve_to_texture machine scratch diag_tex.(d mod 3);
        for i = 0 to total - 1 do
          best.(i) <- Float.max best.(i) curr.(i)
        done;
        Machine.dispatch machine t.max_shader
          ~inputs:[ max_tex; diag_tex.(d mod 3) ]
          ~target:max_rt
          ~f:(fun _ i -> Vec4f.make best.(i) 0.0 0.0 0.0)
          ();
        Machine.resolve_to_texture machine max_rt max_tex;
        Array.blit prev 0 prev2 0 total;
        Array.blit curr 0 prev 0 total
      done;
      (* Read the whole running-max buffer back once; the per-subject
         maxima are a cheap CPU pass (k * width values). *)
      ignore (Machine.readback machine max_rt);
      let results =
        Array.to_list
          (Array.mapi
             (fun s _ ->
               let base = s * width in
               let sc = ref 0.0 in
               for i = 0 to width - 1 do
                 sc := Float.max !sc best.(base + i)
               done;
               { Reference.score = int_of_float !sc; end_a = 0; end_b = 0 })
             subjects_arr)
      in
      Machine.free_render_target machine max_rt;
      Machine.free_render_target machine scratch;
      Machine.free_texture machine max_tex;
      Array.iter (Machine.free_texture machine) diag_tex;
      Machine.free_texture machine seq_q;
      Machine.free_texture machine seq_db;
      results
    end
  end
