(** Smith–Waterman on the Cray MTA-2, wavefront-style.

    This is the Bokhari & Sauer approach the paper cites ("the
    implementation relies extensively on the use of full/empty bits in
    MTA-2 memory to facilitate parallel execution in the dynamic
    programming algorithms"): every matrix cell is a full/empty word;
    a cell's computation reads its three predecessors with [readff]
    (blocking until they are full) and publishes itself with [writeef],
    so the anti-diagonal wavefront emerges from the synchronization
    rather than from explicit barriers.  Time is charged per anti-
    diagonal as a parallel region whose width is the diagonal length. *)

val align : ?scoring:Scoring.t -> machine:Mta.Machine.t -> Dna.t -> Dna.t ->
  Reference.result
(** Identical result to {!Reference.align} (tested); device time accrues
    on [machine]. *)

val cell_block : Isa.Block.t
(** The per-cell instruction stream used for timing (three synchronized
    loads, the integer max chain, one synchronized store). *)
