type result = { score : int; end_a : int; end_b : int }

let cells a b = Dna.length a * Dna.length b

(* Row-by-row DP with two rows of state.  H(i,j) for 1-based i over [a],
   j over [b]. *)
let align ?(scoring = Scoring.default) a b =
  Scoring.validate scoring;
  let m = Dna.length a and n = Dna.length b in
  let prev = Array.make (n + 1) 0 in
  let curr = Array.make (n + 1) 0 in
  let best = ref 0 and best_i = ref 0 and best_j = ref 0 in
  for i = 1 to m do
    curr.(0) <- 0;
    let ai = Dna.get a (i - 1) in
    for j = 1 to n do
      let diag = prev.(j - 1) + Scoring.score scoring ai (Dna.get b (j - 1)) in
      let up = prev.(j) + scoring.Scoring.gap in
      let left = curr.(j - 1) + scoring.Scoring.gap in
      let h = max 0 (max diag (max up left)) in
      curr.(j) <- h;
      if h > !best then begin
        best := h;
        best_i := i;
        best_j := j
      end
    done;
    Array.blit curr 0 prev 0 (n + 1)
  done;
  { score = !best; end_a = !best_i; end_b = !best_j }

(* Gotoh: H is the best score ending at (i,j); E ends in a gap in [a]
   (consuming b), F in a gap in [b] (consuming a). *)
let align_affine ?(scoring = Scoring.default) ~gap_open ~gap_extend a b =
  Scoring.validate scoring;
  if gap_open >= 0 || gap_extend >= 0 then
    invalid_arg "Reference.align_affine: gap penalties must be negative";
  if gap_open > gap_extend then
    invalid_arg
      "Reference.align_affine: opening must cost at least as much as        extending";
  let m = Dna.length a and n = Dna.length b in
  let neg = min_int / 4 in
  let h_prev = Array.make (n + 1) 0 in
  let h_curr = Array.make (n + 1) 0 in
  let f_prev = Array.make (n + 1) neg in
  let f_curr = Array.make (n + 1) neg in
  let best = ref 0 and best_i = ref 0 and best_j = ref 0 in
  for i = 1 to m do
    h_curr.(0) <- 0;
    f_curr.(0) <- neg;
    let e = ref neg in
    let ai = Dna.get a (i - 1) in
    for j = 1 to n do
      e := max (h_curr.(j - 1) + gap_open) (!e + gap_extend);
      f_curr.(j) <- max (h_prev.(j) + gap_open) (f_prev.(j) + gap_extend);
      let diag = h_prev.(j - 1) + Scoring.score scoring ai (Dna.get b (j - 1)) in
      let v = max 0 (max diag (max !e f_curr.(j))) in
      h_curr.(j) <- v;
      if v > !best then begin
        best := v;
        best_i := i;
        best_j := j
      end
    done;
    Array.blit h_curr 0 h_prev 0 (n + 1);
    Array.blit f_curr 0 f_prev 0 (n + 1)
  done;
  { score = !best; end_a = !best_i; end_b = !best_j }

type traceback = { aligned_a : string; aligned_b : string; result : result }

let align_traceback ?(scoring = Scoring.default) a b =
  Scoring.validate scoring;
  let m = Dna.length a and n = Dna.length b in
  let h = Array.make_matrix (m + 1) (n + 1) 0 in
  let best = ref 0 and best_i = ref 0 and best_j = ref 0 in
  for i = 1 to m do
    for j = 1 to n do
      let diag =
        h.(i - 1).(j - 1)
        + Scoring.score scoring (Dna.get a (i - 1)) (Dna.get b (j - 1))
      in
      let up = h.(i - 1).(j) + scoring.Scoring.gap in
      let left = h.(i).(j - 1) + scoring.Scoring.gap in
      let v = max 0 (max diag (max up left)) in
      h.(i).(j) <- v;
      if v > !best then begin
        best := v;
        best_i := i;
        best_j := j
      end
    done
  done;
  (* Walk back from the best cell until a zero. *)
  let buf_a = Buffer.create 64 and buf_b = Buffer.create 64 in
  let rec walk i j =
    if i > 0 && j > 0 && h.(i).(j) > 0 then begin
      let v = h.(i).(j) in
      let diag =
        h.(i - 1).(j - 1)
        + Scoring.score scoring (Dna.get a (i - 1)) (Dna.get b (j - 1))
      in
      if v = diag then begin
        walk (i - 1) (j - 1);
        Buffer.add_char buf_a (Dna.get a (i - 1));
        Buffer.add_char buf_b (Dna.get b (j - 1))
      end
      else if v = h.(i - 1).(j) + scoring.Scoring.gap then begin
        walk (i - 1) j;
        Buffer.add_char buf_a (Dna.get a (i - 1));
        Buffer.add_char buf_b '-'
      end
      else begin
        walk i (j - 1);
        Buffer.add_char buf_a '-';
        Buffer.add_char buf_b (Dna.get b (j - 1))
      end
    end
  in
  walk !best_i !best_j;
  { aligned_a = Buffer.contents buf_a;
    aligned_b = Buffer.contents buf_b;
    result = { score = !best; end_a = !best_i; end_b = !best_j } }
