(** DNA sequences for the alignment kernels.

    The paper's related-work section grounds all three devices in
    computational biology through sequence comparison: Smith–Waterman on
    GPUs (W. Liu et al., Y. Liu et al.) and dynamic-programming alignment
    on the MTA-2 (Bokhari & Sauer).  This module provides the shared
    sequence type and deterministic synthetic data. *)

type t
(** An immutable DNA sequence over the alphabet A, C, G, T. *)

val of_string : string -> t
(** Raises [Invalid_argument] on characters outside ACGT (case
    insensitive; stored upper-case). *)

val to_string : t -> string
val length : t -> int
val get : t -> int -> char

val random : Sim_util.Rng.t -> length:int -> t
(** Uniform random sequence. *)

val mutate : Sim_util.Rng.t -> rate:float -> t -> t
(** Point-mutate each base independently with probability [rate] —
    generates realistic homologous pairs for alignment workloads. *)

val sub : t -> pos:int -> len:int -> t
val concat : t -> t -> t
