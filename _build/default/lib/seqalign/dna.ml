type t = string

let alphabet = [| 'A'; 'C'; 'G'; 'T' |]

let of_string s =
  String.iter
    (fun c ->
      match Char.uppercase_ascii c with
      | 'A' | 'C' | 'G' | 'T' -> ()
      | c -> invalid_arg (Printf.sprintf "Dna.of_string: bad base %C" c))
    s;
  String.uppercase_ascii s

let to_string t = t
let length = String.length
let get = String.get

let random rng ~length =
  if length < 0 then invalid_arg "Dna.random: negative length";
  String.init length (fun _ -> alphabet.(Sim_util.Rng.int_below rng 4))

let mutate rng ~rate t =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Dna.mutate: rate not in [0,1]";
  String.map
    (fun c ->
      if Sim_util.Rng.float rng < rate then
        alphabet.(Sim_util.Rng.int_below rng 4)
      else c)
    t

let sub t ~pos ~len = String.sub t pos len
let concat a b = a ^ b
