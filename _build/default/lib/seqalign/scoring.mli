(** Smith–Waterman scoring parameters (linear gap model). *)

type t = {
  match_score : int;     (** > 0 *)
  mismatch : int;        (** < 0 *)
  gap : int;             (** < 0, applied per gapped base *)
}

val default : t
(** +2 / −1 / −2, the textbook DNA setting. *)

val validate : t -> unit
val score : t -> char -> char -> int
