let round x = Int32.float_of_bits (Int32.bits_of_float x)

let is_f32 x = Float.is_nan x || round x = x

let add a b = round (a +. b)
let sub a b = round (a -. b)
let mul a b = round (a *. b)
let div a b = round (a /. b)
let sqrt x = round (Stdlib.sqrt x)
let neg x = -.x

let madd a b c = round (mul a b +. c)

let copysign mag sgn = Float.copy_sign mag sgn

(* One Newton-Raphson step on top of a truncated estimate mimics the SPE's
   floating reciprocal-estimate + interpolate sequence.  We seed the
   iteration with the exact reciprocal rounded to bfloat-like low precision
   (12 mantissa bits) to emulate the limited-accuracy lookup table. *)
let low_precision x =
  let bits = Int32.bits_of_float x in
  (* Clear the bottom 11 mantissa bits of the binary32 encoding. *)
  Int32.float_of_bits (Int32.logand bits 0xFFFFF800l)

let recip_est x =
  let e = low_precision (1.0 /. x) in
  (* e' = e * (2 - x*e) *)
  mul e (sub 2.0 (mul x e))

let rsqrt_est x =
  let e = low_precision (1.0 /. Stdlib.sqrt x) in
  (* e' = e * (1.5 - 0.5*x*e*e) *)
  mul e (sub 1.5 (mul (mul 0.5 x) (mul e e)))

let max_finite = round 3.4028234663852886e38
let epsilon = round 1.1920928955078125e-07
