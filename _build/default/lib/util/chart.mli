(** Plain-text charts, so the reproduced {e figures} render as figures in
    a terminal, not only as tables.

    Two forms cover the paper's plots: grouped horizontal bars (Figs. 5
    and 6) and multi-series scatter/line plots with optional log-log axes
    (Figs. 7–9). *)

val bar : ?width:int -> ?unit_label:string -> (string * float) list -> string
(** Horizontal bar chart; one row per (label, value).  Values must be
    nonnegative; bars scale so the maximum fills [width] (default 40)
    characters.  Each row prints the numeric value and the bar. *)

type series = { name : string; points : (float * float) list }

val plot : ?rows:int -> ?cols:int -> ?logx:bool -> ?logy:bool ->
  ?x_label:string -> ?y_label:string -> series list -> string
(** Character-grid plot of one or more series (marks 'a', 'b', 'c', ...;
    '*' where series overlap), with min/max axis annotations and a
    legend.  [logx]/[logy] require strictly positive coordinates.
    Default grid 16x56.  Raises [Invalid_argument] on empty input or
    nonpositive values under a log axis. *)
