type clock = { hz : float; label : string }

let clock ~hz ~label =
  if hz <= 0.0 then invalid_arg "Units.clock: hz must be positive";
  { hz; label }

let seconds_of_cycles c cycles = cycles /. c.hz
let cycles_of_seconds c s = s *. c.hz

let bytes_per_second ~gb_per_s = gb_per_s *. 1e9

let transfer_seconds ~bytes ~bandwidth ~latency =
  if bytes < 0 then invalid_arg "Units.transfer_seconds: negative bytes";
  if bandwidth <= 0.0 then invalid_arg "Units.transfer_seconds: bandwidth";
  if latency < 0.0 then invalid_arg "Units.transfer_seconds: latency";
  latency +. (float_of_int bytes /. bandwidth)

let kib n = n * 1024
let mib n = n * 1024 * 1024
