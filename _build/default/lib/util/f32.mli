(** IEEE-754 single-precision arithmetic emulated on top of OCaml's doubles.

    The Cell SPE and GPU ports in the paper run in single precision; the
    numerical differences against the double-precision reference are part of
    what the paper discusses ("the outstanding issue [is] support for
    double-precision").  Every value is kept as an OCaml [float] whose
    payload is exactly representable in binary32; every operation rounds its
    double result back to binary32 ([Int32.bits_of_float] performs the
    round-to-nearest-even conversion), so sequences of operations accumulate
    genuine single-precision rounding error. *)

val round : float -> float
(** Round a double to the nearest representable binary32 value. *)

val is_f32 : float -> bool
(** [is_f32 x] holds when [x] carries no more precision than binary32
    (NaNs and infinities included). *)

val add : float -> float -> float
val sub : float -> float -> float
val mul : float -> float -> float
val div : float -> float -> float
val sqrt : float -> float
val neg : float -> float

val madd : float -> float -> float -> float
(** [madd a b c] = round (round(a*b) + c): the SPE has fused multiply-add
    hardware but the paper's compiler-generated code issues separate
    rounds; we model the separate-rounding form, which is the conservative
    choice for reproducing its numerics. *)

val copysign : float -> float -> float
(** [copysign mag sgn] — the branch-elimination primitive from the paper's
    first Fig. 5 optimization rung. *)

val recip_est : float -> float
(** SPE-style reciprocal estimate followed by one Newton–Raphson step,
    rounded to f32 at each stage (accurate to ~1 ulp like [fi] on SPE). *)

val rsqrt_est : float -> float
(** Reciprocal square root via hardware-style estimate plus one
    Newton–Raphson refinement, each stage rounded to f32. *)

val max_finite : float
(** Largest finite binary32 value. *)

val epsilon : float
(** binary32 machine epsilon (2^-23). *)
