module type Category = sig
  type t

  val all : t list
  val name : t -> string
end

module type S = sig
  type category
  type t

  val create : unit -> t
  val add : t -> category -> float -> unit
  val get : t -> category -> float
  val total : t -> float
  val fraction : t -> category -> float
  val reset : t -> unit
  val merge_into : dst:t -> src:t -> unit
  val pp : Format.formatter -> t -> unit
end

module Make (C : Category) : S with type category = C.t = struct
  type category = C.t
  type t = float array

  let categories = Array.of_list C.all

  let index c =
    let rec find i =
      if i >= Array.length categories then
        invalid_arg "Ledger: unknown category"
      else if categories.(i) = c then i
      else find (i + 1)
    in
    find 0

  let create () = Array.make (Array.length categories) 0.0

  let add t cat seconds =
    if seconds < 0.0 then invalid_arg "Ledger.add: negative time";
    let i = index cat in
    t.(i) <- t.(i) +. seconds

  let get t cat = t.(index cat)
  let total t = Array.fold_left ( +. ) 0.0 t

  let fraction t cat =
    let tot = total t in
    if tot = 0.0 then 0.0 else get t cat /. tot

  let reset t = Array.fill t 0 (Array.length t) 0.0
  let merge_into ~dst ~src = Array.iteri (fun i v -> dst.(i) <- dst.(i) +. v) src

  let pp fmt t =
    Array.iteri
      (fun i cat ->
        Format.fprintf fmt "%-10s %10.6f s (%.1f%%)@." (C.name cat) t.(i)
          (if total t = 0.0 then 0.0 else 100.0 *. t.(i) /. total t))
      categories
end
