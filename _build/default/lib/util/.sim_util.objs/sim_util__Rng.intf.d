lib/util/rng.mli:
