lib/util/chart.mli:
