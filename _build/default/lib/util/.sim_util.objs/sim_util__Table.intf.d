lib/util/table.mli:
