lib/util/ledger_f.ml: Array Format
