lib/util/units.ml:
