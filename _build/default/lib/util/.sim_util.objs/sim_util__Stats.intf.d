lib/util/stats.mli:
