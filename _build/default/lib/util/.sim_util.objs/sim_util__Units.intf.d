lib/util/units.mli:
