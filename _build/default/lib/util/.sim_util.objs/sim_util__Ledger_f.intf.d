lib/util/ledger_f.mli: Format
