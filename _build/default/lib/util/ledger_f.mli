(** Generic wall-clock decomposition ledger, parameterized by a category
    enumeration.  Each device simulator instantiates it with its own
    categories (spawn/DMA/compute on the Cell, upload/shader/readback on
    the GPU, ...) so that every second of virtual time is attributed and
    the decomposition plots in the paper are measurements. *)

module type Category = sig
  type t

  val all : t list
  (** Every category, each exactly once. *)

  val name : t -> string
end

module type S = sig
  type category
  type t

  val create : unit -> t

  val add : t -> category -> float -> unit
  (** Seconds must be nonnegative; raises [Invalid_argument] otherwise. *)

  val get : t -> category -> float
  val total : t -> float

  val fraction : t -> category -> float
  (** Share of total; 0 if the total is 0. *)

  val reset : t -> unit
  val merge_into : dst:t -> src:t -> unit
  val pp : Format.formatter -> t -> unit
end

module Make (C : Category) : S with type category = C.t
