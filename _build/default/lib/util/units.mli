(** Cycle/time bookkeeping.

    All device simulators account work in integer cycles of their own clock
    and convert to seconds only at the reporting boundary, which keeps the
    accounting exact and the conversions explicit. *)

type clock = { hz : float; label : string }
(** A device clock, e.g. 3.2 GHz Cell, 2.2 GHz Opteron, 220 MHz MTA-2. *)

val clock : hz:float -> label:string -> clock
(** [clock ~hz ~label] validates [hz > 0]. *)

val seconds_of_cycles : clock -> float -> float
val cycles_of_seconds : clock -> float -> float

val bytes_per_second : gb_per_s:float -> float
(** Bandwidth given in GB/s (10^9 bytes), returned in bytes/second. *)

val transfer_seconds : bytes:int -> bandwidth:float -> latency:float -> float
(** Time for a bulk transfer: [latency + bytes/bandwidth].  [bytes] must be
    nonnegative, [bandwidth] positive, [latency] nonnegative. *)

val kib : int -> int
val mib : int -> int
