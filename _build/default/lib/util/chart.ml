let bar ?(width = 40) ?(unit_label = "") rows =
  if rows = [] then invalid_arg "Chart.bar: no rows";
  List.iter
    (fun (_, v) -> if v < 0.0 then invalid_arg "Chart.bar: negative value")
    rows;
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 rows in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let line (label, v) =
    let n =
      if vmax = 0.0 then 0
      else int_of_float (Float.round (v /. vmax *. float_of_int width))
    in
    Printf.sprintf "%-*s %10.4g %s %s" label_width label v unit_label
      (String.make n '#')
  in
  String.concat "\n" (List.map line rows)

type series = { name : string; points : (float * float) list }

let plot ?(rows = 16) ?(cols = 56) ?(logx = false) ?(logy = false)
    ?(x_label = "x") ?(y_label = "y") series_list =
  if series_list = [] then invalid_arg "Chart.plot: no series";
  if rows < 2 || cols < 2 then invalid_arg "Chart.plot: grid too small";
  let all_points = List.concat_map (fun s -> s.points) series_list in
  if all_points = [] then invalid_arg "Chart.plot: no points";
  let tx v =
    if logx then
      if v <= 0.0 then invalid_arg "Chart.plot: logx needs positive x"
      else log v
    else v
  in
  let ty v =
    if logy then
      if v <= 0.0 then invalid_arg "Chart.plot: logy needs positive y"
      else log v
    else v
  in
  let xs = List.map (fun (x, _) -> tx x) all_points in
  let ys = List.map (fun (_, y) -> ty y) all_points in
  let fold f = function
    | [] -> assert false
    | h :: t -> List.fold_left f h t
  in
  let xmin = fold Float.min xs and xmax = fold Float.max xs in
  let ymin = fold Float.min ys and ymax = fold Float.max ys in
  let xspan = if xmax = xmin then 1.0 else xmax -. xmin in
  let yspan = if ymax = ymin then 1.0 else ymax -. ymin in
  let grid = Array.make_matrix rows cols ' ' in
  List.iteri
    (fun si s ->
      let mark = Char.chr (Char.code 'a' + (si mod 26)) in
      List.iter
        (fun (x, y) ->
          let cx =
            int_of_float
              (Float.round ((tx x -. xmin) /. xspan *. float_of_int (cols - 1)))
          in
          let cy =
            int_of_float
              (Float.round ((ty y -. ymin) /. yspan *. float_of_int (rows - 1)))
          in
          let row = rows - 1 - cy in
          grid.(row).(cx) <-
            (if grid.(row).(cx) = ' ' || grid.(row).(cx) = mark then mark
             else '*'))
        s.points)
    series_list;
  let buf = Buffer.create ((rows + 4) * (cols + 8)) in
  let orig x = if logx then exp x else x in
  let orig_y y = if logy then exp y else y in
  Buffer.add_string buf
    (Printf.sprintf "%s (max %.4g)\n" y_label (orig_y ymax));
  Array.iter
    (fun row ->
      Buffer.add_string buf "  |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf "  +";
  Buffer.add_string buf (String.make cols '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "   %s: %.4g .. %.4g%s; %s min %.4g%s\n" x_label
       (orig xmin) (orig xmax)
       (if logx then " (log)" else "")
       y_label (orig_y ymin)
       (if logy then " (log)" else ""));
  Buffer.add_string buf "   legend: ";
  List.iteri
    (fun si s ->
      if si > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "%c = %s" (Char.chr (Char.code 'a' + (si mod 26)))
           s.name))
    series_list;
  Buffer.contents buf
