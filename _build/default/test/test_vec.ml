(* Tests for the vecmath library: Vec3 algebra and Vec4f SIMD emulation. *)

module Vec3 = Vecmath.Vec3
module Vec4f = Vecmath.Vec4f
module F32 = Sim_util.F32

let vec3 = Alcotest.testable Vec3.pp (Vec3.equal ~eps:1e-12)
let check_float = Alcotest.(check (float 1e-12))

let v3 = QCheck.Gen.(
    map3 Vec3.make (float_range (-100.) 100.) (float_range (-100.) 100.)
      (float_range (-100.) 100.))

let arb_v3 =
  QCheck.make ~print:(Format.asprintf "%a" Vec3.pp) v3

(* ---------------- Vec3 ---------------- *)

let test_vec3_add_sub () =
  let a = Vec3.make 1.0 2.0 3.0 and b = Vec3.make 4.0 5.0 6.0 in
  Alcotest.check vec3 "add" (Vec3.make 5.0 7.0 9.0) (Vec3.add a b);
  Alcotest.check vec3 "sub roundtrip" a (Vec3.sub (Vec3.add a b) b)

let test_vec3_dot_cross () =
  let x = Vec3.make 1.0 0.0 0.0 and y = Vec3.make 0.0 1.0 0.0 in
  check_float "orthogonal dot" 0.0 (Vec3.dot x y);
  Alcotest.check vec3 "x cross y = z" (Vec3.make 0.0 0.0 1.0) (Vec3.cross x y)

let test_vec3_norm () =
  check_float "3-4-5" 5.0 (Vec3.norm (Vec3.make 3.0 4.0 0.0));
  check_float "norm2" 25.0 (Vec3.norm2 (Vec3.make 3.0 4.0 0.0))

let test_vec3_normalize () =
  let n = Vec3.normalize (Vec3.make 0.0 2.0 0.0) in
  Alcotest.check vec3 "unit y" (Vec3.make 0.0 1.0 0.0) n;
  Alcotest.(check bool) "zero raises" true
    (try
       ignore (Vec3.normalize Vec3.zero);
       false
     with Invalid_argument _ -> true)

let test_vec3_lerp () =
  let a = Vec3.make 0.0 0.0 0.0 and b = Vec3.make 2.0 4.0 6.0 in
  Alcotest.check vec3 "midpoint" (Vec3.make 1.0 2.0 3.0) (Vec3.lerp a b 0.5)

let test_vec3_array_roundtrip () =
  let a = Vec3.make 1.5 (-2.5) 3.25 in
  Alcotest.check vec3 "roundtrip" a (Vec3.of_array (Vec3.to_array a));
  Alcotest.(check bool) "bad length raises" true
    (try
       ignore (Vec3.of_array [| 1.0 |]);
       false
     with Invalid_argument _ -> true)

let vec3_cross_orthogonal_prop =
  QCheck.Test.make ~name:"cross product orthogonal to operands" ~count:300
    (QCheck.pair arb_v3 arb_v3)
    (fun (a, b) ->
      let c = Vec3.cross a b in
      abs_float (Vec3.dot a c) < 1e-6 && abs_float (Vec3.dot b c) < 1e-6)

let vec3_dot_scale_prop =
  QCheck.Test.make ~name:"dot is bilinear in scaling" ~count:300
    (QCheck.triple arb_v3 arb_v3 (QCheck.float_range (-10.) 10.))
    (fun (a, b, k) ->
      let lhs = Vec3.dot (Vec3.scale k a) b in
      let rhs = k *. Vec3.dot a b in
      abs_float (lhs -. rhs) <= 1e-7 *. (1.0 +. abs_float rhs))

let vec3_triangle_prop =
  QCheck.Test.make ~name:"triangle inequality" ~count:300
    (QCheck.pair arb_v3 arb_v3)
    (fun (a, b) ->
      Vec3.norm (Vec3.add a b) <= Vec3.norm a +. Vec3.norm b +. 1e-9)

(* ---------------- Vec4f ---------------- *)

let test_vec4f_lanes_rounded () =
  let v = Vec4f.make 0.1 0.2 0.3 0.4 in
  Array.iter
    (fun x -> Alcotest.(check bool) "lane is f32" true (F32.is_f32 x))
    (Vec4f.to_array v)

let test_vec4f_lane_access () =
  let v = Vec4f.make 1.0 2.0 3.0 4.0 in
  check_float "x" 1.0 (Vec4f.x v);
  check_float "w" 4.0 (Vec4f.w v);
  check_float "lane 2" 3.0 (Vec4f.lane v 2);
  Alcotest.(check bool) "lane 4 raises" true
    (try
       ignore (Vec4f.lane v 4);
       false
     with Invalid_argument _ -> true)

let test_vec4f_with_lane () =
  let v = Vec4f.with_lane Vec4f.zero 3 7.5 in
  check_float "set w" 7.5 (Vec4f.w v);
  check_float "others untouched" 0.0 (Vec4f.x v)

let test_vec4f_arith () =
  let a = Vec4f.make 1.0 2.0 3.0 4.0 and b = Vec4f.make 4.0 3.0 2.0 1.0 in
  Alcotest.(check bool) "add" true
    (Vec4f.equal (Vec4f.splat 5.0) (Vec4f.add a b));
  Alcotest.(check bool) "madd matches mul+add" true
    (Vec4f.equal (Vec4f.madd a b Vec4f.zero) (Vec4f.mul a b))

let test_vec4f_select () =
  let m = Vec4f.cmp_gt (Vec4f.make 1.0 0.0 2.0 0.0) (Vec4f.splat 0.5) in
  let r =
    Vec4f.select m ~if_true:(Vec4f.splat 1.0) ~if_false:(Vec4f.splat (-1.0))
  in
  Alcotest.(check (list (float 0.0))) "select pattern"
    [ 1.0; -1.0; 1.0; -1.0 ]
    (Array.to_list (Vec4f.to_array r))

let test_vec4f_mask_ops () =
  let m = Vec4f.cmp_le (Vec4f.splat 1.0) (Vec4f.splat 1.0) in
  Alcotest.(check bool) "all true" true (Vec4f.mask_all m);
  let m2 = Vec4f.cmp_lt (Vec4f.make 0.0 2.0 0.0 2.0) (Vec4f.splat 1.0) in
  Alcotest.(check bool) "any" true (Vec4f.mask_any m2);
  Alcotest.(check bool) "not all" false (Vec4f.mask_all m2);
  Alcotest.(check bool) "lane 1 false" false (Vec4f.mask_lane m2 1)

let test_vec4f_shuffle () =
  let v = Vec4f.make 1.0 2.0 3.0 4.0 in
  Alcotest.(check (list (float 0.0))) "reverse shuffle"
    [ 4.0; 3.0; 2.0; 1.0 ]
    (Array.to_list (Vec4f.to_array (Vec4f.shuffle v (3, 2, 1, 0))))

let test_vec4f_hsum () =
  let v = Vec4f.make 1.0 2.0 3.0 100.0 in
  check_float "hsum3 ignores w" 6.0 (Vec4f.hsum3 v);
  check_float "hsum4 includes w" 106.0 (Vec4f.hsum4 v)

let test_vec4f_dot3 () =
  let a = Vec4f.make 1.0 2.0 3.0 9.0 and b = Vec4f.make 4.0 5.0 6.0 9.0 in
  check_float "dot3" 32.0 (Vec4f.dot3 a b)

let test_vec4f_copysign () =
  let r =
    Vec4f.copysign (Vec4f.make 1.0 2.0 3.0 4.0)
      (Vec4f.make (-1.0) 1.0 (-1.0) 1.0)
  in
  Alcotest.(check (list (float 0.0))) "per-lane sign"
    [ -1.0; 2.0; -3.0; 4.0 ]
    (Array.to_list (Vec4f.to_array r))

let test_vec4f_vec3_roundtrip () =
  let v = Vec3.make 0.5 (-1.5) 2.5 in
  let q = Vec4f.of_vec3 v ~w:9.0 in
  Alcotest.check vec3 "xyz preserved (exact in f32)" v (Vec4f.to_vec3 q);
  check_float "w" 9.0 (Vec4f.w q)

let vec4f_all_lanes_f32_prop =
  QCheck.Test.make ~name:"all arithmetic results are binary32" ~count:500
    QCheck.(
      pair
        (quad (float_range (-1e6) 1e6) (float_range (-1e6) 1e6)
           (float_range (-1e6) 1e6) (float_range (-1e6) 1e6))
        (quad (float_range 0.001 1e6) (float_range 0.001 1e6)
           (float_range 0.001 1e6) (float_range 0.001 1e6)))
    (fun ((a, b, c, d), (e, f, g, h)) ->
      let u = Vec4f.make a b c d and v = Vec4f.make e f g h in
      List.for_all
        (fun w -> Array.for_all F32.is_f32 (Vec4f.to_array w))
        [ Vec4f.add u v; Vec4f.mul u v; Vec4f.div u v;
          Vec4f.madd u v u; Vec4f.sqrt v; Vec4f.rsqrt_est v ])

let vec4f_rsqrt_prop =
  QCheck.Test.make ~name:"rsqrt_est within 1e-3 relative" ~count:300
    (QCheck.float_range 0.001 1e6)
    (fun x ->
      let v = Vec4f.rsqrt_est (Vec4f.splat x) in
      let expect = 1.0 /. sqrt (F32.round x) in
      abs_float (Vec4f.x v -. expect) <= 1e-3 *. expect)

let qcheck t = QCheck_alcotest.to_alcotest t

let tests =
  ( "vec",
    [ Alcotest.test_case "vec3 add/sub" `Quick test_vec3_add_sub;
      Alcotest.test_case "vec3 dot/cross" `Quick test_vec3_dot_cross;
      Alcotest.test_case "vec3 norm" `Quick test_vec3_norm;
      Alcotest.test_case "vec3 normalize" `Quick test_vec3_normalize;
      Alcotest.test_case "vec3 lerp" `Quick test_vec3_lerp;
      Alcotest.test_case "vec3 array roundtrip" `Quick
        test_vec3_array_roundtrip;
      qcheck vec3_cross_orthogonal_prop;
      qcheck vec3_dot_scale_prop;
      qcheck vec3_triangle_prop;
      Alcotest.test_case "vec4f lanes rounded" `Quick test_vec4f_lanes_rounded;
      Alcotest.test_case "vec4f lane access" `Quick test_vec4f_lane_access;
      Alcotest.test_case "vec4f with_lane" `Quick test_vec4f_with_lane;
      Alcotest.test_case "vec4f arithmetic" `Quick test_vec4f_arith;
      Alcotest.test_case "vec4f select" `Quick test_vec4f_select;
      Alcotest.test_case "vec4f masks" `Quick test_vec4f_mask_ops;
      Alcotest.test_case "vec4f shuffle" `Quick test_vec4f_shuffle;
      Alcotest.test_case "vec4f hsum" `Quick test_vec4f_hsum;
      Alcotest.test_case "vec4f dot3" `Quick test_vec4f_dot3;
      Alcotest.test_case "vec4f copysign" `Quick test_vec4f_copysign;
      Alcotest.test_case "vec4f/vec3 roundtrip" `Quick
        test_vec4f_vec3_roundtrip;
      qcheck vec4f_all_lanes_f32_prop;
      qcheck vec4f_rsqrt_prop ] )
