(* Tests for the Brook-style streaming DSL. *)

module Ctx = Streamdsl.Ctx
module Stream = Streamdsl.Stream
module Vec4f = Vecmath.Vec4f
module Machine = Gpustream.Machine
module Ledger = Gpustream.Ledger
module Op = Isa.Op

let simple_body =
  Isa.Block.of_instrs
    [ { Isa.Block.op = Op.Load; deps = [] };
      { Isa.Block.op = Op.Fmadd; deps = [] } ]

let floats n = Array.init n (fun i -> float_of_int i /. 4.0)

let test_roundtrip () =
  let ctx = Ctx.create () in
  let data = floats 37 in
  let s = Stream.of_floats ctx data in
  Alcotest.(check int) "length" 37 (Stream.length s);
  let back = Stream.to_floats s in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-12)) "f32 roundtrip"
        (Sim_util.F32.round data.(i)) v)
    back

let test_map () =
  let ctx = Ctx.create () in
  let s = Stream.of_floats ctx (floats 16) in
  let doubled =
    Stream.map ~name:"double" ~body:simple_body
      ~f:(fun v -> Vec4f.add v v)
      s
  in
  let back = Stream.to_floats doubled in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-6)) "doubled" (float_of_int i /. 2.0) v)
    back;
  (* Streams are immutable: the source still holds the originals. *)
  let src = Stream.to_floats s in
  Alcotest.(check (float 1e-6)) "source untouched" 0.25 src.(1)

let test_map2 () =
  let ctx = Ctx.create () in
  let a = Stream.of_floats ctx (floats 8) in
  let b = Stream.of_floats ctx (Array.make 8 10.0) in
  let sum = Stream.map2 ~body:simple_body ~f:Vec4f.add a b in
  let back = Stream.to_floats sum in
  Alcotest.(check (float 1e-6)) "elementwise add" 10.75 back.(3)

let test_map2_mismatch () =
  let ctx = Ctx.create () in
  let a = Stream.of_floats ctx (floats 8) in
  let b = Stream.of_floats ctx (floats 9) in
  Alcotest.(check bool) "length mismatch raises" true
    (try
       ignore (Stream.map2 ~body:simple_body ~f:Vec4f.add a b);
       false
     with Invalid_argument _ -> true)

let test_gather () =
  let ctx = Ctx.create () in
  let s = Stream.of_floats ctx (floats 8) in
  (* Reverse the stream via gather. *)
  let rev =
    Stream.gather ~body:simple_body ~loop_trip:1 ~out_len:8
      ~f:(fun fetch i -> fetch (7 - i))
      s
  in
  let back = Stream.to_floats rev in
  Alcotest.(check (float 1e-12)) "reversed" (7.0 /. 4.0) back.(0)

let test_reduce_sum () =
  let ctx = Ctx.create () in
  let n = 100 in
  let s = Stream.of_floats ctx (Array.make n 1.5) in
  let total = Stream.reduce_sum s in
  Alcotest.(check (float 1e-3)) "sum" (1.5 *. float_of_int n) total

let test_reduce_charges_passes () =
  let ctx = Ctx.create () in
  let s = Stream.of_floats ctx (Array.make 512 1.0) in
  let before =
    Ledger.get (Machine.ledger (Ctx.machine ctx)) Ledger.Dispatch
  in
  ignore (Stream.reduce_sum s);
  let after = Ledger.get (Machine.ledger (Ctx.machine ctx)) Ledger.Dispatch in
  (* 512 -> 64 -> 8 -> 1: three reduction passes (each dispatch+resolve)
     plus the final copy: at least 6 dispatch-overhead charges. *)
  let cfg = Gpustream.Config.geforce_7900gtx in
  Alcotest.(check bool) "multi-pass overhead visible" true
    (after -. before >= 5.0 *. cfg.Gpustream.Config.dispatch_overhead)

let test_kernel_cache () =
  let ctx = Ctx.create () in
  let s = Stream.of_floats ctx (floats 4) in
  let setup () = Ledger.get (Machine.ledger (Ctx.machine ctx)) Ledger.Setup in
  let s1 = Stream.map ~name:"k" ~body:simple_body ~f:Fun.id s in
  let after_first = setup () in
  let _ = Stream.map ~name:"k" ~body:simple_body ~f:Fun.id s1 in
  Alcotest.(check (float 1e-12)) "second application reuses the JIT"
    after_first (setup ())

let test_free_releases_vram () =
  let ctx = Ctx.create () in
  let m = Ctx.machine ctx in
  let before = Machine.vram_used m in
  let s = Stream.of_floats ctx (floats 1024) in
  Alcotest.(check bool) "allocated" true (Machine.vram_used m > before);
  Stream.free s;
  Alcotest.(check int) "released" before (Machine.vram_used m)

let test_time_accrues () =
  let ctx = Ctx.create () in
  let s = Stream.of_floats ctx (floats 64) in
  let t0 = Ctx.time ctx in
  let _ = Stream.map ~body:simple_body ~f:Fun.id s in
  Alcotest.(check bool) "kernel application costs device time" true
    (Ctx.time ctx > t0)

let tests =
  ( "streamdsl",
    [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "map" `Quick test_map;
      Alcotest.test_case "map2" `Quick test_map2;
      Alcotest.test_case "map2 mismatch" `Quick test_map2_mismatch;
      Alcotest.test_case "gather" `Quick test_gather;
      Alcotest.test_case "reduce sum" `Quick test_reduce_sum;
      Alcotest.test_case "reduce charges passes" `Quick
        test_reduce_charges_passes;
      Alcotest.test_case "kernel cache" `Quick test_kernel_cache;
      Alcotest.test_case "free releases vram" `Quick test_free_releases_vram;
      Alcotest.test_case "time accrues" `Quick test_time_accrues ] )
