(* Tests for the Cell BE machine model: local store, DMA, ledger, launch
   modes. *)

module Config = Cellbe.Config
module Ledger = Cellbe.Ledger
module Ls = Cellbe.Local_store
module Machine = Cellbe.Machine

let cfg = Config.default

let test_config_valid () = Config.validate cfg

let test_config_invalid () =
  Alcotest.(check bool) "0 spes rejected" true
    (try
       Config.validate { cfg with Config.n_spes = 0 };
       false
     with Invalid_argument _ -> true)

(* ---------------- Ledger ---------------- *)

let test_ledger_accumulates () =
  let l = Ledger.create () in
  Ledger.add l Ledger.Spawn 1.0;
  Ledger.add l Ledger.Spawn 0.5;
  Ledger.add l Ledger.Dma 2.0;
  Alcotest.(check (float 1e-12)) "spawn" 1.5 (Ledger.get l Ledger.Spawn);
  Alcotest.(check (float 1e-12)) "total" 3.5 (Ledger.total l);
  Alcotest.(check (float 1e-12)) "fraction" (1.5 /. 3.5)
    (Ledger.fraction l Ledger.Spawn)

let test_ledger_rejects_negative () =
  let l = Ledger.create () in
  Alcotest.(check bool) "negative rejected" true
    (try
       Ledger.add l Ledger.Dma (-1.0);
       false
     with Invalid_argument _ -> true)

let test_ledger_merge () =
  let a = Ledger.create () and b = Ledger.create () in
  Ledger.add a Ledger.Compute 1.0;
  Ledger.add b Ledger.Compute 2.0;
  Ledger.merge_into ~dst:a ~src:b;
  Alcotest.(check (float 1e-12)) "merged" 3.0 (Ledger.get a Ledger.Compute)

(* ---------------- Local store ---------------- *)

let test_ls_alloc_and_capacity () =
  let ls = Ls.create ~capacity_bytes:1024 in
  let b = Ls.alloc ls ~name:"a" ~floats:64 in
  Alcotest.(check int) "used" 256 (Ls.used_bytes ls);
  Alcotest.(check int) "length" 64 (Ls.length b);
  Alcotest.(check bool) "overflow raises" true
    (try
       ignore (Ls.alloc ls ~name:"big" ~floats:256);
       false
     with Ls.Overflow _ -> true)

let test_ls_quadword_rounding () =
  let ls = Ls.create ~capacity_bytes:1024 in
  ignore (Ls.alloc ls ~name:"one" ~floats:1);
  Alcotest.(check int) "1 float occupies a quadword" 16 (Ls.used_bytes ls)

let test_ls_values_are_f32 () =
  let ls = Ls.create ~capacity_bytes:1024 in
  let b = Ls.alloc ls ~name:"v" ~floats:4 in
  Ls.set b 0 0.1;
  Alcotest.(check bool) "stored rounded" true (Sim_util.F32.is_f32 (Ls.get b 0));
  Alcotest.(check bool) "differs from double" true (Ls.get b 0 <> 0.1)

let test_ls_blits () =
  let ls = Ls.create ~capacity_bytes:1024 in
  let b = Ls.alloc ls ~name:"v" ~floats:8 in
  let src = [| 0.1; 0.2; 0.3; 0.4 |] in
  Ls.blit_from_array ~src ~src_pos:0 ~dst:b ~dst_pos:2 ~len:4;
  let out = Array.make 4 0.0 in
  Ls.blit_to_array ~src:b ~src_pos:2 ~dst:out ~dst_pos:0 ~len:4;
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-12)) "roundtrip via f32"
        (Sim_util.F32.round src.(i)) v)
    out

let test_ls_blit_bounds () =
  let ls = Ls.create ~capacity_bytes:1024 in
  let b = Ls.alloc ls ~name:"v" ~floats:4 in
  Alcotest.(check bool) "overrun rejected" true
    (try
       Ls.blit_from_array ~src:[| 1.0 |] ~src_pos:0 ~dst:b ~dst_pos:3 ~len:2;
       false
     with Invalid_argument _ -> true)

let test_ls_reset_invalidates () =
  let ls = Ls.create ~capacity_bytes:1024 in
  let b = Ls.alloc ls ~name:"v" ~floats:4 in
  Ls.reset ls;
  Alcotest.(check int) "space reclaimed" 0 (Ls.used_bytes ls);
  Alcotest.(check bool) "stale buffer rejected" true
    (try
       ignore (Ls.get b 0);
       false
     with Invalid_argument _ -> true)

(* ---------------- Machine ---------------- *)

let test_machine_ledger_invariant () =
  let m = Machine.create cfg in
  let src = Array.init 100 float_of_int in
  Machine.offload m ~spes:4 ~mode:Machine.Persistent (fun ctx ->
      let ls = Machine.local_store ctx in
      let b = Ls.alloc ls ~name:"x" ~floats:100 in
      Machine.dma_get ctx ~src ~src_pos:0 ~dst:b ~dst_pos:0 ~len:100;
      Machine.charge_cycles ctx 1000.0);
  Machine.ppe_charge m ~seconds:0.001;
  Alcotest.(check (float 1e-12)) "ledger total = wall time"
    (Machine.time m)
    (Ledger.total (Machine.ledger m))

let test_machine_dma_cost_model () =
  let m = Machine.create cfg in
  let small = Machine.dma_seconds m ~bytes:128 in
  let big = Machine.dma_seconds m ~bytes:(1 lsl 20) in
  Alcotest.(check bool) "bigger transfer costs more" true (big > small);
  (* A 1 MB transfer needs 64 requests of 16 KB. *)
  let expected =
    (64.0 *. cfg.Config.dma_latency)
    +. (float_of_int (1 lsl 20) /. cfg.Config.dma_bandwidth)
  in
  Alcotest.(check (float 1e-12)) "chunked request cost" expected big

let test_machine_dma_moves_data () =
  let m = Machine.create cfg in
  let src = Array.init 16 (fun i -> float_of_int i /. 7.0) in
  let dst = Array.make 16 0.0 in
  Machine.offload m ~spes:1 ~mode:Machine.Respawn (fun ctx ->
      let ls = Machine.local_store ctx in
      let b = Ls.alloc ls ~name:"x" ~floats:16 in
      Machine.dma_get ctx ~src ~src_pos:0 ~dst:b ~dst_pos:0 ~len:16;
      Machine.dma_put ctx ~src:b ~src_pos:0 ~dst ~dst_pos:0 ~len:16);
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-12)) "data transported (f32)"
        (Sim_util.F32.round src.(i)) v)
    dst

let test_dma_contention () =
  let m = Machine.create cfg in
  let alone = Machine.dma_seconds ~active_spes:1 m ~bytes:(1 lsl 20) in
  let crowded = Machine.dma_seconds ~active_spes:8 m ~bytes:(1 lsl 20) in
  Alcotest.(check bool) "8 concurrent SPEs share the memory interface" true
    (crowded > alone);
  (* With 8 SPEs the fair share is 25.6/8 = 3.2 GB/s. *)
  let expected =
    (64.0 *. cfg.Config.dma_latency)
    +. (float_of_int (1 lsl 20) /. (cfg.Config.mem_bandwidth /. 8.0))
  in
  Alcotest.(check (float 1e-12)) "fair-share bandwidth" expected crowded

let test_machine_respawn_cost_repeats () =
  let spawn_of mode =
    let m = Machine.create cfg in
    for _ = 1 to 3 do
      Machine.offload m ~spes:2 ~mode (fun _ -> ())
    done;
    Ledger.get (Machine.ledger m) Ledger.Spawn
  in
  Alcotest.(check (float 1e-12)) "respawn: 3 x 2 spawns"
    (6.0 *. cfg.Config.spawn_seconds)
    (spawn_of Machine.Respawn);
  Alcotest.(check (float 1e-12)) "persistent: 2 spawns once"
    (2.0 *. cfg.Config.spawn_seconds)
    (spawn_of Machine.Persistent)

let test_machine_persistent_signals () =
  let m = Machine.create cfg in
  for _ = 1 to 3 do
    Machine.offload m ~spes:2 ~mode:Machine.Persistent (fun _ -> ())
  done;
  Alcotest.(check (float 1e-12)) "2 mailboxes per SPE per offload"
    (3.0 *. 2.0 *. 2.0 *. cfg.Config.mailbox_seconds)
    (Ledger.get (Machine.ledger m) Ledger.Signal)

let test_machine_critical_path_is_max () =
  let m = Machine.create cfg in
  Machine.offload m ~spes:4 ~mode:Machine.Respawn (fun ctx ->
      (* SPE k computes k microseconds worth of cycles. *)
      Machine.charge_cycles ctx
        (float_of_int (Machine.spe_id ctx) *. 3200.0));
  let compute = Ledger.get (Machine.ledger m) Ledger.Compute in
  (* max is SPE 3: 3 us at 3.2 GHz. *)
  Alcotest.(check (float 1e-12)) "compute = slowest SPE" 3.0e-6 compute

let test_machine_offload_validation () =
  let m = Machine.create cfg in
  Alcotest.(check bool) "too many spes" true
    (try
       Machine.offload m ~spes:9 ~mode:Machine.Respawn (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_machine_reset () =
  let m = Machine.create cfg in
  Machine.offload m ~spes:1 ~mode:Machine.Persistent (fun _ -> ());
  Machine.reset m;
  Alcotest.(check (float 1e-12)) "time cleared" 0.0 (Machine.time m);
  Alcotest.(check int) "threads terminated" 0 (Machine.spawned_spes m)

let tests =
  ( "cellbe",
    [ Alcotest.test_case "config valid" `Quick test_config_valid;
      Alcotest.test_case "config invalid" `Quick test_config_invalid;
      Alcotest.test_case "ledger accumulates" `Quick test_ledger_accumulates;
      Alcotest.test_case "ledger rejects negative" `Quick
        test_ledger_rejects_negative;
      Alcotest.test_case "ledger merge" `Quick test_ledger_merge;
      Alcotest.test_case "local store alloc/capacity" `Quick
        test_ls_alloc_and_capacity;
      Alcotest.test_case "local store quadword rounding" `Quick
        test_ls_quadword_rounding;
      Alcotest.test_case "local store stores f32" `Quick
        test_ls_values_are_f32;
      Alcotest.test_case "local store blits" `Quick test_ls_blits;
      Alcotest.test_case "local store blit bounds" `Quick test_ls_blit_bounds;
      Alcotest.test_case "local store reset invalidates" `Quick
        test_ls_reset_invalidates;
      Alcotest.test_case "machine ledger invariant" `Quick
        test_machine_ledger_invariant;
      Alcotest.test_case "machine dma cost model" `Quick
        test_machine_dma_cost_model;
      Alcotest.test_case "machine dma moves data" `Quick
        test_machine_dma_moves_data;
      Alcotest.test_case "dma contention" `Quick test_dma_contention;
      Alcotest.test_case "respawn cost repeats" `Quick
        test_machine_respawn_cost_repeats;
      Alcotest.test_case "persistent signals" `Quick
        test_machine_persistent_signals;
      Alcotest.test_case "critical path is max" `Quick
        test_machine_critical_path_is_max;
      Alcotest.test_case "offload validation" `Quick
        test_machine_offload_validation;
      Alcotest.test_case "machine reset" `Quick test_machine_reset ] )
