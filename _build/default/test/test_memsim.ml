(* Tests for the memsim library: cache behaviour, hierarchy costs and the
   address-space layout allocator. *)

module Cache = Memsim.Cache
module Hierarchy = Memsim.Hierarchy
module Layout = Memsim.Layout

let small_cache () = Cache.create ~line_bytes:64 ~sets:4 ~ways:2

let test_cache_validation () =
  Alcotest.(check bool) "non-pow2 line rejected" true
    (try
       ignore (Cache.create ~line_bytes:48 ~sets:4 ~ways:2);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero ways rejected" true
    (try
       ignore (Cache.create ~line_bytes:64 ~sets:4 ~ways:0);
       false
     with Invalid_argument _ -> true)

let test_cache_capacity () =
  Alcotest.(check int) "capacity" (64 * 4 * 2)
    (Cache.capacity_bytes (small_cache ()))

let test_cache_cold_miss_then_hit () =
  let c = small_cache () in
  Alcotest.(check bool) "cold miss" true (Cache.access c 0 = Cache.Miss);
  Alcotest.(check bool) "warm hit" true (Cache.access c 0 = Cache.Hit);
  Alcotest.(check bool) "same line hit" true (Cache.access c 63 = Cache.Hit);
  Alcotest.(check bool) "next line miss" true (Cache.access c 64 = Cache.Miss)

let test_cache_lru_eviction () =
  let c = small_cache () in
  (* Three lines mapping to set 0 (stride = line * sets = 256). *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 256);
  ignore (Cache.access c 0);
  (* 0 is MRU *)
  ignore (Cache.access c 512);
  (* evicts 256 *)
  Alcotest.(check bool) "MRU survives" true (Cache.contains c 0);
  Alcotest.(check bool) "LRU evicted" false (Cache.contains c 256)

let test_cache_stats () =
  let c = small_cache () in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 128);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  Alcotest.(check (float 1e-9)) "miss rate" (2.0 /. 3.0) (Cache.miss_rate c);
  Cache.reset_stats c;
  Alcotest.(check int) "stats reset" 0 (Cache.accesses c);
  Alcotest.(check bool) "contents survive stat reset" true
    (Cache.contains c 0)

let test_cache_flush () =
  let c = small_cache () in
  ignore (Cache.access c 0);
  Cache.flush c;
  Alcotest.(check bool) "flushed" false (Cache.contains c 0)

let test_cache_negative_address () =
  let c = small_cache () in
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Cache.access c (-8));
       false
     with Invalid_argument _ -> true)

let cache_working_set_prop =
  QCheck.Test.make ~name:"working set within capacity always hits after warmup"
    ~count:50
    QCheck.(int_range 1 8)
    (fun lines ->
      let c = small_cache () in
      (* [lines] distinct lines all mapping to different sets where
         possible; capacity is 8 lines total, 2 ways x 4 sets. *)
      let addrs = List.init lines (fun i -> i * 64) in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      List.for_all (fun a -> Cache.access c a = Cache.Hit) addrs)

let cache_miss_rate_bounds_prop =
  QCheck.Test.make ~name:"miss rate within [0,1]" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 100_000))
    (fun addrs ->
      let c = small_cache () in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      let r = Cache.miss_rate c in
      r >= 0.0 && r <= 1.0)

(* ---------------- Hierarchy ---------------- *)

let tiny_hierarchy () =
  Hierarchy.create
    { Hierarchy.l1_line_bytes = 64; l1_sets = 2; l1_ways = 1;
      l1_hit_cycles = 3; l2_line_bytes = 64; l2_sets = 8; l2_ways = 2;
      l2_hit_cycles = 12; dram_cycles = 100 }

let test_hierarchy_costs () =
  let h = tiny_hierarchy () in
  Alcotest.(check int) "cold: full cost" (3 + 12 + 100) (Hierarchy.access h 0);
  Alcotest.(check int) "L1 hit" 3 (Hierarchy.access h 0);
  (* Evict line 0 from the 128-byte L1 but not from the 1 KB L2. *)
  ignore (Hierarchy.access h 128);
  Alcotest.(check int) "L2 hit after L1 evict" (3 + 12) (Hierarchy.access h 0)

let test_hierarchy_stats () =
  let h = tiny_hierarchy () in
  ignore (Hierarchy.access h 0);
  ignore (Hierarchy.access h 0);
  Alcotest.(check int) "accesses" 2 (Hierarchy.accesses h);
  Alcotest.(check int) "total cycles" (115 + 3) (Hierarchy.total_cycles h);
  Alcotest.(check (float 1e-9)) "average" 59.0 (Hierarchy.average_cycles h)

let test_hierarchy_opteron_config () =
  let cfg = Hierarchy.opteron_2_2ghz in
  Alcotest.(check int) "L1 = 64 KB"
    (64 * 1024)
    (cfg.Hierarchy.l1_line_bytes * cfg.Hierarchy.l1_sets * cfg.Hierarchy.l1_ways);
  Alcotest.(check int) "L2 = 1 MB"
    (1024 * 1024)
    (cfg.Hierarchy.l2_line_bytes * cfg.Hierarchy.l2_sets * cfg.Hierarchy.l2_ways)

let test_hierarchy_streaming_beats_l1 () =
  (* A working set bigger than L1 but within L2, swept twice: the second
     sweep should cost L2-hit, not DRAM. *)
  let h = tiny_hierarchy () in
  let sweep () =
    let total = ref 0 in
    for i = 0 to 7 do
      total := !total + Hierarchy.access h (i * 64)
    done;
    !total
  in
  let first = sweep () in
  let second = sweep () in
  Alcotest.(check bool) "second sweep cheaper" true (second < first);
  Alcotest.(check int) "second sweep all L2 hits" (8 * 15) second

(* ---------------- TLB ---------------- *)

let test_tlb_hit_miss () =
  let tlb = Memsim.Tlb.create ~page_bytes:4096 ~entries:2 ~miss_cycles:25 () in
  Alcotest.(check int) "cold miss pays the walk" 25 (Memsim.Tlb.access tlb 0);
  Alcotest.(check int) "same page hits" 0 (Memsim.Tlb.access tlb 4095);
  Alcotest.(check int) "second page miss" 25 (Memsim.Tlb.access tlb 4096);
  Alcotest.(check int) "both resident" 0 (Memsim.Tlb.access tlb 100)

let test_tlb_lru_eviction () =
  let tlb = Memsim.Tlb.create ~entries:2 () in
  ignore (Memsim.Tlb.access tlb 0);        (* page 0 *)
  ignore (Memsim.Tlb.access tlb 4096);     (* page 1 *)
  ignore (Memsim.Tlb.access tlb 10);       (* touch page 0: page 1 is LRU *)
  ignore (Memsim.Tlb.access tlb 8192);     (* page 2 evicts page 1 *)
  Alcotest.(check int) "page 0 still resident" 0 (Memsim.Tlb.access tlb 20);
  Alcotest.(check bool) "page 1 evicted" true (Memsim.Tlb.access tlb 4097 > 0)

let test_tlb_reach_and_stats () =
  let tlb = Memsim.Tlb.create ~page_bytes:4096 ~entries:32 () in
  Alcotest.(check int) "reach" (32 * 4096) (Memsim.Tlb.reach_bytes tlb);
  ignore (Memsim.Tlb.access tlb 0);
  ignore (Memsim.Tlb.access tlb 1);
  Alcotest.(check int) "hits" 1 (Memsim.Tlb.hits tlb);
  Alcotest.(check int) "misses" 1 (Memsim.Tlb.misses tlb);
  Memsim.Tlb.flush tlb;
  Alcotest.(check int) "flushed" 0 (Memsim.Tlb.hits tlb)

let test_tlb_validation () =
  Alcotest.(check bool) "non-pow2 page rejected" true
    (try
       ignore (Memsim.Tlb.create ~page_bytes:3000 ());
       false
     with Invalid_argument _ -> true)

let tlb_streaming_prop =
  QCheck.Test.make ~name:"streaming working set beyond reach always walks"
    ~count:30
    QCheck.(int_range 33 100)
    (fun pages ->
      let tlb = Memsim.Tlb.create ~entries:32 () in
      (* Two full cyclic sweeps over more pages than entries: the second
         sweep must still miss every page (LRU worst case). *)
      for _ = 1 to 2 do
        for p = 0 to pages - 1 do
          ignore (Memsim.Tlb.access tlb (p * 4096))
        done
      done;
      Memsim.Tlb.misses tlb = 2 * pages)

(* ---------------- Layout ---------------- *)

let test_layout_alignment () =
  let l = Layout.create () in
  let a = Layout.alloc l ~bytes:10 ~align:64 in
  let b = Layout.alloc l ~bytes:10 ~align:64 in
  Alcotest.(check int) "aligned a" 0 (a mod 64);
  Alcotest.(check int) "aligned b" 0 (b mod 64);
  Alcotest.(check bool) "disjoint" true (b >= a + 10)

let test_layout_float_array () =
  let l = Layout.create () in
  let a = Layout.alloc_float_array l ~n:100 in
  let b = Layout.alloc_float_array l ~n:100 in
  Alcotest.(check bool) "disjoint arrays" true (b >= a + 800)

let test_layout_validation () =
  let l = Layout.create () in
  Alcotest.(check bool) "bad align" true
    (try
       ignore (Layout.alloc l ~bytes:8 ~align:3);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative size" true
    (try
       ignore (Layout.alloc l ~bytes:(-1) ~align:8);
       false
     with Invalid_argument _ -> true)

let layout_disjoint_prop =
  QCheck.Test.make ~name:"allocations never overlap" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (int_range 0 1000))
    (fun sizes ->
      let l = Layout.create () in
      let ranges =
        List.map (fun bytes -> (Layout.alloc l ~bytes ~align:16, bytes)) sizes
      in
      let rec disjoint = function
        | (a, la) :: ((b, _) :: _ as rest) ->
          a + la <= b && disjoint rest
        | _ -> true
      in
      disjoint ranges)

let qcheck t = QCheck_alcotest.to_alcotest t

let tests =
  ( "memsim",
    [ Alcotest.test_case "cache validation" `Quick test_cache_validation;
      Alcotest.test_case "cache capacity" `Quick test_cache_capacity;
      Alcotest.test_case "cold miss then hit" `Quick
        test_cache_cold_miss_then_hit;
      Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
      Alcotest.test_case "cache stats" `Quick test_cache_stats;
      Alcotest.test_case "cache flush" `Quick test_cache_flush;
      Alcotest.test_case "negative address" `Quick
        test_cache_negative_address;
      qcheck cache_working_set_prop;
      qcheck cache_miss_rate_bounds_prop;
      Alcotest.test_case "hierarchy costs" `Quick test_hierarchy_costs;
      Alcotest.test_case "hierarchy stats" `Quick test_hierarchy_stats;
      Alcotest.test_case "opteron config sizes" `Quick
        test_hierarchy_opteron_config;
      Alcotest.test_case "streaming beats L1" `Quick
        test_hierarchy_streaming_beats_l1;
      Alcotest.test_case "tlb hit/miss" `Quick test_tlb_hit_miss;
      Alcotest.test_case "tlb lru eviction" `Quick test_tlb_lru_eviction;
      Alcotest.test_case "tlb reach and stats" `Quick
        test_tlb_reach_and_stats;
      Alcotest.test_case "tlb validation" `Quick test_tlb_validation;
      qcheck tlb_streaming_prop;
      Alcotest.test_case "layout alignment" `Quick test_layout_alignment;
      Alcotest.test_case "layout float arrays" `Quick test_layout_float_array;
      Alcotest.test_case "layout validation" `Quick test_layout_validation;
      qcheck layout_disjoint_prop ] )
