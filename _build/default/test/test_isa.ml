(* Tests for the isa library: block construction and the three pipeline
   timing models. *)

module Op = Isa.Op
module Block = Isa.Block
module Spe = Isa.Spe_pipe
module Opteron = Isa.Opteron_pipe
module Gpu = Isa.Gpu_pipe
module B = Isa.Block.Builder

let simple_block ops = Block.of_instrs (List.map (fun op -> { Block.op; deps = [] }) ops)

let chain_block ops =
  let b = B.create () in
  let _ =
    List.fold_left
      (fun prev op ->
        match prev with
        | None -> Some (B.push b op ~deps:[])
        | Some p -> Some (B.push b op ~deps:[ p ]))
      None ops
  in
  B.finish b

(* ---------------- Block ---------------- *)

let test_block_validation () =
  Alcotest.(check bool) "forward dep rejected" true
    (try
       ignore (Block.of_instrs [ { Block.op = Op.Fadd; deps = [ 0 ] } ]);
       false
     with Invalid_argument _ -> true)

let test_block_count () =
  let b = simple_block [ Op.Fadd; Op.Fmul; Op.Fadd; Op.Load ] in
  Alcotest.(check int) "fadd count" 2 (Block.count b Op.Fadd);
  Alcotest.(check int) "memory count" 1 (Block.count_if b Op.is_memory);
  Alcotest.(check int) "length" 4 (Block.length b)

let test_block_append () =
  let a = chain_block [ Op.Fadd; Op.Fmul ] in
  let b = chain_block [ Op.Load; Op.Fadd ] in
  let c = Block.append a b in
  Alcotest.(check int) "appended length" 4 (Block.length c);
  (* The shifted dependence must still point backwards. *)
  let instrs = Block.instrs c in
  Alcotest.(check (list int)) "shifted deps" [ 2 ] instrs.(3).Block.deps

let test_builder_push_n () =
  let b = B.create () in
  let ids = B.push_n b Op.Load ~n:3 ~deps:[] in
  Alcotest.(check (list int)) "indices" [ 0; 1; 2 ] ids

let test_builder_bad_dep () =
  let b = B.create () in
  Alcotest.(check bool) "future dep rejected" true
    (try
       ignore (B.push b Op.Fadd ~deps:[ 5 ]);
       false
     with Invalid_argument _ -> true)

(* ---------------- SPE pipeline ---------------- *)

let test_spe_pipes () =
  Alcotest.(check bool) "fadd even" true (Spe.pipe_of Op.Fadd = Spe.Even);
  Alcotest.(check bool) "load odd" true (Spe.pipe_of Op.Load = Spe.Odd);
  Alcotest.(check bool) "shuffle odd" true (Spe.pipe_of Op.Shuffle = Spe.Odd)

let test_spe_dual_issue () =
  (* One even + one odd independent op can issue in the same cycle. *)
  let b = simple_block [ Op.Fadd; Op.Load ] in
  Alcotest.(check int) "throughput 1" 1 (Spe.throughput_cycles b);
  (* Two even ops need two issue cycles. *)
  let b2 = simple_block [ Op.Fadd; Op.Fmul ] in
  Alcotest.(check int) "structural hazard" 2 (Spe.throughput_cycles b2)

let test_spe_dependence_stall () =
  let dep = chain_block [ Op.Fadd; Op.Fadd ] in
  let indep = simple_block [ Op.Fadd; Op.Fadd ] in
  Alcotest.(check bool) "dependent chain slower" true
    (Spe.critical_path_cycles dep > Spe.critical_path_cycles indep);
  Alcotest.(check int) "chain = 2 x latency" (2 * Spe.latency Op.Fadd)
    (Spe.critical_path_cycles dep)

let test_spe_branch_miss_penalty () =
  let without = simple_block [ Op.Fadd; Op.Fadd ] in
  let with_miss = simple_block [ Op.Fadd; Op.Branch_miss; Op.Fadd ] in
  let delta =
    Spe.critical_path_cycles with_miss - Spe.critical_path_cycles without
  in
  Alcotest.(check bool) "flush visible in schedule" true
    (delta >= Spe.branch_miss_penalty - 2)

let test_spe_bounds_order () =
  let block = Mdports.Kernels.spe_base Mdports.Cell_variant.Original in
  Alcotest.(check bool) "throughput <= critical path" true
    (Spe.throughput_cycles block <= Spe.critical_path_cycles block)

let test_spe_overlap_interpolation () =
  let block = Mdports.Kernels.spe_base Mdports.Cell_variant.Simd_length in
  let at o = Spe.per_iteration_cycles block ~overlap:o in
  Alcotest.(check (float 1e-9)) "overlap 1 = throughput"
    (float_of_int (Spe.throughput_cycles block))
    (at 1.0);
  Alcotest.(check (float 1e-9)) "overlap 0 = critical path"
    (float_of_int (Spe.critical_path_cycles block))
    (at 0.0);
  Alcotest.(check bool) "midpoint between" true
    (at 0.5 >= at 1.0 && at 0.5 <= at 0.0)

let test_spe_loop_scaling () =
  let block = simple_block [ Op.Fadd; Op.Load ] in
  let one = Spe.loop_cycles block ~iterations:1 ~overlap:0.5 in
  let ten = Spe.loop_cycles block ~iterations:10 ~overlap:0.5 in
  Alcotest.(check (float 1e-9)) "linear in iterations" (10.0 *. one) ten

let test_spe_invalid_args () =
  let block = simple_block [ Op.Fadd ] in
  Alcotest.(check bool) "bad overlap" true
    (try
       ignore (Spe.loop_cycles block ~iterations:1 ~overlap:1.5);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative iterations" true
    (try
       ignore (Spe.loop_cycles block ~iterations:(-1) ~overlap:0.5);
       false
     with Invalid_argument _ -> true)

(* ---------------- Opteron pipeline ---------------- *)

let test_opteron_critical_path () =
  let dep = chain_block [ Op.Fmul; Op.Fadd ] in
  Alcotest.(check int) "mul then add"
    (Opteron.latency Op.Fmul + Opteron.latency Op.Fadd)
    (Opteron.critical_path_cycles dep)

let test_opteron_unpipelined_sqrt () =
  let no_sqrt = simple_block [ Op.Fadd; Op.Fmul ] in
  let sqrt = simple_block [ Op.Fadd; Op.Fmul; Op.Fsqrt ] in
  Alcotest.(check bool) "sqrt occupies the unit" true
    (Opteron.resource_cycles sqrt
    >= Opteron.resource_cycles no_sqrt
       +. float_of_int (Opteron.latency Op.Fsqrt))

let test_opteron_decode_bound () =
  (* Many cheap independent int ops: bound by 3-wide decode. *)
  let b = simple_block (List.init 30 (fun _ -> Op.Ialu)) in
  Alcotest.(check (float 0.01)) "30 ops / 3-wide" 10.0
    (Opteron.resource_cycles b)

let test_opteron_overlap_bounds () =
  let block = Mdports.Kernels.opteron_base in
  let full = Opteron.per_iteration_cycles block ~overlap:1.0 in
  let none = Opteron.per_iteration_cycles block ~overlap:0.0 in
  Alcotest.(check bool) "resource <= exposed" true (full <= none)

(* ---------------- GPU pipeline ---------------- *)

let test_gpu_fragment_cost () =
  let b = simple_block [ Op.Fmadd; Op.Fmadd; Op.Load ] in
  Alcotest.(check (float 1e-9)) "sum of issue costs" 3.0
    (Gpu.cycles_per_fragment b)

let test_gpu_transcendental_cost () =
  let cheap = simple_block [ Op.Fadd ] in
  let costly = simple_block [ Op.Fdiv ] in
  Alcotest.(check bool) "div costlier than add" true
    (Gpu.cycles_per_fragment costly > Gpu.cycles_per_fragment cheap)

let test_gpu_single_output () =
  let two_stores = simple_block [ Op.Store; Op.Store ] in
  Alcotest.(check bool) "two stores rejected" true
    (try
       ignore (Gpu.cycles_per_fragment two_stores);
       false
     with Invalid_argument _ -> true)

let test_gpu_dispatch_scaling () =
  let b = simple_block [ Op.Fmadd; Op.Fmadd ] in
  let c1 = Gpu.dispatch_cycles b ~fragments:24 ~pipes:24 in
  let c2 = Gpu.dispatch_cycles b ~fragments:48 ~pipes:24 in
  let c3 = Gpu.dispatch_cycles b ~fragments:48 ~pipes:48 in
  Alcotest.(check (float 1e-9)) "linear in fragments" (2.0 *. c1) c2;
  Alcotest.(check (float 1e-9)) "inverse in pipes" c1 c3

let test_gpu_dispatch_validation () =
  let b = simple_block [ Op.Fadd ] in
  Alcotest.(check bool) "zero pipes rejected" true
    (try
       ignore (Gpu.dispatch_cycles b ~fragments:1 ~pipes:0);
       false
     with Invalid_argument _ -> true)

(* ---------------- Properties over random blocks ---------------- *)

(* Random block generator: op choices that appear in real kernels, with
   random (valid, backward) dependences. *)
let non_branch_ops =
  [| Op.Fadd; Op.Fmul; Op.Fmadd; Op.Fadd_dp; Op.Fmul_dp; Op.Fdiv; Op.Fsqrt;
     Op.Frecip_est; Op.Fcmp; Op.Fsel; Op.Fcopysign; Op.Ialu; Op.Load;
     Op.Store; Op.Shuffle |]

let random_block_gen =
  QCheck.Gen.(
    let* len = int_range 1 40 in
    let* seed = int_range 0 10_000 in
    let rng = Sim_util.Rng.create seed in
    let b = B.create () in
    for i = 0 to len - 1 do
      let op = non_branch_ops.(Sim_util.Rng.int_below rng (Array.length non_branch_ops)) in
      let deps =
        if i = 0 || Sim_util.Rng.int_below rng 3 = 0 then []
        else [ Sim_util.Rng.int_below rng i ]
      in
      ignore (B.push b op ~deps)
    done;
    return (B.finish b))

let arb_block =
  QCheck.make
    ~print:(fun b -> Format.asprintf "%a" Block.pp b)
    random_block_gen

let spe_bounds_prop =
  QCheck.Test.make ~name:"SPE: throughput <= critical path (any block)"
    ~count:200 arb_block
    (fun b -> Spe.throughput_cycles b <= Spe.critical_path_cycles b)

let spe_append_monotone_prop =
  QCheck.Test.make
    ~name:"SPE: appending work never reduces either bound" ~count:200
    (QCheck.pair arb_block arb_block)
    (fun (a, b) ->
      let ab = Block.append a b in
      Spe.critical_path_cycles ab >= Spe.critical_path_cycles a
      && Spe.throughput_cycles ab >= Spe.throughput_cycles a)

let spe_overlap_monotone_prop =
  QCheck.Test.make
    ~name:"SPE: per-iteration cycles decrease with overlap" ~count:200
    arb_block
    (fun b ->
      Spe.per_iteration_cycles b ~overlap:0.0
      >= Spe.per_iteration_cycles b ~overlap:0.5
      && Spe.per_iteration_cycles b ~overlap:0.5
         >= Spe.per_iteration_cycles b ~overlap:1.0)

let opteron_decode_floor_prop =
  QCheck.Test.make ~name:"Opteron: resource bound >= 3-wide decode floor"
    ~count:200 arb_block
    (fun b ->
      Opteron.resource_cycles b >= float_of_int (Block.length b) /. 3.0 -. 1e-9)

let gpu_cost_floor_prop =
  QCheck.Test.make ~name:"GPU: fragment cost >= one slot per op" ~count:200
    arb_block
    (fun b ->
      QCheck.assume (Block.count b Op.Store <= 1);
      QCheck.assume (Block.count_if b Op.is_double_precision = 0);
      Gpu.cycles_per_fragment b >= float_of_int (Block.length b))

let dp_never_cheaper_prop =
  QCheck.Test.make
    ~name:"SPE: DP-izing any op never lowers the throughput bound"
    ~count:200 arb_block
    (fun b ->
      let dp_ize (op : Op.t) =
        match op with
        | Op.Fadd -> Op.Fadd_dp
        | Op.Fmul -> Op.Fmul_dp
        | Op.Fmadd -> Op.Fmadd_dp
        | op -> op
      in
      let instrs = Block.instrs b in
      let dp =
        Block.of_instrs
          (Array.to_list
             (Array.map
                (fun (i : Block.instr) -> { i with Block.op = dp_ize i.Block.op })
                instrs))
      in
      Spe.throughput_cycles dp >= Spe.throughput_cycles b)

(* A structural regression test: the Fig. 5 ladder ordering is a property
   of the blocks + scheduler, so pin it here at the ISA level. *)
let test_ladder_ordering () =
  let cycles v =
    Spe.per_iteration_cycles (Mdports.Kernels.spe_base v)
      ~overlap:Mdports.Kernels.spe_overlap
  in
  let open Mdports.Cell_variant in
  let seq = List.map cycles all in
  let rec nonincreasing = function
    | a :: (b :: _ as rest) -> a >= b && nonincreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "each rung at least as fast" true (nonincreasing seq)

let tests =
  ( "isa",
    [ Alcotest.test_case "block validation" `Quick test_block_validation;
      Alcotest.test_case "block count" `Quick test_block_count;
      Alcotest.test_case "block append" `Quick test_block_append;
      Alcotest.test_case "builder push_n" `Quick test_builder_push_n;
      Alcotest.test_case "builder bad dep" `Quick test_builder_bad_dep;
      Alcotest.test_case "spe pipes" `Quick test_spe_pipes;
      Alcotest.test_case "spe dual issue" `Quick test_spe_dual_issue;
      Alcotest.test_case "spe dependence stall" `Quick
        test_spe_dependence_stall;
      Alcotest.test_case "spe branch miss" `Quick test_spe_branch_miss_penalty;
      Alcotest.test_case "spe bounds order" `Quick test_spe_bounds_order;
      Alcotest.test_case "spe overlap interpolation" `Quick
        test_spe_overlap_interpolation;
      Alcotest.test_case "spe loop scaling" `Quick test_spe_loop_scaling;
      Alcotest.test_case "spe invalid args" `Quick test_spe_invalid_args;
      Alcotest.test_case "opteron critical path" `Quick
        test_opteron_critical_path;
      Alcotest.test_case "opteron unpipelined sqrt" `Quick
        test_opteron_unpipelined_sqrt;
      Alcotest.test_case "opteron decode bound" `Quick
        test_opteron_decode_bound;
      Alcotest.test_case "opteron overlap bounds" `Quick
        test_opteron_overlap_bounds;
      Alcotest.test_case "gpu fragment cost" `Quick test_gpu_fragment_cost;
      Alcotest.test_case "gpu transcendental cost" `Quick
        test_gpu_transcendental_cost;
      Alcotest.test_case "gpu single output" `Quick test_gpu_single_output;
      Alcotest.test_case "gpu dispatch scaling" `Quick
        test_gpu_dispatch_scaling;
      Alcotest.test_case "gpu dispatch validation" `Quick
        test_gpu_dispatch_validation;
      Alcotest.test_case "fig5 ladder ordering" `Quick test_ladder_ordering;
      QCheck_alcotest.to_alcotest spe_bounds_prop;
      QCheck_alcotest.to_alcotest spe_append_monotone_prop;
      QCheck_alcotest.to_alcotest spe_overlap_monotone_prop;
      QCheck_alcotest.to_alcotest opteron_decode_floor_prop;
      QCheck_alcotest.to_alcotest gpu_cost_floor_prop;
      QCheck_alcotest.to_alcotest dp_never_cheaper_prop ]
  )
