test/test_isa.ml: Alcotest Array Format Isa List Mdports QCheck QCheck_alcotest Sim_util
