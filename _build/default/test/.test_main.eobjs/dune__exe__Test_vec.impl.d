test/test_vec.ml: Alcotest Array Format List QCheck QCheck_alcotest Sim_util Vecmath
