test/test_memsim.ml: Alcotest List Memsim QCheck QCheck_alcotest
