test/test_calibration.ml: Alcotest Harness Lazy List
