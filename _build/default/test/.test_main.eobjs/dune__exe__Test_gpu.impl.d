test/test_gpu.ml: Alcotest Array Gpustream Isa List Printf Vecmath
