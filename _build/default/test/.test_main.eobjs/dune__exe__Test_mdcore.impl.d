test/test_mdcore.ml: Alcotest Array Filename Float Fun List Mdcore Printf QCheck QCheck_alcotest Sim_util Sys Vecmath
