test/test_seqalign.ml: Alcotest Gpustream List Mta Printf QCheck QCheck_alcotest Seqalign Sim_util String
