test/test_mta.ml: Alcotest Array Float Isa Mta Sim_util
