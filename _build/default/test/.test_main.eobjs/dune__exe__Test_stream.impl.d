test/test_stream.ml: Alcotest Array Fun Gpustream Isa Sim_util Streamdsl Vecmath
