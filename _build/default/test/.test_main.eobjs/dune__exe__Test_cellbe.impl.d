test/test_cellbe.ml: Alcotest Array Cellbe Sim_util
