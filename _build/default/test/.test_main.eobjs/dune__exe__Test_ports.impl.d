test/test_ports.ml: Alcotest Lazy List Mdcore Mdports Printf Sim_util
