test/test_bonded.ml: Alcotest Array Float List Mdcore Printf Sim_util Vecmath
