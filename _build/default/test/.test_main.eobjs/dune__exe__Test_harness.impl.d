test/test_harness.ml: Alcotest Filename Harness Lazy List Printf Sim_util String Sys
