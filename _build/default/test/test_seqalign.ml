(* Tests for the Smith-Waterman library: scalar reference, MTA-2
   wavefront (full/empty bits) and GPU anti-diagonal ports. *)

module Dna = Seqalign.Dna
module Scoring = Seqalign.Scoring
module Reference = Seqalign.Reference
module Mta_sw = Seqalign.Mta_sw
module Gpu_sw = Seqalign.Gpu_sw
module Rng = Sim_util.Rng

let mta_machine () = Mta.Machine.create (Mta.Config.mta2 ())
let gpu_machine () = Gpustream.Machine.create Gpustream.Config.geforce_7900gtx
let gpu_aligner () = Gpu_sw.create (gpu_machine ())

(* ---------------- Dna ---------------- *)

let test_dna_validation () =
  Alcotest.(check string) "normalizes case" "ACGT"
    (Dna.to_string (Dna.of_string "acGt"));
  Alcotest.(check bool) "bad base rejected" true
    (try
       ignore (Dna.of_string "ACGX");
       false
     with Invalid_argument _ -> true)

let test_dna_random_deterministic () =
  let a = Dna.random (Rng.create 5) ~length:50 in
  let b = Dna.random (Rng.create 5) ~length:50 in
  Alcotest.(check string) "deterministic" (Dna.to_string a) (Dna.to_string b)

let test_dna_mutate_rate_zero () =
  let a = Dna.random (Rng.create 1) ~length:40 in
  let b = Dna.mutate (Rng.create 2) ~rate:0.0 a in
  Alcotest.(check string) "rate 0 is identity" (Dna.to_string a)
    (Dna.to_string b)

(* ---------------- Reference ---------------- *)

let test_identical_sequences () =
  let s = Dna.of_string "ACGTACGTAC" in
  let r = Reference.align s s in
  Alcotest.(check int) "perfect score = len * match"
    (10 * Scoring.default.Scoring.match_score)
    r.Reference.score

let test_known_alignment () =
  (* Hand-checked case: a = "ACACACTA", b = "AGCACACA" with +2/-1/-2.
     Best local alignment is  A-CACAC
                              AGCACAC : six matches, one gap
     = 6*2 - 2 = 10. *)
  let a = Dna.of_string "ACACACTA" and b = Dna.of_string "AGCACACA" in
  let r = Reference.align a b in
  Alcotest.(check int) "hand-checked case" 10 r.Reference.score

let test_disjoint_alphabet_score_zero () =
  let a = Dna.of_string "AAAA" and b = Dna.of_string "GGGG" in
  Alcotest.(check int) "nothing aligns" 0 (Reference.align a b).Reference.score

let test_substring_found () =
  let rng = Rng.create 9 in
  let hay = Dna.random rng ~length:200 in
  let needle = Dna.sub hay ~pos:60 ~len:25 in
  let r = Reference.align needle hay in
  Alcotest.(check int) "exact substring scores len * match"
    (25 * Scoring.default.Scoring.match_score)
    r.Reference.score

let test_traceback_consistency () =
  let rng = Rng.create 11 in
  let a = Dna.random rng ~length:60 in
  let b = Dna.mutate (Rng.split rng) ~rate:0.1 a in
  let tb = Reference.align_traceback a b in
  Alcotest.(check int) "traceback score matches align"
    (Reference.align a b).Reference.score tb.Reference.result.Reference.score;
  Alcotest.(check int) "aligned strings same length"
    (String.length tb.Reference.aligned_a)
    (String.length tb.Reference.aligned_b);
  (* Re-score the traceback: must equal the reported score. *)
  let s = ref 0 in
  String.iteri
    (fun k ca ->
      let cb = tb.Reference.aligned_b.[k] in
      if ca = '-' || cb = '-' then s := !s + Scoring.default.Scoring.gap
      else s := !s + Scoring.score Scoring.default ca cb)
    tb.Reference.aligned_a;
  Alcotest.(check int) "traceback rescoring" tb.Reference.result.Reference.score
    !s

let sw_symmetry_prop =
  QCheck.Test.make ~name:"SW score is symmetric" ~count:30
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (la, lb) ->
      let rng = Rng.create (la + (100 * lb)) in
      let a = Dna.random rng ~length:la in
      let b = Dna.random (Rng.split rng) ~length:lb in
      (Reference.align a b).Reference.score
      = (Reference.align b a).Reference.score)

let sw_score_bounds_prop =
  QCheck.Test.make ~name:"0 <= score <= min-len * match" ~count:30
    QCheck.(pair (int_range 1 40) (int_range 1 40))
    (fun (la, lb) ->
      let rng = Rng.create (la + (1000 * lb)) in
      let a = Dna.random rng ~length:la in
      let b = Dna.random (Rng.split rng) ~length:lb in
      let s = (Reference.align a b).Reference.score in
      s >= 0 && s <= min la lb * Scoring.default.Scoring.match_score)

let test_affine_equals_linear_when_flat () =
  let rng = Rng.create 71 in
  for _ = 1 to 10 do
    let a = Dna.random rng ~length:30 in
    let b = Dna.random (Rng.split rng) ~length:35 in
    let g = Scoring.default.Scoring.gap in
    Alcotest.(check int) "gap_open = gap_extend = gap reduces to linear"
      (Reference.align a b).Reference.score
      (Reference.align_affine ~gap_open:g ~gap_extend:g a b).Reference.score
  done

let test_affine_penalizes_openings () =
  (* One long gap vs two short ones: affine gaps should prefer the single
     long gap.  a has one 4-base insertion relative to b. *)
  let a = Dna.of_string "ACGTACGTTTTTACGTACGT" in
  let b = Dna.of_string "ACGTACGTACGTACGT" in
  let affine =
    Reference.align_affine ~gap_open:(-4) ~gap_extend:(-1) a b
  in
  (* 16 matches (2 each) - open 4 - 3 extends = 32 - 7 = 25 *)
  Alcotest.(check int) "single long gap priced as open + extends" 25
    affine.Reference.score

let test_affine_never_beats_cheap_linear () =
  let rng = Rng.create 73 in
  for _ = 1 to 10 do
    let a = Dna.random rng ~length:25 in
    let b = Dna.random (Rng.split rng) ~length:25 in
    let linear = (Reference.align a b).Reference.score in
    let affine =
      (Reference.align_affine ~gap_open:(-5)
         ~gap_extend:Scoring.default.Scoring.gap a b)
        .Reference.score
    in
    (* same extension cost but costlier opening: affine <= linear *)
    Alcotest.(check bool) "affine <= linear" true (affine <= linear)
  done

let test_affine_validation () =
  let a = Dna.of_string "ACGT" in
  Alcotest.(check bool) "positive gap rejected" true
    (try
       ignore (Reference.align_affine ~gap_open:1 ~gap_extend:(-1) a a);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "open cheaper than extend rejected" true
    (try
       ignore (Reference.align_affine ~gap_open:(-1) ~gap_extend:(-2) a a);
       false
     with Invalid_argument _ -> true)

(* ---------------- MTA wavefront ---------------- *)

let test_mta_matches_reference () =
  let rng = Rng.create 21 in
  let a = Dna.random rng ~length:48 in
  let b = Dna.mutate (Rng.split rng) ~rate:0.15 a in
  let machine = mta_machine () in
  let r = Mta_sw.align ~machine a b in
  let expect = Reference.align a b in
  Alcotest.(check int) "score" expect.Reference.score r.Reference.score;
  Alcotest.(check int) "end_a" expect.Reference.end_a r.Reference.end_a;
  Alcotest.(check int) "end_b" expect.Reference.end_b r.Reference.end_b

let test_mta_charges_sync_and_parallel () =
  let rng = Rng.create 23 in
  let a = Dna.random rng ~length:32 in
  let b = Dna.random (Rng.split rng) ~length:32 in
  let machine = mta_machine () in
  ignore (Mta_sw.align ~machine a b);
  let ledger = Mta.Machine.ledger machine in
  Alcotest.(check bool) "full/empty traffic" true
    (Mta.Ledger.get ledger Mta.Ledger.Sync > 0.0);
  Alcotest.(check bool) "parallel wavefront time" true
    (Mta.Ledger.get ledger Mta.Ledger.Parallel > 0.0);
  Alcotest.(check (float 1e-15)) "ledger total = machine time"
    (Mta.Machine.time machine) (Mta.Ledger.total ledger)

let test_mta_empty_sequences () =
  let machine = mta_machine () in
  let r = Mta_sw.align ~machine (Dna.of_string "") (Dna.of_string "ACGT") in
  Alcotest.(check int) "empty vs nonempty" 0 r.Reference.score;
  Alcotest.(check (float 0.0)) "no time charged" 0.0
    (Mta.Machine.time machine)

(* ---------------- GPU anti-diagonal ---------------- *)

let test_gpu_matches_reference () =
  let rng = Rng.create 31 in
  let a = Dna.random rng ~length:40 in
  let b = Dna.mutate (Rng.split rng) ~rate:0.2 a in
  let aligner = gpu_aligner () in
  let r = Gpu_sw.align aligner a b in
  Alcotest.(check int) "score" (Reference.align a b).Reference.score
    r.Reference.score

let test_gpu_dispatch_count () =
  let a = Dna.of_string "ACGTACGT" and b = Dna.of_string "TTGACA" in
  let aligner = gpu_aligner () in
  let machine = Gpu_sw.machine aligner in
  let before =
    Gpustream.Ledger.get (Gpustream.Machine.ledger machine)
      Gpustream.Ledger.Dispatch
  in
  ignore (Gpu_sw.align aligner a b);
  let after =
    Gpustream.Ledger.get (Gpustream.Machine.ledger machine)
      Gpustream.Ledger.Dispatch
  in
  let cfg = Gpustream.Config.geforce_7900gtx in
  (* dispatches + resolves each charge the draw-call overhead; at minimum
     the predicted dispatch count must be covered. *)
  Alcotest.(check bool)
    (Printf.sprintf "draw-call overhead for >= %d dispatches"
       (Gpu_sw.dispatches a b))
    true
    (after -. before
    >= float_of_int (Gpu_sw.dispatches a b)
       *. cfg.Gpustream.Config.dispatch_overhead)

let test_gpu_overhead_dominated_when_short () =
  (* The reason the cited GPU SW papers batch sequences: short alignments
     are all draw-call overhead. *)
  let rng = Rng.create 41 in
  let a = Dna.random rng ~length:24 in
  let b = Dna.random (Rng.split rng) ~length:24 in
  let aligner = gpu_aligner () in
  ignore (Gpu_sw.align aligner a b);
  let ledger = Gpustream.Machine.ledger (Gpu_sw.machine aligner) in
  Alcotest.(check bool) "dispatch >> shader for short sequences" true
    (Gpustream.Ledger.get ledger Gpustream.Ledger.Dispatch
    > 5.0 *. Gpustream.Ledger.get ledger Gpustream.Ledger.Shader)

let test_gpu_batch_matches_individual () =
  let rng = Rng.create 51 in
  let query = Dna.random rng ~length:32 in
  let subjects =
    List.init 5 (fun k ->
        if k mod 2 = 0 then Dna.mutate (Rng.split rng) ~rate:0.2 query
        else Dna.random (Rng.split rng) ~length:(20 + (5 * k)))
  in
  let aligner = gpu_aligner () in
  let batch = Gpu_sw.align_batch aligner ~query subjects in
  List.iter2
    (fun subject (batched : Seqalign.Reference.result) ->
      Alcotest.(check int) "batch = individual"
        (Reference.align query subject).Reference.score
        batched.Reference.score)
    subjects batch

let test_gpu_batch_amortizes_dispatches () =
  let rng = Rng.create 53 in
  let query = Dna.random rng ~length:24 in
  let subjects =
    List.init 8 (fun _ -> Dna.random (Rng.split rng) ~length:24)
  in
  let dispatch_time run =
    let aligner = gpu_aligner () in
    run aligner;
    Gpustream.Ledger.get
      (Gpustream.Machine.ledger (Gpu_sw.machine aligner))
      Gpustream.Ledger.Dispatch
  in
  let individually =
    dispatch_time (fun al ->
        List.iter (fun s -> ignore (Gpu_sw.align al query s)) subjects)
  in
  let batched =
    dispatch_time (fun al -> ignore (Gpu_sw.align_batch al ~query subjects))
  in
  Alcotest.(check bool)
    (Printf.sprintf "batched %.4f s << individual %.4f s" batched individually)
    true
    (batched < individually /. 4.0)

let test_devices_agree () =
  let rng = Rng.create 43 in
  let a = Dna.random rng ~length:30 in
  let b = Dna.random (Rng.split rng) ~length:50 in
  let mta = Mta_sw.align ~machine:(mta_machine ()) a b in
  let gpu = Gpu_sw.align (gpu_aligner ()) a b in
  let expect = Reference.align a b in
  Alcotest.(check int) "mta = reference" expect.Reference.score
    mta.Reference.score;
  Alcotest.(check int) "gpu = reference" expect.Reference.score
    gpu.Reference.score

let qcheck t = QCheck_alcotest.to_alcotest t

let tests =
  ( "seqalign",
    [ Alcotest.test_case "dna validation" `Quick test_dna_validation;
      Alcotest.test_case "dna random deterministic" `Quick
        test_dna_random_deterministic;
      Alcotest.test_case "dna mutate rate 0" `Quick test_dna_mutate_rate_zero;
      Alcotest.test_case "identical sequences" `Quick
        test_identical_sequences;
      Alcotest.test_case "known alignment" `Quick test_known_alignment;
      Alcotest.test_case "disjoint alphabets" `Quick
        test_disjoint_alphabet_score_zero;
      Alcotest.test_case "substring found" `Quick test_substring_found;
      Alcotest.test_case "traceback consistency" `Quick
        test_traceback_consistency;
      qcheck sw_symmetry_prop;
      qcheck sw_score_bounds_prop;
      Alcotest.test_case "affine reduces to linear" `Quick
        test_affine_equals_linear_when_flat;
      Alcotest.test_case "affine penalizes openings" `Quick
        test_affine_penalizes_openings;
      Alcotest.test_case "affine <= linear" `Quick
        test_affine_never_beats_cheap_linear;
      Alcotest.test_case "affine validation" `Quick test_affine_validation;
      Alcotest.test_case "mta matches reference" `Quick
        test_mta_matches_reference;
      Alcotest.test_case "mta sync/parallel charges" `Quick
        test_mta_charges_sync_and_parallel;
      Alcotest.test_case "mta empty sequences" `Quick
        test_mta_empty_sequences;
      Alcotest.test_case "gpu matches reference" `Quick
        test_gpu_matches_reference;
      Alcotest.test_case "gpu dispatch count" `Quick test_gpu_dispatch_count;
      Alcotest.test_case "gpu overhead when short" `Quick
        test_gpu_overhead_dominated_when_short;
      Alcotest.test_case "gpu batch = individual" `Quick
        test_gpu_batch_matches_individual;
      Alcotest.test_case "gpu batch amortizes dispatches" `Quick
        test_gpu_batch_amortizes_dispatches;
      Alcotest.test_case "devices agree" `Quick test_devices_agree ] )
