(* Tests for the experiment harness: registry integrity, report plumbing,
   and quick-scale versions of all six experiments (the full paper-scale
   shape checks run via `mdsim experiment all`; here we assert the pieces
   that must hold at any scale). *)

module H = Harness

let quick_ctx = lazy (H.Context.create ~scale:H.Context.quick_scale ())

let test_registry_complete () =
  Alcotest.(check (list string)) "all six artifacts"
    [ "table1"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9" ]
    H.Registry.ids

let test_registry_find () =
  Alcotest.(check bool) "finds fig7" true (H.Registry.find "fig7" <> None);
  Alcotest.(check bool) "unknown id" true (H.Registry.find "fig99" = None)

let test_bands_sane () =
  List.iter
    (fun (b : H.Paper_data.band) ->
      Alcotest.(check bool) b.H.Paper_data.claim true
        (b.H.Paper_data.lo < b.H.Paper_data.hi))
    [ H.Paper_data.cell_8spe_vs_opteron; H.Paper_data.cell_1spe_vs_opteron;
      H.Paper_data.cell_8spe_vs_ppe; H.Paper_data.ladder_copysign;
      H.Paper_data.ladder_reflection; H.Paper_data.ladder_direction;
      H.Paper_data.ladder_length; H.Paper_data.ladder_acceleration;
      H.Paper_data.respawn_8spe_vs_1spe; H.Paper_data.persistent_8spe_vs_1spe;
      H.Paper_data.gpu_vs_opteron_2048; H.Paper_data.mta_fully_vs_partially_2048 ]

let test_band_checks () =
  let b = { H.Paper_data.lo = 1.0; hi = 2.0; claim = "test" } in
  Alcotest.(check bool) "inside" true (H.Paper_data.in_band b 1.5);
  Alcotest.(check bool) "outside" false (H.Paper_data.in_band b 2.5);
  let c = H.Experiment.check_band ~name:"x" b 1.5 in
  Alcotest.(check bool) "check passes" true c.H.Experiment.passed

let run_quick id =
  match H.Registry.find id with
  | None -> Alcotest.failf "experiment %s missing" id
  | Some e -> H.Report.run_one (Lazy.force quick_ctx) e

(* At quick scale the calibrated paper bands need not hold (tiny systems
   shift the hit fraction and overhead balance), but each experiment must
   produce a structurally complete outcome. *)
let test_quick_outcome id expected_rows () =
  let o = run_quick id in
  Alcotest.(check string) "id" id o.H.Experiment.id;
  Alcotest.(check bool) "has checks" true (o.H.Experiment.checks <> []);
  Alcotest.(check int) "table rows" expected_rows
    (Sim_util.Table.row_count o.H.Experiment.table)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_report_rendering () =
  let o = run_quick "fig8" in
  let text = H.Report.render_outcome o in
  Alcotest.(check bool) "mentions title" true (contains ~needle:"MTA-2" text);
  Alcotest.(check bool) "has PASS/FAIL lines" true
    (contains ~needle:"[PASS]" text || contains ~needle:"[FAIL]" text)

let test_report_csv () =
  let o = run_quick "fig8" in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "mdsim-test-csv" in
  let files = H.Report.write_csvs ~dir [ o ] in
  List.iter
    (fun f ->
      Alcotest.(check bool) ("exists " ^ f) true (Sys.file_exists f))
    files

let test_markdown_report () =
  let o = run_quick "fig8" in
  let md = H.Report.to_markdown [ o ] in
  Alcotest.(check bool) "has section heading" true (contains ~needle:"## " md);
  Alcotest.(check bool) "has md table separator" true
    (contains ~needle:"|---|" md);
  Alcotest.(check bool) "has check marks" true
    (contains ~needle:"\xe2\x9c\x85" md || contains ~needle:"\xe2\x9d\x8c" md);
  Alcotest.(check bool) "has summary" true
    (contains ~needle:"experiments reproduce" md)

let test_table_markdown () =
  let t = Sim_util.Table.create ~headers:[ "a"; "b|c" ] in
  Sim_util.Table.add_row t [ "1"; "2" ];
  let md = Sim_util.Table.to_markdown t in
  Alcotest.(check bool) "pipes escaped" true (contains ~needle:"b\\|c" md)

let test_summary_line () =
  let o = run_quick "fig8" in
  let line = H.Report.summary_line [ o ] in
  Alcotest.(check bool) "mentions 1 experiment" true
    (String.length line > 0)

(* Paper-shape checks that are scale-independent enough to assert even at
   quick scale. *)
let test_quick_fig8_shape () =
  let o = run_quick "fig8" in
  let failed =
    List.filter
      (fun (c : H.Experiment.check) ->
        (not c.passed)
        && c.name <> "speedup at the largest size"
        (* the band is calibrated at 4096 atoms *))
      o.H.Experiment.checks
  in
  Alcotest.(check (list string)) "core fig8 shape holds at quick scale" []
    (List.map (fun (c : H.Experiment.check) -> c.name) failed)

let test_quick_table1_sanity () =
  let o = run_quick "table1" in
  Alcotest.(check int) "four rows" 4
    (Sim_util.Table.row_count o.H.Experiment.table)

let test_shape_robust_across_seeds () =
  (* The core orderings must not depend on the random initial
     configuration. *)
  List.iter
    (fun seed ->
      let scale = { H.Context.quick_scale with H.Context.seed } in
      let ctx = H.Context.create ~scale () in
      match H.Registry.find "fig8" with
      | None -> Alcotest.fail "fig8 missing"
      | Some e ->
        let o = H.Report.run_one ctx e in
        let core_failed =
          List.filter
            (fun (c : H.Experiment.check) ->
              (not c.passed) && c.name <> "speedup at the largest size")
            o.H.Experiment.checks
        in
        Alcotest.(check (list string))
          (Printf.sprintf "fig8 shape at seed %d" seed)
          []
          (List.map (fun (c : H.Experiment.check) -> c.name) core_failed))
    [ 1; 7; 1234 ]

let test_context_memoization () =
  let ctx = Lazy.force quick_ctx in
  let a = H.Context.opteron ctx and b = H.Context.opteron ctx in
  Alcotest.(check bool) "same result object" true (a == b);
  let s1 = H.Context.system_of ctx ~n:128 and s2 = H.Context.system_of ctx ~n:128 in
  Alcotest.(check bool) "memoized system" true (s1 == s2)

let tests =
  ( "harness",
    [ Alcotest.test_case "registry complete" `Quick test_registry_complete;
      Alcotest.test_case "registry find" `Quick test_registry_find;
      Alcotest.test_case "bands sane" `Quick test_bands_sane;
      Alcotest.test_case "band checks" `Quick test_band_checks;
      Alcotest.test_case "table1 quick outcome" `Quick
        (test_quick_outcome "table1" 4);
      Alcotest.test_case "fig5 quick outcome" `Quick
        (test_quick_outcome "fig5" 6);
      Alcotest.test_case "fig6 quick outcome" `Quick
        (test_quick_outcome "fig6" 4);
      Alcotest.test_case "fig7 quick outcome" `Quick
        (test_quick_outcome "fig7" 3);
      Alcotest.test_case "fig8 quick outcome" `Quick
        (test_quick_outcome "fig8" 3);
      Alcotest.test_case "fig9 quick outcome" `Quick
        (test_quick_outcome "fig9" 3);
      Alcotest.test_case "report rendering" `Quick test_report_rendering;
      Alcotest.test_case "report csv" `Quick test_report_csv;
      Alcotest.test_case "summary line" `Quick test_summary_line;
      Alcotest.test_case "markdown report" `Quick test_markdown_report;
      Alcotest.test_case "table markdown" `Quick test_table_markdown;
      Alcotest.test_case "fig8 shape at quick scale" `Quick
        test_quick_fig8_shape;
      Alcotest.test_case "table1 sanity" `Quick test_quick_table1_sanity;
      Alcotest.test_case "context memoization" `Quick
        test_context_memoization;
      Alcotest.test_case "shapes robust across seeds" `Slow
        test_shape_robust_across_seeds ] )
