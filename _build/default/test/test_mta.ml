(* Tests for the MTA-2 model: loop parallelization decisions, the
   latency/throughput time bounds, and full/empty-bit cells. *)

module Config = Mta.Config
module Ledger = Mta.Ledger
module Loop = Mta.Loop
module Machine = Mta.Machine
module Sync_cell = Mta.Sync_cell
module Op = Isa.Op
module Block = Isa.Block

let body =
  Block.of_instrs
    [ { Block.op = Op.Load; deps = [] };
      { Block.op = Op.Fadd; deps = [] };
      { Block.op = Op.Fmul; deps = [] } ]

let parallel_loop = Loop.make ~name:"par" ~body ()

let serial_loop =
  Loop.make ~name:"ser" ~body ~carries_dependency:true ()

let pragma_loop =
  Loop.make ~name:"pragma" ~body ~carries_dependency:true
    ~pragma_no_dependence:true ()

let cfg = Config.mta2 ()

let test_config_defaults () =
  Config.validate cfg;
  Alcotest.(check int) "128 streams" 128 cfg.Config.streams_per_proc;
  Alcotest.(check (float 1.0)) "200 MHz" 200e6 cfg.Config.clock.Sim_util.Units.hz

let test_loop_parallelizable () =
  Alcotest.(check bool) "clean loop parallel" true
    (Loop.parallelizable parallel_loop);
  Alcotest.(check bool) "dependency blocks" false
    (Loop.parallelizable serial_loop);
  Alcotest.(check bool) "pragma overrides" true
    (Loop.parallelizable pragma_loop)

let test_loop_counts () =
  Alcotest.(check int) "instructions" 3 (Loop.instructions parallel_loop);
  Alcotest.(check int) "memory ops" 1 (Loop.memory_ops parallel_loop)

let test_serial_pays_latency () =
  let m = Machine.create cfg in
  let s = Machine.serial_seconds m ~loop:serial_loop ~n:1000 in
  (* 3 instrs + 1 mem * 100 cycles latency, per iteration *)
  let expected = 1000.0 *. (3.0 +. 100.0) /. 200e6 in
  Alcotest.(check (float 1e-12)) "serial cost" expected s

let test_parallel_saturated_issue_bound () =
  let m = Machine.create cfg in
  (* Far more iterations than streams: issue-throughput bound. *)
  let n = 1_000_000 in
  let s = Machine.parallel_seconds m ~loop:parallel_loop ~n in
  let issue_bound = float_of_int (n * 3) /. 200e6 in
  Alcotest.(check bool) "close to issue bound" true
    (s >= issue_bound && s < issue_bound *. 1.01)

let test_parallel_undersaturated_latency_bound () =
  let m = Machine.create cfg in
  (* Fewer iterations than streams: each stream's latency is exposed. *)
  let n = 16 in
  let s = Machine.parallel_seconds m ~loop:parallel_loop ~n in
  let per_iter = (3.0 +. 100.0) /. 200e6 in
  let overhead = float_of_int cfg.Config.region_overhead /. 200e6 in
  Alcotest.(check (float 1e-12)) "latency bound with concurrency n"
    (per_iter +. overhead) s

let test_parallel_beats_serial () =
  let m = Machine.create cfg in
  let n = 100_000 in
  Alcotest.(check bool) "parallel much faster" true
    (Machine.parallel_seconds m ~loop:parallel_loop ~n
    < Machine.serial_seconds m ~loop:parallel_loop ~n /. 10.0)

let test_more_processors_help () =
  let one = Machine.create (Config.mta2 ~n_procs:1 ()) in
  let four = Machine.create (Config.mta2 ~n_procs:4 ()) in
  let n = 1_000_000 in
  let s1 = Machine.parallel_seconds one ~loop:parallel_loop ~n in
  let s4 = Machine.parallel_seconds four ~loop:parallel_loop ~n in
  Alcotest.(check bool) "4 procs ~4x faster" true
    (s1 /. s4 > 3.5 && s1 /. s4 < 4.5)

let test_concurrency_cap () =
  let m = Machine.create cfg in
  Alcotest.(check int) "capped by streams" 128 (Machine.concurrency m ~n:4096);
  Alcotest.(check int) "capped by n" 16 (Machine.concurrency m ~n:16)

let test_for_loop_executes_and_charges () =
  let m = Machine.create cfg in
  let count = ref 0 in
  Machine.for_loop m ~loop:parallel_loop ~n:10 ~f:(fun _ -> incr count);
  Alcotest.(check int) "body ran n times" 10 !count;
  Alcotest.(check bool) "time charged" true (Machine.time m > 0.0);
  Alcotest.(check (float 1e-15)) "ledger total = time" (Machine.time m)
    (Ledger.total (Machine.ledger m))

let test_for_loop_serial_category () =
  let m = Machine.create cfg in
  Machine.for_loop m ~loop:serial_loop ~n:10 ~f:(fun _ -> ());
  Alcotest.(check bool) "charged as serial" true
    (Ledger.get (Machine.ledger m) Ledger.Serial > 0.0);
  Alcotest.(check (float 1e-15)) "no parallel time" 0.0
    (Ledger.get (Machine.ledger m) Ledger.Parallel)

let test_xmt_nonuniform_penalty () =
  let xmt = Config.xmt_like ~n_procs:1 () in
  Machine.(
    let m = create xmt in
    let uniform = create (Config.mta2 ()) in
    let n = 16 in
    let sx = parallel_seconds m ~loop:parallel_loop ~n in
    let su = parallel_seconds uniform ~loop:parallel_loop ~n in
    (* The XMT clock is faster but remote references cost more; at low
       concurrency the under-saturated latency bound shows the penalty. *)
    ignore su;
    Alcotest.(check bool) "nonuniform latency visible" true
      (sx *. 500e6 > float_of_int (3 + 150)))

(* ---------------- Sync cells ---------------- *)

let test_sync_cell_protocol () =
  let m = Machine.create cfg in
  let c = Sync_cell.create_full m 1.5 in
  Alcotest.(check bool) "full" true (Sync_cell.is_full c);
  Alcotest.(check (float 0.0)) "readfe" 1.5 (Sync_cell.readfe c);
  Alcotest.(check bool) "now empty" false (Sync_cell.is_full c);
  Sync_cell.writeef c 2.5;
  Alcotest.(check (float 0.0)) "readff" 2.5 (Sync_cell.readff c)

let test_sync_cell_violations () =
  let m = Machine.create cfg in
  let c = Sync_cell.create_empty m in
  Alcotest.(check bool) "readfe on empty raises" true
    (try
       ignore (Sync_cell.readfe c);
       false
     with Sync_cell.Protocol_violation _ -> true);
  Sync_cell.writeef c 1.0;
  Alcotest.(check bool) "writeef on full raises" true
    (try
       Sync_cell.writeef c 2.0;
       false
     with Sync_cell.Protocol_violation _ -> true)

let test_sync_cell_fetch_add () =
  let m = Machine.create cfg in
  let c = Sync_cell.create_full m 0.0 in
  for i = 1 to 10 do
    ignore (Sync_cell.fetch_add c (float_of_int i))
  done;
  Alcotest.(check (float 1e-12)) "sum" 55.0 (Sync_cell.readff c)

let test_sync_charges_time () =
  let m = Machine.create cfg in
  let c = Sync_cell.create_full m 0.0 in
  ignore (Sync_cell.fetch_add c 1.0);
  Alcotest.(check bool) "sync time accounted" true
    (Ledger.get (Machine.ledger m) Ledger.Sync > 0.0)

let test_sync_cheaper_inside_parallel_region () =
  let cost_in_region ~loop =
    let m = Machine.create cfg in
    let c = Sync_cell.create_full m 0.0 in
    Machine.charged_region m ~loop ~n:1000 ~f:(fun () ->
        ignore (Sync_cell.fetch_add c 1.0));
    Ledger.get (Machine.ledger m) Ledger.Sync
  in
  Alcotest.(check bool) "contention amortized across streams" true
    (cost_in_region ~loop:pragma_loop < cost_in_region ~loop:serial_loop)

(* ---------------- Parallel primitives ---------------- *)

let test_par_reduce_sum () =
  let m = Machine.create cfg in
  let arr = Array.init 100 float_of_int in
  let total =
    Mta.Par.reduce m ~body ~f:( +. ) ~init:0.0 arr
  in
  Alcotest.(check (float 1e-9)) "sum 0..99" 4950.0 total;
  Alcotest.(check bool) "charged" true (Machine.time m > 0.0)

let test_par_reduce_max () =
  let m = Machine.create cfg in
  let arr = [| 3.0; 9.0; 1.0; 7.0; 9.5; 0.0 |] in
  Alcotest.(check (float 0.0)) "max" 9.5
    (Mta.Par.reduce m ~body ~f:Float.max ~init:neg_infinity arr)

let test_par_reduce_empty () =
  let m = Machine.create cfg in
  Alcotest.(check (float 0.0)) "empty = init" 42.0
    (Mta.Par.reduce m ~body ~f:( +. ) ~init:42.0 [||])

let test_par_scan () =
  let m = Machine.create cfg in
  let arr = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let scanned = Mta.Par.scan_inclusive m ~body ~f:( +. ) arr in
  Alcotest.(check (array (float 1e-9))) "prefix sums"
    [| 1.0; 3.0; 6.0; 10.0; 15.0 |] scanned

let test_par_atomic_sum_matches_reduce () =
  let arr = Array.init 64 (fun i -> float_of_int i *. 0.5) in
  let m1 = Machine.create cfg and m2 = Machine.create cfg in
  let a = Mta.Par.atomic_sum m1 arr in
  let r = Mta.Par.reduce m2 ~body ~f:( +. ) ~init:0.0 arr in
  Alcotest.(check (float 1e-9)) "same result" r a;
  Alcotest.(check bool) "atomic strategy pays more sync" true
    (Ledger.get (Machine.ledger m1) Ledger.Sync
    > Ledger.get (Machine.ledger m2) Ledger.Sync)

let test_par_map () =
  let m = Machine.create cfg in
  let out = Mta.Par.parallel_map m ~body ~f:(fun i -> float_of_int (i * i)) 6 in
  Alcotest.(check (array (float 0.0))) "squares"
    [| 0.0; 1.0; 4.0; 9.0; 16.0; 25.0 |] out

let test_work_queue_drains_all () =
  let m = Machine.create cfg in
  let q = Mta.Par.Work_queue.create m ~n:25 in
  let seen = Array.make 25 0 in
  let count = Mta.Par.Work_queue.drain q ~f:(fun t -> seen.(t) <- seen.(t) + 1) in
  Alcotest.(check int) "all tasks" 25 count;
  Array.iter (fun c -> Alcotest.(check int) "each exactly once" 1 c) seen;
  Alcotest.(check bool) "further steals return None" true
    (Mta.Par.Work_queue.steal q = None);
  Alcotest.(check bool) "steals charged as sync ops" true
    (Ledger.get (Machine.ledger m) Ledger.Sync > 0.0)

let test_work_queue_empty () =
  let m = Machine.create cfg in
  let q = Mta.Par.Work_queue.create m ~n:0 in
  Alcotest.(check bool) "empty queue" true
    (Mta.Par.Work_queue.steal q = None)

let tests =
  ( "mta",
    [ Alcotest.test_case "config defaults" `Quick test_config_defaults;
      Alcotest.test_case "loop parallelizable" `Quick
        test_loop_parallelizable;
      Alcotest.test_case "loop counts" `Quick test_loop_counts;
      Alcotest.test_case "serial pays latency" `Quick test_serial_pays_latency;
      Alcotest.test_case "parallel issue bound" `Quick
        test_parallel_saturated_issue_bound;
      Alcotest.test_case "parallel latency bound" `Quick
        test_parallel_undersaturated_latency_bound;
      Alcotest.test_case "parallel beats serial" `Quick
        test_parallel_beats_serial;
      Alcotest.test_case "more processors help" `Quick
        test_more_processors_help;
      Alcotest.test_case "concurrency cap" `Quick test_concurrency_cap;
      Alcotest.test_case "for_loop executes and charges" `Quick
        test_for_loop_executes_and_charges;
      Alcotest.test_case "serial category" `Quick test_for_loop_serial_category;
      Alcotest.test_case "xmt nonuniform penalty" `Quick
        test_xmt_nonuniform_penalty;
      Alcotest.test_case "sync cell protocol" `Quick test_sync_cell_protocol;
      Alcotest.test_case "sync cell violations" `Quick
        test_sync_cell_violations;
      Alcotest.test_case "sync cell fetch_add" `Quick test_sync_cell_fetch_add;
      Alcotest.test_case "sync charges time" `Quick test_sync_charges_time;
      Alcotest.test_case "sync cheaper in parallel region" `Quick
        test_sync_cheaper_inside_parallel_region;
      Alcotest.test_case "par reduce sum" `Quick test_par_reduce_sum;
      Alcotest.test_case "par reduce max" `Quick test_par_reduce_max;
      Alcotest.test_case "par reduce empty" `Quick test_par_reduce_empty;
      Alcotest.test_case "par scan" `Quick test_par_scan;
      Alcotest.test_case "atomic sum vs reduce" `Quick
        test_par_atomic_sum_matches_reduce;
      Alcotest.test_case "par map" `Quick test_par_map;
      Alcotest.test_case "work queue drains" `Quick
        test_work_queue_drains_all;
      Alcotest.test_case "work queue empty" `Quick test_work_queue_empty ] )
