(* The reproduction's headline assertions: at (close to) paper scale, every
   prose claim from the paper holds as a shape check.  This is the test
   that fails loudly if a model change breaks the reproduction.

   The sweeps are trimmed relative to `mdsim experiment all` (fewer
   intermediate sizes) to keep the suite's runtime reasonable; the
   endpoints that the checks actually constrain are kept. *)

module H = Harness

let calibration_scale =
  { H.Context.atoms = 2048;
    steps = 10;
    gpu_sweep = [ 128; 2048 ];
    mta_sweep = [ 256; 1024; 4096 ];
    seed = 42 }

let outcomes =
  lazy
    (let ctx = H.Context.create ~scale:calibration_scale () in
     H.Report.run_all ctx
     @ List.map (H.Report.run_one ctx) H.Registry.extensions)

let outcome id =
  match
    List.find_opt
      (fun (o : H.Experiment.outcome) -> o.H.Experiment.id = id)
      (Lazy.force outcomes)
  with
  | Some o -> o
  | None -> Alcotest.failf "no outcome for %s" id

let assert_all_checks id () =
  let o = outcome id in
  List.iter
    (fun (c : H.Experiment.check) ->
      if not c.H.Experiment.passed then
        Alcotest.failf "%s: %s — %s" id c.H.Experiment.name
          c.H.Experiment.detail)
    o.H.Experiment.checks

let tests =
  ( "calibration (paper scale)",
    [ Alcotest.test_case "table1: Cell vs Opteron vs PPE" `Slow
        (assert_all_checks "table1");
      Alcotest.test_case "fig5: SIMD ladder" `Slow (assert_all_checks "fig5");
      Alcotest.test_case "fig6: launch overhead" `Slow
        (assert_all_checks "fig6");
      Alcotest.test_case "fig7: GPU crossover and speedup" `Slow
        (assert_all_checks "fig7");
      Alcotest.test_case "fig8: multithreading gap" `Slow
        (assert_all_checks "fig8");
      Alcotest.test_case "fig9: scaling shapes" `Slow
        (assert_all_checks "fig9");
      Alcotest.test_case "ext: Cell double precision" `Slow
        (assert_all_checks "ext-precision");
      Alcotest.test_case "ext: XMT projection" `Slow
        (assert_all_checks "ext-xmt");
      Alcotest.test_case "ext: Opteron pairlist ablation" `Slow
        (assert_all_checks "ext-pairlist");
      Alcotest.test_case "ext: GPU reduction ablation" `Slow
        (assert_all_checks "ext-gpu-reduction");
      Alcotest.test_case "ext: next-generation GPU" `Slow
        (assert_all_checks "ext-gpu-next");
      Alcotest.test_case "ext: cutoff sensitivity" `Slow
        (assert_all_checks "ext-cutoff") ] )
