(* Tests for the GPU stream-processor model: memory objects, the
   gather-only dispatch contract, and bus/shader cost accounting. *)

module Config = Gpustream.Config
module Ledger = Gpustream.Ledger
module Machine = Gpustream.Machine
module Vec4f = Vecmath.Vec4f
module Op = Isa.Op
module Block = Isa.Block

let cfg = Config.geforce_7900gtx

let body_block =
  Block.of_instrs
    [ { Block.op = Op.Load; deps = [] }; { Block.op = Op.Fmadd; deps = [] } ]

let prologue_block = Block.of_instrs [ { Block.op = Op.Store; deps = [] } ]

let make_machine () = Machine.create cfg

let test_config_valid () = Config.validate cfg

let test_config_invalid () =
  Alcotest.(check bool) "bad efficiency rejected" true
    (try
       Config.validate { cfg with Config.shader_efficiency = 0.0 };
       false
     with Invalid_argument _ -> true)

let test_vram_accounting () =
  let m = make_machine () in
  let _t = Machine.create_texture m ~name:"t" ~texels:1024 in
  Alcotest.(check int) "float4 texels" (1024 * 16) (Machine.vram_used m);
  Alcotest.(check bool) "oversubscription rejected" true
    (try
       ignore
         (Machine.create_texture m ~name:"huge"
            ~texels:(cfg.Config.vram_bytes / 16));
       false
     with Invalid_argument _ -> true)

let test_texture_size_limit () =
  let m = make_machine () in
  Alcotest.(check bool) "over-limit texture rejected" true
    (try
       ignore
         (Machine.create_texture m ~name:"too-big"
            ~texels:(cfg.Config.max_texels + 1));
       false
     with Invalid_argument _ -> true)

let test_upload_readback_roundtrip () =
  let m = make_machine () in
  let tex = Machine.create_texture m ~name:"pos" ~texels:4 in
  let rt = Machine.create_render_target m ~name:"out" ~texels:4 in
  let data = Array.init 4 (fun i -> Vec4f.splat (float_of_int i)) in
  Machine.upload m tex data;
  let shader =
    Machine.compile m ~name:"copy" ~body:body_block ~prologue:prologue_block
  in
  Machine.dispatch m shader ~inputs:[ tex ] ~target:rt
    ~f:(fun s i -> Machine.sample s ~input:0 i)
    ();
  let back = Machine.readback m rt in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) "texel copied" true (Vec4f.equal data.(i) v))
    back

let test_upload_size_mismatch () =
  let m = make_machine () in
  let tex = Machine.create_texture m ~name:"pos" ~texels:4 in
  Alcotest.(check bool) "size mismatch rejected" true
    (try
       Machine.upload m tex [| Vec4f.zero |];
       false
     with Invalid_argument _ -> true)

let test_sampler_bounds () =
  let m = make_machine () in
  let tex = Machine.create_texture m ~name:"pos" ~texels:4 in
  let rt = Machine.create_render_target m ~name:"out" ~texels:1 in
  let shader =
    Machine.compile m ~name:"bad" ~body:body_block ~prologue:prologue_block
  in
  Alcotest.(check bool) "bad input slot raises" true
    (try
       Machine.dispatch m shader ~inputs:[ tex ] ~target:rt
         ~f:(fun s _ -> Machine.sample s ~input:1 0)
         ();
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad texel index raises" true
    (try
       Machine.dispatch m shader ~inputs:[ tex ] ~target:rt
         ~f:(fun s _ -> Machine.sample s ~input:0 99)
         ();
       false
     with Invalid_argument _ -> true)

let test_max_inputs_enforced () =
  let m = make_machine () in
  let texs =
    List.init (cfg.Config.max_inputs + 1) (fun i ->
        Machine.create_texture m ~name:(Printf.sprintf "t%d" i) ~texels:1)
  in
  let rt = Machine.create_render_target m ~name:"out" ~texels:1 in
  let shader =
    Machine.compile m ~name:"many" ~body:body_block ~prologue:prologue_block
  in
  Alcotest.(check bool) "too many inputs rejected" true
    (try
       Machine.dispatch m shader ~inputs:texs ~target:rt
         ~f:(fun _ _ -> Vec4f.zero)
         ();
       false
     with Invalid_argument _ -> true)

let test_ledger_invariant () =
  let m = make_machine () in
  let tex = Machine.create_texture m ~name:"pos" ~texels:16 in
  let rt = Machine.create_render_target m ~name:"out" ~texels:16 in
  Machine.upload m tex (Array.make 16 Vec4f.zero);
  let shader =
    Machine.compile m ~name:"s" ~body:body_block ~prologue:prologue_block
  in
  Machine.dispatch m shader ~inputs:[ tex ] ~target:rt ~loop_trip:16
    ~f:(fun _ _ -> Vec4f.zero)
    ();
  ignore (Machine.readback m rt);
  Machine.cpu_charge m ~seconds:0.001;
  Alcotest.(check (float 1e-12)) "ledger total = machine time"
    (Machine.time m)
    (Ledger.total (Machine.ledger m))

let test_transfer_asymmetry () =
  let m = make_machine () in
  let tex = Machine.create_texture m ~name:"pos" ~texels:65536 in
  let rt = Machine.create_render_target m ~name:"out" ~texels:65536 in
  Machine.upload m tex (Array.make 65536 Vec4f.zero);
  ignore (Machine.readback m rt);
  let l = Machine.ledger m in
  Alcotest.(check bool) "readback slower than upload" true
    (Ledger.get l Ledger.Readback > Ledger.get l Ledger.Upload)

let test_loop_trip_scales_shader_time () =
  let time_with trip =
    let m = make_machine () in
    let tex = Machine.create_texture m ~name:"pos" ~texels:64 in
    let rt = Machine.create_render_target m ~name:"out" ~texels:64 in
    let shader =
      Machine.compile m ~name:"s" ~body:body_block ~prologue:prologue_block
    in
    Machine.dispatch m shader ~inputs:[ tex ] ~target:rt ~loop_trip:trip
      ~f:(fun _ _ -> Vec4f.zero)
      ();
    Ledger.get (Machine.ledger m) Ledger.Shader
  in
  let t1 = time_with 10 and t2 = time_with 20 in
  Alcotest.(check bool) "longer loops cost more" true (t2 > t1);
  Alcotest.(check bool) "roughly linear" true
    (t2 /. t1 > 1.7 && t2 /. t1 < 2.1)

let test_jit_charged_once_per_compile () =
  let m = make_machine () in
  let before = Ledger.get (Machine.ledger m) Ledger.Setup in
  let _ =
    Machine.compile m ~name:"s" ~body:body_block ~prologue:prologue_block
  in
  let after = Ledger.get (Machine.ledger m) Ledger.Setup in
  Alcotest.(check (float 1e-12)) "jit cost" cfg.Config.jit_seconds
    (after -. before)

let test_reset_frees_vram () =
  let m = make_machine () in
  let _ = Machine.create_texture m ~name:"t" ~texels:256 in
  Machine.reset m;
  Alcotest.(check int) "vram freed" 0 (Machine.vram_used m);
  Alcotest.(check (float 1e-12)) "clock cleared" 0.0 (Machine.time m)

let tests =
  ( "gpu",
    [ Alcotest.test_case "config valid" `Quick test_config_valid;
      Alcotest.test_case "config invalid" `Quick test_config_invalid;
      Alcotest.test_case "vram accounting" `Quick test_vram_accounting;
      Alcotest.test_case "texture size limit" `Quick test_texture_size_limit;
      Alcotest.test_case "upload/readback roundtrip" `Quick
        test_upload_readback_roundtrip;
      Alcotest.test_case "upload size mismatch" `Quick
        test_upload_size_mismatch;
      Alcotest.test_case "sampler bounds" `Quick test_sampler_bounds;
      Alcotest.test_case "max inputs enforced" `Quick test_max_inputs_enforced;
      Alcotest.test_case "ledger invariant" `Quick test_ledger_invariant;
      Alcotest.test_case "transfer asymmetry" `Quick test_transfer_asymmetry;
      Alcotest.test_case "loop trip scales shader time" `Quick
        test_loop_trip_scales_shader_time;
      Alcotest.test_case "jit charged per compile" `Quick
        test_jit_charged_once_per_compile;
      Alcotest.test_case "reset frees vram" `Quick test_reset_frees_vram ] )
