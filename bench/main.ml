(* Benchmark harness.

   Two parts, both emitted on a plain `dune exec bench/main.exe`:

   1. the full reproduction of every table and figure in the paper's
      evaluation section (virtual device time, paper scale), exactly the
      rows/series the paper reports, plus the shape checks;
   2. a bechamel microbenchmark suite: one Test.make per paper artifact
      measuring the wall-clock cost of the simulator machinery that
      regenerates it, plus ablation benches for the design choices called
      out in DESIGN.md (pairlist / cell list vs the paper's on-the-fly
      kernel, f32 vs double arithmetic, branchy vs branchless search).

   Every run also writes a machine-readable artifact-name -> wall-clock-ns
   map (BENCH_results.json by default, schema mdsim-bench-v2 with run
   metadata) so perf trajectories can be tracked across commits.

   With `--check BASELINE.json` the run additionally gates against a
   committed baseline (Sim_util.Bench_check): each measured entry must
   stay within its relative tolerance of the baseline figure, and the
   process exits non-zero with a per-entry diff when any entry regresses.

   Environment knobs:
     MDSIM_BENCH_QUICK=1        use the small scale for part 1
     MDSIM_BENCH_SKIP_REPRO=1   only run the microbenchmarks
     MDSIM_BENCH_JSON=PATH      where to write the JSON results
     MDSIM_DOMAINS=N            Mdpar pool size (harness + kernels) *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: reproduction                                                *)
(* ------------------------------------------------------------------ *)

let run_reproduction () =
  let quick = Sys.getenv_opt "MDSIM_BENCH_QUICK" = Some "1" in
  let scale =
    if quick then Harness.Context.quick_scale else Harness.Context.paper_scale
  in
  let ctx = Harness.Context.create ~scale () in
  let t0 = Unix.gettimeofday () in
  let outcomes = Harness.Report.run_all ctx in
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  print_endline "==================================================";
  print_endline " Reproduction: every table & figure of the paper";
  print_endline "==================================================";
  print_newline ();
  print_endline (Harness.Report.render_all outcomes);
  print_endline (Harness.Report.summary_line outcomes);
  Printf.printf "reproduction wall-clock: %.3f s on %d domain(s)\n"
    (wall_ns /. 1e9)
    (Mdpar.size (Mdpar.get ()));
  wall_ns

(* ------------------------------------------------------------------ *)
(* Part 2: microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

(* Shared small workload (wall-clock friendly). *)
let bench_atoms = 128
let bench_system = lazy (Mdcore.Init.build ~n:bench_atoms ())
let bench_profile =
  lazy (Mdports.Cell_port.profile_run ~steps:2 (Lazy.force bench_system))

(* One Test.make per paper artifact: the simulator machinery whose output
   regenerates that artifact. *)
let test_table1 =
  Test.make ~name:"table1/cell-8spe-timing"
    (Staged.stage (fun () ->
         Mdports.Cell_port.time_with (Lazy.force bench_profile)
           Mdports.Cell_port.default_config))

let test_fig5 =
  Test.make ~name:"fig5/spe-ladder-scheduling"
    (Staged.stage (fun () ->
         List.map
           (fun v ->
             Isa.Spe_pipe.per_iteration_cycles (Mdports.Kernels.spe_base v)
               ~overlap:Mdports.Kernels.spe_overlap)
           Mdports.Cell_variant.all))

let test_fig6 =
  Test.make ~name:"fig6/launch-accounting"
    (Staged.stage (fun () ->
         let profile = Lazy.force bench_profile in
         ( Mdports.Cell_port.time_with profile
             { Mdports.Cell_port.default_config with
               launch = Mdports.Cell_port.Respawn },
           Mdports.Cell_port.time_with profile
             Mdports.Cell_port.default_config )))

let test_fig7 =
  Test.make ~name:"fig7/gpu-step"
    (Staged.stage (fun () ->
         Mdports.Gpu_port.run ~steps:1 (Lazy.force bench_system)))

let test_fig8 =
  Test.make ~name:"fig8/mta-step"
    (Staged.stage (fun () ->
         Mdports.Mta_port.run ~steps:1 (Lazy.force bench_system)))

let test_fig9 =
  Test.make ~name:"fig9/opteron-cache-step"
    (Staged.stage (fun () ->
         Mdports.Opteron_port.run ~steps:1 (Lazy.force bench_system)))

(* Ablations. *)
let test_ablation_engines =
  let gather_sys = lazy (Mdcore.System.copy (Lazy.force bench_system)) in
  let big_sys = lazy (Mdcore.Init.build ~n:512 ()) in
  let pl = lazy (Mdcore.Pairlist.create (Lazy.force big_sys)) in
  Test.make_grouped ~name:"ablation-engines"
    [ Test.make ~name:"gather-N2"
        (Staged.stage (fun () ->
             Mdcore.Forces.compute_gather (Lazy.force gather_sys)));
      Test.make ~name:"newton3-halved"
        (Staged.stage (fun () ->
             Mdcore.Forces.compute_newton3 (Lazy.force gather_sys)));
      Test.make ~name:"cell-list"
        (Staged.stage (fun () -> Mdcore.Cell_list.compute (Lazy.force big_sys)));
      Test.make ~name:"pairlist"
        (Staged.stage (fun () ->
             (Mdcore.Pairlist.engine (Lazy.force pl)).Mdcore.Engine.compute
               (Lazy.force big_sys))) ]

let test_ablation_precision =
  Test.make_grouped ~name:"ablation-precision"
    [ Test.make ~name:"double-gather"
        (Staged.stage (fun () ->
             Mdcore.Forces.compute_gather (Lazy.force bench_system)));
      Test.make ~name:"f32-gather"
        (Staged.stage (fun () ->
             let s = Lazy.force bench_system in
             (Mdports.Cell_port.apply_f32_engine s).Mdcore.Engine.compute s))
    ]

let test_ablation_search =
  Test.make_grouped ~name:"ablation-min-image"
    [ Test.make ~name:"closed-form"
        (Staged.stage (fun () ->
             let acc = ref 0.0 in
             for i = 0 to 999 do
               acc :=
                 !acc +. Mdcore.Min_image.delta ~box:10.0 (float_of_int i)
             done;
             !acc));
      Test.make ~name:"search"
        (Staged.stage (fun () ->
             let acc = ref 0.0 in
             for i = 0 to 999 do
               acc :=
                 !acc
                 +. Mdcore.Min_image.delta_search ~box:10.0 (float_of_int i)
             done;
             !acc));
      Test.make ~name:"branchless-copysign"
        (Staged.stage (fun () ->
             let acc = ref 0.0 in
             for i = 0 to 999 do
               acc :=
                 !acc
                 +. Mdcore.Min_image.delta_search_branchless ~box:10.0
                      (float_of_int i)
             done;
             !acc)) ]

(* Host-parallelism ablations (DESIGN.md: Mdpar).  Pool vs spawn-per-call
   quantifies what reusing domains saves; the pairlist builds contrast the
   cell-binned O(N) construction with the quadratic rescan at two sizes,
   so the scaling exponent is visible from the ratio. *)
(* Shared by the pool and obs ablations (and warmed before the timed
   loop, so no group's first sample pays the one-time construction). *)
let par_sys = lazy (Mdcore.Init.build ~n:512 ())

let test_ablation_pool =
  Test.make_grouped ~name:"ablation-pool"
    [ Test.make ~name:"gather-serial"
        (Staged.stage (fun () ->
             Mdcore.Forces.compute_gather (Lazy.force par_sys)));
      Test.make ~name:"gather-pool-4dom"
        (Staged.stage (fun () ->
             Mdcore.Forces.compute_gather_domains ~domains:4
               (Lazy.force par_sys)));
      Test.make ~name:"gather-spawn-per-call-4dom"
        (Staged.stage (fun () ->
             Mdcore.Forces.compute_gather_spawn ~domains:4
               (Lazy.force par_sys))) ]

let test_ablation_pairlist_build =
  let make_build n brute =
    let pl =
      lazy
        (let s = Mdcore.Init.build ~n () in
         Mdcore.Pairlist.create s)
    in
    Test.make
      ~name:(Printf.sprintf "build-%s-%datoms" (if brute then "n2" else "cells") n)
      (Staged.stage (fun () ->
           let pl = Lazy.force pl in
           if brute then Mdcore.Pairlist.force_rebuild_brute pl
           else Mdcore.Pairlist.force_rebuild pl))
  in
  Test.make_grouped ~name:"ablation-pairlist-build"
    [ make_build 256 false; make_build 256 true;
      make_build 1024 false; make_build 1024 true ]

(* Skin sweep (DESIGN.md §13): the production pairlist force path at
   three skins.  A thicker skin scans more candidates per rebuild but
   rebuilds less often; the committed baseline records where the
   trade-off lands for this workload. *)
let test_ablation_skin =
  (* Built eagerly: Init.build takes a visible fraction of the bechamel
     quota, and a lazy force inside the first sample poisons the slope
     estimate for these sub-second entries. *)
  let sys = Mdcore.Init.build ~n:512 () in
  let make_skin skin =
    Test.make
      ~name:(Printf.sprintf "opteron-skin-%.1f" skin)
      (Staged.stage (fun () ->
           Mdports.Opteron_port.run_pairlist ~steps:2 ~skin sys))
  in
  Test.make_grouped ~name:"ablation-skin"
    [ make_skin 0.2; make_skin 0.4; make_skin 0.8 ]

(* The tentpole acceptance bench: every device port at the largest bench
   size, production pairlist path vs the brute O(N²) path it replaced.
   The committed baseline entries record the pairlist beating per-step
   N² on each port. *)
let test_pairlist_vs_brute =
  let big_n = 1024 in
  (* Eager for the same reason as the skin sweep above. *)
  let big = Mdcore.Init.build ~n:big_n () in
  let port name f =
    [ Test.make ~name:(name ^ "-pairlist")
        (Staged.stage (fun () -> f Mdports.Force_path.default));
      Test.make ~name:(name ^ "-brute")
        (Staged.stage (fun () -> f Mdports.Force_path.brute)) ]
  in
  Test.make_grouped ~name:"pairlist-vs-brute"
    (List.concat
       [ port "opteron" (fun force_path ->
             Mdports.Opteron_port.run ~steps:2 ~force_path big);
         port "cell" (fun force_path ->
             Mdports.Cell_port.run ~steps:2 ~force_path big);
         port "gpu" (fun force_path ->
             Mdports.Gpu_port.run ~steps:2 ~force_path big);
         port "mta" (fun force_path ->
             Mdports.Mta_port.run ~steps:2 ~force_path big) ])

(* Tracing-overhead ablation (Mdobs): the same pooled gather with the
   recorder off (the default — each probe site costs one atomic load)
   and with a memory sink attached.  The acceptance bar is <2% overhead
   for the disabled case vs the identical pre-instrumentation kernel,
   which "gather-pool-4dom" above measures. *)
let test_ablation_obs =
  Test.make_grouped ~name:"ablation-obs"
    [ Test.make ~name:"gather-obs-disabled"
        (Staged.stage (fun () ->
             Mdcore.Forces.compute_gather_domains ~domains:4
               (Lazy.force par_sys)));
      Test.make ~name:"gather-obs-enabled"
        (Staged.stage (fun () ->
             Mdobs.enable (Mdobs.Sink.memory ());
             Fun.protect ~finally:Mdobs.clear (fun () ->
                 Mdcore.Forces.compute_gather_domains ~domains:4
                   (Lazy.force par_sys)))) ]

(* Fault-injection overhead ablation (Mdfault): the same Cell timing
   replay with no plan installed (the default — each site costs one
   inert-stream check) and with an all-zero-rate plan installed.  The
   acceptance bar is zero-rate within noise of no-plan: the fast path
   must not tax the fault-free simulators. *)
let zero_rate_spec =
  lazy
    (match Mdfault.parse_spec "all:0.0" with
    | Ok spec -> spec
    | Error msg -> failwith msg)

let test_ablation_fault =
  Test.make_grouped ~name:"ablation-fault"
    [ Test.make ~name:"cell-timing-no-plan"
        (Staged.stage (fun () ->
             Mdports.Cell_port.time_with (Lazy.force bench_profile)
               Mdports.Cell_port.default_config));
      Test.make ~name:"cell-timing-zero-rate"
        (Staged.stage (fun () ->
             Mdfault.install (Lazy.force zero_rate_spec);
             Fun.protect ~finally:Mdfault.uninstall (fun () ->
                 Mdports.Cell_port.time_with (Lazy.force bench_profile)
                   Mdports.Cell_port.default_config))) ]

(* Checkpoint-layer overhead ablation (Mdckpt): the same Opteron run
   driven directly, through the segmented runner with checkpointing
   disabled (--checkpoint-every 0, which must stay within noise of the
   direct path — it is the seed path plus one try/with), and with durable
   every-step checkpointing (tmp+fsync+rename per segment), which prices
   the crash-consistency guarantee itself. *)
let ckpt_cfg ~every ~dir =
  { Mdckpt.Runner.cfg_device = Mdckpt.Runner.Opteron;
    cfg_atoms = bench_atoms;
    cfg_steps = 2;
    cfg_seed = 42;
    cfg_density = 0.8;
    cfg_temperature = 1.0;
    cfg_force_path = Mdports.Force_path.default;
    cfg_every = every;
    cfg_keep = 2;
    cfg_dir = dir }

let ckpt_bench_dir =
  lazy
    (let dir =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "mdsim-bench-ckpt-%d" (Unix.getpid ()))
     in
     (if not (Sys.file_exists dir) then
        try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
     dir)

let test_ablation_ckpt =
  Test.make_grouped ~name:"ablation-ckpt"
    [ Test.make ~name:"opteron-run-direct"
        (Staged.stage (fun () ->
             let s = Mdcore.Init.build ~n:bench_atoms () in
             Mdports.Opteron_port.run ~steps:2 s));
      Test.make ~name:"opteron-runner-every0"
        (Staged.stage (fun () ->
             Mdckpt.Runner.run (ckpt_cfg ~every:0 ~dir:"unused")));
      Test.make ~name:"opteron-runner-ckpt-every1"
        (Staged.stage (fun () ->
             Mdckpt.Runner.run
               (ckpt_cfg ~every:1 ~dir:(Lazy.force ckpt_bench_dir)))) ]

(* Telemetry-overhead ablation (Mdtel): the same direct Opteron run with
   no telemetry installed (the default — the per-step cost in Verlet is
   one atomic load) and with a JSONL stream sampling every step, which
   prices a full interval read + physics observables + a formatted,
   flushed line per step.  The acceptance bar is telemetry-off within
   noise of the seed path. *)
let tel_bench_path =
  lazy
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "mdsim-bench-tel-%d.jsonl" (Unix.getpid ())))

let test_ablation_tel =
  Test.make_grouped ~name:"ablation-tel"
    [ Test.make ~name:"opteron-tel-disabled"
        (Staged.stage (fun () ->
             let s = Mdcore.Init.build ~n:bench_atoms () in
             Mdports.Opteron_port.run ~steps:2 s));
      Test.make ~name:"opteron-tel-every1"
        (Staged.stage (fun () ->
             Mdtel.install
               { Mdtel.tel_path = Some (Lazy.force tel_bench_path);
                 tel_every = 1;
                 tel_total_steps = 2;
                 tel_progress = false;
                 tel_deadline = None;
                 tel_stall_s = Mdtel.default_stall_s;
                 tel_resume = false };
             Fun.protect ~finally:Mdtel.uninstall (fun () ->
                 let s = Mdcore.Init.build ~n:bench_atoms () in
                 Mdports.Opteron_port.run ~steps:2 s))) ]

(* Storage-shim ablation (Mdio): the two durable-write shapes every
   writer reduces to — atomic replace (tmp + fsync + rename) and
   append + fsync — with no fault plan vs a plan whose io rates are all
   zero.  The acceptance bar is the zero-rate path within noise of the
   direct path: with every rate at zero the shim takes the no-draw
   fast path and issues exactly the same syscalls. *)
let io_bench_dir =
  lazy
    (let dir =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "mdsim-bench-io-%d" (Unix.getpid ()))
     in
     (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     dir)

let io_zero_spec =
  lazy
    (match
       Mdfault.parse_spec
         "io-short-write:0,io-eio:0,io-enospc:0,io-fsync-fail:0,io-rename-fail:0"
     with
    | Ok s -> s
    | Error msg -> failwith msg)

let io_payload = String.make 4096 'x'

let test_ablation_io =
  let atomic_path =
    lazy (Filename.concat (Lazy.force io_bench_dir) "atomic.bin")
  in
  let append_handle suffix =
    lazy
      (Mdio.openw ~append:true
         (Filename.concat (Lazy.force io_bench_dir) ("append-" ^ suffix)))
  in
  let direct_h = append_handle "direct" and zero_h = append_handle "zero" in
  let under_zero_plan f =
    Mdfault.install (Lazy.force io_zero_spec);
    Fun.protect ~finally:Mdfault.uninstall f
  in
  Test.make_grouped ~name:"ablation-io"
    [ Test.make ~name:"write-atomic-direct"
        (Staged.stage (fun () ->
             Mdio.write_atomic ~path:(Lazy.force atomic_path) io_payload));
      Test.make ~name:"write-atomic-zero-rate"
        (Staged.stage (fun () ->
             under_zero_plan (fun () ->
                 Mdio.write_atomic ~path:(Lazy.force atomic_path) io_payload)));
      Test.make ~name:"append-fsync-direct"
        (Staged.stage (fun () ->
             let h = Lazy.force direct_h in
             Mdio.write h io_payload;
             Mdio.fsync h));
      Test.make ~name:"append-fsync-zero-rate"
        (Staged.stage (fun () ->
             under_zero_plan (fun () ->
                 let h = Lazy.force zero_h in
                 Mdio.write h io_payload;
                 Mdio.fsync h))) ]

let test_substrates =
  let rng = Sim_util.Rng.create 7 in
  let seq_a = Seqalign.Dna.random rng ~length:64 in
  let seq_b = Seqalign.Dna.random rng ~length:64 in
  Test.make_grouped ~name:"substrates"
    [ Test.make ~name:"smith-waterman-scalar"
        (Staged.stage (fun () -> Seqalign.Reference.align seq_a seq_b));
      Test.make ~name:"smith-waterman-mta-wavefront"
        (Staged.stage (fun () ->
             Seqalign.Mta_sw.align
               ~machine:(Mta.Machine.create (Mta.Config.mta2 ()))
               seq_a seq_b));
      Test.make ~name:"streamdsl-map-reduce"
        (Staged.stage (fun () ->
             let ctx = Streamdsl.Ctx.create () in
             let s =
               Streamdsl.Stream.of_floats ctx (Array.make 256 1.0)
             in
             Streamdsl.Stream.reduce_sum s)) ]

let all_tests =
  Test.make_grouped ~name:"repro"
    [ test_table1; test_fig5; test_fig6; test_fig7; test_fig8; test_fig9;
      test_ablation_engines; test_ablation_precision; test_ablation_search;
      test_ablation_pool; test_ablation_pairlist_build; test_ablation_skin;
      test_pairlist_vs_brute; test_ablation_obs;
      test_ablation_fault; test_ablation_ckpt; test_ablation_tel;
      test_ablation_io; test_substrates ]

(* Bechamel sampling config, surfaced in the results metadata so a
   baseline records how many samples produced it. *)
let bench_limit = 200
let bench_quota_s = 0.5

let run_microbenchmarks () =
  print_newline ();
  print_endline "==================================================";
  print_endline " Microbenchmarks (bechamel, wall-clock of models)";
  print_endline "==================================================";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:bench_limit ~quota:(Time.second bench_quota_s)
      ~kde:None ()
  in
  (* Warm the shared fixture: system construction and the pool's domain
     spawns are one-time costs that would otherwise land in whichever
     benchmark happens to run first and blow its 0.5 s quota. *)
  ignore (Mdcore.Forces.compute_gather_domains ~domains:4 (Lazy.force par_sys));
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let table =
    Sim_util.Table.create ~headers:[ "benchmark"; "time/run"; "r^2" ]
  in
  let measured = ref [] in
  List.iter
    (fun (name, ols_result) ->
      let estimate_ns =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Some e
        | _ -> None
      in
      let estimate =
        match estimate_ns with
        | Some e -> Sim_util.Table.fmt_seconds (e *. 1e-9)
        | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "n/a"
      in
      (match estimate_ns with
      | Some e -> measured := (name, e) :: !measured
      | None -> ());
      Sim_util.Table.add_row table [ name; estimate; r2 ])
    rows;
  print_endline (Sim_util.Table.render table);
  List.rev !measured

(* ------------------------------------------------------------------ *)
(* Machine-readable results                                            *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Run metadata for the v2 schema: enough to tell, reading a committed
   BENCH_results.json, exactly what produced it. *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let entries ~repro_ns rows =
  let quick = Sys.getenv_opt "MDSIM_BENCH_QUICK" = Some "1" in
  (match repro_ns with
  | Some ns ->
    [ ( (if quick then "reproduction/wall-clock-quick"
         else "reproduction/wall-clock-paper"),
        ns ) ]
  | None -> [])
  @ rows

let write_results_json entries =
  let path =
    Option.value
      (Sys.getenv_opt "MDSIM_BENCH_JSON")
      ~default:"BENCH_results.json"
  in
  let quick = Sys.getenv_opt "MDSIM_BENCH_QUICK" = Some "1" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      Printf.fprintf oc "  \"schema\": \"mdsim-bench-v2\",\n";
      Printf.fprintf oc "  \"metadata\": {\n";
      Printf.fprintf oc "    \"git_commit\": \"%s\",\n"
        (json_escape (git_commit ()));
      Printf.fprintf oc "    \"timestamp\": \"%s\",\n" (iso8601_utc ());
      Printf.fprintf oc "    \"domains\": %d,\n" (Mdpar.size (Mdpar.get ()));
      Printf.fprintf oc "    \"quick\": %b,\n" quick;
      Printf.fprintf oc
        "    \"bechamel\": { \"limit\": %d, \"quota_s\": %g }\n" bench_limit
        bench_quota_s;
      Printf.fprintf oc "  },\n";
      Printf.fprintf oc "  \"results_ns\": {\n";
      let n = List.length entries in
      List.iteri
        (fun i (name, ns) ->
          Printf.fprintf oc "    \"%s\": %.1f%s\n" (json_escape name) ns
            (if i = n - 1 then "" else ","))
        entries;
      output_string oc "  }\n";
      output_string oc "}\n");
  Printf.printf "wrote %s (%d entries)\n" path (List.length entries)

(* Perf-regression gate: `--check BASELINE.json`. *)
let check_path () =
  let rec scan = function
    | "--check" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let run_check path entries =
  print_newline ();
  print_endline "==================================================";
  Printf.printf " Perf-regression check vs %s\n" path;
  print_endline "==================================================";
  match Sim_util.Bench_check.load_baseline path with
  | Error msg ->
    Printf.eprintf "bench --check: %s\n" msg;
    exit 2
  | Ok baseline ->
    let outcome = Sim_util.Bench_check.compare baseline entries in
    print_string (Sim_util.Bench_check.render outcome);
    if outcome.Sim_util.Bench_check.failed then exit 1

let () =
  let check = check_path () in
  let repro_ns =
    if Sys.getenv_opt "MDSIM_BENCH_SKIP_REPRO" <> Some "1" then
      Some (run_reproduction ())
    else None
  in
  let rows = run_microbenchmarks () in
  let entries = entries ~repro_ns rows in
  write_results_json entries;
  Option.iter (fun path -> run_check path entries) check
