(* Test entry point: one alcotest binary running every suite. *)

let () =
  Alcotest.run "repro"
    [ Test_util.tests;
      Test_vec.tests;
      Test_isa.tests;
      Test_memsim.tests;
      Test_cellbe.tests;
      Test_gpu.tests;
      Test_mta.tests;
      Test_mdcore.tests;
      Test_parallel.tests;
      Test_obs.tests;
      Test_prof.tests;
      Test_bonded.tests;
      Test_ports.tests;
      Test_stream.tests;
      Test_seqalign.tests;
      Test_calibration.tests;
      Test_fault.tests;
      Test_harness.tests;
      Test_ckpt.tests;
      Test_tel.tests;
      Test_io.tests;
      Test_serve.tests ]
