(* Tests for the Mdpar domain pool and the parallel/serial equivalence of
   every path that uses it: pooled force gathers, cell-binned pairlist
   builds, the stateful cell-list engine, and the parallel experiment
   harness.  The contract under test: host parallelism must never change
   a result — forces bit-for-bit at any pool size, reductions
   deterministic per pool size and within summation-order noise of
   serial, reports byte-identical. *)

module System = Mdcore.System
module Forces = Mdcore.Forces
module Pairlist = Mdcore.Pairlist
module Cell_list = Mdcore.Cell_list
module Init = Mdcore.Init
module Verlet = Mdcore.Verlet

let pool_sizes = [ 1; 2; 4 ]
let pool n = Mdpar.get ~domains:n ()

(* ---------------- Mdpar primitives ---------------- *)

let test_parallel_for_covers_range () =
  List.iter
    (fun d ->
      let hit = Array.make 1000 0 in
      Mdpar.parallel_for (pool d) ~lo:0 ~hi:999 (fun i ->
          hit.(i) <- hit.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "each index once (%d domains)" d)
        true
        (Array.for_all (fun c -> c = 1) hit))
    pool_sizes;
  (* empty and singleton ranges *)
  Mdpar.parallel_for (pool 4) ~lo:5 ~hi:4 (fun _ -> Alcotest.fail "empty");
  let one = ref 0 in
  Mdpar.parallel_for (pool 4) ~lo:3 ~hi:3 (fun i -> one := i);
  Alcotest.(check int) "singleton" 3 !one

let test_parallel_for_reduce_exact () =
  let expected = 1000 * 1001 / 2 in
  List.iter
    (fun d ->
      let total =
        Mdpar.parallel_for_reduce (pool d) ~lo:1 ~hi:1000 ~init:0
          ~combine:( + ) ~body:Fun.id
      in
      Alcotest.(check int)
        (Printf.sprintf "sum 1..1000 (%d domains)" d)
        expected total)
    pool_sizes

let test_parallel_for_reduce_deterministic () =
  (* Float partials must land in chunk slots: repeated runs agree
     bit-for-bit for a fixed pool size, and one chunk is exactly the
     serial fold. *)
  let body i = 1.0 /. float_of_int (i + 1) in
  let run d =
    Mdpar.parallel_for_reduce (pool d) ~lo:0 ~hi:9999 ~init:0.0
      ~combine:( +. ) ~body
  in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "repeatable (%d domains)" d)
        true
        (run d = run d))
    pool_sizes;
  let serial = ref 0.0 in
  for i = 0 to 9999 do
    serial := !serial +. body i
  done;
  Alcotest.(check (float 0.0)) "1 domain = serial fold" !serial (run 1)

let test_map_list_order () =
  List.iter
    (fun d ->
      let xs = List.init 57 Fun.id in
      Alcotest.(check (list int))
        (Printf.sprintf "order preserved (%d domains)" d)
        (List.map (fun x -> (x * 7) + 1) xs)
        (Mdpar.map_list (pool d) (fun x -> (x * 7) + 1) xs))
    pool_sizes;
  Alcotest.(check (list int)) "empty" []
    (Mdpar.map_list (pool 4) Fun.id [])

let test_nested_regions () =
  (* An inner region entered from a worker must degrade gracefully, not
     deadlock: 8 outer items each running an inner reduce. *)
  let p = pool 4 in
  let outer =
    Mdpar.map_list p
      (fun k ->
        Mdpar.parallel_for_reduce p ~lo:0 ~hi:99 ~init:0 ~combine:( + )
          ~body:(fun i -> (k * 100) + i))
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list int)) "nested totals"
    (List.init 8 (fun k -> (k * 100 * 100) + (99 * 100 / 2)))
    outer

let test_exception_propagation () =
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "exn reraised (%d domains)" d)
        true
        (try
           Mdpar.parallel_for (pool d) ~lo:0 ~hi:99 (fun i ->
               if i = 37 then failwith "boom");
           false
         with Failure m -> m = "boom");
      (* the pool must stay usable afterwards *)
      let total =
        Mdpar.parallel_for_reduce (pool d) ~lo:1 ~hi:10 ~init:0
          ~combine:( + ) ~body:Fun.id
      in
      Alcotest.(check int) "pool alive after exn" 55 total)
    pool_sizes

(* ---------------- Forces on the pool ---------------- *)

let test_gather_pool_equivalence () =
  let reference = Init.build ~seed:11 ~n:216 () in
  let pe_serial = Forces.compute_gather (System.copy reference) in
  List.iter
    (fun d ->
      let s = System.copy reference in
      let s_ref = System.copy reference in
      ignore (Forces.compute_gather s_ref);
      let pe = Forces.compute_gather_pool ~pool:(pool d) s in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "forces bit-identical (%d domains)" d)
        0.0
        (System.max_acceleration_delta s s_ref);
      (* The pool folds per-row subtotals (row grouping), the serial
         gather folds candidate-by-candidate: equal only up to summation
         order, at every pool size including 1. *)
      Alcotest.(check bool)
        (Printf.sprintf "PE within 1e-12 rel (%d domains)" d)
        true
        (abs_float (pe -. pe_serial) <= 1e-12 *. abs_float pe_serial))
    pool_sizes

let test_gather_pool_matches_spawn () =
  (* The pool re-implements the spawn-per-call chunking exactly: same
     chunk boundaries, same combine order, so bit-equal PE. *)
  let reference = Init.build ~seed:13 ~n:128 () in
  List.iter
    (fun d ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "pool = spawn (%d domains)" d)
        (Forces.compute_gather_spawn ~domains:d (System.copy reference))
        (Forces.compute_gather_domains ~domains:d (System.copy reference)))
    pool_sizes

(* ---------------- Pairlist: cell-binned O(N) builds ---------------- *)

(* 768 atoms at density 0.8: box ~ 9.86 sigma >= 3 * (cutoff + skin), so
   the cell-binned path is active. *)
let pairlist_system () = Init.build ~seed:5 ~n:768 ()

let test_pairlist_cells_active () =
  let s = pairlist_system () in
  Alcotest.(check bool) "cell path active" true
    (Pairlist.uses_cells (Pairlist.create s));
  (* 216 atoms: box ~ 6.46 sigma admits the list (>= 2 * reach) but not
     a 3-cell stencil, so builds fall back to the O(N^2) scan. *)
  let tiny = Init.build ~seed:5 ~n:216 () in
  Alcotest.(check bool) "small box falls back to O(N^2)" false
    (Pairlist.uses_cells (Pairlist.create tiny))

let test_pairlist_build_equivalence () =
  (* Same stored lists from the cell-binned and brute builds, at every
     pool size: identical neighbour totals, interactions, forces and PE
     bit-for-bit. *)
  let reference = pairlist_system () in
  let brute_s = System.copy reference in
  let brute = Pairlist.create ~pool:(pool 1) brute_s in
  Pairlist.force_rebuild_brute brute;
  let pe_brute = (Pairlist.engine brute).Mdcore.Engine.compute brute_s in
  List.iter
    (fun d ->
      let s = System.copy reference in
      let pl = Pairlist.create ~pool:(pool d) s in
      Pairlist.force_rebuild pl;
      Alcotest.(check int)
        (Printf.sprintf "entries match (%d domains)" d)
        (Pairlist.neighbour_count brute)
        (Pairlist.neighbour_count pl);
      let pe = (Pairlist.engine pl).Mdcore.Engine.compute s in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "PE bit-identical (%d domains)" d)
        pe_brute pe;
      Alcotest.(check int)
        (Printf.sprintf "interactions match (%d domains)" d)
        (Pairlist.last_interaction_count brute)
        (Pairlist.last_interaction_count pl);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "forces bit-identical (%d domains)" d)
        0.0
        (System.max_acceleration_delta s brute_s))
    pool_sizes

let test_pairlist_rebuild_cadence_invariant () =
  (* The rebuild trigger depends only on drift vs the stored reference
     positions; identical lists must give identical cadence and
     trajectories at every pool size. *)
  let reference = pairlist_system () in
  let run d =
    let s = System.copy reference in
    let pl = Pairlist.create ~pool:(pool d) s in
    ignore (Verlet.run s ~engine:(Pairlist.engine pl) ~steps:12 ());
    (Pairlist.rebuild_count pl, Pairlist.last_interaction_count pl, s)
  in
  let r1, i1, s1 = run 1 in
  List.iter
    (fun d ->
      let rd, id, sd = run d in
      Alcotest.(check int)
        (Printf.sprintf "rebuilds (%d domains)" d)
        r1 rd;
      Alcotest.(check int)
        (Printf.sprintf "interactions (%d domains)" d)
        i1 id;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "trajectory bit-identical (%d domains)" d)
        0.0
        (System.max_position_delta s1 sd))
    [ 2; 4 ]

(* ---------------- Cell_list: stateful + pooled ---------------- *)

(* 512 atoms at density 0.8: box ~ 8.62 sigma >= 3 * cutoff. *)
let cell_system () = Init.build ~seed:3 ~n:512 ()

let test_cell_list_stateful_equivalence () =
  let reference = cell_system () in
  let legacy_s = System.copy reference in
  let pe_legacy = Cell_list.compute legacy_s in
  List.iter
    (fun d ->
      let s = System.copy reference in
      let cl = Cell_list.create ~pool:(pool d) s in
      let pe = Cell_list.compute_with cl s in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "forces bit-identical (%d domains)" d)
        0.0
        (System.max_acceleration_delta s legacy_s);
      if d = 1 then
        Alcotest.(check (float 0.0)) "PE exact at 1 domain" pe_legacy pe
      else
        Alcotest.(check bool)
          (Printf.sprintf "PE within 1e-12 rel (%d domains)" d)
          true
          (abs_float (pe -. pe_legacy) <= 1e-12 *. abs_float pe_legacy);
      (* buffer reuse: a second evaluation rebins in place and agrees *)
      Alcotest.(check (float 0.0))
        (Printf.sprintf "rebinned evaluation stable (%d domains)" d)
        pe (Cell_list.compute_with cl s))
    pool_sizes

(* ---------------- Harness: parallel run_all ---------------- *)

let test_run_all_byte_identical () =
  let render pool_size =
    let ctx = Harness.Context.create ~scale:Harness.Context.quick_scale () in
    let outcomes =
      Harness.Report.run_all ~pool:(pool pool_size) ctx
    in
    (Harness.Report.render_all outcomes, Harness.Report.summary_line outcomes)
  in
  let serial_report, serial_summary = render 1 in
  let par_report, par_summary = render 4 in
  Alcotest.(check string) "summary identical" serial_summary par_summary;
  Alcotest.(check string) "report byte-identical" serial_report par_report

let tests =
  ( "parallel",
    [ Alcotest.test_case "parallel_for covers range" `Quick
        test_parallel_for_covers_range;
      Alcotest.test_case "parallel_for_reduce exact" `Quick
        test_parallel_for_reduce_exact;
      Alcotest.test_case "parallel_for_reduce deterministic" `Quick
        test_parallel_for_reduce_deterministic;
      Alcotest.test_case "map_list order" `Quick test_map_list_order;
      Alcotest.test_case "nested regions" `Quick test_nested_regions;
      Alcotest.test_case "exception propagation" `Quick
        test_exception_propagation;
      Alcotest.test_case "gather pool equivalence" `Quick
        test_gather_pool_equivalence;
      Alcotest.test_case "gather pool matches spawn" `Quick
        test_gather_pool_matches_spawn;
      Alcotest.test_case "pairlist cell path active" `Quick
        test_pairlist_cells_active;
      Alcotest.test_case "pairlist build equivalence" `Quick
        test_pairlist_build_equivalence;
      Alcotest.test_case "pairlist rebuild cadence invariant" `Slow
        test_pairlist_rebuild_cadence_invariant;
      Alcotest.test_case "cell list stateful equivalence" `Quick
        test_cell_list_stateful_equivalence;
      Alcotest.test_case "run_all byte-identical" `Slow
        test_run_all_byte_identical ] )
