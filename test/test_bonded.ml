(* Tests for molecular topology and bonded force terms. *)

module Params = Mdcore.Params
module System = Mdcore.System
module Topology = Mdcore.Topology
module Bonded = Mdcore.Bonded
module Forces = Mdcore.Forces
module Verlet = Mdcore.Verlet
module Observables = Mdcore.Observables
module Vec3 = Vecmath.Vec3

let params = { Params.default with Params.dt = 0.001 }

let bare_system n =
  let s = System.create ~n ~box:10.0 ~params in
  s

let place s i x y z = System.set_position s i (Vec3.make x y z)

(* ---------------- Topology ---------------- *)

let test_topology_validation () =
  Alcotest.(check bool) "self bond rejected" true
    (try
       ignore
         (Topology.create
            ~bonds:[ { Topology.i = 0; j = 0; r0 = 1.0; k_bond = 1.0 } ]
            ~n_atoms:4 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out-of-range index rejected" true
    (try
       ignore
         (Topology.create
            ~bonds:[ { Topology.i = 0; j = 9; r0 = 1.0; k_bond = 1.0 } ]
            ~n_atoms:4 ());
       false
     with Invalid_argument _ -> true)

let test_topology_exclusions () =
  let t =
    Topology.create
      ~bonds:
        [ { Topology.i = 0; j = 1; r0 = 1.0; k_bond = 1.0 };
          { Topology.i = 1; j = 2; r0 = 1.0; k_bond = 1.0 } ]
      ~angles:
        [ { Topology.a = 0; center = 1; c = 2; theta0 = Float.pi;
            k_angle = 1.0 } ]
      ~n_atoms:4 ()
  in
  Alcotest.(check bool) "1-2 excluded" true (Topology.excluded t 0 1);
  Alcotest.(check bool) "symmetric" true (Topology.excluded t 1 0);
  Alcotest.(check bool) "1-3 excluded (angle ends)" true
    (Topology.excluded t 0 2);
  Alcotest.(check bool) "unrelated not excluded" false
    (Topology.excluded t 0 3)

let test_linear_chains_counts () =
  let t =
    Topology.linear_chains ~n_chains:3 ~length:5 ~r0:1.0 ~k_bond:10.0
      ~angle:(Float.pi, 2.0) ()
  in
  Alcotest.(check int) "bonds = chains * (len-1)" 12 (Topology.n_bonds t);
  Alcotest.(check int) "angles = chains * (len-2)" 9 (Topology.n_angles t);
  (* Chains must not be cross-bonded. *)
  Alcotest.(check bool) "no inter-chain exclusion" false
    (Topology.excluded t 4 5)

(* ---------------- Bonds ---------------- *)

let two_bonded ~r =
  let s = bare_system 2 in
  place s 0 4.0 5.0 5.0;
  place s 1 (4.0 +. r) 5.0 5.0;
  let t =
    Topology.create
      ~bonds:[ { Topology.i = 0; j = 1; r0 = 1.0; k_bond = 50.0 } ]
      ~n_atoms:2 ()
  in
  (s, t)

let test_bond_zero_at_equilibrium () =
  let s, t = two_bonded ~r:1.0 in
  let pe = Bonded.accumulate_bonds t s in
  Alcotest.(check (float 1e-12)) "no PE" 0.0 pe;
  Alcotest.(check (float 1e-12)) "no force" 0.0 s.System.acc_x.{0}

let test_bond_restoring_direction () =
  let stretched, t = two_bonded ~r:1.4 in
  ignore (Bonded.accumulate_bonds t stretched);
  Alcotest.(check bool) "stretched bond pulls atoms together" true
    (stretched.System.acc_x.{0} > 0.0 && stretched.System.acc_x.{1} < 0.0);
  let compressed, t2 = two_bonded ~r:0.7 in
  ignore (Bonded.accumulate_bonds t2 compressed);
  Alcotest.(check bool) "compressed bond pushes apart" true
    (compressed.System.acc_x.{0} < 0.0 && compressed.System.acc_x.{1} > 0.0)

let test_bond_energy () =
  let s, t = two_bonded ~r:1.3 in
  let pe = Bonded.accumulate_bonds t s in
  Alcotest.(check (float 1e-9)) "V = k/2 (r-r0)^2"
    (0.5 *. 50.0 *. 0.3 *. 0.3)
    pe

let test_bond_oscillation_period () =
  (* Two equal masses on a harmonic bond: omega = sqrt(2 k / m). *)
  let s, t = two_bonded ~r:1.2 in
  let engine =
    Mdcore.Engine.make ~name:"bond-only" ~compute:(fun sys ->
        System.clear_accelerations sys;
        Bonded.accumulate_bonds t sys)
  in
  (* Track the separation's crossings of r0 to estimate the period. *)
  let crossings = ref [] in
  let prev_sign = ref 0.0 in
  let record (r : Verlet.step_record) =
    let sep = s.System.pos_x.{1} -. s.System.pos_x.{0} -. 1.0 in
    if !prev_sign <> 0.0 && sep *. !prev_sign < 0.0 then
      crossings := r.Verlet.sim_time :: !crossings;
    prev_sign := sep
  in
  ignore (Verlet.run s ~engine ~steps:2000 ~record ());
  let times = Array.of_list (List.rev !crossings) in
  Alcotest.(check bool) "oscillates" true (Array.length times >= 4);
  (* Consecutive zero crossings are half a period apart. *)
  let half_periods =
    Array.init
      (Array.length times - 1)
      (fun k -> times.(k + 1) -. times.(k))
  in
  let measured = 2.0 *. Sim_util.Stats.mean half_periods in
  let expected = 2.0 *. Float.pi /. sqrt (2.0 *. 50.0) in
  Alcotest.(check bool)
    (Printf.sprintf "period %.4f ~ %.4f" measured expected)
    true
    (Sim_util.Stats.relative_error ~expected ~actual:measured < 0.02)

(* ---------------- Angles ---------------- *)

let bent_triplet ~theta =
  let s = bare_system 3 in
  place s 1 5.0 5.0 5.0;
  place s 0 (5.0 +. 1.0) 5.0 5.0;
  place s 2 (5.0 +. cos theta) (5.0 +. sin theta) 5.0;
  let t =
    Topology.create
      ~angles:
        [ { Topology.a = 0; center = 1; c = 2; theta0 = 2.0; k_angle = 30.0 } ]
      ~n_atoms:3 ()
  in
  (s, t)

let test_angle_zero_at_equilibrium () =
  let s, t = bent_triplet ~theta:2.0 in
  let pe = Bonded.accumulate_angles t s in
  Alcotest.(check (float 1e-9)) "no PE at theta0" 0.0 pe;
  for i = 0 to 2 do
    Alcotest.(check (float 1e-9)) "no force" 0.0 s.System.acc_x.{i}
  done

let test_angle_forces_sum_to_zero () =
  let s, t = bent_triplet ~theta:1.2 in
  ignore (Bonded.accumulate_angles t s);
  let sum (arr : System.buf) = arr.{0} +. arr.{1} +. arr.{2} in
  Alcotest.(check (float 1e-10)) "x momentum conserved" 0.0 (sum s.System.acc_x);
  Alcotest.(check (float 1e-10)) "y momentum conserved" 0.0 (sum s.System.acc_y);
  Alcotest.(check (float 1e-10)) "z momentum conserved" 0.0 (sum s.System.acc_z)

let test_angle_force_is_gradient () =
  (* Numerical gradient check on a generic (non-degenerate) geometry. *)
  let make () =
    let s = bare_system 3 in
    place s 0 4.1 5.3 5.2;
    place s 1 5.0 5.0 5.0;
    place s 2 5.6 5.9 4.6;
    s
  in
  let t =
    Topology.create
      ~angles:
        [ { Topology.a = 0; center = 1; c = 2; theta0 = 1.8; k_angle = 12.0 } ]
      ~n_atoms:3 ()
  in
  let s = make () in
  ignore (Bonded.accumulate_angles t s);
  let h = 1e-6 in
  let axes = [| s.System.pos_x; s.System.pos_y; s.System.pos_z |] in
  let forces = [| s.System.acc_x; s.System.acc_y; s.System.acc_z |] in
  for atom = 0 to 2 do
    for axis = 0 to 2 do
      let probe delta =
        let p = make () in
        let arr =
          match axis with
          | 0 -> p.System.pos_x
          | 1 -> p.System.pos_y
          | _ -> p.System.pos_z
        in
        arr.{atom} <- arr.{atom} +. delta;
        Bonded.accumulate_angles t p
      in
      let dvdx = (probe h -. probe (-.h)) /. (2.0 *. h) in
      let analytic = forces.(axis).{atom} in
      ignore axes;
      Alcotest.(check bool)
        (Printf.sprintf "atom %d axis %d: F = -dV/dx (%.6f vs %.6f)" atom
           axis analytic (-.dvdx))
        true
        (abs_float (analytic +. dvdx) < 1e-5)
    done
  done

(* ---------------- Molecular engine ---------------- *)

let chain_system () =
  (* A small melt of 12 four-bead chains at moderate density. *)
  let topology =
    Topology.linear_chains ~n_chains:12 ~length:4 ~r0:1.1 ~k_bond:100.0
      ~angle:(2.0, 5.0) ()
  in
  let s =
    Mdcore.Init.build_chains ~seed:61 ~density:0.3 ~temperature:0.8 ~params
      ~n_chains:12 ~length:4 ~r0:1.1 ()
  in
  (s, topology)

let test_exclusions_prevent_lj_blowup () =
  let s, topology = chain_system () in
  (* Bonded neighbours sit near r0 = 1.1 sigma, inside the steep LJ
     region; with exclusions the non-bonded PE must not include them. *)
  let s2 = System.copy s in
  let pe_excluded = Bonded.compute_nonbonded_excluded topology s in
  let pe_full = Forces.compute_gather s2 in
  Alcotest.(check bool) "excluded PE differs from full LJ" true
    (abs_float (pe_excluded -. pe_full) > 1e-6)

let test_molecular_energy_conservation () =
  let s, topology = chain_system () in
  let engine = Bonded.molecular_engine topology in
  let records = Verlet.run s ~engine ~steps:100 () in
  let e0 = (List.hd records).Verlet.total_energy in
  let worst =
    List.fold_left
      (fun acc (r : Verlet.step_record) ->
        Float.max acc (abs_float ((r.Verlet.total_energy -. e0) /. e0)))
      0.0 records
  in
  Alcotest.(check bool)
    (Printf.sprintf "drift %.2e < 5e-3" worst)
    true (worst < 5e-3)

let test_molecular_bonds_hold () =
  let s, topology = chain_system () in
  let engine = Bonded.molecular_engine topology in
  ignore (Verlet.run s ~engine ~steps:200 ());
  Array.iter
    (fun (b : Topology.bond) ->
      let dx =
        Mdcore.Min_image.delta ~box:s.System.box
          (s.System.pos_x.{b.Topology.i} -. s.System.pos_x.{b.Topology.j})
      and dy =
        Mdcore.Min_image.delta ~box:s.System.box
          (s.System.pos_y.{b.Topology.i} -. s.System.pos_y.{b.Topology.j})
      and dz =
        Mdcore.Min_image.delta ~box:s.System.box
          (s.System.pos_z.{b.Topology.i} -. s.System.pos_z.{b.Topology.j})
      in
      let r = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
      if r < 0.6 || r > 2.0 then
        Alcotest.failf "bond %d-%d broke: r = %.3f" b.Topology.i b.Topology.j r)
    (Topology.bonds topology)

let tests =
  ( "bonded",
    [ Alcotest.test_case "topology validation" `Quick
        test_topology_validation;
      Alcotest.test_case "topology exclusions" `Quick
        test_topology_exclusions;
      Alcotest.test_case "linear chains counts" `Quick
        test_linear_chains_counts;
      Alcotest.test_case "bond zero at equilibrium" `Quick
        test_bond_zero_at_equilibrium;
      Alcotest.test_case "bond restoring direction" `Quick
        test_bond_restoring_direction;
      Alcotest.test_case "bond energy" `Quick test_bond_energy;
      Alcotest.test_case "bond oscillation period" `Slow
        test_bond_oscillation_period;
      Alcotest.test_case "angle zero at equilibrium" `Quick
        test_angle_zero_at_equilibrium;
      Alcotest.test_case "angle forces sum to zero" `Quick
        test_angle_forces_sum_to_zero;
      Alcotest.test_case "angle force is gradient" `Quick
        test_angle_force_is_gradient;
      Alcotest.test_case "exclusions prevent LJ blowup" `Quick
        test_exclusions_prevent_lj_blowup;
      Alcotest.test_case "molecular energy conservation" `Slow
        test_molecular_energy_conservation;
      Alcotest.test_case "molecular bonds hold" `Slow
        test_molecular_bonds_hold ] )
