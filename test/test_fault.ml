(* Deterministic fault injection, recovery, and graceful degradation
   (lib/fault + the sites threaded through every device model). *)

module Mdfault = Mdfault
module Init = Mdcore.Init

let sys ?(n = 128) () = Init.build ~seed:31 ~n ()

let with_plan spec_text f =
  (match Mdfault.parse_spec spec_text with
  | Ok spec -> Mdfault.install spec
  | Error msg -> Alcotest.failf "bad spec %S: %s" spec_text msg);
  Fun.protect ~finally:Mdfault.uninstall f

let with_prof f =
  Mdprof.clear ();
  Mdprof.enable ();
  Fun.protect ~finally:(fun () -> Mdprof.clear ()) f

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

let test_parse_spec_valid () =
  match Mdfault.parse_spec "cell-dma:0.01,gpu-pcie:5e-3,seed=7,retries=2,backoff=1e-5,watchdog=16" with
  | Error msg -> Alcotest.failf "expected Ok, got Error %s" msg
  | Ok spec ->
    Alcotest.(check int) "seed" 7 spec.Mdfault.seed;
    Alcotest.(check int) "retries" 2 spec.Mdfault.policy.Mdfault.max_retries;
    Alcotest.(check int) "watchdog" 16 spec.Mdfault.policy.Mdfault.watchdog_limit;
    Alcotest.(check (float 0.0)) "backoff" 1e-5
      spec.Mdfault.policy.Mdfault.base_backoff_s;
    Alcotest.(check (float 0.0)) "dma rate" 0.01
      (List.assoc Mdfault.Cell_dma spec.Mdfault.rates);
    Alcotest.(check (float 0.0)) "pcie rate" 5e-3
      (List.assoc Mdfault.Gpu_pcie spec.Mdfault.rates);
    Alcotest.(check bool) "absent site" true
      (List.assoc_opt Mdfault.Mta_retry spec.Mdfault.rates = None)

let test_parse_spec_all () =
  match Mdfault.parse_spec "all:1e-3" with
  | Error msg -> Alcotest.failf "expected Ok, got Error %s" msg
  | Ok spec ->
    (* "all" arms every device site; storage sites must be named
       explicitly so device chaos plans keep their exact historical
       behavior (and bytes). *)
    List.iter
      (fun site ->
        Alcotest.(check (float 0.0))
          (Mdfault.site_name site ^ " rate")
          1e-3
          (List.assoc site spec.Mdfault.rates))
      Mdfault.device_sites;
    List.iter
      (fun site ->
        Alcotest.(check bool)
          (Mdfault.site_name site ^ " absent")
          true
          (List.assoc_opt site spec.Mdfault.rates = None))
      Mdfault.io_sites

let test_parse_spec_invalid () =
  let rejected text =
    match Mdfault.parse_spec text with
    | Ok _ -> Alcotest.failf "expected %S to be rejected" text
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error for %S is one line" text)
        false
        (String.contains msg '\n')
  in
  rejected "bogus-site:0.1";
  rejected "cell-dma:1.5";
  rejected "cell-dma:-0.1";
  rejected "cell-dma:nan";
  rejected "cell-dma";
  rejected "seed=abc";
  rejected "retries=-1";
  rejected "backoff=-1e-3";
  rejected "watchdog=0";
  rejected "frobnicate=3";
  rejected ""

(* ------------------------------------------------------------------ *)
(* Replay determinism                                                  *)
(* ------------------------------------------------------------------ *)

let cell_run_with_events spec_text =
  with_plan spec_text (fun () ->
      let r = Mdports.Cell_port.run ~steps:3 (sys ()) in
      (r, Mdfault.events_string (), Mdfault.summary ()))

let test_replay_identical () =
  let spec = "cell-dma:0.1,cell-mailbox:0.05,seed=11" in
  let r1, ev1, s1 = cell_run_with_events spec in
  let r2, ev2, s2 = cell_run_with_events spec in
  Alcotest.(check bool) "faults were injected" true (s1.Mdfault.injected > 0);
  Alcotest.(check string) "identical fault event log" ev1 ev2;
  Alcotest.(check bool) "identical physics records" true
    (r1.Mdports.Run_result.records = r2.Mdports.Run_result.records);
  Alcotest.(check (float 0.0)) "identical virtual time"
    r1.Mdports.Run_result.seconds r2.Mdports.Run_result.seconds;
  Alcotest.(check int) "identical injected count" s1.Mdfault.injected
    s2.Mdfault.injected

let test_replay_seed_sensitive () =
  let _, ev1, s1 = cell_run_with_events "cell-dma:0.1,seed=11" in
  let _, ev2, _ = cell_run_with_events "cell-dma:0.1,seed=12" in
  Alcotest.(check bool) "seed 11 injects" true (s1.Mdfault.injected > 0);
  Alcotest.(check bool) "different seed, different sequence" false
    (ev1 = ev2)

(* ------------------------------------------------------------------ *)
(* Zero-rate inertness                                                 *)
(* ------------------------------------------------------------------ *)

let test_zero_rate_byte_identical () =
  let s = sys () in
  let baseline =
    with_prof (fun () ->
        let r = Mdports.Gpu_port.run ~steps:2 s in
        (r.Mdports.Run_result.records, Mdprof.virtual_counters_string ()))
  in
  let zero_rate =
    with_prof (fun () ->
        with_plan "all:0.0,seed=5" (fun () ->
            let r = Mdports.Gpu_port.run ~steps:2 s in
            Alcotest.(check int) "no events at rate 0.0" 0
              (List.length (Mdfault.events ()));
            Alcotest.(check int) "nothing injected at rate 0.0" 0
              (Mdfault.summary ()).Mdfault.injected;
            (r.Mdports.Run_result.records, Mdprof.virtual_counters_string ())))
  in
  Alcotest.(check bool) "identical records" true
    (fst baseline = fst zero_rate);
  Alcotest.(check string) "byte-identical counter export" (snd baseline)
    (snd zero_rate)

(* ------------------------------------------------------------------ *)
(* Recovery convergence                                                *)
(* ------------------------------------------------------------------ *)

let test_cell_dma_recovery_converges () =
  let s = sys () in
  let clean = Mdports.Cell_port.run ~steps:3 s in
  let faulted, summary =
    with_plan "cell-dma:0.2,seed=3" (fun () ->
        let r = Mdports.Cell_port.run ~steps:3 s in
        (r, Mdfault.summary ()))
  in
  Alcotest.(check bool) "faults recovered" true
    (summary.Mdfault.recoveries > 0);
  Alcotest.(check bool) "same physics as fault-free run" true
    (clean.Mdports.Run_result.records = faulted.Mdports.Run_result.records);
  Alcotest.(check bool) "retries cost virtual time" true
    (faulted.Mdports.Run_result.seconds > clean.Mdports.Run_result.seconds);
  Alcotest.(check bool) "backoff accrued" true
    (summary.Mdfault.backoff_seconds > 0.0)

let test_gpu_texture_flip_is_silent () =
  with_plan "gpu-texture:0.001,seed=9" (fun () ->
      let r = Mdports.Gpu_port.run ~steps:2 (sys ()) in
      let s = Mdfault.summary () in
      Alcotest.(check bool) "flips injected" true (s.Mdfault.injected > 0);
      Alcotest.(check bool) "run completed" true
        (List.length r.Mdports.Run_result.records = 3))

let test_cell_dma_unrecoverable () =
  with_plan "cell-dma:1.0,seed=3" (fun () ->
      match Mdports.Cell_port.run ~steps:2 (sys ()) with
      | _ -> Alcotest.fail "expected Mdfault.Unrecovered"
      | exception Mdfault.Unrecovered f ->
        Alcotest.(check bool) "site is cell-dma" true
          (f.Mdfault.f_site = Mdfault.Cell_dma);
        Alcotest.(check bool) "attempts recorded" true
          (f.Mdfault.f_attempts > 0);
        Alcotest.(check bool) "unrecovered counted" true
          ((Mdfault.summary ()).Mdfault.unrecovered > 0))

let test_mta_livelock_watchdog () =
  with_plan "mta-retry:1.0,watchdog=8,retries=1,seed=3" (fun () ->
      match Mdports.Mta_port.run ~steps:2 (sys ~n:216 ()) with
      | _ -> Alcotest.fail "expected livelock watchdog to fire"
      | exception Mdfault.Unrecovered f ->
        Alcotest.(check bool) "site is mta-retry" true
          (f.Mdfault.f_site = Mdfault.Mta_retry))

(* ------------------------------------------------------------------ *)
(* Checkpoint / restore                                                *)
(* ------------------------------------------------------------------ *)

let synthetic_failure =
  Mdfault.Unrecovered
    { Mdfault.f_site = Mdfault.Gpu_pcie;
      f_stream = "test";
      f_attempts = 5;
      f_detail = "synthetic mid-step device failure" }

let test_verlet_checkpoint_restore () =
  let reference =
    Mdcore.Verlet.run (Mdcore.System.copy (sys ()))
      ~engine:Mdcore.Forces.gather_engine ~steps:4 ()
  in
  (* The engine dies on its third force evaluation, then works again —
     a transient device failure the checkpointing must absorb. *)
  let calls = ref 0 in
  let flaky =
    Mdcore.Engine.make ~name:"flaky" ~compute:(fun s ->
        incr calls;
        if !calls = 3 then raise synthetic_failure
        else Mdcore.Forces.gather_engine.Mdcore.Engine.compute s)
  in
  let recovered =
    Mdcore.Verlet.run (Mdcore.System.copy (sys ())) ~engine:flaky ~steps:4
      ~max_step_retries:2 ()
  in
  Alcotest.(check bool) "converges to the fault-free trajectory" true
    (reference = recovered);
  (* Without retries the same failure must propagate. *)
  calls := 0;
  match
    Mdcore.Verlet.run (Mdcore.System.copy (sys ())) ~engine:flaky ~steps:4 ()
  with
  | _ -> Alcotest.fail "expected the failure to propagate at 0 retries"
  | exception Mdfault.Unrecovered _ -> ()

let test_system_restore () =
  let a = sys () in
  let b = Mdcore.System.copy a in
  b.Mdcore.System.pos_x.{0} <- 0.25;
  b.Mdcore.System.vel_y.{1} <- -1.5;
  b.Mdcore.System.acc_z.{2} <- 3.0;
  Mdcore.System.restore ~dst:b ~src:a;
  Alcotest.(check bool) "restore reverts all arrays" true
    (Mdcore.System.equal_positions a b
    && b.Mdcore.System.vel_y.{1} = a.Mdcore.System.vel_y.{1}
    && b.Mdcore.System.acc_z.{2} = a.Mdcore.System.acc_z.{2});
  let small = Init.build ~seed:31 ~n:216 () in
  match Mdcore.System.restore ~dst:small ~src:a with
  | () -> Alcotest.fail "expected size-mismatch rejection"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Harness isolation and degradation                                   *)
(* ------------------------------------------------------------------ *)

let trivial_outcome id =
  let table = Sim_util.Table.create ~headers:[ "k"; "v" ] in
  Sim_util.Table.add_row table [ "x"; "1" ];
  { Harness.Experiment.id;
    title = id;
    table;
    checks = [ { Harness.Experiment.name = "ok"; passed = true; detail = "" } ];
    notes = [];
    figure = None;
    virtual_seconds = [] }

let exp_of id run = { Harness.Experiment.id; title = id; paper_ref = ""; run }

let test_report_isolates_failures () =
  let ctx = Harness.Context.create ~scale:Harness.Context.quick_scale () in
  let exps =
    [ exp_of "t-ok" (fun _ -> trivial_outcome "t-ok");
      exp_of "t-boom" (fun _ -> failwith "boom");
      exp_of "t-ok2" (fun _ -> trivial_outcome "t-ok2") ]
  in
  let cs = Harness.Report.run_list_classified ctx exps in
  Alcotest.(check int) "report is complete" 3 (List.length cs);
  Alcotest.(check (list string)) "statuses"
    [ "ok"; "failed"; "ok" ]
    (List.map
       (fun c -> Harness.Report.status_name c.Harness.Report.status)
       cs);
  let failed = List.nth cs 1 in
  Alcotest.(check bool) "error recorded" true
    (match failed.Harness.Report.error with
    | Some e -> e <> ""
    | None -> false);
  Alcotest.(check bool) "placeholder outcome has a failed check" true
    (List.exists
       (fun c -> not c.Harness.Experiment.passed)
       failed.Harness.Report.outcome.Harness.Experiment.checks);
  (* The rendered report and metrics stay complete, no exception. *)
  let rendered = Harness.Report.render_classified cs in
  Alcotest.(check bool) "render mentions the failure" true
    (String.length rendered > 0);
  Alcotest.(check string) "summary counts statuses"
    "outcomes: 2 ok, 0 recovered, 0 degraded, 1 failed"
    (Harness.Report.classified_summary_line cs)

let test_report_degrades_under_faults () =
  (* An unrecoverable injected fault (zero retries, rate 1.0) aborts the
     faulted run; the harness must fall back fault-free and classify the
     experiment degraded — never abort the report. *)
  with_plan "cell-dma:1.0,retries=0,seed=3" (fun () ->
      let ctx = Harness.Context.create ~scale:Harness.Context.quick_scale () in
      let run_cell _ =
        let r = Mdports.Cell_port.run ~steps:2 (sys ~n:216 ()) in
        ignore r;
        trivial_outcome "t-cell"
      in
      let cs =
        Harness.Report.run_list_classified ctx [ exp_of "t-cell" run_cell ]
      in
      match cs with
      | [ c ] ->
        Alcotest.(check string) "degraded" "degraded"
          (Harness.Report.status_name c.Harness.Report.status);
        Alcotest.(check bool) "fallback outcome delivered" true
          (c.Harness.Report.outcome.Harness.Experiment.id = "t-cell");
        Alcotest.(check bool) "degradation note appended" true
          (List.exists
             (fun n ->
               String.length n >= 8 && String.sub n 0 8 = "degraded")
             c.Harness.Report.outcome.Harness.Experiment.notes)
      | _ -> Alcotest.fail "expected one classified outcome")

let test_metrics_json_annotations () =
  let ctx = Harness.Context.create ~scale:Harness.Context.quick_scale () in
  let clean =
    Harness.Report.run_list_classified ctx
      [ exp_of "t-ok" (fun _ -> trivial_outcome "t-ok") ]
  in
  let outcomes = List.map (fun c -> c.Harness.Report.outcome) clean in
  Alcotest.(check string) "all-ok metrics unchanged by classification"
    (Harness.Report.metrics_json outcomes)
    (Harness.Report.metrics_json ~classified:clean outcomes);
  let mixed =
    Harness.Report.run_list_classified ctx
      [ exp_of "t-boom" (fun _ -> failwith "boom") ]
  in
  let mixed_outcomes = List.map (fun c -> c.Harness.Report.outcome) mixed in
  let json = Harness.Report.metrics_json ~classified:mixed mixed_outcomes in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "status field present" true
    (contains "\"status\":\"failed\"" json);
  Alcotest.(check bool) "statuses summary present" true
    (contains "\"statuses\":{" json)

let tests =
  ( "fault",
    [ Alcotest.test_case "parse spec valid" `Quick test_parse_spec_valid;
      Alcotest.test_case "parse spec all" `Quick test_parse_spec_all;
      Alcotest.test_case "parse spec invalid" `Quick test_parse_spec_invalid;
      Alcotest.test_case "replay identical" `Quick test_replay_identical;
      Alcotest.test_case "replay seed sensitive" `Quick
        test_replay_seed_sensitive;
      Alcotest.test_case "zero rate byte identical" `Quick
        test_zero_rate_byte_identical;
      Alcotest.test_case "cell dma recovery converges" `Quick
        test_cell_dma_recovery_converges;
      Alcotest.test_case "gpu texture flip silent" `Quick
        test_gpu_texture_flip_is_silent;
      Alcotest.test_case "cell dma unrecoverable" `Quick
        test_cell_dma_unrecoverable;
      Alcotest.test_case "mta livelock watchdog" `Quick
        test_mta_livelock_watchdog;
      Alcotest.test_case "verlet checkpoint restore" `Quick
        test_verlet_checkpoint_restore;
      Alcotest.test_case "system restore" `Quick test_system_restore;
      Alcotest.test_case "report isolates failures" `Quick
        test_report_isolates_failures;
      Alcotest.test_case "report degrades under faults" `Quick
        test_report_degrades_under_faults;
      Alcotest.test_case "metrics json annotations" `Quick
        test_metrics_json_annotations ] )
