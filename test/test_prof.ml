(* Tests for the Mdprof virtual performance-counter registry: lifecycle
   (inert dummies while disabled), get-or-create accumulation, kind and
   bucket-shape validation, gauge high-water marks, histogram bucketing,
   scope prefixes, derived-metric rules, the memsim counter-correctness
   contract (a handcrafted access pattern asserted through the
   registry), the Minijson reader, the Bench_check regression gate, and
   the headline guarantee that the exported virtual-counter profile is
   byte-identical across host pool sizes. *)

let with_prof f =
  Mdprof.clear ();
  Mdprof.enable ();
  Fun.protect ~finally:(fun () -> Mdprof.clear ()) f

let value name =
  match Mdprof.find name with
  | Some s -> s.Mdprof.s_value
  | None -> Alcotest.failf "counter %S not registered" name

(* ---------------- Lifecycle ---------------- *)

let test_disabled_is_inert () =
  Mdprof.clear ();
  Alcotest.(check bool) "disabled by default" false (Mdprof.enabled ());
  let c = Mdprof.counter ~clock:Mdprof.Virtual "ghost" in
  Mdprof.add c 5;
  Alcotest.(check int) "nothing registered" 0
    (List.length (Mdprof.samples ()));
  (* dummies stay inert even after a later enable *)
  Mdprof.enable ();
  Mdprof.add c 5;
  Mdprof.incr c;
  Alcotest.(check bool) "dummy still dropped" true
    (Mdprof.find "ghost" = None);
  Mdprof.clear ()

let test_counter_get_or_create () =
  with_prof (fun () ->
      let a = Mdprof.counter ~unit_:"ops" ~clock:Mdprof.Virtual "x/total" in
      Mdprof.add a 3;
      (* same name returns the same accumulating cell, unlike Mdobs
         tracks which get a #n suffix per instance *)
      let b = Mdprof.counter ~clock:Mdprof.Virtual "x/total" in
      Mdprof.add b 4;
      Mdprof.incr b;
      Mdprof.add_f b 0.5;
      Alcotest.(check (float 1e-12)) "one accumulated total" 8.5
        (value "x/total");
      Alcotest.(check int) "one sample" 1 (List.length (Mdprof.samples ())))

let test_kind_mismatch_rejected () =
  with_prof (fun () ->
      ignore (Mdprof.counter ~clock:Mdprof.Virtual "k");
      Alcotest.(check bool) "gauge over counter rejected" true
        (try
           ignore (Mdprof.gauge ~clock:Mdprof.Virtual "k");
           false
         with Invalid_argument _ -> true))

let test_gauge_high_water () =
  with_prof (fun () ->
      let g = Mdprof.gauge ~unit_:"bytes" ~clock:Mdprof.Virtual "vram" in
      Mdprof.set g 5.0;
      Mdprof.set g 2.0;
      match Mdprof.find "vram" with
      | Some s ->
        Alcotest.(check (float 1e-12)) "current level" 2.0 s.Mdprof.s_value;
        Alcotest.(check (float 1e-12)) "high-water" 5.0
          s.Mdprof.s_high_water
      | None -> Alcotest.fail "gauge not registered")

let test_histogram_buckets () =
  with_prof (fun () ->
      let h =
        Mdprof.histogram ~clock:Mdprof.Virtual ~buckets:[| 1.0; 2.0; 4.0 |]
          "streams"
      in
      (* upper-bound-inclusive: 1.0 lands in the first bucket *)
      List.iter (Mdprof.observe h) [ 0.5; 1.0; 3.0; 100.0 ];
      match Mdprof.find "streams" with
      | Some s ->
        Alcotest.(check int) "observations" 4 s.Mdprof.s_observations;
        Alcotest.(check (float 1e-12)) "sum" 104.5 s.Mdprof.s_sum;
        (match s.Mdprof.s_buckets with
        | [ (b1, c1); (b2, c2); (b3, c3); (binf, cinf) ] ->
          Alcotest.(check (float 0.0)) "bound 1" 1.0 b1;
          Alcotest.(check int) "<=1" 2 c1;
          Alcotest.(check int) "<=2" 0 c2;
          Alcotest.(check (float 0.0)) "bound 4" 4.0 b3;
          Alcotest.(check int) "<=4" 1 c3;
          Alcotest.(check bool) "overflow bound" true (binf = infinity);
          Alcotest.(check int) "overflow" 1 cinf;
          ignore b2
        | bs -> Alcotest.failf "expected 4 buckets, got %d" (List.length bs))
      | None -> Alcotest.fail "histogram not registered")

let test_histogram_bounds_validated () =
  with_prof (fun () ->
      let bad bounds =
        try
          ignore (Mdprof.histogram ~clock:Mdprof.Virtual ~buckets:bounds "h");
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool) "empty bounds rejected" true (bad [||]);
      Alcotest.(check bool) "non-increasing rejected" true
        (bad [| 2.0; 1.0 |]);
      ignore
        (Mdprof.histogram ~clock:Mdprof.Virtual ~buckets:[| 1.0; 2.0 |] "ok");
      Alcotest.(check bool) "re-register with other bounds rejected" true
        (try
           ignore
             (Mdprof.histogram ~clock:Mdprof.Virtual ~buckets:[| 1.0; 3.0 |]
                "ok");
           false
         with Invalid_argument _ -> true))

let test_scope_prefix () =
  with_prof (fun () ->
      Mdobs.with_scope "exp1" (fun () ->
          Mdprof.add (Mdprof.counter ~clock:Mdprof.Virtual "c") 1);
      Alcotest.(check bool) "scoped name registered" true
        (Mdprof.find "exp1/c" <> None))

(* ---------------- Derived metrics ---------------- *)

let test_derived_rules () =
  with_prof (fun () ->
      let c ?unit_ name = Mdprof.counter ?unit_ ~clock:Mdprof.Virtual name in
      Mdprof.add (c ~unit_:"flops" "dev/flops") 2_000_000;
      Mdprof.add_f (c ~unit_:"s" "dev/virtual_seconds") 2.0;
      Mdprof.add (c ~unit_:"bytes" "dev/mem_bytes") 4_000_000;
      let derived = Mdprof.derived () in
      let get name =
        match
          List.find_opt (fun (n, _, _) -> n = name) derived
        with
        | Some (_, v, _) -> v
        | None -> Alcotest.failf "derived metric %S missing" name
      in
      Alcotest.(check (float 1e-9)) "mflops" 1.0 (get "dev/mflops");
      Alcotest.(check (float 1e-9)) "arithmetic intensity" 0.5
        (get "dev/arith_intensity"))

(* ---------------- Memsim counter correctness ---------------- *)

(* A handcrafted access pattern with a known hit/miss decomposition,
   asserted through the registry rather than the Hierarchy accessors:
   direct-mapped 2-set L1 (64 B lines), so 0 and 128 conflict. *)
let test_memsim_counters () =
  with_prof (fun () ->
      let h =
        Memsim.Hierarchy.create
          { Memsim.Hierarchy.l1_line_bytes = 64; l1_sets = 2; l1_ways = 1;
            l1_hit_cycles = 3; l2_line_bytes = 64; l2_sets = 8; l2_ways = 2;
            l2_hit_cycles = 12; dram_cycles = 100 }
      in
      ignore (Memsim.Hierarchy.access h 0);    (* cold: L1+L2 miss, DRAM *)
      ignore (Memsim.Hierarchy.access h 0);    (* L1 hit *)
      ignore (Memsim.Hierarchy.access h 128);  (* conflict: evicts line 0 *)
      ignore (Memsim.Hierarchy.access h 0);    (* L1 miss, L2 hit *)
      Alcotest.(check (float 0.0)) "l1 hits" 1.0 (value "mem/l1_hits");
      Alcotest.(check (float 0.0)) "l1 misses" 3.0 (value "mem/l1_misses");
      Alcotest.(check (float 0.0)) "l2 hits" 1.0 (value "mem/l2_hits");
      Alcotest.(check (float 0.0)) "l2 misses" 2.0 (value "mem/l2_misses");
      Alcotest.(check (float 0.0)) "dram accesses" 2.0
        (value "mem/dram_accesses");
      let tlb =
        Memsim.Tlb.create ~page_bytes:4096 ~entries:2 ~miss_cycles:25 ()
      in
      ignore (Memsim.Tlb.access tlb 0);      (* cold miss *)
      ignore (Memsim.Tlb.access tlb 4095);   (* same page: hit *)
      ignore (Memsim.Tlb.access tlb 4096);   (* next page: miss *)
      Alcotest.(check (float 0.0)) "tlb hits" 1.0 (value "mem/tlb_hits");
      Alcotest.(check (float 0.0)) "tlb misses" 2.0 (value "mem/tlb_misses"))

(* ---------------- Export formats ---------------- *)

let test_json_csv_well_formed () =
  with_prof (fun () ->
      Mdprof.add (Mdprof.counter ~clock:Mdprof.Virtual "a/n") 1;
      Mdprof.set (Mdprof.gauge ~clock:Mdprof.Virtual "a/g") 2.5;
      Mdprof.observe
        (Mdprof.histogram ~clock:Mdprof.Virtual ~buckets:[| 1.0 |] "a/h")
        7.0;
      Mdprof.add (Mdprof.counter ~clock:Mdprof.Host "host/n") 9;
      let doc = Sim_util.Minijson.parse (Mdprof.to_json ()) in
      (match Sim_util.Minijson.member "schema" doc with
      | Some (Sim_util.Minijson.Str "mdsim-counters-v1") -> ()
      | _ -> Alcotest.fail "schema field wrong");
      (match Sim_util.Minijson.member "counters" doc with
      | Some (Sim_util.Minijson.List rows) ->
        (* default export is virtual-only: 3 rows, not 4 *)
        Alcotest.(check int) "virtual rows only" 3 (List.length rows)
      | _ -> Alcotest.fail "counters field missing");
      let with_host = Sim_util.Minijson.parse (Mdprof.to_json ~host:true ()) in
      (match Sim_util.Minijson.member "counters" with_host with
      | Some (Sim_util.Minijson.List rows) ->
        Alcotest.(check int) "host rows included" 4 (List.length rows)
      | _ -> Alcotest.fail "counters field missing");
      let csv = Mdprof.to_csv () in
      Alcotest.(check int) "csv: header + 3 rows" 4
        (List.length
           (List.filter
              (fun l -> l <> "")
              (String.split_on_char '\n' csv))))

(* ---------------- Determinism across pool sizes ---------------- *)

(* The headline guarantee: virtual-clock counters are a pure function of
   the simulated workload, so the exported profile is byte-identical
   whatever the host pool size.  Same shape as the Mdobs trace test:
   fig7 + fig8 through the parallel harness at pool sizes 1 and 4. *)
let test_counters_pool_invariant () =
  let run_profiled pool_size =
    Mdprof.clear ();
    Mdprof.enable ();
    Fun.protect
      ~finally:(fun () -> Mdprof.clear ())
      (fun () ->
        let ctx = Harness.Context.create ~scale:Harness.Context.quick_scale () in
        let pool = Mdpar.get ~domains:pool_size () in
        let experiments =
          List.filter_map Harness.Registry.find [ "fig7"; "fig8" ]
        in
        ignore (Mdpar.map_list pool (Harness.Report.run_one ctx) experiments);
        (Mdprof.virtual_counters_string (), Mdprof.to_json ()))
  in
  let serial, serial_json = run_profiled 1 in
  let parallel, parallel_json = run_profiled 4 in
  Alcotest.(check bool) "profile nonempty" true (String.length serial > 0);
  Alcotest.(check string) "virtual counters byte-identical" serial parallel;
  Alcotest.(check string) "counters json byte-identical" serial_json
    parallel_json

(* ---------------- Minijson ---------------- *)

let test_minijson_values () =
  let doc =
    Sim_util.Minijson.parse
      {|{"a":[1,-2.5e3,"x\n",true,null],"b":{"c":0.125}}|}
  in
  (match Sim_util.Minijson.member "a" doc with
  | Some (Sim_util.Minijson.List
      [ Sim_util.Minijson.Num one; Sim_util.Minijson.Num neg;
        Sim_util.Minijson.Str s; Sim_util.Minijson.Bool true;
        Sim_util.Minijson.Null ]) ->
    Alcotest.(check (float 0.0)) "int" 1.0 one;
    Alcotest.(check (float 0.0)) "exponent" (-2500.0) neg;
    Alcotest.(check string) "escape" "x\n" s
  | _ -> Alcotest.fail "array shape wrong");
  match
    Option.bind
      (Sim_util.Minijson.member "b" doc)
      (Sim_util.Minijson.member "c")
  with
  | Some (Sim_util.Minijson.Num f) ->
    Alcotest.(check (float 0.0)) "nested" 0.125 f
  | _ -> Alcotest.fail "nested member missing"

let test_minijson_surrogates () =
  match Sim_util.Minijson.parse {|"😀"|} with
  | Sim_util.Minijson.Str s ->
    Alcotest.(check string) "surrogate pair decodes to UTF-8"
      "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected string"

let test_minijson_rejects () =
  List.iter
    (fun bad ->
      match Sim_util.Minijson.parse bad with
      | _ -> Alcotest.failf "accepted invalid JSON %S" bad
      | exception Sim_util.Minijson.Parse_error _ -> ())
    [ "{"; "[1,]"; {|{"a":}|}; "01"; {|"unterminated|}; "{} extra";
      {|{"a":1 "b":2}|}; {|"\ud83d"|} ]

(* ---------------- Bench_check ---------------- *)

let baseline_text =
  {|{
  "schema": "mdsim-bench-baseline-v1",
  "default_tolerance": 0.5,
  "tolerances": { "loose": 9.0 },
  "entries_ns": { "fast": 100.0, "loose": 100.0, "gone": 50.0 }
}|}

let test_bench_check_gate () =
  match Sim_util.Bench_check.parse_baseline baseline_text with
  | Error msg -> Alcotest.failf "baseline rejected: %s" msg
  | Ok baseline ->
    Alcotest.(check (float 0.0)) "default tolerance" 0.5
      baseline.Sim_util.Bench_check.default_tolerance;
    let outcome =
      Sim_util.Bench_check.compare baseline
        [ ("fast", 40.0); ("loose", 900.0); ("new", 1.0) ]
    in
    let status name =
      let c =
        List.find
          (fun c -> c.Sim_util.Bench_check.name = name)
          outcome.Sim_util.Bench_check.comparisons
      in
      c.Sim_util.Bench_check.status
    in
    Alcotest.(check bool) "2.5x faster flagged improvement" true
      (status "fast" = Sim_util.Bench_check.Improvement);
    Alcotest.(check bool) "9x slower within 10x tolerance" true
      (status "loose" = Sim_util.Bench_check.Pass);
    Alcotest.(check bool) "no regression -> not failed" false
      outcome.Sim_util.Bench_check.failed;
    Alcotest.(check (list string)) "baseline-only entry noted" [ "gone" ]
      outcome.Sim_util.Bench_check.missing;
    Alcotest.(check (list string)) "unbaselined entry noted" [ "new" ]
      outcome.Sim_util.Bench_check.unbaselined;
    let failing =
      Sim_util.Bench_check.compare baseline [ ("fast", 151.0) ]
    in
    Alcotest.(check bool) "51% over a 50% tolerance fails" true
      failing.Sim_util.Bench_check.failed;
    Alcotest.(check bool) "render marks the regression" true
      (let rendered = Sim_util.Bench_check.render failing in
       let contains s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       contains rendered "REGRESSION" && contains rendered "FAIL")

let test_bench_check_reads_results_schemas () =
  let v2 =
    {|{ "schema": "mdsim-bench-v2",
        "metadata": { "git_commit": "abc" },
        "results_ns": { "a": 10.0 } }|}
  in
  (match Sim_util.Bench_check.parse_baseline v2 with
  | Ok b ->
    Alcotest.(check int) "v2 results_ns read" 1
      (List.length b.Sim_util.Bench_check.entries)
  | Error msg -> Alcotest.failf "v2 rejected: %s" msg);
  let v1 =
    {|{ "schema": "mdsim-bench-v1", "results_ns": { "a": 10.0 } }|}
  in
  (match Sim_util.Bench_check.parse_baseline v1 with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "v1 rejected: %s" msg);
  match
    Sim_util.Bench_check.parse_baseline {|{ "schema": "other", "x": 1 }|}
  with
  | Ok _ -> Alcotest.fail "unknown schema accepted"
  | Error _ -> ()

let tests =
  ( "prof",
    [ Alcotest.test_case "disabled registry is inert" `Quick
        test_disabled_is_inert;
      Alcotest.test_case "counters get-or-create and accumulate" `Quick
        test_counter_get_or_create;
      Alcotest.test_case "kind mismatch rejected" `Quick
        test_kind_mismatch_rejected;
      Alcotest.test_case "gauge high-water" `Quick test_gauge_high_water;
      Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
      Alcotest.test_case "histogram bounds validated" `Quick
        test_histogram_bounds_validated;
      Alcotest.test_case "scope prefixes names" `Quick test_scope_prefix;
      Alcotest.test_case "derived metric rules" `Quick test_derived_rules;
      Alcotest.test_case "memsim counters vs handcrafted pattern" `Quick
        test_memsim_counters;
      Alcotest.test_case "json/csv exports well-formed" `Quick
        test_json_csv_well_formed;
      Alcotest.test_case "minijson values" `Quick test_minijson_values;
      Alcotest.test_case "minijson surrogate pairs" `Quick
        test_minijson_surrogates;
      Alcotest.test_case "minijson rejects invalid" `Quick
        test_minijson_rejects;
      Alcotest.test_case "bench_check gate" `Quick test_bench_check_gate;
      Alcotest.test_case "bench_check reads results schemas" `Quick
        test_bench_check_reads_results_schemas;
      Alcotest.test_case "virtual counters pool-invariant" `Slow
        test_counters_pool_invariant ] )
