(* Tests for the Mdobs observability layer: sink semantics, scoped track
   naming, the Chrome trace exporter (well-formed JSON), the instrumented
   machine models, the GPU VRAM accounting (including the
   failed-allocation leak regression), and the headline guarantee that
   virtual-time event streams are byte-identical across pool sizes. *)

let with_tracing sink f =
  Mdobs.clear ();
  Mdobs.enable sink;
  Fun.protect ~finally:(fun () -> Mdobs.clear ()) f

(* ---------------- Recorder and sinks ---------------- *)

let test_disabled_is_inert () =
  Mdobs.clear ();
  Alcotest.(check bool) "disabled by default" false (Mdobs.enabled ());
  let tr = Mdobs.new_track ~clock:Mdobs.Virtual "ghost" in
  Mdobs.span tr ~name:"x" ~ts:0.0 ~dur:1.0 ();
  Mdobs.instant tr ~name:"y" ~ts:0.0 ();
  Mdobs.counter tr ~name:"z" ~ts:0.0 3.0;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Mdobs.events ()));
  (* dummies stay inert even after a later enable *)
  Mdobs.enable (Mdobs.Sink.memory ());
  Mdobs.span tr ~name:"x" ~ts:0.0 ~dur:1.0 ();
  Alcotest.(check int) "dummy still dropped" 0 (List.length (Mdobs.events ()));
  Mdobs.clear ()

let test_memory_sink_order () =
  with_tracing (Mdobs.Sink.memory ()) (fun () ->
      let tr = Mdobs.new_track ~clock:Mdobs.Virtual "t" in
      Mdobs.span tr ~name:"a" ~ts:0.0 ~dur:0.5 ();
      Mdobs.instant tr ~name:"b" ~ts:0.5 ~args:[ ("k", Mdobs.Int 7) ] ();
      Mdobs.counter tr ~name:"c" ~ts:1.0 2.0;
      let evs = Mdobs.events () in
      Alcotest.(check int) "three events" 3 (List.length evs);
      Alcotest.(check (list int)) "sequence order" [ 0; 1; 2 ]
        (List.map (fun e -> e.Mdobs.seq) evs);
      Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ]
        (List.map (fun e -> e.Mdobs.ev_name) evs);
      match (List.nth evs 1).Mdobs.args with
      | [ ("k", Mdobs.Int 7) ] -> ()
      | _ -> Alcotest.fail "instant args lost")

let test_ring_sink_keeps_newest () =
  with_tracing (Mdobs.Sink.ring ~capacity:3) (fun () ->
      let tr = Mdobs.new_track ~clock:Mdobs.Virtual "t" in
      for i = 0 to 4 do
        Mdobs.instant tr ~name:(string_of_int i) ~ts:(float_of_int i) ()
      done;
      let evs = Mdobs.events () in
      Alcotest.(check (list string)) "newest three, oldest first"
        [ "2"; "3"; "4" ]
        (List.map (fun e -> e.Mdobs.ev_name) evs))

let test_ring_counts_dropped () =
  with_tracing (Mdobs.Sink.ring ~capacity:3) (fun () ->
      let tr = Mdobs.new_track ~clock:Mdobs.Virtual "t" in
      Alcotest.(check int) "nothing dropped yet" 0 (Mdobs.dropped_events ());
      for i = 0 to 4 do
        Mdobs.instant tr ~name:(string_of_int i) ~ts:(float_of_int i) ()
      done;
      Alcotest.(check int) "two overwrites counted" 2
        (Mdobs.dropped_events ());
      (* the drop count is surfaced as a Chrome metadata event *)
      let json = Mdobs.to_chrome_json () in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "metadata event present" true
        (contains json "\"dropped_events\"" && contains json "\"count\":2"));
  (* the memory sink never drops *)
  with_tracing (Mdobs.Sink.memory ()) (fun () ->
      let tr = Mdobs.new_track ~clock:Mdobs.Virtual "t" in
      for i = 0 to 9 do
        Mdobs.instant tr ~name:(string_of_int i) ~ts:0.0 ()
      done;
      Alcotest.(check int) "memory sink drops nothing" 0
        (Mdobs.dropped_events ()))

let test_ring_rejects_bad_capacity () =
  Alcotest.(check bool) "nonpositive capacity rejected" true
    (try
       ignore (Mdobs.Sink.ring ~capacity:0);
       false
     with Invalid_argument _ -> true)

let test_scoped_track_names () =
  with_tracing (Mdobs.Sink.memory ()) (fun () ->
      let plain = Mdobs.new_track ~clock:Mdobs.Host "base" in
      Alcotest.(check string) "no scope" "base" (Mdobs.track_name plain);
      Mdobs.with_scope "exp1" (fun () ->
          Alcotest.(check string) "scope visible" "exp1"
            (Mdobs.current_scope ());
          let a = Mdobs.new_track ~clock:Mdobs.Host "base" in
          let b = Mdobs.new_track ~clock:Mdobs.Host "base" in
          Alcotest.(check string) "scoped" "exp1/base" (Mdobs.track_name a);
          Alcotest.(check string) "repeat suffixed" "exp1/base#1"
            (Mdobs.track_name b));
      Alcotest.(check string) "scope restored" "" (Mdobs.current_scope ()))

let test_host_span_records () =
  with_tracing (Mdobs.Sink.memory ()) (fun () ->
      let tr = Mdobs.new_track ~clock:Mdobs.Host "h" in
      let v = Mdobs.host_span tr ~name:"work" (fun () -> 42) in
      Alcotest.(check int) "value through" 42 v;
      match Mdobs.events () with
      | [ { Mdobs.ev_name = "work"; ev_phase = Mdobs.Span d; _ } ] ->
        Alcotest.(check bool) "nonnegative duration" true (d >= 0.0)
      | _ -> Alcotest.fail "expected one span")

(* ---------------- JSON well-formedness ---------------- *)

(* Minimal JSON recognizer: accepts exactly the RFC 8259 grammar the
   exporter is supposed to emit.  Returns unit or raises Failure. *)
let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = failwith (Printf.sprintf "%s at byte %d" msg !pos) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done
        | _ -> fail "bad escape");
        loop ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some _ ->
        advance ();
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let digits () =
      let start = !pos in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if !pos = start then fail "expected digit"
    in
    (match peek () with Some '-' -> advance () | _ -> ());
    (* integer part: "0" or a nonzero-led digit run (no leading zeros) *)
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' ->
      advance ();
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          advance ();
          go ()
        | _ -> ()
      in
      go ()
    | _ -> fail "expected digit");
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let literal lit =
    String.iter
      (fun c ->
        match peek () with
        | Some c' when c' = c -> advance ()
        | _ -> fail ("expected " ^ lit))
      lit
  in
  let rec parse_value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      (match peek () with
      | Some '}' -> advance ()
      | _ ->
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ())
    | Some '[' ->
      advance ();
      skip_ws ();
      (match peek () with
      | Some ']' -> advance ()
      | _ ->
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ())
    | Some '"' -> parse_string ()
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail "expected value");
    skip_ws ()
  in
  parse_value ();
  if !pos <> n then fail "trailing garbage"

let test_json_validator_sane () =
  validate_json {|{"a":[1,-2.5e3,"x\n",true,null],"b":{}}|};
  List.iter
    (fun bad ->
      match validate_json bad with
      | () -> Alcotest.failf "accepted invalid JSON %S" bad
      | exception Failure _ -> ())
    [ "{"; "[1,]"; {|{"a":}|}; "01"; {|"unterminated|}; "{} extra" ]

let test_chrome_json_well_formed () =
  with_tracing (Mdobs.Sink.memory ()) (fun () ->
      let tr = Mdobs.new_track ~clock:Mdobs.Virtual "m" in
      Mdobs.span tr ~name:{|quo"te\ted|} ~ts:1e-6 ~dur:2.5e-6
        ~args:
          [ ("i", Mdobs.Int (-3));
            ("f", Mdobs.Float 0.1);
            ("s", Mdobs.Str "a\nb") ]
        ();
      Mdobs.instant tr ~name:"inst" ~ts:0.0 ();
      Mdobs.counter tr ~name:"cnt" ~ts:2.0 7.5;
      let host = Mdobs.new_track ~clock:Mdobs.Host "h" in
      Mdobs.span host ~name:"wall" ~ts:0.0 ~dur:1.0 ();
      validate_json (Mdobs.to_chrome_json ());
      validate_json (Mdobs.to_chrome_json ~virtual_only:true ()))

(* ---------------- Machine instrumentation ---------------- *)

let test_cell_offload_trace () =
  with_tracing (Mdobs.Sink.memory ()) (fun () ->
      let m = Cellbe.Machine.create Cellbe.Config.default in
      Cellbe.Machine.offload m ~spes:2 ~mode:Cellbe.Machine.Respawn (fun ctx ->
          Cellbe.Machine.charge_cycles ctx
            (float_of_int (100 * (Cellbe.Machine.spe_id ctx + 1))));
      let evs = Mdobs.events () in
      let offloads =
        List.filter
          (fun e ->
            e.Mdobs.track_name = "cell" && e.Mdobs.ev_name = "offload")
          evs
      in
      Alcotest.(check int) "one offload span" 1 (List.length offloads);
      (match (List.hd offloads).Mdobs.args with
      | args ->
        (match List.assoc_opt "critical_spe" args with
        | Some (Mdobs.Int 1) -> ()
        | _ -> Alcotest.fail "critical SPE should be the slower one (id 1)"));
      let busy =
        List.filter (fun e -> e.Mdobs.ev_name = "busy") evs
        |> List.map (fun e -> e.Mdobs.track_name)
      in
      Alcotest.(check (list string)) "per-SPE busy spans"
        [ "cell/spe0"; "cell/spe1" ]
        (List.sort String.compare busy))

let test_mta_region_trace () =
  with_tracing (Mdobs.Sink.memory ()) (fun () ->
      let m = Mta.Machine.create (Mta.Config.mta2 ()) in
      let body =
        Isa.Block.of_instrs
          [ { Isa.Block.op = Isa.Op.Load; deps = [] };
            { Isa.Block.op = Isa.Op.Fadd; deps = [] } ]
      in
      let loop = Mta.Loop.make ~name:"stencil" ~body () in
      Mta.Machine.for_loop m ~loop ~n:512 ~f:(fun _ -> ());
      match
        List.filter (fun e -> e.Mdobs.track_name = "mta") (Mdobs.events ())
      with
      | [ e ] ->
        Alcotest.(check string) "span named after loop" "stencil"
          e.Mdobs.ev_name;
        (match List.assoc_opt "streams" e.Mdobs.args with
        | Some (Mdobs.Int k) ->
          Alcotest.(check bool) "streams recruited" true (k > 1)
        | _ -> Alcotest.fail "streams arg missing")
      | evs -> Alcotest.failf "expected one mta span, got %d" (List.length evs))

(* ---------------- GPU VRAM accounting ---------------- *)

let test_gpu_vram_counter_and_peak () =
  with_tracing (Mdobs.Sink.memory ()) (fun () ->
      let m = Gpustream.Machine.create Gpustream.Config.geforce_7900gtx in
      let a = Gpustream.Machine.create_texture m ~name:"a" ~texels:100 in
      let b = Gpustream.Machine.create_texture m ~name:"b" ~texels:50 in
      Alcotest.(check int) "used" (150 * 16) (Gpustream.Machine.vram_used m);
      Gpustream.Machine.free_texture m a;
      Alcotest.(check int) "used after free" (50 * 16)
        (Gpustream.Machine.vram_used m);
      Alcotest.(check int) "peak survives free" (150 * 16)
        (Gpustream.Machine.vram_peak m);
      ignore b;
      let counters =
        List.filter
          (fun e -> e.Mdobs.ev_name = "vram" && e.Mdobs.track_name = "gpu")
          (Mdobs.events ())
      in
      Alcotest.(check (list bool)) "counter trajectory"
        [ true; true; true ]
        (List.map2
           (fun e expected ->
             e.Mdobs.ev_phase = Mdobs.Counter (float_of_int (expected * 16)))
           counters [ 100; 150; 50 ]))

(* Regression: a texture allocation whose backing [Array.make] fails must
   not leave the bytes claimed in the VRAM ledger.  A texel count past
   [Sys.max_array_length] forces exactly that host-side failure (the
   config below lifts the device-side limits out of the way). *)
let test_gpu_vram_no_leak_on_failed_alloc () =
  let cfg =
    { Gpustream.Config.geforce_7900gtx with
      vram_bytes = max_int;
      max_texels = max_int }
  in
  let m = Gpustream.Machine.create cfg in
  let huge = Sys.max_array_length + 1 in
  (match Gpustream.Machine.create_texture m ~name:"huge" ~texels:huge with
  | _ -> Alcotest.fail "allocation unexpectedly succeeded"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "no VRAM leaked" 0 (Gpustream.Machine.vram_used m);
  (match Gpustream.Machine.create_render_target m ~name:"huge" ~texels:huge with
  | _ -> Alcotest.fail "allocation unexpectedly succeeded"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "no VRAM leaked (render target)" 0
    (Gpustream.Machine.vram_used m);
  (* the machine must still be usable afterwards *)
  let t = Gpustream.Machine.create_texture m ~name:"ok" ~texels:8 in
  Alcotest.(check int) "subsequent allocation clean" (8 * 16)
    (Gpustream.Machine.vram_used m);
  Gpustream.Machine.free_texture m t

(* ---------------- Determinism across pool sizes ---------------- *)

(* The headline guarantee: for a fixed workload, the virtual-time event
   stream is byte-identical whatever the host pool size.  Run two paper
   experiments (GPU and MTA sweeps, which exercise memoized shared
   systems) through the parallel harness at pool sizes 1 and 4. *)
let test_virtual_trace_pool_invariant () =
  let run_traced pool_size =
    with_tracing (Mdobs.Sink.memory ()) (fun () ->
        let ctx = Harness.Context.create ~scale:Harness.Context.quick_scale () in
        let pool = Mdpar.get ~domains:pool_size () in
        let experiments =
          List.filter_map Harness.Registry.find [ "fig7"; "fig8" ]
        in
        ignore (Mdpar.map_list pool (Harness.Report.run_one ctx) experiments);
        Mdobs.virtual_events_string ())
  in
  let serial = run_traced 1 in
  let parallel = run_traced 4 in
  Alcotest.(check bool) "trace nonempty" true (String.length serial > 0);
  Alcotest.(check string) "virtual events byte-identical" serial parallel

let tests =
  ( "obs",
    [ Alcotest.test_case "disabled recorder is inert" `Quick
        test_disabled_is_inert;
      Alcotest.test_case "memory sink order" `Quick test_memory_sink_order;
      Alcotest.test_case "ring keeps newest" `Quick
        test_ring_sink_keeps_newest;
      Alcotest.test_case "ring counts dropped events" `Quick
        test_ring_counts_dropped;
      Alcotest.test_case "ring capacity validated" `Quick
        test_ring_rejects_bad_capacity;
      Alcotest.test_case "scoped track names" `Quick test_scoped_track_names;
      Alcotest.test_case "host_span records" `Quick test_host_span_records;
      Alcotest.test_case "json validator sane" `Quick test_json_validator_sane;
      Alcotest.test_case "chrome json well-formed" `Quick
        test_chrome_json_well_formed;
      Alcotest.test_case "cell offload trace" `Quick test_cell_offload_trace;
      Alcotest.test_case "mta region trace" `Quick test_mta_region_trace;
      Alcotest.test_case "gpu vram counter and peak" `Quick
        test_gpu_vram_counter_and_peak;
      Alcotest.test_case "gpu vram leak regression" `Quick
        test_gpu_vram_no_leak_on_failed_alloc;
      Alcotest.test_case "virtual trace pool-invariant" `Slow
        test_virtual_trace_pool_invariant ] )
