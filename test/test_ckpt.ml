(* Durable checkpoint/resume (lib/ckpt): wire format integrity, GC and
   fallback, kill-and-resume bitwise convergence, invariant guards, and
   the deadline-supervised / manifest-resumable harness. *)

module Runner = Mdckpt.Runner
module System = Mdcore.System
module Verlet = Mdcore.Verlet
module Rng = Sim_util.Rng

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mdsim-ckpt-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let with_plan spec_text f =
  (match Mdfault.parse_spec spec_text with
  | Ok spec -> Mdfault.install spec
  | Error msg -> Alcotest.failf "bad spec %S: %s" spec_text msg);
  Fun.protect ~finally:Mdfault.uninstall f

let cfg ?(device = Runner.Opteron) ?(atoms = 128) ?(steps = 12) ?(every = 4)
    ~dir () =
  { Runner.cfg_device = device;
    cfg_atoms = atoms;
    cfg_steps = steps;
    cfg_seed = 11;
    cfg_density = 0.8;
    cfg_temperature = 1.0;
    cfg_force_path = Mdports.Force_path.default;
    cfg_every = every;
    cfg_keep = 8;
    cfg_dir = dir }

let complete = function
  | Runner.Complete r -> r
  | Runner.Suspended s ->
    Alcotest.failf "expected completion, suspended at %d/%d: %s"
      s.Runner.sus_completed s.Runner.sus_total s.Runner.sus_reason

let suspended = function
  | Runner.Suspended s -> s
  | Runner.Complete _ -> Alcotest.fail "expected suspension, run completed"

(* Bitwise equality of everything a run reports: the trajectory records
   (exact float compare), the virtual clock, the ledger, the work
   counts.  This is the acceptance bar for resume. *)
let check_same_result what (a : Mdports.Run_result.t)
    (b : Mdports.Run_result.t) =
  Alcotest.(check string) (what ^ ": device") a.Mdports.Run_result.device
    b.Mdports.Run_result.device;
  Alcotest.(check bool)
    (what ^ ": records bitwise")
    true
    (a.Mdports.Run_result.records = b.Mdports.Run_result.records);
  Alcotest.(check bool)
    (what ^ ": virtual seconds bitwise")
    true
    (a.Mdports.Run_result.seconds = b.Mdports.Run_result.seconds);
  Alcotest.(check bool)
    (what ^ ": breakdown bitwise")
    true
    (a.Mdports.Run_result.breakdown = b.Mdports.Run_result.breakdown);
  Alcotest.(check int)
    (what ^ ": pairs")
    a.Mdports.Run_result.pairs_evaluated b.Mdports.Run_result.pairs_evaluated;
  Alcotest.(check int)
    (what ^ ": interactions")
    a.Mdports.Run_result.interactions b.Mdports.Run_result.interactions

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)
(* ------------------------------------------------------------------ *)

let test_crc32_vectors () =
  (* the classic IEEE check value *)
  Alcotest.(check int) "check vector" 0xCBF43926 (Mdckpt.crc32 "123456789");
  Alcotest.(check int) "empty" 0 (Mdckpt.crc32 "")

let sample_state () =
  let system = Mdcore.Init.build ~seed:3 ~n:128 () in
  let rng = Rng.create 77 in
  ignore (Rng.gaussian rng);
  (* odd draw count leaves the Box–Muller cache full *)
  let cv =
    Mdcore.Thermostat.csvr ~seed:5 ~target:1.0 ~tau:0.05 ()
  in
  { Mdckpt.device = "opteron";
    atoms = 128;
    total_steps = 8;
    completed = 4;
    seed = 3;
    density = 0.8;
    temperature = 1.0;
    engine = "pairlist";
    skin = 0.4;
    every = 4;
    keep = 2;
    guard_restores = 1;
    system;
    progress =
      { Mdckpt.seconds = 0.125;
        breakdown = [ ("compute", 0.1); ("memory", 0.025) ];
        pairs_evaluated = 1104;
        interactions = 732;
        records =
          [ { Verlet.step = 0; sim_time = 0.0; pe = -1.5; ke = 0.75;
              total_energy = -0.75; temperature = 1.0 } ];
        device_label = "Opteron 2.2 GHz" };
    thermostat = Some (Mdcore.Thermostat.csvr_state cv);
    rngs = [ ("aux", Rng.state rng) ];
    fault = None;
    counters =
      Some
        [ { Mdprof.p_name = "gpu/dma/bytes_in"; p_unit = "bytes";
            p_kind = Mdprof.Counter; p_value = 4096.0; p_hwm = 4096.0;
            p_bounds = [||]; p_counts = [||]; p_obs = 0; p_sum = 0.0 };
          { Mdprof.p_name = "spe/chunk"; p_unit = "pairs";
            p_kind = Mdprof.Histogram; p_value = 0.0; p_hwm = 0.0;
            p_bounds = [| 16.0; 64.0 |]; p_counts = [| 3; 2; 1 |];
            p_obs = 6; p_sum = 312.0 } ] }

let test_roundtrip () =
  let st = sample_state () in
  match Mdckpt.decode (Mdckpt.encode st) with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok d ->
    Alcotest.(check string) "device" st.Mdckpt.device d.Mdckpt.device;
    Alcotest.(check int) "completed" st.Mdckpt.completed d.Mdckpt.completed;
    Alcotest.(check int) "guard restores" st.Mdckpt.guard_restores
      d.Mdckpt.guard_restores;
    Alcotest.(check bool) "positions bitwise" true
      (st.Mdckpt.system.System.pos_x = d.Mdckpt.system.System.pos_x);
    Alcotest.(check bool) "velocities bitwise" true
      (st.Mdckpt.system.System.vel_y = d.Mdckpt.system.System.vel_y);
    Alcotest.(check bool) "progress bitwise" true
      (st.Mdckpt.progress = d.Mdckpt.progress);
    Alcotest.(check bool) "thermostat round trip" true
      (st.Mdckpt.thermostat = d.Mdckpt.thermostat);
    Alcotest.(check bool) "rng stream round trip" true
      (st.Mdckpt.rngs = d.Mdckpt.rngs);
    Alcotest.(check bool) "counters round trip" true
      (st.Mdckpt.counters = d.Mdckpt.counters)

(* Checkpoints written before the counters section existed must still
   decode — drop the section from a fresh container and expect [None],
   not a decode error. *)
let test_decode_without_counters_section () =
  let st = sample_state () in
  let magic = Mdckpt.schema ^ "\n" in
  match Mdckpt.decode_container ~magic (Mdckpt.encode st) with
  | Error msg -> Alcotest.failf "container decode failed: %s" msg
  | Ok sections ->
    Alcotest.(check bool) "fresh container carries counters" true
      (List.mem_assoc "counters" sections);
    let stripped =
      List.filter (fun (name, _) -> name <> "counters") sections
    in
    (match Mdckpt.decode (Mdckpt.encode_container ~magic stripped) with
    | Error msg -> Alcotest.failf "pre-counters checkpoint rejected: %s" msg
    | Ok d ->
      Alcotest.(check bool) "counters default to None" true
        (d.Mdckpt.counters = None);
      Alcotest.(check int) "rest of the state intact" st.Mdckpt.completed
        d.Mdckpt.completed)

(* The bulk little-endian blit and the per-element portable encoder must
   produce the same bytes — that is the whole contract that lets the
   fast path ship the wire format unchanged.  Poison the buffers with
   the float edge cases (negative zero, subnormal, NaN payload,
   infinities) so the comparison is not vacuous. *)
let test_blit_matches_portable () =
  let st = sample_state () in
  let s = st.Mdckpt.system in
  s.System.vel_x.{0} <- -0.0;
  s.System.vel_x.{1} <- 4.9e-324;
  s.System.vel_y.{0} <- Float.infinity;
  s.System.vel_z.{0} <- Float.neg_infinity;
  s.System.acc_y.{0} <- Int64.float_of_bits 0x7FF0_0000_DEAD_BEEFL;
  let fast = Mdckpt.encode st in
  Mdckpt.Wire.force_portable := true;
  let portable =
    Fun.protect
      ~finally:(fun () -> Mdckpt.Wire.force_portable := false)
      (fun () -> Mdckpt.encode st)
  in
  Alcotest.(check bool) "encoders byte-identical" true
    (String.equal fast portable);
  (* Decode and re-encode: every poisoned bit pattern (including the
     NaN payload) must survive the round trip exactly. *)
  match Mdckpt.decode portable with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok d ->
    Alcotest.(check bool) "re-encoding bitwise" true
      (String.equal fast (Mdckpt.encode d))

let test_rng_state_resumes_gaussian_cache () =
  (* The Box–Muller cache is part of the stream state: a checkpoint taken
     after an odd number of gaussian draws must replay the cached half. *)
  let a = Rng.create 9 in
  ignore (Rng.gaussian a);
  let b = Rng.of_state (Rng.state a) in
  for i = 0 to 9 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "draw %d" i)
      (Rng.gaussian a) (Rng.gaussian b)
  done

let test_corrupt_byte_rejected () =
  let data = Bytes.of_string (Mdckpt.encode (sample_state ())) in
  (* flip one byte in the middle of the file — inside the system
     section's coordinate payload, by far the largest *)
  let i = Bytes.length data / 2 in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x40));
  match Mdckpt.decode (Bytes.to_string data) with
  | Ok _ -> Alcotest.fail "corrupted checkpoint was accepted"
  | Error msg ->
    Alcotest.(check bool) "mentions CRC" true
      (String.length msg >= 3 && String.lowercase_ascii msg |> fun m ->
       let rec has i =
         i + 3 <= String.length m && (String.sub m i 3 = "crc" || has (i + 1))
       in
       has 0);
    Alcotest.(check bool) "one line" false (String.contains msg '\n')

let test_truncated_rejected () =
  let data = Mdckpt.encode (sample_state ()) in
  match Mdckpt.decode (String.sub data 0 (String.length data / 2)) with
  | Ok _ -> Alcotest.fail "truncated checkpoint was accepted"
  | Error msg ->
    Alcotest.(check bool) "one line" false (String.contains msg '\n')

let test_wrong_schema_rejected () =
  match Mdckpt.decode "mdsim-checkpoint-v999\njunk" with
  | Ok _ -> Alcotest.fail "foreign schema was accepted"
  | Error msg ->
    Alcotest.(check bool) "mentions magic" true
      (String.length msg > 0 && String.sub msg 0 9 = "bad magic")

(* ------------------------------------------------------------------ *)
(* Generations, GC, fallback                                           *)
(* ------------------------------------------------------------------ *)

let test_gc_keeps_k () =
  let dir = fresh_dir () in
  let st = { (sample_state ()) with Mdckpt.keep = 2 } in
  List.iter
    (fun completed ->
      ignore (Mdckpt.save ~dir { st with Mdckpt.completed }))
    [ 0; 4; 8; 12; 16 ];
  let gens = Mdckpt.generations ~dir in
  Alcotest.(check (list int)) "newest K survive" [ 12; 16 ]
    (List.map fst gens)

let test_load_latest_falls_back () =
  let dir = fresh_dir () in
  let st = { (sample_state ()) with Mdckpt.keep = 8 } in
  ignore (Mdckpt.save ~dir { st with Mdckpt.completed = 4 });
  let newest = Mdckpt.save ~dir { st with Mdckpt.completed = 8 } in
  (* hand-corrupt the newest generation on disk *)
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 newest in
  seek_out oc 64;
  output_string oc "\xde\xad\xbe\xef";
  close_out oc;
  match Mdckpt.load_latest ~dir with
  | Error msg -> Alcotest.failf "fallback failed: %s" msg
  | Ok (st', path) ->
    Alcotest.(check int) "previous generation used" 4 st'.Mdckpt.completed;
    Alcotest.(check bool) "path is the older file" true
      (Filename.basename path = "ckpt-000000004.mdsim")

let test_load_latest_empty_dir () =
  match Mdckpt.load_latest ~dir:(fresh_dir ()) with
  | Ok _ -> Alcotest.fail "empty dir produced a checkpoint"
  | Error msg ->
    Alcotest.(check bool) "one line" false (String.contains msg '\n')

(* ------------------------------------------------------------------ *)
(* Kill-and-resume bitwise convergence                                 *)
(* ------------------------------------------------------------------ *)

let kill_and_resume_check ?(device = Runner.Opteron) ?(atoms = 128) () =
  Mdfault.set_guard_restores 0;
  let full =
    complete (Runner.run (cfg ~device ~atoms ~dir:(fresh_dir ()) ()))
  in
  let dir = fresh_dir () in
  Mdfault.set_guard_restores 0;
  let s =
    suspended (Runner.run ~abort_after_segments:1 (cfg ~device ~atoms ~dir ()))
  in
  Alcotest.(check int) "killed after one segment" 4 s.Runner.sus_completed;
  Mdfault.set_guard_restores 0;
  match Runner.resume dir with
  | Error msg -> Alcotest.failf "resume failed: %s" msg
  | Ok outcome -> check_same_result "resumed vs uninterrupted" full
                    (complete outcome)

let test_kill_resume_domains1 () =
  let saved = Mdpar.default_domains () in
  Mdpar.set_default_domains 1;
  Fun.protect
    ~finally:(fun () -> Mdpar.set_default_domains saved)
    (fun () -> kill_and_resume_check ())

let test_kill_resume_domains4 () =
  let saved = Mdpar.default_domains () in
  Mdpar.set_default_domains 4;
  Fun.protect
    ~finally:(fun () -> Mdpar.set_default_domains saved)
    (fun () -> kill_and_resume_check ())

let test_kill_resume_pairlist () =
  (* At 512 atoms the box admits the skin list, so the production
     pairlist engine is live across the kill: the resumed segment starts
     with a fresh list (state is never serialized — the first refresh
     forces a rebuild) and must still converge bitwise, because the
     trajectory is rebuild-cadence independent. *)
  kill_and_resume_check ~atoms:512 ()

let test_kill_resume_cell_with_faults () =
  (* The checkpoint carries the fault-plan state (stream PRNG positions,
     counters, event logs): a killed chaos run resumes to the exact
     event sequence of the uninterrupted one. *)
  let spec = "all:2e-3,seed=9" in
  let run_full () =
    with_plan spec (fun () ->
        Mdfault.set_guard_restores 0;
        let r =
          complete
            (Runner.run (cfg ~device:Runner.Cell ~dir:(fresh_dir ()) ()))
        in
        (r, Mdfault.events_string ()))
  in
  let full, full_events = run_full () in
  let dir = fresh_dir () in
  with_plan spec (fun () ->
      Mdfault.set_guard_restores 0;
      ignore
        (suspended
           (Runner.run ~abort_after_segments:1
              (cfg ~device:Runner.Cell ~dir ()))));
  (* plan uninstalled: a resumed "fresh process" gets it from the file *)
  Fun.protect ~finally:Mdfault.uninstall (fun () ->
      match Runner.resume dir with
      | Error msg -> Alcotest.failf "resume failed: %s" msg
      | Ok outcome ->
        check_same_result "chaos resume" full (complete outcome);
        Alcotest.(check string) "fault event log identical" full_events
          (Mdfault.events_string ()))

let test_resume_completed_checkpoint () =
  let dir = fresh_dir () in
  Mdfault.set_guard_restores 0;
  let full = complete (Runner.run (cfg ~dir ())) in
  (* the newest generation now covers the whole run *)
  match Runner.resume dir with
  | Error msg -> Alcotest.failf "resume failed: %s" msg
  | Ok outcome ->
    check_same_result "resume of finished run" full (complete outcome)

(* ------------------------------------------------------------------ *)
(* Invariant guard                                                     *)
(* ------------------------------------------------------------------ *)

(* An engine wrapper that silently corrupts one acceleration component
   on selected calls — the undetected-bit-flip model the retry layer
   cannot see, only the guard can. *)
let corrupting_engine ~corrupt_calls =
  let calls = ref 0 in
  Mdcore.Engine.make ~name:"silent-corruptor" ~compute:(fun s ->
      incr calls;
      let pe = Mdcore.Forces.gather_engine.Mdcore.Engine.compute s in
      if List.mem !calls corrupt_calls then
        s.System.acc_x.{0} <- Float.nan;
      pe)

let test_guard_restores_silent_corruption () =
  let reference =
    let s = Mdcore.Init.build ~seed:21 ~n:128 () in
    Verlet.run s ~engine:Mdcore.Forces.gather_engine ~steps:6 ()
  in
  let s = Mdcore.Init.build ~seed:21 ~n:128 () in
  let before = Mdfault.guard_restores () in
  (* call 1 is prepare; corrupt the force evaluation of step 3 once *)
  let records =
    Verlet.run s
      ~engine:(corrupting_engine ~corrupt_calls:[ 4 ])
      ~steps:6 ~guard:Verlet.default_guard ()
  in
  Alcotest.(check bool) "guard restore counted" true
    (Mdfault.guard_restores () > before);
  Alcotest.(check bool) "trajectory equals fault-free reference" true
    (records = reference)

let test_guard_escalates_persistent_corruption () =
  let s = Mdcore.Init.build ~seed:21 ~n:128 () in
  (* corrupt every force evaluation: restores can never succeed *)
  let engine =
    Mdcore.Engine.make ~name:"always-corrupt" ~compute:(fun s ->
        let pe = Mdcore.Forces.gather_engine.Mdcore.Engine.compute s in
        s.System.acc_x.{0} <- Float.nan;
        pe)
  in
  match
    Verlet.run s ~engine ~steps:4
      ~guard:{ Verlet.default_guard with Verlet.max_restores = 2 }
      ()
  with
  | _ -> Alcotest.fail "persistent corruption survived the guard"
  | exception Verlet.Invariant_violation msg ->
    Alcotest.(check bool) "message mentions the invariant" true
      (String.length msg > 0)

let test_runner_suspends_on_persistent_violation () =
  (* A checkpointed run under an installed guard with unrecoverable
     corruption suspends (newest valid generation intact) instead of
     crashing.  mem-bitflip at rate 1 corrupts detected-path reads, so
     drive the guard through the runner with an impossible bound. *)
  let dir = fresh_dir () in
  Verlet.install_guard
    { Verlet.max_energy_jump = 0.0;
      max_momentum_drift = 0.0;
      max_restores = 1 };
  Fun.protect ~finally:Verlet.clear_guard (fun () ->
      Mdfault.set_guard_restores 0;
      let s = suspended (Runner.run (cfg ~dir ())) in
      Alcotest.(check bool) "reason names the invariant" true
        (String.length s.Runner.sus_reason > 0);
      Alcotest.(check bool) "a durable generation exists" true
        (Mdckpt.generations ~dir <> []))

(* ------------------------------------------------------------------ *)
(* Deadline supervision                                                *)
(* ------------------------------------------------------------------ *)

let test_runner_deadline_suspends () =
  let dir = fresh_dir () in
  Mdfault.set_guard_restores 0;
  let s =
    suspended
      (Runner.run ~deadline:1e-4 (cfg ~atoms:200 ~steps:400 ~every:50 ~dir ()))
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "reason names the deadline" true
    (contains s.Runner.sus_reason "deadline");
  Alcotest.(check bool) "durable checkpoint for resume" true
    (s.Runner.sus_path <> None);
  (* the interrupted work is still resumable (without the deadline) *)
  Mdfault.set_guard_restores 0;
  match Runner.resume dir with
  | Error msg -> Alcotest.failf "resume after deadline failed: %s" msg
  | Ok (Runner.Complete r) ->
    Alcotest.(check int) "all steps completed" 400 r.Mdports.Run_result.steps
  | Ok (Runner.Suspended _) -> Alcotest.fail "resume suspended again"

let test_report_deadline_classifies_degraded () =
  let ctx = Harness.Context.create ~scale:Harness.Context.quick_scale () in
  let e =
    match Harness.Registry.find "table1" with
    | Some e -> e
    | None -> Alcotest.fail "table1 experiment missing"
  in
  let c = Harness.Report.run_one_classified ~deadline:1e-4 ctx e in
  Alcotest.(check string) "status" "degraded"
    (Harness.Report.status_name c.Harness.Report.status);
  (match c.Harness.Report.error with
  | Some msg ->
    Alcotest.(check string) "deterministic message"
      "wall-clock deadline (0.0001s) exceeded" msg
  | None -> Alcotest.fail "degraded entry carries no error");
  Alcotest.(check bool) "synthesized outcome fails its completed check"
    false
    (Harness.Experiment.all_passed c.Harness.Report.outcome)

(* ------------------------------------------------------------------ *)
(* Harness run manifest                                                *)
(* ------------------------------------------------------------------ *)

let manifest_entry ~id ~status =
  let table = Sim_util.Table.create ~headers:[ "a"; "b" ] in
  Sim_util.Table.add_row table [ "1"; "2" ];
  { Harness.Manifest.ent_id = id;
    ent_key = "";
    ent_status = status;
    ent_error = (if status = "ok" then None else Some "boom");
    ent_faults = Mdfault.summary ~prefix:"no-such-stream/" ();
    ent_outcome =
      { Harness.Experiment.id;
        title = "Entry " ^ id;
        table;
        checks = [ { Harness.Experiment.name = "c"; passed = true; detail = "d" } ];
        notes = [ "n1" ];
        figure = Some "fig";
        virtual_seconds = [ ("opteron", 0.25) ] } }

let open_manifest ~path ~key =
  match Harness.Manifest.load_or_create ~path ~key with
  | Ok m -> m
  | Error msg -> Alcotest.failf "manifest open failed: %s" msg

let test_manifest_roundtrip_and_reuse () =
  let path = Filename.concat (fresh_dir ()) "manifest.bin" in
  let m = open_manifest ~path ~key:"k1" in
  Harness.Manifest.record m (manifest_entry ~id:"table1" ~status:"ok");
  Harness.Manifest.record m (manifest_entry ~id:"fig5" ~status:"degraded");
  Harness.Manifest.close m;
  let m2 = open_manifest ~path ~key:"k1" in
  Alcotest.(check int) "both entries persisted" 2
    (Harness.Manifest.entry_count m2);
  (match Harness.Manifest.find m2 "table1" with
  | Some e ->
    Alcotest.(check string) "outcome survives" "Entry table1"
      e.Harness.Manifest.ent_outcome.Harness.Experiment.title;
    Alcotest.(check bool) "figure survives" true
      (e.Harness.Manifest.ent_outcome.Harness.Experiment.figure = Some "fig")
  | None -> Alcotest.fail "finished entry not reusable");
  (* degraded entries are retried, not reused *)
  Alcotest.(check bool) "degraded entry is not reusable" true
    (Harness.Manifest.find m2 "fig5" = None);
  Harness.Manifest.close m2

(* The manifest is single-writer: while one holder has it open, a second
   load_or_create — same process or another — must fail with a one-line
   error rather than hand out a manifest whose rewrites would
   interleave. *)
let test_manifest_second_writer_rejected () =
  let path = Filename.concat (fresh_dir ()) "manifest.bin" in
  let m = open_manifest ~path ~key:"k1" in
  (match Harness.Manifest.load_or_create ~path ~key:"k1" with
  | Ok _ -> Alcotest.fail "second manifest writer should have been rejected"
  | Error msg ->
    let contains sub =
      let n = String.length sub and m = String.length msg in
      let rec go i =
        i + n <= m && (String.sub msg i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "error mentions lock" true (contains "lock"));
  Harness.Manifest.close m;
  let m2 = open_manifest ~path ~key:"k1" in
  Harness.Manifest.close m2

let test_manifest_rejects_wrong_key_and_corruption () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "manifest.bin" in
  let m = open_manifest ~path ~key:"k1" in
  Harness.Manifest.record m (manifest_entry ~id:"table1" ~status:"ok");
  Harness.Manifest.close m;
  (* a different configuration key must not reuse anything *)
  let other = open_manifest ~path ~key:"k2" in
  Alcotest.(check int) "foreign-key entries dropped" 0
    (Harness.Manifest.entry_count other);
  Harness.Manifest.close other;
  (* corrupt file: one-line rejection, treated as empty *)
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  seek_out oc 40;
  output_string oc "\xff\xff\xff\xff";
  close_out oc;
  let recovered = open_manifest ~path ~key:"k1" in
  Alcotest.(check int) "corrupt manifest treated as empty" 0
    (Harness.Manifest.entry_count recovered);
  Harness.Manifest.close recovered

let test_manifest_resume_skips_finished () =
  let ctx = Harness.Context.create ~scale:Harness.Context.quick_scale () in
  let e =
    match Harness.Registry.find "table1" with
    | Some e -> e
    | None -> Alcotest.fail "table1 experiment missing"
  in
  let path = Filename.concat (fresh_dir ()) "manifest.bin" in
  let m = open_manifest ~path ~key:"quick" in
  let first = Harness.Report.run_list_classified ~manifest:m ctx [ e ] in
  Harness.Manifest.close m;
  (* second run must reuse the entry: plant a marker title to prove the
     stored result (not a re-run) is returned *)
  let m2 = open_manifest ~path ~key:"quick" in
  (match Harness.Manifest.find m2 "table1" with
  | Some entry ->
    Harness.Manifest.record m2
      { entry with
        Harness.Manifest.ent_outcome =
          { entry.Harness.Manifest.ent_outcome with
            Harness.Experiment.title = "FROM-MANIFEST" } }
  | None -> Alcotest.fail "entry missing after first run");
  Harness.Manifest.close m2;
  let m3 = open_manifest ~path ~key:"quick" in
  let second = Harness.Report.run_list_classified ~manifest:m3 ctx [ e ] in
  Harness.Manifest.close m3;
  (match (first, second) with
  | [ a ], [ b ] ->
    Alcotest.(check bool) "first run executed (not from manifest)" false
      (a.Harness.Report.outcome.Harness.Experiment.title = "FROM-MANIFEST");
    Alcotest.(check string) "second run reused the manifest entry"
      "FROM-MANIFEST" b.Harness.Report.outcome.Harness.Experiment.title
  | _ -> Alcotest.fail "unexpected result shape")

let tests =
  ( "ckpt",
    [ Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
      Alcotest.test_case "encode/decode round trip" `Quick test_roundtrip;
      Alcotest.test_case "pre-counters checkpoints decode" `Quick
        test_decode_without_counters_section;
      Alcotest.test_case "blit encoder matches portable" `Quick
        test_blit_matches_portable;
      Alcotest.test_case "rng gaussian cache resumes" `Quick
        test_rng_state_resumes_gaussian_cache;
      Alcotest.test_case "corrupt byte rejected" `Quick
        test_corrupt_byte_rejected;
      Alcotest.test_case "truncated rejected" `Quick test_truncated_rejected;
      Alcotest.test_case "wrong schema rejected" `Quick
        test_wrong_schema_rejected;
      Alcotest.test_case "gc keeps K generations" `Quick test_gc_keeps_k;
      Alcotest.test_case "load_latest falls back past corruption" `Quick
        test_load_latest_falls_back;
      Alcotest.test_case "load_latest empty dir" `Quick
        test_load_latest_empty_dir;
      Alcotest.test_case "kill+resume bitwise (domains 1)" `Quick
        test_kill_resume_domains1;
      Alcotest.test_case "kill+resume bitwise (domains 4)" `Quick
        test_kill_resume_domains4;
      Alcotest.test_case "kill+resume bitwise (pairlist active)" `Slow
        test_kill_resume_pairlist;
      Alcotest.test_case "kill+resume with fault plan (cell)" `Quick
        test_kill_resume_cell_with_faults;
      Alcotest.test_case "resume of completed checkpoint" `Quick
        test_resume_completed_checkpoint;
      Alcotest.test_case "guard restores silent corruption" `Quick
        test_guard_restores_silent_corruption;
      Alcotest.test_case "guard escalates persistent corruption" `Quick
        test_guard_escalates_persistent_corruption;
      Alcotest.test_case "runner suspends on persistent violation" `Quick
        test_runner_suspends_on_persistent_violation;
      Alcotest.test_case "runner deadline suspends durably" `Quick
        test_runner_deadline_suspends;
      Alcotest.test_case "report deadline classifies degraded" `Quick
        test_report_deadline_classifies_degraded;
      Alcotest.test_case "manifest round trip and reuse" `Quick
        test_manifest_roundtrip_and_reuse;
      Alcotest.test_case "manifest rejects wrong key / corruption" `Quick
        test_manifest_rejects_wrong_key_and_corruption;
      Alcotest.test_case "manifest second writer rejected" `Quick
        test_manifest_second_writer_rejected;
      Alcotest.test_case "manifest resume skips finished" `Quick
        test_manifest_resume_skips_finished ] )
