(* Streaming telemetry (lib/tel): JSONL schema validity, virtual-clock
   byte-identity across --domains and across kill-and-resume, interval
   delta/cumulative consistency, Mdprof capture/restore, threshold
   alerts, and the report-diff regression gate. *)

module Runner = Mdckpt.Runner
module System = Mdcore.System
module Verlet = Mdcore.Verlet
module Minijson = Sim_util.Minijson

let tmp_counter = ref 0

let fresh_path () =
  incr tmp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mdsim-tel-test-%d-%d.jsonl" (Unix.getpid ()) !tmp_counter)

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mdsim-tel-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let tel_config ?(every = 3) ?(total = 0) ?(resume = false) path =
  { Mdtel.tel_path = Some path;
    tel_every = every;
    tel_total_steps = total;
    tel_progress = false;
    tel_deadline = None;
    tel_stall_s = Mdtel.default_stall_s;
    tel_resume = resume }

let cfg ?(atoms = 128) ?(steps = 12) ?(every = 4) ~dir () =
  { Runner.cfg_device = Runner.Opteron;
    cfg_atoms = atoms;
    cfg_steps = steps;
    cfg_seed = 11;
    cfg_density = 0.8;
    cfg_temperature = 1.0;
    cfg_force_path = Mdports.Force_path.default;
    cfg_every = every;
    cfg_keep = 8;
    cfg_dir = dir }

let complete = function
  | Runner.Complete r -> r
  | Runner.Suspended s ->
    Alcotest.failf "expected completion, suspended at %d/%d: %s"
      s.Runner.sus_completed s.Runner.sus_total s.Runner.sus_reason

(* Fresh global observation state, telemetry to [path], run [f], tear
   everything down again (telemetry installed, registry cleared before
   and profiling left off after). *)
let with_telemetry ?every ?resume path f =
  Mdfault.set_guard_restores 0;
  Mdprof.clear ();
  Mdtel.install (tel_config ?every ?resume path);
  Fun.protect ~finally:Mdtel.uninstall (fun () ->
      let r = f () in
      Mdtel.finish ();
      r)

let lines content =
  String.split_on_char '\n' content
  |> List.filter (fun l -> String.trim l <> "")

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_stream_schema () =
  let path = fresh_path () in
  ignore
    (with_telemetry path (fun () ->
         complete (Runner.run (cfg ~dir:(fresh_dir ()) ()))));
  let ls = lines (read_file path) in
  Alcotest.(check bool) "has samples" true (List.length ls >= 3);
  let prev_step = ref (-1) in
  List.iter
    (fun line ->
      let j =
        match Minijson.parse line with
        | j -> j
        | exception Minijson.Parse_error msg ->
          Alcotest.failf "unparseable record %s: %s" line msg
      in
      let str k = Option.bind (Minijson.member k j) Minijson.to_string in
      Alcotest.(check (option string)) "schema" (Some Mdtel.schema)
        (str "schema");
      let step =
        match Option.bind (Minijson.member "step" j) Minijson.to_float with
        | Some s -> int_of_float s
        | None -> Alcotest.failf "record without step: %s" line
      in
      (match str "type" with
      | Some "sample" ->
        Alcotest.(check bool) "samples monotonic in step" true
          (step > !prev_step);
        prev_step := step;
        List.iter
          (fun field ->
            if Minijson.member field j = None then
              Alcotest.failf "sample lacks %S: %s" field line)
          [ "sim_time"; "energy"; "momentum"; "faults"; "guard_restores";
            "rebuilds"; "counters"; "derived"; "host" ]
      | Some "alert" ->
        Alcotest.(check bool) "alert has clock" true
          (str "clock" = Some "virtual" || str "clock" = Some "host")
      | other ->
        Alcotest.failf "unknown record type %s"
          (Option.value other ~default:"<none>"));
      (* the host object is textually the last field, so the virtual
         projection can strip it without parsing *)
      match str "type" with
      | Some "sample" ->
        let marker = ",\"host\":{" in
        let has_marker =
          let n = String.length marker and m = String.length line in
          let rec go i =
            i + n <= m && (String.sub line i n = marker || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "host object present and trailing" true
          (has_marker && String.length line >= 2
          && String.sub line (String.length line - 2) 2 = "}}")
      | _ -> ())
    ls;
  Alcotest.(check int) "final sample lands on the final step" 12 !prev_step;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Determinism across --domains and across kill-and-resume             *)
(* ------------------------------------------------------------------ *)

let stream_with_domains ~domains path =
  Mdpar.set_default_domains domains;
  ignore
    (with_telemetry path (fun () ->
         complete (Runner.run (cfg ~dir:(fresh_dir ()) ()))));
  Mdtel.virtual_projection (read_file path)

let test_domains_byte_identity () =
  let saved = Mdpar.default_domains () in
  Fun.protect
    ~finally:(fun () -> Mdpar.set_default_domains saved)
    (fun () ->
      let p1 = fresh_path () and p4 = fresh_path () in
      let v1 = stream_with_domains ~domains:1 p1 in
      let v4 = stream_with_domains ~domains:4 p4 in
      Alcotest.(check bool) "projection non-empty" true
        (String.length v1 > 0);
      Alcotest.(check string) "virtual projection byte-identical" v1 v4;
      Sys.remove p1;
      Sys.remove p4)

let test_resume_stream_continuity () =
  (* Uninterrupted reference. *)
  let ref_path = fresh_path () in
  ignore
    (with_telemetry ~every:5 ref_path (fun () ->
         complete (Runner.run (cfg ~dir:(fresh_dir ()) ()))));
  (* Killed run: suspend after 2 of 3 segments — the stream ends at the
     last durable boundary, like SIGKILL (buffered records die with the
     process; uninstall, not finish, mimics that). *)
  let kill_path = fresh_path () in
  let dir = fresh_dir () in
  Mdfault.set_guard_restores 0;
  Mdprof.clear ();
  Mdtel.install (tel_config ~every:5 kill_path);
  (match Runner.run ~abort_after_segments:2 (cfg ~dir ()) with
  | Runner.Suspended s ->
    Alcotest.(check int) "suspended mid-run" 8 s.Runner.sus_completed
  | Runner.Complete _ -> Alcotest.fail "expected suspension");
  Mdtel.uninstall ();
  (* New process: fresh registry, telemetry in resume mode, resume. *)
  Mdprof.clear ();
  Mdtel.install (tel_config ~every:5 ~resume:true kill_path);
  Fun.protect ~finally:Mdtel.uninstall (fun () ->
      (match Runner.resume dir with
      | Ok o -> ignore (complete o)
      | Error msg -> Alcotest.failf "resume failed: %s" msg);
      Mdtel.finish ());
  let v_ref = Mdtel.virtual_projection (read_file ref_path) in
  let v_kill = Mdtel.virtual_projection (read_file kill_path) in
  Alcotest.(check string) "resumed stream virtually byte-identical" v_ref
    v_kill;
  Sys.remove ref_path;
  Sys.remove kill_path

(* ------------------------------------------------------------------ *)
(* Interval deltas                                                     *)
(* ------------------------------------------------------------------ *)

let sum_stream_deltas content =
  let totals : (string, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun line ->
      let j = Minijson.parse line in
      if Option.bind (Minijson.member "type" j) Minijson.to_string
         = Some "sample"
      then
        match Option.bind (Minijson.member "counters" j) Minijson.to_obj with
        | Some fields ->
          List.iter
            (fun (name, v) ->
              match Minijson.to_float v with
              | Some x ->
                Hashtbl.replace totals name
                  (x
                  +. Option.value ~default:0.0 (Hashtbl.find_opt totals name))
              | None -> ())
            fields
        | None -> ())
    (lines content);
  totals

let test_deltas_sum_to_cumulative () =
  let path = fresh_path () in
  ignore
    (with_telemetry ~every:5 path (fun () ->
         complete (Runner.run (cfg ~dir:(fresh_dir ()) ()))));
  let sums = sum_stream_deltas (read_file path) in
  (* Registry still holds the run's cumulative totals (uninstall turns
     recording off but keeps values). *)
  let checked = ref 0 in
  List.iter
    (fun (s : Mdprof.sample) ->
      if s.Mdprof.s_clock = Mdprof.Virtual then
        match s.Mdprof.s_kind with
        | Mdprof.Counter when s.Mdprof.s_value > 0.0 ->
          incr checked;
          let streamed =
            Option.value ~default:0.0 (Hashtbl.find_opt sums s.Mdprof.s_name)
          in
          Alcotest.(check (float 1e-9))
            (s.Mdprof.s_name ^ " deltas sum to cumulative")
            s.Mdprof.s_value streamed
        | Mdprof.Histogram when s.Mdprof.s_observations > 0 ->
          incr checked;
          let streamed =
            Option.value ~default:0.0
              (Hashtbl.find_opt sums (s.Mdprof.s_name ^ "/observations"))
          in
          Alcotest.(check (float 1e-9))
            (s.Mdprof.s_name ^ " observation deltas sum")
            (float_of_int s.Mdprof.s_observations)
            streamed
        | _ -> ())
    (Mdprof.samples ());
  Alcotest.(check bool) "checked a real set of instruments" true
    (!checked >= 5);
  Sys.remove path

let test_interval_reads () =
  Mdprof.clear ();
  Mdprof.enable ();
  Fun.protect ~finally:Mdprof.clear (fun () ->
      let c = Mdprof.counter ~clock:Mdprof.Virtual "tel-test/ops" in
      Mdprof.add c 5;
      let iv = Mdprof.Interval.create () in
      Mdprof.add c 3;
      (match Mdprof.Interval.read iv with
      | [ s ] ->
        Alcotest.(check string) "name" "tel-test/ops" s.Mdprof.s_name;
        Alcotest.(check (float 0.0)) "delta excludes pre-baseline" 3.0
          s.Mdprof.s_value
      | other ->
        Alcotest.failf "expected one delta sample, got %d"
          (List.length other));
      Alcotest.(check int) "idle interval reads empty" 0
        (List.length (Mdprof.Interval.read iv));
      Mdprof.add c 2;
      (match Mdprof.Interval.read iv with
      | [ s ] -> Alcotest.(check (float 0.0)) "next delta" 2.0 s.Mdprof.s_value
      | other ->
        Alcotest.failf "expected one delta sample, got %d"
          (List.length other));
      match Mdprof.find "tel-test/ops" with
      | Some s ->
        Alcotest.(check (float 0.0)) "cumulative untouched" 10.0
          s.Mdprof.s_value
      | None -> Alcotest.fail "cumulative sample vanished")

let test_capture_restore_roundtrip () =
  Mdprof.clear ();
  Mdprof.enable ();
  Fun.protect ~finally:Mdprof.clear (fun () ->
      let c = Mdprof.counter ~clock:Mdprof.Virtual "tel-test/restore" in
      Mdprof.add c 7;
      let h =
        Mdprof.histogram ~clock:Mdprof.Virtual ~buckets:[| 1.0; 4.0 |]
          "tel-test/hist"
      in
      Mdprof.observe h 0.5;
      Mdprof.observe h 9.0;
      let before = Mdprof.samples () in
      let cells =
        match Mdprof.capture_cells () with
        | Some cells -> cells
        | None -> Alcotest.fail "capture returned None while enabled"
      in
      Mdprof.clear ();
      Alcotest.(check int) "registry empty after clear" 0
        (List.length (Mdprof.samples ()));
      Mdprof.restore_cells cells;
      Alcotest.(check bool) "restore re-enables recording" true
        (Mdprof.enabled ());
      Alcotest.(check bool) "samples restored bitwise" true
        (Mdprof.samples () = before);
      (* restored cells are live, not inert snapshots *)
      let c' = Mdprof.counter ~clock:Mdprof.Virtual "tel-test/restore" in
      Mdprof.add c' 1;
      match Mdprof.find "tel-test/restore" with
      | Some s -> Alcotest.(check (float 0.0)) "accumulates" 8.0 s.Mdprof.s_value
      | None -> Alcotest.fail "restored counter vanished")

(* ------------------------------------------------------------------ *)
(* Alerts                                                              *)
(* ------------------------------------------------------------------ *)

let test_guard_violation_emits_alert () =
  let path = fresh_path () in
  ignore
    (with_telemetry ~every:2 path (fun () ->
         let s = Mdcore.Init.build ~seed:21 ~n:128 () in
         let calls = ref 0 in
         let engine =
           Mdcore.Engine.make ~name:"corrupting" ~compute:(fun s ->
               let pe = Mdcore.Forces.gather_engine.Mdcore.Engine.compute s in
               incr calls;
               if !calls = 4 then s.System.acc_x.{0} <- Float.nan;
               pe)
         in
         Verlet.run s ~engine ~steps:6 ~guard:Verlet.default_guard ()));
  let alerts =
    List.filter_map
      (fun line ->
        let j = Minijson.parse line in
        if Option.bind (Minijson.member "type" j) Minijson.to_string
           = Some "alert"
        then Option.bind (Minijson.member "kind" j) Minijson.to_string
        else None)
      (lines (read_file path))
  in
  Alcotest.(check bool) "healed violation still recorded" true
    (List.mem "non_finite" alerts);
  (* virtual-clock alerts survive the deterministic projection *)
  let v = Mdtel.virtual_projection (read_file path) in
  Alcotest.(check bool) "alert survives virtual projection" true
    (List.exists
       (fun l ->
         match Minijson.parse l with
         | j ->
           Option.bind (Minijson.member "type" j) Minijson.to_string
           = Some "alert"
         | exception Minijson.Parse_error _ -> false)
       (lines v));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* report diff                                                         *)
(* ------------------------------------------------------------------ *)

let sample_line ~step ~counters =
  Printf.sprintf
    "{\"schema\":\"%s\",\"type\":\"sample\",\"step\":%d,\"sim_time\":0,\"energy\":{\"pe\":0,\"ke\":0,\"total\":0,\"temperature\":0},\"momentum\":[0,0,0],\"faults\":{\"injected\":0,\"recovered\":0},\"guard_restores\":0,\"rebuilds\":0,\"counters\":{%s},\"derived\":{},\"host\":{\"unix\":0,\"elapsed_s\":0,\"steps_per_s\":0}}"
    Mdtel.schema step counters

let test_report_diff_gates_regressions () =
  let baseline =
    sample_line ~step:0 ~counters:"\"work/ops\":10,\"work/bytes\":100"
    ^ "\n"
    ^ sample_line ~step:5 ~counters:"\"work/ops\":10,\"work/bytes\":100"
    ^ "\n"
  in
  let same = Mdtel.diff ~baseline ~candidate:baseline () in
  Alcotest.(check bool) "identical streams pass" false
    same.Sim_util.Bench_check.failed;
  let slower =
    sample_line ~step:0 ~counters:"\"work/ops\":10,\"work/bytes\":100"
    ^ "\n"
    ^ sample_line ~step:5 ~counters:"\"work/ops\":40,\"work/bytes\":100"
    ^ "\n"
  in
  let out = Mdtel.diff ~baseline ~candidate:slower () in
  Alcotest.(check bool) "inflated counter fails the gate" true
    out.Sim_util.Bench_check.failed;
  (* a generous tolerance admits the same candidate *)
  let loose = Mdtel.diff ~tolerance:9.0 ~baseline ~candidate:slower () in
  Alcotest.(check bool) "within tolerance passes" false
    loose.Sim_util.Bench_check.failed

let test_metric_rows_reads_counter_exports () =
  let export =
    "{\"schema\":\"mdsim-counters-v1\",\n\"counters\":[\n{\"name\":\"a/ops\",\"clock\":\"virtual\",\"kind\":\"counter\",\"value\":42},\n{\"name\":\"a/lat\",\"clock\":\"virtual\",\"kind\":\"histogram\",\"observations\":3,\"sum\":12.5}],\n\"derived\":[{\"name\":\"a/bw\",\"value\":2.5,\"unit\":\"MB/s\"}]}"
  in
  let rows = Mdtel.metric_rows export in
  let get n = List.assoc_opt n rows in
  Alcotest.(check (option (float 0.0))) "counter value" (Some 42.0)
    (get "a/ops");
  Alcotest.(check (option (float 0.0))) "histogram observations" (Some 3.0)
    (get "a/lat/observations");
  Alcotest.(check (option (float 0.0))) "histogram sum" (Some 12.5)
    (get "a/lat/sum");
  Alcotest.(check (option (float 0.0))) "derived metric" (Some 2.5)
    (get "derived/a/bw")

let contains_sub hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_tail_renders_and_skips_torn_lines () =
  let content =
    sample_line ~step:0 ~counters:"\"work/ops\":10"
    ^ "\n"
    ^ sample_line ~step:5 ~counters:"\"work/ops\":10"
    ^ "\n{\"schema\":\"mdsim-telemetry-v1\",\"type\":\"sample\",\"step\":10,\"trunca"
  in
  let rendered = Mdtel.render_tail content in
  Alcotest.(check bool) "mentions both intact samples" true
    (contains_sub rendered "2 samples");
  Alcotest.(check bool) "torn tail skipped, steps reported" true
    (contains_sub rendered "steps 0..5")

let tests =
  ( "tel",
    [ Alcotest.test_case "stream schema" `Quick test_stream_schema;
      Alcotest.test_case "domains byte-identity" `Quick
        test_domains_byte_identity;
      Alcotest.test_case "resume stream continuity" `Quick
        test_resume_stream_continuity;
      Alcotest.test_case "deltas sum to cumulative" `Quick
        test_deltas_sum_to_cumulative;
      Alcotest.test_case "interval reads" `Quick test_interval_reads;
      Alcotest.test_case "capture/restore roundtrip" `Quick
        test_capture_restore_roundtrip;
      Alcotest.test_case "guard violation emits alert" `Quick
        test_guard_violation_emits_alert;
      Alcotest.test_case "report diff gates regressions" `Quick
        test_report_diff_gates_regressions;
      Alcotest.test_case "metric rows read counter exports" `Quick
        test_metric_rows_reads_counter_exports;
      Alcotest.test_case "tail renders torn streams" `Quick
        test_tail_renders_and_skips_torn_lines ] )
