(* Tests for the sim_util library: PRNG, f32 emulation, statistics,
   tables, units. *)

module Rng = Sim_util.Rng
module F32 = Sim_util.F32
module Stats = Sim_util.Stats
module Table = Sim_util.Table
module Units = Sim_util.Units

let check_float = Alcotest.(check (float 1e-12))

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_copy_replays () =
  let a = Rng.create 99 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split differs from parent" false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float r in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %g" x
  done

let test_rng_int_below_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.int_below r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int_below out of range: %d" v
  done

let test_rng_int_below_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument
    "Rng.int_below: bound must be positive")
    (fun () -> ignore (Rng.int_below r 0))

let test_rng_rejection_limit () =
  (* Small-range shim where the bound's exactness is visible by eye:
     in a 16-value range with n = 6, only draws below 12 may be kept —
     each residue then appears exactly twice.  An inclusive bound
     computed from range-1 would accept 13 values (residue 0 thrice). *)
  Alcotest.(check int64) "16/6" 12L (Rng.rejection_limit ~range:16L 6L);
  Alcotest.(check int64) "16/5" 15L (Rng.rejection_limit ~range:16L 5L);
  Alcotest.(check int64) "16/4 exact divisor" 16L
    (Rng.rejection_limit ~range:16L 4L);
  let lim = Rng.rejection_limit ~range:16L 6L in
  let counts = Array.make 6 0 in
  for raw = 0 to 15 do
    if Int64.of_int raw < lim then begin
      let r = raw mod 6 in
      counts.(r) <- counts.(r) + 1
    end
  done;
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "residue %d" i) 2 c)
    counts

let test_rng_rejection_limit_production_range () =
  (* The bound used by int_below (range 2^62) must be an exact multiple
     of n lying within n of the range end, for any n. *)
  let range = 0x4000_0000_0000_0000L in
  List.iter
    (fun n ->
      let n64 = Int64.of_int n in
      let lim = Rng.rejection_limit ~range n64 in
      Alcotest.(check int64)
        (Printf.sprintf "multiple of %d" n)
        0L (Int64.rem lim n64);
      let slack = Int64.sub range lim in
      Alcotest.(check bool)
        (Printf.sprintf "within %d of range" n)
        true
        (slack >= 0L && slack < n64))
    [ 1; 2; 3; 6; 7; 1000; (1 lsl 20) + 1 ]

let test_rng_gaussian_moments () =
  let r = Rng.create 17 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian r) in
  let mean = Stats.mean xs and var = Stats.variance xs in
  Alcotest.(check bool) "mean near 0" true (abs_float mean < 0.02);
  Alcotest.(check bool) "variance near 1" true (abs_float (var -. 1.0) < 0.05)

let test_rng_shuffle_permutation () =
  let r = Rng.create 23 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle_in_place r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 50 Fun.id) sorted

let rng_uniform_prop =
  QCheck.Test.make ~name:"uniform stays in [lo, hi)" ~count:500
    QCheck.(pair (float_range (-100.) 100.) (float_range 0.001 100.))
    (fun (lo, width) ->
      let r = Rng.create 1 in
      let hi = lo +. width in
      let x = Rng.uniform r lo hi in
      x >= lo && x < hi)

(* ---------------- F32 ---------------- *)

let test_f32_idempotent () =
  List.iter
    (fun x -> check_float "round is idempotent" (F32.round x)
        (F32.round (F32.round x)))
    [ 1.0; 0.1; -3.7; 1e-30; 1e30; Float.pi ]

let test_f32_exact_small_ints () =
  for i = -100 to 100 do
    check_float "small ints exact" (float_of_int i)
      (F32.round (float_of_int i))
  done

let test_f32_loses_precision () =
  (* 1 + 2^-24 is not representable in binary32. *)
  check_float "below-epsilon increment rounds away" 1.0
    (F32.round (1.0 +. 5.0e-8))

let test_f32_ops_rounded () =
  let a = 0.1 and b = 0.2 in
  Alcotest.(check bool) "add result representable" true
    (F32.is_f32 (F32.add a b));
  Alcotest.(check bool) "mul result representable" true
    (F32.is_f32 (F32.mul a b));
  Alcotest.(check bool) "div result representable" true
    (F32.is_f32 (F32.div a b));
  Alcotest.(check bool) "sqrt result representable" true
    (F32.is_f32 (F32.sqrt a))

let test_f32_copysign () =
  check_float "copysign magnitude" (-2.5) (F32.copysign 2.5 (-1.0));
  check_float "copysign positive" 2.5 (F32.copysign (-2.5) 3.0)

let test_f32_overflow_to_inf () =
  Alcotest.(check bool) "binary32 overflow" true
    (Float.is_integer (F32.round 1e39) = false || F32.round 1e39 = infinity);
  Alcotest.(check bool) "max_finite is finite" true
    (Float.is_finite F32.max_finite)

let test_f32_recip_accuracy () =
  List.iter
    (fun x ->
      let e = F32.recip_est x in
      let rel = abs_float ((e -. (1.0 /. x)) *. x) in
      if rel > 1e-4 then Alcotest.failf "recip_est too inaccurate at %g" x)
    [ 1.0; 2.0; 3.14159; 0.125; 100.0 ]

let test_f32_rsqrt_accuracy () =
  List.iter
    (fun x ->
      let e = F32.rsqrt_est x in
      let rel = abs_float ((e -. (1.0 /. sqrt x)) *. sqrt x) in
      if rel > 1e-4 then Alcotest.failf "rsqrt_est too inaccurate at %g" x)
    [ 1.0; 2.0; 6.25; 0.5; 1000.0 ]

let f32_round_monotone_prop =
  QCheck.Test.make ~name:"f32 rounding is monotone" ~count:1000
    QCheck.(pair (float_range (-1e30) 1e30) (float_range (-1e30) 1e30))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      F32.round lo <= F32.round hi)

let f32_round_error_prop =
  QCheck.Test.make ~name:"relative rounding error < 2^-23" ~count:1000
    (QCheck.float_range 1e-20 1e20)
    (fun x -> abs_float (F32.round x -. x) <= abs_float x *. F32.epsilon)

(* ---------------- Stats ---------------- *)

let test_stats_mean_var () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stats.mean xs);
  check_float "variance" (32.0 /. 7.0) (Stats.variance xs)

let test_stats_minmax () =
  let xs = [| 3.0; -1.0; 4.0 |] in
  check_float "min" (-1.0) (Stats.minimum xs);
  check_float "max" 4.0 (Stats.maximum xs)

let test_stats_median () =
  check_float "odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  check_float "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  check_float "p0" 0.0 (Stats.percentile xs 0.0);
  check_float "p100" 100.0 (Stats.percentile xs 100.0);
  check_float "p50" 50.0 (Stats.percentile xs 50.0)

let test_stats_regression () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = Array.map (fun v -> (3.0 *. v) +. 1.0) x in
  let fit = Stats.linear_regression ~x ~y in
  check_float "slope" 3.0 fit.Stats.slope;
  check_float "intercept" 1.0 fit.Stats.intercept;
  check_float "r2" 1.0 fit.Stats.r2

let test_stats_power_law () =
  let x = [| 1.0; 2.0; 4.0; 8.0 |] in
  let y = Array.map (fun v -> 2.0 *. (v ** 2.0)) x in
  Alcotest.(check (float 1e-9)) "exponent 2"
    2.0 (Stats.power_law_exponent ~x ~y)

let test_stats_geometric_mean () =
  check_float "geomean" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |])

let test_stats_empty_raises () =
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

(* ---------------- Table ---------------- *)

let test_table_render () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  Alcotest.(check int) "row count" 2 (Table.row_count t)

let test_table_bad_row () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.(check bool) "wrong arity raises" true
    (try
       Table.add_row t [ "only-one" ];
       false
     with Invalid_argument _ -> true)

let test_table_csv_quoting () =
  let t = Table.create ~headers:[ "h" ] in
  Table.add_row t [ "a,b\"c" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "quoted cell" true
    (String.length csv > 0
    && String.concat "" [ "h\n\"a,b\"\"c\"\n" ] = csv)

let test_table_fmt_seconds () =
  Alcotest.(check string) "ms" "45.000 ms" (Table.fmt_seconds 0.045);
  Alcotest.(check string) "s" "1.234 s" (Table.fmt_seconds 1.234)

(* ---------------- Chart ---------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_chart_bar () =
  let out = Sim_util.Chart.bar ~width:10 [ ("a", 1.0); ("bb", 2.0) ] in
  Alcotest.(check bool) "max bar fills width" true
    (contains ~needle:(String.make 10 '#') out);
  Alcotest.(check bool) "half bar" true (contains ~needle:(String.make 5 '#') out);
  Alcotest.(check bool) "labels aligned" true (contains ~needle:"bb" out)

let test_chart_bar_validation () =
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Sim_util.Chart.bar [ ("x", -1.0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Sim_util.Chart.bar []);
       false
     with Invalid_argument _ -> true)

let test_chart_plot () =
  let out =
    Sim_util.Chart.plot ~rows:8 ~cols:20
      [ { Sim_util.Chart.name = "one"; points = [ (1.0, 1.0); (2.0, 2.0) ] };
        { Sim_util.Chart.name = "two"; points = [ (1.0, 2.0) ] } ]
  in
  Alcotest.(check bool) "marks present" true
    (contains ~needle:"a" out && contains ~needle:"b" out);
  Alcotest.(check bool) "legend present" true
    (contains ~needle:"a = one" out)

let test_chart_plot_log_validation () =
  Alcotest.(check bool) "nonpositive under log rejected" true
    (try
       ignore
         (Sim_util.Chart.plot ~logy:true
            [ { Sim_util.Chart.name = "bad"; points = [ (1.0, 0.0) ] } ]);
       false
     with Invalid_argument _ -> true)

let test_chart_plot_overlap_star () =
  let out =
    Sim_util.Chart.plot ~rows:4 ~cols:8
      [ { Sim_util.Chart.name = "one"; points = [ (0.0, 0.0); (1.0, 1.0) ] };
        { Sim_util.Chart.name = "two"; points = [ (0.0, 0.0); (1.0, 0.0) ] } ]
  in
  Alcotest.(check bool) "overlapping points become *" true
    (contains ~needle:"*" out)

(* ---------------- Units ---------------- *)

let test_units_roundtrip () =
  let c = Units.clock ~hz:2.2e9 ~label:"test" in
  check_float "cycles->s->cycles" 1234.0
    (Units.cycles_of_seconds c (Units.seconds_of_cycles c 1234.0))

let test_units_transfer () =
  check_float "latency only" 1e-6
    (Units.transfer_seconds ~bytes:0 ~bandwidth:1e9 ~latency:1e-6);
  check_float "bandwidth term" (1e-6 +. 1e-3)
    (Units.transfer_seconds ~bytes:1_000_000 ~bandwidth:1e9 ~latency:1e-6)

let test_units_validation () =
  Alcotest.(check bool) "zero hz rejected" true
    (try
       ignore (Units.clock ~hz:0.0 ~label:"bad");
       false
     with Invalid_argument _ -> true)

let test_units_sizes () =
  Alcotest.(check int) "kib" 262144 (Units.kib 256);
  Alcotest.(check int) "mib" 1048576 (Units.mib 1)

let test_stats_sorted_copy_total_order () =
  let xs = [| 3.5; 0.0; -0.0; -1.25; 2.0 |] in
  let s = Stats.sorted_copy xs in
  Alcotest.(check (array (float 0.0))) "ascending"
    [| -1.25; -0.0; 0.0; 2.0; 3.5 |] s;
  (* Float.compare's total order puts -0. strictly before 0. — the
     deterministic behavior the sort specialization relies on. *)
  Alcotest.(check bool) "-0. first" true (1.0 /. s.(1) < 0.0);
  Alcotest.(check bool) "+0. second" true (1.0 /. s.(2) > 0.0);
  Alcotest.(check (array (float 0.0))) "input untouched"
    [| 3.5; 0.0; -0.0; -1.25; 2.0 |] xs

let qcheck t = QCheck_alcotest.to_alcotest t

let tests =
  ( "util",
    [ Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seed sensitivity" `Quick
        test_rng_seed_sensitivity;
      Alcotest.test_case "rng copy" `Quick test_rng_copy_replays;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      Alcotest.test_case "rng float range" `Quick test_rng_float_range;
      Alcotest.test_case "rng int_below bounds" `Quick
        test_rng_int_below_bounds;
      Alcotest.test_case "rng int_below invalid" `Quick
        test_rng_int_below_invalid;
      Alcotest.test_case "rng rejection limit" `Quick
        test_rng_rejection_limit;
      Alcotest.test_case "rng rejection limit 2^62" `Quick
        test_rng_rejection_limit_production_range;
      Alcotest.test_case "rng gaussian moments" `Slow
        test_rng_gaussian_moments;
      Alcotest.test_case "rng shuffle permutation" `Quick
        test_rng_shuffle_permutation;
      qcheck rng_uniform_prop;
      Alcotest.test_case "f32 idempotent" `Quick test_f32_idempotent;
      Alcotest.test_case "f32 small ints exact" `Quick
        test_f32_exact_small_ints;
      Alcotest.test_case "f32 loses precision" `Quick test_f32_loses_precision;
      Alcotest.test_case "f32 ops rounded" `Quick test_f32_ops_rounded;
      Alcotest.test_case "f32 copysign" `Quick test_f32_copysign;
      Alcotest.test_case "f32 overflow" `Quick test_f32_overflow_to_inf;
      Alcotest.test_case "f32 recip accuracy" `Quick test_f32_recip_accuracy;
      Alcotest.test_case "f32 rsqrt accuracy" `Quick test_f32_rsqrt_accuracy;
      qcheck f32_round_monotone_prop;
      qcheck f32_round_error_prop;
      Alcotest.test_case "stats mean/var" `Quick test_stats_mean_var;
      Alcotest.test_case "stats min/max" `Quick test_stats_minmax;
      Alcotest.test_case "stats median" `Quick test_stats_median;
      Alcotest.test_case "stats sorted_copy total order" `Quick
        test_stats_sorted_copy_total_order;
      Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
      Alcotest.test_case "stats regression" `Quick test_stats_regression;
      Alcotest.test_case "stats power law" `Quick test_stats_power_law;
      Alcotest.test_case "stats geometric mean" `Quick
        test_stats_geometric_mean;
      Alcotest.test_case "stats empty raises" `Quick test_stats_empty_raises;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table bad row" `Quick test_table_bad_row;
      Alcotest.test_case "table csv quoting" `Quick test_table_csv_quoting;
      Alcotest.test_case "table fmt seconds" `Quick test_table_fmt_seconds;
      Alcotest.test_case "chart bar" `Quick test_chart_bar;
      Alcotest.test_case "chart bar validation" `Quick
        test_chart_bar_validation;
      Alcotest.test_case "chart plot" `Quick test_chart_plot;
      Alcotest.test_case "chart log validation" `Quick
        test_chart_plot_log_validation;
      Alcotest.test_case "chart overlap star" `Quick
        test_chart_plot_overlap_star;
      Alcotest.test_case "units roundtrip" `Quick test_units_roundtrip;
      Alcotest.test_case "units transfer" `Quick test_units_transfer;
      Alcotest.test_case "units validation" `Quick test_units_validation;
      Alcotest.test_case "units sizes" `Quick test_units_sizes ] )
