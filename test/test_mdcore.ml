(* Tests for the MD physics core: LJ potential, minimum image, system
   construction, force engines and the integrator. *)

module Params = Mdcore.Params
module System = Mdcore.System
module Min_image = Mdcore.Min_image
module Init = Mdcore.Init
module Forces = Mdcore.Forces
module Verlet = Mdcore.Verlet
module Observables = Mdcore.Observables
module Pairlist = Mdcore.Pairlist
module Cell_list = Mdcore.Cell_list
module Vec3 = Vecmath.Vec3

let p = Params.default

(* 128 atoms at density 0.8 is the smallest convenient size satisfying
   the minimum-image criterion (box ~ 5.43 > 2 * cutoff). *)
let small_system ?(n = 128) () = Init.build ~seed:7 ~n ()

(* ---------------- Params / LJ ---------------- *)

let test_lj_zero_at_sigma () =
  Alcotest.(check (float 1e-12)) "V(sigma) = 0" 0.0
    (Params.lj_potential p (p.Params.sigma *. p.Params.sigma))

let test_lj_minimum_depth () =
  let rmin = Params.lj_minimum p in
  Alcotest.(check (float 1e-12)) "V(rmin) = -epsilon" (-.p.Params.epsilon)
    (Params.lj_potential p (rmin *. rmin))

let test_lj_force_sign_change () =
  let rmin = Params.lj_minimum p in
  let inside = (0.9 *. rmin) ** 2.0 and outside = (1.1 *. rmin) ** 2.0 in
  Alcotest.(check bool) "repulsive inside rmin" true
    (Params.lj_force_over_r p inside > 0.0);
  Alcotest.(check bool) "attractive outside rmin" true
    (Params.lj_force_over_r p outside < 0.0)

let test_lj_force_zero_at_minimum () =
  let rmin2 = Params.lj_minimum p ** 2.0 in
  Alcotest.(check (float 1e-10)) "F(rmin) = 0" 0.0
    (Params.lj_force_over_r p rmin2)

let test_lj_force_is_gradient () =
  (* F(r) = -dV/dr, checked by central differences at several radii. *)
  List.iter
    (fun r ->
      let h = 1e-6 in
      let v_at x = Params.lj_potential p (x *. x) in
      let dvdr = (v_at (r +. h) -. v_at (r -. h)) /. (2.0 *. h) in
      let f = Params.lj_force_over_r p (r *. r) *. r in
      Alcotest.(check bool)
        (Printf.sprintf "gradient at r=%g" r)
        true
        (abs_float (f +. dvdr) <= 1e-4 *. (1.0 +. abs_float f)))
    [ 0.9; 1.0; 1.12; 1.5; 2.0; 2.4 ]

let test_params_validation () =
  Alcotest.(check bool) "negative dt rejected" true
    (try
       Params.validate { p with Params.dt = -1.0 };
       false
     with Invalid_argument _ -> true)

(* ---------------- Minimum image ---------------- *)

let test_min_image_range () =
  let box = 10.0 in
  List.iter
    (fun dx ->
      let d = Min_image.delta ~box dx in
      Alcotest.(check bool)
        (Printf.sprintf "delta(%g) in range" dx)
        true
        (d >= -.box /. 2.0 -. 1e-12 && d <= (box /. 2.0) +. 1e-12))
    [ 0.0; 4.9; 5.1; 9.9; -9.9; 15.0; -23.4 ]

let min_image_agreement_prop =
  QCheck.Test.make ~name:"closed form = search = branchless" ~count:1000
    QCheck.(pair (float_range 1.0 100.0) (float_range (-1.0) 1.0))
    (fun (box, frac) ->
      (* wrapped coordinates give differences in (-box, box) *)
      let dx = frac *. box *. 0.999 in
      let a = Min_image.delta ~box dx in
      let b = Min_image.delta_search ~box dx in
      let c = Min_image.delta_search_branchless ~box dx in
      abs_float (a -. b) < 1e-9 *. box && abs_float (a -. c) < 1e-9 *. box)

(* Regression: at |dx| = box/2 both periodic images are equidistant and
   the three variants used to disagree (the closed form flips the sign,
   the searched/branchless forms kept dx).  All three must resolve the
   tie identically — matching [delta]'s half-away-from-zero rounding —
   or the SPE ports' de-branched kernels diverge from the reference at
   exactly-boundary pairs. *)
let test_min_image_boundary_ties () =
  let box = 10.0 in
  let eps = 1e-9 in
  List.iter
    (fun dx ->
      let a = Min_image.delta ~box dx in
      let b = Min_image.delta_search ~box dx in
      let c = Min_image.delta_search_branchless ~box dx in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "search agrees at %g" dx)
        a b;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "branchless agrees at %g" dx)
        a c)
    [ box /. 2.0; -.box /. 2.0;
      (box /. 2.0) -. eps; (-.box /. 2.0) +. eps;
      (box /. 2.0) +. eps; (-.box /. 2.0) -. eps ];
  (* the tie itself resolves away from dx's sign, like Float.round *)
  Alcotest.(check (float 0.0)) "+box/2 maps to -box/2" (-.box /. 2.0)
    (Min_image.delta_search_branchless ~box (box /. 2.0));
  Alcotest.(check (float 0.0)) "-box/2 maps to +box/2" (box /. 2.0)
    (Min_image.delta_search ~box (-.box /. 2.0))

let test_wrap () =
  Alcotest.(check (float 1e-12)) "wrap positive" 2.0 (Min_image.wrap ~box:10.0 12.0);
  Alcotest.(check (float 1e-12)) "wrap negative" 8.0 (Min_image.wrap ~box:10.0 (-2.0));
  Alcotest.(check (float 1e-12)) "wrap inside" 3.0 (Min_image.wrap ~box:10.0 3.0)

let test_dist2_symmetry () =
  let box = 8.0 in
  let a = Vec3.make 0.5 7.5 4.0 and b = Vec3.make 7.5 0.5 4.2 in
  Alcotest.(check (float 1e-12)) "symmetric"
    (Min_image.dist2 ~box a b) (Min_image.dist2 ~box b a)

(* The documented contract is a half-open interval: wrap must return a
   value strictly below box for EVERY finite input, including the
   adversarial ones where Float.rem's tiny negative remainder makes
   [r +. box] round to box exactly. *)
let test_wrap_boundary_adversarial () =
  let check_one box x =
    let r = Min_image.wrap ~box x in
    let r' = System.wrap_coord box x in
    if not (r >= 0.0 && r < box) then
      Alcotest.failf "wrap ~box:%h %h = %h outside [0, box)" box x r;
    Alcotest.(check (float 0.0))
      (Printf.sprintf "System.wrap_coord agrees at %h" x)
      r r'
  in
  List.iter
    (fun box ->
      List.iter (check_one box)
        [ 0.0; -0.0; -1e-17; -1e-300; -4.9e-324;
          box; -.box; Float.pred box; -.Float.pred box; Float.succ box;
          2.0 *. box; -2.0 *. box;
          1e9 *. box; (-1e9 *. box) +. 0.3;
          (1e9 *. box) -. (box *. 1e-8) ])
    [ 1.0; 10.0; 0.1; 3.7 ]

(* Regression demonstration: the pre-fix formula (fold negative
   remainders up by one box, no clamp) really does return exactly [box]
   for a tiny negative input — the bug the clamp closes. *)
let test_wrap_old_path_returned_box () =
  let old_wrap ~box x =
    let r = Float.rem x box in
    if r < 0.0 then r +. box else r
  in
  Alcotest.(check (float 0.0)) "old path leaks box" 1.0
    (old_wrap ~box:1.0 (-1e-17));
  Alcotest.(check (float 0.0)) "fixed path clamps to 0" 0.0
    (Min_image.wrap ~box:1.0 (-1e-17))

(* Epsilon-tolerant cell sizing: a box that is an exact real multiple of
   the cell width must never lose a cell to the floating division
   landing one ulp under the integer.  The sweep also certifies that the
   naive [int_of_float (box /. width)] floor does fail on some widths —
   i.e. that the tolerance is load-bearing, not decorative. *)
let test_axis_cells_exact_multiples () =
  let naive_failures = ref 0 in
  for k = 1 to 2000 do
    let w = 0.1 +. (float_of_int k *. 1e-3) in
    let box = 3.0 *. w in
    if int_of_float (box /. w) < 3 then incr naive_failures;
    let m = Cell_list.axis_cells ~box ~width:w in
    if m <> 3 then
      Alcotest.failf "axis_cells ~box:(3 * %h) ~width:%h = %d (want 3)" w w m;
    (* A clearly-non-multiple box must not get rounded up. *)
    Alcotest.(check int)
      (Printf.sprintf "3.5 cells stays 3 at width %g" w)
      3
      (Cell_list.axis_cells ~box:(3.5 *. w) ~width:w)
  done;
  Alcotest.(check bool) "naive floor fails somewhere in the sweep" true
    (!naive_failures > 0);
  Alcotest.(check bool) "width validation" true
    (try
       ignore (Cell_list.axis_cells ~box:1.0 ~width:0.0);
       false
     with Invalid_argument _ -> true)

(* Atoms parked on the bin-index edges — exactly 0 and one ulp below box
   on each axis — must bin in range for both the cell-list engine and
   the pairlist's cell-binned build (runs with assertions enabled, so an
   out-of-range index would abort). *)
let test_binning_boundary_atoms () =
  let s = Init.build ~seed:11 ~n:1000 () in
  let edge = Float.pred s.System.box in
  s.System.pos_x.{0} <- 0.0; s.System.pos_y.{0} <- edge;
  s.System.pos_z.{0} <- 0.0;
  s.System.pos_x.{1} <- edge; s.System.pos_y.{1} <- edge;
  s.System.pos_z.{1} <- edge;
  s.System.pos_x.{2} <- System.wrap_coord s.System.box (-1e-17);
  let pe_cells = Cell_list.compute s in
  Alcotest.(check bool) "cell-list PE finite" true (Float.is_finite pe_cells);
  let pl = Pairlist.create s in
  Alcotest.(check bool) "pairlist uses cells" true (Pairlist.uses_cells pl);
  let pe_list = (Pairlist.engine pl).Mdcore.Engine.compute s in
  Alcotest.(check bool) "pairlist PE finite" true (Float.is_finite pe_list);
  (* Same positions, same physics: the two engines agree to roundoff
     (relative — the parked atoms can sit deep in the r^-12 wall). *)
  Alcotest.(check bool) "engines agree" true
    (abs_float (pe_cells -. pe_list) <= 1e-9 *. (1.0 +. abs_float pe_cells))

(* ---------------- System / Init ---------------- *)

let test_system_minimum_image_criterion () =
  Alcotest.(check bool) "small box rejected" true
    (try
       ignore (System.create ~n:10 ~box:4.0 ~params:p);
       false
     with Invalid_argument _ -> true)

let test_init_positions_in_box () =
  let s = small_system ~n:128 () in
  for i = 0 to s.System.n - 1 do
    let q = System.position s i in
    if q.Vec3.x < 0.0 || q.Vec3.x >= s.System.box
       || q.Vec3.y < 0.0 || q.Vec3.y >= s.System.box
       || q.Vec3.z < 0.0 || q.Vec3.z >= s.System.box
    then Alcotest.failf "atom %d outside box" i
  done

let test_init_density () =
  let s = Init.build ~n:125 ~density:0.8 () in
  Alcotest.(check (float 1e-9)) "density" 0.8 (System.density s)

let test_init_no_overlaps () =
  let s = small_system ~n:216 () in
  let worst = ref infinity in
  for i = 0 to s.System.n - 1 do
    for j = i + 1 to s.System.n - 1 do
      let d2 =
        Min_image.dist2 ~box:s.System.box (System.position s i)
          (System.position s j)
      in
      worst := min !worst d2
    done
  done;
  Alcotest.(check bool) "no catastrophic overlap" true (sqrt !worst > 0.5)

let test_init_zero_momentum () =
  let s = small_system ~n:128 () in
  let mom = Observables.total_momentum s in
  Alcotest.(check bool) "momentum removed" true (Vec3.norm mom < 1e-10)

let test_init_temperature () =
  let s = Init.build ~n:500 ~temperature:1.4 () in
  let t = Observables.temperature s in
  Alcotest.(check bool) "temperature near target" true
    (abs_float (t -. 1.4) < 0.15)

let test_init_deterministic () =
  let a = Init.build ~seed:3 ~n:128 () and b = Init.build ~seed:3 ~n:128 () in
  Alcotest.(check bool) "same seed same system" true
    (System.equal_positions a b)

let test_system_copy_independent () =
  let s = small_system () in
  let c = System.copy s in
  c.System.pos_x.{0} <- c.System.pos_x.{0} +. 1.0;
  Alcotest.(check bool) "copy does not alias" false
    (System.equal_positions s c)

(* ---------------- Forces ---------------- *)

let test_gather_matches_newton3 () =
  let s1 = small_system () in
  let s2 = System.copy s1 in
  let pe1 = Forces.compute_gather s1 in
  let pe2 = Forces.compute_newton3 s2 in
  Alcotest.(check bool) "PE agrees" true (abs_float (pe1 -. pe2) < 1e-9);
  Alcotest.(check bool) "accelerations agree" true
    (System.max_acceleration_delta s1 s2 < 1e-9)

let test_gather_counts_hits_symmetrically () =
  let s = small_system () in
  let _, hits = Forces.compute_gather_stats s in
  Alcotest.(check int) "hits double-counted (even)" 0 (hits mod 2)

let test_gather_searched_identical () =
  let s1 = small_system () in
  let s2 = System.copy s1 in
  let pe_closed = Forces.compute_gather s1 in
  let pe_search = Forces.compute_gather_searched s2 in
  Alcotest.(check (float 1e-12)) "identical PE" pe_closed pe_search;
  Alcotest.(check (float 1e-12)) "identical forces" 0.0
    (System.max_acceleration_delta s1 s2)

let test_gather_domains_identical () =
  let s1 = small_system ~n:216 () in
  let s2 = System.copy s1 in
  let s3 = System.copy s1 in
  let pe_serial = Forces.compute_gather s1 in
  let pe_par = Forces.compute_gather_domains ~domains:4 s2 in
  let pe_par1 = Forces.compute_gather_domains ~domains:1 s3 in
  let close a b = abs_float (a -. b) <= 1e-9 *. abs_float a in
  Alcotest.(check bool) "PE equal up to summation order (4 domains)" true
    (close pe_serial pe_par);
  Alcotest.(check bool) "PE equal up to summation order (1 domain)" true
    (close pe_serial pe_par1);
  Alcotest.(check bool) "deterministic across repeats" true
    (Forces.compute_gather_domains ~domains:4 (System.copy s1) = pe_par);
  Alcotest.(check (float 0.0)) "forces bit-identical" 0.0
    (System.max_acceleration_delta s1 s2)

let test_gather_domains_validation () =
  let s = small_system () in
  Alcotest.(check bool) "0 domains rejected" true
    (try
       ignore (Forces.compute_gather_domains ~domains:0 s);
       false
     with Invalid_argument _ -> true);
  (* More domains than atoms must still work (clamped). *)
  let tiny = System.create ~n:2 ~box:10.0 ~params:p in
  System.set_position tiny 0 (Vec3.make 1.0 5.0 5.0);
  System.set_position tiny 1 (Vec3.make 2.0 5.0 5.0);
  let pe = Forces.compute_gather_domains ~domains:16 tiny in
  let tiny2 = System.copy tiny in
  Alcotest.(check (float 1e-12)) "clamped domains correct"
    (Forces.compute_gather tiny2) pe

let test_forces_net_zero () =
  let s = small_system () in
  ignore (Forces.compute_gather s);
  let sum (axis : System.buf) =
    let acc = ref 0.0 in
    for i = 0 to Bigarray.Array1.dim axis - 1 do
      acc := !acc +. axis.{i}
    done;
    !acc
  in
  (* Newton's third law: total force (= mass * sum of accelerations)
     vanishes. *)
  Alcotest.(check bool) "net force ~ 0" true
    (abs_float (sum s.System.acc_x) < 1e-8
    && abs_float (sum s.System.acc_y) < 1e-8
    && abs_float (sum s.System.acc_z) < 1e-8)

let test_acceleration_on_matches_engine () =
  let s = small_system () in
  ignore (Forces.compute_gather s);
  let acc, _pe = Forces.acceleration_on s 5 in
  Alcotest.(check bool) "spot check" true
    (Vec3.equal ~eps:1e-10 acc (System.acceleration s 5))

let test_two_atom_force () =
  (* Two atoms at distance rmin along x: zero force; closer: repulsion. *)
  let params = { p with Params.cutoff = 2.5 } in
  let sys = System.create ~n:2 ~box:10.0 ~params in
  System.set_position sys 0 (Vec3.make 1.0 5.0 5.0);
  System.set_position sys 1 (Vec3.make 2.0 5.0 5.0);
  ignore (Forces.compute_gather sys);
  Alcotest.(check bool) "atoms at r=1 repel along x" true
    (sys.System.acc_x.{0} < 0.0 && sys.System.acc_x.{1} > 0.0);
  Alcotest.(check (float 1e-12)) "no y force" 0.0 sys.System.acc_y.{0}

let test_cutoff_respected () =
  let params = { p with Params.cutoff = 2.5 } in
  let sys = System.create ~n:2 ~box:10.0 ~params in
  System.set_position sys 0 (Vec3.make 1.0 5.0 5.0);
  System.set_position sys 1 (Vec3.make 4.0 5.0 5.0);
  let pe, hits = Forces.compute_gather_stats sys in
  Alcotest.(check int) "no interaction beyond cutoff" 0 hits;
  Alcotest.(check (float 1e-12)) "no PE" 0.0 pe

let test_periodic_interaction () =
  (* Atoms near opposite box faces interact through the boundary. *)
  let params = { p with Params.cutoff = 2.5 } in
  let sys = System.create ~n:2 ~box:10.0 ~params in
  System.set_position sys 0 (Vec3.make 0.5 5.0 5.0);
  System.set_position sys 1 (Vec3.make 9.5 5.0 5.0);
  let _, hits = Forces.compute_gather_stats sys in
  Alcotest.(check int) "periodic pair found" 2 hits

(* ---------------- Verlet ---------------- *)

let test_verlet_energy_conservation () =
  let s = Init.build ~seed:11 ~n:128
      ~params:{ p with Params.dt = 0.001 } ()
  in
  let records = Verlet.run s ~engine:Forces.gather_engine ~steps:50 () in
  let e0 = (List.hd records).Verlet.total_energy in
  let worst =
    List.fold_left
      (fun acc r ->
        Float.max acc (abs_float ((r.Verlet.total_energy -. e0) /. e0)))
      0.0 records
  in
  Alcotest.(check bool)
    (Printf.sprintf "drift %.2e < 2e-3" worst)
    true (worst < 2e-3)

let test_verlet_momentum_conservation () =
  let s = small_system () in
  ignore (Verlet.run s ~engine:Forces.gather_engine ~steps:20 ());
  Alcotest.(check bool) "momentum stays ~ 0" true
    (Vec3.norm (Observables.total_momentum s) < 1e-8)

let test_verlet_record_structure () =
  let s = small_system () in
  let records = Verlet.run s ~engine:Forces.gather_engine ~steps:5 () in
  Alcotest.(check int) "steps+1 records" 6 (List.length records);
  List.iteri
    (fun i r -> Alcotest.(check int) "step numbering" i r.Verlet.step)
    records

let test_verlet_dt_sensitivity () =
  (* Halving dt must reduce energy drift. *)
  let drift dt =
    let s = Init.build ~seed:5 ~n:128 ~params:{ p with Params.dt = dt } () in
    let records = Verlet.run s ~engine:Forces.gather_engine ~steps:40 () in
    let e0 = (List.hd records).Verlet.total_energy in
    let last = List.nth records 40 in
    abs_float ((last.Verlet.total_energy -. e0) /. e0)
  in
  Alcotest.(check bool) "smaller dt conserves better" true
    (drift 0.0005 < drift 0.004)

let test_verlet_positions_stay_wrapped () =
  let s = small_system () in
  ignore (Verlet.run s ~engine:Forces.gather_engine ~steps:20 ());
  for i = 0 to s.System.n - 1 do
    let q = System.position s i in
    if q.Vec3.x < 0.0 || q.Vec3.x >= s.System.box then
      Alcotest.failf "atom %d escaped the box" i
  done

(* ---------------- Alternative engines ---------------- *)

let test_pairlist_matches_reference () =
  let s1 = small_system ~n:216 () in
  let s2 = System.copy s1 in
  let pl = Pairlist.create s2 in
  let pe_ref = Forces.compute_gather s1 in
  let pe_pl = (Pairlist.engine pl).Mdcore.Engine.compute s2 in
  Alcotest.(check bool) "PE agrees" true (abs_float (pe_ref -. pe_pl) < 1e-9);
  Alcotest.(check bool) "forces agree" true
    (System.max_acceleration_delta s1 s2 < 1e-9)

let test_pairlist_rebuild_cadence () =
  let s = Init.build ~seed:13 ~n:216 () in
  let pl = Pairlist.create s in
  ignore (Verlet.run s ~engine:(Pairlist.engine pl) ~steps:20 ());
  let rebuilds = Pairlist.rebuild_count pl in
  Alcotest.(check bool)
    (Printf.sprintf "rebuilds (%d) far fewer than steps" rebuilds)
    true
    (rebuilds >= 1 && rebuilds < 12)

let test_pairlist_trajectory_matches () =
  let s1 = Init.build ~seed:17 ~n:216 () in
  let s2 = System.copy s1 in
  let pl = Pairlist.create s2 in
  ignore (Verlet.run s1 ~engine:Forces.gather_engine ~steps:10 ());
  ignore (Verlet.run s2 ~engine:(Pairlist.engine pl) ~steps:10 ());
  Alcotest.(check bool) "same trajectory" true
    (System.max_position_delta s1 s2 < 1e-7)

let test_pairlist_wrong_system_rejected () =
  let s1 = small_system ~n:216 () in
  let s2 = System.copy s1 in
  let pl = Pairlist.create s1 in
  Alcotest.(check bool) "foreign system rejected" true
    (try
       ignore ((Pairlist.engine pl).Mdcore.Engine.compute s2);
       false
     with Invalid_argument _ -> true)

let test_pairlist_skin_validation () =
  let s = small_system ~n:216 () in
  let rejected skin =
    try
      ignore (Pairlist.create ~skin s);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "NaN skin rejected" true (rejected Float.nan);
  Alcotest.(check bool) "infinite skin rejected" true
    (rejected Float.infinity);
  Alcotest.(check bool) "zero skin rejected" true (rejected 0.0);
  Alcotest.(check bool) "negative skin rejected" true (rejected (-0.1));
  (* box(216) ≈ 6.46σ: a 1.0σ skin pushes cutoff+skin past box/2 *)
  Alcotest.(check bool) "skin past the min-image bound rejected" true
    (rejected 1.0);
  Alcotest.(check bool) "default skin admissible at 216 atoms" true
    (Pairlist.admissible s);
  Alcotest.(check bool) "huge skin not admissible" false
    (Pairlist.admissible ~skin:1.0 s);
  Alcotest.(check bool) "NaN skin not admissible" false
    (Pairlist.admissible ~skin:Float.nan s);
  (* box(128) ≈ 5.43σ < 2*(2.5+0.4): the fixture size every small test
     uses stays on the brute fallback *)
  Alcotest.(check bool) "128-atom box below the bound" false
    (Pairlist.admissible (small_system ()))

let test_pairlist_cadence_drops_with_skin () =
  (* The skin trade-off under fast drift: a hot system crosses the
     skin/2 trigger sooner, and a thicker skin must stretch the rebuild
     interval. *)
  let rebuilds skin =
    let s = Init.build ~seed:23 ~temperature:2.5 ~n:216 () in
    let pl = Pairlist.create ~skin s in
    ignore (Verlet.run s ~engine:(Pairlist.engine pl) ~steps:40 ());
    Pairlist.rebuild_count pl
  in
  let thin = rebuilds 0.15 and thick = rebuilds 0.6 in
  Alcotest.(check bool)
    (Printf.sprintf "thicker skin rebuilds less: %d (0.15σ) > %d (0.6σ)"
       thin thick)
    true (thin > thick)

let test_pairlist_rebuild_timing_bitwise () =
  (* Rebuilding every step instead of on the drift trigger must change
     nothing: beyond-cutoff list entries are skipped before any
     accumulation, so forces are independent of rebuild cadence. *)
  let s1 = Init.build ~seed:29 ~n:216 () in
  let s2 = System.copy s1 in
  let pl1 = Pairlist.create s1 in
  let pl2 = Pairlist.create s2 in
  let every_step =
    Mdcore.Engine.make ~name:"pairlist-rebuild-every-step"
      ~compute:(fun sys ->
        Pairlist.force_rebuild pl2;
        (Pairlist.engine pl2).Mdcore.Engine.compute sys)
  in
  let r1 = Verlet.run s1 ~engine:(Pairlist.engine pl1) ~steps:15 () in
  let r2 = Verlet.run s2 ~engine:every_step ~steps:15 () in
  Alcotest.(check bool) "ablation actually rebuilt more" true
    (Pairlist.rebuild_count pl2 > Pairlist.rebuild_count pl1);
  Alcotest.(check bool) "records bitwise" true (r1 = r2);
  Alcotest.(check bool) "positions bitwise" true
    (System.max_position_delta s1 s2 = 0.0);
  Alcotest.(check bool) "accelerations bitwise" true
    (System.max_acceleration_delta s1 s2 = 0.0)

let test_pairlist_halflist_matches_full_bitwise () =
  (* Below the chunking threshold the Newton-3 half-list runs serially,
     and with unit mass (exact inv_mass multiply, fl(b-a) = -fl(a-b))
     its per-atom accumulation order equals the full-row gather's — so
     the two traversals agree to the bit, at any pool size. *)
  let base = Init.build ~seed:37 ~n:216 () in
  let reference =
    let s = System.copy base in
    let pl = Pairlist.create s in
    ignore (Pairlist.compute_full_stats pl s);
    s
  in
  List.iter
    (fun domains ->
      let pool = Mdpar.create ~domains () in
      Fun.protect
        ~finally:(fun () -> Mdpar.shutdown pool)
        (fun () ->
          let s = System.copy base in
          let pl = Pairlist.create ~pool s in
          ignore ((Pairlist.engine pl).Mdcore.Engine.compute s);
          Alcotest.(check bool)
            (Printf.sprintf
               "half-list Newton-3 = full gather bitwise at %d domain(s)"
               domains)
            true
            (System.max_acceleration_delta reference s = 0.0)))
    [ 1; 4 ]

let test_pairlist_chunked_domain_invariant () =
  (* 512 atoms puts the engine on the chunked path.  The chunk count is
     a pure function of n and the merge runs in fixed chunk order, so
     forces are byte-identical for any pool size; the chunked grouping
     re-associates the per-atom sums, so against the serial full gather
     the match is exact physics but not exact bits (~1 ulp). *)
  let base = Init.build ~seed:37 ~n:512 () in
  let run domains =
    let s = System.copy base in
    let pool = Mdpar.create ~domains () in
    Fun.protect
      ~finally:(fun () -> Mdpar.shutdown pool)
      (fun () ->
        let pl = Pairlist.create ~pool s in
        ignore ((Pairlist.engine pl).Mdcore.Engine.compute s));
    s
  in
  let d1 = run 1 and d4 = run 4 in
  Alcotest.(check bool) "1 domain = 4 domains bitwise" true
    (System.max_acceleration_delta d1 d4 = 0.0);
  let full =
    let s = System.copy base in
    let pl = Pairlist.create s in
    ignore (Pairlist.compute_full_stats pl s);
    s
  in
  Alcotest.(check bool) "chunked ~ full gather to 1e-12" true
    (System.max_acceleration_delta d1 full < 1e-12)

let test_cell_list_matches_reference () =
  let s1 = Init.build ~seed:19 ~n:512 () in
  let s2 = System.copy s1 in
  let pe_ref = Forces.compute_gather s1 in
  let pe_cl = Cell_list.compute s2 in
  Alcotest.(check bool) "PE agrees" true
    (abs_float (pe_ref -. pe_cl) < 1e-9 *. abs_float pe_ref);
  Alcotest.(check bool) "forces agree" true
    (System.max_acceleration_delta s1 s2 < 1e-8)

let test_cell_list_requires_3_cells () =
  let sys = System.create ~n:2 ~box:5.5 ~params:p in
  Alcotest.(check bool) "tiny box rejected" true
    (try
       ignore (Cell_list.compute sys);
       false
     with Invalid_argument _ -> true)

let test_rdf_validation () =
  let s = small_system () in
  Alcotest.(check bool) "rmax beyond box/2 rejected" true
    (try
       ignore (Observables.radial_distribution s ~bins:10 ~rmax:s.System.box);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero bins rejected" true
    (try
       ignore (Observables.radial_distribution s ~bins:0 ~rmax:1.0);
       false
     with Invalid_argument _ -> true)

let test_rdf_ideal_gas_near_one () =
  (* Uniform random positions: g(r) ~ 1 away from r = 0. *)
  let params = { p with Params.cutoff = 2.5 } in
  let s = System.create ~n:512 ~box:12.0 ~params in
  let rng = Sim_util.Rng.create 77 in
  for i = 0 to 511 do
    System.set_position s i
      (Vec3.make
         (Sim_util.Rng.uniform rng 0.0 12.0)
         (Sim_util.Rng.uniform rng 0.0 12.0)
         (Sim_util.Rng.uniform rng 0.0 12.0))
  done;
  let g = Observables.radial_distribution s ~bins:12 ~rmax:6.0 in
  (* average the outer bins (statistics improve with r) *)
  let outer = Array.sub g 6 6 in
  let avg = Array.fold_left ( +. ) 0.0 outer /. 6.0 in
  Alcotest.(check bool)
    (Printf.sprintf "ideal-gas plateau ~1 (got %.3f)" avg)
    true
    (abs_float (avg -. 1.0) < 0.15)

let test_rdf_excluded_core_and_first_shell () =
  (* An equilibrated LJ fluid: no pairs inside the hard core, and a
     first-neighbour peak well above 1 near r_min. *)
  let s = Init.build ~seed:3 ~n:256 () in
  ignore (Verlet.run s ~engine:Forces.gather_engine ~steps:20 ());
  let bins = 24 in
  let rmax = s.System.box /. 2.0 in
  let g = Observables.radial_distribution s ~bins ~rmax in
  let centers = Observables.bin_centers ~bins ~rmax in
  (* core: all bins with r < 0.8 sigma must be empty *)
  Array.iteri
    (fun b r -> if r < 0.8 then Alcotest.(check (float 0.0)) "hard core" 0.0 g.(b))
    centers;
  (* first shell: max g in r in [1.0, 1.4] exceeds 1.5 *)
  let peak = ref 0.0 in
  Array.iteri
    (fun b r -> if r >= 1.0 && r <= 1.4 then peak := Float.max !peak g.(b))
    centers;
  Alcotest.(check bool)
    (Printf.sprintf "first shell peak %.2f > 1.5" !peak)
    true (!peak > 1.5)

let test_verlet_time_reversible () =
  (* Velocity Verlet is symplectic and time-reversible: run forward,
     negate velocities, run the same number of steps, and the system
     retraces its path back to the start. *)
  let s = Init.build ~seed:29 ~n:128 ~params:{ p with Params.dt = 0.002 } () in
  let start = System.copy s in
  ignore (Verlet.run s ~engine:Forces.gather_engine ~steps:25 ());
  for i = 0 to s.System.n - 1 do
    s.System.vel_x.{i} <- -.s.System.vel_x.{i};
    s.System.vel_y.{i} <- -.s.System.vel_y.{i};
    s.System.vel_z.{i} <- -.s.System.vel_z.{i}
  done;
  ignore (Verlet.run s ~engine:Forces.gather_engine ~steps:25 ());
  Alcotest.(check bool)
    (Printf.sprintf "returns to start (delta %.2e)"
       (System.max_position_delta s start))
    true
    (System.max_position_delta s start < 1e-7)

(* ---------------- Thermostat / trajectory output ---------------- *)

let test_thermostat_rescale_exact () =
  let s = small_system () in
  Mdcore.Thermostat.rescale s ~target:1.5;
  Alcotest.(check (float 1e-9)) "temperature set exactly" 1.5
    (Observables.temperature s)

let test_thermostat_rescale_preserves_momentum () =
  let s = small_system () in
  Mdcore.Thermostat.rescale s ~target:0.7;
  Alcotest.(check bool) "momentum still ~0" true
    (Vec3.norm (Observables.total_momentum s) < 1e-9)

let test_thermostat_berendsen_relaxes () =
  let s = small_system () in
  Mdcore.Thermostat.rescale s ~target:0.5;
  let gap_before = abs_float (Observables.temperature s -. 1.2) in
  Mdcore.Thermostat.berendsen s ~target:1.2 ~tau:(10.0 *. p.Params.dt);
  let gap_after = abs_float (Observables.temperature s -. 1.2) in
  Alcotest.(check bool) "moves toward target" true (gap_after < gap_before)

let test_thermostat_equilibrate () =
  let s = small_system ~n:216 () in
  let _ =
    Mdcore.Thermostat.equilibrate s ~engine:Forces.gather_engine ~target:0.9
      ~steps:120 ()
  in
  let t = Observables.temperature s in
  Alcotest.(check bool)
    (Printf.sprintf "equilibrated near 0.9 (got %.3f)" t)
    true
    (abs_float (t -. 0.9) < 0.15)

let test_thermostat_validation () =
  let s = small_system () in
  Alcotest.(check bool) "negative target rejected" true
    (try
       Mdcore.Thermostat.rescale s ~target:(-1.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero tau rejected" true
    (try
       Mdcore.Thermostat.berendsen s ~target:1.0 ~tau:0.0;
       false
     with Invalid_argument _ -> true)

let test_xyz_roundtrip () =
  let s = small_system () in
  let frames = [ Mdcore.System.copy s; Mdcore.System.copy s; s ] in
  let path = Filename.temp_file "mdsim-test" ".xyz" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mdcore.Xyz.write_trajectory ~path ~frames ();
      Alcotest.(check int) "frame count" 3 (Mdcore.Xyz.frame_count ~path))

let test_xyz_malformed () =
  let path = Filename.temp_file "mdsim-test" ".xyz" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not-a-count\ncomment\n";
      close_out oc;
      Alcotest.(check bool) "malformed rejected" true
        (try
           ignore (Mdcore.Xyz.frame_count ~path);
           false
         with Failure _ -> true))

let test_vacf_starts_at_one () =
  let s = small_system () in
  let snapshots = ref [] in
  ignore
    (Verlet.run s ~engine:Forces.gather_engine ~steps:10
       ~record:(fun _ -> snapshots := Mdcore.System.copy s :: !snapshots)
       ());
  let vacf = Observables.velocity_autocorrelation (List.rev !snapshots) in
  Alcotest.(check (float 1e-12)) "C(0) = 1" 1.0 vacf.(0);
  Alcotest.(check bool) "decorrelates in a dense fluid" true
    (vacf.(10) < 0.999)

let test_vacf_free_particles_constant () =
  (* No forces: velocities never change, so C(k) = 1 for all k. *)
  let s = small_system () in
  let idle = Mdcore.Engine.make ~name:"free" ~compute:(fun sys ->
      Mdcore.System.clear_accelerations sys;
      0.0)
  in
  let snapshots = ref [] in
  ignore
    (Verlet.run s ~engine:idle ~steps:5
       ~record:(fun _ -> snapshots := Mdcore.System.copy s :: !snapshots)
       ());
  let vacf = Observables.velocity_autocorrelation (List.rev !snapshots) in
  Array.iter
    (fun c -> Alcotest.(check (float 1e-12)) "ballistic: C = 1" 1.0 c)
    vacf

let test_diffusion_positive_in_fluid () =
  let s = Init.build ~seed:37 ~n:216 ~temperature:1.4 () in
  let snapshots = ref [] in
  ignore
    (Verlet.run s ~engine:Forces.gather_engine ~steps:30
       ~record:(fun _ -> snapshots := Mdcore.System.copy s :: !snapshots)
       ());
  let d =
    Observables.diffusion_coefficient (List.rev !snapshots)
      ~dt:p.Params.dt
  in
  Alcotest.(check bool)
    (Printf.sprintf "D > 0 in a hot fluid (got %.4f)" d)
    true (d > 0.0)

let test_vacf_validation () =
  Alcotest.(check bool) "empty list rejected" true
    (try
       ignore (Observables.velocity_autocorrelation []);
       false
     with Invalid_argument _ -> true)

(* A property: potential energy is invariant under global translation. *)
let translation_invariance_prop =
  QCheck.Test.make ~name:"PE invariant under global translation" ~count:20
    (QCheck.triple
       (QCheck.float_range (-5.0) 5.0)
       (QCheck.float_range (-5.0) 5.0)
       (QCheck.float_range (-5.0) 5.0))
    (fun (tx, ty, tz) ->
      let s1 = Init.build ~seed:23 ~n:128 () in
      let s2 = System.copy s1 in
      for i = 0 to s2.System.n - 1 do
        System.set_position s2 i
          (Vec3.add (System.position s2 i) (Vec3.make tx ty tz))
      done;
      let pe1 = Forces.compute_gather s1 and pe2 = Forces.compute_gather s2 in
      abs_float (pe1 -. pe2) < 1e-6 *. abs_float pe1)

let qcheck t = QCheck_alcotest.to_alcotest t

let tests =
  ( "mdcore",
    [ Alcotest.test_case "lj zero at sigma" `Quick test_lj_zero_at_sigma;
      Alcotest.test_case "lj minimum depth" `Quick test_lj_minimum_depth;
      Alcotest.test_case "lj force sign change" `Quick
        test_lj_force_sign_change;
      Alcotest.test_case "lj force zero at minimum" `Quick
        test_lj_force_zero_at_minimum;
      Alcotest.test_case "lj force is -dV/dr" `Quick test_lj_force_is_gradient;
      Alcotest.test_case "params validation" `Quick test_params_validation;
      Alcotest.test_case "min image range" `Quick test_min_image_range;
      qcheck min_image_agreement_prop;
      Alcotest.test_case "min image boundary ties" `Quick
        test_min_image_boundary_ties;
      Alcotest.test_case "wrap" `Quick test_wrap;
      Alcotest.test_case "wrap boundary adversarial" `Quick
        test_wrap_boundary_adversarial;
      Alcotest.test_case "wrap old path returned box" `Quick
        test_wrap_old_path_returned_box;
      Alcotest.test_case "axis cells exact multiples" `Quick
        test_axis_cells_exact_multiples;
      Alcotest.test_case "binning boundary atoms" `Quick
        test_binning_boundary_atoms;
      Alcotest.test_case "dist2 symmetry" `Quick test_dist2_symmetry;
      Alcotest.test_case "minimum-image criterion" `Quick
        test_system_minimum_image_criterion;
      Alcotest.test_case "init positions in box" `Quick
        test_init_positions_in_box;
      Alcotest.test_case "init density" `Quick test_init_density;
      Alcotest.test_case "init no overlaps" `Quick test_init_no_overlaps;
      Alcotest.test_case "init zero momentum" `Quick test_init_zero_momentum;
      Alcotest.test_case "init temperature" `Quick test_init_temperature;
      Alcotest.test_case "init deterministic" `Quick test_init_deterministic;
      Alcotest.test_case "system copy independent" `Quick
        test_system_copy_independent;
      Alcotest.test_case "gather = newton3" `Quick test_gather_matches_newton3;
      Alcotest.test_case "hits double-counted" `Quick
        test_gather_counts_hits_symmetrically;
      Alcotest.test_case "net force zero" `Quick test_forces_net_zero;
      Alcotest.test_case "searched image = closed form" `Quick
        test_gather_searched_identical;
      Alcotest.test_case "domains gather identical" `Quick
        test_gather_domains_identical;
      Alcotest.test_case "domains gather validation" `Quick
        test_gather_domains_validation;
      Alcotest.test_case "acceleration_on spot check" `Quick
        test_acceleration_on_matches_engine;
      Alcotest.test_case "two-atom force" `Quick test_two_atom_force;
      Alcotest.test_case "cutoff respected" `Quick test_cutoff_respected;
      Alcotest.test_case "periodic interaction" `Quick
        test_periodic_interaction;
      Alcotest.test_case "energy conservation" `Slow
        test_verlet_energy_conservation;
      Alcotest.test_case "momentum conservation" `Quick
        test_verlet_momentum_conservation;
      Alcotest.test_case "record structure" `Quick test_verlet_record_structure;
      Alcotest.test_case "dt sensitivity" `Slow test_verlet_dt_sensitivity;
      Alcotest.test_case "positions stay wrapped" `Quick
        test_verlet_positions_stay_wrapped;
      Alcotest.test_case "time reversibility" `Quick
        test_verlet_time_reversible;
      Alcotest.test_case "pairlist matches reference" `Quick
        test_pairlist_matches_reference;
      Alcotest.test_case "pairlist rebuild cadence" `Quick
        test_pairlist_rebuild_cadence;
      Alcotest.test_case "pairlist trajectory matches" `Quick
        test_pairlist_trajectory_matches;
      Alcotest.test_case "pairlist rejects foreign system" `Quick
        test_pairlist_wrong_system_rejected;
      Alcotest.test_case "pairlist skin validation" `Quick
        test_pairlist_skin_validation;
      Alcotest.test_case "pairlist cadence drops with skin" `Slow
        test_pairlist_cadence_drops_with_skin;
      Alcotest.test_case "pairlist rebuild timing bitwise" `Quick
        test_pairlist_rebuild_timing_bitwise;
      Alcotest.test_case "pairlist half-list = full bitwise" `Quick
        test_pairlist_halflist_matches_full_bitwise;
      Alcotest.test_case "pairlist chunked domain invariant" `Quick
        test_pairlist_chunked_domain_invariant;
      Alcotest.test_case "cell list matches reference" `Quick
        test_cell_list_matches_reference;
      Alcotest.test_case "cell list needs 3 cells" `Quick
        test_cell_list_requires_3_cells;
      Alcotest.test_case "rdf validation" `Quick test_rdf_validation;
      Alcotest.test_case "rdf ideal gas" `Quick test_rdf_ideal_gas_near_one;
      Alcotest.test_case "rdf core and first shell" `Quick
        test_rdf_excluded_core_and_first_shell;
      Alcotest.test_case "thermostat rescale" `Quick
        test_thermostat_rescale_exact;
      Alcotest.test_case "rescale preserves momentum" `Quick
        test_thermostat_rescale_preserves_momentum;
      Alcotest.test_case "berendsen relaxes" `Quick
        test_thermostat_berendsen_relaxes;
      Alcotest.test_case "equilibrate" `Slow test_thermostat_equilibrate;
      Alcotest.test_case "thermostat validation" `Quick
        test_thermostat_validation;
      Alcotest.test_case "xyz roundtrip" `Quick test_xyz_roundtrip;
      Alcotest.test_case "xyz malformed" `Quick test_xyz_malformed;
      Alcotest.test_case "vacf starts at one" `Quick test_vacf_starts_at_one;
      Alcotest.test_case "vacf free particles" `Quick
        test_vacf_free_particles_constant;
      Alcotest.test_case "diffusion positive" `Quick
        test_diffusion_positive_in_fluid;
      Alcotest.test_case "vacf validation" `Quick test_vacf_validation;
      qcheck translation_invariance_prop ] )
