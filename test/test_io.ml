(* The Mdio durable-write shim (lib/io): zero-rate transparency,
   injected storage faults on the real write paths, ledger
   poison/repair, stale-temporary hygiene, simulated process death,
   and a bounded crash-point sweep. *)

module Ledger = Mdserve.Ledger
module Crashcheck = Mdserve.Crashcheck

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mdsim-io-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let with_plan spec_text f =
  (match Mdfault.parse_spec spec_text with
  | Ok spec -> Mdfault.install spec
  | Error msg -> Alcotest.failf "bad spec %S: %s" spec_text msg);
  Fun.protect
    ~finally:(fun () ->
      Mdfault.uninstall ();
      Mdio.reset ())
    f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spec ~id =
  { Ledger.js_id = id;
    js_tenant = "t0";
    js_priority = 1;
    js_device = "opteron";
    js_atoms = 128;
    js_steps = 12;
    js_seed = 11;
    js_density = 0.8;
    js_temperature = 1.0;
    js_engine = "default";
    js_skin = 0.4;
    js_every = 4;
    js_keep = 8;
    js_faults = None;
    js_deadline = None;
    js_telemetry = false;
    js_tel_every = 4 }

(* ------------------------------------------------------------------ *)
(* Zero-rate transparency                                              *)
(* ------------------------------------------------------------------ *)

(* A fault plan with every io rate at zero must leave the shimmed
   write path byte-identical to the no-plan path, and must not log any
   io fault events. *)
let test_zero_rate_byte_identical () =
  let dir = fresh_dir () in
  let bare = Filename.concat dir "bare.bin" in
  let planned = Filename.concat dir "planned.bin" in
  let payload = String.init 4096 (fun i -> Char.chr (i mod 251)) in
  Mdio.reset ();
  Mdio.write_atomic ~path:bare payload;
  let bare_ops = Mdio.op_count () in
  with_plan "io-eio:0,io-short-write:0,io-enospc:0,seed=7" (fun () ->
      Mdio.reset ();
      Mdio.write_atomic ~path:planned payload;
      Alcotest.(check int) "same op count" bare_ops (Mdio.op_count ());
      Alcotest.(check bool)
        "no io fault events" true
        (Mdfault.events ~prefix:"io-" () = []));
  Alcotest.(check string) "bytes identical" (read_file bare)
    (read_file planned);
  Alcotest.(check bool) "no stale tmp" false
    (Sys.file_exists (planned ^ ".tmp"))

(* ------------------------------------------------------------------ *)
(* Injected storage faults                                             *)
(* ------------------------------------------------------------------ *)

(* Certain write failure surfaces as a genuine Unix_error, the torn
   prefix is persisted (short write), and the .tmp never reaches the
   destination path. *)
let test_write_atomic_error_cleans_tmp () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "artifact.json" in
  Mdio.write_atomic ~path "first version\n";
  with_plan "io-enospc:1,seed=3" (fun () ->
      match Mdio.write_atomic ~path "second version\n" with
      | () -> Alcotest.fail "expected ENOSPC"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  Alcotest.(check string) "old contents intact" "first version\n"
    (read_file path);
  Alcotest.(check bool) "tmp removed on error" false
    (Sys.file_exists (path ^ ".tmp"))

(* Fsync failure on the ledger is not swallowed: the writer is
   poisoned, the append raises, and once the fault plan is gone the
   next append repairs the tail and the replayed queue contains only
   the acknowledged records. *)
let test_ledger_poison_repair () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "ledger.jsonl" in
  let w = Ledger.open_writer ~path ~next_seq:0 in
  Ledger.append w (Ledger.Submitted (spec ~id:"ok-1"));
  (with_plan "io-short-write:1,seed=5" (fun () ->
       match Ledger.append w (Ledger.Submitted (spec ~id:"doomed")) with
       | () -> Alcotest.fail "expected Write_failed"
       | exception Ledger.Write_failed _ -> ()));
  Ledger.append w (Ledger.Submitted (spec ~id:"ok-2"));
  Ledger.close_writer w;
  let replay = Ledger.replay_file path in
  let ids =
    List.map (fun jv -> jv.Ledger.v_spec.Ledger.js_id) replay.Ledger.r_jobs
  in
  Alcotest.(check (list string)) "acked records survive, torn tail gone"
    [ "ok-1"; "ok-2" ] ids;
  (* every surviving line verifies: the repair left no torn bytes *)
  String.split_on_char '\n' (read_file path)
  |> List.iter (fun line ->
         if String.trim line <> "" then
           match Ledger.verify_line line with
           | Ok _ -> ()
           | Error msg -> Alcotest.failf "torn line survived repair: %s" msg)

(* Silent mid-file corruption (a flipped byte, not a torn tail) is
   detected by CRC, skipped with a note, and later valid records still
   replay. *)
let test_ledger_midfile_corruption () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "ledger.jsonl" in
  let lines =
    [ Ledger.encode_line ~seq:0 (Ledger.Submitted (spec ~id:"a"));
      Ledger.encode_line ~seq:1 (Ledger.Submitted (spec ~id:"b"));
      Ledger.encode_line ~seq:2
        (Ledger.Done { ev_job = "a"; ev_status = "ok"; ev_completed = 12 }) ]
  in
  let corrupt s =
    let b = Bytes.of_string s in
    Bytes.set b (Bytes.length b / 2)
      (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 0x20));
    Bytes.to_string b
  in
  let oc = open_out_bin path in
  output_string oc (List.nth lines 0 ^ "\n");
  output_string oc (corrupt (List.nth lines 1) ^ "\n");
  output_string oc (List.nth lines 2 ^ "\n");
  close_out oc;
  let replay = Ledger.replay_file path in
  let ids =
    List.map (fun jv -> jv.Ledger.v_spec.Ledger.js_id) replay.Ledger.r_jobs
  in
  Alcotest.(check (list string)) "corrupt record skipped" [ "a" ] ids;
  Alcotest.(check bool) "skip is noted" true
    (List.exists
       (fun n ->
         String.length n >= 7 && String.sub n 0 7 = "ignored")
       replay.Ledger.r_notes);
  Alcotest.(check int) "next_seq past valid records" 3
    replay.Ledger.r_next_seq

(* ------------------------------------------------------------------ *)
(* Checkpoint-store hygiene                                            *)
(* ------------------------------------------------------------------ *)

let runner_cfg ~dir =
  { Mdckpt.Runner.cfg_device = Mdckpt.Runner.Opteron;
    cfg_atoms = 128;
    cfg_steps = 12;
    cfg_seed = 11;
    cfg_density = 0.8;
    cfg_temperature = 1.0;
    cfg_force_path = Mdports.Force_path.default;
    cfg_every = 4;
    cfg_keep = 8;
    cfg_dir = dir }

(* A crash mid-save leaves a .tmp behind; load_latest must ignore it
   and the next save's GC must sweep it out. *)
let test_stale_tmp_ignored_and_swept () =
  let dir = fresh_dir () in
  let st = Mdckpt.Runner.prepare (runner_cfg ~dir) in
  let _ = Mdckpt.save ~dir st in
  let stale = Filename.concat dir "ckpt-000000099.mdsim.tmp" in
  let oc = open_out_bin stale in
  output_string oc "garbage left by a crash mid-save";
  close_out oc;
  (match Mdckpt.load_latest ~dir with
  | Ok (loaded, _) ->
    Alcotest.(check int) "latest is the real generation" 0
      loaded.Mdckpt.completed
  | Error msg -> Alcotest.failf "load_latest failed: %s" msg);
  let _ = Mdckpt.save ~dir st in
  Alcotest.(check bool) "gc swept the stale tmp" false
    (Sys.file_exists stale)

(* ENOSPC while writing a new generation must leave every previously
   durable generation intact and loadable. *)
let test_enospc_keeps_prior_generations () =
  let dir = fresh_dir () in
  let st = Mdckpt.Runner.prepare (runner_cfg ~dir) in
  let first = Mdckpt.save ~dir st in
  let bumped = { st with Mdckpt.completed = 4 } in
  with_plan "io-enospc:1,seed=9" (fun () ->
      match Mdckpt.save ~dir bumped with
      | _ -> Alcotest.fail "expected ENOSPC"
      | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ());
  Alcotest.(check (list int)) "only the durable generation remains"
    [ 0 ]
    (List.map fst (Mdckpt.generations ~dir));
  match Mdckpt.load_latest ~dir with
  | Ok (loaded, path) ->
    Alcotest.(check string) "prior generation path" first path;
    Alcotest.(check int) "prior generation decodes" 0
      loaded.Mdckpt.completed
  | Error msg -> Alcotest.failf "prior generation lost: %s" msg

(* ------------------------------------------------------------------ *)
(* Simulated process death                                             *)
(* ------------------------------------------------------------------ *)

(* Crash at op k raises Crashed k, drops every later op (nothing new
   becomes durable), and reset revives the shim. *)
let test_crash_point_semantics () =
  let dir = fresh_dir () in
  let a = Filename.concat dir "a.bin" in
  let b = Filename.concat dir "b.bin" in
  Mdio.reset ();
  Mdio.write_atomic ~path:a "alpha";
  let per_file = Mdio.op_count () in
  Alcotest.(check bool) "shim alive" true (Mdio.alive ());
  Mdio.reset ();
  (* arm inside the second write_atomic *)
  Mdio.set_crash_point (Some per_file);
  (match
     Mdio.write_atomic ~path:a "ALPHA2";
     Mdio.write_atomic ~path:b "beta"
   with
  | () -> Alcotest.fail "expected Crashed"
  | exception Mdio.Crashed k ->
    Alcotest.(check int) "crash at the armed index" per_file k);
  Alcotest.(check bool) "shim dead" false (Mdio.alive ());
  (* dead ops are dropped silently *)
  Mdio.write_atomic ~path:b "post-mortem";
  Alcotest.(check bool) "nothing durable while dead" false
    (Sys.file_exists b);
  Alcotest.(check string) "first write survived" "ALPHA2" (read_file a);
  Mdio.reset ();
  Alcotest.(check bool) "reset revives" true (Mdio.alive ());
  Mdio.write_atomic ~path:b "beta";
  Alcotest.(check string) "writes work again" "beta" (read_file b)

(* A bounded slice of the exhaustive sweep in run mode: every trial in
   the slice must recover bitwise. *)
let test_bounded_crashcheck_sweep () =
  let dir = fresh_dir () in
  let cfg =
    { (Crashcheck.default_cfg ~dir) with
      Crashcheck.cc_mode = Crashcheck.Run;
      cc_limit = Some 8 }
  in
  match Crashcheck.run cfg with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "sweep failed: %s" msg

let tests =
  ( "io",
    [ Alcotest.test_case "zero-rate byte-identical" `Quick
        test_zero_rate_byte_identical;
      Alcotest.test_case "write_atomic error cleans tmp" `Quick
        test_write_atomic_error_cleans_tmp;
      Alcotest.test_case "ledger poison and repair" `Quick
        test_ledger_poison_repair;
      Alcotest.test_case "ledger mid-file corruption" `Quick
        test_ledger_midfile_corruption;
      Alcotest.test_case "stale tmp ignored and swept" `Quick
        test_stale_tmp_ignored_and_swept;
      Alcotest.test_case "enospc keeps prior generations" `Quick
        test_enospc_keeps_prior_generations;
      Alcotest.test_case "crash point semantics" `Quick
        test_crash_point_semantics;
      Alcotest.test_case "bounded crashcheck sweep" `Slow
        test_bounded_crashcheck_sweep ] )
