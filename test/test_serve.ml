(* Serve layer (lib/serve): ledger CRC/torn-tail replay, scheduler
   fairness and priority quanta, cancel between segments, admission
   control, deadline/retry robustness, and the headline property — an
   abandoned (kill -9 equivalent) engine resumed from its ledger
   converges every job byte-identically with an uninterrupted one. *)

module Ledger = Mdserve.Ledger
module Engine = Mdserve.Engine
module Protocol = Mdserve.Protocol
module Daemon = Mdserve.Daemon

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mdsim-serve-test-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let spec ?(id = "j1") ?(tenant = "default") ?(priority = 1) ?(atoms = 128)
    ?(steps = 12) ?(every = 4) ?(seed = 11) ?faults ?deadline
    ?(telemetry = false) () =
  { Ledger.js_id = id; js_tenant = tenant; js_priority = priority;
    js_device = "opteron"; js_atoms = atoms; js_steps = steps;
    js_seed = seed; js_density = 0.8; js_temperature = 1.0;
    js_engine = "default"; js_skin = 0.4; js_every = every; js_keep = 8;
    js_faults = faults; js_deadline = deadline; js_telemetry = telemetry;
    js_tel_every = every }

let engine ?(max_queue = 16) ?(retries = 2) ?(resume = false) dir =
  match
    Engine.create
      { Engine.cfg_dir = dir; cfg_max_queue = max_queue;
        cfg_retries = retries; cfg_backoff_s = 0.0; cfg_resume = resume }
  with
  | Ok t -> t
  | Error msg -> Alcotest.failf "engine create: %s" msg

let submit_ok eng js =
  match Engine.submit eng js with
  | Ok (id, _) -> id
  | Error msg -> Alcotest.failf "submit %s: %s" js.Ledger.js_id msg

(* Drive the engine to quiescence with a synthetic clock far past any
   backoff gate. *)
let run_to_quiescence ?(max_ticks = 500) eng =
  let rec go n =
    if n > max_ticks then Alcotest.fail "engine did not quiesce"
    else if Engine.tick eng ~now:(1e9 +. float_of_int n) then go (n + 1)
  in
  go 0

let job_status eng id =
  match Engine.status_json eng (Some id) with
  | Error msg -> Alcotest.failf "status %s: %s" id msg
  | Ok reply -> (
    let j = Sim_util.Minijson.parse reply in
    match
      Option.bind (Sim_util.Minijson.member "job" j) (fun job ->
          Option.bind
            (Sim_util.Minijson.member "status" job)
            Sim_util.Minijson.to_string)
    with
    | Some s -> s
    | None -> Alcotest.failf "no status in %s" reply)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let ledger_events dir =
  let data = read_file (Filename.concat dir "ledger.jsonl") in
  List.filter_map
    (fun line ->
      match Ledger.verify_line line with
      | Error _ -> None
      | Ok j -> (
        match Ledger.event_of_json j with Ok ev -> Some ev | Error _ -> None))
    (String.split_on_char '\n' data)

(* --- ledger format --- *)

let sample_events =
  [ Ledger.Submitted (spec ~id:"a" ());
    Ledger.Segment { ev_job = "a"; ev_completed = 4; ev_total = 12 };
    Ledger.Retrying { ev_job = "a"; ev_attempt = 1; ev_reason = "boom \"x\"" };
    Ledger.Segment { ev_job = "a"; ev_completed = 8; ev_total = 12 };
    Ledger.Done { ev_job = "a"; ev_status = "recovered"; ev_completed = 12 }
  ]

let encode_ledger events =
  String.concat ""
    (List.mapi
       (fun i ev -> Ledger.encode_line ~seq:i ev ^ "\n")
       events)

let test_ledger_roundtrip () =
  let data = encode_ledger sample_events in
  let r = Ledger.replay_string data in
  Alcotest.(check int) "next seq" 5 r.Ledger.r_next_seq;
  Alcotest.(check (list string)) "no notes" [] r.Ledger.r_notes;
  match r.Ledger.r_jobs with
  | [ v ] ->
    Alcotest.(check string) "id" "a" v.Ledger.v_spec.Ledger.js_id;
    Alcotest.(check int) "completed" 12 v.Ledger.v_completed;
    Alcotest.(check int) "attempts" 1 v.Ledger.v_attempts;
    Alcotest.(check (option string))
      "terminal" (Some "recovered") v.Ledger.v_terminal
  | l -> Alcotest.failf "expected one job view, got %d" (List.length l)

let test_ledger_rejects_corruption () =
  let data = encode_ledger sample_events in
  (* flip one byte inside the second record's completed count *)
  let lines = String.split_on_char '\n' data in
  let mangled =
    String.concat "\n"
      (List.mapi
         (fun i line ->
           if i = 1 then
             String.map (fun c -> if c = '4' then '7' else c) line
           else line)
         lines)
  in
  let r = Ledger.replay_string mangled in
  Alcotest.(check bool) "noted" true (List.length r.Ledger.r_notes = 1);
  Alcotest.(check bool)
    "note says corrupt" true
    (let note = List.hd r.Ledger.r_notes in
     let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains note "crc mismatch" || contains note "corrupt");
  (* the corrupt segment is skipped; later records still land *)
  match r.Ledger.r_jobs with
  | [ v ] -> Alcotest.(check int) "completed survives" 12 v.Ledger.v_completed
  | _ -> Alcotest.fail "job view lost"

(* Satellite 3: truncating the file anywhere inside the final record
   must replay exactly like the file without that record — a torn tail
   is dropped, never misread, at every byte boundary. *)
let test_ledger_torn_tail_every_boundary () =
  let events = sample_events in
  let data = encode_ledger events in
  let without_last =
    encode_ledger (List.filteri (fun i _ -> i < 4) events)
  in
  let expect = Ledger.replay_string without_last in
  let view v =
    ( (v.Ledger.v_spec.Ledger.js_id, v.Ledger.v_completed),
      (v.Ledger.v_attempts, v.Ledger.v_terminal) )
  in
  let expected_views = List.map view expect.Ledger.r_jobs in
  (* up to len-2: keeping everything but the trailing newline leaves a
     complete, CRC-valid record, which replay rightly keeps *)
  for cut = String.length without_last + 1 to String.length data - 2 do
    let r = Ledger.replay_string (String.sub data 0 cut) in
    Alcotest.(
      check (list (pair (pair string int) (pair int (option string)))))
      (Printf.sprintf "views at cut %d" cut)
      expected_views
      (List.map view r.Ledger.r_jobs);
    Alcotest.(check int)
      (Printf.sprintf "next_seq at cut %d" cut)
      expect.Ledger.r_next_seq r.Ledger.r_next_seq
  done

(* --- engine: completion, artifacts, fairness --- *)

let test_engine_runs_jobs_fairly () =
  let dir = fresh_dir () in
  let eng = engine dir in
  let a1 = submit_ok eng (spec ~id:"a1" ~tenant:"alice" ()) in
  let a2 = submit_ok eng (spec ~id:"a2" ~tenant:"alice" ()) in
  let b1 = submit_ok eng (spec ~id:"b1" ~tenant:"bob" ~priority:2 ()) in
  run_to_quiescence eng;
  List.iter
    (fun id -> Alcotest.(check string) id "ok" (job_status eng id))
    [ a1; a2; b1 ];
  let segs =
    List.filter_map
      (function
        | Ledger.Segment { ev_job; _ } -> Some ev_job
        | _ -> None)
      (ledger_events dir)
  in
  Alcotest.(check int) "9 segments" 9 (List.length segs);
  (* round-robin: alice's first job opens, then bob takes the slot *)
  (match segs with
  | s1 :: s2 :: _ ->
    Alcotest.(check string) "alice opens" "a1" s1;
    Alcotest.(check string) "then bob" "b1" s2
  | _ -> Alcotest.fail "missing segments");
  (* priority 2 = two consecutive segments per turn for bob *)
  let rec has_pair = function
    | "b1" :: "b1" :: _ -> true
    | _ :: rest -> has_pair rest
    | [] -> false
  in
  Alcotest.(check bool) "priority quantum" true (has_pair segs);
  (* within a tenant, submit order: a2 starts only after a1 finishes *)
  let rec first_idx i id = function
    | [] -> -1
    | s :: rest -> if s = id then i else first_idx (i + 1) id rest
  in
  let rec last_idx i best id = function
    | [] -> best
    | s :: rest -> last_idx (i + 1) (if s = id then i else best) id rest
  in
  Alcotest.(check bool) "fifo within tenant" true
    (first_idx 0 "a2" segs > last_idx 0 (-1) "a1" segs);
  Engine.shutdown eng

let test_engine_cancel_mid_run () =
  let dir = fresh_dir () in
  let eng = engine dir in
  let id = submit_ok eng (spec ~id:"c1" ()) in
  Alcotest.(check bool) "first tick works" true (Engine.tick eng ~now:0.0);
  (match Engine.cancel eng id with
  | Ok completed -> Alcotest.(check int) "one segment done" 4 completed
  | Error msg -> Alcotest.failf "cancel: %s" msg);
  Alcotest.(check string) "cancelled" "cancelled" (job_status eng id);
  Alcotest.(check bool) "nothing left to run" false (Engine.tick eng ~now:0.0);
  (match Engine.cancel eng id with
  | Ok _ -> Alcotest.fail "double cancel must fail"
  | Error _ -> ());
  Alcotest.(check bool) "cancelled record in ledger" true
    (List.exists
       (function Ledger.Cancelled _ -> true | _ -> false)
       (ledger_events dir));
  Engine.shutdown eng

let test_engine_admission_control () =
  let dir = fresh_dir () in
  let eng = engine ~max_queue:1 dir in
  ignore (submit_ok eng (spec ~id:"q1" ()));
  (match Engine.submit eng (spec ~id:"q2" ()) with
  | Ok _ -> Alcotest.fail "overload submit must be rejected"
  | Error msg ->
    Alcotest.(check bool) "says overload" true
      (String.length msg >= 8 && String.sub msg 0 8 = "rejected"));
  (* terminal jobs free queue slots *)
  run_to_quiescence eng;
  ignore (submit_ok eng (spec ~id:"q3" ()));
  Engine.request_drain eng;
  (match Engine.submit eng (spec ~id:"q4" ()) with
  | Ok _ -> Alcotest.fail "draining submit must be rejected"
  | Error _ -> ());
  Engine.shutdown eng

let test_engine_deadline_degrades () =
  let dir = fresh_dir () in
  let eng = engine dir in
  let id =
    submit_ok eng (spec ~id:"d1" ~steps:400 ~every:4 ~deadline:1e-6 ())
  in
  run_to_quiescence eng;
  Alcotest.(check string) "degraded" "degraded" (job_status eng id);
  Alcotest.(check bool) "degraded record" true
    (List.exists
       (function Ledger.Degraded _ -> true | _ -> false)
       (ledger_events dir));
  Engine.shutdown eng

let test_engine_retry_exhaustion_fails () =
  let dir = fresh_dir () in
  let eng = engine ~retries:2 dir in
  (* retries=0 in the plan: every injected fault is instantly fatal, so
     each engine-level attempt (fresh draws at 90% rate) dies too *)
  let id =
    submit_ok eng (spec ~id:"f1" ~faults:"all:0.9,retries=0" ())
  in
  run_to_quiescence eng;
  Alcotest.(check string) "failed" "failed" (job_status eng id);
  let retrying =
    List.filter
      (function Ledger.Retrying _ -> true | _ -> false)
      (ledger_events dir)
  in
  Alcotest.(check int) "used the retry budget" 2 (List.length retrying);
  Alcotest.(check bool) "failed record" true
    (List.exists
       (function Ledger.Failed _ -> true | _ -> false)
       (ledger_events dir));
  Engine.shutdown eng

let test_engine_retry_backoff_gates () =
  let dir = fresh_dir () in
  let eng =
    match
      Engine.create
        { Engine.cfg_dir = dir; cfg_max_queue = 4; cfg_retries = 3;
          cfg_backoff_s = 10.0; cfg_resume = false }
    with
    | Ok t -> t
    | Error msg -> Alcotest.failf "create: %s" msg
  in
  let id =
    submit_ok eng (spec ~id:"f2" ~faults:"all:0.9,retries=0" ())
  in
  (* first tick dies and arms the 10 s backoff gate at now=100 *)
  Alcotest.(check bool) "attempt runs" true (Engine.tick eng ~now:100.0);
  Alcotest.(check string) "still live" "running" (job_status eng id);
  Alcotest.(check bool) "gated" false (Engine.tick eng ~now:105.0);
  Alcotest.(check bool) "gate opens" true (Engine.tick eng ~now:111.0);
  ignore id;
  Engine.abandon eng

(* --- the headline: abandon (kill -9) + resume converges bitwise --- *)

let test_crash_resume_converges_bitwise () =
  let dir1 = fresh_dir () in
  let dir2 = fresh_dir () in
  (* distinct tenants so three ticks leave BOTH jobs mid-flight *)
  let submit_both eng =
    ignore
      (submit_ok eng (spec ~id:"ja" ~tenant:"alpha" ~seed:3 ~telemetry:true ()));
    ignore
      (submit_ok eng (spec ~id:"jb" ~tenant:"beta" ~faults:"all:1e-3" ()))
  in
  (* uninterrupted reference *)
  let ref_eng = engine dir2 in
  submit_both ref_eng;
  run_to_quiescence ref_eng;
  Engine.shutdown ref_eng;
  (* interrupted run: 3 segments in (both jobs mid-flight), then die *)
  let eng1 = engine dir1 in
  submit_both eng1;
  for _ = 1 to 3 do
    Alcotest.(check bool) "progress" true (Engine.tick eng1 ~now:0.0)
  done;
  Engine.abandon eng1;
  (* resume from the ledger; jobs re-adopt their newest checkpoints *)
  let eng2 = engine ~resume:true dir1 in
  Alcotest.(check bool) "ja re-adopted mid-run" true
    (job_status eng2 "ja" = "queued");
  run_to_quiescence eng2;
  Alcotest.(check string) "ja ok" "ok" (job_status eng2 "ja");
  Alcotest.(check string) "jb recovered" "recovered" (job_status eng2 "jb");
  Engine.shutdown eng2;
  (* resumed records were appended for the adopted jobs *)
  let resumed =
    List.filter_map
      (function
        | Ledger.Resumed { ev_job; ev_completed } -> Some (ev_job, ev_completed)
        | _ -> None)
      (ledger_events dir1)
  in
  Alcotest.(check int) "two jobs resumed" 2 (List.length resumed);
  Alcotest.(check bool) "resumed past step 0" true
    (List.for_all (fun (_, c) -> c > 0) resumed);
  (* byte-identical artifacts vs the uninterrupted engine *)
  List.iter
    (fun (job, file) ->
      let p dir = Filename.concat (Filename.concat (Filename.concat dir "jobs") job) file in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s bitwise" job file)
        (read_file (p dir2)) (read_file (p dir1)))
    [ ("ja", "report.txt"); ("ja", "metrics.json"); ("ja", "counters.json");
      ("jb", "report.txt"); ("jb", "metrics.json") ]

let test_resume_refused_without_flag () =
  let dir = fresh_dir () in
  let eng = engine dir in
  ignore (submit_ok eng (spec ~id:"r1" ()));
  Engine.abandon eng;
  match
    Engine.create
      { Engine.cfg_dir = dir; cfg_max_queue = 4; cfg_retries = 0;
        cfg_backoff_s = 0.0; cfg_resume = false }
  with
  | Ok eng2 ->
    Engine.abandon eng2;
    Alcotest.fail "existing ledger without --resume-queue must be refused"
  | Error msg ->
    Alcotest.(check bool) "mentions resume-queue" true
      (let contains s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       contains msg "resume-queue")

(* --- protocol and request handling --- *)

let test_protocol_parse () =
  (match Protocol.parse_request "{\"op\":\"ping\"}" with
  | Ok Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping");
  (match
     Protocol.parse_request
       "{\"op\":\"submit\",\"id\":\"x\",\"atoms\":32,\"steps\":8,\
        \"faults\":\"all:1e-3\"}"
   with
  | Ok (Protocol.Submit js) ->
    Alcotest.(check string) "id" "x" js.Ledger.js_id;
    Alcotest.(check int) "atoms" 32 js.Ledger.js_atoms;
    Alcotest.(check (option string))
      "faults" (Some "all:1e-3") js.Ledger.js_faults
  | _ -> Alcotest.fail "submit");
  (match Protocol.parse_request "{\"op\":\"cancel\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cancel without job must fail");
  (match Protocol.parse_request "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must fail");
  match Protocol.parse_request "{\"op\":\"warp\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op must fail"

let test_daemon_handle_request () =
  let dir = fresh_dir () in
  let eng = engine dir in
  let reply = Daemon.handle_request eng "{\"op\":\"ping\"}" in
  let j = Sim_util.Minijson.parse reply in
  Alcotest.(check (option bool))
    "pong ok" (Some true)
    (Option.bind (Sim_util.Minijson.member "ok" j) Sim_util.Minijson.to_bool);
  let reply =
    Daemon.handle_request eng
      "{\"op\":\"submit\",\"id\":\"h1\",\"atoms\":128,\"steps\":8,\"every\":4}"
  in
  let j = Sim_util.Minijson.parse reply in
  Alcotest.(check (option string))
    "job id" (Some "h1")
    (Option.bind (Sim_util.Minijson.member "job" j) Sim_util.Minijson.to_string);
  (* invalid spec comes back as a clean error reply *)
  let reply =
    Daemon.handle_request eng
      "{\"op\":\"submit\",\"id\":\"h2\",\"atoms\":-4}"
  in
  let j = Sim_util.Minijson.parse reply in
  Alcotest.(check (option bool))
    "rejected" (Some false)
    (Option.bind (Sim_util.Minijson.member "ok" j) Sim_util.Minijson.to_bool);
  run_to_quiescence eng;
  let reply = Daemon.handle_request eng "{\"op\":\"tail\",\"limit\":3}" in
  Alcotest.(check (option bool))
    "tail ok" (Some true)
    (Option.bind
       (Sim_util.Minijson.member "ok" (Sim_util.Minijson.parse reply))
       Sim_util.Minijson.to_bool);
  Engine.shutdown eng

(* Satellite 1: a suspend request (what the CLI's SIGTERM/SIGINT
   handlers issue) lands on the next segment boundary with a durable
   checkpoint, and the suspended run resumes bitwise. *)
let test_runner_suspend_request () =
  let module Runner = Mdckpt.Runner in
  let dir = fresh_dir () in
  let cfg =
    { Runner.cfg_device = Runner.Opteron; cfg_atoms = 128; cfg_steps = 12;
      cfg_seed = 5; cfg_density = 0.8; cfg_temperature = 1.0;
      cfg_force_path = Mdports.Force_path.default; cfg_every = 4;
      cfg_keep = 8; cfg_dir = dir }
  in
  Runner.request_suspend ~reason:"SIGTERM received";
  let outcome =
    Fun.protect ~finally:Runner.clear_suspend_request (fun () ->
        Runner.run cfg)
  in
  match outcome with
  | Runner.Complete _ -> Alcotest.fail "expected suspension"
  | Runner.Suspended s ->
    Alcotest.(check string) "reason" "SIGTERM received"
      s.Runner.sus_reason;
    Alcotest.(check bool) "durable checkpoint" true
      (s.Runner.sus_path <> None);
    (* an undisturbed run from scratch must match resume's final state *)
    let resumed =
      match Runner.resume (Option.get s.Runner.sus_path) with
      | Ok (Runner.Complete r) -> r
      | Ok (Runner.Suspended _) -> Alcotest.fail "second suspension"
      | Error msg -> Alcotest.failf "resume: %s" msg
    in
    let dir2 = fresh_dir () in
    let straight =
      match Runner.run { cfg with Runner.cfg_dir = dir2 } with
      | Runner.Complete r -> r
      | Runner.Suspended _ -> Alcotest.fail "unexpected suspension"
    in
    Alcotest.(check string) "bitwise"
      (Mdports.Run_result.metrics_json straight)
      (Mdports.Run_result.metrics_json resumed)

let tests =
  ( "serve",
    [ Alcotest.test_case "ledger roundtrip" `Quick test_ledger_roundtrip;
      Alcotest.test_case "ledger rejects corruption" `Quick
        test_ledger_rejects_corruption;
      Alcotest.test_case "ledger torn tail at every boundary" `Quick
        test_ledger_torn_tail_every_boundary;
      Alcotest.test_case "engine runs jobs fairly" `Quick
        test_engine_runs_jobs_fairly;
      Alcotest.test_case "engine cancel mid-run" `Quick
        test_engine_cancel_mid_run;
      Alcotest.test_case "engine admission control" `Quick
        test_engine_admission_control;
      Alcotest.test_case "engine deadline degrades" `Quick
        test_engine_deadline_degrades;
      Alcotest.test_case "engine retry exhaustion fails" `Quick
        test_engine_retry_exhaustion_fails;
      Alcotest.test_case "engine retry backoff gates" `Quick
        test_engine_retry_backoff_gates;
      Alcotest.test_case "crash+resume converges bitwise" `Quick
        test_crash_resume_converges_bitwise;
      Alcotest.test_case "resume refused without flag" `Quick
        test_resume_refused_without_flag;
      Alcotest.test_case "protocol parse" `Quick test_protocol_parse;
      Alcotest.test_case "daemon handle_request" `Quick
        test_daemon_handle_request;
      Alcotest.test_case "runner suspend request" `Quick
        test_runner_suspend_request ] )
