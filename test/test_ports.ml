(* Integration tests across the architecture ports: physics agreement
   between precisions and devices, and timing-model sanity. *)

module System = Mdcore.System
module Init = Mdcore.Init
module Forces = Mdcore.Forces
module Verlet = Mdcore.Verlet
module Cell = Mdports.Cell_port
module Gpu = Mdports.Gpu_port
module Mta = Mdports.Mta_port
module Opteron = Mdports.Opteron_port
module F32k = Mdports.F32_kernel
module Rr = Mdports.Run_result

let sys ?(n = 128) () = Init.build ~seed:31 ~n ()

let steps = 3

(* ---------------- F32 kernel ---------------- *)

let test_f32_kernel_params_rounded () =
  let p = F32k.of_system (sys ()) in
  List.iter
    (fun (name, v) ->
      Alcotest.(check bool) (name ^ " is binary32") true (Sim_util.F32.is_f32 v))
    [ ("box", p.F32k.box); ("half_box", p.F32k.half_box);
      ("rc2", p.F32k.rc2); ("sigma2", p.F32k.sigma2);
      ("eps24", p.F32k.eps24); ("eps4", p.F32k.eps4) ]

let test_f32_pair_terms_cutoff () =
  let p = F32k.of_system (sys ()) in
  Alcotest.(check bool) "outside cutoff" true
    (F32k.pair_terms p (p.F32k.rc2 +. 1.0) = None);
  Alcotest.(check bool) "zero distance excluded" true
    (F32k.pair_terms p 0.0 = None);
  Alcotest.(check bool) "inside interacts" true
    (F32k.pair_terms p 1.0 <> None)

let test_f32_matches_double_reference () =
  let s_ref = sys () in
  let s_f32 = System.copy s_ref in
  let pe_ref = Forces.compute_gather s_ref in
  let pe_f32 =
    (Cell.apply_f32_engine s_f32).Mdcore.Engine.compute s_f32
  in
  Alcotest.(check bool) "PE within f32 tolerance" true
    (abs_float (pe_ref -. pe_f32) < 1e-3 *. abs_float pe_ref);
  Alcotest.(check bool) "accelerations within f32 tolerance" true
    (System.max_acceleration_delta s_ref s_f32 < 0.05)

(* ---------------- Opteron port ---------------- *)

let test_opteron_physics_is_reference () =
  let s = sys () in
  let result = Opteron.run ~steps s in
  let s2 = System.copy s in
  let records = Verlet.run s2 ~engine:Forces.gather_engine ~steps () in
  List.iter2
    (fun (a : Verlet.step_record) (b : Verlet.step_record) ->
      Alcotest.(check (float 1e-9)) "identical trajectory energies"
        a.Verlet.total_energy b.Verlet.total_energy)
    result.Rr.records records

let test_opteron_counts () =
  let n = 128 in
  let result = Opteron.run ~steps (sys ~n ()) in
  Alcotest.(check int) "pairs = (steps+1) * n(n-1)"
    ((steps + 1) * n * (n - 1))
    result.Rr.pairs_evaluated;
  Alcotest.(check bool) "some interactions" true (result.Rr.interactions > 0)

let test_opteron_breakdown_sums () =
  let result = Opteron.run ~steps (sys ()) in
  let total =
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 result.Rr.breakdown
  in
  Alcotest.(check (float 1e-12)) "compute+memory = total" result.Rr.seconds
    total

let test_opteron_memory_excess_grows () =
  let small = Opteron.memory_excess_cycles_per_pair ~n:256 () in
  let large = Opteron.memory_excess_cycles_per_pair ~n:4096 () in
  Alcotest.(check bool)
    (Printf.sprintf "excess grows: %.3f -> %.3f cyc/pair" small large)
    true (large > small +. 0.5)

let test_opteron_runtime_superquadratic_shape () =
  (* The defining Fig. 9 behaviour at model scale. *)
  let t1 =
    Opteron.seconds_for ~steps ~force_path:Mdports.Force_path.brute ~n:128 ()
  in
  let t2 =
    Opteron.seconds_for ~steps ~force_path:Mdports.Force_path.brute ~n:256 ()
  in
  Alcotest.(check bool) "quadrupling work at least triples time" true
    (t2 /. t1 > 3.0)

(* ---------------- Cell port ---------------- *)

let shared_profile = lazy (Cell.profile_run ~steps (sys ()))

let test_cell_profile_records_match_f32_run () =
  let profile = Lazy.force shared_profile in
  let s = sys () in
  let s2 = System.copy s in
  let records =
    Verlet.run s2 ~engine:(Cell.apply_f32_engine s2) ~steps ()
  in
  List.iter2
    (fun (a : Verlet.step_record) (b : Verlet.step_record) ->
      Alcotest.(check (float 1e-9)) "profile energies = f32 engine"
        a.Verlet.total_energy b.Verlet.total_energy)
    (Cell.profile_records profile)
    records

let test_cell_more_spes_faster () =
  let profile = Lazy.force shared_profile in
  (* Compare the offloaded computation itself; at this tiny test size the
     total is dominated by launch costs, which is Fig. 6's subject. *)
  let t spes =
    Cell.accel_seconds
      (Cell.time_with profile { Cell.default_config with n_spes = spes })
  in
  let times = List.map t [ 1; 2; 4; 8 ] in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in SPE count" true (decreasing times)

let test_cell_respawn_slower_than_persistent () =
  let profile = Lazy.force shared_profile in
  let t launch =
    (Cell.time_with profile { Cell.default_config with launch }).Rr.seconds
  in
  Alcotest.(check bool) "respawn costs more" true
    (t Cell.Respawn > t Cell.Persistent)

let test_cell_variant_ordering () =
  let profile = Lazy.force shared_profile in
  let t variant =
    Cell.accel_seconds
      (Cell.time_with profile
         { Cell.default_config with n_spes = 1; variant })
  in
  let times = List.map t Mdports.Cell_variant.all in
  let rec nonincreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && nonincreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "ladder monotone" true (nonincreasing times)

let test_cell_breakdown_sums () =
  let profile = Lazy.force shared_profile in
  let r = Cell.time_with profile Cell.default_config in
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 r.Rr.breakdown in
  Alcotest.(check (float 1e-12)) "ledger total = runtime" r.Rr.seconds total

let test_cell_spes_validation () =
  let profile = Lazy.force shared_profile in
  Alcotest.(check bool) "9 SPEs rejected" true
    (try
       ignore (Cell.time_with profile { Cell.default_config with n_spes = 9 });
       false
     with Invalid_argument _ -> true)

let test_cell_tiled_staging () =
  (* Force the LS tile smaller than the system: more DMA requests, same
     compute, identical results otherwise. *)
  let profile = Lazy.force shared_profile in
  let untiled = Cell.time_with profile Cell.default_config in
  let tiled = Cell.time_with ~j_chunk:16 profile Cell.default_config in
  Alcotest.(check bool) "tiled staging costs more DMA time" true
    (Rr.breakdown_get tiled "dma" > Rr.breakdown_get untiled "dma");
  Alcotest.(check (float 1e-12)) "compute unchanged"
    (Rr.breakdown_get untiled "compute")
    (Rr.breakdown_get tiled "compute")

let test_cell_ppe_only_slower () =
  let profile = Lazy.force shared_profile in
  let ppe = Cell.time_ppe_only profile in
  let one_spe =
    Cell.accel_seconds
      (Cell.time_with profile { Cell.default_config with n_spes = 1 })
  in
  Alcotest.(check bool) "PPE only much slower than one SPE's compute" true
    (ppe.Rr.seconds > 3.0 *. one_spe)

let test_cell_energy_drift_reasonable () =
  let profile = Lazy.force shared_profile in
  let r = Cell.time_with profile Cell.default_config in
  Alcotest.(check bool) "single precision still conserves roughly" true
    (Rr.energy_drift r < 0.05)

let test_cell_double_precision () =
  let s = sys () in
  let dp_profile = Cell.profile_run ~steps ~precision:Cell.Double s in
  (* DP physics is exactly the double-precision reference. *)
  let opt = Opteron.run ~steps s in
  List.iter2
    (fun (a : Verlet.step_record) (b : Verlet.step_record) ->
      Alcotest.(check (float 1e-9)) "dp physics = reference"
        a.Verlet.total_energy b.Verlet.total_energy)
    (Cell.profile_records dp_profile)
    opt.Rr.records;
  (* DP compute slower than SP compute on the same workload. *)
  let sp_profile = Lazy.force shared_profile in
  let accel precision profile =
    Cell.accel_seconds
      (Cell.time_with profile
         { Cell.default_config with n_spes = 1; precision })
  in
  Alcotest.(check bool) "dp compute slower" true
    (accel Cell.Double dp_profile > accel Cell.Single sp_profile)

let test_cell_dp_profile_precision () =
  let s = sys () in
  let p = Cell.profile_run ~steps ~precision:Cell.Double s in
  Alcotest.(check bool) "precision recorded" true
    (Cell.profile_precision p = Cell.Double)

(* ---------------- GPU port ---------------- *)

let test_gpu_physics_close_to_reference () =
  let s = sys () in
  let gpu = Gpu.run ~steps s in
  let opt = Opteron.run ~steps s in
  let e_gpu = Rr.final_total_energy gpu and e_opt = Rr.final_total_energy opt in
  Alcotest.(check bool)
    (Printf.sprintf "energies close: %.4f vs %.4f" e_gpu e_opt)
    true
    (abs_float (e_gpu -. e_opt) < 0.01 *. abs_float e_opt)

let test_gpu_matches_cell_f32_exactly () =
  (* Both single-precision ports share the same staged arithmetic, so
     their trajectories agree to double-precision roundoff of the
     integrator bookkeeping. *)
  let s = sys () in
  let gpu = Gpu.run ~steps s in
  let profile = Cell.profile_run ~steps s in
  List.iter2
    (fun (a : Verlet.step_record) (b : Verlet.step_record) ->
      Alcotest.(check (float 1e-6)) "f32 trajectories agree"
        a.Verlet.total_energy b.Verlet.total_energy)
    gpu.Rr.records
    (Cell.profile_records profile)

let test_gpu_setup_excluded () =
  let r = Gpu.run ~steps (sys ()) in
  Alcotest.(check bool) "setup recorded" true (Gpu.setup_seconds r > 0.0);
  let ledger_total =
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 r.Rr.breakdown
  in
  Alcotest.(check (float 1e-12)) "seconds = ledger - setup"
    (ledger_total -. Gpu.setup_seconds r)
    r.Rr.seconds

let test_gpu_per_step_bus_cost () =
  let r3 = Gpu.run ~steps:3 (sys ()) in
  let r6 = Gpu.run ~steps:6 (sys ()) in
  let upload r = Rr.breakdown_get r "upload" in
  (* steps+1 force evaluations -> 4 vs 7 uploads *)
  Alcotest.(check bool) "upload scales with steps" true
    (upload r6 > upload r3 *. 1.5)

let test_gpu_small_n_dominated_by_overheads () =
  let r = Gpu.run ~steps (sys ~n:128 ()) in
  let bus =
    Rr.breakdown_get r "upload" +. Rr.breakdown_get r "readback"
    +. Rr.breakdown_get r "dispatch"
  in
  Alcotest.(check bool) "bus+dispatch dominate at tiny N" true
    (bus > Rr.breakdown_get r "shader")

let test_gpu_reduction_same_physics_slower () =
  let s = sys () in
  let w = Gpu.run ~steps s in
  let red = Gpu.run ~steps ~pe_strategy:Gpu.Gpu_reduction s in
  List.iter2
    (fun (a : Verlet.step_record) (b : Verlet.step_record) ->
      Alcotest.(check (float 1e-4)) "same trajectory" a.Verlet.total_energy
        b.Verlet.total_energy)
    w.Rr.records red.Rr.records;
  Alcotest.(check bool) "reduction strictly slower" true
    (red.Rr.seconds > w.Rr.seconds)

(* ---------------- Opteron pairlist timing ---------------- *)

let test_opteron_pairlist_same_physics () =
  (* Pairlist physics must track the reference within list-validity
     tolerance (exact while no neighbour crosses the skin). *)
  let s = Init.build ~seed:31 ~n:216 () in
  let n2 = Opteron.run ~steps s in
  let pl = Opteron.run_pairlist ~steps s in
  List.iter2
    (fun (a : Verlet.step_record) (b : Verlet.step_record) ->
      Alcotest.(check (float 1e-7)) "same energies" a.Verlet.total_energy
        b.Verlet.total_energy)
    n2.Rr.records pl.Rr.records

let test_opteron_pairlist_faster () =
  let s = Init.build ~seed:31 ~n:512 () in
  let n2 = Opteron.run ~steps ~force_path:Mdports.Force_path.brute s in
  let pl = Opteron.run_pairlist ~steps s in
  Alcotest.(check bool)
    (Printf.sprintf "pairlist %.4f s < N^2 %.4f s" pl.Rr.seconds n2.Rr.seconds)
    true
    (pl.Rr.seconds < n2.Rr.seconds);
  Alcotest.(check bool) "and examines fewer pairs" true
    (pl.Rr.pairs_evaluated < n2.Rr.pairs_evaluated)

(* ---------------- Production pairlist path ---------------- *)

let contains_pairlist label =
  let needle = "pairlist" in
  let nl = String.length needle and ll = String.length label in
  let rec go i = i + nl <= ll && (String.sub label i nl = needle || go (i + 1)) in
  go 0

let test_default_force_path_flips () =
  (* The production default: every port takes the pairlist at admissible
     sizes and says so in its device label; the 128-atom fixture box is
     below the min-image bound and silently stays on brute N². *)
  let big = Init.build ~seed:31 ~n:512 () in
  let small = sys () in
  List.iter
    (fun (name, f) ->
      Alcotest.(check bool) (name ^ " pairlist at 512 atoms") true
        (contains_pairlist (f big).Rr.device);
      Alcotest.(check bool) (name ^ " brute fallback at 128 atoms") false
        (contains_pairlist (f small).Rr.device))
    [ ("opteron", fun s -> Opteron.run ~steps:1 s);
      ("cell", fun s -> Cell.run ~steps:1 s);
      ("gpu", fun s -> Gpu.run ~steps:1 s);
      ("mta", fun s -> Mta.run ~steps:1 s) ]

let test_gather_ports_pairlist_bitwise () =
  (* Cell, GPU and MTA traverse the full neighbour rows with the same
     per-row ascending hit order as their N² gathers, and out-of-reach
     entries contribute exactly nothing — so flipping the engine changes
     no physics bit on these ports, in either precision. *)
  let n = 512 in
  let check name runner =
    let pl = runner Mdports.Force_path.default in
    let n2 = runner Mdports.Force_path.brute in
    Alcotest.(check bool) (name ^ ": records bitwise") true
      (pl.Rr.records = n2.Rr.records);
    Alcotest.(check int) (name ^ ": same interactions") n2.Rr.interactions
      pl.Rr.interactions
  in
  check "cell" (fun force_path ->
      Cell.run ~steps ~force_path (Init.build ~seed:31 ~n ()));
  check "gpu" (fun force_path ->
      Gpu.run ~steps ~force_path (Init.build ~seed:31 ~n ()));
  check "mta" (fun force_path ->
      Mta.run ~steps ~force_path (Init.build ~seed:31 ~n ()))

let test_pairlist_faster_on_every_port () =
  (* The tentpole acceptance: at the largest bench size the pairlist
     path beats per-step N² on all four device models.  (At n = 512 the
     GPU's fixed per-step costs plus the host-charged rebuild scan eat
     the shader saving; the win opens up from ~1k atoms.) *)
  let n = 1024 in
  List.iter
    (fun (name, runner) ->
      let pl = runner Mdports.Force_path.default in
      let n2 = runner Mdports.Force_path.brute in
      Alcotest.(check bool)
        (Printf.sprintf "%s: pairlist %.4f s < N² %.4f s" name pl.Rr.seconds
           n2.Rr.seconds)
        true
        (pl.Rr.seconds < n2.Rr.seconds))
    [ ("opteron", fun force_path ->
          Opteron.run ~steps ~force_path (Init.build ~seed:31 ~n ()));
      ("cell", fun force_path ->
          Cell.run ~steps ~force_path (Init.build ~seed:31 ~n ()));
      ("gpu", fun force_path ->
          Gpu.run ~steps ~force_path (Init.build ~seed:31 ~n ()));
      ("mta", fun force_path ->
          Mta.run ~steps ~force_path (Init.build ~seed:31 ~n ())) ]

(* ---------------- MTA port ---------------- *)

let test_mta_physics_is_reference () =
  let s = sys () in
  let mta = Mta.run ~steps s in
  let opt = Opteron.run ~steps s in
  List.iter2
    (fun (a : Verlet.step_record) (b : Verlet.step_record) ->
      Alcotest.(check (float 1e-9)) "identical double-precision physics"
        a.Verlet.total_energy b.Verlet.total_energy)
    mta.Rr.records opt.Rr.records

let test_mta_fully_beats_partially () =
  let s = sys () in
  let full = Mta.run ~steps s in
  let partial = Mta.run ~steps ~mode:Mta.Partially_multithreaded s in
  Alcotest.(check bool) "restructured reduction wins" true
    (full.Rr.seconds < partial.Rr.seconds /. 2.0)

let test_mta_partial_serial_time () =
  let s = sys () in
  let partial = Mta.run ~steps ~mode:Mta.Partially_multithreaded s in
  Alcotest.(check bool) "serial category dominates" true
    (Rr.breakdown_get partial "serial" > 0.5 *. partial.Rr.seconds)

let test_mta_sync_charged_in_fully_mode () =
  let s = sys () in
  let full = Mta.run ~steps s in
  let partial = Mta.run ~steps ~mode:Mta.Partially_multithreaded s in
  Alcotest.(check bool) "full/empty ops appear in fully-MT mode" true
    (Rr.breakdown_get full "sync" > 0.0);
  Alcotest.(check (float 0.0)) "no sync ops in as-written kernel" 0.0
    (Rr.breakdown_get partial "sync")

let test_mta_breakdown_sums () =
  let r = Mta.run ~steps (sys ()) in
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 r.Rr.breakdown in
  Alcotest.(check (float 1e-12)) "ledger total = runtime" r.Rr.seconds total

let test_ports_agree_on_hits () =
  (* The double-precision ports must count exactly the same interactions. *)
  let s = sys () in
  let opt = Opteron.run ~steps s in
  let mta = Mta.run ~steps s in
  Alcotest.(check int) "same interaction count" opt.Rr.interactions
    mta.Rr.interactions

let tests =
  ( "ports",
    [ Alcotest.test_case "f32 params rounded" `Quick
        test_f32_kernel_params_rounded;
      Alcotest.test_case "f32 pair terms cutoff" `Quick
        test_f32_pair_terms_cutoff;
      Alcotest.test_case "f32 matches double" `Quick
        test_f32_matches_double_reference;
      Alcotest.test_case "opteron physics = reference" `Quick
        test_opteron_physics_is_reference;
      Alcotest.test_case "opteron counts" `Quick test_opteron_counts;
      Alcotest.test_case "opteron breakdown sums" `Quick
        test_opteron_breakdown_sums;
      Alcotest.test_case "opteron memory excess grows" `Slow
        test_opteron_memory_excess_grows;
      Alcotest.test_case "opteron superquadratic shape" `Quick
        test_opteron_runtime_superquadratic_shape;
      Alcotest.test_case "cell profile records" `Quick
        test_cell_profile_records_match_f32_run;
      Alcotest.test_case "cell more SPEs faster" `Quick
        test_cell_more_spes_faster;
      Alcotest.test_case "cell respawn slower" `Quick
        test_cell_respawn_slower_than_persistent;
      Alcotest.test_case "cell variant ordering" `Quick
        test_cell_variant_ordering;
      Alcotest.test_case "cell breakdown sums" `Quick test_cell_breakdown_sums;
      Alcotest.test_case "cell spes validation" `Quick
        test_cell_spes_validation;
      Alcotest.test_case "cell PPE-only slower" `Quick
        test_cell_ppe_only_slower;
      Alcotest.test_case "cell tiled staging" `Quick test_cell_tiled_staging;
      Alcotest.test_case "cell f32 energy drift" `Quick
        test_cell_energy_drift_reasonable;
      Alcotest.test_case "cell double precision" `Quick
        test_cell_double_precision;
      Alcotest.test_case "cell dp profile precision" `Quick
        test_cell_dp_profile_precision;
      Alcotest.test_case "gpu reduction slower, same physics" `Quick
        test_gpu_reduction_same_physics_slower;
      Alcotest.test_case "opteron pairlist physics" `Quick
        test_opteron_pairlist_same_physics;
      Alcotest.test_case "opteron pairlist faster" `Quick
        test_opteron_pairlist_faster;
      Alcotest.test_case "gpu physics close to reference" `Quick
        test_gpu_physics_close_to_reference;
      Alcotest.test_case "gpu = cell f32 exactly" `Quick
        test_gpu_matches_cell_f32_exactly;
      Alcotest.test_case "gpu setup excluded" `Quick test_gpu_setup_excluded;
      Alcotest.test_case "gpu bus cost per step" `Quick
        test_gpu_per_step_bus_cost;
      Alcotest.test_case "gpu tiny-N overhead-bound" `Quick
        test_gpu_small_n_dominated_by_overheads;
      Alcotest.test_case "mta physics = reference" `Quick
        test_mta_physics_is_reference;
      Alcotest.test_case "mta fully beats partially" `Quick
        test_mta_fully_beats_partially;
      Alcotest.test_case "mta partial serial time" `Quick
        test_mta_partial_serial_time;
      Alcotest.test_case "mta sync accounting" `Quick
        test_mta_sync_charged_in_fully_mode;
      Alcotest.test_case "mta breakdown sums" `Quick test_mta_breakdown_sums;
      Alcotest.test_case "default force path flips" `Quick
        test_default_force_path_flips;
      Alcotest.test_case "gather ports pairlist bitwise" `Quick
        test_gather_ports_pairlist_bitwise;
      Alcotest.test_case "pairlist faster on every port" `Slow
        test_pairlist_faster_on_every_port;
      Alcotest.test_case "ports agree on hits" `Quick test_ports_agree_on_hits
    ] )
