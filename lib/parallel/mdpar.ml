(* Persistent domain pool.  See the .mli for the design constraints; the
   load-bearing implementation choices are:

   - Each worker owns a mutex + condvar and a one-deep job slot.
     Dispatch is [Mutex.try_lock]-based: a busy (or already recruited)
     worker is simply skipped, which is what makes nested regions safe —
     an inner region entered from a worker finds everyone busy, recruits
     nobody, and the caller drains the whole range itself.
   - A region's completion state (pending count + condvar) is allocated
     per call, not per pool, so concurrent regions on one pool do not
     share counters.
   - Reductions write chunk partials into an array indexed by chunk id,
     claimed from an atomic counter; which domain computes a chunk can
     vary, where its partial lands cannot. *)

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;            (* job arrival and job completion *)
  mutable job : (unit -> unit) option;
  mutable stop : bool;
}

type prof_set = {
  p_regions : Mdprof.counter;
  p_chunks : Mdprof.counter;
  p_mutex : Mutex.t;
      (* unlike virtual counters, these are bumped from whichever domain
         runs a region, so updates need the lock *)
}

type t = {
  size : int;
  workers : worker array;        (* [size - 1] entries *)
  handles : unit Domain.t array;
  mutable alive : bool;
  mutable obs : Mdobs.track option;  (* host-clock track, created lazily *)
  mutable prof : prof_set option;    (* host-clock counters, created lazily *)
}

let worker_loop (w : worker) =
  let rec loop () =
    Mutex.lock w.mutex;
    while w.job = None && not w.stop do
      Condition.wait w.cond w.mutex
    done;
    match w.job with
    | Some job ->
      Mutex.unlock w.mutex;
      job ();
      Mutex.lock w.mutex;
      w.job <- None;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex;
      loop ()
    | None ->
      (* stop requested *)
      Mutex.unlock w.mutex
  in
  loop ()

let create ?domains () =
  let size =
    match domains with
    | None -> Domain.recommended_domain_count ()
    | Some d ->
      if d <= 0 then invalid_arg "Mdpar.create: domains must be positive";
      d
  in
  let workers =
    Array.init (size - 1) (fun _ ->
        { mutex = Mutex.create ();
          cond = Condition.create ();
          job = None;
          stop = false })
  in
  let handles =
    Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers
  in
  { size; workers; handles; alive = true; obs = None; prof = None }

let size t = t.size

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        (* Let an in-flight job finish; the loop re-checks [stop] before
           parking again. *)
        w.stop <- true;
        Condition.broadcast w.cond;
        Mutex.unlock w.mutex)
      t.workers;
    Array.iter Domain.join t.handles
  end

(* ------------------------------------------------------------------ *)
(* Default size and the shared registry                                *)
(* ------------------------------------------------------------------ *)

let default_override = ref None

let set_default_domains d =
  if d <= 0 then invalid_arg "Mdpar.set_default_domains: must be positive";
  default_override := Some d

let default_domains () =
  match !default_override with
  | Some d -> d
  | None -> begin
    match Sys.getenv_opt "MDSIM_DOMAINS" with
    | Some v -> begin
      match int_of_string_opt (String.trim v) with
      | Some d when d > 0 -> d
      | _ -> Domain.recommended_domain_count ()
    end
    | None -> Domain.recommended_domain_count ()
  end

let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_mutex = Mutex.create ()
let at_exit_registered = ref false

let get ?domains () =
  let d = match domains with Some d -> d | None -> default_domains () in
  if d <= 0 then invalid_arg "Mdpar.get: domains must be positive";
  Mutex.lock registry_mutex;
  let pool =
    match Hashtbl.find_opt registry d with
    | Some p -> p
    | None ->
      let p = create ~domains:d () in
      Hashtbl.replace registry d p;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit (fun () ->
            Mutex.lock registry_mutex;
            let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
            Hashtbl.reset registry;
            Mutex.unlock registry_mutex;
            List.iter shutdown pools)
      end;
      p
  in
  Mutex.unlock registry_mutex;
  pool

(* ------------------------------------------------------------------ *)
(* Parallel regions                                                    *)
(* ------------------------------------------------------------------ *)

(* Host-clock observability track for this pool: created on first use
   with tracing enabled, so pools built before [Mdobs.enable] still get a
   live track later.  A lost race just yields a benign [#n]-suffixed
   duplicate; host tracks carry no determinism guarantee. *)
let obs_track t =
  if not (Mdobs.enabled ()) then None
  else begin
    match t.obs with
    | Some _ as o -> o
    | None ->
      let tr =
        Mdobs.new_track ~clock:Mdobs.Host
          (Printf.sprintf "mdpar/pool-%d" t.size)
      in
      t.obs <- Some tr;
      Some tr
  end

(* Host-clock profile counters, lazily like [obs_track].  Registered
   outside the caller's scope so every region on this pool accumulates
   into one stable pair of names; a lost creation race is benign
   (get-or-create returns the same cells). *)
let prof_set t =
  if not (Mdprof.enabled ()) then None
  else begin
    match t.prof with
    | Some _ as p -> p
    | None ->
      let p =
        Mdobs.with_scope "" (fun () ->
            { p_regions =
                Mdprof.counter ~clock:Mdprof.Host
                  (Printf.sprintf "mdpar/pool-%d/regions" t.size);
              p_chunks =
                Mdprof.counter ~clock:Mdprof.Host
                  (Printf.sprintf "mdpar/pool-%d/chunks" t.size);
              p_mutex = Mutex.create () })
      in
      t.prof <- Some p;
      Some p
  end

let prof_count t ~chunks =
  match prof_set t with
  | Some p ->
    Mutex.lock p.p_mutex;
    Mdprof.incr p.p_regions;
    Mdprof.add p.p_chunks chunks;
    Mutex.unlock p.p_mutex
  | None -> ()

(* Hand [work] to every currently idle worker and run it inline too;
   return once every recruited copy has finished.  [work] must be
   idempotent-by-partition: participants pull work items from a shared
   atomic source, so running it on fewer domains only means fewer
   helpers. *)
let run_region ?(label = "region") t (work : unit -> unit) =
  if t.size = 1 || not t.alive || Array.length t.workers = 0 then work ()
  else begin
    let obs = obs_track t in
    let t0 = match obs with Some _ -> Mdobs.host_now () | None -> 0.0 in
    let recruited = ref 0 in
    let fin_mutex = Mutex.create () in
    let fin_cond = Condition.create () in
    let pending = ref 0 in
    let error = Atomic.make None in
    let job () =
      (try work ()
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set error None (Some (e, bt))));
      Mutex.lock fin_mutex;
      decr pending;
      if !pending = 0 then Condition.broadcast fin_cond;
      Mutex.unlock fin_mutex
    in
    let try_recruit w =
      if Mutex.try_lock w.mutex then begin
        let idle = w.job = None && not w.stop in
        if idle then begin
          w.job <- Some job;
          Condition.broadcast w.cond
        end;
        Mutex.unlock w.mutex;
        idle
      end
      else false
    in
    Array.iter
      (fun w ->
        Mutex.lock fin_mutex;
        incr pending;
        Mutex.unlock fin_mutex;
        if try_recruit w then incr recruited
        else begin
          Mutex.lock fin_mutex;
          decr pending;
          Mutex.unlock fin_mutex
        end)
      t.workers;
    let caller_error =
      try
        work ();
        None
      with e -> Some (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fin_mutex;
    while !pending > 0 do
      Condition.wait fin_cond fin_mutex
    done;
    Mutex.unlock fin_mutex;
    (match obs with
    | Some tr ->
      (* workers = recruited helpers + the caller *)
      Mdobs.span tr ~name:label ~ts:t0
        ~dur:(Mdobs.host_now () -. t0)
        ~args:[ ("workers", Mdobs.Int (!recruited + 1)) ]
        ()
    | None -> ());
    match caller_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> begin
      match Atomic.get error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let parallel_for ?chunk t ~lo ~hi body =
  let len = hi - lo + 1 in
  if len <= 0 then ()
  else if t.size = 1 || len = 1 then begin
    prof_count t ~chunks:1;
    for i = lo to hi do
      body i
    done
  end
  else begin
    let chunk =
      match chunk with
      | Some c ->
        if c <= 0 then invalid_arg "Mdpar.parallel_for: chunk must be positive";
        c
      | None -> max 1 (len / (4 * t.size))
    in
    prof_count t ~chunks:((len + chunk - 1) / chunk);
    let next = Atomic.make lo in
    let obs = obs_track t in
    let work () =
      let chunks = ref 0 in
      let rec drain () =
        let start = Atomic.fetch_and_add next chunk in
        if start <= hi then begin
          let stop = min hi (start + chunk - 1) in
          for i = start to stop do
            body i
          done;
          incr chunks;
          drain ()
        end
      in
      drain ();
      match obs with
      | Some tr ->
        Mdobs.instant tr ~name:"drain" ~ts:(Mdobs.host_now ())
          ~args:[ ("chunks", Mdobs.Int !chunks) ]
          ()
      | None -> ()
    in
    run_region ~label:"parallel_for" t work
  end

let parallel_for_reduce ?chunks t ~lo ~hi ~init ~combine ~body =
  let len = hi - lo + 1 in
  if len <= 0 then init
  else begin
    let nchunks =
      match chunks with
      | Some c ->
        if c <= 0 then
          invalid_arg "Mdpar.parallel_for_reduce: chunks must be positive";
        min c len
      | None -> max 1 (min t.size len)
    in
    if nchunks = 1 then begin
      prof_count t ~chunks:1;
      let acc = ref init in
      for i = lo to hi do
        acc := combine !acc (body i)
      done;
      !acc
    end
    else begin
      prof_count t ~chunks:nchunks;
      let partials = Array.make nchunks init in
      let next = Atomic.make 0 in
      let obs = obs_track t in
      let work () =
        let drained = ref 0 in
        let rec drain () =
          let c = Atomic.fetch_and_add next 1 in
          if c < nchunks then begin
            let clo = lo + (c * len / nchunks)
            and chi = lo + ((c + 1) * len / nchunks) - 1 in
            let acc = ref init in
            for i = clo to chi do
              acc := combine !acc (body i)
            done;
            partials.(c) <- !acc;
            incr drained;
            drain ()
          end
        in
        drain ();
        match obs with
        | Some tr ->
          Mdobs.instant tr ~name:"drain" ~ts:(Mdobs.host_now ())
            ~args:[ ("chunks", Mdobs.Int !drained) ]
            ()
        | None -> ()
      in
      run_region ~label:"reduce" t work;
      Array.fold_left combine init partials
    end
  end

let map_list t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let output = Array.make n None in
    parallel_for ~chunk:1 t ~lo:0 ~hi:(n - 1) (fun i ->
        output.(i) <- Some (f input.(i)));
    Array.to_list
      (Array.map
         (function
           | Some y -> y
           | None -> assert false (* parallel_for covered every index *))
         output)
