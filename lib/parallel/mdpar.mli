(** Persistent domain pool for host-side parallelism.

    The simulator's virtual device-time models are sequential and
    deterministic by construction; this module parallelizes the *host*
    work that regenerates the paper's artifacts — force kernels,
    neighbour-list builds, and the experiment harness — across OCaml 5
    domains.  Design constraints, in order:

    - {b Determinism.}  Every primitive produces the same result for a
      given pool size on every run: work items are indexed, partial
      results land in slots keyed by work-item (never by worker), and
      reductions combine partials in slot order.  Disjoint-write kernels
      (one atom row per index) are bit-identical to serial for {e any}
      pool size.
    - {b No spawn-per-call.}  Workers are spawned once and parked on a
      condition variable; dispatching a parallel region costs two mutex
      handshakes per worker instead of a [Domain.spawn] (~100µs) per
      call.
    - {b Nesting safety.}  A parallel region entered from inside a
      worker recruits only *idle* workers and the caller always
      processes work itself, so nested regions degrade to serial
      execution instead of deadlocking.
    - {b Serial fallback.}  A pool of size 1 never spawns and runs every
      primitive inline — byte-for-byte the sequential program. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (none when
    [domains = 1]).  [domains] defaults to {!default_domains}[ ()].
    Raises [Invalid_argument] if [domains <= 0].  Prefer {!get} unless
    you need a pool with an explicit lifetime ({!shutdown}). *)

val get : ?domains:int -> unit -> t
(** The shared pool registry: returns a (cached) pool of the requested
    size, spawning it on first use.  Cached pools are shut down via
    [at_exit].  Without [?domains] the size is {!default_domains}[ ()]. *)

val size : t -> int
(** Number of participating domains (workers + the calling domain). *)

val shutdown : t -> unit
(** Join the pool's workers.  Subsequent use of the pool runs serially.
    Idempotent.  Called automatically at exit for {!get}-cached pools. *)

val set_default_domains : int -> unit
(** Override the default pool size (the [--domains] CLI flag).  Raises
    [Invalid_argument] on non-positive sizes. *)

val default_domains : unit -> int
(** Resolution order: {!set_default_domains} override, else the
    [MDSIM_DOMAINS] environment variable, else
    [Domain.recommended_domain_count ()]. *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi body] runs [body i] for every
    [lo <= i <= hi] (inclusive; empty when [hi < lo]).  Indices are
    handed out in chunks of [chunk] (default: range/(4·size), at least
    1) from a shared counter.  The body must only write state disjoint
    per index.  Exceptions from any participant are re-raised in the
    caller after the region quiesces. *)

val parallel_for_reduce :
  ?chunks:int ->
  t ->
  lo:int ->
  hi:int ->
  init:'a ->
  combine:('a -> 'a -> 'a) ->
  body:(int -> 'a) ->
  'a
(** Folds [body i] over the range.  The range is cut into [chunks]
    contiguous slices (default [min (size pool) length]; boundaries
    depend only on the chunk count, never on scheduling), each slice is
    folded left-to-right from [init], and slice partials are combined in
    slice order — so the result is a pure function of (range, chunk
    count).  With one chunk the fold is exactly the serial one.  [init]
    must be a neutral element of [combine]. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map] (one work item per element). *)
