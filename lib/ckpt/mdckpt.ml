module Rng = Sim_util.Rng
module System = Mdcore.System
module Params = Mdcore.Params
module Verlet = Mdcore.Verlet
module Thermostat = Mdcore.Thermostat
module Run_result = Mdports.Run_result

let schema = "mdsim-checkpoint-v1"
let magic = schema ^ "\n"

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3 / zlib polynomial, table-driven)                 *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Wire encoding: little-endian, 64-bit ints, bit-exact floats         *)
(* ------------------------------------------------------------------ *)

exception Corrupt of string

module Wire = struct
  let u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
  let i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
  let f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)
  let bool buf v = Buffer.add_char buf (if v then '\001' else '\000')

  let str buf s =
    i64 buf (String.length s);
    Buffer.add_string buf s

  let opt buf f = function
    | None -> bool buf false
    | Some v ->
      bool buf true;
      f buf v

  let list buf f xs =
    i64 buf (List.length xs);
    List.iter (f buf) xs

  let farr buf a =
    i64 buf (Array.length a);
    Array.iter (f64 buf) a

  (* Bigarray float64 streams.  The wire layout is identical to [farr]
     (LE i64 length, then raw IEEE-754 bits per element), so checkpoints
     written before the SoA buffers moved to bigarrays decode unchanged.
     The bulk path stages the whole stream into one [Bytes] and appends
     it in a single blit instead of going through the Buffer element by
     element; [force_portable] pins the per-element fallback so tests
     can check the two encoders are byte-identical. *)
  let force_portable = ref false

  let fbuf buf (a : System.buf) =
    let n = Bigarray.Array1.dim a in
    i64 buf n;
    if Sys.big_endian || !force_portable then
      for i = 0 to n - 1 do
        f64 buf (Bigarray.Array1.unsafe_get a i)
      done
    else begin
      let bytes = Bytes.create (8 * n) in
      for i = 0 to n - 1 do
        Bytes.set_int64_le bytes (8 * i)
          (Int64.bits_of_float (Bigarray.Array1.unsafe_get a i))
      done;
      Buffer.add_bytes buf bytes
    end

  type reader = { data : string; mutable pos : int }

  let reader data = { data; pos = 0 }

  let need r n =
    if n < 0 || r.pos + n > String.length r.data then
      raise (Corrupt "truncated payload")

  let ru32 r =
    need r 4;
    let v = Int32.to_int (String.get_int32_le r.data r.pos) in
    r.pos <- r.pos + 4;
    v land 0xFFFFFFFF

  let ri64 r =
    need r 8;
    let v = String.get_int64_le r.data r.pos in
    r.pos <- r.pos + 8;
    v

  let rint r = Int64.to_int (ri64 r)
  let rf64 r = Int64.float_of_bits (ri64 r)

  let rbool r =
    need r 1;
    let c = r.data.[r.pos] in
    r.pos <- r.pos + 1;
    c <> '\000'

  let rstr r =
    let n = rint r in
    need r n;
    let s = String.sub r.data r.pos n in
    r.pos <- r.pos + n;
    s

  let ropt r f = if rbool r then Some (f r) else None

  let rlist r f =
    let n = rint r in
    if n < 0 || n > String.length r.data then
      raise (Corrupt "implausible list length");
    List.init n (fun _ -> f r)

  let rfarr r =
    let n = rint r in
    if n < 0 || n * 8 > String.length r.data - r.pos then
      raise (Corrupt "implausible array length");
    Array.init n (fun _ -> rf64 r)

  (* Decode straight into the destination buffer — no intermediate
     [float array].  Length must match the buffer exactly. *)
  let rfbuf r (dst : System.buf) =
    let n = rint r in
    if n <> Bigarray.Array1.dim dst then
      raise (Corrupt "coordinate array length");
    need r (8 * n);
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set dst i
        (Int64.float_of_bits (String.get_int64_le r.data (r.pos + (8 * i))))
    done;
    r.pos <- r.pos + (8 * n)
end

(* ------------------------------------------------------------------ *)
(* Run state                                                           *)
(* ------------------------------------------------------------------ *)

type progress = {
  seconds : float;
  breakdown : (string * float) list;
  pairs_evaluated : int;
  interactions : int;
  records : Verlet.step_record list;
  device_label : string;
}

let empty_progress =
  { seconds = 0.0;
    breakdown = [];
    pairs_evaluated = 0;
    interactions = 0;
    records = [];
    device_label = "" }

type t = {
  device : string;
  atoms : int;
  total_steps : int;
  completed : int;
  seed : int;
  density : float;
  temperature : float;
  engine : string;
  skin : float;
  every : int;
  keep : int;
  guard_restores : int;
  system : System.t;
  progress : progress;
  thermostat : Thermostat.csvr_state option;
  rngs : (string * Rng.state) list;
  fault : Mdfault.state option;
  counters : Mdprof.cell_state list option;
}

(* --- section payloads --- *)

let enc_meta buf st =
  Wire.str buf st.device;
  Wire.i64 buf st.atoms;
  Wire.i64 buf st.total_steps;
  Wire.i64 buf st.completed;
  Wire.i64 buf st.seed;
  Wire.f64 buf st.density;
  Wire.f64 buf st.temperature;
  Wire.i64 buf st.every;
  Wire.i64 buf st.keep;
  Wire.i64 buf st.guard_restores;
  (* Force-engine fields ride at the tail of the meta section so a
     checkpoint written before they existed still decodes (the reader
     defaults them when the payload ends early). *)
  Wire.str buf st.engine;
  Wire.f64 buf st.skin

let enc_system buf (s : System.t) =
  Wire.i64 buf s.System.n;
  Wire.f64 buf s.System.box;
  let p = s.System.params in
  Wire.f64 buf p.Params.epsilon;
  Wire.f64 buf p.Params.sigma;
  Wire.f64 buf p.Params.cutoff;
  Wire.f64 buf p.Params.mass;
  Wire.f64 buf p.Params.dt;
  Wire.fbuf buf s.System.pos_x;
  Wire.fbuf buf s.System.pos_y;
  Wire.fbuf buf s.System.pos_z;
  Wire.fbuf buf s.System.vel_x;
  Wire.fbuf buf s.System.vel_y;
  Wire.fbuf buf s.System.vel_z;
  Wire.fbuf buf s.System.acc_x;
  Wire.fbuf buf s.System.acc_y;
  Wire.fbuf buf s.System.acc_z

let dec_system r =
  let n = Wire.rint r in
  let box = Wire.rf64 r in
  let epsilon = Wire.rf64 r in
  let sigma = Wire.rf64 r in
  let cutoff = Wire.rf64 r in
  let mass = Wire.rf64 r in
  let dt = Wire.rf64 r in
  let params = { Params.epsilon; sigma; cutoff; mass; dt } in
  let s = System.create ~n ~box ~params in
  let arr dst = Wire.rfbuf r dst in
  arr s.System.pos_x; arr s.System.pos_y; arr s.System.pos_z;
  arr s.System.vel_x; arr s.System.vel_y; arr s.System.vel_z;
  arr s.System.acc_x; arr s.System.acc_y; arr s.System.acc_z;
  s

let enc_record buf (r : Verlet.step_record) =
  Wire.i64 buf r.Verlet.step;
  Wire.f64 buf r.Verlet.sim_time;
  Wire.f64 buf r.Verlet.pe;
  Wire.f64 buf r.Verlet.ke;
  Wire.f64 buf r.Verlet.total_energy;
  Wire.f64 buf r.Verlet.temperature

let dec_record r =
  let step = Wire.rint r in
  let sim_time = Wire.rf64 r in
  let pe = Wire.rf64 r in
  let ke = Wire.rf64 r in
  let total_energy = Wire.rf64 r in
  let temperature = Wire.rf64 r in
  { Verlet.step; sim_time; pe; ke; total_energy; temperature }

let enc_progress buf p =
  Wire.f64 buf p.seconds;
  Wire.list buf
    (fun buf (k, v) ->
      Wire.str buf k;
      Wire.f64 buf v)
    p.breakdown;
  Wire.i64 buf p.pairs_evaluated;
  Wire.i64 buf p.interactions;
  Wire.str buf p.device_label;
  Wire.list buf enc_record p.records

let dec_progress r =
  let seconds = Wire.rf64 r in
  let breakdown =
    Wire.rlist r (fun r ->
        let k = Wire.rstr r in
        let v = Wire.rf64 r in
        (k, v))
  in
  let pairs_evaluated = Wire.rint r in
  let interactions = Wire.rint r in
  let device_label = Wire.rstr r in
  let records = Wire.rlist r dec_record in
  { seconds; breakdown; pairs_evaluated; interactions; device_label; records }

let enc_rng_state buf (s : Rng.state) =
  Buffer.add_int64_le buf s.Rng.bits;
  Wire.opt buf Wire.f64 s.Rng.cached

let dec_rng_state r =
  let bits = Wire.ri64 r in
  let cached = Wire.ropt r Wire.rf64 in
  { Rng.bits; cached }

let enc_thermostat buf (ts : Thermostat.csvr_state) =
  Wire.f64 buf ts.Thermostat.csvr_target;
  Wire.f64 buf ts.Thermostat.csvr_tau;
  enc_rng_state buf ts.Thermostat.csvr_rng

let dec_thermostat r =
  let csvr_target = Wire.rf64 r in
  let csvr_tau = Wire.rf64 r in
  let csvr_rng = dec_rng_state r in
  { Thermostat.csvr_target; csvr_tau; csvr_rng }

let enc_site buf site = Wire.str buf (Mdfault.site_name site)

let dec_site r =
  let name = Wire.rstr r in
  match Mdfault.site_of_name name with
  | Some s -> s
  | None -> raise (Corrupt ("unknown fault site " ^ name))

let enc_event buf (e : Mdfault.event) =
  enc_site buf e.Mdfault.e_site;
  Wire.str buf e.Mdfault.e_stream;
  Wire.i64 buf e.Mdfault.e_index;
  Wire.i64 buf e.Mdfault.e_attempts;
  Wire.bool buf e.Mdfault.e_recovered;
  Wire.str buf e.Mdfault.e_detail

let dec_event r =
  let e_site = dec_site r in
  let e_stream = Wire.rstr r in
  let e_index = Wire.rint r in
  let e_attempts = Wire.rint r in
  let e_recovered = Wire.rbool r in
  let e_detail = Wire.rstr r in
  { Mdfault.e_site; e_stream; e_index; e_attempts; e_recovered; e_detail }

let enc_stream_state buf (ss : Mdfault.stream_state) =
  Wire.str buf ss.Mdfault.ss_name;
  enc_site buf ss.Mdfault.ss_site;
  Wire.f64 buf ss.Mdfault.ss_rate;
  Wire.opt buf enc_rng_state ss.Mdfault.ss_rng;
  Wire.list buf enc_event ss.Mdfault.ss_events;
  Wire.i64 buf ss.Mdfault.ss_event_count;
  Wire.i64 buf ss.Mdfault.ss_injected;
  Wire.i64 buf ss.Mdfault.ss_retries;
  Wire.i64 buf ss.Mdfault.ss_recoveries;
  Wire.i64 buf ss.Mdfault.ss_unrecovered;
  Wire.f64 buf ss.Mdfault.ss_backoff_s;
  Wire.i64 buf ss.Mdfault.ss_consecutive

let dec_stream_state r =
  let ss_name = Wire.rstr r in
  let ss_site = dec_site r in
  let ss_rate = Wire.rf64 r in
  let ss_rng = Wire.ropt r dec_rng_state in
  let ss_events = Wire.rlist r dec_event in
  let ss_event_count = Wire.rint r in
  let ss_injected = Wire.rint r in
  let ss_retries = Wire.rint r in
  let ss_recoveries = Wire.rint r in
  let ss_unrecovered = Wire.rint r in
  let ss_backoff_s = Wire.rf64 r in
  let ss_consecutive = Wire.rint r in
  { Mdfault.ss_name; ss_site; ss_rate; ss_rng; ss_events; ss_event_count;
    ss_injected; ss_retries; ss_recoveries; ss_unrecovered; ss_backoff_s;
    ss_consecutive }

let enc_fault buf (cs : Mdfault.state) =
  let spec = cs.Mdfault.cs_spec in
  Wire.i64 buf spec.Mdfault.seed;
  Wire.list buf
    (fun buf (site, rate) ->
      enc_site buf site;
      Wire.f64 buf rate)
    spec.Mdfault.rates;
  let p = spec.Mdfault.policy in
  Wire.i64 buf p.Mdfault.max_retries;
  Wire.f64 buf p.Mdfault.base_backoff_s;
  Wire.f64 buf p.Mdfault.backoff_multiplier;
  Wire.i64 buf p.Mdfault.watchdog_limit;
  Wire.list buf enc_stream_state cs.Mdfault.cs_streams;
  Wire.i64 buf cs.Mdfault.cs_recovered_steps

let dec_fault r =
  let seed = Wire.rint r in
  let rates =
    Wire.rlist r (fun r ->
        let site = dec_site r in
        let rate = Wire.rf64 r in
        (site, rate))
  in
  let max_retries = Wire.rint r in
  let base_backoff_s = Wire.rf64 r in
  let backoff_multiplier = Wire.rf64 r in
  let watchdog_limit = Wire.rint r in
  let cs_streams = Wire.rlist r dec_stream_state in
  let cs_recovered_steps = Wire.rint r in
  { Mdfault.cs_spec =
      { Mdfault.seed;
        rates;
        policy =
          { Mdfault.max_retries; base_backoff_s; backoff_multiplier;
            watchdog_limit };
        (* never persisted: a crash point belongs to the process that
           armed it, not to the resumed run *)
        io_crash_at = None };
    cs_streams;
    cs_recovered_steps }

let enc_cell buf (c : Mdprof.cell_state) =
  Wire.str buf c.Mdprof.p_name;
  Wire.str buf c.Mdprof.p_unit;
  Wire.i64 buf
    (match c.Mdprof.p_kind with
    | Mdprof.Counter -> 0
    | Mdprof.Gauge -> 1
    | Mdprof.Histogram -> 2);
  Wire.f64 buf c.Mdprof.p_value;
  Wire.f64 buf c.Mdprof.p_hwm;
  Wire.farr buf c.Mdprof.p_bounds;
  Wire.list buf Wire.i64 (Array.to_list c.Mdprof.p_counts);
  Wire.i64 buf c.Mdprof.p_obs;
  Wire.f64 buf c.Mdprof.p_sum

let dec_cell r =
  let p_name = Wire.rstr r in
  let p_unit = Wire.rstr r in
  let p_kind =
    match Wire.rint r with
    | 0 -> Mdprof.Counter
    | 1 -> Mdprof.Gauge
    | 2 -> Mdprof.Histogram
    | k -> raise (Corrupt (Printf.sprintf "unknown instrument kind %d" k))
  in
  let p_value = Wire.rf64 r in
  let p_hwm = Wire.rf64 r in
  let p_bounds = Wire.rfarr r in
  let p_counts = Array.of_list (Wire.rlist r Wire.rint) in
  let p_obs = Wire.rint r in
  let p_sum = Wire.rf64 r in
  { Mdprof.p_name; p_unit; p_kind; p_value; p_hwm; p_bounds; p_counts;
    p_obs; p_sum }

(* ------------------------------------------------------------------ *)
(* Section container                                                   *)
(* ------------------------------------------------------------------ *)

let section name payload =
  let buf = Buffer.create (String.length payload + 32) in
  Wire.u32 buf (String.length name);
  Buffer.add_string buf name;
  Wire.u32 buf (String.length payload);
  Wire.u32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let payload_of f v =
  let buf = Buffer.create 1024 in
  f buf v;
  Buffer.contents buf

(* Generic container: magic line, section count, CRC-checksummed named
   sections.  The checkpoint format below is one client; the harness run
   manifest reuses it so every durable artifact shares one integrity
   story. *)
let encode_container ~magic:m sections =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf m;
  Wire.u32 buf (List.length sections);
  List.iter (fun (n, p) -> Buffer.add_string buf (section n p)) sections;
  Buffer.contents buf

let decode_container ~magic:m data =
  try
    let mlen = String.length m in
    if String.length data < mlen || String.sub data 0 mlen <> m then
      Error (Printf.sprintf "bad magic (expected %S)" (String.trim m))
    else begin
      let r = Wire.reader data in
      r.Wire.pos <- mlen;
      let count = Wire.ru32 r in
      if count > 100_000 then raise (Corrupt "implausible section count");
      let out = ref [] in
      for _ = 1 to count do
        let nlen = Wire.ru32 r in
        Wire.need r nlen;
        let name = String.sub data r.Wire.pos nlen in
        r.Wire.pos <- r.Wire.pos + nlen;
        let plen = Wire.ru32 r in
        let crc = Wire.ru32 r in
        Wire.need r plen;
        let payload = String.sub data r.Wire.pos plen in
        r.Wire.pos <- r.Wire.pos + plen;
        if crc32 payload <> crc then
          raise (Corrupt (Printf.sprintf "CRC mismatch in section %S" name));
        out := (name, payload) :: !out
      done;
      Ok (List.rev !out)
    end
  with
  | Corrupt msg -> Error msg
  | Invalid_argument msg -> Error msg

let encode st =
  let sections =
    [ ("meta", payload_of enc_meta st);
      ("system", payload_of enc_system st.system);
      ("progress", payload_of enc_progress st.progress);
      ("rng",
       payload_of
         (fun buf rngs ->
           Wire.list buf
             (fun buf (name, s) ->
               Wire.str buf name;
               enc_rng_state buf s)
             rngs)
         st.rngs);
      ("thermostat", payload_of (fun buf -> Wire.opt buf enc_thermostat) st.thermostat);
      ("faults", payload_of (fun buf -> Wire.opt buf enc_fault) st.fault);
      (* Virtual-clock Mdprof cells, sorted by name — deterministic
         bytes, so checkpoint files stay byte-comparable across runs. *)
      ("counters",
       payload_of
         (fun buf -> Wire.opt buf (fun buf -> Wire.list buf enc_cell))
         st.counters) ]
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Wire.u32 buf (List.length sections);
  List.iter (fun (n, p) -> Buffer.add_string buf (section n p)) sections;
  Buffer.contents buf

let decode data =
  try
    let mlen = String.length magic in
    if String.length data < mlen || String.sub data 0 mlen <> magic then
      Error
        (Printf.sprintf "bad magic (expected %S) — not a %s file"
           (String.trim magic) schema)
    else begin
      let r = Wire.reader data in
      r.Wire.pos <- mlen;
      let count = Wire.ru32 r in
      if count > 64 then raise (Corrupt "implausible section count");
      let sections = Hashtbl.create 8 in
      for _ = 1 to count do
        let nlen = Wire.ru32 r in
        Wire.need r nlen;
        let name = String.sub data r.Wire.pos nlen in
        r.Wire.pos <- r.Wire.pos + nlen;
        let plen = Wire.ru32 r in
        let crc = Wire.ru32 r in
        Wire.need r plen;
        let payload = String.sub data r.Wire.pos plen in
        r.Wire.pos <- r.Wire.pos + plen;
        if crc32 payload <> crc then
          raise (Corrupt (Printf.sprintf "CRC mismatch in section %S" name));
        Hashtbl.replace sections name payload
      done;
      let get name =
        match Hashtbl.find_opt sections name with
        | Some p -> Wire.reader p
        | None -> raise (Corrupt (Printf.sprintf "missing section %S" name))
      in
      let r = get "meta" in
      let device = Wire.rstr r in
      let atoms = Wire.rint r in
      let total_steps = Wire.rint r in
      let completed = Wire.rint r in
      let seed = Wire.rint r in
      let density = Wire.rf64 r in
      let temperature = Wire.rf64 r in
      let every = Wire.rint r in
      let keep = Wire.rint r in
      let guard_restores = Wire.rint r in
      (* Tolerant tail: pre-engine checkpoints stop here; they ran the
         then-only brute engine, and replaying their remaining segments
         must keep doing so to stay bitwise. *)
      let engine, skin =
        if r.Wire.pos < String.length r.data then begin
          let engine = Wire.rstr r in
          let skin = Wire.rf64 r in
          (engine, skin)
        end
        else ("n2", Mdcore.Pairlist.default_skin)
      in
      let system = dec_system (get "system") in
      if system.System.n <> atoms then raise (Corrupt "atom count mismatch");
      let progress = dec_progress (get "progress") in
      let rngs =
        Wire.rlist (get "rng") (fun r ->
            let name = Wire.rstr r in
            let s = dec_rng_state r in
            (name, s))
      in
      let thermostat = Wire.ropt (get "thermostat") dec_thermostat in
      let fault = Wire.ropt (get "faults") dec_fault in
      (* Optional section: checkpoints written before counters were
         serialized simply lack it and decode to [None]. *)
      let counters =
        match Hashtbl.find_opt sections "counters" with
        | None -> None
        | Some payload ->
          Wire.ropt (Wire.reader payload) (fun r -> Wire.rlist r dec_cell)
      in
      Ok
        { device; atoms; total_steps; completed; seed; density; temperature;
          engine; skin; every; keep; guard_restores; system; progress;
          thermostat; rngs; fault; counters }
    end
  with
  | Corrupt msg -> Error msg
  | Invalid_argument msg -> Error ("invalid checkpoint contents: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Durable files: atomic write, generations, GC                        *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* tmp + fsync + rename + directory fsync: after [write_atomic] returns,
   either the old file or the complete new file survives a crash — never
   a torn write.  Routed through the Mdio shim, so every one of its six
   syscalls is a counted crash point and a storage-fault site; on an
   injected (or real) error the .tmp is cleaned up, while a simulated
   crash leaves it behind exactly as kill -9 would. *)
let write_atomic ~path data = Mdio.write_atomic ~path data

let generation_of_filename name =
  if
    String.length name > 5
    && String.sub name 0 5 = "ckpt-"
    && Filename.check_suffix name ".mdsim"
  then int_of_string_opt (String.sub name 5 (String.length name - 11))
  else None

let generations ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           Option.map
             (fun g -> (g, Filename.concat dir name))
             (generation_of_filename name))
    |> List.sort compare

let gc ~dir ~keep =
  let keep = max 1 keep in
  let gens = List.rev (generations ~dir) in
  List.iteri
    (fun i (_, path) ->
      if i >= keep then
        try Mdio.remove path with
        | Unix.Unix_error _ | Sys_error _ -> ())
    gens;
  (* Stale write_atomic temporaries — left by a crash mid-save — are
     never valid generations ([generation_of_filename] rejects them),
     so the first post-recovery GC sweeps them out. *)
  (match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        if
          String.length name > 5
          && String.sub name 0 5 = "ckpt-"
          && Filename.check_suffix name ".mdsim.tmp"
        then
          try Mdio.remove (Filename.concat dir name) with
          | Unix.Unix_error _ | Sys_error _ -> ())
      names)

let save ~dir st =
  mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "ckpt-%09d.mdsim" st.completed) in
  write_atomic ~path (encode st);
  gc ~dir ~keep:st.keep;
  path

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | data -> decode data
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error "truncated file"

(* Newest generation first; corrupt/truncated/wrong-schema files are
   rejected with a one-line diagnostic and the previous generation is
   tried instead. *)
let load_latest ~dir =
  let rec try_gens = function
    | [] -> Error (Printf.sprintf "no valid checkpoint found in %s" dir)
    | (_, path) :: rest -> (
      match load path with
      | Ok st -> Ok (st, path)
      | Error msg ->
        Printf.eprintf "mdsim: rejecting checkpoint %s: %s\n%!" path msg;
        try_gens rest)
  in
  match List.rev (generations ~dir) with
  | [] -> Error (Printf.sprintf "no checkpoint files (ckpt-*.mdsim) in %s" dir)
  | gens -> try_gens gens

(* ------------------------------------------------------------------ *)
(* Single-writer locks                                                 *)
(* ------------------------------------------------------------------ *)

module Lock = struct
  type t = { lk_key : string; lk_fd : Unix.file_descr }

  (* POSIX record locks never conflict within one process (a second
     lockf on the same file by the same process silently succeeds), so
     an in-process registry of held lock paths backs the OS lock: a
     second acquirer in the same process fails exactly like a second
     process would.  That is what makes the guard testable in-process
     and what protects a daemon from a same-process second engine. *)
  let held : (string, unit) Hashtbl.t = Hashtbl.create 8
  let held_mu = Mutex.create ()

  let normalize path =
    match Unix.realpath path with
    | p -> p
    | exception (Unix.Unix_error _ | Invalid_argument _) -> path

  let acquire ~path =
    mkdir_p (Filename.dirname path);
    match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot open lock file %s: %s" path
           (Unix.error_message e))
    | fd ->
      let key = normalize path in
      Mutex.lock held_mu;
      let in_process = Hashtbl.mem held key in
      if not in_process then Hashtbl.replace held key ();
      Mutex.unlock held_mu;
      if in_process then begin
        Unix.close fd;
        Error
          (Printf.sprintf "%s is already locked by this process" path)
      end
      else begin
        match Unix.lockf fd Unix.F_TLOCK 0 with
        | () -> Ok { lk_key = key; lk_fd = fd }
        | exception Unix.Unix_error _ ->
          Mutex.lock held_mu;
          Hashtbl.remove held key;
          Mutex.unlock held_mu;
          Unix.close fd;
          Error
            (Printf.sprintf "%s is locked by another mdsim process" path)
      end

  let release t =
    Mutex.lock held_mu;
    Hashtbl.remove held t.lk_key;
    Mutex.unlock held_mu;
    (try Unix.lockf t.lk_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
    try Unix.close t.lk_fd with Unix.Unix_error _ -> ()

  let guard_dir ~dir =
    mkdir_p dir;
    acquire ~path:(Filename.concat dir ".lock")
end

(* ------------------------------------------------------------------ *)
(* Segmented runner                                                    *)
(* ------------------------------------------------------------------ *)

module Runner = struct
  type device =
    | Opteron
    | Cell
    | Cell1
    | Ppe
    | Gpu
    | Mta
    | Mta_partial

  let device_name = function
    | Opteron -> "opteron"
    | Cell -> "cell"
    | Cell1 -> "cell-1spe"
    | Ppe -> "ppe"
    | Gpu -> "gpu"
    | Mta -> "mta"
    | Mta_partial -> "mta-partial"

  let all_devices = [ Opteron; Cell; Cell1; Ppe; Gpu; Mta; Mta_partial ]

  let device_of_name name =
    match List.find_opt (fun d -> device_name d = name) all_devices with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "unknown device %S in checkpoint" name)

  type config = {
    cfg_device : device;
    cfg_atoms : int;
    cfg_steps : int;
    cfg_seed : int;
    cfg_density : float;
    cfg_temperature : float;
    cfg_force_path : Mdports.Force_path.t;
    cfg_every : int;
    cfg_keep : int;
    cfg_dir : string;
  }

  let engine_of_force_path = function
    | Mdports.Force_path.Brute -> ("n2", Mdcore.Pairlist.default_skin)
    | Mdports.Force_path.Pairlist { skin } -> ("pairlist", skin)

  let force_path_of_engine ~engine ~skin =
    match engine with
    | "n2" -> Ok Mdports.Force_path.Brute
    | "pairlist" -> Ok (Mdports.Force_path.Pairlist { skin })
    | other ->
      Error (Printf.sprintf "unknown force engine %S in checkpoint" other)

  type suspension = {
    sus_completed : int;
    sus_total : int;
    sus_path : string option;
    sus_reason : string;
  }

  type outcome =
    | Complete of Run_result.t
    | Suspended of suspension

  (* External suspension requests (SIGTERM/SIGINT handlers, daemon
     drain).  Signal handlers only set this atomic; [advance] checks it
     between segments, so the in-flight segment always completes and
     its checkpoint is durable before the run suspends. *)
  let suspend_flag : string option Atomic.t = Atomic.make None
  let request_suspend ~reason = Atomic.set suspend_flag (Some reason)
  let suspend_requested () = Atomic.get suspend_flag
  let clear_suspend_request () = Atomic.set suspend_flag None

  (* Pairlist state is deliberately NOT serialized: each segment starts
     a fresh list, which forces a rebuild on the segment's first force
     evaluation.  Because the engine's forces are bitwise-independent of
     rebuild timing (beyond-cutoff list entries contribute exactly
     nothing), the resumed run's extra rebuild changes no physics — the
     uninterrupted and resumed runs execute the same segment schedule
     and converge bitwise. *)
  let segment device ~force_path system ~steps =
    match device with
    | Opteron -> Mdports.Opteron_port.run ~steps ~force_path system
    | Cell -> Mdports.Cell_port.run ~steps ~force_path system
    | Cell1 ->
      Mdports.Cell_port.run ~steps ~force_path
        ~config:{ Mdports.Cell_port.default_config with n_spes = 1 }
        system
    | Ppe -> Mdports.Cell_port.run_ppe_only ~steps system
    | Gpu -> Mdports.Gpu_port.run ~steps ~force_path system
    | Mta -> Mdports.Mta_port.run ~steps ~force_path system
    | Mta_partial ->
      Mdports.Mta_port.run ~steps ~force_path
        ~mode:Mdports.Mta_port.Partially_multithreaded system

  (* On a persistent invariant violation (Verlet's per-step restores
     exhausted) the segment is re-executed from its input state — the
     content of the newest valid checkpoint generation.  Re-execution
     advances the fault streams, so transient silent corruption gets a
     fresh draw sequence; a violation that survives the retries
     escalates. *)
  let max_segment_retries = 2

  let segment_guarded ?(on_retry = fun () -> ()) device ~force_path system
      ~steps =
    let rec go attempt =
      match segment device ~force_path system ~steps with
      | r -> r
      | exception Verlet.Invariant_violation _
        when attempt < max_segment_retries ->
        Mdfault.note_guard_restore ();
        on_retry ();
        go (attempt + 1)
    in
    go 0

  (* Stitch a segment's records onto the accumulated run: segments after
     the first re-derive a step-0 record identical (up to numbering) to
     the previous segment's final record, so it is dropped; the rest are
     renumbered into the global step index.  sim_time uses the same
     [step * dt] formula Verlet.make_record uses, so stitched values are
     bit-identical to a longer run's. *)
  let stitch_records ~base ~dt existing segs =
    let renumber (r : Verlet.step_record) =
      { r with
        Verlet.step = base + r.Verlet.step;
        sim_time = float_of_int (base + r.Verlet.step) *. dt }
    in
    match existing with
    | [] -> List.map renumber segs
    | _ -> (
      match segs with
      | [] -> existing
      | _ :: rest -> existing @ List.map renumber rest)

  let merge_breakdown acc seg =
    match acc with
    | [] -> seg
    | _ ->
      List.map
        (fun (k, v) ->
          ( k,
            v +. (match List.assoc_opt k acc with Some x -> x | None -> 0.0)
          ))
        seg

  let absorb_segment st (r : Run_result.t) ~seg_steps =
    let dt = st.system.System.params.Params.dt in
    let p = st.progress in
    let progress =
      { seconds = p.seconds +. r.Run_result.seconds;
        breakdown = merge_breakdown p.breakdown r.Run_result.breakdown;
        pairs_evaluated = p.pairs_evaluated + r.Run_result.pairs_evaluated;
        interactions = p.interactions + r.Run_result.interactions;
        records =
          stitch_records ~base:st.completed ~dt p.records
            r.Run_result.records;
        device_label = r.Run_result.device }
    in
    let system =
      match r.Run_result.final_system with
      | Some s -> s
      | None -> st.system
    in
    { st with
      completed = st.completed + seg_steps;
      system;
      progress;
      guard_restores = Mdfault.guard_restores ();
      fault = Mdfault.capture_state ();
      counters = Mdprof.capture_cells () }

  let result_of_state st =
    { Run_result.device = st.progress.device_label;
      n_atoms = st.atoms;
      steps = st.total_steps;
      seconds = st.progress.seconds;
      records = st.progress.records;
      breakdown = st.progress.breakdown;
      pairs_evaluated = st.progress.pairs_evaluated;
      interactions = st.progress.interactions;
      final_system = Some st.system }

  let initial_state cfg system =
    let engine, skin = engine_of_force_path cfg.cfg_force_path in
    { device = device_name cfg.cfg_device;
      atoms = cfg.cfg_atoms;
      total_steps = cfg.cfg_steps;
      completed = 0;
      seed = cfg.cfg_seed;
      density = cfg.cfg_density;
      temperature = cfg.cfg_temperature;
      engine;
      skin;
      every = cfg.cfg_every;
      keep = cfg.cfg_keep;
      guard_restores = Mdfault.guard_restores ();
      system;
      progress = empty_progress;
      thermostat = None;
      rngs = [];
      fault = Mdfault.capture_state ();
      counters = Mdprof.capture_cells () }

  let config_of_state ~dir device ~force_path st =
    { cfg_device = device;
      cfg_atoms = st.atoms;
      cfg_steps = st.total_steps;
      cfg_seed = st.seed;
      cfg_density = st.density;
      cfg_temperature = st.temperature;
      cfg_force_path = force_path;
      cfg_every = st.every;
      cfg_keep = st.keep;
      cfg_dir = dir }

  let prepare cfg =
    let system =
      Mdcore.Init.build ~seed:cfg.cfg_seed ~density:cfg.cfg_density
        ~temperature:cfg.cfg_temperature ~n:cfg.cfg_atoms ()
    in
    initial_state cfg system

  type step_result =
    | Seg_complete of Run_result.t
    | Seg_checkpointed of t * string

  (* One segment of a segmented run (precondition: cfg_every > 0).
     Shared by [advance] and the serve engine, which interleaves
     segments of many jobs: everything per-segment (telemetry segment
     window, guard-retry rollback, the boundary sample, the durable
     save) happens here, so a job driven one segment at a time executes
     the exact schedule an uninterrupted [advance] would. *)
  let segment_step cfg st =
    if st.completed >= st.total_steps then Seg_complete (result_of_state st)
    else begin
      let seg_steps = min cfg.cfg_every (st.total_steps - st.completed) in
      let boundary = st.completed in
      Mdtel.set_segment ~base:boundary ~steps:seg_steps;
      let r =
        segment_guarded
          ~on_retry:(fun () -> Mdtel.rollback ~to_:boundary)
          cfg.cfg_device ~force_path:cfg.cfg_force_path st.system
          ~steps:seg_steps
      in
      let st = absorb_segment st r ~seg_steps in
      (* Boundary sample BEFORE the save: the restored Mdprof state is
         then exactly the last durable sample's delta baseline, which
         is what makes resumed interval reads continue the
         uninterrupted sequence. *)
      Mdtel.sync ~completed:st.completed;
      let path = save ~dir:cfg.cfg_dir st in
      Seg_checkpointed (st, path)
    end

  let advance ?abort_after_segments ?deadline cfg st0 =
    let st = ref st0 in
    let segs_done = ref 0 in
    let last_path = ref None in
    let suspend reason =
      Suspended
        { sus_completed = !st.completed;
          sus_total = !st.total_steps;
          sus_path = !last_path;
          sus_reason = reason }
    in
    let body () =
      Mdtel.set_total !st.total_steps;
      if cfg.cfg_every <= 0 then
        (* Checkpointing disabled: one straight port run, the seed path.
           Telemetry (if any) writes through per line so an in-flight
           [mdsim tail] sees live data. *)
        Complete
          (segment_guarded cfg.cfg_device ~force_path:cfg.cfg_force_path
             !st.system ~steps:!st.total_steps)
      else begin
        (* Segmented runs buffer telemetry records in memory and flush at
           each boundary (just before the save), so a guard-retried
           segment can be rolled back before anything hits the file and
           a kill-9 leaves the stream ending exactly at the newest
           durable checkpoint. *)
        Mdtel.set_buffered true;
        (* A generation-0 file makes resume possible however early the
           process dies; for resumed runs the newest generation already
           covers it. *)
        if !st.completed = 0 then
          last_path := Some (save ~dir:cfg.cfg_dir !st);
        let rec loop () =
          if !st.completed >= !st.total_steps then
            Complete (result_of_state !st)
          else
            match suspend_requested () with
            | Some reason -> suspend reason
            | None -> (
              match segment_step cfg !st with
              | Seg_complete r -> Complete r
              | Seg_checkpointed (st', path) -> (
                st := st';
                last_path := Some path;
                incr segs_done;
                match abort_after_segments with
                | Some k when !segs_done >= k ->
                  suspend "aborted by test hook"
                | _ -> loop ()))
        in
        loop ()
      end
    in
    match deadline with
    | None -> (
      try body () with
      | Verlet.Invariant_violation msg ->
        suspend ("invariant violation: " ^ msg))
    | Some seconds -> (
      try Sim_util.Deadline.with_budget ~seconds body with
      | Sim_util.Deadline.Expired budget ->
        suspend
          (Printf.sprintf "wall-clock deadline (%gs) exceeded" budget)
      | Verlet.Invariant_violation msg ->
        suspend ("invariant violation: " ^ msg))

  let run ?abort_after_segments ?deadline cfg =
    let system =
      Mdcore.Init.build ~seed:cfg.cfg_seed ~density:cfg.cfg_density
        ~temperature:cfg.cfg_temperature ~n:cfg.cfg_atoms ()
    in
    advance ?abort_after_segments ?deadline cfg (initial_state cfg system)

  let resume ?abort_after_segments ?deadline path =
    let loaded =
      if Sys.file_exists path && Sys.is_directory path then
        load_latest ~dir:path
      else Result.map (fun st -> (st, path)) (load path)
    in
    match loaded with
    | Error msg -> Error msg
    | Ok (st, file) -> (
      match device_of_name st.device with
      | Error msg -> Error msg
      | Ok device ->
      match force_path_of_engine ~engine:st.engine ~skin:st.skin with
      | Error msg -> Error msg
      | Ok force_path ->
        (* Reinstate process-global state captured at the checkpoint:
           the fault plan (stream PRNG positions, counters, event logs)
           and the guard-restore count — the resumed run continues the
           exact fault sequence of the uninterrupted one. *)
        (match st.fault with
        | Some fs -> Mdfault.restore_state fs
        | None -> ());
        Mdfault.set_guard_restores st.guard_restores;
        (* Counter state only matters to runs that observe it (an active
           --counters/--telemetry already enabled profiling); restoring
           it otherwise would silently switch recording on. *)
        (match st.counters with
        | Some cells when Mdprof.enabled () -> Mdprof.restore_cells cells
        | _ -> ());
        (* After restore_cells so the fresh delta baseline sits on the
           checkpointed cumulative values. *)
        Mdtel.on_resume ~completed:st.completed;
        let dir = Filename.dirname file in
        let cfg = config_of_state ~dir device ~force_path st in
        Ok (advance ?abort_after_segments ?deadline cfg st))
end
