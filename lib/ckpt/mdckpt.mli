(** Durable checkpoint/resume for simulation runs.

    A production MD run is measured in wall-clock days; the paper-scale
    sweeps here are measured in minutes, but the failure model is the
    same — preemption, job-queue kills, wedged devices.  This module
    gives `mdsim run` crash consistency: a versioned on-disk format
    ([mdsim-checkpoint-v1]) written atomically (tmp + fsync + rename +
    directory fsync) with a CRC-32 per section, capturing the {e full}
    deterministic state of a run — the SoA system, the accumulated
    virtual clocks and trajectory records, thermostat and named RNG
    stream states, and the complete fault-plan state (per-stream PRNG
    positions, counters, event logs).  A killed run resumed from its
    newest valid generation converges {e bitwise} to the uninterrupted
    run, at any [--domains] value, with or without an active fault plan.

    Execution is segmented: {!Runner} drives the selected port in
    [every]-step segments, carrying the final system state across
    segment boundaries and checkpointing after each.  Both the
    uninterrupted and the resumed run execute the same segment schedule,
    which is what makes resume exact — device machine state (caches,
    ledgers) is rebuilt per segment deterministically rather than
    serialized. *)

val schema : string
(** ["mdsim-checkpoint-v1"]. *)

val crc32 : string -> int
(** CRC-32 (IEEE/zlib polynomial) of a byte string, in [0, 2^32). *)

exception Corrupt of string
(** Raised internally by the wire readers on truncated or implausible
    data; the public [decode]/[load] entry points catch it and return
    [Error] instead. *)

(** Little-endian wire primitives shared by every durable artifact:
    64-bit ints, bit-exact floats ([Int64.bits_of_float]), length-prefixed
    strings/lists.  Exposed so other serializers (the harness run
    manifest) encode with the same conventions. *)
module Wire : sig
  val u32 : Buffer.t -> int -> unit
  val i64 : Buffer.t -> int -> unit
  val f64 : Buffer.t -> float -> unit
  val bool : Buffer.t -> bool -> unit
  val str : Buffer.t -> string -> unit
  val opt : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit
  val list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
  val farr : Buffer.t -> float array -> unit

  type reader = { data : string; mutable pos : int }

  val reader : string -> reader
  val need : reader -> int -> unit
  val ru32 : reader -> int
  val ri64 : reader -> int64
  val rint : reader -> int
  val rf64 : reader -> float
  val rbool : reader -> bool
  val rstr : reader -> string
  val ropt : reader -> (reader -> 'a) -> 'a option
  val rlist : reader -> (reader -> 'a) -> 'a list
  val rfarr : reader -> float array

  val force_portable : bool ref
  (** Test hook: when set, {!fbuf} takes the per-element portable path
      instead of the bulk little-endian blit.  Both produce the same
      bytes (the wire format is little-endian either way); tests flip
      this to prove it. *)

  val fbuf : Buffer.t -> Mdcore.System.buf -> unit
  (** Encode a float64 bigarray stream — same wire layout as {!farr},
      so pre-bigarray checkpoints remain decodable.  Bulk-blits the
      stream on little-endian hosts; falls back to per-element encoding
      on big-endian ones (or under {!force_portable}). *)

  val rfbuf : reader -> Mdcore.System.buf -> unit
  (** Decode a float64 stream written by {!fbuf}/{!farr} directly into
      the destination buffer; raises {!Corrupt} if the stored length
      differs from the buffer's. *)
end

val encode_container : magic:string -> (string * string) list -> string
(** [magic] line followed by named sections, each length-prefixed and
    CRC-32 checksummed. *)

val decode_container :
  magic:string -> string -> ((string * string) list, string) result
(** Inverse of {!encode_container}; [Error] (never an exception) on bad
    magic, truncation, or a CRC mismatch. *)

val write_atomic : path:string -> string -> unit
(** Durable atomic replace: write to [path ^ ".tmp"], fsync, rename over
    [path], fsync the directory — all through the {!Mdio} shim, so each
    syscall is a counted crash point and a storage-fault site.  A crash
    leaves either the old or the complete new file, never a torn write;
    an I/O error cleans up the [.tmp] before re-raising. *)

(** {1 Run state} *)

type progress = {
  seconds : float;                (** accumulated virtual seconds *)
  breakdown : (string * float) list;  (** accumulated ledger categories *)
  pairs_evaluated : int;
  interactions : int;
  records : Mdcore.Verlet.step_record list;
      (** globally renumbered, oldest first *)
  device_label : string;          (** [Run_result.device] of the last segment *)
}

val empty_progress : progress

type t = {
  device : string;                (** CLI device name, e.g. ["cell-1spe"] *)
  atoms : int;
  total_steps : int;
  completed : int;                (** steps finished so far *)
  seed : int;
  density : float;
  temperature : float;
  engine : string;                (** force engine: ["pairlist"] or ["n2"] *)
  skin : float;                   (** pairlist skin, in σ (ignored for n2) *)
  every : int;                    (** checkpoint cadence, in steps *)
  keep : int;                     (** generations retained by GC *)
  guard_restores : int;
  system : Mdcore.System.t;
  progress : progress;
  thermostat : Mdcore.Thermostat.csvr_state option;
  rngs : (string * Sim_util.Rng.state) list;
      (** named auxiliary RNG streams *)
  fault : Mdfault.state option;
  counters : Mdprof.cell_state list option;
      (** virtual-clock Mdprof instrument state ({!Mdprof.capture_cells});
          [None] when profiling was disabled, and for checkpoints written
          before the section existed (they still decode) *)
}

val encode : t -> string
(** Serialize to the on-disk byte format. *)

val decode : string -> (t, string) result
(** Parse and validate; [Error] with a one-line reason on wrong magic,
    truncation, CRC mismatch, or inconsistent contents. *)

(** {1 Durable files} *)

val save : dir:string -> t -> string
(** Atomically write [dir/ckpt-<completed>.mdsim] (creating [dir] as
    needed), then GC generations beyond [t.keep] (always retaining at
    least one).  Returns the path. *)

val load : string -> (t, string) result

val generations : dir:string -> (int * string) list
(** Checkpoint generations in [dir], ascending by completed step. *)

val load_latest : dir:string -> (t * string, string) result
(** Newest valid generation and its path.  Rejected files (corrupt,
    truncated, wrong schema) get a one-line stderr diagnostic each, then
    the previous generation is tried. *)

(** {1 Single-writer locks} *)

(** Advisory single-writer guard over durable artifacts (checkpoint
    directories, the run manifest, a daemon's serve directory), built on
    [lockf]/[F_TLOCK] plus an in-process registry — POSIX record locks
    never conflict within one process, so the registry makes a second
    same-process acquirer fail exactly like a second process would.
    Two concurrent runs can therefore never interleave atomic rewrites
    or GC each other's checkpoint generations: the second acquirer gets
    a one-line [Error]. *)
module Lock : sig
  type t

  val acquire : path:string -> (t, string) result
  (** Create (if needed) and exclusively lock [path].  [Error] with a
      one-line reason when another process — or this one — holds it. *)

  val guard_dir : dir:string -> (t, string) result
  (** [acquire] on [dir ^ "/.lock"], creating [dir] as needed — the
      conventional guard for a checkpoint directory. *)

  val release : t -> unit
  (** Unlock and close.  The lock file itself is left in place (unlink
      would race a concurrent acquirer). *)
end

(** {1 Segmented runner} *)

module Runner : sig
  type device = Opteron | Cell | Cell1 | Ppe | Gpu | Mta | Mta_partial

  val device_name : device -> string
  val device_of_name : string -> (device, string) result

  type config = {
    cfg_device : device;
    cfg_atoms : int;
    cfg_steps : int;
    cfg_seed : int;
    cfg_density : float;
    cfg_temperature : float;
    cfg_force_path : Mdports.Force_path.t;
        (** Serialized into the checkpoint (as engine name + skin) and
            restored on resume, so the command line cannot change the
            engine mid-run.  Pairlist state itself is never serialized:
            every segment starts with a fresh list (rebuild forced on
            its first force evaluation), and rebuild timing does not
            change forces, so resume stays bitwise. *)
    cfg_every : int;   (** 0 disables checkpointing: one straight port run *)
    cfg_keep : int;
    cfg_dir : string;
  }

  type suspension = {
    sus_completed : int;
    sus_total : int;
    sus_path : string option;  (** newest durable checkpoint, if any *)
    sus_reason : string;
  }

  type outcome =
    | Complete of Mdports.Run_result.t
    | Suspended of suspension

  val request_suspend : reason:string -> unit
  (** Ask the in-flight {!run}/{!resume} to suspend at the next segment
      boundary.  Async-signal-safe (one atomic store): SIGTERM/SIGINT
      handlers call this, the current segment completes, its checkpoint
      is made durable, and {!advance} returns [Suspended] with the
      final checkpoint path — the graceful shutdown twin of the SIGKILL
      story. *)

  val suspend_requested : unit -> string option
  val clear_suspend_request : unit -> unit

  val run : ?abort_after_segments:int -> ?deadline:float -> config -> outcome
  (** Run [cfg_steps] in [cfg_every]-step segments, checkpointing after
      each (plus a generation-0 file before the first, so resume is
      possible however early the process dies).  [deadline] arms a
      {!Sim_util.Deadline} budget: expiry suspends the run with the last
      durable checkpoint intact.  [abort_after_segments] is the
      kill-simulation test hook: return after that many segment
      checkpoints, exactly as SIGKILL would leave the directory.  On a
      persistent {!Mdcore.Verlet.Invariant_violation} the segment is
      re-executed from its input state (the newest valid generation's
      content) up to 2 times before suspending with the violation
      reason. *)

  val resume : ?abort_after_segments:int -> ?deadline:float -> string ->
    (outcome, string) result
  (** [resume path] continues from a checkpoint file, or from the newest
      valid generation when [path] is a directory.  Reinstates the fault
      plan (stream PRNG positions, counters, event logs) and
      guard-restore count captured at the checkpoint, then runs the
      remaining segments — producing final output byte-identical to the
      uninterrupted run's.  [Error] when no valid checkpoint exists. *)

  val result_of_state : t -> Mdports.Run_result.t
  (** Synthesize the final result of a completed state ([completed =
      total_steps]) — also used by {!resume} when the checkpoint already
      covers the whole run. *)

  (** {2 Single-segment stepping} — the serve engine's entry points:
      a scheduler interleaving many jobs drives each one segment at a
      time, with exactly the per-segment protocol {!run} uses, so a job
      stepped externally converges bitwise with an uninterrupted run. *)

  val prepare : config -> t
  (** Build the initial (step-0) state for [config]: the seeded system
      plus a capture of the current process-global fault/counter state.
      Install the job's fault plan {e before} calling this. *)

  type step_result =
    | Seg_complete of Mdports.Run_result.t
        (** the state already covered the whole run *)
    | Seg_checkpointed of t * string
        (** one more segment executed, absorbed, and durably saved *)

  val segment_step : config -> t -> step_result
  (** Execute exactly one [cfg_every]-step segment (guard retries and
      telemetry segment protocol included) and checkpoint it.
      Precondition: [cfg_every > 0].  The caller owns gen-0 saves,
      deadline budgets and exception handling ({!Mdfault.Unrecovered},
      {!Sim_util.Deadline.Expired}, persistent
      {!Mdcore.Verlet.Invariant_violation}). *)
end
