(** Low-overhead tracing and metrics for the simulators and the host
    harness.

    Two clock domains coexist in one trace:

    - {b Virtual} time — the simulated machine clocks (Cell, GPU, MTA).
      Virtual events are a pure function of the simulated program: for a
      fixed workload they are byte-identical regardless of the host pool
      size ([--domains]), which extends the repo's determinism guarantee
      to traces (see {!virtual_events_string}).
    - {b Host} time — wall-clock seconds since {!enable}: Mdpar regions,
      pairlist rebuilds, experiment wall time.  These depend on real
      scheduling and are excluded from all determinism checks.

    Recording is disabled by default; every probe site guards on one
    atomic flag, so the instrumented hot paths cost a single load when
    tracing is off.  Enable tracing {e before} creating machines/pools —
    tracks made while disabled are inert dummies. *)

type clock = Virtual | Host

type value = Int of int | Float of float | Str of string

type phase = Span of float  (** duration, seconds *) | Instant | Counter of float

type track
(** A named event stream (one Chrome trace "thread").  A track lives in
    exactly one clock domain and must be appended to by one logical
    writer at a time (machine simulators are single-threaded per machine,
    which guarantees this for virtual tracks). *)

type event = {
  track_name : string;
  ev_clock : clock;
  ev_name : string;
  ev_phase : phase;
  ts : float;  (** seconds in the track's clock domain *)
  seq : int;   (** per-track emission index *)
  args : (string * value) list;
}

(** {1 Sinks} *)

module Sink : sig
  type t

  val noop : t
  (** Drops everything (the default). *)

  val memory : unit -> t
  (** Unbounded in-memory buffer; feeds the exporters. *)

  val ring : capacity:int -> t
  (** Bounded buffer keeping the newest [capacity] events.  Lossy:
      determinism guarantees do not survive overflow, but the overflow
      is counted (see {!dropped_events}) so truncated traces are
      self-describing.  Raises [Invalid_argument] on non-positive
      capacity. *)
end

(** {1 Recorder lifecycle} *)

val enabled : unit -> bool
val enable : Sink.t -> unit
(** Install a sink, reset the host epoch, and turn recording on. *)

val disable : unit -> unit
(** Stop recording; the sink keeps its events (for export). *)

val clear : unit -> unit
(** Disable, drop the sink and all events, and reset track-name
    instance counters (so a fresh run reproduces the same names). *)

val host_now : unit -> float
(** Host seconds since {!enable}. *)

(** {1 Scopes}

    Track names are [scope/base].  The scope is domain-local, so the
    harness can label everything an experiment (or a memoized shared
    computation) creates with a deterministic prefix, independent of
    which pool worker runs it. *)

val with_scope : string -> (unit -> 'a) -> 'a
val current_scope : unit -> string

(** {1 Tracks and events} *)

val new_track : clock:clock -> string -> track
(** Register [scope/base] (with a [#n] suffix for repeat names).  When
    recording is disabled this returns an inert dummy whose emissions
    are dropped forever — create tracks after {!enable}. *)

val track_name : track -> string

val span : track -> name:string -> ts:float -> dur:float ->
  ?args:(string * value) list -> unit -> unit

val instant : track -> name:string -> ts:float ->
  ?args:(string * value) list -> unit -> unit

val counter : track -> name:string -> ts:float -> float -> unit

val host_span : track -> name:string -> ?args:(string * value) list ->
  (unit -> 'a) -> 'a
(** Run the thunk and record a host-clock span around it (a plain call
    when disabled). *)

(** {1 Export} *)

val events : unit -> event list
(** All recorded events in deterministic order: virtual tracks before
    host tracks, tracks by name, events by sequence. *)

val dropped_events : unit -> int
(** Events lost to ring-sink overflow since {!enable} (0 for the noop
    and memory sinks).  When positive, {!to_chrome_json} also records
    it as a [dropped_events] metadata event. *)

val to_chrome_json : ?virtual_only:bool -> unit -> string
(** Chrome trace-event JSON ([chrome://tracing] / Perfetto): pid 1 is
    virtual time, pid 2 host time; one tid per track (virtual tracks
    numbered first so their ids are pool-size invariant); spans are
    ["ph":"X"], instants ["ph":"i"], counters ["ph":"C"].  Timestamps
    are microseconds. *)

val virtual_events_string : unit -> string
(** Canonical dump of only the virtual-clock events — the byte-identical
    artifact the determinism tests compare across pool sizes. *)

val json_escape : string -> string
(** JSON string escaping, shared with the metrics writers. *)

val write_file : path:string -> string -> unit
(** Atomic: writes [path ^ ".tmp"], fsyncs, then renames, so an aborted
    run never leaves a truncated artifact at [path].  Stale [.tmp] files
    from a previous crash are removed first. *)

val set_file_writer : (path:string -> string -> unit) -> unit
(** Replace the implementation behind {!write_file}.  Mdobs sits below
    the fault-injection layer in the library graph, so the Mdio
    write-path shim installs itself here (from its module initializer)
    rather than being called directly — every artifact write then goes
    through the shimmed, fault-injectable path. *)
