(* Observability layer: spans, instants and counters over two clock
   domains, with pluggable sinks and a Chrome trace-event exporter.

   Load-bearing design choices:

   - Recording is off by default and every instrumentation site guards on
     a single atomic flag, so a disabled build pays one load per probe
     and allocates nothing ([new_track] hands back a shared dummy).
   - Events live in per-track order.  A track belongs to exactly one
     clock domain; virtual-time tracks are only ever appended to by the
     (single-threaded) machine simulator that owns them, so their event
     sequences are a pure function of the simulated program — identical
     for any host pool size.  Host-time tracks (Mdpar regions, pairlist
     rebuilds, wall clocks) make no such promise and are therefore kept
     out of {!virtual_events_string} and sorted after the virtual tracks
     in the exported JSON.
   - Track names are [scope/base] plus a per-name instance suffix.  The
     scope is domain-local state set by the harness (experiment id, memo
     key), which keeps names deterministic even when experiments are
     scheduled onto different pool workers between runs. *)

type clock = Virtual | Host

type value = Int of int | Float of float | Str of string

type phase = Span of float (* duration, seconds *) | Instant | Counter of float

type track = {
  tname : string;
  clock : clock;
  mutable seq : int;  (* per-track emission index, under the global lock *)
  dummy : bool;       (* unregistered; emissions are dropped *)
}

type event = {
  track_name : string;
  ev_clock : clock;
  ev_name : string;
  ev_phase : phase;
  ts : float;  (* seconds in the track's clock domain *)
  seq : int;
  args : (string * value) list;
}

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

module Sink = struct
  type t =
    | Noop
    | Memory of event list ref  (* newest first *)
    | Ring of {
        cap : int;
        buf : event option array;
        mutable head : int;
        mutable dropped : int;  (* events overwritten since enable *)
      }

  let noop = Noop
  let memory () = Memory (ref [])

  let ring ~capacity =
    if capacity <= 0 then invalid_arg "Mdobs.Sink.ring: capacity must be positive";
    Ring { cap = capacity; buf = Array.make capacity None; head = 0; dropped = 0 }

  let push t ev =
    match t with
    | Noop -> ()
    | Memory r -> r := ev :: !r
    | Ring r ->
      if r.buf.(r.head) <> None then r.dropped <- r.dropped + 1;
      r.buf.(r.head) <- Some ev;
      r.head <- (r.head + 1) mod r.cap

  let dropped = function Noop | Memory _ -> 0 | Ring r -> r.dropped

  let contents t =
    match t with
    | Noop -> []
    | Memory r -> List.rev !r
    | Ring r ->
      (* oldest-to-newest: head points at the next overwrite slot *)
      let out = ref [] in
      for k = r.cap - 1 downto 0 do
        match r.buf.((r.head + k) mod r.cap) with
        | Some ev -> out := ev :: !out
        | None -> ()
      done;
      !out
end

(* ------------------------------------------------------------------ *)
(* Global recorder state                                               *)
(* ------------------------------------------------------------------ *)

let lock = Mutex.create ()
let enabled_flag = Atomic.make false
let sink = ref Sink.Noop
let name_counts : (string, int) Hashtbl.t = Hashtbl.create 32
let host_epoch = ref 0.0

let enabled () = Atomic.get enabled_flag

let enable s =
  Mutex.lock lock;
  sink := s;
  host_epoch := Unix.gettimeofday ();
  Mutex.unlock lock;
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let clear () =
  Atomic.set enabled_flag false;
  Mutex.lock lock;
  sink := Sink.Noop;
  Hashtbl.reset name_counts;
  Mutex.unlock lock

let host_now () = Unix.gettimeofday () -. !host_epoch

(* ------------------------------------------------------------------ *)
(* Scopes (domain-local)                                               *)
(* ------------------------------------------------------------------ *)

let scope_key : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "")

let current_scope () = Domain.DLS.get scope_key

let with_scope name f =
  let saved = Domain.DLS.get scope_key in
  Domain.DLS.set scope_key name;
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key saved) f

(* ------------------------------------------------------------------ *)
(* Tracks and emission                                                 *)
(* ------------------------------------------------------------------ *)

let dummy_track = { tname = ""; clock = Host; seq = 0; dummy = true }

let new_track ~clock base =
  if not (enabled ()) then dummy_track
  else begin
    let scope = current_scope () in
    let full = if scope = "" then base else scope ^ "/" ^ base in
    Mutex.lock lock;
    let n = Option.value (Hashtbl.find_opt name_counts full) ~default:0 in
    Hashtbl.replace name_counts full (n + 1);
    Mutex.unlock lock;
    let tname = if n = 0 then full else Printf.sprintf "%s#%d" full n in
    { tname; clock; seq = 0; dummy = false }
  end

let track_name t = t.tname

let emit t ~name ~phase ~ts args =
  if (not t.dummy) && enabled () then begin
    Mutex.lock lock;
    let seq = t.seq in
    t.seq <- seq + 1;
    Sink.push !sink
      { track_name = t.tname;
        ev_clock = t.clock;
        ev_name = name;
        ev_phase = phase;
        ts;
        seq;
        args };
    Mutex.unlock lock
  end

let span t ~name ~ts ~dur ?(args = []) () =
  emit t ~name ~phase:(Span dur) ~ts args

let instant t ~name ~ts ?(args = []) () = emit t ~name ~phase:Instant ~ts args

let counter t ~name ~ts v = emit t ~name ~phase:(Counter v) ~ts []

let host_span t ~name ?(args = []) f =
  if t.dummy || not (enabled ()) then f ()
  else begin
    let t0 = host_now () in
    Fun.protect
      ~finally:(fun () -> span t ~name ~ts:t0 ~dur:(host_now () -. t0) ~args ())
      f
  end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* Deterministic order: virtual tracks before host tracks, tracks by
   name, events by per-track sequence. *)
let compare_events a b =
  let clock_rank = function Virtual -> 0 | Host -> 1 in
  let c = compare (clock_rank a.ev_clock) (clock_rank b.ev_clock) in
  if c <> 0 then c
  else begin
    let c = String.compare a.track_name b.track_name in
    if c <> 0 then c else compare a.seq b.seq
  end

let events () =
  Mutex.lock lock;
  let evs = Sink.contents !sink in
  Mutex.unlock lock;
  List.stable_sort compare_events evs

let dropped_events () =
  Mutex.lock lock;
  let d = Sink.dropped !sink in
  Mutex.unlock lock;
  d

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.17g round-trips doubles exactly, so formatting is as deterministic
   as the value itself.  JSON has no notion of infinity/NaN; clamp to
   strings (never produced by the instrumented sites, but the exporter
   must not emit invalid JSON regardless). *)
let json_float v =
  if Float.is_finite v then
    let s = Printf.sprintf "%.17g" v in
    (* ensure a numeric token that JSON accepts (it always is for %g) *)
    s
  else Printf.sprintf "\"%s\"" (if v > 0.0 then "inf" else if v < 0.0 then "-inf" else "nan")

let json_value = function
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let json_args args =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_value v))
       args)

let usec s = s *. 1e6

(* Track ids: virtual tracks get tids 1.. in name order, then host
   tracks — so virtual tids never depend on how many host tracks a given
   pool size created. *)
let assign_tids evs =
  let tbl = Hashtbl.create 32 in
  let next = ref 1 in
  List.iter
    (fun ev ->
      if not (Hashtbl.mem tbl ev.track_name) then begin
        Hashtbl.add tbl ev.track_name !next;
        incr next
      end)
    evs;
  tbl

let to_chrome_json ?(virtual_only = false) () =
  let evs = events () in
  let evs =
    if virtual_only then List.filter (fun e -> e.ev_clock = Virtual) evs
    else evs
  in
  let tids = assign_tids evs in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let add_line line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  let pid = function Virtual -> 1 | Host -> 2 in
  add_line
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"virtual time\"}}";
  if not virtual_only then
    add_line
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\"args\":{\"name\":\"host time\"}}";
  (* An overflowed ring sink silently forgot its oldest events; say so in
     the trace itself so a truncated export is self-describing. *)
  let dropped = dropped_events () in
  if dropped > 0 then
    add_line
      (Printf.sprintf
         "{\"name\":\"dropped_events\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"count\":%d}}"
         dropped);
  (* thread_name metadata, one per track, in tid order *)
  let seen = Hashtbl.create 32 in
  List.iter
    (fun ev ->
      if not (Hashtbl.mem seen ev.track_name) then begin
        Hashtbl.add seen ev.track_name ();
        add_line
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             (pid ev.ev_clock)
             (Hashtbl.find tids ev.track_name)
             (json_escape ev.track_name))
      end)
    evs;
  List.iter
    (fun ev ->
      let tid = Hashtbl.find tids ev.track_name in
      let common =
        Printf.sprintf "\"pid\":%d,\"tid\":%d,\"ts\":%s" (pid ev.ev_clock) tid
          (json_float (usec ev.ts))
      in
      let cat = match ev.ev_clock with Virtual -> "virtual" | Host -> "host" in
      let line =
        match ev.ev_phase with
        | Span dur ->
          Printf.sprintf
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",%s,\"dur\":%s,\"args\":{%s}}"
            (json_escape ev.ev_name) cat common
            (json_float (usec dur))
            (json_args ev.args)
        | Instant ->
          Printf.sprintf
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",%s,\"args\":{%s}}"
            (json_escape ev.ev_name) cat common (json_args ev.args)
        | Counter v ->
          Printf.sprintf
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"C\",%s,\"args\":{\"value\":%s}}"
            (json_escape ev.ev_name) cat common (json_float v)
      in
      add_line line)
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let string_of_value = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f
  | Str s -> s

let virtual_events_string () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      if ev.ev_clock = Virtual then begin
        let ph, extra =
          match ev.ev_phase with
          | Span d -> ("X", Printf.sprintf "%.17g" d)
          | Instant -> ("i", "")
          | Counter v -> ("C", Printf.sprintf "%.17g" v)
        in
        Buffer.add_string buf
          (Printf.sprintf "%s|%d|%s|%s|%.17g|%s|%s\n" ev.track_name ev.seq
             ev.ev_name ph ev.ts extra
             (String.concat ","
                (List.map
                   (fun (k, v) -> k ^ "=" ^ string_of_value v)
                   ev.args)))
      end)
    (events ());
  Buffer.contents buf

(* Write-to-temp, fsync, then rename: an export interrupted mid-write
   (crash, aborted run) must never leave a truncated artifact where CI
   or a byte-compare would read it, and the fsync keeps the rename from
   publishing a name whose bytes are still only in the page cache.  A
   stale .tmp from a previous crash is removed up front (open_out would
   truncate it anyway; removing keeps failure paths from confusing it
   with our own). *)
let default_write_file ~path contents =
  let tmp = path ^ ".tmp" in
  if Sys.file_exists tmp then (try Sys.remove tmp with Sys_error _ -> ());
  let oc = open_out tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc contents;
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* Mdobs sits below the fault layer in the library graph, so the Mdio
   shim cannot be called from here directly; instead Mdio's module
   initializer installs its shimmed atomic write as the file writer.
   Binaries that don't link Mdio keep the direct implementation. *)
let file_writer : (path:string -> string -> unit) ref = ref default_write_file
let set_file_writer f = file_writer := f
let write_file ~path contents = !file_writer ~path contents
