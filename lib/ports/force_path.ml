type t = Brute | Pairlist of { skin : float }

let default = Pairlist { skin = Mdcore.Pairlist.default_skin }

let brute = Brute

let pairlist ?(skin = Mdcore.Pairlist.default_skin) () = Pairlist { skin }

(* A pairlist request degrades silently to the brute engine when the box
   cannot host the list (min-image bound) — small fixtures keep their
   historical O(N²) behaviour bit-for-bit, production sizes get the
   list.  An invalid skin (NaN, infinite, nonpositive) is a caller bug
   and raises via the same validation [Pairlist.create] applies. *)
let resolve t system =
  match t with
  | Brute -> None
  | Pairlist { skin } ->
    if not (Float.is_finite skin) || skin <= 0.0 then
      invalid_arg "Force_path: skin must be positive and finite";
    if Mdcore.Pairlist.admissible ~skin system then Some skin else None

let describe = function
  | Brute -> "n2"
  | Pairlist { skin } -> Printf.sprintf "pairlist(skin=%g)" skin
