module F32 = Sim_util.F32
module Machine = Cellbe.Machine
module Ledger = Cellbe.Ledger

type launch = Respawn | Persistent

type precision = Single | Double

type config = {
  variant : Cell_variant.t;
  n_spes : int;
  launch : launch;
  precision : precision;
  machine : Cellbe.Config.t;
}

let default_config =
  { variant = Cell_variant.Simd_acceleration;
    n_spes = 8;
    launch = Persistent;
    precision = Single;
    machine = Cellbe.Config.default }

(* ------------------------------------------------------------------ *)
(* Single-precision physics                                           *)
(* ------------------------------------------------------------------ *)

(* One gather row in binary32: the arithmetic every SPE variant performs
   (the SIMD rewrites change scheduling, not values).  Returns the row's
   acceleration components, its (double-counted) PE contribution and its
   interaction count. *)
let f32_row p n (px : Mdcore.System.f32buf) (py : Mdcore.System.f32buf)
    (pz : Mdcore.System.f32buf) i =
  let xi = px.{i} and yi = py.{i} and zi = pz.{i} in
  let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 in
  let pe = ref 0.0 and hits = ref 0 in
  for j = 0 to n - 1 do
    if j <> i then begin
      let dx = F32_kernel.min_image p (F32.sub xi px.{j}) in
      let dy = F32_kernel.min_image p (F32.sub yi py.{j}) in
      let dz = F32_kernel.min_image p (F32.sub zi pz.{j}) in
      let r2 = F32_kernel.r2 p ~dx ~dy ~dz in
      match F32_kernel.pair_terms p r2 with
      | Some (coeff, pe_term) ->
        ax := F32.add !ax (F32.mul coeff dx);
        ay := F32.add !ay (F32.mul coeff dy);
        az := F32.add !az (F32.mul coeff dz);
        pe := F32.add !pe pe_term;
        incr hits
      | None -> ()
    end
  done;
  (!ax, !ay, !az, !pe, !hits)

(* Full force evaluation: stage positions to binary32, run every row,
   write accelerations back.  [row_hits] (length n) receives per-row
   interaction counts. *)
let f32_compute ~row_hits (s : Mdcore.System.t) =
  let n = s.Mdcore.System.n in
  let p = F32_kernel.of_system s in
  (* Binary32 staging through the system's reusable buffers: a Float32
     bigarray store rounds to nearest single exactly like [F32.round],
     so the staged values are bit-identical to the old per-call
     [Array.map F32.round] copies — without the per-evaluation
     allocation. *)
  let px, py, pz = Mdcore.System.stage_positions_f32 s in
  let pe2 = ref 0.0 in
  for i = 0 to n - 1 do
    let ax, ay, az, pe_row, hits = f32_row p n px py pz i in
    s.Mdcore.System.acc_x.{i} <- ax;
    s.Mdcore.System.acc_y.{i} <- ay;
    s.Mdcore.System.acc_z.{i} <- az;
    pe2 := !pe2 +. pe_row;
    row_hits.(i) <- hits
  done;
  0.5 *. !pe2

(* Double-precision row gather with per-row hit recording — the physics of
   the hypothetical DP port (identical to the reference kernel; recorded
   separately so profiles carry per-row interaction counts). *)
let dp_compute ~row_hits (s : Mdcore.System.t) =
  let { Mdcore.System.n; box; params; pos_x; pos_y; pos_z;
        acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Mdcore.Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Mdcore.Params.mass in
  let pe2 = ref 0.0 in
  for i = 0 to n - 1 do
    let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    let hits = ref 0 in
    for j = 0 to n - 1 do
      if j <> i then begin
        let dx = Mdcore.Min_image.delta ~box (xi -. pos_x.{j})
        and dy = Mdcore.Min_image.delta ~box (yi -. pos_y.{j})
        and dz = Mdcore.Min_image.delta ~box (zi -. pos_z.{j}) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < rc2 then begin
          let f_over_r = Mdcore.Params.lj_force_over_r params r2 in
          fx := !fx +. (f_over_r *. dx);
          fy := !fy +. (f_over_r *. dy);
          fz := !fz +. (f_over_r *. dz);
          pe2 := !pe2 +. Mdcore.Params.lj_potential params r2;
          incr hits
        end
      end
    done;
    acc_x.{i} <- !fx *. inv_mass;
    acc_y.{i} <- !fy *. inv_mass;
    acc_z.{i} <- !fz *. inv_mass;
    row_hits.(i) <- !hits
  done;
  0.5 *. !pe2

(* Pairlist variants of the two physics kernels: gather over the full
   neighbour rows instead of all j.  Entries beyond the cutoff fail the
   same in-cutoff tests and contribute nothing, and in-cutoff partners
   arrive in the same ascending order, so both are bit-identical to
   their N² counterparts on the same positions. *)
let f32_compute_rows ~row_hits rows (s : Mdcore.System.t) =
  let n = s.Mdcore.System.n in
  let p = F32_kernel.of_system s in
  let px, py, pz = Mdcore.System.stage_positions_f32 s in
  let pe2 = ref 0.0 in
  for i = 0 to n - 1 do
    let xi = px.{i} and yi = py.{i} and zi = pz.{i} in
    let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 in
    let pe = ref 0.0 and hits = ref 0 in
    Array.iter
      (fun j ->
        let dx = F32_kernel.min_image p (F32.sub xi px.{j}) in
        let dy = F32_kernel.min_image p (F32.sub yi py.{j}) in
        let dz = F32_kernel.min_image p (F32.sub zi pz.{j}) in
        let r2 = F32_kernel.r2 p ~dx ~dy ~dz in
        match F32_kernel.pair_terms p r2 with
        | Some (coeff, pe_term) ->
          ax := F32.add !ax (F32.mul coeff dx);
          ay := F32.add !ay (F32.mul coeff dy);
          az := F32.add !az (F32.mul coeff dz);
          pe := F32.add !pe pe_term;
          incr hits
        | None -> ())
      (rows.(i) : int array);
    s.Mdcore.System.acc_x.{i} <- !ax;
    s.Mdcore.System.acc_y.{i} <- !ay;
    s.Mdcore.System.acc_z.{i} <- !az;
    pe2 := !pe2 +. !pe;
    row_hits.(i) <- !hits
  done;
  0.5 *. !pe2

let dp_compute_rows ~row_hits rows (s : Mdcore.System.t) =
  let { Mdcore.System.n; box; params; pos_x; pos_y; pos_z;
        acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Mdcore.Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Mdcore.Params.mass in
  let pe2 = ref 0.0 in
  for i = 0 to n - 1 do
    let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    let hits = ref 0 in
    Array.iter
      (fun j ->
        let dx = Mdcore.Min_image.delta ~box (xi -. pos_x.{j})
        and dy = Mdcore.Min_image.delta ~box (yi -. pos_y.{j})
        and dz = Mdcore.Min_image.delta ~box (zi -. pos_z.{j}) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < rc2 then begin
          let f_over_r = Mdcore.Params.lj_force_over_r params r2 in
          fx := !fx +. (f_over_r *. dx);
          fy := !fy +. (f_over_r *. dy);
          fz := !fz +. (f_over_r *. dz);
          pe2 := !pe2 +. Mdcore.Params.lj_potential params r2;
          incr hits
        end)
      (rows.(i) : int array);
    acc_x.{i} <- !fx *. inv_mass;
    acc_y.{i} <- !fy *. inv_mass;
    acc_z.{i} <- !fz *. inv_mass;
    row_hits.(i) <- !hits
  done;
  0.5 *. !pe2

let apply_f32_engine _system =
  Mdcore.Engine.make ~name:"cell-f32" ~compute:(fun s ->
      let row_hits = Array.make s.Mdcore.System.n 0 in
      f32_compute ~row_hits s)

(* ------------------------------------------------------------------ *)
(* Profiles                                                           *)
(* ------------------------------------------------------------------ *)

(* Per-invocation pairlist tile data the timing replay charges from:
   which rows carried how many list entries, and whether this force
   evaluation paid a rebuild scan. *)
type invocation_tile = {
  row_entries : int array;  (* full-row entry count per atom *)
  tile_entries : int;       (* sum of row_entries *)
  rebuilt : bool;
  scanned : int;            (* candidate pairs examined; 0 unless rebuilt *)
}

type profile = {
  n : int;
  steps : int;
  precision : precision;
  records : Mdcore.Verlet.step_record list;
  row_hits : int array array; (* one entry per force evaluation *)
  plan : invocation_tile array option;  (* Some iff run with the pairlist *)
  final : Mdcore.System.t;    (* working copy after the last step *)
}

let profile_run ?(steps = 10) ?(precision = Single)
    ?(force_path = Force_path.default) system =
  let s = Mdcore.System.copy system in
  let n = s.Mdcore.System.n in
  let collected = ref [] in
  let tiles = ref [] in
  let pl =
    match Force_path.resolve force_path s with
    | None -> None
    | Some skin -> Some (Mdcore.Pairlist.create ~skin s)
  in
  let compute row_hits sys =
    match pl with
    | None ->
      (match precision with
      | Single -> f32_compute ~row_hits sys
      | Double -> dp_compute ~row_hits sys)
    | Some pl ->
      let rebuilt = Mdcore.Pairlist.refresh pl in
      let scanned =
        if rebuilt then Mdcore.Pairlist.last_build_scanned pl else 0
      in
      let rows = Mdcore.Pairlist.full_rows pl in
      let row_entries = Array.map Array.length rows in
      tiles :=
        { row_entries;
          tile_entries = Array.fold_left ( + ) 0 row_entries;
          rebuilt;
          scanned }
        :: !tiles;
      (match precision with
      | Single -> f32_compute_rows ~row_hits rows sys
      | Double -> dp_compute_rows ~row_hits rows sys)
  in
  let engine =
    Mdcore.Engine.make ~name:"cell" ~compute:(fun sys ->
        let row_hits = Array.make n 0 in
        let pe = compute row_hits sys in
        collected := row_hits :: !collected;
        pe)
  in
  let records = Mdcore.Verlet.run s ~engine ~steps ~max_step_retries:(Mdfault.step_retries ()) () in
  { n; steps; precision; records;
    row_hits = Array.of_list (List.rev !collected);
    plan =
      (match pl with
      | None -> None
      | Some _ -> Some (Array.of_list (List.rev !tiles)));
    final = s }

let profile_precision p = p.precision

let profile_records p = p.records

let profile_hits p =
  Array.fold_left
    (fun acc rows -> acc + Array.fold_left ( + ) 0 rows)
    0 p.row_hits

(* ------------------------------------------------------------------ *)
(* Machine-time replay                                                *)
(* ------------------------------------------------------------------ *)

(* Rows [slice_lo..slice_hi) handled by each SPE: contiguous, balanced. *)
let slice ~n ~spes k = (k * n / spes, (k + 1) * n / spes)

let slice_hits row_hits ~lo ~hi =
  let acc = ref 0 in
  for i = lo to hi - 1 do
    acc := !acc + row_hits.(i)
  done;
  !acc

(* Stage the j-atoms in chunks that respect the 256 KB local store:
   8192 atoms x 3 coordinates x 4 bytes = 96 KB per chunk. *)
let default_j_chunk = 8192

let spe_kernel ~j_chunk ~(cfg : config) ~profile ~stage ~invocation ctx =
  let n = profile.n in
  (* Doubles occupy two binary32 slots in every size computation. *)
  let word = match cfg.precision with Single -> 1 | Double -> 2 in
  let lo, hi = slice ~n ~spes:cfg.n_spes (Machine.spe_id ctx) in
  let rows = hi - lo in
  if rows > 0 then begin
    let ls = Machine.local_store ctx in
    let acc_buf =
      Cellbe.Local_store.alloc ls ~name:"acc" ~floats:(3 * rows * word)
    in
    let pe_buf = Cellbe.Local_store.alloc ls ~name:"pe" ~floats:(4 * word) in
    let chunk_len = min (j_chunk / word) n in
    (* One reusable staging buffer; successive chunks overwrite it, as a
       double-buffered SPE kernel reuses its tile. *)
    let chunk =
      Cellbe.Local_store.alloc ls ~name:"pos-chunk"
        ~floats:(3 * chunk_len * word)
    in
    (* Whole-position-array staging in LS-sized tiles (three coordinate
       arrays per chunk) — the brute kernel's staging, also reused by
       the pairlist kernel on the dense side of its crossover. *)
    let rec stage_chunks pos =
      if pos < n then begin
        let len = min chunk_len (n - pos) in
        Machine.dma_get ctx ~src:stage ~src_pos:pos ~dst:chunk ~dst_pos:0
          ~len:(len * word);
        Machine.dma_get ctx ~src:stage ~src_pos:pos ~dst:chunk
          ~dst_pos:(len * word) ~len:(len * word);
        Machine.dma_get ctx ~src:stage ~src_pos:pos ~dst:chunk
          ~dst_pos:(2 * len * word) ~len:(len * word);
        stage_chunks (pos + len)
      end
    in
    let base, hit_block =
      match cfg.precision with
      | Single -> (Kernels.spe_base cfg.variant, Kernels.spe_hit cfg.variant)
      | Double -> (Kernels.spe_base_dp, Kernels.spe_hit_dp)
    in
    let base_iterations =
      match profile.plan with
      | None ->
        (* Brute kernel: stage the whole position arrays in tiles. *)
        stage_chunks 0;
        rows * (n - 1)
      | Some plan ->
        (* Pairlist kernel.  The neighbour-row tile — the packed 4-byte
           index list for rows [lo, hi) — lives in main memory between
           force evaluations.  On rebuild steps each SPE scans its own
           share of the candidate pairs against the whole staged
           position arrays, builds its tile in local store, and DMAs it
           back out; the subsequent per-pair loop reads the
           freshly-built tile in place.  On other steps the SPE fetches
           its stored tile instead.  Coordinate staging is adaptive:
           when the tile is sparser than the box (fewer entries than
           atoms) the three coordinate streams are gathered per entry;
           at liquid densities a row holds ~4πr³ρ/3 ≈ 80 neighbours, so
           entries ≥ n and streaming the whole arrays (exactly the
           brute staging, 3n floats) is the cheaper side of the
           crossover.  Either way the compute loop shrinks from
           rows·(n-1) candidates to the stored entries. *)
        let tile = plan.(invocation) in
        let entries = slice_hits tile.row_entries ~lo ~hi in
        let idx_buf =
          Cellbe.Local_store.alloc ls ~name:"idx-chunk" ~floats:chunk_len
        in
        let rec move_indices dma remaining =
          if remaining > 0 then begin
            let len = min chunk_len remaining in
            dma len;
            move_indices dma (remaining - len)
          end
        in
        let fetch_indices () =
          move_indices
            (fun len ->
              Machine.dma_get ctx ~src:stage ~src_pos:0 ~dst:idx_buf
                ~dst_pos:0 ~len)
            entries
        in
        let writeback_indices () =
          move_indices
            (fun len ->
              Machine.dma_put ctx ~src:idx_buf ~src_pos:0 ~dst:stage
                ~dst_pos:0 ~len)
            entries
        in
        if tile.rebuilt then begin
          (* The candidate scan needs every position, so the rebuild
             always stages the whole arrays.  The scan itself is the
             same candidate block as the force loop's base (distance +
             cutoff test, no force math), run over this SPE's
             proportional share of the scanned pairs. *)
          stage_chunks 0;
          Machine.charge_block ctx base
            ~iterations:(tile.scanned * rows / n)
            ~overlap:Kernels.spe_overlap;
          writeback_indices ()
        end
        else begin
          fetch_indices ();
          if entries < n then begin
            let rec stage_gathered remaining =
              if remaining > 0 then begin
                let len = min chunk_len remaining in
                (* gathered x/y/z streams for these entries *)
                Machine.dma_get ctx ~src:stage ~src_pos:0 ~dst:chunk
                  ~dst_pos:0 ~len:(len * word);
                Machine.dma_get ctx ~src:stage ~src_pos:0 ~dst:chunk
                  ~dst_pos:(len * word) ~len:(len * word);
                Machine.dma_get ctx ~src:stage ~src_pos:0 ~dst:chunk
                  ~dst_pos:(2 * len * word) ~len:(len * word);
                stage_gathered (remaining - len)
              end
            in
            stage_gathered entries
          end
          else stage_chunks 0
        end;
        entries
    in
    let hits = slice_hits profile.row_hits.(invocation) ~lo ~hi in
    Machine.charge_block ctx base ~iterations:base_iterations
      ~overlap:Kernels.spe_overlap;
    Machine.charge_block ctx hit_block ~iterations:hits
      ~overlap:Kernels.spe_overlap;
    Machine.charge_block ctx Kernels.spe_row_overhead ~iterations:rows
      ~overlap:Kernels.spe_overlap;
    Machine.dma_put ctx ~src:acc_buf ~src_pos:0 ~dst:stage ~dst_pos:0
      ~len:(min (3 * rows * word) n);
    Machine.dma_put ctx ~src:pe_buf ~src_pos:0 ~dst:stage ~dst_pos:0
      ~len:(4 * word)
  end

let breakdown_of_ledger ledger =
  List.map
    (fun cat -> (Ledger.category_name cat, Ledger.get ledger cat))
    Ledger.all_categories

(* Port-level virtual PMU summary: the SPE kernels' static FLOP counts
   scaled by the replayed iteration totals, plus the end-to-end virtual
   time (feeds the derived cell/mflops). *)
(* Total per-pair loop iterations across the run: all candidate pairs
   for the brute kernel, the stored list entries for the pairlist one. *)
let pair_iterations profile =
  let n = profile.n in
  let invocations = Array.length profile.row_hits in
  match profile.plan with
  | None -> invocations * n * (n - 1)
  | Some plan ->
    Array.fold_left (fun acc t -> acc + t.tile_entries) 0 plan

let rebuild_scanned profile =
  match profile.plan with
  | None -> 0
  | Some plan -> Array.fold_left (fun acc t -> acc + t.scanned) 0 plan

let publish_prof ~(cfg : config) ~profile ~seconds =
  if Mdprof.enabled () then begin
    let c ?unit_ name = Mdprof.counter ?unit_ ~clock:Mdprof.Virtual name in
    let n = profile.n in
    let invocations = Array.length profile.row_hits in
    let base, hit_block =
      match cfg.precision with
      | Single -> (Kernels.spe_base cfg.variant, Kernels.spe_hit cfg.variant)
      | Double -> (Kernels.spe_base_dp, Kernels.spe_hit_dp)
    in
    let flops =
      (pair_iterations profile * Isa.Block.flops base)
      + (profile_hits profile * Isa.Block.flops hit_block)
      + (invocations * n * Isa.Block.flops Kernels.spe_row_overhead)
    in
    Mdprof.add_f (c ~unit_:"s" "cell/virtual_seconds") seconds;
    Mdprof.add (c ~unit_:"flops" "cell/flops") flops;
    match profile.plan with
    | None -> ()
    | Some plan ->
      Mdprof.add
        (c ~unit_:"pairs" "cell/pairlist_rebuild_pairs")
        (rebuild_scanned profile);
      (* 4-byte neighbour-index DMA traffic: tiles written back on
         rebuild steps, fetched into local store otherwise. *)
      Mdprof.add
        (c ~unit_:"bytes" "cell/pairlist_index_dma_bytes")
        (4 * Array.fold_left (fun acc t -> acc + t.tile_entries) 0 plan)
  end

let time_with ?(j_chunk = default_j_chunk) profile cfg =
  if j_chunk <= 0 then invalid_arg "Cell_port.time_with: j_chunk";
  Cellbe.Config.validate cfg.machine;
  if cfg.n_spes < 1 || cfg.n_spes > cfg.machine.Cellbe.Config.n_spes then
    invalid_arg "Cell_port.time_with: n_spes out of range";
  let machine = Machine.create cfg.machine in
  let n = profile.n in
  (* Scratch main-memory array standing in for the staged float data; DMA
     blits need at least 3 * j_chunk float-slots. *)
  let stage = Array.make (max (2 * n) (3 * j_chunk)) 0.0 in
  let mode =
    match cfg.launch with
    | Respawn -> Machine.Respawn
    | Persistent -> Machine.Persistent
  in
  let invocations = Array.length profile.row_hits in
  (* Offload-level recovery for the timing replay: an offload aborted by
     an unrecovered device fault is re-issued whole (the PPE re-stages
     and relaunches), like the checkpointed step re-execution on the
     physics side.  Partial charges from the failed attempt stay on the
     virtual clock — failed work still costs time. *)
  let offload_retries = Mdfault.step_retries () in
  let offload_checkpointed invocation =
    let rec go attempt =
      match
        Machine.offload machine ~spes:cfg.n_spes ~mode
          (spe_kernel ~j_chunk ~cfg ~profile ~stage ~invocation)
      with
      | () -> if attempt > 0 then Mdfault.note_recovered_step ()
      | exception Mdfault.Unrecovered _ when attempt < offload_retries ->
        go (attempt + 1)
    in
    go 0
  in
  for invocation = 0 to invocations - 1 do
    (* PPE stages the positions to binary32. *)
    Machine.ppe_block machine Kernels.ppe_stage_block ~iterations:n;
    (* Rebuild scans run on the SPEs (each scans its candidate share and
       writes its index tile back) — charged inside spe_kernel, not
       here: the in-order PPE serializing an O(N²) scan would cost more
       than the list saves. *)
    offload_checkpointed invocation;
    (* PPE converts accelerations back and accumulates the PE partials. *)
    Machine.ppe_block machine Kernels.ppe_stage_block ~iterations:n;
    (* Integration for every step but the initial force evaluation. *)
    if invocation > 0 then
      Machine.ppe_block machine Kernels.opteron_integration ~iterations:n
  done;
  let ledger = Machine.ledger machine in
  publish_prof ~cfg ~profile ~seconds:(Machine.time machine);
  { Run_result.device =
      Printf.sprintf "Cell (%d SPE%s, %s, %s%s)" cfg.n_spes
        (if cfg.n_spes = 1 then "" else "s")
        (match cfg.launch with
        | Respawn -> "respawn"
        | Persistent -> "persistent")
        (match cfg.precision with
        | Single -> Cell_variant.name cfg.variant
        | Double -> "double precision")
        (if Option.is_some profile.plan then ", pairlist" else "");
    n_atoms = n;
    steps = profile.steps;
    seconds = Machine.time machine;
    records = profile.records;
    breakdown = breakdown_of_ledger ledger;
    pairs_evaluated = pair_iterations profile + rebuild_scanned profile;
    interactions = profile_hits profile;
    final_system = Some profile.final }

let run ?steps ?(config = default_config) ?force_path system =
  time_with
    (profile_run ?steps ~precision:config.precision ?force_path system)
    config

let time_ppe_only ?(machine = Cellbe.Config.default) profile =
  let m = Machine.create machine in
  let n = profile.n in
  let invocations = Array.length profile.row_hits in
  for invocation = 0 to invocations - 1 do
    let hits = slice_hits profile.row_hits.(invocation) ~lo:0 ~hi:n in
    Machine.ppe_block m Kernels.opteron_base ~iterations:(n * (n - 1));
    Machine.ppe_block m Kernels.opteron_hit ~iterations:hits;
    Machine.ppe_block m Kernels.opteron_row_overhead ~iterations:n;
    if invocation > 0 then
      Machine.ppe_block m Kernels.opteron_integration ~iterations:n
  done;
  { Run_result.device = "Cell (PPE only)";
    n_atoms = n;
    steps = profile.steps;
    seconds = Machine.time m;
    records = profile.records;
    breakdown = breakdown_of_ledger (Machine.ledger m);
    pairs_evaluated = invocations * n * (n - 1);
    interactions = profile_hits profile;
    final_system = Some profile.final }

let run_ppe_only ?steps ?machine system =
  (* The PPE-only ladder rung is a paper figure: keep it on the as-written
     N² kernel (its timing replay charges the full sweep). *)
  time_ppe_only ?machine
    (profile_run ?steps ~force_path:Force_path.brute system)

let accel_seconds result =
  Run_result.breakdown_get result "compute"
  +. Run_result.breakdown_get result "dma"

let launch_overhead_seconds result =
  Run_result.breakdown_get result "spawn"
  +. Run_result.breakdown_get result "signal"
