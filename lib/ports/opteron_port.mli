(** The reference implementation: the paper's 2.2 GHz Opteron run.

    Physics is the double-precision gather kernel from
    {!Mdcore.Forces}; virtual time combines

    - pipeline cycles: per-pair base + per-interaction hit blocks from
      {!Kernels} through {!Isa.Opteron_pipe}, plus per-atom row and
      integration overheads, and
    - memory-hierarchy stalls: the inner loop's address stream replayed
      through {!Memsim.Hierarchy} (a 64 KB L1 / 1 MB L2 Opteron), charging
      the cycles in excess of an L1 hit.  Because the j-sweep is identical
      for every i, the sweep is replayed for a sample of rows per step and
      scaled — exact for this access pattern, and cheap.

    This cache term is what bends Fig. 9's Opteron curve above the pure
    N² line once the position arrays outgrow the L1. *)

type config = {
  clock : Sim_util.Units.clock;
  hierarchy : Memsim.Hierarchy.config;
  sample_rows : int;  (** i-rows replayed through the cache model per step *)
}

val default_config : config

val run : ?steps:int -> ?config:config -> ?force_path:Force_path.t ->
  Mdcore.System.t -> Run_result.t
(** Simulate [steps] (default 10) velocity-Verlet steps on a copy of the
    system.  The breakdown separates ["compute"] and ["memory"] seconds.

    [force_path] defaults to {!Force_path.default}: the skin-based
    pairlist engine (Newton-3 half-list traversal, rebuild scans charged
    on rebuild steps) whenever the box admits it, else the paper's
    per-step O(N²) gather.  Pass {!Force_path.brute} to pin the N²
    stress-test behaviour (the paper-figure harness does). *)

val seconds_for : ?steps:int -> ?config:config -> ?force_path:Force_path.t ->
  n:int -> unit -> float
(** Convenience for sweeps: build a default system of [n] atoms
    ({!Mdcore.Init.build}) and return the virtual runtime. *)

val memory_excess_cycles_per_pair : ?config:config -> n:int -> unit -> float
(** The measured average memory-stall cycles per pair at a given system
    size (diagnostic for the Fig. 9 analysis). *)

val run_pairlist : ?steps:int -> ?config:config -> ?skin:float ->
  Mdcore.System.t -> Run_result.t
(** The same Opteron with the Verlet neighbour list forced on (raises if
    the box is below the min-image bound for [cutoff+skin]).  Per step
    the inner loop visits only the stored neighbours; the build's
    candidate scan is charged on the steps where the list is rebuilt.
    Quantifies how much the paper's "no cache-friendly optimizations"
    methodology costs the baseline. *)
