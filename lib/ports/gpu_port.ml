module F32 = Sim_util.F32
module Vec4f = Vecmath.Vec4f
module Machine = Gpustream.Machine
module Ledger = Gpustream.Ledger
module Pipe = Isa.Opteron_pipe

let host_clock = Sim_util.Units.clock ~hz:2.2e9 ~label:"host Opteron 2.2 GHz"

let host_seconds cycles = Sim_util.Units.seconds_of_cycles host_clock cycles

(* Per-atom CPU staging: build the float4 position array. *)
let charge_host_block machine block ~iterations =
  Machine.cpu_charge machine
    ~seconds:
      (host_seconds
         (Pipe.loop_cycles block ~iterations ~overlap:Kernels.opteron_overlap))

(* The fragment program: gather over the whole position texture,
   accumulating acceleration in xyz and the PE contribution in w. *)
let fragment p n hits sampler i =
  let own = Machine.sample sampler ~input:0 i in
  let xi = Vec4f.x own and yi = Vec4f.y own and zi = Vec4f.z own in
  let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 and pe = ref 0.0 in
  for j = 0 to n - 1 do
    let posj = Machine.sample sampler ~input:0 j in
    let dx = F32_kernel.min_image p (F32.sub xi (Vec4f.x posj)) in
    let dy = F32_kernel.min_image p (F32.sub yi (Vec4f.y posj)) in
    let dz = F32_kernel.min_image p (F32.sub zi (Vec4f.z posj)) in
    let r2 = F32_kernel.r2 p ~dx ~dy ~dz in
    (* The shader cannot test j <> i; coincident atoms are excluded by the
       r2 > 0 guard inside [pair_terms], exactly as the real shader does. *)
    match F32_kernel.pair_terms p r2 with
    | Some (coeff, pe_term) ->
      ax := F32.add !ax (F32.mul coeff dx);
      ay := F32.add !ay (F32.mul coeff dy);
      az := F32.add !az (F32.mul coeff dz);
      pe := F32.add !pe pe_term;
      incr hits
    | None -> ()
  done;
  Vec4f.make !ax !ay !az !pe

(* Pairlist fragment: walk this row of the neighbour list instead of
   the whole position texture.  Per entry the shader fetches the packed
   index texel (input 2, four indices per float4) and the neighbour's
   position (input 0); the per-row (start, count) descriptor (input 1)
   is fetched once.  The arithmetic per contributing pair is exactly the
   brute fragment's, in the same ascending-j order, so trajectories are
   bitwise those of the N² shader. *)
let fragment_rows p rows starts hits sampler i =
  let own = Machine.sample sampler ~input:0 i in
  ignore (Machine.sample sampler ~input:1 i);
  let xi = Vec4f.x own and yi = Vec4f.y own and zi = Vec4f.z own in
  let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 and pe = ref 0.0 in
  let row : int array = rows.(i) and start : int = starts.(i) in
  Array.iteri
    (fun k j ->
      ignore (Machine.sample sampler ~input:2 ((start + k) lsr 2));
      let posj = Machine.sample sampler ~input:0 j in
      let dx = F32_kernel.min_image p (F32.sub xi (Vec4f.x posj)) in
      let dy = F32_kernel.min_image p (F32.sub yi (Vec4f.y posj)) in
      let dz = F32_kernel.min_image p (F32.sub zi (Vec4f.z posj)) in
      let r2 = F32_kernel.r2 p ~dx ~dy ~dz in
      match F32_kernel.pair_terms p r2 with
      | Some (coeff, pe_term) ->
        ax := F32.add !ax (F32.mul coeff dx);
        ay := F32.add !ay (F32.mul coeff dy);
        az := F32.add !az (F32.mul coeff dz);
        pe := F32.add !pe pe_term;
        incr hits
      | None -> ())
    row;
  Vec4f.make !ax !ay !az !pe

type pe_strategy = Readback_w | Gpu_reduction

(* 8-to-1 reduction shader: eight texture fetches summed into one output
   texel. *)
let reduce_fanin = 8

let reduce_block =
  let b = Isa.Block.Builder.create () in
  let loads =
    Isa.Block.Builder.push_n b Isa.Op.Load ~n:reduce_fanin ~deps:[]
  in
  let _ =
    List.fold_left
      (fun acc l ->
        match acc with
        | None -> Some l
        | Some prev ->
          Some (Isa.Block.Builder.push b Isa.Op.Fadd ~deps:[ prev; l ]))
      None loads
  in
  Isa.Block.Builder.finish b

(* One reduction level: sum [src] (length m) into ceil(m/8) partials with
   binary32 adds, charging a resolve + dispatch per pass. *)
let reduce_level m src = 
  let out_len = (m + reduce_fanin - 1) / reduce_fanin in
  let out = Array.make out_len 0.0 in
  for o = 0 to out_len - 1 do
    let acc = ref 0.0 in
    for k = 0 to reduce_fanin - 1 do
      let i = (o * reduce_fanin) + k in
      if i < m then acc := F32.add !acc src.(i)
    done;
    out.(o) <- !acc
  done;
  out

let run ?(steps = 10) ?(machine = Gpustream.Config.geforce_7900gtx)
    ?(pe_strategy = Readback_w) ?(force_path = Force_path.default) system =
  let s = Mdcore.System.copy system in
  let n = s.Mdcore.System.n in
  let m = Machine.create machine in
  let pl =
    match Force_path.resolve force_path s with
    | None -> None
    | Some skin -> Some (Mdcore.Pairlist.create ~skin s)
  in
  let positions = Machine.create_texture m ~name:"positions" ~texels:n in
  let accels = Machine.create_render_target m ~name:"accelerations" ~texels:n in
  let shader =
    Machine.compile m ~name:"md-accel" ~body:Kernels.gpu_candidate
      ~prologue:Kernels.gpu_fragment_prologue
  in
  (* Reduction-chain device objects, created once (as a real port would):
     one input texture and one 8x-smaller render target per level. *)
  let reduction_chain =
    match pe_strategy with
    | Readback_w -> []
    | Gpu_reduction ->
      let rec levels size acc =
        if size <= 1 then List.rev acc
        else begin
          let out_len = (size + reduce_fanin - 1) / reduce_fanin in
          let tex =
            Machine.create_texture m
              ~name:(Printf.sprintf "reduce-in-%d" size)
              ~texels:size
          in
          let rt =
            Machine.create_render_target m
              ~name:(Printf.sprintf "reduce-out-%d" out_len)
              ~texels:out_len
          in
          levels out_len ((tex, rt) :: acc)
        end
      in
      levels n []
  in
  let reduce_shader =
    match pe_strategy with
    | Readback_w -> None
    | Gpu_reduction ->
      Some
        (Machine.compile m ~name:"pe-reduce" ~body:reduce_block
           ~prologue:Kernels.gpu_fragment_prologue)
  in
  let hits_total = ref 0 in
  let invocations = ref 0 in
  let staging = Array.make n Vec4f.zero in
  (* Pairlist device state.  The packed neighbour-index texture and the
     per-row (start, count) descriptor texture live in VRAM and cross
     the PCIe bus only on rebuild steps — positions still upload every
     step, so [--counters] shows the list upload amortizing away. *)
  let idx_tex = ref None and row_tex = ref None in
  let rows = ref [||] and row_start = ref [||] in
  let entries = ref 0 in
  let list_upload_bytes = ref 0 in
  let body_iters = ref 0 in
  let pairs_total = ref 0 in
  let refresh_list_textures pl =
    if Mdcore.Pairlist.refresh pl || Option.is_none !idx_tex then begin
      (* The CPU runs the build's candidate-distance scan. *)
      let scanned = Mdcore.Pairlist.last_build_scanned pl in
      charge_host_block m Kernels.opteron_base ~iterations:scanned;
      pairs_total := !pairs_total + scanned;
      (match !idx_tex with Some t -> Machine.free_texture m t | None -> ());
      (match !row_tex with Some t -> Machine.free_texture m t | None -> ());
      rows := Mdcore.Pairlist.full_rows pl;
      entries := Mdcore.Pairlist.full_entry_count pl;
      row_start := Array.make n 0;
      let acc = ref 0 in
      Array.iteri
        (fun i row ->
          !row_start.(i) <- !acc;
          acc := !acc + Array.length row)
        !rows;
      (* Four indices per float4 texel. *)
      let idx_texels = max 1 ((!entries + 3) / 4) in
      let packed = Array.make idx_texels Vec4f.zero in
      let lane = Array.make 4 0.0 in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun k j ->
              let e = !row_start.(i) + k in
              lane.(e land 3) <- float_of_int j;
              if e land 3 = 3 || e = !entries - 1 then begin
                packed.(e lsr 2) <-
                  Vec4f.make lane.(0) lane.(1) lane.(2) lane.(3);
                Array.fill lane 0 4 0.0
              end)
            row)
        !rows;
      let it = Machine.create_texture m ~name:"neighbour-indices"
          ~texels:idx_texels in
      let rt = Machine.create_texture m ~name:"neighbour-rows" ~texels:n in
      Machine.upload m it packed;
      Machine.upload m rt
        (Array.init n (fun i ->
             Vec4f.make
               (float_of_int !row_start.(i))
               (float_of_int (Array.length !rows.(i)))
               0.0 0.0));
      idx_tex := Some it;
      row_tex := Some rt;
      list_upload_bytes := !list_upload_bytes + (16 * (idx_texels + n))
    end
  in
  let engine =
    Mdcore.Engine.make ~name:"gpu" ~compute:(fun sys ->
        incr invocations;
        let p = F32_kernel.of_system sys in
        (* CPU stages the position texture (double -> float4) through the
           system's reusable binary32 buffers; [Vec4f.make]'s rounding is
           idempotent on already-rounded singles, so the texels are
           bit-identical to staging straight from the doubles. *)
        let px, py, pz = Mdcore.System.stage_positions_f32 sys in
        for i = 0 to n - 1 do
          staging.(i) <- Vec4f.make px.{i} py.{i} pz.{i} 0.0
        done;
        charge_host_block m Kernels.ppe_stage_block ~iterations:n;
        Machine.upload m positions staging;
        let hits = ref 0 in
        (match pl with
        | None ->
          Machine.dispatch m shader ~inputs:[ positions ] ~target:accels
            ~loop_trip:n
            ~f:(fragment p n hits)
            ();
          body_iters := !body_iters + (n * n);
          pairs_total := !pairs_total + (n * n)
        | Some pl ->
          refresh_list_textures pl;
          (* Uniform loop trip: the fragments walk rows of differing
             length, but the hardware schedules warps at the mean. *)
          let lt = max 1 ((!entries + n - 1) / n) in
          Machine.dispatch m shader
            ~inputs:
              [ positions; Option.get !row_tex; Option.get !idx_tex ]
            ~target:accels ~loop_trip:lt
            ~f:(fragment_rows p !rows !row_start hits)
            ();
          body_iters := !body_iters + (n * lt);
          pairs_total := !pairs_total + !entries);
        hits_total := !hits_total + !hits;
        let result = Machine.readback m accels in
        for i = 0 to n - 1 do
          sys.Mdcore.System.acc_x.{i} <- Vec4f.x result.(i);
          sys.Mdcore.System.acc_y.{i} <- Vec4f.y result.(i);
          sys.Mdcore.System.acc_z.{i} <- Vec4f.z result.(i)
        done;
        charge_host_block m Kernels.ppe_stage_block ~iterations:n;
        match pe_strategy with
        | Readback_w ->
          (* CPU sums the PE lane in linear time — "sum them in linear
             time on the CPU, which is well suited to this scalar
             task". *)
          let pe2 = ref 0.0 in
          for i = 0 to n - 1 do
            pe2 := !pe2 +. Vec4f.w result.(i)
          done;
          0.5 *. !pe2
        | Gpu_reduction ->
          (* Multi-pass on-GPU reduction of the PE lane, consuming the
             device-resident output: each level resolves the previous
             target into a texture (ping-pong) and dispatches the 8-to-1
             sum; finally a single texel crosses the bus. *)
          let rec reduce chain prev_rt values =
            match chain with
            | [] -> values.(0)
            | (tex, rt) :: rest ->
              Machine.resolve_to_texture m prev_rt tex;
              let reduced = reduce_level (Array.length values) values in
              Machine.dispatch m (Option.get reduce_shader) ~inputs:[ tex ]
                ~target:rt
                ~f:(fun _ i -> Vec4f.make reduced.(i) 0.0 0.0 0.0)
                ();
              reduce rest rt reduced
          in
          let final =
            reduce reduction_chain accels (Array.map Vec4f.w result)
          in
          (* one-texel readback of the final sum *)
          Machine.cpu_charge m
            ~seconds:
              (Sim_util.Units.transfer_seconds ~bytes:16
                 ~bandwidth:machine.Gpustream.Config.readback_bandwidth
                 ~latency:machine.Gpustream.Config.transfer_latency);
          F32.mul 0.5 final)
  in
  let records = Mdcore.Verlet.run s ~engine ~steps ~max_step_retries:(Mdfault.step_retries ()) () in
  charge_host_block m Kernels.opteron_integration ~iterations:(steps * n);
  let ledger = Machine.ledger m in
  let setup = Ledger.get ledger Setup in
  (* Port-level virtual PMU summary (feeds derived gpu/mflops and
     gpu/pcie_bandwidth): the candidate block runs n times per fragment,
     n fragments per invocation. *)
  if Mdprof.enabled () then begin
    let c ?unit_ name = Mdprof.counter ?unit_ ~clock:Mdprof.Virtual name in
    let flops = !body_iters * Isa.Block.flops Kernels.gpu_candidate in
    Mdprof.add_f (c ~unit_:"s" "gpu/virtual_seconds") (Machine.time m -. setup);
    Mdprof.add (c ~unit_:"flops" "gpu/flops") flops;
    if Option.is_some pl then
      Mdprof.add
        (c ~unit_:"bytes" "gpu/pairlist_upload_bytes")
        !list_upload_bytes
  end;
  { Run_result.device =
      (if Option.is_some pl then "NVIDIA GPU (7900GTX class, pairlist)"
       else "NVIDIA GPU (7900GTX class)");
    n_atoms = n;
    steps;
    (* Fig. 7 excludes the one-time startup: "it occurs only once [and]
       will be quickly amortized ... so it is not included". *)
    seconds = Machine.time m -. setup;
    records;
    breakdown =
      List.map
        (fun cat -> (Ledger.category_name cat, Ledger.get ledger cat))
        Ledger.all_categories;
    pairs_evaluated = !pairs_total;
    interactions = !hits_total;
    final_system = Some s }

let seconds_for ?steps ?machine ?force_path ~n () =
  let system = Mdcore.Init.build ~n () in
  (run ?steps ?machine ?force_path system).Run_result.seconds

let setup_seconds result = Run_result.breakdown_get result "setup"
