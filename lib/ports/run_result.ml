type t = {
  device : string;
  n_atoms : int;
  steps : int;
  seconds : float;
  records : Mdcore.Verlet.step_record list;
  breakdown : (string * float) list;
  pairs_evaluated : int;
  interactions : int;
  final_system : Mdcore.System.t option;
}

let final_total_energy t =
  match List.rev t.records with
  | [] -> invalid_arg "Run_result.final_total_energy: no records"
  | last :: _ -> last.Mdcore.Verlet.total_energy

let energy_drift t =
  match t.records with
  | [] -> invalid_arg "Run_result.energy_drift: no records"
  | first :: _ ->
    let e0 = first.Mdcore.Verlet.total_energy in
    let e1 = final_total_energy t in
    if e0 = 0.0 then abs_float (e1 -. e0) else abs_float ((e1 -. e0) /. e0)

let breakdown_get t name =
  match List.assoc_opt name t.breakdown with Some v -> v | None -> 0.0

let pp_summary fmt t =
  Format.fprintf fmt "%s: %d atoms, %d steps, %.4f s (%d pairs, %d hits)"
    t.device t.n_atoms t.steps t.seconds t.pairs_evaluated t.interactions
