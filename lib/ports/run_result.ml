type t = {
  device : string;
  n_atoms : int;
  steps : int;
  seconds : float;
  records : Mdcore.Verlet.step_record list;
  breakdown : (string * float) list;
  pairs_evaluated : int;
  interactions : int;
  final_system : Mdcore.System.t option;
}

let final_total_energy t =
  match List.rev t.records with
  | [] -> invalid_arg "Run_result.final_total_energy: no records"
  | last :: _ -> last.Mdcore.Verlet.total_energy

let energy_drift t =
  match t.records with
  | [] -> invalid_arg "Run_result.energy_drift: no records"
  | first :: _ ->
    let e0 = first.Mdcore.Verlet.total_energy in
    let e1 = final_total_energy t in
    if e0 = 0.0 then abs_float (e1 -. e0) else abs_float ((e1 -. e0) /. e0)

let breakdown_get t name =
  match List.assoc_opt name t.breakdown with Some v -> v | None -> 0.0

let pp_summary fmt t =
  Format.fprintf fmt "%s: %d atoms, %d steps, %.4f s (%d pairs, %d hits)"
    t.device t.n_atoms t.steps t.seconds t.pairs_evaluated t.interactions

(* The human-readable run report and the machine-readable metrics JSON
   live here — not in bin/mdsim — so every producer of a run (the CLI,
   the serve daemon's per-job report files) emits byte-identical
   artifacts for the same result.  Byte equality of these renderings is
   the serve convergence acceptance bar, so change them carefully. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_summary t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Format.asprintf "%a" pp_summary t);
  Buffer.add_char buf '\n';
  List.iter
    (fun (k, v) ->
      if v > 0.0 then
        Buffer.add_string buf
          (Printf.sprintf "  %-10s %s\n" k (Sim_util.Table.fmt_seconds v)))
    t.breakdown;
  (match (List.rev t.records, t.records) with
  | last :: _, first :: _ ->
    Buffer.add_string buf
      (Printf.sprintf
         "  energy: initial %.4f, final %.4f (drift %.2e); final T %.4f\n"
         first.Mdcore.Verlet.total_energy last.Mdcore.Verlet.total_energy
         (energy_drift t) last.Mdcore.Verlet.temperature)
  | _ -> ());
  Buffer.add_string buf
    (Printf.sprintf "  virtual runtime: %s\n"
       (Sim_util.Table.fmt_seconds t.seconds));
  Buffer.contents buf

let metrics_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n\"device\":\"%s\",\"atoms\":%d,\"steps\":%d,\"virtual_seconds\":%.17g,\n"
       (json_escape t.device) t.n_atoms t.steps t.seconds);
  Buffer.add_string buf "\"breakdown\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%.17g" (json_escape k) v))
    t.breakdown;
  Buffer.add_string buf
    (Printf.sprintf
       "},\n\"pairs_evaluated\":%d,\"interactions\":%d,\"energy_drift\":%.17g\n}\n"
       t.pairs_evaluated t.interactions (energy_drift t));
  Buffer.contents buf
