(** The Cell Broadband Engine port of the MD kernel.

    Structure mirrors the paper's: the PPE runs the application (staging,
    integration, energy sums) and offloads the acceleration computation —
    and only it — to SPE threads, either respawned every time step or
    launched once and signalled by mailbox (the Fig. 6 contrast).  All SPE
    math is single precision.

    The port separates the two halves of the simulation:

    - {!profile_run} executes the physics once: a binary32 gather kernel
      (the same arithmetic every ladder variant performs — the SIMD
      rewrites change the instruction schedule, not the values), recording
      per-row interaction counts and the energy trajectory;
    - {!time_with} replays machine accounting for any [config] against a
      profile: SPE thread spawns/mailboxes, local-store allocation
      (capacity-checked), DMA traffic, and per-variant pipeline cycles
      from {!Kernels} — in seconds on the {!Cellbe.Machine} ledger.

    [run] composes the two.  Fig. 5's six variants and Fig. 6's four
    launch configurations each reuse one 2048-atom profile. *)

type launch = Respawn | Persistent

type precision =
  | Single  (** the paper's port: binary32 throughout *)
  | Double  (** the Section 6 "what if": the SPE's unpipelined 2-wide DP
                unit, with doubled DMA traffic *)

type config = {
  variant : Cell_variant.t;
      (** ignored when [precision = Double]: the DP port corresponds to
          the fully-optimized structure (there is no DP estimate ladder) *)
  n_spes : int;
  launch : launch;
  precision : precision;
  machine : Cellbe.Config.t;
}

val default_config : config
(** All optimizations ([Simd_acceleration]), 8 SPEs, persistent launch,
    single precision. *)

type profile

val profile_run : ?steps:int -> ?precision:precision ->
  ?force_path:Force_path.t -> Mdcore.System.t -> profile
(** Run the physics on a copy of the system (default 10 steps, single
    precision).

    [force_path] defaults to the pairlist when the box admits it: the
    gather runs over the stored neighbour rows (bit-identical to the N²
    gather in either precision) and the profile carries per-invocation
    tile data — row entry counts and rebuild scans — that {!time_with}
    replays as per-SPE neighbour-row DMA tiles and SPE-side rebuild
    scans.  Brute N² otherwise (and for boxes below the min-image
    bound). *)

val profile_precision : profile -> precision

val profile_records : profile -> Mdcore.Verlet.step_record list
val profile_hits : profile -> int
(** Total in-cutoff interactions across all force evaluations. *)

val time_with : ?j_chunk:int -> profile -> config -> Run_result.t
(** [j_chunk] (default 8192 atoms) is the local-store staging tile; when
    the system exceeds it the SPEs stream the j-atoms in multiple DMA
    rounds through one reused buffer.  Exposed so tests can force the
    tiled path on small systems.  For a pairlist profile the SPEs
    fetch their neighbour-row index tiles and either gather the
    coordinate streams per entry (sparse tiles) or stream the whole
    position arrays (dense tiles, the usual liquid-density case); the
    per-pair loop is charged per list entry.  On rebuild steps each SPE
    scans its share of the candidate pairs against the whole staged
    arrays and writes its rebuilt tile back — the build parallelizes
    across the SPEs rather than serializing on the in-order PPE. *)

val run : ?steps:int -> ?config:config -> ?force_path:Force_path.t ->
  Mdcore.System.t -> Run_result.t

val run_ppe_only : ?steps:int -> ?machine:Cellbe.Config.t ->
  Mdcore.System.t -> Run_result.t
(** The Table 1 "Cell, PPE only" row: the same single-precision kernel
    executed entirely on the in-order PPE, no SPE offload. *)

val time_ppe_only : ?machine:Cellbe.Config.t -> profile -> Run_result.t
(** PPE-only timing against an existing profile (avoids re-running the
    physics when the SPE configurations already profiled it). *)

val accel_seconds : Run_result.t -> float
(** Time attributed to the acceleration computation (SPE compute + DMA
    + PPE-only compute), the quantity plotted in Fig. 5. *)

val launch_overhead_seconds : Run_result.t -> float
(** Time attributed to SPE thread creation plus mailbox signalling, the
    quantity Fig. 6 plots against the total. *)

val apply_f32_engine : Mdcore.System.t -> Mdcore.Engine.t
(** The bare binary32 force engine (no timing) — used by tests to compare
    single-precision results against the double-precision reference. *)
