(** The GPU port of the MD kernel (Section 5.2 of the paper).

    Faithful to the paper's streaming formulation:

    - one input texture holds all atom positions, one render target
      receives the new accelerations — "one input array comprising the
      positions, and one output array comprising the new accelerations";
    - the shader runs once per atom and scans the whole position texture
      for interacting neighbours (gather only; predicated force math);
    - each atom's PE contribution rides in the output's fourth component
      and is summed on the CPU after the readback — "we can simply store
      each atom's PE contribution in the fourth component, and when we
      read back the accelerations these values are retrieved for free";
    - positions are re-uploaded and accelerations read back across the
      bus every time step; the one-time JIT compilation cost is reported
      separately (the paper excludes it from Fig. 7).

    The host CPU is the same 2.2 GHz Opteron as the reference port; its
    serial work (staging, PE sum, integration) is charged with the
    {!Isa.Opteron_pipe} model. *)

type pe_strategy =
  | Readback_w
      (** the paper's choice: each atom's PE rides in the output's fourth
          component and is summed on the CPU after the (already required)
          acceleration readback — "these values are retrieved for free" *)
  | Gpu_reduction
      (** the alternative the paper rejects: "introduce one or more
          additional passes to accumulate each atom's contribution ...
          called a reduction operation.  However, this method introduces
          significant overheads."  Implemented as 8-to-1 render-to-texture
          passes plus a one-texel readback, so the rejection is
          quantified rather than asserted. *)

val run : ?steps:int -> ?machine:Gpustream.Config.t ->
  ?pe_strategy:pe_strategy -> ?force_path:Force_path.t ->
  Mdcore.System.t -> Run_result.t
(** The breakdown carries the GPU ledger categories (setup / upload /
    readback / dispatch / shader / cpu); [seconds] {e excludes} the
    one-time setup, as Fig. 7 does.  Default strategy: [Readback_w].

    [force_path] defaults to the pairlist when the box admits it: the
    shader walks packed neighbour indices fetched from an extra texture
    (four per float4 texel, plus a per-row descriptor texture), and
    those textures cross the PCIe bus {e only on rebuild steps} —
    positions still upload every step.  The CPU is charged for the
    rebuild's candidate scan.  Brute N² otherwise. *)

val seconds_for : ?steps:int -> ?machine:Gpustream.Config.t ->
  ?force_path:Force_path.t -> n:int -> unit -> float
(** Build a default system of [n] atoms and return the Fig. 7 runtime. *)

val setup_seconds : Run_result.t -> float
(** The excluded one-time startup cost, for reporting. *)
