(** Common shape of a port's simulation outcome: the physics trajectory
    plus the virtual runtime and its decomposition.  Every experiment in
    the harness consumes this type, so ports stay comparable. *)

type t = {
  device : string;
  n_atoms : int;
  steps : int;
  seconds : float;           (** virtual wall-clock for the whole run *)
  records : Mdcore.Verlet.step_record list;
      (** per-step energies (step 0 = initial state) *)
  breakdown : (string * float) list;
      (** seconds by ledger category; sums to [seconds] for devices with a
          complete ledger *)
  pairs_evaluated : int;     (** candidate pairs examined, total *)
  interactions : int;        (** pairs inside the cutoff, total *)
  final_system : Mdcore.System.t option;
      (** the port's working copy after the last step — the state a
          checkpointed runner persists and carries into the next
          segment.  [None] only for synthesized results. *)
}

val final_total_energy : t -> float
(** Total energy at the last step; raises on an empty record list. *)

val energy_drift : t -> float
(** |E_final − E_initial| / |E_initial| over the run — the integration
    quality metric used by conservation tests. *)

val breakdown_get : t -> string -> float
(** 0.0 when the category is absent. *)

val pp_summary : Format.formatter -> t -> unit

val render_summary : t -> string
(** The canonical human-readable run report (summary line, non-zero
    breakdown categories, energy line, virtual runtime) — the exact
    bytes `mdsim run` prints and the serve daemon writes per job, so
    the two are [cmp]-comparable. *)

val metrics_json : t -> string
(** The canonical machine-readable metrics document `--metrics` writes
    — deterministic ([%.17g] floats, fixed field order) and shared with
    the serve daemon's per-job [metrics.json]. *)
