(** The Cray MTA-2 port of the MD kernel (Section 5.3 of the paper).

    Double precision throughout (the only port that is).  The paper's
    compiler story is modelled explicitly:

    - the hot acceleration loop (step 2) {e carries a reduction
      dependency}, so the MTA compiler refuses to parallelize it as
      written — that is the [Partially_multithreaded] mode, where the
      O(N²) loop runs on a single stream and pays the full uniform memory
      latency on every reference;
    - in [Fully_multithreaded] mode the reduction has been moved into the
      loop body (a full/empty-bit accumulate) and the loop carries the
      no-dependence pragma, so it spreads across all 128 streams.

    Every other loop of the kernel is auto-parallelized in both modes,
    "without any code modification". *)

type mode = Fully_multithreaded | Partially_multithreaded

val mode_name : mode -> string

val run : ?steps:int -> ?mode:mode -> ?machine:Mta.Config.t ->
  ?force_path:Force_path.t -> Mdcore.System.t -> Run_result.t
(** Default mode: fully multithreaded; default machine: 1-processor
    MTA-2.

    [force_path] defaults to the pairlist: the streams pull iterations
    from the stored neighbour rows instead of the N² sweep (physics via
    {!Mdcore.Pairlist.compute_full_stats}, bit-identical to the gather
    reference), and rebuild steps stream the build's candidate scan as
    an extra charged region.  Boxes below the min-image bound fall back
    to the brute engine. *)

val seconds_for : ?steps:int -> ?mode:mode -> ?machine:Mta.Config.t ->
  ?force_path:Force_path.t -> n:int -> unit -> float
