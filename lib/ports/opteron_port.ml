module Hierarchy = Memsim.Hierarchy
module Layout = Memsim.Layout
module Pipe = Isa.Opteron_pipe

type config = {
  clock : Sim_util.Units.clock;
  hierarchy : Memsim.Hierarchy.config;
  sample_rows : int;
}

let default_config =
  { clock = Sim_util.Units.clock ~hz:2.2e9 ~label:"Opteron 2.2 GHz";
    hierarchy = Hierarchy.opteron_2_2ghz;
    sample_rows = 4 }

(* Address-space image of the nine SoA arrays, as a C allocator would lay
   them out. *)
type mem_model = {
  hier : Hierarchy.t;
  tlb : Memsim.Tlb.t;
  l1_hit : int;
  n : int;
  sample_rows : int;
  pos_bases : int array;  (* x, y, z *)
  all_bases : int array;  (* all nine arrays, for the integration sweep *)
}

let make_mem_model cfg ~n =
  let layout = Layout.create () in
  let all_bases = Array.init 9 (fun _ -> Layout.alloc_float_array layout ~n) in
  { hier = Hierarchy.create cfg.hierarchy;
    tlb = Memsim.Tlb.create () (* K8 L1 DTLB: 32 x 4 KB *);
    l1_hit = cfg.hierarchy.Hierarchy.l1_hit_cycles;
    n;
    sample_rows = max 1 cfg.sample_rows;
    pos_bases = Array.sub all_bases 0 3;
    all_bases }

(* One i-row of the force loop touches every element of the three position
   arrays in order.  Returns the stall cycles in excess of an L1 hit. *)
let replay_row mm =
  let excess = ref 0 in
  for j = 0 to mm.n - 1 do
    Array.iter
      (fun base ->
        let addr = base + (8 * j) in
        excess :=
          !excess + Hierarchy.access mm.hier addr - mm.l1_hit
          + Memsim.Tlb.access mm.tlb addr)
      mm.pos_bases
  done;
  !excess

(* Average memory-excess cycles per candidate pair for the current cache
   state: replay [sample_rows] full j-sweeps and divide.  The sweep is the
   same for every i, so the sample is exact up to LRU warm-up, which the
   persistent hierarchy state amortizes away. *)
let pair_excess_cycles mm =
  let total = ref 0 in
  for _ = 1 to mm.sample_rows do
    total := !total + replay_row mm
  done;
  float_of_int !total /. float_of_int (mm.sample_rows * mm.n)

(* The integration step walks all nine arrays linearly (read + write). *)
let integration_excess_cycles mm =
  let excess = ref 0 in
  Array.iter
    (fun base ->
      for i = 0 to mm.n - 1 do
        let addr = base + (8 * i) in
        excess :=
          !excess + Hierarchy.access mm.hier addr - mm.l1_hit
          + Memsim.Tlb.access mm.tlb addr
      done)
    mm.all_bases;
  float_of_int !excess

let per_iter block =
  Pipe.per_iteration_cycles block ~overlap:Kernels.opteron_overlap

(* Publish the run's virtual PMU counters: static per-block op counts
   scaled by the dynamic iteration counts, plus the bytes the memory
   model touches (3 position doubles per candidate pair; all nine SoA
   arrays per atom per integration step). *)
let publish_prof ~pairs ~hits ~steps ~n ~seconds =
  if Mdprof.enabled () then begin
    let c ?unit_ name = Mdprof.counter ?unit_ ~clock:Mdprof.Virtual name in
    let weighted =
      [ (Kernels.opteron_base, pairs);
        (Kernels.opteron_hit, hits);
        (Kernels.opteron_row_overhead, steps * n);
        (Kernels.opteron_integration, steps * n) ]
    in
    let total f =
      List.fold_left (fun acc (b, k) -> acc + (f b * k)) 0 weighted
    in
    Mdprof.add_f (c ~unit_:"s" "opteron/virtual_seconds") seconds;
    Mdprof.add (c ~unit_:"flops" "opteron/flops") (total Isa.Block.flops);
    Mdprof.add
      (c ~unit_:"bytes" "opteron/mem_bytes")
      ((24 * pairs) + (72 * n * steps));
    List.iter
      (fun op ->
        let k = total (fun b -> Isa.Block.count b op) in
        if k > 0 then
          Mdprof.add (c ~unit_:"ops" ("opteron/ops/" ^ Isa.Op.to_string op)) k)
      Isa.Op.all
  end

let run_brute ?(steps = 10) ?(config = default_config) system =
  let s = Mdcore.System.copy system in
  let n = s.Mdcore.System.n in
  let mm = make_mem_model config ~n in
  let base_cyc = per_iter Kernels.opteron_base in
  let hit_cyc = per_iter Kernels.opteron_hit in
  let row_cyc = per_iter Kernels.opteron_row_overhead in
  let integ_cyc = per_iter Kernels.opteron_integration in
  let compute_cycles = ref 0.0 in
  let memory_cycles = ref 0.0 in
  let pairs_total = ref 0 and hits_total = ref 0 in
  let pairs_per_step = n * (n - 1) in
  let engine =
    Mdcore.Engine.make ~name:"opteron" ~compute:(fun sys ->
        let pe, hits = Mdcore.Forces.compute_gather_stats sys in
        pairs_total := !pairs_total + pairs_per_step;
        hits_total := !hits_total + hits;
        compute_cycles :=
          !compute_cycles
          +. (float_of_int pairs_per_step *. base_cyc)
          +. (float_of_int hits *. hit_cyc)
          +. (float_of_int n *. row_cyc);
        memory_cycles :=
          !memory_cycles +. (pair_excess_cycles mm *. float_of_int pairs_per_step);
        pe)
  in
  let records = Mdcore.Verlet.run s ~engine ~steps ~max_step_retries:(Mdfault.step_retries ()) () in
  (* Integration work: once per step, outside the force engine. *)
  compute_cycles :=
    !compute_cycles +. (float_of_int (steps * n) *. integ_cyc);
  for _ = 1 to steps do
    memory_cycles := !memory_cycles +. integration_excess_cycles mm
  done;
  let to_s c = Sim_util.Units.seconds_of_cycles config.clock c in
  publish_prof ~pairs:!pairs_total ~hits:!hits_total ~steps ~n
    ~seconds:(to_s (!compute_cycles +. !memory_cycles));
  { Run_result.device = "Opteron 2.2 GHz";
    n_atoms = n;
    steps;
    seconds = to_s (!compute_cycles +. !memory_cycles);
    records;
    breakdown =
      [ ("compute", to_s !compute_cycles); ("memory", to_s !memory_cycles) ];
    pairs_evaluated = !pairs_total;
    interactions = !hits_total;
    final_system = Some s }

let run_with_pairlist ?(steps = 10) ?(config = default_config) ?skin system =
  let s = Mdcore.System.copy system in
  let n = s.Mdcore.System.n in
  let mm = make_mem_model config ~n in
  let pl = Mdcore.Pairlist.create ?skin s in
  let pl_engine = Mdcore.Pairlist.engine pl in
  let base_cyc = per_iter Kernels.opteron_base in
  let hit_cyc = per_iter Kernels.opteron_hit in
  let row_cyc = per_iter Kernels.opteron_row_overhead in
  let integ_cyc = per_iter Kernels.opteron_integration in
  let compute_cycles = ref 0.0 and memory_cycles = ref 0.0 in
  let pairs_total = ref 0 and hits_total = ref 0 in
  let rebuild_pairs = ref 0 in
  let rebuilds_seen = ref 0 in
  let engine =
    Mdcore.Engine.make ~name:"opteron-pairlist" ~compute:(fun sys ->
        let pe = pl_engine.Mdcore.Engine.compute sys in
        let entries = Mdcore.Pairlist.neighbour_count pl in
        let hits = Mdcore.Pairlist.last_interaction_count pl in
        let excess = pair_excess_cycles mm in
        (* Rebuild steps pay the build's candidate-distance scan —
           n(n-1)/2 for brute builds, the 27-cell stencil population
           when the cell-binned build is active. *)
        if Mdcore.Pairlist.rebuild_count pl > !rebuilds_seen then begin
          rebuilds_seen := Mdcore.Pairlist.rebuild_count pl;
          let scan_pairs = Mdcore.Pairlist.last_build_scanned pl in
          compute_cycles :=
            !compute_cycles +. (float_of_int scan_pairs *. base_cyc);
          memory_cycles :=
            !memory_cycles +. (excess *. float_of_int scan_pairs);
          pairs_total := !pairs_total + scan_pairs;
          rebuild_pairs := !rebuild_pairs + scan_pairs
        end;
        pairs_total := !pairs_total + entries;
        hits_total := !hits_total + hits;
        compute_cycles :=
          !compute_cycles
          +. (float_of_int entries *. base_cyc)
          +. (float_of_int hits *. hit_cyc)
          +. (float_of_int n *. row_cyc);
        memory_cycles := !memory_cycles +. (excess *. float_of_int entries);
        pe)
  in
  let records = Mdcore.Verlet.run s ~engine ~steps ~max_step_retries:(Mdfault.step_retries ()) () in
  compute_cycles := !compute_cycles +. (float_of_int (steps * n) *. integ_cyc);
  for _ = 1 to steps do
    memory_cycles := !memory_cycles +. integration_excess_cycles mm
  done;
  let to_s c = Sim_util.Units.seconds_of_cycles config.clock c in
  publish_prof ~pairs:!pairs_total ~hits:!hits_total ~steps ~n
    ~seconds:(to_s (!compute_cycles +. !memory_cycles));
  if Mdprof.enabled () then
    Mdprof.add
      (Mdprof.counter ~unit_:"pairs" ~clock:Mdprof.Virtual
         "opteron/pairlist_rebuild_pairs")
      !rebuild_pairs;
  { Run_result.device = "Opteron 2.2 GHz (pairlist)";
    n_atoms = n;
    steps;
    seconds = to_s (!compute_cycles +. !memory_cycles);
    records;
    breakdown =
      [ ("compute", to_s !compute_cycles); ("memory", to_s !memory_cycles) ];
    pairs_evaluated = !pairs_total;
    interactions = !hits_total;
    final_system = Some s }

let run ?steps ?config ?(force_path = Force_path.default) system =
  match Force_path.resolve force_path system with
  | None -> run_brute ?steps ?config system
  | Some skin -> run_with_pairlist ?steps ?config ~skin system

(* Forces the list engine regardless of box admissibility (raises on a
   box below the min-image bound) — the harness speedup ablation. *)
let run_pairlist ?steps ?config ?skin system =
  run_with_pairlist ?steps ?config ?skin system

let seconds_for ?steps ?config ?force_path ~n () =
  let system = Mdcore.Init.build ~n () in
  (run ?steps ?config ?force_path system).Run_result.seconds

let memory_excess_cycles_per_pair ?(config = default_config) ~n () =
  let mm = make_mem_model config ~n in
  (* Warm sweep, then measure. *)
  let _ = replay_row mm in
  pair_excess_cycles mm
