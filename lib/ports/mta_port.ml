module Machine = Mta.Machine
module Ledger = Mta.Ledger
module Loop = Mta.Loop

type mode = Fully_multithreaded | Partially_multithreaded

let mode_name = function
  | Fully_multithreaded -> "fully multithreaded"
  | Partially_multithreaded -> "partially multithreaded"

let pair_loop mode =
  Loop.make ~name:"step2-acceleration" ~body:Kernels.mta_pair_body
    ~carries_dependency:true
    ~pragma_no_dependence:(mode = Fully_multithreaded)
    ()

let hit_loop mode =
  Loop.make ~name:"step2-interaction" ~body:Kernels.mta_hit_body
    ~carries_dependency:true
    ~pragma_no_dependence:(mode = Fully_multithreaded)
    ()

let integration_loop =
  (* "The rest of the kernel is parallelized by the MTA compiler without
     any code modification." *)
  Loop.make ~name:"integration" ~body:Kernels.mta_integration_body ()

let run ?(steps = 10) ?(mode = Fully_multithreaded)
    ?(machine = Mta.Config.mta2 ()) ?(force_path = Force_path.default) system =
  let s = Mdcore.System.copy system in
  let n = s.Mdcore.System.n in
  let m = Machine.create machine in
  let pairs_total = ref 0 and hits_total = ref 0 in
  let invocations = ref 0 in
  let pl =
    match Force_path.resolve force_path s with
    | None -> None
    | Some skin -> Some (Mdcore.Pairlist.create ~skin s)
  in
  let rebuild_pairs = ref 0 in
  let engine =
    Mdcore.Engine.make ~name:"mta" ~compute:(fun sys ->
        incr invocations;
        (* With the pairlist, the iteration space each stream pulls from
           is the stored neighbour rows, not the full N² sweep; rebuild
           steps stream the build's candidate scan first. *)
        let pairs =
          match pl with
          | None -> n * (n - 1)
          | Some pl ->
            if Mdcore.Pairlist.refresh pl then begin
              let scanned = Mdcore.Pairlist.last_build_scanned pl in
              Machine.charged_region m ~loop:(pair_loop mode) ~n:scanned
                ~f:(fun () -> ());
              rebuild_pairs := !rebuild_pairs + scanned;
              pairs_total := !pairs_total + scanned
            end;
            Mdcore.Pairlist.full_entry_count pl
        in
        (* In the fully multithreaded version the PE reduction lives
           inside the loop body as a full/empty-bit accumulate; each
           interaction performs one synchronized update. *)
        let pe_cell = Mta.Sync_cell.create_full m 0.0 in
        let pe, hits =
          Machine.charged_region m ~loop:(pair_loop mode) ~n:pairs
            ~f:(fun () ->
              let pe, hits =
                match pl with
                | None -> Mdcore.Forces.compute_gather_stats sys
                | Some pl -> Mdcore.Pairlist.compute_full_stats pl sys
              in
              if mode = Fully_multithreaded then
                for _ = 1 to hits do
                  ignore (Mta.Sync_cell.fetch_add pe_cell 1.0)
                done;
              (pe, hits))
        in
        Machine.charged_region m ~loop:(hit_loop mode) ~n:hits
          ~f:(fun () -> ());
        pairs_total := !pairs_total + pairs;
        hits_total := !hits_total + hits;
        pe)
  in
  let records = Mdcore.Verlet.run s ~engine ~steps ~max_step_retries:(Mdfault.step_retries ()) () in
  Machine.charged_region m ~loop:integration_loop ~n:(steps * n)
    ~f:(fun () -> ());
  let ledger = Machine.ledger m in
  (* Port-level virtual PMU summary (feeds derived mta/mflops). *)
  if Mdprof.enabled () then begin
    let c ?unit_ name = Mdprof.counter ?unit_ ~clock:Mdprof.Virtual name in
    let flops =
      (!pairs_total * Isa.Block.flops Kernels.mta_pair_body)
      + (!hits_total * Isa.Block.flops Kernels.mta_hit_body)
      + (steps * n * Isa.Block.flops Kernels.mta_integration_body)
    in
    Mdprof.add_f (c ~unit_:"s" "mta/virtual_seconds") (Machine.time m);
    Mdprof.add (c ~unit_:"flops" "mta/flops") flops;
    if Option.is_some pl then
      Mdprof.add
        (c ~unit_:"pairs" "mta/pairlist_rebuild_pairs")
        !rebuild_pairs
  end;
  { Run_result.device =
      Printf.sprintf "Cray MTA-2 (%s%s)" (mode_name mode)
        (if Option.is_some pl then ", pairlist" else "");
    n_atoms = n;
    steps;
    seconds = Machine.time m;
    records;
    breakdown =
      List.map
        (fun cat -> (Ledger.category_name cat, Ledger.get ledger cat))
        Ledger.all_categories;
    pairs_evaluated = !pairs_total;
    interactions = !hits_total;
    final_system = Some s }

let seconds_for ?steps ?mode ?machine ?force_path ~n () =
  let system = Mdcore.Init.build ~n () in
  (run ?steps ?mode ?machine ?force_path system).Run_result.seconds
