(** Which force engine a port run should use.

    Every port accepts a [?force_path] argument defaulting to
    {!default}: the skin-based Verlet pairlist with the conventional
    0.4σ skin.  Small boxes (below the min-image bound for
    [cutoff+skin]) silently fall back to the brute O(N²) engine, so
    tiny fixtures and the paper-scale N² figures are unaffected by the
    default. *)

type t = Brute | Pairlist of { skin : float }

val default : t
(** [Pairlist {skin = Mdcore.Pairlist.default_skin}]. *)

val brute : t

val pairlist : ?skin:float -> unit -> t

val resolve : t -> Mdcore.System.t -> float option
(** [Some skin] when the run should build a pairlist with that skin,
    [None] for the brute engine (either requested, or the pairlist is
    inadmissible for this box).  Raises [Invalid_argument] on a NaN,
    infinite or nonpositive skin. *)

val describe : t -> string
