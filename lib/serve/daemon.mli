(** Unix-domain socket daemon over {!Engine}.

    One cooperative loop alternates one accepted request with one engine
    tick; SIGTERM/SIGINT request a drain that lands on a durable segment
    boundary (checkpoints flushed, [drained] ledger records appended)
    before a clean exit. *)

type config = {
  d_socket : string;
  d_engine : Engine.config;
}

val handle_request : Engine.t -> string -> string
(** Parse one request line and run it; always returns a reply line.
    Exposed for tests driving an engine without a socket. *)

val serve : config -> (unit, string) result
(** Run the daemon until drained ([Ok]) or startup fails ([Error]:
    locked serve dir, live socket, unreadable ledger). *)
