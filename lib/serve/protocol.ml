(* The serve wire protocol: one JSON request per connection, one JSON
   reply, over a Unix-domain stream socket.

     {"op":"ping"}
     {"op":"submit","id":"eq-1","tenant":"alice","atoms":256,...}
     {"op":"status"}            {"op":"status","job":"eq-1"}
     {"op":"cancel","job":"eq-1"}
     {"op":"tail","job":"eq-1","limit":20}
     {"op":"drain"}

   Submit carries the jobspec fields at top level (same names as the
   ledger's [spec] object); absent fields take the submit defaults.
   Replies are `{"ok":true,...}` or `{"ok":false,"error":"..."}`. *)

module Minijson = Sim_util.Minijson

type request =
  | Ping
  | Submit of Ledger.jobspec
  | Status of string option
  | Cancel of string
  | Tail of string * int
  | Drain

let jstr_of j name = Option.bind (Minijson.member name j) Minijson.to_string

let jint_of j name =
  match Option.bind (Minijson.member name j) Minijson.to_float with
  | Some f -> Some (int_of_float f)
  | None -> None

let parse_request line =
  match Minijson.parse line with
  | exception Minijson.Parse_error msg -> Error ("bad request: " ^ msg)
  | j -> (
    match jstr_of j "op" with
    | Some "ping" -> Ok Ping
    | Some "submit" ->
      let id = Option.value ~default:"" (jstr_of j "id") in
      Ok (Submit (Ledger.spec_of_json ~id j))
    | Some "status" -> Ok (Status (jstr_of j "job"))
    | Some "cancel" -> (
      match jstr_of j "job" with
      | Some job -> Ok (Cancel job)
      | None -> Error "cancel needs a \"job\" field")
    | Some "tail" ->
      Ok
        (Tail
           ( Option.value ~default:"" (jstr_of j "job"),
             Option.value ~default:20 (jint_of j "limit") ))
    | Some "drain" -> Ok Drain
    | Some other -> Error (Printf.sprintf "unknown op %S" other)
    | None -> Error "request without \"op\"")

let ok_reply fields =
  match fields with
  | "" -> "{\"ok\":true}"
  | f -> Printf.sprintf "{\"ok\":true,%s}" f

let error_reply msg =
  Printf.sprintf "{\"ok\":false,\"error\":\"%s\"}" (Mdobs.json_escape msg)

(* --- client side --- *)

(* A daemon that is starting up, restarting, or momentarily saturated
   shows up as ENOENT (socket not bound yet), ECONNREFUSED (bound but
   not accepting), or ECONNRESET; anything else (EACCES, ENOTSOCK, ...)
   is a real configuration error and retrying would only hide it. *)
let transient = function
  | Unix.ENOENT | Unix.ECONNREFUSED | Unix.ECONNRESET -> true
  | _ -> false

let connect_with_retry ~retries ~timeout socket =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let backoff = 0.05 *. (2.0 ** float_of_int attempt) in
      if
        attempt >= retries
        || (not (transient e))
        || Unix.gettimeofday () +. backoff > deadline
      then
        Error
          (Printf.sprintf "cannot reach daemon at %s: %s%s" socket
             (Unix.error_message e)
             (if attempt > 0 then
                Printf.sprintf " (after %d connect attempts)" (attempt + 1)
              else ""))
      else begin
        Unix.sleepf backoff;
        go (attempt + 1)
      end
  in
  go 0

(* One request/one reply over the daemon socket.  Sends the line, half-
   closes, reads to the reply's newline (or EOF).  [retries] bounds
   exponential-backoff reconnects on transient connect failures;
   [timeout] caps the whole retry window in seconds. *)
let roundtrip ?(retries = 0) ?(timeout = 10.0) ~socket line =
  match connect_with_retry ~retries ~timeout socket with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let payload = Bytes.of_string (line ^ "\n") in
        let rec send off =
          if off < Bytes.length payload then
            send (off + Unix.write fd payload off (Bytes.length payload - off))
        in
        send 0;
        (try Unix.shutdown fd Unix.SHUTDOWN_SEND
         with Unix.Unix_error _ -> ());
        let buf = Buffer.create 256 in
        let chunk = Bytes.create 4096 in
        let rec recv () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            if not (String.contains (Buffer.contents buf) '\n') then recv ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
        in
        recv ();
        match String.index_opt (Buffer.contents buf) '\n' with
        | Some i -> Ok (String.sub (Buffer.contents buf) 0 i)
        | None -> (
          match Buffer.contents buf with
          | "" -> Error "daemon closed the connection without a reply"
          | s -> Ok s))
