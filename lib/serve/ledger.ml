(* mdsim-ledger-v1: the serve daemon's durable append-only job ledger.

   One JSON object per line, each carrying the schema tag, a
   monotonically increasing sequence number, and a CRC-32 of the record
   body so replay can tell a torn tail from silent corruption.  Every
   job state transition — submitted, segment completed, retrying,
   resumed, terminal — is appended (write + fsync) *after* the matching
   checkpoint generation is durable, so the ledger never claims progress
   the checkpoint store cannot back.  Replaying the file after a crash
   (kill -9 included) reconstructs the queue exactly: a torn final
   record is tolerated and dropped; anything else that fails its CRC is
   reported and skipped. *)

module Minijson = Sim_util.Minijson

let schema = "mdsim-ledger-v1"

type jobspec = {
  js_id : string;
  js_tenant : string;
  js_priority : int;          (* scheduler quantum: consecutive segments *)
  js_device : string;
  js_atoms : int;
  js_steps : int;
  js_seed : int;
  js_density : float;
  js_temperature : float;
  js_engine : string;         (* "default" | "pairlist" | "n2" *)
  js_skin : float;
  js_every : int;             (* checkpoint segment length, steps *)
  js_keep : int;              (* checkpoint generations kept *)
  js_faults : string option;  (* Mdfault plan spec, verbatim *)
  js_deadline : float option; (* host-seconds budget across all segments *)
  js_telemetry : bool;
  js_tel_every : int;
}

type event =
  | Submitted of jobspec
  | Resumed of { ev_job : string; ev_completed : int }
  | Segment of { ev_job : string; ev_completed : int; ev_total : int }
  | Retrying of { ev_job : string; ev_attempt : int; ev_reason : string }
  | Done of { ev_job : string; ev_status : string; ev_completed : int }
  | Cancelled of { ev_job : string; ev_completed : int }
  | Failed of { ev_job : string; ev_reason : string; ev_completed : int }
  | Degraded of { ev_job : string; ev_reason : string; ev_completed : int }
  | Drained of { ev_job : string; ev_completed : int }

(* --- encoding --- *)

let fnum = Printf.sprintf "%.17g"
let jstr s = "\"" ^ Mdobs.json_escape s ^ "\""

let spec_json js =
  Printf.sprintf
    "{\"tenant\":%s,\"priority\":%d,\"device\":%s,\"atoms\":%d,\"steps\":%d,\
     \"seed\":%d,\"density\":%s,\"temperature\":%s,\"engine\":%s,\"skin\":%s,\
     \"every\":%d,\"keep\":%d,\"faults\":%s,\"deadline\":%s,\
     \"telemetry\":%b,\"tel_every\":%d}"
    (jstr js.js_tenant) js.js_priority (jstr js.js_device) js.js_atoms
    js.js_steps js.js_seed (fnum js.js_density) (fnum js.js_temperature)
    (jstr js.js_engine) (fnum js.js_skin) js.js_every js.js_keep
    (match js.js_faults with Some s -> jstr s | None -> "null")
    (match js.js_deadline with Some d -> fnum d | None -> "null")
    js.js_telemetry js.js_tel_every

let body ~seq ev =
  let record kind job rest =
    Printf.sprintf "{\"schema\":%s,\"seq\":%d,\"event\":%s,\"job\":%s%s}"
      (jstr schema) seq (jstr kind) (jstr job) rest
  in
  match ev with
  | Submitted js ->
    record "submitted" js.js_id (Printf.sprintf ",\"spec\":%s" (spec_json js))
  | Resumed e ->
    record "resumed" e.ev_job
      (Printf.sprintf ",\"completed\":%d" e.ev_completed)
  | Segment e ->
    record "segment" e.ev_job
      (Printf.sprintf ",\"completed\":%d,\"total\":%d" e.ev_completed
         e.ev_total)
  | Retrying e ->
    record "retrying" e.ev_job
      (Printf.sprintf ",\"attempt\":%d,\"reason\":%s" e.ev_attempt
         (jstr e.ev_reason))
  | Done e ->
    record "done" e.ev_job
      (Printf.sprintf ",\"status\":%s,\"completed\":%d" (jstr e.ev_status)
         e.ev_completed)
  | Cancelled e ->
    record "cancelled" e.ev_job
      (Printf.sprintf ",\"completed\":%d" e.ev_completed)
  | Failed e ->
    record "failed" e.ev_job
      (Printf.sprintf ",\"reason\":%s,\"completed\":%d" (jstr e.ev_reason)
         e.ev_completed)
  | Degraded e ->
    record "degraded" e.ev_job
      (Printf.sprintf ",\"reason\":%s,\"completed\":%d" (jstr e.ev_reason)
         e.ev_completed)
  | Drained e ->
    record "drained" e.ev_job
      (Printf.sprintf ",\"completed\":%d" e.ev_completed)

let crc_marker = ",\"crc\":"

(* The CRC covers the record body *without* the crc field: the body's
   closing brace is replaced by [,"crc":N}].  Verification strips the
   suffix back off by finding the marker from the right, so string
   values containing the marker text cannot confuse it (the real one is
   always last). *)
let encode_line ~seq ev =
  let b = body ~seq ev in
  Printf.sprintf "%s%s%d}"
    (String.sub b 0 (String.length b - 1))
    crc_marker (Mdckpt.crc32 b)

let rfind_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i < 0 then None
    else if String.sub s i m = sub then Some i
    else go (i - 1)
  in
  if m = 0 || m > n then None else go (n - m)

(* One line -> parsed JSON, if the schema matches and the CRC holds. *)
let verify_line line =
  match rfind_sub line crc_marker with
  | None -> Error "missing crc field"
  | Some i -> (
    if String.length line = 0 || line.[String.length line - 1] <> '}' then
      Error "unterminated record"
    else
      let body = String.sub line 0 i ^ "}" in
      match Minijson.parse line with
      | exception Minijson.Parse_error msg -> Error msg
      | j -> (
        match Option.bind (Minijson.member "crc" j) Minijson.to_float with
        | None -> Error "missing crc"
        | Some crc ->
          if int_of_float crc <> Mdckpt.crc32 body then Error "crc mismatch"
          else if Option.bind (Minijson.member "schema" j) Minijson.to_string
                  <> Some schema
          then Error "foreign schema"
          else Ok j))

(* --- decoding a replayed record back into the event type --- *)

let jfield j name = Minijson.member name j

let jint j name =
  match Option.bind (jfield j name) Minijson.to_float with
  | Some f -> Some (int_of_float f)
  | None -> None

let jnum j name = Option.bind (jfield j name) Minijson.to_float
let jstr_of j name = Option.bind (jfield j name) Minijson.to_string

let jbool j name = Option.bind (jfield j name) Minijson.to_bool

let spec_of_json ~id j =
  let str name d = Option.value ~default:d (jstr_of j name) in
  let int name d = Option.value ~default:d (jint j name) in
  let num name d = Option.value ~default:d (jnum j name) in
  {
    js_id = id;
    js_tenant = str "tenant" "default";
    js_priority = int "priority" 1;
    js_device = str "device" "opteron";
    js_atoms = int "atoms" 256;
    js_steps = int "steps" 100;
    js_seed = int "seed" 42;
    js_density = num "density" 0.8;
    js_temperature = num "temperature" 1.0;
    js_engine = str "engine" "default";
    js_skin = num "skin" 0.4;
    js_every = int "every" 25;
    js_keep = int "keep" 4;
    js_faults =
      (match jfield j "faults" with
      | Some (Minijson.Str s) -> Some s
      | _ -> None);
    js_deadline =
      (match jfield j "deadline" with
      | Some (Minijson.Num f) -> Some f
      | _ -> None);
    js_telemetry = Option.value ~default:false (jbool j "telemetry");
    js_tel_every = int "tel_every" (int "every" 25);
  }

let event_of_json j =
  let job = Option.value ~default:"" (jstr_of j "job") in
  let completed = Option.value ~default:0 (jint j "completed") in
  let reason = Option.value ~default:"" (jstr_of j "reason") in
  match jstr_of j "event" with
  | Some "submitted" -> (
    match jfield j "spec" with
    | Some spec -> Ok (Submitted (spec_of_json ~id:job spec))
    | None -> Error "submitted record without spec")
  | Some "resumed" -> Ok (Resumed { ev_job = job; ev_completed = completed })
  | Some "segment" ->
    Ok
      (Segment
         {
           ev_job = job;
           ev_completed = completed;
           ev_total = Option.value ~default:0 (jint j "total");
         })
  | Some "retrying" ->
    Ok
      (Retrying
         {
           ev_job = job;
           ev_attempt = Option.value ~default:1 (jint j "attempt");
           ev_reason = reason;
         })
  | Some "done" ->
    Ok
      (Done
         {
           ev_job = job;
           ev_status = Option.value ~default:"ok" (jstr_of j "status");
           ev_completed = completed;
         })
  | Some "cancelled" ->
    Ok (Cancelled { ev_job = job; ev_completed = completed })
  | Some "failed" ->
    Ok (Failed { ev_job = job; ev_reason = reason; ev_completed = completed })
  | Some "degraded" ->
    Ok
      (Degraded { ev_job = job; ev_reason = reason; ev_completed = completed })
  | Some "drained" -> Ok (Drained { ev_job = job; ev_completed = completed })
  | Some other -> Error ("unknown event " ^ other)
  | None -> Error "record without event"

(* --- replay --- *)

type job_view = {
  v_spec : jobspec;
  v_completed : int;
  v_attempts : int;
  v_terminal : string option; (* ok|recovered|degraded|failed|cancelled *)
}

type replay = {
  r_jobs : job_view list; (* submit order *)
  r_next_seq : int;
  r_notes : string list;  (* dropped/suspect records, oldest first *)
}

let replay_string data =
  let lines = String.split_on_char '\n' data in
  (* drop the empty tail produced by a trailing newline *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let total = List.length lines in
  let jobs : (string, job_view) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let notes = ref [] in
  let next_seq = ref 0 in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match verify_line line with
      | Error msg ->
        if lineno = total then note "dropped torn final record (%s)" msg
        else note "ignored corrupt record at line %d (%s)" lineno msg
      | Ok j -> (
        (match jint j "seq" with
        | Some s when s >= !next_seq -> next_seq := s + 1
        | _ -> ());
        match event_of_json j with
        | Error msg -> note "ignored record at line %d: %s" lineno msg
        | Ok (Submitted js) ->
          if Hashtbl.mem jobs js.js_id then
            note "ignored duplicate submit for %s at line %d" js.js_id lineno
          else begin
            Hashtbl.replace jobs js.js_id
              { v_spec = js; v_completed = 0; v_attempts = 0;
                v_terminal = None };
            order := js.js_id :: !order
          end
        | Ok ev -> (
          let update id f =
            match Hashtbl.find_opt jobs id with
            | Some v -> Hashtbl.replace jobs id (f v)
            | None -> note "record for unknown job %s at line %d" id lineno
          in
          match ev with
          | Submitted _ -> ()
          | Resumed e ->
            update e.ev_job (fun v ->
                { v with v_completed = max v.v_completed e.ev_completed })
          | Segment e ->
            update e.ev_job (fun v ->
                { v with v_completed = max v.v_completed e.ev_completed })
          | Retrying e ->
            update e.ev_job (fun v ->
                { v with v_attempts = max v.v_attempts e.ev_attempt })
          | Done e ->
            update e.ev_job (fun v ->
                { v with v_terminal = Some e.ev_status;
                  v_completed = max v.v_completed e.ev_completed })
          | Cancelled e ->
            update e.ev_job (fun v -> { v with v_terminal = Some "cancelled";
                v_completed = max v.v_completed e.ev_completed })
          | Failed e ->
            update e.ev_job (fun v -> { v with v_terminal = Some "failed";
                v_completed = max v.v_completed e.ev_completed })
          | Degraded e ->
            update e.ev_job (fun v -> { v with v_terminal = Some "degraded";
                v_completed = max v.v_completed e.ev_completed })
          | Drained e ->
            (* drained jobs stay non-terminal: they are exactly the ones
               a --resume-queue restart re-adopts *)
            update e.ev_job (fun v ->
                { v with v_completed = max v.v_completed e.ev_completed }))))
    lines;
  {
    r_jobs = List.rev_map (fun id -> Hashtbl.find jobs id) !order;
    r_next_seq = !next_seq;
    r_notes = List.rev !notes;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay_file path =
  if Sys.file_exists path then replay_string (read_file path)
  else { r_jobs = []; r_next_seq = 0; r_notes = [] }

(* --- writer --- *)

exception Write_failed of string

let () =
  Printexc.register_printer (function
    | Write_failed msg -> Some ("Ledger.Write_failed: " ^ msg)
    | _ -> None)

type writer = {
  w_io : Mdio.t;
  mutable w_seq : int;
  mutable w_good : int;
      (* byte offset of the durable good tail: everything below it is
         complete, fsynced records *)
  mutable w_poisoned : bool;
      (* a write or fsync failed after w_good; the file may carry a torn
         or non-durable tail that must be truncated away before any
         further append *)
  mutable w_closed : bool;
}

(* Every record we write ends in '\n' and is issued as one write(2), so
   a torn tail (crash or failed append) is exactly the bytes after the
   last newline.  Truncating them at open keeps torn records confined to
   the final position forever: without this, appending after a crash
   would bury the torn record mid-file. *)
let truncate_torn_tail ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> ()
  | content ->
    let len = String.length content in
    if len > 0 && content.[len - 1] <> '\n' then begin
      let good =
        match String.rindex_opt content '\n' with
        | Some i -> i + 1
        | None -> 0
      in
      match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
      | exception Unix.Unix_error _ -> ()
      | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            (try Unix.ftruncate fd good with Unix.Unix_error _ -> ());
            try Unix.fsync fd with Unix.Unix_error _ -> ())
    end

let open_writer ~path ~next_seq =
  if Sys.file_exists path then truncate_torn_tail ~path;
  let io = Mdio.openw ~append:true path in
  { w_io = io;
    w_seq = next_seq;
    w_good = Mdio.size io;
    w_poisoned = false;
    w_closed = false }

(* Repair after a failed append: drop everything past the last known
   good record.  ftruncate itself is the unshimmed repair primitive (a
   repair path must converge), but the fsync that makes the truncation
   durable goes through the shim — if it faults, the retry loop repairs
   again. *)
let repair w =
  Mdio.truncate w.w_io w.w_good;
  Mdio.fsync w.w_io;
  w.w_poisoned <- false

let append_attempts = 4

(* One write(2) per record (O_APPEND keeps it a single atomic-ish tail
   extension), then fsync — both through the Mdio shim.  A failed write
   or fsync poisons the writer (the tail may be torn or non-durable),
   repair truncates back to the good tail, and the append is retried; if
   [append_attempts] rounds all fail, [Write_failed] is raised with the
   writer left poisoned — the next append repairs first, and the caller
   must NOT treat the record as durable.  Mdio.Crashed always
   propagates: a dead process doesn't retry. *)
let append w ev =
  if not w.w_closed then begin
    let line = encode_line ~seq:w.w_seq ev ^ "\n" in
    let rec attempt k last_err =
      if k >= append_attempts then begin
        w.w_poisoned <- true;
        raise
          (Write_failed
             (Printf.sprintf "ledger append failed after %d attempts: %s"
                append_attempts last_err))
      end
      else
        match
          if w.w_poisoned then repair w;
          Mdio.write w.w_io line;
          Mdio.fsync w.w_io
        with
        | () ->
          w.w_good <- w.w_good + String.length line;
          w.w_seq <- w.w_seq + 1
        | exception Unix.Unix_error (e, fn, _) ->
          w.w_poisoned <- true;
          attempt (k + 1)
            (Printf.sprintf "%s in %s" (Unix.error_message e) fn)
    in
    attempt 0 "no attempt made"
  end

let close_writer w =
  if not w.w_closed then begin
    w.w_closed <- true;
    try Mdio.close w.w_io with Unix.Unix_error _ -> ()
  end

(* Last [limit] intact records mentioning [job] (all jobs if [job] is
   empty), newest last — the daemon's `tail` op. *)
let tail_lines data ~job ~limit =
  let lines = String.split_on_char '\n' data in
  let keep line =
    match verify_line line with
    | Error _ -> None
    | Ok j ->
      if job = "" || jstr_of j "job" = Some job then Some line else None
  in
  let matching = List.filter_map keep lines in
  let n = List.length matching in
  if n <= limit then matching
  else
    List.filteri (fun i _ -> i >= n - limit) matching
