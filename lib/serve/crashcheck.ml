(* Exhaustive crash-point consistency sweep (see crashcheck.mli).

   A reference pass runs the scenario with Mdio counting every durable
   I/O operation; the sweep then re-runs it once per op index k with a
   simulated process death armed at k, recovers the way the daemon
   would (`--resume-queue` / `Runner.resume`), and checks the recovered
   end state against the reference — byte for byte where the repo
   promises bitwise convergence.  Because Mdio's schedule is
   deterministic, index k always dies at the same syscall, so the sweep
   visits every window between two durable operations exactly once. *)

module Runner = Mdckpt.Runner

type mode = Run | Serve

type cfg = {
  cc_dir : string;
  cc_mode : mode;
  cc_jobs : int;
  cc_atoms : int;
  cc_steps : int;
  cc_every : int;
  cc_limit : int option;
  cc_verbose : bool;
}

let default_cfg ~dir =
  { cc_dir = dir; cc_mode = Serve; cc_jobs = 3; cc_atoms = 128;
    cc_steps = 12; cc_every = 4; cc_limit = None; cc_verbose = false }

exception Check_failed of string

let failf fmt = Printf.ksprintf (fun s -> raise (Check_failed s)) fmt

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> rm_rf (Filename.concat path name))
      (Sys.readdir path);
    Unix.rmdir path
  | _ -> Unix.unlink path

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_opt path = if Sys.file_exists path then Some (read_file path) else None

(* ------------------------------------------------------------------ *)
(* Serve-mode scenario                                                 *)
(* ------------------------------------------------------------------ *)

(* A deliberately heterogeneous little queue: two tenants, distinct
   seeds, and one job with telemetry+counters enabled so the sweep
   covers the Mdtel/Mdprof persistence paths too. *)
let specs cfg =
  List.init cfg.cc_jobs (fun i ->
      { Ledger.js_id = Printf.sprintf "cc-%d" (i + 1);
        js_tenant = (if i mod 2 = 0 then "t0" else "t1");
        js_priority = 1;
        js_device = "opteron";
        js_atoms = cfg.cc_atoms;
        js_steps = cfg.cc_steps;
        js_seed = 11 + i;
        js_density = 0.8;
        js_temperature = 1.0;
        js_engine = "default";
        js_skin = 0.4;
        js_every = cfg.cc_every;
        js_keep = 8;
        js_faults = None;
        js_deadline = None;
        js_telemetry = (i = 0);
        js_tel_every = cfg.cc_every })

let engine_cfg ~dir ~resume =
  { Engine.cfg_dir = dir; cfg_max_queue = 64; cfg_retries = 2;
    cfg_backoff_s = 0.0; cfg_resume = resume }

(* Synthetic clock far past every backoff gate, like the serve tests. *)
let quiesce eng =
  let rec go n =
    if n > 2000 then failf "engine did not quiesce within 2000 ticks"
    else if Engine.tick eng ~now:(1e9 +. float_of_int n) then go (n + 1)
  in
  go 0

let job_known eng id =
  match Engine.status_json eng (Some id) with Ok _ -> true | Error _ -> false

(* What the recovered state must reproduce, captured once from the
   uninterrupted reference pass. *)
type snapshot = {
  snap_report : string option;
  snap_metrics : string option;
  snap_counters : string option;
  snap_tel : string option; (* virtual projection *)
}

let snapshot ~dir (js : Ledger.jobspec) =
  let jd = Filename.concat (Filename.concat dir "jobs") js.Ledger.js_id in
  let p name = Filename.concat jd name in
  { snap_report = read_opt (p "report.txt");
    snap_metrics = read_opt (p "metrics.json");
    snap_counters =
      (if js.Ledger.js_telemetry then read_opt (p "counters.json") else None);
    snap_tel =
      (if js.Ledger.js_telemetry then
         Option.map Mdtel.virtual_projection (read_opt (p "telemetry.jsonl"))
       else None) }

let check_eq ~what ~id refv gotv =
  match (refv, gotv) with
  | None, None -> ()
  | Some _, None -> failf "%s: %s missing after recovery" id what
  | None, Some _ -> failf "%s: unexpected %s after recovery" id what
  | Some a, Some b ->
    if not (String.equal a b) then
      failf "%s: %s diverged from the reference run" id what

(* Ledger-level durability invariants: an intact file (the recovery
   open truncated any torn tail), exactly one [submitted] and exactly
   one terminal [done] per job — acked work is neither lost nor
   re-acked — and monotone per-job segment progress. *)
let check_ledger ~dir specs =
  let path = Filename.concat dir "ledger.jsonl" in
  let data = if Sys.file_exists path then read_file path else "" in
  let events =
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else
          match Ledger.verify_line line with
          | Error msg -> failf "ledger: corrupt record survived: %s" msg
          | Ok j -> (
            match Ledger.event_of_json j with
            | Ok ev -> Some ev
            | Error msg -> failf "ledger: undecodable record: %s" msg))
      (String.split_on_char '\n' data)
  in
  List.iter
    (fun (js : Ledger.jobspec) ->
      let id = js.Ledger.js_id in
      let count p = List.length (List.filter p events) in
      let submits =
        count (function
          | Ledger.Submitted s -> s.Ledger.js_id = id
          | _ -> false)
      in
      let dones =
        count (function
          | Ledger.Done { ev_job; _ } -> ev_job = id
          | _ -> false)
      in
      let bad =
        count (function
          | Ledger.Failed { ev_job; _ }
          | Ledger.Degraded { ev_job; _ }
          | Ledger.Cancelled { ev_job; _ } -> ev_job = id
          | _ -> false)
      in
      if submits <> 1 then failf "%s: %d submitted records (want 1)" id submits;
      if dones <> 1 then failf "%s: %d done records (want 1)" id dones;
      if bad <> 0 then failf "%s: unexpected failed/degraded/cancelled" id;
      let segs =
        List.filter_map
          (function
            | Ledger.Segment { ev_job; ev_completed; _ } when ev_job = id ->
              Some ev_completed
            | _ -> None)
          events
      in
      ignore
        (List.fold_left
           (fun prev c ->
             if c < prev then failf "%s: segment progress went backwards" id;
             c)
           0 segs))
    specs

let check_serve_state ~dir specs refs =
  check_ledger ~dir specs;
  List.iter2
    (fun (js : Ledger.jobspec) rs ->
      let id = js.Ledger.js_id in
      let got = snapshot ~dir js in
      check_eq ~what:"report.txt" ~id rs.snap_report got.snap_report;
      check_eq ~what:"metrics.json" ~id rs.snap_metrics got.snap_metrics;
      check_eq ~what:"counters.json" ~id rs.snap_counters got.snap_counters;
      check_eq ~what:"telemetry projection" ~id rs.snap_tel got.snap_tel)
    specs refs

(* One uninterrupted pass: create, submit everything, drive to
   quiescence, graceful shutdown.  Returns the acked ids. *)
let serve_pass ~dir ~resume specs =
  mkdir_p dir;
  match Engine.create (engine_cfg ~dir ~resume) with
  | Error msg -> failf "engine create: %s" msg
  | Ok eng ->
    let acked =
      List.filter_map
        (fun (js : Ledger.jobspec) ->
          if resume && job_known eng js.Ledger.js_id then None
          else
            match Engine.submit eng js with
            | Ok (id, _) -> Some id
            | Error msg -> failf "submit %s: %s" js.Ledger.js_id msg)
        specs
    in
    quiesce eng;
    Engine.shutdown eng;
    acked

(* One sweep trial: re-run the scenario with death armed at op [k],
   then recover exactly as the daemon would.  Close is a counted op but
   never a crash point, so some indices complete without dying — those
   trials degenerate to a second reference pass and must still verify. *)
let serve_trial specs refs ~k ~dir =
  rm_rf dir;
  mkdir_p dir;
  Mdio.reset ();
  Mdio.set_crash_point (Some k);
  let eng_ref = ref None in
  let acked = ref [] in
  let crashed =
    try
      (match Engine.create (engine_cfg ~dir ~resume:false) with
      | Error msg -> failf "trial create: %s" msg
      | Ok eng ->
        eng_ref := Some eng;
        List.iter
          (fun (js : Ledger.jobspec) ->
            match Engine.submit eng js with
            | Ok (id, _) -> acked := id :: !acked
            | Error msg -> failf "trial submit %s: %s" js.Ledger.js_id msg)
          specs;
        quiesce eng;
        Engine.shutdown eng;
        eng_ref := None);
      false
    with Mdio.Crashed _ -> true
  in
  if crashed then begin
    (* the kill: drop the engine on the floor, then revive the process *)
    (match !eng_ref with Some eng -> Engine.abandon eng | None -> ());
    Mdio.reset ();
    match Engine.create (engine_cfg ~dir ~resume:true) with
    | Error msg -> failf "recovery create: %s" msg
    | Ok eng ->
      (* every acked job must have been re-adopted from the ledger *)
      List.iter
        (fun id ->
          if not (job_known eng id) then
            failf "acked job %s lost across the crash" id)
        !acked;
      (* unacked submissions are the client's to retry (idempotent) *)
      List.iter
        (fun (js : Ledger.jobspec) ->
          if not (job_known eng js.Ledger.js_id) then
            match Engine.submit eng js with
            | Ok _ -> ()
            | Error msg -> failf "re-submit %s: %s" js.Ledger.js_id msg)
        specs;
      quiesce eng;
      Engine.shutdown eng
  end;
  check_serve_state ~dir specs refs;
  crashed

let sweep_serve cfg =
  let specs = specs cfg in
  let ref_dir = Filename.concat cfg.cc_dir "reference" in
  rm_rf ref_dir;
  mkdir_p ref_dir;
  Mdio.reset ();
  ignore (serve_pass ~dir:ref_dir ~resume:false specs);
  let total_ops = Mdio.op_count () in
  let refs = List.map (snapshot ~dir:ref_dir) specs in
  check_ledger ~dir:ref_dir specs;
  let limit =
    match cfg.cc_limit with
    | Some l -> min l total_ops
    | None -> total_ops
  in
  let crashes = ref 0 in
  for k = 0 to limit - 1 do
    let dir = Filename.concat cfg.cc_dir (Printf.sprintf "trial-%d" k) in
    let crashed =
      try serve_trial specs refs ~k ~dir
      with Check_failed msg ->
        Mdio.reset ();
        failf "op %d/%d: %s (state kept in %s)" k total_ops msg dir
    in
    if crashed then incr crashes;
    if cfg.cc_verbose then
      Printf.eprintf "crashcheck: op %d/%d %s\n%!" k total_ops
        (if crashed then "crashed+recovered" else "completed");
    rm_rf dir
  done;
  Mdio.reset ();
  Printf.sprintf
    "crashcheck serve: %d jobs, %d I/O ops, %d trials (%d died, %d ran \
     through), all recovered bitwise"
    cfg.cc_jobs total_ops limit !crashes (limit - !crashes)

(* ------------------------------------------------------------------ *)
(* Run-mode scenario (single-shot segmented runner)                    *)
(* ------------------------------------------------------------------ *)

let runner_cfg cfg ~dir =
  { Runner.cfg_device = Runner.Opteron;
    cfg_atoms = cfg.cc_atoms;
    cfg_steps = cfg.cc_steps;
    cfg_seed = 11;
    cfg_density = 0.8;
    cfg_temperature = 1.0;
    cfg_force_path = Mdports.Force_path.default;
    cfg_every = cfg.cc_every;
    cfg_keep = 8;
    cfg_dir = dir }

let run_fingerprint (r : Mdports.Run_result.t) =
  Mdports.Run_result.render_summary r
  ^ "\n" ^ Mdports.Run_result.metrics_json r

let sweep_run cfg =
  let ref_dir = Filename.concat cfg.cc_dir "reference" in
  rm_rf ref_dir;
  mkdir_p ref_dir;
  Mdio.reset ();
  let reference =
    match Runner.run (runner_cfg cfg ~dir:ref_dir) with
    | Runner.Complete r -> run_fingerprint r
    | Runner.Suspended s -> failf "reference run suspended: %s" s.sus_reason
  in
  let total_ops = Mdio.op_count () in
  let limit =
    match cfg.cc_limit with
    | Some l -> min l total_ops
    | None -> total_ops
  in
  let crashes = ref 0 in
  for k = 0 to limit - 1 do
    let dir = Filename.concat cfg.cc_dir (Printf.sprintf "trial-%d" k) in
    rm_rf dir;
    mkdir_p dir;
    Mdio.reset ();
    Mdio.set_crash_point (Some k);
    let rcfg = runner_cfg cfg ~dir in
    let outcome =
      match Runner.run rcfg with
      | Runner.Complete r -> run_fingerprint r
      | Runner.Suspended s -> failf "op %d: run suspended: %s" k s.sus_reason
      | exception Mdio.Crashed _ -> (
        incr crashes;
        Mdio.reset ();
        match Runner.resume dir with
        | Ok (Runner.Complete r) -> run_fingerprint r
        | Ok (Runner.Suspended s) ->
          failf "op %d: resume suspended: %s" k s.sus_reason
        | Error _ ->
          (* died before generation 0 was durable: nothing to resume,
             a fresh run is the correct recovery *)
          rm_rf dir;
          mkdir_p dir;
          (match Runner.run rcfg with
          | Runner.Complete r -> run_fingerprint r
          | Runner.Suspended s ->
            failf "op %d: rerun suspended: %s" k s.sus_reason))
    in
    if not (String.equal outcome reference) then begin
      Mdio.reset ();
      failf "op %d/%d: recovered run diverged (state kept in %s)" k total_ops
        dir
    end;
    if cfg.cc_verbose then
      Printf.eprintf "crashcheck: op %d/%d ok\n%!" k total_ops;
    rm_rf dir
  done;
  Mdio.reset ();
  Printf.sprintf
    "crashcheck run: %d I/O ops, %d trials (%d died), all recovered bitwise"
    total_ops limit !crashes

let run cfg =
  if Mdfault.active () then
    Error "crashcheck: a fault plan is active; run it without --faults"
  else
    match
      (match cfg.cc_mode with Serve -> sweep_serve cfg | Run -> sweep_run cfg)
    with
    | summary -> Ok summary
    | exception Check_failed msg ->
      Mdio.reset ();
      Error msg
