(* The serve daemon: a Unix-domain socket front end over {!Engine}.

   One cooperative loop alternates between accepting a single request
   (select with a short timeout — zero when a job segment is ready to
   run, so a busy daemon never sleeps) and running one engine tick.
   SIGTERM/SIGINT set the drain flag from the handler; the loop observes
   it between segments, so shutdown always lands on a durable segment
   boundary: every in-flight job's newest checkpoint is already on disk,
   drained records are appended, the ledger is flushed, and the process
   exits cleanly — the graceful twin of the kill -9 story that
   [--resume-queue] covers. *)

type config = {
  d_socket : string;
  d_engine : Engine.config;
}

let drain_flag = Atomic.make false

let handle_request eng line =
  match Protocol.parse_request line with
  | Error msg -> Protocol.error_reply msg
  | Ok Protocol.Ping ->
    Protocol.ok_reply (Printf.sprintf "\"pong\":true,\"pid\":%d" (Unix.getpid ()))
  | Ok (Protocol.Submit js) -> (
    match Engine.submit eng js with
    | Ok (id, dir) ->
      Protocol.ok_reply
        (Printf.sprintf "\"job\":\"%s\",\"dir\":\"%s\""
           (Mdobs.json_escape id) (Mdobs.json_escape dir))
    | Error msg -> Protocol.error_reply msg)
  | Ok (Protocol.Status job) -> (
    match Engine.status_json eng job with
    | Ok reply -> reply
    | Error msg -> Protocol.error_reply msg)
  | Ok (Protocol.Cancel job) -> (
    match Engine.cancel eng job with
    | Ok completed ->
      Protocol.ok_reply (Printf.sprintf "\"completed\":%d" completed)
    | Error msg -> Protocol.error_reply msg)
  | Ok (Protocol.Tail (job, limit)) ->
    let lines = Engine.tail eng ~job ~limit in
    Protocol.ok_reply
      (Printf.sprintf "\"records\":[%s]" (String.concat "," lines))
  | Ok Protocol.Drain ->
    Engine.request_drain eng;
    Protocol.ok_reply "\"draining\":true"

(* Read one request line from an accepted connection (bounded, with a
   receive timeout so a stalled client cannot wedge the scheduler),
   reply, close. *)
let serve_one eng conn =
  Fun.protect
    ~finally:(fun () -> try Unix.close conn with Unix.Unix_error _ -> ())
    (fun () ->
      (try
         Unix.setsockopt_float conn Unix.SO_RCVTIMEO 2.0;
         Unix.setsockopt_float conn Unix.SO_SNDTIMEO 2.0
       with Unix.Unix_error _ -> ());
      let buf = Buffer.create 512 in
      let chunk = Bytes.create 4096 in
      let rec recv () =
        if Buffer.length buf > 1_048_576 then ()
        else
          match Unix.read conn chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            if not (String.contains (Buffer.contents buf) '\n') then recv ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            -> ()
      in
      recv ();
      let line =
        let s = Buffer.contents buf in
        match String.index_opt s '\n' with
        | Some i -> String.sub s 0 i
        | None -> s
      in
      if String.trim line <> "" then begin
        let reply = handle_request eng line ^ "\n" in
        let payload = Bytes.of_string reply in
        let rec send off =
          if off < Bytes.length payload then
            match Unix.write conn payload off (Bytes.length payload - off) with
            | n -> send (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> send off
            | exception Unix.Unix_error _ -> ()
        in
        send 0
      end)

(* A socket file can be left behind by a killed daemon.  If something
   answers a connect it is live — refuse to fight it; otherwise the
   socket is stale and safe to replace. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      Error (Printf.sprintf "a daemon is already listening on %s" path)
    else begin
      (try Sys.remove path with Sys_error _ -> ());
      Ok ()
    end
  end
  else Ok ()

let install_signals () =
  Atomic.set drain_flag false;
  let drain _ = Atomic.set drain_flag true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ())

let serve cfg =
  match Engine.create cfg.d_engine with
  | Error msg -> Error msg
  | Ok eng -> (
    match claim_socket cfg.d_socket with
    | Error msg ->
      Engine.abandon eng;
      Error msg
    | Ok () ->
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX cfg.d_socket);
      Unix.listen sock 16;
      install_signals ();
      Printf.eprintf "mdsim: serving on %s (dir %s, pid %d)\n%!" cfg.d_socket
        cfg.d_engine.Engine.cfg_dir (Unix.getpid ());
      let cleanup () =
        (try Unix.close sock with Unix.Unix_error _ -> ());
        try Sys.remove cfg.d_socket with Sys_error _ -> ()
      in
      let rec loop () =
        if Atomic.get drain_flag then Engine.request_drain eng;
        if Engine.draining eng then begin
          Printf.eprintf
            "mdsim: draining: checkpointing in-flight jobs and flushing \
             the ledger\n%!";
          Engine.shutdown eng;
          cleanup ();
          Ok ()
        end
        else begin
          let now = Unix.gettimeofday () in
          let timeout =
            if Engine.has_runnable eng ~now then 0.0
            else
              (* idle, or every live job is gated by retry backoff:
                 sleep until the gate (capped) so backoff is honored
                 without a busy loop *)
              match Engine.next_eligible eng with
              | Some e when e > now -> Float.min 0.25 (e -. now)
              | Some _ -> 0.05
              | None -> 0.25
          in
          (match Unix.select [ sock ] [] [] timeout with
          | [ _ ], _, _ ->
            let conn, _ = Unix.accept sock in
            serve_one eng conn
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          ignore (Engine.tick eng ~now:(Unix.gettimeofday ()));
          loop ()
        end
      in
      loop ())
