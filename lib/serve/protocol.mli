(** Serve wire protocol: one JSON request per connection, one JSON
    reply, over a Unix-domain stream socket.

    Requests are single-line JSON objects with an ["op"] field —
    [ping], [submit] (jobspec fields at top level, absent fields take
    submit defaults), [status] (optionally one ["job"]), [cancel],
    [tail], [drain].  Replies are [{"ok":true,...}] or
    [{"ok":false,"error":"..."}]. *)

type request =
  | Ping
  | Submit of Ledger.jobspec
  | Status of string option
  | Cancel of string
  | Tail of string * int  (** job ("" = all), limit *)
  | Drain

val parse_request : string -> (request, string) result

val ok_reply : string -> string
(** [ok_reply fields] is [{"ok":true,<fields>}]; [""] for a bare ok. *)

val error_reply : string -> string

val roundtrip :
  ?retries:int -> ?timeout:float -> socket:string -> string ->
  (string, string) result
(** Client side: send one request line to the daemon socket, return the
    reply line.  Transient connect failures — the socket not bound yet
    (ENOENT), the daemon not accepting (ECONNREFUSED), or a reset —
    are retried up to [retries] times (default 0) with exponential
    backoff from 50 ms, bounded by [timeout] seconds (default 10) for
    the whole window; non-transient errors fail immediately. *)
