(** Durable append-only job ledger (schema mdsim-ledger-v1).

    One JSON record per line: schema tag, monotone sequence number, the
    event, and a CRC-32 of the record body (computed without the [crc]
    field itself).  Appends are a single [write(2)] on an [O_APPEND]
    descriptor followed by [fsync], and are issued only {e after} the
    checkpoint generation backing the recorded progress is durable — so
    the ledger never claims progress the checkpoint store cannot back,
    and a crash (kill -9 included) can tear at most the final record,
    which {!replay_string} detects by CRC and drops. *)

val schema : string
(** ["mdsim-ledger-v1"]. *)

type jobspec = {
  js_id : string;
  js_tenant : string;
  js_priority : int;          (** scheduler quantum: consecutive segments *)
  js_device : string;         (** CLI device name, e.g. ["cell"] *)
  js_atoms : int;
  js_steps : int;
  js_seed : int;
  js_density : float;
  js_temperature : float;
  js_engine : string;         (** ["default"] | ["pairlist"] | ["n2"] *)
  js_skin : float;
  js_every : int;             (** checkpoint segment length, steps *)
  js_keep : int;              (** checkpoint generations kept *)
  js_faults : string option;  (** Mdfault plan spec, verbatim *)
  js_deadline : float option; (** host-seconds budget across all segments *)
  js_telemetry : bool;
  js_tel_every : int;
}

type event =
  | Submitted of jobspec
  | Resumed of { ev_job : string; ev_completed : int }
      (** a restart re-adopted the job at this checkpoint generation *)
  | Segment of { ev_job : string; ev_completed : int; ev_total : int }
  | Retrying of { ev_job : string; ev_attempt : int; ev_reason : string }
  | Done of { ev_job : string; ev_status : string; ev_completed : int }
  | Cancelled of { ev_job : string; ev_completed : int }
  | Failed of { ev_job : string; ev_reason : string; ev_completed : int }
  | Degraded of { ev_job : string; ev_reason : string; ev_completed : int }
  | Drained of { ev_job : string; ev_completed : int }
      (** graceful shutdown checkpointed the job for a later restart *)

val encode_line : seq:int -> event -> string
(** One ledger line (no trailing newline), CRC included. *)

val verify_line : string -> (Sim_util.Minijson.t, string) result
(** Schema + CRC check of one line. *)

val event_of_json : Sim_util.Minijson.t -> (event, string) result

val spec_of_json : id:string -> Sim_util.Minijson.t -> jobspec
(** Decode a spec object, filling absent fields with the submit
    defaults (tenant "default", 256 atoms, 100 steps, segment 25, ...).
    Also used by the wire protocol, whose submit request carries the
    same field names. *)

(** {1 Replay} *)

type job_view = {
  v_spec : jobspec;
  v_completed : int;          (** newest ledger-backed completed step *)
  v_attempts : int;
  v_terminal : string option; (** ok|recovered|degraded|failed|cancelled *)
}

type replay = {
  r_jobs : job_view list;     (** submit order *)
  r_next_seq : int;
  r_notes : string list;      (** dropped/suspect records, oldest first *)
}

val replay_string : string -> replay
(** Reconstruct queue state from ledger bytes.  A torn final record is
    tolerated and noted; interior corruption is noted and skipped.
    Drained jobs stay non-terminal — they are exactly what a
    [--resume-queue] restart re-adopts. *)

val replay_file : string -> replay
(** [replay_string] on the file's contents; empty replay if absent. *)

val read_file : string -> string

val tail_lines : string -> job:string -> limit:int -> string list
(** Last [limit] intact records mentioning [job] ([""] = all jobs),
    oldest first. *)

(** {1 Writer} *)

exception Write_failed of string
(** An append could not be made durable: the write or fsync failed
    [append_attempts] times in a row (injected or real).  The writer is
    left poisoned — the next append truncate-repairs the tail first —
    and the caller must not ack the record. *)

type writer

val open_writer : path:string -> next_seq:int -> writer
(** Open for appending (through the {!Mdio} shim).  A torn final record
    left by a crash — the bytes after the last newline — is truncated
    away first, so torn tails stay confined to the final position
    instead of being buried mid-file by later appends. *)

val append : writer -> event -> unit
(** One shimmed write + fsync.  On failure: poison, truncate back to
    the last durable good tail, retry (bounded); raises {!Write_failed}
    when the budget is exhausted — a failed fsync is never swallowed,
    so the daemon can never ack a record the platter doesn't have.
    {!Mdio.Crashed} propagates untouched. *)

val close_writer : writer -> unit
