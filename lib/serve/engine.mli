(** The serve engine: fair round-robin scheduling of checkpointed jobs
    over the segmented runner, one segment per cooperative tick.

    Single-threaded by design: the daemon alternates between one socket
    request and one {!tick}, so every public operation happens between
    segments — the only moment a job's state is durable.  Each job's
    process-global fault/counter/telemetry state is swapped in around
    its segment and captured back into the job's checkpoint state by the
    runner, so jobs never see each other's instrumentation and a crash
    at any point loses nothing the ledger claims.

    Robustness per job: a host-seconds deadline budget enforced per
    segment (expiry → [degraded]); bounded retry with exponential
    backoff on {!Mdfault.Unrecovered} (the retried segment restarts from
    its durable input checkpoint with post-failure fault-stream
    positions — fresh draws); invariant violations re-execute the
    segment up to twice, then [failed]; storage errors (injected by
    {!Mdio} or real) during a segment, its checkpoint save, artifact
    writes, or the segment ledger record route to the same bounded
    retry — the durable input checkpoint is intact and nothing was
    acked.  {!Mdio.Crashed} (simulated process death) is never caught:
    it unwinds through every operation so the crash sweep can observe
    exactly what a kill -9 leaves on disk. *)

type config = {
  cfg_dir : string;      (** serve root: ledger.jsonl + jobs/<id>/ *)
  cfg_max_queue : int;   (** admission bound on live jobs *)
  cfg_retries : int;     (** fault-death retry budget per job *)
  cfg_backoff_s : float; (** base retry backoff, doubled per attempt *)
  cfg_resume : bool;     (** replay an existing ledger instead of failing *)
}

val default_config : dir:string -> config

type t

val create : config -> (t, string) result
(** Take the serve directory's single-writer guard and open the ledger.
    With [cfg_resume] and an existing ledger, replay it and re-adopt
    every non-terminal job at its newest valid checkpoint generation
    (appending a [resumed] record each); without [cfg_resume], an
    existing ledger is an [Error] — never silently forked. *)

val submit : t -> Ledger.jobspec -> (string * string, string) result
(** Validate, admit (bounded queue — [Error "rejected: overload ..."]
    when full), lock the job directory, append the [submitted] record,
    and only then enqueue: an [Ok] ack means the record is durable, so
    a crash after the ack can never lose the job, and a ledger that
    cannot be written ({!Ledger.Write_failed}) is a retryable
    rejection, never a silent loss.  An empty [js_id] gets a generated
    one.  Returns [(id, job_dir)]. *)

val cancel : t -> string -> (int, string) result
(** Cancel a live job between segments; returns its completed step. *)

val status_json : t -> string option -> (string, string) result
(** JSON status reply for one job or the whole queue. *)

val tail : t -> job:string -> limit:int -> string list
(** Last intact ledger records for [job] ([""] = all). *)

val tick : t -> now:float -> bool
(** Run at most one segment of the fairly-picked job; [false] when idle
    (nothing runnable, draining, or shut down). *)

val has_runnable : t -> now:float -> bool
val next_eligible : t -> float option
(** Earliest host time any live job becomes runnable (backoff gates). *)

val request_drain : t -> unit
(** Stop admitting and scheduling; the daemon observes {!draining} and
    calls {!shutdown}. *)

val draining : t -> bool

val shutdown : t -> unit
(** Graceful drain: append a [drained] record per live job (their
    checkpoints are already durable), close the ledger, release every
    lock.  Idempotent. *)

val abandon : t -> unit
(** Test hook: drop everything without drain records — on-disk state is
    exactly what kill -9 leaves.  Locks are released only to free the
    in-process registry for a restarted engine in the same process. *)
