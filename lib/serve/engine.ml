(* The serve engine: a fair round-robin scheduler that drives many
   checkpointed jobs through the segmented runner, one segment per tick.

   Everything is single-threaded and cooperative — the daemon alternates
   between accepting one socket request and running one segment — so all
   job bookkeeping happens between segments, which is also the only
   moment a job's state is durable.  Each job runs with its own
   process-global fault-plan/counter/telemetry state swapped in around
   the segment ([swap_in]/[swap_out]); the checkpoint layer's
   [absorb_segment] captures that state back into the job's [Mdckpt.t],
   so swapping out is free and a kill -9 between (or during) segments
   loses nothing the ledger claims.

   Robustness policy per job:
   - deadline: a host-seconds budget across all its segments, enforced
     with {!Sim_util.Deadline} per segment on the remaining budget;
     expiry finalizes the job [degraded].
   - fault death ({!Mdfault.Unrecovered}): bounded retries with
     exponential backoff.  The segment restarts from its durable input
     checkpoint, but with the {e advanced} fault-stream state captured
     after the failure — fresh draws, not a deterministic replay of the
     same death.  Exhausted retries finalize the job [failed].
   - invariant violations: the segment is re-executed from its input
     checkpoint up to 2 times (matching the single-shot runner), then
     the job is finalized [failed]. *)

module Runner = Mdckpt.Runner
module Run_result = Mdports.Run_result

type config = {
  cfg_dir : string;     (* serve root: ledger.jsonl + jobs/<id>/ *)
  cfg_max_queue : int;  (* admission bound on live (non-terminal) jobs *)
  cfg_retries : int;    (* fault-death retry budget per job *)
  cfg_backoff_s : float;(* base retry backoff, doubled per attempt *)
  cfg_resume : bool;    (* replay an existing ledger instead of failing *)
}

let default_config ~dir =
  { cfg_dir = dir; cfg_max_queue = 64; cfg_retries = 2; cfg_backoff_s = 0.05;
    cfg_resume = false }

type job = {
  j_spec : Ledger.jobspec;
  j_dir : string;                        (* jobs/<id>, artifacts land here *)
  mutable j_status : string;  (* queued|running|ok|recovered|degraded|
                                 failed|cancelled *)
  mutable j_state : Mdckpt.t option;     (* in-memory between segments *)
  mutable j_cfg : Runner.config option;  (* built lazily from the spec *)
  mutable j_completed : int;
  mutable j_attempts : int;              (* fault-death retries used *)
  mutable j_inv_retries : int;           (* invariant re-executions used *)
  mutable j_eligible : float;            (* backoff: host time gate *)
  mutable j_spent : float;               (* host seconds consumed *)
  mutable j_lock : Mdckpt.Lock.t option; (* job-dir guard, held to terminal *)
  mutable j_error : string option;       (* reason for degraded/failed *)
}

type t = {
  e_cfg : config;
  e_lock : Mdckpt.Lock.t;                (* serve-dir single-writer guard *)
  e_ledger : Ledger.writer;
  e_jobs : (string, job) Hashtbl.t;
  mutable e_order : string list;         (* submit order, oldest first *)
  mutable e_tenants : string list;       (* first-seen order *)
  mutable e_rr : int;                    (* round-robin cursor *)
  mutable e_active : (string * int) option; (* job id * remaining quantum *)
  mutable e_draining : bool;
  mutable e_auto : int;                  (* auto job-id counter *)
  mutable e_closed : bool;
}

let terminal j =
  match j.j_status with "queued" | "running" -> false | _ -> true

let jobs_in_order t =
  (* e_order is newest-first; rev_map restores submit order *)
  List.rev_map (fun id -> Hashtbl.find t.e_jobs id) t.e_order

let live_count t =
  List.length (List.filter (fun j -> not (terminal j)) (jobs_in_order t))

let job_dir t id = Filename.concat (Filename.concat t.e_cfg.cfg_dir "jobs") id
let ckpt_dir j = Filename.concat j.j_dir "ckpt"
let ledger_path dir = Filename.concat dir "ledger.jsonl"

(* --- spec validation and runner configs --- *)

let force_path_of_spec (js : Ledger.jobspec) =
  match js.Ledger.js_engine with
  | "n2" -> Ok Mdports.Force_path.brute
  | "default" | "" -> Ok Mdports.Force_path.default
  | "pairlist" ->
    (* Mirror the CLI's admissibility check: an explicitly requested
       pairlist must be usable under the minimum-image convention, never
       a silent fallback. *)
    let box =
      Float.cbrt (float_of_int js.Ledger.js_atoms /. js.Ledger.js_density)
    in
    let reach =
      Mdcore.Params.default.Mdcore.Params.cutoff +. js.Ledger.js_skin
    in
    if box < 2.0 *. reach then
      Error
        (Printf.sprintf
           "engine pairlist needs box >= 2*(cutoff+skin) (box %.3g < %.3g)"
           box (2.0 *. reach))
    else Ok (Mdports.Force_path.pairlist ~skin:js.Ledger.js_skin ())
  | other -> Error (Printf.sprintf "unknown engine %S" other)

let validate_spec (js : Ledger.jobspec) =
  let err fmt = Printf.ksprintf (fun s -> Error ("invalid: " ^ s)) fmt in
  if js.Ledger.js_atoms <= 0 then err "atoms must be positive"
  else if js.Ledger.js_steps <= 0 then err "steps must be positive"
  else if js.Ledger.js_every <= 0 then err "every must be positive"
  else if js.Ledger.js_keep <= 0 then err "keep must be positive"
  else if js.Ledger.js_priority <= 0 || js.Ledger.js_priority > 64 then
    err "priority must be in 1..64"
  else if
    (not (Float.is_finite js.Ledger.js_density))
    || js.Ledger.js_density <= 0.0
  then err "density must be finite and positive"
  else if
    (not (Float.is_finite js.Ledger.js_temperature))
    || js.Ledger.js_temperature < 0.0
  then err "temperature must be finite and non-negative"
  else if
    (not (Float.is_finite js.Ledger.js_skin)) || js.Ledger.js_skin <= 0.0
  then err "skin must be finite and positive"
  else if js.Ledger.js_tel_every <= 0 then err "tel_every must be positive"
  else if
    (* System.create's minimum-image criterion, checked here so a bad
       geometry is a clean rejection, not a crash inside prepare *)
    Float.cbrt (float_of_int js.Ledger.js_atoms /. js.Ledger.js_density)
    < 2.0 *. Mdcore.Params.default.Mdcore.Params.cutoff
  then
    err
      "box %.3g violates the minimum-image criterion (needs >= 2*cutoff \
       = %g; raise atoms or lower density)"
      (Float.cbrt (float_of_int js.Ledger.js_atoms /. js.Ledger.js_density))
      (2.0 *. Mdcore.Params.default.Mdcore.Params.cutoff)
  else
    match
      ( Runner.device_of_name js.Ledger.js_device,
        force_path_of_spec js,
        (match js.Ledger.js_deadline with
        | Some d when (not (Float.is_finite d)) || d <= 0.0 ->
          Error "deadline must be finite and positive"
        | _ -> Ok ()),
        (match js.Ledger.js_faults with
        | None -> Ok ()
        | Some text -> (
          match Mdfault.parse_spec text with
          | Ok _ -> Ok ()
          | Error msg -> Error (Printf.sprintf "fault spec %S: %s" text msg))
        ) )
    with
    | Error msg, _, _, _ | _, Error msg, _, _ | _, _, Error msg, _
    | _, _, _, Error msg ->
      Error ("invalid: " ^ msg)
    | Ok _, Ok _, Ok (), Ok () -> Ok ()

let runner_cfg job =
  match job.j_cfg with
  | Some cfg -> cfg
  | None ->
    let js = job.j_spec in
    let device =
      match Runner.device_of_name js.Ledger.js_device with
      | Ok d -> d
      | Error msg -> failwith msg (* validated at submit *)
    in
    let force_path =
      match force_path_of_spec js with
      | Ok fp -> fp
      | Error msg -> failwith msg
    in
    let cfg =
      { Runner.cfg_device = device;
        cfg_atoms = js.Ledger.js_atoms;
        cfg_steps = js.Ledger.js_steps;
        cfg_seed = js.Ledger.js_seed;
        cfg_density = js.Ledger.js_density;
        cfg_temperature = js.Ledger.js_temperature;
        cfg_force_path = force_path;
        cfg_every = js.Ledger.js_every;
        cfg_keep = js.Ledger.js_keep;
        cfg_dir = ckpt_dir job }
    in
    job.j_cfg <- Some cfg;
    cfg

(* --- per-job process-global state swap --- *)

let swap_in job =
  let js = job.j_spec in
  (match job.j_state with
  | Some st ->
    (match st.Mdckpt.fault with
    | Some fs -> Mdfault.restore_state fs
    | None -> Mdfault.uninstall ());
    Mdfault.set_guard_restores st.Mdckpt.guard_restores
  | None ->
    (match js.Ledger.js_faults with
    | Some text -> (
      match Mdfault.parse_spec text with
      | Ok spec -> Mdfault.install spec
      | Error _ -> Mdfault.uninstall () (* unreachable: validated *))
    | None -> Mdfault.uninstall ());
    Mdfault.set_guard_restores 0);
  Mdprof.clear ();
  if js.Ledger.js_telemetry then begin
    (match job.j_state with
    | Some st -> (
      match st.Mdckpt.counters with
      | Some cells -> Mdprof.restore_cells cells
      | None -> Mdprof.enable ())
    | None -> Mdprof.enable ());
    Mdtel.Mux.open_job
      ~path:(Filename.concat job.j_dir "telemetry.jsonl")
      ~every:js.Ledger.js_tel_every ~total:js.Ledger.js_steps
      ~completed:job.j_completed
  end

let swap_out job =
  if job.j_spec.Ledger.js_telemetry then Mdtel.Mux.close_job ();
  Mdfault.uninstall ();
  Mdfault.set_guard_restores 0;
  Mdprof.clear ()

(* --- finalization --- *)

let release_job_lock job =
  match job.j_lock with
  | Some lk ->
    job.j_lock <- None;
    Mdckpt.Lock.release lk
  | None -> ()

let clear_active t job =
  match t.e_active with
  | Some (id, _) when id = job.j_spec.Ledger.js_id -> t.e_active <- None
  | _ -> ()

let set_terminal t job status =
  job.j_status <- status;
  job.j_state <- None; (* the system is large; keep only the summary *)
  clear_active t job;
  release_job_lock job

(* Informational appends (terminal records, retry/resume/drain notices)
   must not take the daemon down when the ledger disk is failing: the
   in-memory state is already correct, and a restart replays the ledger
   and re-runs the job to the same terminal state from its durable
   checkpoint.  [Mdio.Crashed] is not an error — it propagates. *)
let append_noted t ev =
  try Ledger.append t.e_ledger ev
  with Ledger.Write_failed msg ->
    Printf.eprintf "mdsim: serve: ledger: %s\n%!" msg

(* Completed run: artifacts first (report/metrics match the single-shot
   CLI byte for byte), then the terminal ledger record.  Runs inside the
   job's swap window — the fault summary and counters read the job's own
   global state. *)
let finalize_done t job (r : Run_result.t) =
  let js = job.j_spec in
  let fs = Mdfault.summary () in
  let status =
    if
      fs.Mdfault.injected > 0 || job.j_attempts > 0
      || Mdfault.guard_restores () > 0
    then Harness.Report.Recovered
    else Harness.Report.Ok
  in
  let name = Harness.Report.status_name status in
  let report =
    Run_result.render_summary r
    ^
    if Mdfault.active () && fs.Mdfault.injected > 0 then
      "  " ^ Mdfault.summary_line fs ^ "\n"
    else ""
  in
  Mdobs.write_file ~path:(Filename.concat job.j_dir "report.txt") report;
  Mdobs.write_file
    ~path:(Filename.concat job.j_dir "metrics.json")
    (Run_result.metrics_json r);
  if js.Ledger.js_telemetry then
    Mdobs.write_file
      ~path:(Filename.concat job.j_dir "counters.json")
      (Mdprof.to_json ());
  if js.Ledger.js_faults <> None then
    Mdobs.write_file
      ~path:(Filename.concat job.j_dir "faults.json")
      (Mdfault.events_json ());
  job.j_completed <- js.Ledger.js_steps;
  set_terminal t job name;
  append_noted t
    (Ledger.Done
       { ev_job = js.Ledger.js_id; ev_status = name;
         ev_completed = job.j_completed })

let finalize_degraded t job ~reason =
  job.j_error <- Some reason;
  set_terminal t job "degraded";
  append_noted t
    (Ledger.Degraded
       { ev_job = job.j_spec.Ledger.js_id; ev_reason = reason;
         ev_completed = job.j_completed })

let finalize_failed t job ~reason =
  job.j_error <- Some reason;
  set_terminal t job "failed";
  append_noted t
    (Ledger.Failed
       { ev_job = job.j_spec.Ledger.js_id; ev_reason = reason;
         ev_completed = job.j_completed })

(* --- scheduling --- *)

let runnable ~now j =
  (not (terminal j)) && j.j_eligible <= now

let has_runnable t ~now =
  (not t.e_draining)
  && List.exists (runnable ~now) (jobs_in_order t)

let next_eligible t =
  List.fold_left
    (fun acc j ->
      if terminal j then acc
      else match acc with
        | None -> Some j.j_eligible
        | Some e -> Some (Float.min e j.j_eligible))
    None (jobs_in_order t)

let tenant_first_runnable t tenant ~now =
  List.find_opt
    (fun j -> j.j_spec.Ledger.js_tenant = tenant && runnable ~now j)
    (jobs_in_order t)

(* Fair pick: tenants take turns in first-seen order; within a tenant,
   jobs run in submit order; a picked job keeps the slot for
   [priority] consecutive segments (its quantum) before the cursor
   moves on. *)
let rec pick t ~now =
  match t.e_active with
  | Some (id, left) when left > 0 -> (
    match Hashtbl.find_opt t.e_jobs id with
    | Some j when runnable ~now j -> Some j
    | _ ->
      t.e_active <- None;
      pick t ~now)
  | Some _ ->
    t.e_active <- None;
    pick t ~now
  | None ->
    let nt = List.length t.e_tenants in
    let rec go i =
      if i >= nt then None
      else
        let tenant = List.nth t.e_tenants ((t.e_rr + i) mod nt) in
        match tenant_first_runnable t tenant ~now with
        | Some j ->
          t.e_rr <- (t.e_rr + i + 1) mod nt;
          t.e_active <-
            Some (j.j_spec.Ledger.js_id, j.j_spec.Ledger.js_priority);
          Some j
        | None -> go (i + 1)
    in
    if nt = 0 then None else go 0

let consume_quantum t job =
  match t.e_active with
  | Some (id, left) when id = job.j_spec.Ledger.js_id ->
    if left <= 1 then t.e_active <- None
    else t.e_active <- Some (id, left - 1)
  | _ -> ()

(* --- running one segment --- *)

let reload_from_checkpoint job =
  match Mdckpt.load_latest ~dir:(ckpt_dir job) with
  | Ok (st, _) -> Some st
  | Error _ -> None

(* Bounded-retry restart from the durable input checkpoint, shared by
   fault deaths and storage errors.  The restarted segment carries the
   {e post}-failure fault-stream positions: fresh draws, not a
   deterministic replay of the same death. *)
let retry_with_backoff t job ~now ~reason =
  job.j_attempts <- job.j_attempts + 1;
  if job.j_attempts > t.e_cfg.cfg_retries then finalize_failed t job ~reason
  else
    match reload_from_checkpoint job with
    | None -> finalize_failed t job ~reason
    | Some st0 ->
      job.j_state <-
        Some
          { st0 with
            Mdckpt.fault = Mdfault.capture_state ();
            guard_restores = Mdfault.guard_restores () };
      job.j_completed <- st0.Mdckpt.completed;
      let backoff =
        t.e_cfg.cfg_backoff_s *. (2.0 ** float_of_int (job.j_attempts - 1))
      in
      job.j_eligible <- now +. backoff;
      clear_active t job;
      append_noted t
        (Ledger.Retrying
           { ev_job = job.j_spec.Ledger.js_id; ev_attempt = job.j_attempts;
             ev_reason = reason })

let run_segment t job ~now =
  let js = job.j_spec in
  swap_in job;
  Fun.protect ~finally:(fun () -> swap_out job) @@ fun () ->
  let cfg = runner_cfg job in
  job.j_status <- "running";
  let budget =
    match js.Ledger.js_deadline with
    | None -> None
    | Some d -> Some (d -. job.j_spent)
  in
  match budget with
  | Some b when b <= 0.0 ->
    finalize_degraded t job
      ~reason:
        (Printf.sprintf "deadline: %gs budget exhausted at step %d/%d"
           (Option.get js.Ledger.js_deadline)
           job.j_completed js.Ledger.js_steps)
  | _ -> (
    let t0 = Unix.gettimeofday () in
    (* Everything that can touch storage — the gen-0 first touch, the
       segment save, artifact writes, the segment ledger record — sits
       inside this try: an injected (or real) I/O error routes to the
       same bounded-retry path as a fault death, because in both cases
       the durable input checkpoint is intact and nothing was acked.
       [Mdio.Crashed] is deliberately NOT caught — a dead process does
       not recover itself. *)
    let outcome =
      try
        let st =
          match job.j_state with
          | Some st -> st
          | None ->
            (* First touch: build step-0 state (the fault plan is
               already swapped in, so its capture lands in the
               checkpoint) and make generation 0 durable before any
               work — resumable however early the daemon dies. *)
            let st = Runner.prepare cfg in
            ignore (Mdckpt.save ~dir:cfg.Runner.cfg_dir st);
            job.j_state <- Some st;
            st
        in
        let step =
          match budget with
          | None -> Runner.segment_step cfg st
          | Some b ->
            Sim_util.Deadline.with_budget ~seconds:b (fun () ->
                Runner.segment_step cfg st)
        in
        (match step with
        | Runner.Seg_complete r -> finalize_done t job r
        | Runner.Seg_checkpointed (st', _path) ->
          (* Checkpoint is durable; only now may the ledger claim it. *)
          job.j_state <- Some st';
          job.j_completed <- st'.Mdckpt.completed;
          Ledger.append t.e_ledger
            (Ledger.Segment
               { ev_job = js.Ledger.js_id;
                 ev_completed = st'.Mdckpt.completed;
                 ev_total = st'.Mdckpt.total_steps });
          if st'.Mdckpt.completed >= st'.Mdckpt.total_steps then
            finalize_done t job (Runner.result_of_state st')
          else consume_quantum t job);
        `Done
      with
      | Sim_util.Deadline.Expired _ -> `Deadline
      | Mdfault.Unrecovered f -> `Unrecovered f
      | Mdcore.Verlet.Invariant_violation msg -> `Invariant msg
      | Unix.Unix_error (e, fn, _) ->
        `Io (Printf.sprintf "storage: %s in %s" (Unix.error_message e) fn)
      | Ledger.Write_failed msg -> `Io msg
    in
    job.j_spent <- job.j_spent +. (Unix.gettimeofday () -. t0);
    match outcome with
    | `Done -> ()
    | `Deadline ->
      finalize_degraded t job
        ~reason:
          (Printf.sprintf "deadline: %gs budget exhausted at step %d/%d"
             (Option.get js.Ledger.js_deadline)
             job.j_completed js.Ledger.js_steps)
    | `Invariant msg ->
      (* Re-execute from the durable input checkpoint, like the
         single-shot runner, before giving up. *)
      if job.j_inv_retries >= 2 then
        finalize_failed t job ~reason:("invariant violation: " ^ msg)
      else (
        job.j_inv_retries <- job.j_inv_retries + 1;
        match reload_from_checkpoint job with
        | Some st0 -> job.j_state <- Some st0
        | None ->
          finalize_failed t job
            ~reason:("invariant violation (no checkpoint to retry): " ^ msg))
    | `Unrecovered f ->
      retry_with_backoff t job ~now ~reason:(Mdfault.failure_message f)
    | `Io reason -> retry_with_backoff t job ~now ~reason)

(* --- public operations --- *)

let tick t ~now =
  if t.e_closed || t.e_draining then false
  else
    match pick t ~now with
    | None -> false
    | Some job ->
      run_segment t job ~now;
      true

let add_job t job =
  let id = job.j_spec.Ledger.js_id in
  Hashtbl.replace t.e_jobs id job;
  t.e_order <- id :: t.e_order;
  if not (List.mem job.j_spec.Ledger.js_tenant t.e_tenants) then
    t.e_tenants <- t.e_tenants @ [ job.j_spec.Ledger.js_tenant ]

let fresh_id t =
  let rec go () =
    t.e_auto <- t.e_auto + 1;
    let id = Printf.sprintf "job-%d" t.e_auto in
    if Hashtbl.mem t.e_jobs id then go () else id
  in
  go ()

let submit t (js : Ledger.jobspec) =
  if t.e_closed then Error "rejected: engine is shut down"
  else if t.e_draining then Error "rejected: draining, not accepting jobs"
  else if live_count t >= t.e_cfg.cfg_max_queue then
    Error
      (Printf.sprintf "rejected: overload (%d live jobs, max %d)"
         (live_count t) t.e_cfg.cfg_max_queue)
  else
    let js =
      if js.Ledger.js_id = "" then { js with Ledger.js_id = fresh_id t }
      else js
    in
    let id = js.Ledger.js_id in
    if Hashtbl.mem t.e_jobs id then
      Error (Printf.sprintf "rejected: duplicate job id %S" id)
    else if String.exists (fun c -> c = '/' || c = '\x00') id || id = ""
    then Error "rejected: job id must be non-empty and slash-free"
    else
      match validate_spec js with
      | Error msg -> Error msg
      | Ok () -> (
        let dir = job_dir t id in
        match Mdckpt.Lock.guard_dir ~dir with
        | Error msg -> Error (Printf.sprintf "rejected: %s" msg)
        | Ok lk -> (
          let job =
            { j_spec = js; j_dir = dir; j_status = "queued";
              j_state = None; j_cfg = None; j_completed = 0;
              j_attempts = 0; j_inv_retries = 0; j_eligible = 0.0;
              j_spent = 0.0; j_lock = Some lk; j_error = None }
          in
          (* Durable-before-acked: the submit record must survive a
             crash before the job enters the queue, otherwise a client
             holds an ack for a job no restart will ever re-adopt.  A
             ledger that cannot be written is a rejection the client can
             retry, not a silent data loss. *)
          match Ledger.append t.e_ledger (Ledger.Submitted js) with
          | () ->
            add_job t job;
            Ok (id, dir)
          | exception e ->
            Mdckpt.Lock.release lk;
            (match e with
            | Ledger.Write_failed msg -> Error ("rejected: " ^ msg)
            | e -> raise e)))

let cancel t id =
  match Hashtbl.find_opt t.e_jobs id with
  | None -> Error (Printf.sprintf "no such job %S" id)
  | Some job ->
    if terminal job then
      Error (Printf.sprintf "job %S already %s" id job.j_status)
    else begin
      set_terminal t job "cancelled";
      append_noted t
        (Ledger.Cancelled { ev_job = id; ev_completed = job.j_completed });
      Ok job.j_completed
    end

let job_json j =
  let js = j.j_spec in
  Printf.sprintf
    "{\"id\":%s,\"tenant\":%s,\"status\":%s,\"completed\":%d,\"total\":%d,\
     \"attempts\":%d,\"dir\":%s%s}"
    ("\"" ^ Mdobs.json_escape js.Ledger.js_id ^ "\"")
    ("\"" ^ Mdobs.json_escape js.Ledger.js_tenant ^ "\"")
    ("\"" ^ Mdobs.json_escape j.j_status ^ "\"")
    j.j_completed js.Ledger.js_steps j.j_attempts
    ("\"" ^ Mdobs.json_escape j.j_dir ^ "\"")
    (match j.j_error with
    | Some e -> ",\"error\":\"" ^ Mdobs.json_escape e ^ "\""
    | None -> "")

let status_json t = function
  | Some id -> (
    match Hashtbl.find_opt t.e_jobs id with
    | None -> Error (Printf.sprintf "no such job %S" id)
    | Some j -> Ok (Printf.sprintf "{\"ok\":true,\"job\":%s}" (job_json j)))
  | None ->
    Ok
      (Printf.sprintf "{\"ok\":true,\"draining\":%b,\"jobs\":[%s]}"
         t.e_draining
         (String.concat "," (List.map job_json (jobs_in_order t))))

let tail t ~job ~limit =
  let path = ledger_path t.e_cfg.cfg_dir in
  let data = if Sys.file_exists path then Ledger.read_file path else "" in
  Ledger.tail_lines data ~job ~limit

let request_drain t = t.e_draining <- true
let draining t = t.e_draining

(* Graceful shutdown: every live job gets a [drained] record — its
   newest checkpoint is already durable, so a later [--resume-queue]
   restart re-adopts it — then the ledger and every lock are released. *)
let shutdown t =
  if not t.e_closed then begin
    t.e_closed <- true;
    List.iter
      (fun j ->
        if not (terminal j) then begin
          append_noted t
            (Ledger.Drained
               { ev_job = j.j_spec.Ledger.js_id;
                 ev_completed = j.j_completed });
          release_job_lock j
        end)
      (jobs_in_order t);
    Ledger.close_writer t.e_ledger;
    Mdckpt.Lock.release t.e_lock
  end

(* Test hook: drop everything on the floor — no drained records, no
   flushes beyond what each append already fsynced — leaving exactly the
   on-disk state a kill -9 would.  (Locks are released only because the
   in-process registry must free them for a restarted engine in the same
   test process; a real SIGKILL releases them as a side effect of
   process death anyway.) *)
let abandon t =
  if not t.e_closed then begin
    t.e_closed <- true;
    List.iter release_job_lock (jobs_in_order t);
    Ledger.close_writer t.e_ledger;
    Mdckpt.Lock.release t.e_lock
  end

(* --- construction and queue resume --- *)

let adopt t (v : Ledger.job_view) =
  let js = v.Ledger.v_spec in
  let id = js.Ledger.js_id in
  let dir = job_dir t id in
  match Mdckpt.Lock.guard_dir ~dir with
  | Error msg ->
    Printf.eprintf "mdsim: serve: cannot adopt job %s: %s\n%!" id msg
  | Ok lk ->
    let job =
      { j_spec = js; j_dir = dir; j_status = "queued"; j_state = None;
        j_cfg = None; j_completed = 0; j_attempts = v.Ledger.v_attempts;
        j_inv_retries = 0; j_eligible = 0.0; j_spent = 0.0;
        j_lock = Some lk; j_error = None }
    in
    (match v.Ledger.v_terminal with
    | Some status ->
      (* already finished before the crash: keep it for status queries,
         release the lock *)
      job.j_status <- status;
      job.j_completed <- v.Ledger.v_completed;
      release_job_lock job;
      add_job t job
    | None ->
      (* Re-adopt at the newest valid checkpoint generation; corrupt or
         torn generations fall back transparently inside load_latest.
         A job killed before generation 0 restarts from scratch. *)
      (match Mdckpt.load_latest ~dir:(ckpt_dir job) with
      | Ok (st, _) ->
        job.j_state <- Some st;
        job.j_completed <- st.Mdckpt.completed
      | Error _ -> ());
      add_job t job;
      append_noted t
        (Ledger.Resumed { ev_job = id; ev_completed = job.j_completed }))

let create cfg =
  let dir = cfg.cfg_dir in
  (match Mdckpt.Lock.guard_dir ~dir with
  | Error msg -> Error (Printf.sprintf "serve dir %s: %s" dir msg)
  | Ok lock ->
    let lpath = ledger_path dir in
    let existing = Sys.file_exists lpath in
    if existing && not cfg.cfg_resume then begin
      Mdckpt.Lock.release lock;
      Error
        (Printf.sprintf
           "%s already has a ledger; restart with --resume-queue to adopt \
            its jobs, or point --dir at a fresh directory"
           dir)
    end
    else begin
      (* Exception safety for the in-process crash sweep: a simulated
         death (or real error) mid-construction must not leave the serve
         lock, job locks, or the ledger fd registered — a revived trial
         reopens the same directory in the same process. *)
      match
        let replay =
          if existing then Ledger.replay_file lpath
          else { Ledger.r_jobs = []; r_next_seq = 0; r_notes = [] }
        in
        List.iter
          (fun note -> Printf.eprintf "mdsim: serve: ledger: %s\n%!" note)
          replay.Ledger.r_notes;
        let t =
          { e_cfg = cfg; e_lock = lock;
            e_ledger =
              Ledger.open_writer ~path:lpath
                ~next_seq:replay.Ledger.r_next_seq;
            e_jobs = Hashtbl.create 16; e_order = []; e_tenants = [];
            e_rr = 0; e_active = None; e_draining = false; e_auto = 0;
            e_closed = false }
        in
        (try List.iter (adopt t) replay.Ledger.r_jobs
         with e ->
           List.iter release_job_lock (jobs_in_order t);
           Ledger.close_writer t.e_ledger;
           raise e);
        t
      with
      | t -> Ok t
      | exception e ->
        Mdckpt.Lock.release lock;
        raise e
    end)
