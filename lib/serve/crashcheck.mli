(** Exhaustive crash-point consistency sweep over the durability stack.

    Every durable write in the daemon flows through {!Mdio}, which
    numbers each I/O operation deterministically.  The sweep runs a
    reference scenario once to learn the operation schedule, then
    replays it once per operation index with a simulated process death
    ({!Mdio.Crashed}) armed at that index, recovers the way the real
    daemon would ([--resume-queue] for serve, [Runner.resume] for
    single-shot runs), and verifies the recovered end state:

    - no acked job is lost and none runs to two terminal records
      (exactly one [submitted] and one [done] per job in the final
      ledger, torn tails truncated at recovery);
    - per-job reports, metrics, and counters converge byte-identically
      with the uninterrupted reference;
    - telemetry streams converge in {!Mdtel.virtual_projection};
    - unacked submissions are re-submitted (the client retry) and
      duplicate acks are impossible.

    Crash indices that land on close operations (counted, never a crash
    point) run through without dying; those trials still verify against
    the reference. *)

type mode =
  | Run    (** single-shot segmented runner: checkpoint save/GC path *)
  | Serve  (** the full daemon: ledger, checkpoints, artifacts, telemetry *)

type cfg = {
  cc_dir : string;      (** scratch root: reference/ + trial-<k>/ *)
  cc_mode : mode;
  cc_jobs : int;        (** serve mode: queue size (two tenants) *)
  cc_atoms : int;
  cc_steps : int;
  cc_every : int;       (** checkpoint segment length *)
  cc_limit : int option;(** sweep only the first [k] op indices *)
  cc_verbose : bool;    (** per-trial progress on stderr *)
}

val default_cfg : dir:string -> cfg
(** Serve mode, 3 jobs, 128 atoms, 12 steps, segment 4 — a few dozen
    I/O ops, small enough to sweep exhaustively in CI. *)

val run : cfg -> (string, string) result
(** Execute the sweep.  [Ok summary] when every trial recovered
    bitwise; [Error msg] names the first failing op index and leaves
    that trial's directory behind for inspection.  Refuses to run under
    an active ambient fault plan (the sweep must own {!Mdio}'s
    schedule).  Resets {!Mdio} counters on exit. *)
