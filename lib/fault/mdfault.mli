(** Deterministic fault injection and recovery for the device simulators.

    The paper's 2007-era devices are exactly the ones that fail in
    practice: Cell DMA engines see CRC errors and mailbox timeouts,
    consumer GPUs have no ECC on VRAM or the PCIe payload, and MTA
    full/empty-bit synchronization can livelock under hot-spot retries.
    This module injects those failure modes {e deterministically}: a
    fault {e plan} (seed + per-site rates) drives a splittable PRNG
    stream per injection site, so the same plan reproduces the identical
    fault sequence — every failure is replayable, across runs and across
    [--domains] pool sizes.

    Sites consult their stream on each vulnerable operation.  Detected
    faults (CRC, PCIe checksum, ECC scrub, mailbox timeout) are retried
    under a configurable retry/backoff {!policy}; the retries accrue
    {e virtual} time (charged by the calling machine model) and
    [fault/*] Mdprof counters.  Silent faults (texture-read bit flips —
    no ECC) corrupt the value and are only recorded.  When a site
    exhausts its retries it raises {!Unrecovered}, which the engine
    layer ({!Mdcore.Verlet} checkpointing, the harness degradation path)
    catches and recovers from.

    With every rate at 0.0 the plan is inert: no draws, no events, no
    registered counters — all existing outputs stay byte-identical.
    Like tracing and profiling, install the plan {e before} creating
    machines; streams made without a plan are permanently inert. *)

(** {1 Sites} *)

type site =
  | Cell_dma       (** SPE DMA transfer fails its CRC; retransmitted. *)
  | Cell_mailbox   (** PPE<->SPE mailbox roundtrip times out; resent. *)
  | Gpu_pcie       (** PCIe upload/readback corrupted or dropped;
                       detected by checksum and retransferred. *)
  | Gpu_texture    (** texture-read bit flip — consumer VRAM has no
                       ECC, so the corruption is silent. *)
  | Mta_retry      (** full/empty-bit hot spot: the sync op spins
                       through a retry storm; a watchdog detects
                       livelock. *)
  | Mem_bitflip    (** DRAM payload bit flip caught by ECC scrub; the
                       line is re-fetched. *)
  | Io_short_write (** [write(2)] persists only a prefix of the buffer
                       (torn record) and the shim reports a failure. *)
  | Io_eio         (** [write(2)] fails with [EIO] before any byte
                       lands — a dying disk or a remounted-ro volume. *)
  | Io_enospc      (** [write(2)] persists a prefix then fails with
                       [ENOSPC] — a filesystem filling up mid-record. *)
  | Io_fsync_fail  (** [fsync(2)] fails with [EIO]: the page cache
                       accepted the bytes but the platter never did. *)
  | Io_rename_fail (** [rename(2)] fails with [EIO]: the atomic commit
                       of a tmp-file rewrite never happens. *)

val device_sites : site list
(** The six device-model sites — what ["all:RATE"] covers. *)

val io_sites : site list
(** The storage sites consulted by the {!Mdio} write-path shim; opt-in
    per site, never part of ["all"]. *)

val all_sites : site list
val site_name : site -> string
(** "cell-dma", "cell-mailbox", "gpu-pcie", "gpu-texture", "mta-retry",
    "mem-bitflip", "io-short-write", "io-eio", "io-enospc",
    "io-fsync-fail", "io-rename-fail". *)

val site_of_name : string -> site option

(** {1 Plans} *)

type policy = {
  max_retries : int;        (** retries per faulted operation (and
                                checkpointed step re-executions) before
                                declaring it unrecovered *)
  base_backoff_s : float;   (** virtual seconds before the first retry *)
  backoff_multiplier : float;  (** exponential backoff factor *)
  watchdog_limit : int;     (** consecutive faulted sync ops before the
                                MTA livelock watchdog fires *)
}

val default_policy : policy
(** 4 retries, 1 us base backoff, x2 multiplier, watchdog at 64. *)

type spec = {
  seed : int;
  rates : (site * float) list;  (** per-operation fault probability;
                                    absent sites are 0.0 *)
  policy : policy;
  io_crash_at : int option;
      (** simulated process death at the k-th {!Mdio} op (0-based):
          the op applies its torn-write prefix (writes only), then the
          shim goes dead — every later op is silently dropped, exactly
          as kill -9 mid-syscall would leave the filesystem.  A process-
          lifetime property: {!capture_state} clears it, so a resumed
          run never re-crashes at the recorded op. *)
}

val parse_spec : string -> (spec, string) result
(** SPEC grammar (comma-separated items, validated — negative, NaN or
    out-of-range rates are rejected with a one-line error):

    {v item := SITE ":" RATE     per-site fault probability in [0,1]
            | "all" ":" RATE     every device site at once (storage
                                 sites are opt-in per site)
            | "seed" "=" INT     plan seed (default 42)
            | "retries" "=" INT  policy.max_retries (>= 0)
            | "backoff" "=" SECS policy.base_backoff_s (>= 0, finite)
            | "watchdog" "=" INT policy.watchdog_limit (> 0)
            | "io-crash-point" "=" INT  die at the k-th I/O op (>= 0) v}

    e.g. ["all:1e-3"], ["cell-dma:0.01,gpu-pcie:0.005,seed=7"],
    ["io-fsync-fail:0.05,io-enospc:0.02,seed=11"]. *)

val spec_to_string : spec -> string
(** Canonical one-line form of [spec], parseable by {!parse_spec} (e.g.
    ["seed=7,retries=4,backoff=1e-06,watchdog=64,cell-dma:0.001"]).
    Zero rates are omitted; [backoff_multiplier] is not representable in
    the grammar and must stay at its default for exact round-trips. *)

val install : spec -> unit
(** Make [spec] the active plan (replacing any previous plan and its
    event log).  Install before creating machines. *)

val uninstall : unit -> unit
val active : unit -> bool
val current_spec : unit -> spec option

val step_retries : unit -> int
(** [policy.max_retries] of the active plan, 0 when inactive — how many
    times the engine layer re-executes a checkpointed step. *)

val with_suspended : (unit -> 'a) -> 'a
(** Run [f] with injection suspended {e on this domain} (streams fire
    nothing and draw nothing).  The harness degradation path uses this
    to fall back to the fault-free reference behaviour without
    disturbing experiments running concurrently on other domains. *)

(** {1 Failures} *)

type failure = {
  f_site : site;
  f_stream : string;
  f_attempts : int;   (** attempts made, including the first *)
  f_detail : string;
}

exception Unrecovered of failure
(** Raised by a site once [policy.max_retries] retries are exhausted
    (or by the MTA livelock watchdog).  A [Printexc] printer is
    registered. *)

val failure_message : failure -> string

(** {1 Streams}

    One stream per (machine instance, site): named
    [<Mdobs scope>/<base>:<site>], get-or-create, with an independent
    PRNG derived from the plan seed and the full name — so the draw
    sequence at one site never perturbs another, and scoped names make
    the event log independent of which pool worker ran the machine. *)

type stream

val stream : site -> string -> stream
(** [stream site base] registers (or finds) the stream for [site] under
    the current {!Mdobs.current_scope}.  Inert when no plan is active or
    the site's rate is 0.0. *)

val inert : stream -> bool
(** True when the stream can never fire — the zero-cost fast-path guard
    for hot call sites. *)

val attempt : stream -> detail:(unit -> string) -> int * float
(** The detected-fault retry site.  Draws once per attempt: returns
    [(failures, backoff_s)] where [failures] is the number of faulted
    attempts before the operation succeeded (0 = clean; the caller
    charges [failures] re-executions plus [backoff_s] of virtual time)
    — or raises {!Unrecovered} when [max_retries] retries all fault.
    Records one event and bumps counters when [failures > 0]. *)

val storm : stream -> detail:(unit -> string) -> int * float
(** The MTA retry-storm site.  Returns [(extra_retries, backoff_s)]:
    0 extra ops when clean, otherwise a drawn storm of hot-spot
    retries.  Tracks consecutive faulted ops and raises {!Unrecovered}
    (livelock) once [policy.watchdog_limit] in a row have stormed. *)

val fire : stream -> bool
(** One raw draw (false when inert or suspended) — for silent-fault
    sites that corrupt data instead of retrying. *)

val draw_int : stream -> int -> int
(** Deterministic uniform draw in [\[0, n)] from the stream's PRNG (0
    when inert) — picks the corrupted lane/bit. *)

val record_silent : stream -> detail:(unit -> string) -> unit
(** Record a silent-corruption event after {!fire} returned true. *)

val note_recovered_step : unit -> unit
(** Called by the engine layer when a checkpointed step re-execution
    succeeded after a device failure. *)

val note_guard_restore : unit -> unit
(** Called by the invariant guard ({!Mdcore.Verlet}) when a violated
    physics invariant forced a restore from the newest valid snapshot.
    Tracked globally (guards also run without a fault plan) and kept out
    of {!summary} so existing fault-log bytes are unchanged. *)

val guard_restores : unit -> int
val set_guard_restores : int -> unit
(** Restore the global guard-restore count (checkpoint resume). *)

(** {1 Event log and summaries} *)

type event = {
  e_site : site;
  e_stream : string;
  e_index : int;       (** per-stream fault ordinal *)
  e_attempts : int;    (** faulted attempts (0 for silent faults) *)
  e_recovered : bool;  (** false for unrecovered / silent corruption *)
  e_detail : string;
}

type summary = {
  injected : int;
  retries : int;
  recoveries : int;
  unrecovered : int;
  backoff_seconds : float;
  recovered_steps : int;  (** checkpointed step re-executions that
                              succeeded (global; 0 under [?prefix]) *)
}

val summary : ?prefix:string -> unit -> summary
(** Totals over streams whose name starts with [prefix] (all streams
    when omitted). *)

val events : ?prefix:string -> unit -> event list
(** Deterministic order: streams by name, events by index — the
    replayable fault sequence. *)

val events_string : ?prefix:string -> unit -> string
(** Canonical one-line-per-event dump — the byte-identical artifact the
    determinism tests compare across runs and pool sizes. *)

val events_json : unit -> string
(** Fault log as JSON (schema ["mdsim-faults-v1"]): the spec that
    produced it, every event, and the summary. *)

val summary_line : summary -> string
(** e.g. "faults: 12 injected, 15 retries, 12 recovered, 0 unrecovered,
    3 step restores, 31.00 us virtual backoff". *)

(** {1 Checkpointable state}

    A fault plan is live mutable state — per-stream PRNG positions,
    counters and event logs.  [capture_state]/[restore_state] snapshot
    and reinstate all of it, so a resumed run replays the exact fault
    sequence an uninterrupted run would have seen. *)

type stream_state = {
  ss_name : string;
  ss_site : site;
  ss_rate : float;
  ss_rng : Sim_util.Rng.state option;  (** [None] = permanently inert *)
  ss_events : event list;              (** newest first, as stored *)
  ss_event_count : int;
  ss_injected : int;
  ss_retries : int;
  ss_recoveries : int;
  ss_unrecovered : int;
  ss_backoff_s : float;
  ss_consecutive : int;
}

type state = {
  cs_spec : spec;
  cs_streams : stream_state list;  (** sorted by name *)
  cs_recovered_steps : int;
}

val capture_state : unit -> state option
(** Snapshot the active plan and every registered stream ([None] when no
    plan is installed). *)

val restore_state : state -> unit
(** Install [cs_spec] as the active plan and repopulate its streams —
    PRNG positions, counters, event logs — exactly as captured. *)
