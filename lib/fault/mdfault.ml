module Rng = Sim_util.Rng

(* ------------------------------------------------------------------ *)
(* Sites                                                               *)
(* ------------------------------------------------------------------ *)

type site =
  | Cell_dma
  | Cell_mailbox
  | Gpu_pcie
  | Gpu_texture
  | Mta_retry
  | Mem_bitflip
  | Io_short_write
  | Io_eio
  | Io_enospc
  | Io_fsync_fail
  | Io_rename_fail

let device_sites =
  [ Cell_dma; Cell_mailbox; Gpu_pcie; Gpu_texture; Mta_retry; Mem_bitflip ]

let io_sites =
  [ Io_short_write; Io_eio; Io_enospc; Io_fsync_fail; Io_rename_fail ]

let all_sites = device_sites @ io_sites

let site_name = function
  | Cell_dma -> "cell-dma"
  | Cell_mailbox -> "cell-mailbox"
  | Gpu_pcie -> "gpu-pcie"
  | Gpu_texture -> "gpu-texture"
  | Mta_retry -> "mta-retry"
  | Mem_bitflip -> "mem-bitflip"
  | Io_short_write -> "io-short-write"
  | Io_eio -> "io-eio"
  | Io_enospc -> "io-enospc"
  | Io_fsync_fail -> "io-fsync-fail"
  | Io_rename_fail -> "io-rename-fail"

let site_of_name name =
  List.find_opt (fun s -> site_name s = name) all_sites

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

type policy = {
  max_retries : int;
  base_backoff_s : float;
  backoff_multiplier : float;
  watchdog_limit : int;
}

let default_policy =
  { max_retries = 4;
    base_backoff_s = 1e-6;
    backoff_multiplier = 2.0;
    watchdog_limit = 64 }

type spec = {
  seed : int;
  rates : (site * float) list;
  policy : policy;
  io_crash_at : int option;
      (* simulated process death at the k-th Mdio op (0-based); a
         process-lifetime property, never checkpointed *)
}

let spec_rate spec site =
  match List.assoc_opt site spec.rates with Some r -> r | None -> 0.0

let parse_spec text =
  let ( let* ) = Result.bind in
  let parse_item acc item =
    let* seed, rates, policy, crash = acc in
    let item = String.trim item in
    if item = "" then Error "empty item in fault spec"
    else
      match String.index_opt item '=' with
      | Some i ->
        let key = String.trim (String.sub item 0 i) in
        let v = String.trim (String.sub item (i + 1) (String.length item - i - 1)) in
        begin
          match key with
          | "seed" -> begin
            match int_of_string_opt v with
            | Some s -> Ok (s, rates, policy, crash)
            | None -> Error (Printf.sprintf "seed=%s is not an integer" v)
          end
          | "retries" -> begin
            match int_of_string_opt v with
            | Some r when r >= 0 ->
              Ok (seed, rates, { policy with max_retries = r }, crash)
            | _ -> Error (Printf.sprintf "retries=%s must be a non-negative integer" v)
          end
          | "backoff" -> begin
            match float_of_string_opt v with
            | Some b when Float.is_finite b && b >= 0.0 ->
              Ok (seed, rates, { policy with base_backoff_s = b }, crash)
            | _ -> Error (Printf.sprintf "backoff=%s must be a finite non-negative number of seconds" v)
          end
          | "watchdog" -> begin
            match int_of_string_opt v with
            | Some w when w > 0 ->
              Ok (seed, rates, { policy with watchdog_limit = w }, crash)
            | _ -> Error (Printf.sprintf "watchdog=%s must be a positive integer" v)
          end
          | "io-crash-point" -> begin
            match int_of_string_opt v with
            | Some k when k >= 0 -> Ok (seed, rates, policy, Some k)
            | _ ->
              Error
                (Printf.sprintf
                   "io-crash-point=%s must be a non-negative I/O-op index" v)
          end
          | _ -> Error (Printf.sprintf "unknown fault option %S" key)
        end
      | None -> begin
        match String.index_opt item ':' with
        | None ->
          Error
            (Printf.sprintf
               "%S is not SITE:RATE or KEY=VALUE (sites: %s, all)" item
               (String.concat ", " (List.map site_name all_sites)))
        | Some i ->
          let name = String.trim (String.sub item 0 i) in
          let v = String.trim (String.sub item (i + 1) (String.length item - i - 1)) in
          let* rate =
            match float_of_string_opt v with
            | Some r when Float.is_finite r && r >= 0.0 && r <= 1.0 -> Ok r
            | _ ->
              Error
                (Printf.sprintf
                   "fault rate %S for %s must be a finite number in [0, 1]" v
                   name)
          in
          let* sites =
            (* "all" covers the device sites only: storage faults are
               opt-in per site, so existing all:RATE plans keep their
               exact historical meaning (and bytes). *)
            if name = "all" then Ok device_sites
            else
              match site_of_name name with
              | Some s -> Ok [ s ]
              | None ->
                Error
                  (Printf.sprintf "unknown fault site %S (sites: %s, all)" name
                     (String.concat ", " (List.map site_name all_sites)))
          in
          let rates =
            List.fold_left
              (fun rates s -> (s, rate) :: List.remove_assoc s rates)
              rates sites
          in
          Ok (seed, rates, policy, crash)
      end
  in
  let items = String.split_on_char ',' text in
  let* seed, rates, policy, io_crash_at =
    List.fold_left parse_item (Ok (42, [], default_policy, None)) items
  in
  Ok { seed; rates; policy; io_crash_at }

(* Canonical spec text: parseable by [parse_spec] and stable for a given
   spec, so checkpoints can persist the active plan as one line.  Only
   nonzero rates are emitted; sites keep [all_sites] order. *)
let spec_to_string spec =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "seed=%d,retries=%d,backoff=%.17g,watchdog=%d" spec.seed
       spec.policy.max_retries spec.policy.base_backoff_s
       spec.policy.watchdog_limit);
  (match spec.io_crash_at with
  | Some k -> Buffer.add_string buf (Printf.sprintf ",io-crash-point=%d" k)
  | None -> ());
  List.iter
    (fun site ->
      let r = spec_rate spec site in
      if r > 0.0 then
        Buffer.add_string buf
          (Printf.sprintf ",%s:%.17g" (site_name site) r))
    all_sites;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Failures                                                            *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_site : site;
  f_stream : string;
  f_attempts : int;
  f_detail : string;
}

exception Unrecovered of failure

let failure_message f =
  Printf.sprintf "unrecovered %s fault at %s after %d attempts: %s"
    (site_name f.f_site) f.f_stream f.f_attempts f.f_detail

let () =
  Printexc.register_printer (function
    | Unrecovered f -> Some ("Mdfault.Unrecovered: " ^ failure_message f)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Streams and the active plan                                         *)
(* ------------------------------------------------------------------ *)

type event = {
  e_site : site;
  e_stream : string;
  e_index : int;
  e_attempts : int;
  e_recovered : bool;
  e_detail : string;
}

(* Bounded per-stream event log: a rate-1.0 stress run must not grow
   without bound.  The cap is deterministic, so capped logs still
   compare byte-identical across runs. *)
let max_events_per_stream = 10_000

type stream = {
  st_site : site;
  st_name : string;
  st_rate : float;
  st_rng : Rng.t option;  (* None = permanently inert *)
  st_policy : policy;
  mutable st_events : event list;  (* newest first *)
  mutable st_event_count : int;
  mutable st_injected : int;
  mutable st_retries : int;
  mutable st_recoveries : int;
  mutable st_unrecovered : int;
  mutable st_backoff_s : float;
  mutable st_consecutive : int;  (* consecutive faulted sync ops *)
}

let make_stream ?rng ?(policy = default_policy) ~site ~name ~rate () =
  { st_site = site;
    st_name = name;
    st_rate = rate;
    st_rng = rng;
    st_policy = policy;
    st_events = [];
    st_event_count = 0;
    st_injected = 0;
    st_retries = 0;
    st_recoveries = 0;
    st_unrecovered = 0;
    st_backoff_s = 0.0;
    st_consecutive = 0 }

type plan = {
  spec : spec;
  streams : (string, stream) Hashtbl.t;
  plan_mutex : Mutex.t;
  recovered_steps : int Atomic.t;
}

let current : plan option Atomic.t = Atomic.make None

let install spec =
  Atomic.set current
    (Some
       { spec;
         streams = Hashtbl.create 16;
         plan_mutex = Mutex.create ();
         recovered_steps = Atomic.make 0 })

let uninstall () = Atomic.set current None
let active () = Atomic.get current <> None

let current_spec () =
  Option.map (fun p -> p.spec) (Atomic.get current)

let step_retries () =
  match Atomic.get current with
  | Some p -> p.spec.policy.max_retries
  | None -> 0

(* Per-domain suspension: the harness degradation path re-runs a failed
   experiment fault-free without disturbing other pool workers. *)
let suspended_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let with_suspended f =
  let saved = Domain.DLS.get suspended_key in
  Domain.DLS.set suspended_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set suspended_key saved) f

let suspended () = Domain.DLS.get suspended_key

(* Stream PRNG seed: FNV-1a of the full scoped name mixed with the plan
   seed — each site instance gets an independent, reproducible stream. *)
let hash_name name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code ch)))
          0x100000001b3L)
    name;
  !h

let seed_for spec name =
  Int64.to_int
    (Int64.logxor (hash_name name)
       (Int64.mul (Int64.of_int spec.seed) 0x9E3779B97F4A7C15L))

let stream site base =
  match Atomic.get current with
  | None -> make_stream ~site ~name:base ~rate:0.0 ()
  | Some plan ->
    let scope = Mdobs.current_scope () in
    let scoped = if scope = "" then base else scope ^ "/" ^ base in
    let name = scoped ^ ":" ^ site_name site in
    let rate = spec_rate plan.spec site in
    if rate <= 0.0 then make_stream ~site ~name ~rate:0.0 ()
    else begin
      Mutex.lock plan.plan_mutex;
      let st =
        match Hashtbl.find_opt plan.streams name with
        | Some st -> st
        | None ->
          let st =
            make_stream
              ~rng:(Rng.create (seed_for plan.spec name))
              ~policy:plan.spec.policy ~site ~name ~rate ()
          in
          Hashtbl.add plan.streams name st;
          st
      in
      Mutex.unlock plan.plan_mutex;
      st
    end

let inert st = st.st_rng = None

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

(* Mdprof counters are created lazily at the first event under the
   current scope, so a zero-event run exports byte-identical counter
   profiles.  Events are rare, so the get-or-create cost is fine. *)
let bump_prof st ~injected ~retries ~recoveries ~unrecovered ~backoff =
  if Mdprof.enabled () then begin
    let c ?unit_ suffix =
      Mdprof.counter ?unit_ ~clock:Mdprof.Virtual
        (Printf.sprintf "fault/%s/%s" (site_name st.st_site) suffix)
    in
    if injected > 0 then Mdprof.add (c "faults_injected") injected;
    if retries > 0 then Mdprof.add (c "retries") retries;
    if recoveries > 0 then Mdprof.add (c "recoveries") recoveries;
    if unrecovered > 0 then Mdprof.add (c "unrecovered") unrecovered;
    if backoff > 0.0 then
      Mdprof.add_f (c ~unit_:"s" "backoff_virtual_seconds") backoff
  end

let record st ~attempts ~recovered ~detail =
  let ev =
    { e_site = st.st_site;
      e_stream = st.st_name;
      e_index = st.st_event_count;
      e_attempts = attempts;
      e_recovered = recovered;
      e_detail = detail () }
  in
  if st.st_event_count < max_events_per_stream then
    st.st_events <- ev :: st.st_events;
  st.st_event_count <- st.st_event_count + 1

let backoff_seconds policy k =
  policy.base_backoff_s *. (policy.backoff_multiplier ** float_of_int k)

(* ------------------------------------------------------------------ *)
(* Injection primitives                                                *)
(* ------------------------------------------------------------------ *)

let fire st =
  match st.st_rng with
  | None -> false
  | Some rng -> if suspended () then false else Rng.float rng < st.st_rate

let draw_int st n =
  match st.st_rng with None -> 0 | Some rng -> Rng.int_below rng n

let attempt st ~detail =
  match st.st_rng with
  | None -> (0, 0.0)
  | Some _ when suspended () -> (0, 0.0)
  | Some _ ->
    let p = st.st_policy in
    let rec go failures backoff =
      if not (fire st) then (failures, backoff)
      else if failures >= p.max_retries then begin
        (* this fault exhausted the retry budget *)
        let attempts = failures + 1 in
        st.st_injected <- st.st_injected + attempts;
        st.st_retries <- st.st_retries + failures;
        st.st_unrecovered <- st.st_unrecovered + 1;
        st.st_backoff_s <- st.st_backoff_s +. backoff;
        record st ~attempts ~recovered:false ~detail;
        bump_prof st ~injected:attempts ~retries:failures ~recoveries:0
          ~unrecovered:1 ~backoff;
        raise
          (Unrecovered
             { f_site = st.st_site;
               f_stream = st.st_name;
               f_attempts = attempts;
               f_detail = detail () })
      end
      else go (failures + 1) (backoff +. backoff_seconds p failures)
    in
    let failures, backoff = go 0 0.0 in
    if failures > 0 then begin
      st.st_injected <- st.st_injected + failures;
      st.st_retries <- st.st_retries + failures;
      st.st_recoveries <- st.st_recoveries + 1;
      st.st_backoff_s <- st.st_backoff_s +. backoff;
      record st ~attempts:failures ~recovered:true ~detail;
      bump_prof st ~injected:failures ~retries:failures ~recoveries:1
        ~unrecovered:0 ~backoff
    end;
    (failures, backoff)

let storm st ~detail =
  match st.st_rng with
  | None -> (0, 0.0)
  | Some _ when suspended () -> (0, 0.0)
  | Some _ ->
    if not (fire st) then begin
      st.st_consecutive <- 0;
      (0, 0.0)
    end
    else begin
      let p = st.st_policy in
      st.st_consecutive <- st.st_consecutive + 1;
      if st.st_consecutive >= p.watchdog_limit then begin
        let attempts = st.st_consecutive in
        (* reset so a checkpointed re-execution starts a fresh window *)
        st.st_consecutive <- 0;
        st.st_injected <- st.st_injected + 1;
        st.st_unrecovered <- st.st_unrecovered + 1;
        record st ~attempts ~recovered:false ~detail;
        bump_prof st ~injected:1 ~retries:0 ~recoveries:0 ~unrecovered:1
          ~backoff:0.0;
        raise
          (Unrecovered
             { f_site = st.st_site;
               f_stream = st.st_name;
               f_attempts = attempts;
               f_detail = "livelock watchdog: " ^ detail () })
      end;
      let extra = 1 + draw_int st 15 in
      let backoff = ref 0.0 in
      for k = 0 to extra - 1 do
        backoff := !backoff +. backoff_seconds p k
      done;
      st.st_injected <- st.st_injected + 1;
      st.st_retries <- st.st_retries + extra;
      st.st_recoveries <- st.st_recoveries + 1;
      st.st_backoff_s <- st.st_backoff_s +. !backoff;
      record st ~attempts:extra ~recovered:true ~detail;
      bump_prof st ~injected:1 ~retries:extra ~recoveries:1 ~unrecovered:0
        ~backoff:!backoff;
      (extra, !backoff)
    end

let record_silent st ~detail =
  st.st_injected <- st.st_injected + 1;
  record st ~attempts:0 ~recovered:false ~detail;
  bump_prof st ~injected:1 ~retries:0 ~recoveries:0 ~unrecovered:0 ~backoff:0.0

(* Guard restores are tracked globally (not per plan): the invariant
   guard also runs without any fault plan installed, and keeping the
   counter out of [summary] preserves the byte layout of existing
   summaries and fault logs. *)
let guard_restore_count = Atomic.make 0

let note_guard_restore () =
  Atomic.incr guard_restore_count;
  if Mdprof.enabled () then
    Mdprof.incr (Mdprof.counter ~clock:Mdprof.Virtual "fault/guard_restores")

let guard_restores () = Atomic.get guard_restore_count
let set_guard_restores n = Atomic.set guard_restore_count n

let note_recovered_step () =
  match Atomic.get current with
  | None -> ()
  | Some plan ->
    Atomic.incr plan.recovered_steps;
    if Mdprof.enabled () then
      Mdprof.incr (Mdprof.counter ~clock:Mdprof.Virtual "fault/step_recoveries")

(* ------------------------------------------------------------------ *)
(* Checkpointable state                                                *)
(* ------------------------------------------------------------------ *)

type stream_state = {
  ss_name : string;
  ss_site : site;
  ss_rate : float;
  ss_rng : Rng.state option;
  ss_events : event list;  (* newest first, as stored *)
  ss_event_count : int;
  ss_injected : int;
  ss_retries : int;
  ss_recoveries : int;
  ss_unrecovered : int;
  ss_backoff_s : float;
  ss_consecutive : int;
}

type state = {
  cs_spec : spec;
  cs_streams : stream_state list;  (* sorted by name *)
  cs_recovered_steps : int;
}

let capture_state () =
  match Atomic.get current with
  | None -> None
  | Some plan ->
    Mutex.lock plan.plan_mutex;
    let streams = Hashtbl.fold (fun _ st acc -> st :: acc) plan.streams [] in
    Mutex.unlock plan.plan_mutex;
    let capture st =
      { ss_name = st.st_name;
        ss_site = st.st_site;
        ss_rate = st.st_rate;
        ss_rng = Option.map Rng.state st.st_rng;
        ss_events = st.st_events;
        ss_event_count = st.st_event_count;
        ss_injected = st.st_injected;
        ss_retries = st.st_retries;
        ss_recoveries = st.st_recoveries;
        ss_unrecovered = st.st_unrecovered;
        ss_backoff_s = st.st_backoff_s;
        ss_consecutive = st.st_consecutive }
    in
    let streams =
      streams
      |> List.sort (fun a b -> compare a.st_name b.st_name)
      |> List.map capture
    in
    Some
      (* [io_crash_at] is a property of this process's lifetime (the
         simulated kill), not of the simulation: a resumed run must not
         re-crash at the recorded op, so the capture clears it. *)
      { cs_spec = { plan.spec with io_crash_at = None };
        cs_streams = streams;
        cs_recovered_steps = Atomic.get plan.recovered_steps }

let restore_state cs =
  install cs.cs_spec;
  match Atomic.get current with
  | None -> assert false
  | Some plan ->
    Atomic.set plan.recovered_steps cs.cs_recovered_steps;
    Mutex.lock plan.plan_mutex;
    List.iter
      (fun ss ->
        let st =
          { st_site = ss.ss_site;
            st_name = ss.ss_name;
            st_rate = ss.ss_rate;
            st_rng = Option.map Rng.of_state ss.ss_rng;
            st_policy = cs.cs_spec.policy;
            st_events = ss.ss_events;
            st_event_count = ss.ss_event_count;
            st_injected = ss.ss_injected;
            st_retries = ss.ss_retries;
            st_recoveries = ss.ss_recoveries;
            st_unrecovered = ss.ss_unrecovered;
            st_backoff_s = ss.ss_backoff_s;
            st_consecutive = ss.ss_consecutive }
        in
        Hashtbl.replace plan.streams ss.ss_name st)
      cs.cs_streams;
    Mutex.unlock plan.plan_mutex

(* ------------------------------------------------------------------ *)
(* Event log and summaries                                             *)
(* ------------------------------------------------------------------ *)

type summary = {
  injected : int;
  retries : int;
  recoveries : int;
  unrecovered : int;
  backoff_seconds : float;
  recovered_steps : int;
}

let sorted_streams ?(prefix = "") plan =
  Mutex.lock plan.plan_mutex;
  let all = Hashtbl.fold (fun _ st acc -> st :: acc) plan.streams [] in
  Mutex.unlock plan.plan_mutex;
  all
  |> List.filter (fun st -> String.starts_with ~prefix st.st_name)
  |> List.sort (fun a b -> compare a.st_name b.st_name)

let summary ?prefix () =
  match Atomic.get current with
  | None ->
    { injected = 0; retries = 0; recoveries = 0; unrecovered = 0;
      backoff_seconds = 0.0; recovered_steps = 0 }
  | Some plan ->
    let streams = sorted_streams ?prefix plan in
    let acc =
      List.fold_left
        (fun acc st ->
          { acc with
            injected = acc.injected + st.st_injected;
            retries = acc.retries + st.st_retries;
            recoveries = acc.recoveries + st.st_recoveries;
            unrecovered = acc.unrecovered + st.st_unrecovered;
            backoff_seconds = acc.backoff_seconds +. st.st_backoff_s })
        { injected = 0; retries = 0; recoveries = 0; unrecovered = 0;
          backoff_seconds = 0.0; recovered_steps = 0 }
        streams
    in
    if prefix = None then
      { acc with recovered_steps = Atomic.get plan.recovered_steps }
    else acc

let events ?prefix () =
  match Atomic.get current with
  | None -> []
  | Some plan ->
    sorted_streams ?prefix plan
    |> List.concat_map (fun st -> List.rev st.st_events)

let events_string ?prefix () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s #%d attempts=%d %s %s\n" (site_name e.e_site)
           e.e_stream e.e_index e.e_attempts
           (if e.e_recovered then "recovered" else "not-recovered")
           e.e_detail))
    (events ?prefix ());
  Buffer.contents buf

let summary_line s =
  Printf.sprintf
    "faults: %d injected, %d retries, %d recovered, %d unrecovered, %d step \
     restores, %.2f us virtual backoff"
    s.injected s.retries s.recoveries s.unrecovered s.recovered_steps
    (s.backoff_seconds *. 1e6)

let events_json () =
  let esc = Mdobs.json_escape in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n\"schema\":\"mdsim-faults-v1\"";
  (match current_spec () with
  | Some spec ->
    Buffer.add_string buf (Printf.sprintf ",\n\"seed\":%d,\n\"rates\":{" spec.seed);
    (* Device sites print unconditionally (the historical byte layout);
       storage sites are opt-in and appear only when armed. *)
    let printed =
      device_sites @ List.filter (fun s -> spec_rate spec s > 0.0) io_sites
    in
    List.iteri
      (fun i site ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":%.17g" (site_name site) (spec_rate spec site)))
      printed;
    Buffer.add_string buf
      (Printf.sprintf
         "},\n\"policy\":{\"max_retries\":%d,\"base_backoff_s\":%.17g,\"backoff_multiplier\":%.17g,\"watchdog_limit\":%d}"
         spec.policy.max_retries spec.policy.base_backoff_s
         spec.policy.backoff_multiplier spec.policy.watchdog_limit)
  | None -> ());
  Buffer.add_string buf ",\n\"events\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n{\"site\":\"%s\",\"stream\":\"%s\",\"index\":%d,\"attempts\":%d,\"recovered\":%b,\"detail\":\"%s\"}"
           (site_name e.e_site) (esc e.e_stream) e.e_index e.e_attempts
           e.e_recovered (esc e.e_detail)))
    (events ());
  let s = summary () in
  Buffer.add_string buf
    (Printf.sprintf
       "\n],\n\"summary\":{\"injected\":%d,\"retries\":%d,\"recoveries\":%d,\"unrecovered\":%d,\"backoff_seconds\":%.17g,\"recovered_steps\":%d}\n}\n"
       s.injected s.retries s.recoveries s.unrecovered s.backoff_seconds
       s.recovered_steps);
  Buffer.contents buf
