type t = {
  page_bits : int;
  entries : int;
  miss_cycles : int;
  (* page number -> last-use stamp *)
  resident : (int, int) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  prof_hits : Mdprof.counter option;
  prof_misses : Mdprof.counter option;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 n

let create ?(page_bytes = 4096) ?(entries = 32) ?(miss_cycles = 25) () =
  if not (is_pow2 page_bytes) then
    invalid_arg "Tlb.create: page_bytes must be a power of two";
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  if miss_cycles < 0 then invalid_arg "Tlb.create: negative miss cost";
  let prof name =
    if Mdprof.enabled () then Some (Mdprof.counter ~clock:Mdprof.Virtual name)
    else None
  in
  { page_bits = log2 page_bytes; entries; miss_cycles;
    resident = Hashtbl.create 64; clock = 0; hits = 0; misses = 0;
    prof_hits = prof "mem/tlb_hits"; prof_misses = prof "mem/tlb_misses" }

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun page stamp ->
      match !victim with
      | Some (_, s) when s <= stamp -> ()
      | _ -> victim := Some (page, stamp))
    t.resident;
  match !victim with
  | Some (page, _) -> Hashtbl.remove t.resident page
  | None -> ()

let access t addr =
  if addr < 0 then invalid_arg "Tlb.access: negative address";
  let page = addr lsr t.page_bits in
  t.clock <- t.clock + 1;
  if Hashtbl.mem t.resident page then begin
    Hashtbl.replace t.resident page t.clock;
    t.hits <- t.hits + 1;
    (match t.prof_hits with Some c -> Mdprof.incr c | None -> ());
    0
  end
  else begin
    if Hashtbl.length t.resident >= t.entries then evict_lru t;
    Hashtbl.replace t.resident page t.clock;
    t.misses <- t.misses + 1;
    (match t.prof_misses with Some c -> Mdprof.incr c | None -> ());
    t.miss_cycles
  end

let hits t = t.hits
let misses t = t.misses

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

let reach_bytes t = t.entries * (1 lsl t.page_bits)

let flush t =
  Hashtbl.reset t.resident;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0
