type config = {
  l1_line_bytes : int;
  l1_sets : int;
  l1_ways : int;
  l1_hit_cycles : int;
  l2_line_bytes : int;
  l2_sets : int;
  l2_ways : int;
  l2_hit_cycles : int;
  dram_cycles : int;
}

(* Per-level virtual PMU counters (see DESIGN.md, "Profiling").
   Registered at creation under the current Mdobs scope; None when
   profiling is disabled so the hot access path stays branch-plus-load
   cheap. *)
type prof_set = {
  p_l1_hits : Mdprof.counter;
  p_l1_misses : Mdprof.counter;
  p_l2_hits : Mdprof.counter;
  p_l2_misses : Mdprof.counter;
  p_dram_accesses : Mdprof.counter;
}

type t = {
  cfg : config;
  l1 : Cache.t;
  l2 : Cache.t;
  mutable total_cycles : int;
  prof : prof_set option;
  ft_bitflip : Mdfault.stream;  (* ECC-scrubbed payload flip -> refetch *)
}

(* AMD K8: 64 KB L1D, 2-way, 64 B lines => 512 sets.
   1 MB L2, 16-way, 64 B lines => 1024 sets. *)
let opteron_2_2ghz =
  { l1_line_bytes = 64; l1_sets = 512; l1_ways = 2; l1_hit_cycles = 3;
    l2_line_bytes = 64; l2_sets = 1024; l2_ways = 16; l2_hit_cycles = 12;
    dram_cycles = 200 }

let make_prof () =
  if not (Mdprof.enabled ()) then None
  else
    let c name = Mdprof.counter ~clock:Mdprof.Virtual name in
    Some
      {
        p_l1_hits = c "mem/l1_hits";
        p_l1_misses = c "mem/l1_misses";
        p_l2_hits = c "mem/l2_hits";
        p_l2_misses = c "mem/l2_misses";
        p_dram_accesses = c "mem/dram_accesses";
      }

let create cfg =
  { cfg;
    l1 = Cache.create ~line_bytes:cfg.l1_line_bytes ~sets:cfg.l1_sets
           ~ways:cfg.l1_ways;
    l2 = Cache.create ~line_bytes:cfg.l2_line_bytes ~sets:cfg.l2_sets
           ~ways:cfg.l2_ways;
    total_cycles = 0;
    prof = make_prof ();
    ft_bitflip = Mdfault.stream Mdfault.Mem_bitflip "mem" }

let config t = t.cfg

let access t addr =
  let cost =
    match Cache.access t.l1 addr with
    | Cache.Hit ->
      (match t.prof with
      | Some p -> Mdprof.incr p.p_l1_hits
      | None -> ());
      t.cfg.l1_hit_cycles
    | Cache.Miss -> (
      match Cache.access t.l2 addr with
      | Cache.Hit ->
        (match t.prof with
        | Some p ->
            Mdprof.incr p.p_l1_misses;
            Mdprof.incr p.p_l2_hits
        | None -> ());
        t.cfg.l1_hit_cycles + t.cfg.l2_hit_cycles
      | Cache.Miss ->
        (match t.prof with
        | Some p ->
            Mdprof.incr p.p_l1_misses;
            Mdprof.incr p.p_l2_misses;
            Mdprof.incr p.p_dram_accesses
        | None -> ());
        t.cfg.l1_hit_cycles + t.cfg.l2_hit_cycles + t.cfg.dram_cycles)
  in
  (* An ECC scrub catching a flipped payload bit re-fetches the line
     from DRAM; each faulted attempt costs one more DRAM roundtrip. *)
  let cost =
    if Mdfault.inert t.ft_bitflip then cost
    else
      let failures, _backoff =
        Mdfault.attempt t.ft_bitflip ~detail:(fun () ->
            Printf.sprintf "ecc scrub at addr %d" addr)
      in
      cost + (failures * t.cfg.dram_cycles)
  in
  t.total_cycles <- t.total_cycles + cost;
  cost

let l1_miss_rate t = Cache.miss_rate t.l1
let l2_miss_rate t = Cache.miss_rate t.l2
let accesses t = Cache.accesses t.l1
let total_cycles t = t.total_cycles

let average_cycles t =
  let n = accesses t in
  if n = 0 then 0.0 else float_of_int t.total_cycles /. float_of_int n

let reset_stats t =
  Cache.reset_stats t.l1;
  Cache.reset_stats t.l2;
  t.total_cycles <- 0

let flush t =
  Cache.flush t.l1;
  Cache.flush t.l2;
  t.total_cycles <- 0
