(** Linked-cell force engine — the O(N) companion ablation to {!Pairlist}.

    The box is divided into cells at least one cutoff wide; an atom
    interacts only with atoms in its own and the 26 surrounding cells.
    (This is the other standard technique the paper's §3.4 declines to
    use; note the pleasing coincidence that its 27-cell stencil mirrors
    the 27-image minimum-image search the paper's kernel performs.)

    The engine is stateful: {!create} allocates the cell arrays
    ([head]/[next]/[atom_cell]) once, and every evaluation rebins into
    them with zero allocation.  The binning pass records each atom's
    cell in [atom_cell], which the force loop indexes instead of
    recomputing the cell from coordinates.  The per-atom force loop runs
    on the {!Mdpar} pool; rows write disjoint acceleration slots, so the
    forces are bit-identical to serial for any pool size, and the PE
    reduction combines chunk partials in a fixed order (deterministic;
    exactly serial at pool size 1). *)

type t

val create : ?pool:Mdpar.t -> System.t -> t
(** Allocates the reusable cell arrays for this system.  [pool] defaults
    to [Mdpar.get ()] at evaluation time.  Raises [Invalid_argument] if
    the box is smaller than 3 cells per axis (the stencil would visit
    the same cell twice; fall back to {!Forces.gather_engine} for such
    tiny systems). *)

val compute_with : t -> System.t -> float
(** Rebin (reusing buffers) and evaluate forces + PE.  The system must
    be the one the state was created for (checked). *)

val engine_of : t -> Engine.t
(** An engine bound to this reusable state. *)

val engine : Engine.t
(** Legacy stateless engine: allocates a one-shot state per evaluation
    and runs serially — byte-compatible with the historical behaviour. *)

val compute : System.t -> float
(** Raises [Invalid_argument] if the box is smaller than 3 cells per
    axis. *)

val cells_per_axis : System.t -> int

val axis_cells : box:float -> width:float -> int
(** Epsilon-tolerant [floor (box / width)]: accepts [m] when
    [float m *. width] exceeds [box] by at most a few ulps, so a box
    that is an exact multiple of [width] is never short a cell because
    the floating division landed one ulp below the integer.  Shared by
    {!cells_per_axis} and {!Pairlist}'s build-strategy sizing; raises
    [Invalid_argument] unless [width > 0]. *)
