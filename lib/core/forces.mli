(** Reference double-precision force evaluation.

    Two shapes of the same O(N²) Lennard-Jones sum:

    - {!gather_engine}: for each atom, scan all N−1 others — the paper's
      pseudocode ("compute distance with all other N−1 atoms"), and the
      only shape expressible on the GPU/SPE/MTA ports.  Each pair is
      evaluated twice; the potential energy is halved accordingly.
    - {!newton3_engine}: half the pairs with action–reaction — the
      standard serial-CPU optimization, kept as an ablation to quantify
      what the gather formulation costs.

    Both evaluate distances on the fly with no neighbour list: "We do not
    employ any optimization technique that has been proposed for
    cache-based systems.  Instead, we calculate the distances on the fly". *)

val gather_engine : Engine.t
val newton3_engine : Engine.t

val compute_gather : System.t -> float
val compute_newton3 : System.t -> float

val compute_gather_stats : System.t -> float * int
(** Like {!compute_gather}, additionally returning the number of
    in-cutoff interactions found (each unordered pair counted twice, as
    the gather loop encounters it) — the quantity the architecture ports
    charge their hit-path cycles by. *)

val compute_gather_domains : ?domains:int -> System.t -> float
(** {!compute_gather} with the rows split across OCaml 5 domains (shared-
    memory parallelism on the host running this simulator), scheduled on
    the persistent {!Mdpar} pool — no [Domain.spawn] per call.  The
    gather formulation makes rows independent — each domain writes only
    its own acceleration slice, so the accelerations are bit-identical
    to the serial version for any domain count, and PE partials land in
    chunk-indexed slots combined in chunk order, so the PE is
    deterministic (equal to serial up to floating-point summation order
    when [domains > 1]; exactly serial at [domains = 1]; both tested).
    [domains] defaults to the {!Mdpar.default_domains} resolution
    (CLI [--domains] / [MDSIM_DOMAINS] / recommended count). *)

val compute_gather_pool : ?pool:Mdpar.t -> System.t -> float
(** As {!compute_gather_domains}, scheduled on an explicit pool
    ([Mdpar.get ()] when omitted). *)

val compute_gather_spawn : ?domains:int -> System.t -> float
(** The pre-pool implementation — a fresh [Domain.spawn] per worker per
    call — kept as the bench ablation baseline quantifying what the
    persistent pool saves. *)

val compute_gather_searched : System.t -> float
(** {!compute_gather} with the minimum image found by the paper's literal
    neighbouring-image *search* ({!Min_image.delta_search}) instead of
    the closed form — the formulation every port actually executes.
    Results are identical (tested); kept separate so the equivalence is
    exercised in the physics path, not only at the Min_image unit level. *)

val acceleration_on : System.t -> int -> Vecmath.Vec3.t * float
(** [acceleration_on s i] recomputes atom [i]'s acceleration and its PE
    contribution independently (for spot-check tests). *)
