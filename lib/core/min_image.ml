(* A tiny negative remainder (e.g. -1e-17 with box = 1.0) makes
   [r +. box] round to [box] exactly, leaking a result outside the
   documented [0, box) range; clamp it to the 0.0 it is one ulp from. *)
let wrap ~box x =
  let r = Float.rem x box in
  let r = if r < 0.0 then r +. box else r in
  if r >= box then 0.0 else r

let delta ~box dx = dx -. (box *. Float.round (dx /. box))

let delta_search ~box dx =
  (* Ties ([|dx| = box/2]: both images equidistant) must go to the later
     candidate so the searched result matches [delta], whose
     half-away-from-zero rounding maps +box/2 to -box/2 and vice versa —
     hence [<=], not [<]. *)
  let best = ref dx in
  let consider cand = if abs_float cand <= abs_float !best then best := cand in
  consider (dx -. box);
  consider (dx +. box);
  !best

let delta_search_branchless ~box dx =
  (* |dx| >= box/2 means the image one box away (in the direction
     opposite dx's sign) is at least as close; copysign selects that
     direction without a branch.  The bound is inclusive so that the
     boundary |dx| = box/2 resolves to the sign-flipped image, exactly as
     [delta]'s half-away-from-zero rounding does.  The multiply by the
     comparison result mirrors the SPE's mask-and-select idiom. *)
  let needs_shift = if abs_float dx >= 0.5 *. box then 1.0 else 0.0 in
  dx -. (needs_shift *. Float.copy_sign box dx)

let pair_delta ~box ~xi ~xj = delta ~box (xi -. xj)

let dist2 ~box (a : Vecmath.Vec3.t) (b : Vecmath.Vec3.t) =
  let dx = delta ~box (a.x -. b.x)
  and dy = delta ~box (a.y -. b.y)
  and dz = delta ~box (a.z -. b.z) in
  (dx *. dx) +. (dy *. dy) +. (dz *. dz)
