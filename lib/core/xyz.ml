let write_frame ?(element = "Ar") ?(comment = "") oc (s : System.t) =
  Printf.fprintf oc "%d\n%s\n" s.System.n comment;
  for i = 0 to s.System.n - 1 do
    Printf.fprintf oc "%s %.8f %.8f %.8f\n" element s.System.pos_x.{i}
      s.System.pos_y.{i} s.System.pos_z.{i}
  done

let write_trajectory ~path ?element ~frames () =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iteri
        (fun k frame ->
          write_frame ?element ~comment:(Printf.sprintf "frame %d" k) oc
            frame)
        frames)

let frame_count ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let frames = ref 0 in
      (try
         while true do
           let header = input_line ic in
           let n =
             match int_of_string_opt (String.trim header) with
             | Some n when n >= 0 -> n
             | _ -> failwith ("Xyz.frame_count: bad atom count: " ^ header)
           in
           ignore (input_line ic);
           for _ = 1 to n do
             ignore (input_line ic)
           done;
           incr frames
         done
       with End_of_file -> ());
      !frames)
