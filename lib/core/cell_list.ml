(* Epsilon-tolerant floor of box/width.  When [box] is an exact multiple
   of [width], the floating division can land one ulp below the integer
   (e.g. 2.9999999999999996 for a true ratio of 3), silently dropping a
   cell per axis — or rejecting a legal box outright.  Accept [m + 1]
   whenever [(m + 1) * width] exceeds [box] by at most a few ulps of
   [box].  Shared verbatim with [Pairlist]'s cell sizing so both binning
   paths agree on the cell count. *)
let axis_cells ~box ~width =
  if not (width > 0.0) then invalid_arg "Cell_list.axis_cells: width";
  let m = int_of_float (box /. width) in
  if float_of_int (m + 1) *. width <= box +. (box *. 4.0 *. epsilon_float)
  then m + 1
  else m

let cells_per_axis (s : System.t) =
  axis_cells ~box:s.System.box ~width:s.System.params.Params.cutoff

(* Stateful linked-cell engine: the cell arrays are allocated once at
   [create] and reused on every force evaluation — rebinning is an O(N)
   overwrite, not an allocation.  [atom_cell] remembers each atom's cell
   from the binning pass so the force loop never recomputes it. *)
type t = {
  system : System.t;
  pool : Mdpar.t option;  (* None: resolve Mdpar.get () per evaluation *)
  m : int;                (* cells per axis *)
  cell_size : float;
  head : int array;       (* m³ entries; first atom per cell *)
  next : int array;       (* per-atom chain through its cell *)
  atom_cell : int array;  (* cell index per atom *)
}

let create ?pool (s : System.t) =
  let m = cells_per_axis s in
  if m < 3 then
    invalid_arg "Cell_list.create: box too small (needs >= 3 cells per axis)";
  { system = s;
    pool;
    m;
    cell_size = s.System.box /. float_of_int m;
    head = Array.make (m * m * m) (-1);
    next = Array.make s.System.n (-1);
    atom_cell = Array.make s.System.n 0 }

let pool_of t = match t.pool with Some p -> p | None -> Mdpar.get ()

let bin_atoms t =
  let { System.n; box; pos_x; pos_y; pos_z; _ } = t.system in
  let m = t.m in
  Array.fill t.head 0 (Array.length t.head) (-1);
  let idx v =
    (* [System.wrap_coord] guarantees v ∈ [0, box); an out-of-range
       coordinate here means a wrap bug upstream, so assert rather than
       silently remap it.  Division rounding can still land exactly on
       [m] for v one ulp below box (and, with the epsilon-tolerant cell
       count, cell_size can sit a few ulps below box/m) — the last cell
       absorbs that edge. *)
    assert (v >= 0.0 && v < box);
    let k = int_of_float (v /. t.cell_size) in
    if k >= m then m - 1 else k
  in
  for i = 0 to n - 1 do
    let c =
      (idx pos_z.{i} * m * m) + (idx pos_y.{i} * m) + idx pos_x.{i}
    in
    t.atom_cell.(i) <- c;
    t.next.(i) <- t.head.(c);
    t.head.(c) <- i
  done

(* One atom's 27-cell gather; writes only acc_*.{i}. *)
let force_row t rc2 inv_mass i =
  let { System.box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    t.system
  in
  let m = t.m in
  let wrap k = ((k mod m) + m) mod m in
  let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
  let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
  let pe2 = ref 0.0 in
  let ci = t.atom_cell.(i) in
  let cix = ci mod m and ciy = ci / m mod m and ciz = ci / (m * m) in
  for sz = -1 to 1 do
    for sy = -1 to 1 do
      for sx = -1 to 1 do
        let c =
          (wrap (ciz + sz) * m * m) + (wrap (ciy + sy) * m) + wrap (cix + sx)
        in
        let j = ref t.head.(c) in
        while !j >= 0 do
          if !j <> i then begin
            let dx = Min_image.delta ~box (xi -. pos_x.{!j})
            and dy = Min_image.delta ~box (yi -. pos_y.{!j})
            and dz = Min_image.delta ~box (zi -. pos_z.{!j}) in
            let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
            if r2 < rc2 then begin
              let f_over_r = Params.lj_force_over_r params r2 in
              fx := !fx +. (f_over_r *. dx);
              fy := !fy +. (f_over_r *. dy);
              fz := !fz +. (f_over_r *. dz);
              pe2 := !pe2 +. Params.lj_potential params r2
            end
          end;
          j := t.next.(!j)
        done
      done
    done
  done;
  acc_x.{i} <- !fx *. inv_mass;
  acc_y.{i} <- !fy *. inv_mass;
  acc_z.{i} <- !fz *. inv_mass;
  !pe2

let compute_with t (s : System.t) =
  if s != t.system then
    invalid_arg "Cell_list: engine used with a different system";
  let { System.n; params; _ } = s in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  bin_atoms t;
  (* Rows write disjoint acceleration slots: forces are bit-identical to
     the serial loop for any pool size; PE partials combine in chunk
     order (chunk count = pool size, so size 1 is exactly serial). *)
  let pe2 =
    Mdpar.parallel_for_reduce (pool_of t) ~lo:0 ~hi:(n - 1) ~init:0.0
      ~combine:( +. )
      ~body:(fun i -> force_row t rc2 inv_mass i)
  in
  0.5 *. pe2

let engine_of t =
  Engine.make ~name:"cell-list" ~compute:(compute_with t)

(* Legacy stateless entry points: allocate a one-shot [t] and evaluate
   serially (pool size 1), preserving the historical behaviour — and the
   exact serial PE summation order — for callers like [Init.relax]. *)
let serial_pool = lazy (Mdpar.get ~domains:1 ())

let compute (s : System.t) =
  let m = cells_per_axis s in
  if m < 3 then
    invalid_arg "Cell_list.compute: box too small (needs >= 3 cells per axis)";
  compute_with (create ~pool:(Lazy.force serial_pool) s) s

let engine = Engine.make ~name:"cell-list" ~compute
