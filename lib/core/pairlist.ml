type t = {
  system : System.t;
  skin : float;
  pool : Mdpar.t option;  (* None: resolve Mdpar.get () at build time *)
  (* Half-list: for each i, neighbours j > i within cutoff+skin, in
     ascending j order (the build algorithms below must all agree on
     this so the stored lists are byte-identical across them). *)
  mutable neighbours : int array array;
  ref_x : float array;  (* positions at last build *)
  ref_y : float array;
  ref_z : float array;
  mutable built : bool;
  mutable rebuilds : int;
  mutable last_hits : int;
  (* Cell-binning state, allocated once at [create] and reused on every
     rebuild.  [cells = 0] means the box is too small for a 27-cell
     stencil and builds fall back to the O(N²) scan. *)
  cells : int;            (* cells per axis *)
  head : int array;       (* cells³ entries; first atom per cell *)
  next : int array;       (* per-atom chain through its cell *)
  atom_cell : int array;  (* cell index per atom, filled during binning *)
  obs : Mdobs.track option;  (* host-clock rebuild events *)
  prof_rebuilds : Mdprof.counter option;  (* host-clock rebuild count *)
}

let create ?(skin = 0.4) ?pool (s : System.t) =
  if skin <= 0.0 then invalid_arg "Pairlist.create: skin must be positive";
  let reach = s.System.params.Params.cutoff +. skin in
  if s.System.box < 2.0 *. reach then
    invalid_arg "Pairlist.create: box too small for cutoff + skin";
  let cells =
    let m = int_of_float (s.System.box /. reach) in
    if m >= 3 then m else 0
  in
  { system = s;
    skin;
    pool;
    neighbours = Array.make s.System.n [||];
    ref_x = Array.make s.System.n 0.0;
    ref_y = Array.make s.System.n 0.0;
    ref_z = Array.make s.System.n 0.0;
    built = false;
    rebuilds = 0;
    last_hits = 0;
    cells;
    head = (if cells = 0 then [||] else Array.make (cells * cells * cells) (-1));
    next = Array.make s.System.n (-1);
    atom_cell = Array.make s.System.n 0;
    obs =
      (if Mdobs.enabled () then
         Some (Mdobs.new_track ~clock:Mdobs.Host "pairlist")
       else None);
    prof_rebuilds =
      (if Mdprof.enabled () then
         Some (Mdprof.counter ~clock:Mdprof.Host "pairlist/rebuilds")
       else None) }

let pool_of t =
  match t.pool with Some p -> p | None -> Mdpar.get ()

let reach_of t = t.system.System.params.Params.cutoff +. t.skin

let finish_build t =
  let { System.n; pos_x; pos_y; pos_z; _ } = t.system in
  Array.blit pos_x 0 t.ref_x 0 n;
  Array.blit pos_y 0 t.ref_y 0 n;
  Array.blit pos_z 0 t.ref_z 0 n;
  t.built <- true;
  t.rebuilds <- t.rebuilds + 1;
  (match t.prof_rebuilds with Some c -> Mdprof.incr c | None -> ());
  match t.obs with
  | Some tr ->
    Mdobs.instant tr ~name:"rebuild" ~ts:(Mdobs.host_now ())
      ~args:
        [ ("rebuilds", Mdobs.Int t.rebuilds);
          ("atoms", Mdobs.Int n);
          ("cells", Mdobs.Int t.cells) ]
      ()
  | None -> ()

(* O(N²) build: each row scans every j > i.  Kept both as the fallback
   for boxes under 3 cells per axis and as the bench ablation baseline
   for the cell-binned build. *)
let build_row_brute t reach2 i =
  let { System.n; box; pos_x; pos_y; pos_z; _ } = t.system in
  let acc = ref [] in
  for j = n - 1 downto i + 1 do
    let dx = Min_image.delta ~box (pos_x.(i) -. pos_x.(j))
    and dy = Min_image.delta ~box (pos_y.(i) -. pos_y.(j))
    and dz = Min_image.delta ~box (pos_z.(i) -. pos_z.(j)) in
    if (dx *. dx) +. (dy *. dy) +. (dz *. dz) < reach2 then acc := j :: !acc
  done;
  Array.of_list !acc

let build_brute t =
  let n = t.system.System.n in
  let reach2 = reach_of t *. reach_of t in
  let neighbours = t.neighbours in
  Mdpar.parallel_for (pool_of t) ~lo:0 ~hi:(n - 1) (fun i ->
      neighbours.(i) <- build_row_brute t reach2 i);
  finish_build t

(* O(N) build: bin atoms into cells at least [cutoff+skin] wide (serial,
   one pass), then scan only the 27-cell stencil per row.  Rows are
   independent and each writes one slot of [neighbours], so the build
   parallelizes over the pool; candidates arrive in chain order and are
   sorted ascending, making the stored lists identical to the brute
   build bit-for-bit regardless of pool size. *)
let bin_atoms t =
  let { System.n; box; pos_x; pos_y; pos_z; _ } = t.system in
  let m = t.cells in
  let cell_size = box /. float_of_int m in
  Array.fill t.head 0 (Array.length t.head) (-1);
  let idx v =
    let k = int_of_float (v /. cell_size) in
    (* Guard the v = box edge case produced by rounding. *)
    if k >= m then m - 1 else if k < 0 then 0 else k
  in
  for i = 0 to n - 1 do
    let c =
      (idx pos_z.(i) * m * m) + (idx pos_y.(i) * m) + idx pos_x.(i)
    in
    t.atom_cell.(i) <- c;
    t.next.(i) <- t.head.(c);
    t.head.(c) <- i
  done

let build_row_cells t reach2 i =
  let { System.box; pos_x; pos_y; pos_z; _ } = t.system in
  let m = t.cells in
  let wrap k = ((k mod m) + m) mod m in
  let ci = t.atom_cell.(i) in
  let cix = ci mod m and ciy = ci / m mod m and ciz = ci / (m * m) in
  let xi = pos_x.(i) and yi = pos_y.(i) and zi = pos_z.(i) in
  let acc = ref [] and count = ref 0 in
  for sz = -1 to 1 do
    for sy = -1 to 1 do
      for sx = -1 to 1 do
        let c =
          (wrap (ciz + sz) * m * m) + (wrap (ciy + sy) * m) + wrap (cix + sx)
        in
        let j = ref t.head.(c) in
        while !j >= 0 do
          if !j > i then begin
            let dx = Min_image.delta ~box (xi -. pos_x.(!j))
            and dy = Min_image.delta ~box (yi -. pos_y.(!j))
            and dz = Min_image.delta ~box (zi -. pos_z.(!j)) in
            if (dx *. dx) +. (dy *. dy) +. (dz *. dz) < reach2 then begin
              acc := !j :: !acc;
              incr count
            end
          end;
          j := t.next.(!j)
        done
      done
    done
  done;
  let row = Array.make !count 0 in
  List.iteri (fun k j -> row.(k) <- j) !acc;
  Array.sort Int.compare row;
  row

let build_cells t =
  let n = t.system.System.n in
  let reach2 = reach_of t *. reach_of t in
  bin_atoms t;
  let neighbours = t.neighbours in
  Mdpar.parallel_for (pool_of t) ~lo:0 ~hi:(n - 1) (fun i ->
      neighbours.(i) <- build_row_cells t reach2 i);
  finish_build t

let build t = if t.cells = 0 then build_brute t else build_cells t

let max_drift t =
  let s = t.system in
  let { System.n; box; pos_x; pos_y; pos_z; _ } = s in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = Min_image.delta ~box (pos_x.(i) -. t.ref_x.(i))
    and dy = Min_image.delta ~box (pos_y.(i) -. t.ref_y.(i))
    and dz = Min_image.delta ~box (pos_z.(i) -. t.ref_z.(i)) in
    worst := Float.max !worst ((dx *. dx) +. (dy *. dy) +. (dz *. dz))
  done;
  sqrt !worst

let needs_rebuild t = (not t.built) || max_drift t > 0.5 *. t.skin

let compute t (s : System.t) =
  if s != t.system then
    invalid_arg "Pairlist: engine used with a different system";
  if needs_rebuild t then build t;
  let { System.n; box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe = ref 0.0 and hits = ref 0 in
  System.clear_accelerations s;
  for i = 0 to n - 1 do
    let xi = pos_x.(i) and yi = pos_y.(i) and zi = pos_z.(i) in
    Array.iter
      (fun j ->
        let dx = Min_image.delta ~box (xi -. pos_x.(j))
        and dy = Min_image.delta ~box (yi -. pos_y.(j))
        and dz = Min_image.delta ~box (zi -. pos_z.(j)) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < rc2 then begin
          let f_over_r = Params.lj_force_over_r params r2 in
          let ax = f_over_r *. dx *. inv_mass
          and ay = f_over_r *. dy *. inv_mass
          and az = f_over_r *. dz *. inv_mass in
          acc_x.(i) <- acc_x.(i) +. ax;
          acc_y.(i) <- acc_y.(i) +. ay;
          acc_z.(i) <- acc_z.(i) +. az;
          acc_x.(j) <- acc_x.(j) -. ax;
          acc_y.(j) <- acc_y.(j) -. ay;
          acc_z.(j) <- acc_z.(j) -. az;
          pe := !pe +. Params.lj_potential params r2;
          incr hits
        end)
      t.neighbours.(i)
  done;
  t.last_hits <- !hits;
  !pe

let engine t = Engine.make ~name:"pairlist" ~compute:(compute t)

let rebuild_count t = t.rebuilds

let last_interaction_count t = t.last_hits

let neighbour_count t =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 t.neighbours

let force_rebuild t = build t

let force_rebuild_brute t = build_brute t

let uses_cells t = t.cells > 0
