let default_skin = 0.4

(* The Newton-3 traversal is split into [compute_chunks n] contiguous
   row blocks accumulating into private force buffers merged in block
   order.  The chunk count is a pure function of [n] — never of the
   pool size — so the summation order, and hence every force bit, is
   identical for any [--domains] setting (and identical to the serial
   traversal when the count is 1). *)
let compute_chunks n = if n < 512 then 1 else 8

type t = {
  system : System.t;
  skin : float;
  pool : Mdpar.t option;  (* None: resolve Mdpar.get () at build time *)
  (* Half-list: for each i, neighbours j > i within cutoff+skin, in
     ascending j order (the build algorithms below must all agree on
     this so the stored lists are byte-identical across them). *)
  mutable neighbours : int array array;
  (* Full rows (each unordered pair stored in both rows, ascending),
     derived lazily from the half-list for the gather-style ports;
     [full_gen] records which build they match. *)
  mutable full : int array array;
  mutable full_gen : int;
  ref_x : System.buf;  (* positions at last build *)
  ref_y : System.buf;
  ref_z : System.buf;
  mutable built : bool;
  mutable rebuilds : int;
  mutable last_hits : int;
  (* Candidate pairs whose distance the last build examined (the cost a
     port charges for a rebuild scan). *)
  row_scanned : int array;
  mutable last_scanned : int;
  (* Per-chunk Newton-3 accumulation state, allocated on first chunked
     compute and reused. *)
  mutable chunk_acc : float array array;  (* chunks × 3n *)
  chunk_pe : float array;
  chunk_hits : int array;
  (* Cell-binning state, allocated once at [create] and reused on every
     rebuild.  [cells = 0] means the box is too small for a 27-cell
     stencil and builds fall back to the O(N²) scan. *)
  cells : int;            (* cells per axis *)
  head : int array;       (* cells³ entries; first atom per cell *)
  next : int array;       (* per-atom chain through its cell *)
  atom_cell : int array;  (* cell index per atom, filled during binning *)
  obs : Mdobs.track option;  (* host-clock rebuild events *)
  prof_rebuilds : Mdprof.counter option;  (* host-clock rebuild count *)
  prof_builds : Mdprof.counter option;    (* virtual-clock build count *)
  prof_neighbours : Mdprof.gauge option;  (* stored half-list entries *)
}

let valid_skin skin = Float.is_finite skin && skin > 0.0

let admissible ?(skin = default_skin) (s : System.t) =
  valid_skin skin
  && s.System.box >= 2.0 *. (s.System.params.Params.cutoff +. skin)

(* Two distinct box thresholds govern a list's life:

   - [box < 2*(cutoff+skin)] — *validation*.  The minimum-image
     convention resolves each pair to a unique nearest image only when
     the interaction reach is at most half the box; past that bound the
     list itself would be wrong, so [create] rejects the configuration
     ([admissible] is the same predicate, for callers that want to fall
     back to a brute engine instead of raising).
   - [box/(cutoff+skin) < 3] — *build strategy*.  A correct but narrow
     box fits fewer than 3 cells per axis, where the 27-cell stencil
     would visit the same periodic image twice; builds then fall back
     to the O(N²) scan ([cells = 0]).  The stored list is identical
     either way.

   So 2*(cutoff+skin) <= box < 3*(cutoff+skin) means "admissible, but
   brute-built"; only below the first bound is the list refused. *)
let create ?(skin = default_skin) ?pool (s : System.t) =
  if not (valid_skin skin) then
    invalid_arg "Pairlist.create: skin must be positive and finite";
  let reach = s.System.params.Params.cutoff +. skin in
  if s.System.box < 2.0 *. reach then
    invalid_arg
      "Pairlist.create: cutoff + skin exceeds the min-image bound \
       (box < 2*(cutoff+skin))";
  let cells =
    (* Epsilon-tolerant so an exact multiple of [reach] is never short a
       cell (shared with [Cell_list.cells_per_axis]). *)
    let m = Cell_list.axis_cells ~box:s.System.box ~width:reach in
    if m >= 3 then m else 0
  in
  { system = s;
    skin;
    pool;
    neighbours = Array.make s.System.n [||];
    full = [||];
    full_gen = -1;
    ref_x = System.create_buf s.System.n;
    ref_y = System.create_buf s.System.n;
    ref_z = System.create_buf s.System.n;
    built = false;
    rebuilds = 0;
    last_hits = 0;
    row_scanned = Array.make s.System.n 0;
    last_scanned = 0;
    chunk_acc = [||];
    chunk_pe = Array.make (compute_chunks s.System.n) 0.0;
    chunk_hits = Array.make (compute_chunks s.System.n) 0;
    cells;
    head = (if cells = 0 then [||] else Array.make (cells * cells * cells) (-1));
    next = Array.make s.System.n (-1);
    atom_cell = Array.make s.System.n 0;
    obs =
      (if Mdobs.enabled () then
         Some (Mdobs.new_track ~clock:Mdobs.Host "pairlist")
       else None);
    prof_rebuilds =
      (if Mdprof.enabled () then
         Some (Mdprof.counter ~clock:Mdprof.Host "pairlist/rebuilds")
       else None);
    prof_builds =
      (if Mdprof.enabled () then
         Some (Mdprof.counter ~clock:Mdprof.Virtual "pairlist/builds")
       else None);
    prof_neighbours =
      (if Mdprof.enabled () then
         Some
           (Mdprof.gauge ~unit_:"entries" ~clock:Mdprof.Virtual
              "pairlist/neighbours")
       else None) }

let pool_of t =
  match t.pool with Some p -> p | None -> Mdpar.get ()

let reach_of t = t.system.System.params.Params.cutoff +. t.skin

let skin t = t.skin

let neighbour_count t =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 t.neighbours

let finish_build t =
  let { System.n; pos_x; pos_y; pos_z; _ } = t.system in
  Bigarray.Array1.blit pos_x t.ref_x;
  Bigarray.Array1.blit pos_y t.ref_y;
  Bigarray.Array1.blit pos_z t.ref_z;
  t.built <- true;
  t.rebuilds <- t.rebuilds + 1;
  t.last_scanned <- Array.fold_left ( + ) 0 t.row_scanned;
  (match t.prof_rebuilds with Some c -> Mdprof.incr c | None -> ());
  (match t.prof_builds with Some c -> Mdprof.incr c | None -> ());
  (match t.prof_neighbours with
  | Some g -> Mdprof.set g (float_of_int (neighbour_count t))
  | None -> ());
  match t.obs with
  | Some tr ->
    Mdobs.instant tr ~name:"rebuild" ~ts:(Mdobs.host_now ())
      ~args:
        [ ("rebuilds", Mdobs.Int t.rebuilds);
          ("atoms", Mdobs.Int n);
          ("cells", Mdobs.Int t.cells);
          ("scanned", Mdobs.Int t.last_scanned) ]
      ()
  | None -> ()

(* O(N²) build: each row scans every j > i.  Kept both as the fallback
   for boxes under 3 cells per axis and as the bench ablation baseline
   for the cell-binned build. *)
let build_row_brute t reach2 i =
  let { System.n; box; pos_x; pos_y; pos_z; _ } = t.system in
  let acc = ref [] in
  for j = n - 1 downto i + 1 do
    let dx = Min_image.delta ~box (pos_x.{i} -. pos_x.{j})
    and dy = Min_image.delta ~box (pos_y.{i} -. pos_y.{j})
    and dz = Min_image.delta ~box (pos_z.{i} -. pos_z.{j}) in
    if (dx *. dx) +. (dy *. dy) +. (dz *. dz) < reach2 then acc := j :: !acc
  done;
  t.row_scanned.(i) <- n - 1 - i;
  Array.of_list !acc

let build_brute t =
  let n = t.system.System.n in
  let reach2 = reach_of t *. reach_of t in
  let neighbours = t.neighbours in
  Mdpar.parallel_for (pool_of t) ~lo:0 ~hi:(n - 1) (fun i ->
      neighbours.(i) <- build_row_brute t reach2 i);
  finish_build t

(* O(N) build: bin atoms into cells at least [cutoff+skin] wide (serial,
   one pass), then scan only the 27-cell stencil per row.  Rows are
   independent and each writes one slot of [neighbours], so the build
   parallelizes over the pool; candidates arrive in chain order and are
   sorted ascending, making the stored lists identical to the brute
   build bit-for-bit regardless of pool size. *)
let bin_atoms t =
  let { System.n; box; pos_x; pos_y; pos_z; _ } = t.system in
  let m = t.cells in
  let cell_size = box /. float_of_int m in
  Array.fill t.head 0 (Array.length t.head) (-1);
  let idx v =
    (* Wrapped coordinates are in [0, box) by [System.wrap_coord]'s
       contract; assert it rather than masking an upstream wrap bug.
       Division rounding can still push the index to [m] for v within a
       few ulps of box — the last cell absorbs that edge. *)
    assert (v >= 0.0 && v < box);
    let k = int_of_float (v /. cell_size) in
    if k >= m then m - 1 else k
  in
  for i = 0 to n - 1 do
    let c =
      (idx pos_z.{i} * m * m) + (idx pos_y.{i} * m) + idx pos_x.{i}
    in
    t.atom_cell.(i) <- c;
    t.next.(i) <- t.head.(c);
    t.head.(c) <- i
  done

let build_row_cells t reach2 i =
  let { System.box; pos_x; pos_y; pos_z; _ } = t.system in
  let m = t.cells in
  let wrap k = ((k mod m) + m) mod m in
  let ci = t.atom_cell.(i) in
  let cix = ci mod m and ciy = ci / m mod m and ciz = ci / (m * m) in
  let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
  let acc = ref [] and count = ref 0 and scanned = ref 0 in
  for sz = -1 to 1 do
    for sy = -1 to 1 do
      for sx = -1 to 1 do
        let c =
          (wrap (ciz + sz) * m * m) + (wrap (ciy + sy) * m) + wrap (cix + sx)
        in
        let j = ref t.head.(c) in
        while !j >= 0 do
          if !j > i then begin
            incr scanned;
            let dx = Min_image.delta ~box (xi -. pos_x.{!j})
            and dy = Min_image.delta ~box (yi -. pos_y.{!j})
            and dz = Min_image.delta ~box (zi -. pos_z.{!j}) in
            if (dx *. dx) +. (dy *. dy) +. (dz *. dz) < reach2 then begin
              acc := !j :: !acc;
              incr count
            end
          end;
          j := t.next.(!j)
        done
      done
    done
  done;
  t.row_scanned.(i) <- !scanned;
  let row = Array.make !count 0 in
  List.iteri (fun k j -> row.(k) <- j) !acc;
  Array.sort Int.compare row;
  row

let build_cells t =
  let n = t.system.System.n in
  let reach2 = reach_of t *. reach_of t in
  bin_atoms t;
  let neighbours = t.neighbours in
  Mdpar.parallel_for (pool_of t) ~lo:0 ~hi:(n - 1) (fun i ->
      neighbours.(i) <- build_row_cells t reach2 i);
  finish_build t

let build t = if t.cells = 0 then build_brute t else build_cells t

let max_drift t =
  let s = t.system in
  let { System.n; box; pos_x; pos_y; pos_z; _ } = s in
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = Min_image.delta ~box (pos_x.{i} -. t.ref_x.{i})
    and dy = Min_image.delta ~box (pos_y.{i} -. t.ref_y.{i})
    and dz = Min_image.delta ~box (pos_z.{i} -. t.ref_z.{i}) in
    worst := Float.max !worst ((dx *. dx) +. (dy *. dy) +. (dz *. dz))
  done;
  sqrt !worst

let needs_rebuild t = (not t.built) || max_drift t > 0.5 *. t.skin

let refresh t = if needs_rebuild t then (build t; true) else false

(* Full rows derived from the half-list: partners below k arrive in
   ascending order by transposing the half rows in ascending i, then
   each row's own (ascending, > k) half row is appended — so every full
   row lists its partners strictly ascending, matching the order an
   O(N²) gather visits its hits in. *)
let full_rows t =
  if not t.built then invalid_arg "Pairlist.full_rows: list not built";
  if t.full_gen <> t.rebuilds then begin
    let n = t.system.System.n in
    let cnt = Array.make n 0 in
    Array.iteri
      (fun i row ->
        cnt.(i) <- cnt.(i) + Array.length row;
        Array.iter (fun j -> cnt.(j) <- cnt.(j) + 1) row)
      t.neighbours;
    let full = Array.init n (fun k -> Array.make cnt.(k) 0) in
    let fill = Array.make n 0 in
    for i = 0 to n - 1 do
      Array.iter
        (fun j ->
          full.(j).(fill.(j)) <- i;
          fill.(j) <- fill.(j) + 1)
        t.neighbours.(i)
    done;
    for k = 0 to n - 1 do
      let row = t.neighbours.(k) in
      Array.blit row 0 full.(k) fill.(k) (Array.length row)
    done;
    t.full <- full;
    t.full_gen <- t.rebuilds
  end;
  t.full

let full_entry_count t = 2 * neighbour_count t

(* Serial Newton-3 half-list traversal — the exact pre-chunking hot
   loop, still taken whenever [compute_chunks n = 1]. *)
let compute_serial t (s : System.t) =
  let { System.n; box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe = ref 0.0 and hits = ref 0 in
  System.clear_accelerations s;
  for i = 0 to n - 1 do
    let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
    Array.iter
      (fun j ->
        let dx = Min_image.delta ~box (xi -. pos_x.{j})
        and dy = Min_image.delta ~box (yi -. pos_y.{j})
        and dz = Min_image.delta ~box (zi -. pos_z.{j}) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < rc2 then begin
          let f_over_r = Params.lj_force_over_r params r2 in
          let ax = f_over_r *. dx *. inv_mass
          and ay = f_over_r *. dy *. inv_mass
          and az = f_over_r *. dz *. inv_mass in
          acc_x.{i} <- acc_x.{i} +. ax;
          acc_y.{i} <- acc_y.{i} +. ay;
          acc_z.{i} <- acc_z.{i} +. az;
          acc_x.{j} <- acc_x.{j} -. ax;
          acc_y.{j} <- acc_y.{j} -. ay;
          acc_z.{j} <- acc_z.{j} -. az;
          pe := !pe +. Params.lj_potential params r2;
          incr hits
        end)
      t.neighbours.(i)
  done;
  t.last_hits <- !hits;
  !pe

(* Chunked Newton-3: each chunk owns the contiguous row block
   [c*n/chunks, (c+1)*n/chunks) and accumulates both sides of its pairs
   into a private 3n force buffer; buffers are then merged per atom in
   ascending chunk order (and PE/hit partials folded the same way), so
   the result is a pure function of (n, list) — independent of the pool
   size and of which domain ran which chunk. *)
let compute_chunked t (s : System.t) ~chunks =
  let { System.n; box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  if Array.length t.chunk_acc = 0 then
    t.chunk_acc <- Array.init chunks (fun _ -> Array.make (3 * n) 0.0);
  let bufs = t.chunk_acc in
  let pool = pool_of t in
  Mdpar.parallel_for pool ~lo:0 ~hi:(chunks - 1) (fun c ->
      let buf = bufs.(c) in
      Array.fill buf 0 (3 * n) 0.0;
      let pe = ref 0.0 and hits = ref 0 in
      for i = c * n / chunks to ((c + 1) * n / chunks) - 1 do
        let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
        Array.iter
          (fun j ->
            let dx = Min_image.delta ~box (xi -. pos_x.{j})
            and dy = Min_image.delta ~box (yi -. pos_y.{j})
            and dz = Min_image.delta ~box (zi -. pos_z.{j}) in
            let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
            if r2 < rc2 then begin
              let f_over_r = Params.lj_force_over_r params r2 in
              let ax = f_over_r *. dx *. inv_mass
              and ay = f_over_r *. dy *. inv_mass
              and az = f_over_r *. dz *. inv_mass in
              buf.(3 * i) <- buf.(3 * i) +. ax;
              buf.((3 * i) + 1) <- buf.((3 * i) + 1) +. ay;
              buf.((3 * i) + 2) <- buf.((3 * i) + 2) +. az;
              buf.(3 * j) <- buf.(3 * j) -. ax;
              buf.((3 * j) + 1) <- buf.((3 * j) + 1) -. ay;
              buf.((3 * j) + 2) <- buf.((3 * j) + 2) -. az;
              pe := !pe +. Params.lj_potential params r2;
              incr hits
            end)
          t.neighbours.(i)
      done;
      t.chunk_pe.(c) <- !pe;
      t.chunk_hits.(c) <- !hits);
  (* Deterministic merge: atom slots are disjoint, chunk order fixed. *)
  Mdpar.parallel_for pool ~lo:0 ~hi:(n - 1) (fun i ->
      let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 in
      for c = 0 to chunks - 1 do
        let buf = bufs.(c) in
        ax := !ax +. buf.(3 * i);
        ay := !ay +. buf.((3 * i) + 1);
        az := !az +. buf.((3 * i) + 2)
      done;
      acc_x.{i} <- !ax;
      acc_y.{i} <- !ay;
      acc_z.{i} <- !az);
  let pe = ref 0.0 and hits = ref 0 in
  for c = 0 to chunks - 1 do
    pe := !pe +. t.chunk_pe.(c);
    hits := !hits + t.chunk_hits.(c)
  done;
  t.last_hits <- !hits;
  !pe

let compute t (s : System.t) =
  if s != t.system then
    invalid_arg "Pairlist: engine used with a different system";
  if needs_rebuild t then build t;
  let chunks = compute_chunks s.System.n in
  if chunks = 1 then compute_serial t s else compute_chunked t s ~chunks

(* Serial double-precision gather over the full rows — bit-identical to
   [Forces.compute_gather_stats]: hits arrive per row in the same
   ascending-j order, and pairs the list omits are exactly those beyond
   cutoff+skin, which contribute nothing to the O(N²) sums. *)
let compute_full_stats t (s : System.t) =
  if s != t.system then
    invalid_arg "Pairlist: engine used with a different system";
  if needs_rebuild t then build t;
  let full = full_rows t in
  let { System.n; box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe2 = ref 0.0 and hits = ref 0 in
  for i = 0 to n - 1 do
    let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    Array.iter
      (fun j ->
        let dx = Min_image.delta ~box (xi -. pos_x.{j})
        and dy = Min_image.delta ~box (yi -. pos_y.{j})
        and dz = Min_image.delta ~box (zi -. pos_z.{j}) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < rc2 then begin
          let f_over_r = Params.lj_force_over_r params r2 in
          fx := !fx +. (f_over_r *. dx);
          fy := !fy +. (f_over_r *. dy);
          fz := !fz +. (f_over_r *. dz);
          pe2 := !pe2 +. Params.lj_potential params r2;
          incr hits
        end)
      full.(i);
    acc_x.{i} <- !fx *. inv_mass;
    acc_y.{i} <- !fy *. inv_mass;
    acc_z.{i} <- !fz *. inv_mass
  done;
  t.last_hits <- !hits;
  (0.5 *. !pe2, !hits)

let engine t = Engine.make ~name:"pairlist" ~compute:(compute t)

let rebuild_count t = t.rebuilds

let last_interaction_count t = t.last_hits

let last_build_scanned t = t.last_scanned

let force_rebuild t = build t

let force_rebuild_brute t = build_brute t

let uses_cells t = t.cells > 0
