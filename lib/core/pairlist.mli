(** Verlet neighbour-list force engine.

    Section 3.4 of the paper singles out "the neighboring atom pairlist
    construction, which is updated every few simulation time steps" as the
    most common cache-friendliness technique — and then deliberately does
    not use it, to keep the kernel a pure N² stress test.  We implement it
    anyway as an ablation: the benches quantify exactly how much the paper
    left on the table on the cache-based baseline.

    The list stores, per atom, all neighbours within [cutoff + skin]; it is
    rebuilt automatically when any atom has drifted more than [skin/2]
    since the last build (the classical sufficient condition for the list
    to still cover every pair within the cutoff). *)

type t

val create : ?skin:float -> ?pool:Mdpar.t -> System.t -> t
(** [skin] defaults to 0.4σ.  Raises [Invalid_argument] if nonpositive or
    if [box < 2*(cutoff+skin)].

    Builds are O(N): atoms are binned into cells at least [cutoff+skin]
    wide (buffers allocated here, reused on every rebuild) and each
    atom's candidates come from the 27-cell stencil; the per-row scans
    run on the {!Mdpar} pool ([pool], defaulting to [Mdpar.get ()] at
    build time).  Rows are sorted ascending, so the stored lists — and
    hence forces, PE, rebuild cadence and interaction counts — are
    bit-identical to the O(N²) scan for any pool size.  Boxes narrower
    than 3 cells per axis fall back to the O(N²) scan. *)

val engine : t -> Engine.t
(** An engine bound to this list's bookkeeping.  The engine must only be
    used with the system the list was created for (checked). *)

val rebuild_count : t -> int
(** Number of list constructions so far (tests assert the every-few-steps
    cadence). *)

val neighbour_count : t -> int
(** Total stored neighbour entries (diagnostics). *)

val last_interaction_count : t -> int
(** In-cutoff pairs found by the most recent force evaluation (each
    unordered pair once — the list is a half-list); 0 before the first
    evaluation. *)

val force_rebuild : t -> unit

val force_rebuild_brute : t -> unit
(** Rebuild with the O(N²) scan regardless of box size — the bench
    ablation baseline for the cell-binned build (same stored lists). *)

val uses_cells : t -> bool
(** Whether builds use the O(N) cell-binned path (false only for boxes
    under 3 cells per axis). *)
