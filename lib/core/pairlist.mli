(** Verlet neighbour-list force engine.

    Section 3.4 of the paper singles out "the neighboring atom pairlist
    construction, which is updated every few simulation time steps" as the
    most common cache-friendliness technique — and then deliberately does
    not use it, to keep the kernel a pure N² stress test.  We implement it
    and, since the port simulators exist to explore what the architectures
    can do, run production force evaluations through it (the ports fall
    back to the brute engine only when {!admissible} says the box is too
    small).

    The list stores, per atom, all neighbours within [cutoff + skin]; it is
    rebuilt automatically when any atom has drifted more than [skin/2]
    since the last build (the classical sufficient condition for the list
    to still cover every pair within the cutoff).

    {b Box-size thresholds.}  Two different bounds apply, deliberately
    aligned here so callers can reason about them together:
    - [box < 2*(cutoff+skin)] — the minimum-image bound.  Below it a
      neighbour and its periodic image are not distinguishable, so
      {!create} raises and {!admissible} is false; engines fall back to
      the brute O(N²) path instead.
    - [box < 3*(cutoff+skin)] — fewer than 3 cells per axis.  The list is
      still correct, but the 27-cell stencil would double-visit periodic
      images, so builds use the O(N²) scan ([{!uses_cells} = false]).
      The stored list is identical either way. *)

type t

val default_skin : float
(** 0.4σ — the conventional skin for a reduced-units LJ liquid. *)

val admissible : ?skin:float -> System.t -> bool
(** Whether {!create} would accept this system: [skin] positive and
    finite, and [box >= 2*(cutoff+skin)] (the min-image bound).  Ports
    use this to decide between the list engine and the brute fallback. *)

val create : ?skin:float -> ?pool:Mdpar.t -> System.t -> t
(** [skin] defaults to {!default_skin}.  Raises [Invalid_argument] if
    [skin] is NaN, infinite or nonpositive, or if [cutoff + skin] exceeds
    the min-image bound ([box < 2*(cutoff+skin)]).

    Builds are O(N): atoms are binned into cells at least [cutoff+skin]
    wide (buffers allocated here, reused on every rebuild) and each
    atom's candidates come from the 27-cell stencil; the per-row scans
    run on the {!Mdpar} pool ([pool], defaulting to [Mdpar.get ()] at
    build time).  Rows are sorted ascending, so the stored lists — and
    hence forces, PE, rebuild cadence and interaction counts — are
    bit-identical to the O(N²) scan for any pool size.  Boxes narrower
    than 3 cells per axis fall back to the O(N²) scan. *)

val skin : t -> float

val engine : t -> Engine.t
(** An engine bound to this list's bookkeeping.  The engine must only be
    used with the system the list was created for (checked).

    The compute is a Newton-3 half-list traversal.  Above
    [compute_chunks] rows it runs chunked on the pool with per-chunk
    force buffers merged in fixed chunk order; the chunk count is a pure
    function of [n], so forces, PE and interaction counts are
    byte-identical across pool sizes ([--domains]) and across rebuild
    cadence (list entries beyond the cutoff contribute nothing). *)

val refresh : t -> bool
(** Rebuild if the drift trigger demands it; [true] when a rebuild
    happened.  Ports call this at the top of each force evaluation so
    they can charge the rebuild's scan cost explicitly. *)

val full_rows : t -> int array array
(** Full neighbour rows (each unordered pair appears in both partners'
    rows, partners strictly ascending — the same per-row hit order an
    O(N²) gather produces), derived lazily from the half-list and cached
    per build.  The gather-style ports (Cell, GPU, MTA) traverse these.
    Raises [Invalid_argument] before the first build. *)

val full_entry_count : t -> int
(** Total entries across {!full_rows} (= 2 × {!neighbour_count}). *)

val compute_full_stats : t -> System.t -> float * int
(** Serial double-precision gather over {!full_rows}: (PE, ordered-pair
    hit count), bit-identical to [Forces.compute_gather_stats] on the
    same positions.  Rebuilds first if the drift trigger demands it. *)

val rebuild_count : t -> int
(** Number of list constructions so far (tests assert the every-few-steps
    cadence). *)

val last_build_scanned : t -> int
(** Candidate pairs whose distance the most recent build examined —
    [n(n-1)/2] for brute builds, the 27-cell stencil population for
    cell-binned builds.  Ports charge this for rebuild scans. *)

val neighbour_count : t -> int
(** Total stored neighbour entries (diagnostics). *)

val last_interaction_count : t -> int
(** In-cutoff pairs found by the most recent force evaluation (each
    unordered pair once under the Newton-3 engine, each ordered pair
    under {!compute_full_stats}); 0 before the first evaluation. *)

val force_rebuild : t -> unit

val force_rebuild_brute : t -> unit
(** Rebuild with the O(N²) scan regardless of box size — the bench
    ablation baseline for the cell-binned build (same stored lists). *)

val uses_cells : t -> bool
(** Whether builds use the O(N) cell-binned path (false only for boxes
    under 3 cells per axis). *)
