(** Velocity-Verlet integration — the paper's 5-step kernel (Fig. 4):

    {v 1. advance velocities
       2. calculate forces on each of the N atoms
       3. move atoms based on their position, velocities & forces
       4. update positions
       5. calculate new kinetic and total energies v}

    arranged in the standard velocity-Verlet order: the half-kick with the
    previous accelerations, the drift, the force evaluation at the new
    positions, the second half-kick, and the energy bookkeeping.  The force
    evaluation is pluggable (an {!Engine.t}) — offloading it is the entire
    subject of the paper. *)

type step_record = {
  step : int;
  sim_time : float;         (** step · Δt *)
  pe : float;
  ke : float;
  total_energy : float;
  temperature : float;
}

val prepare : System.t -> engine:Engine.t -> float
(** Evaluate forces for the initial configuration (velocity Verlet needs
    a(t) before the first step); returns the initial PE. *)

val step : System.t -> engine:Engine.t -> float
(** Advance one Δt.  Assumes accelerations correspond to current positions
    (guaranteed after {!prepare} or a previous [step]).  Returns the new
    PE. *)

val half_kick : System.t -> unit
(** v += a·Δt/2 — exposed so ports that offload only the force evaluation
    can drive the integration themselves, as the paper's PPE/CPU does. *)

val drift : System.t -> unit
(** x += v·Δt, with periodic re-wrap. *)

(** {1 Invariant guard}

    Retry layers only catch {e detected} faults; silent corruption (a
    GPU texture-lane or DRAM bit flip) sails through.  The guard
    validates cheap physics invariants after every step — finite state,
    bounded per-step energy jump, bounded net-momentum drift from the
    run's initial momentum — and on violation restores the newest valid
    snapshot (the pre-step state) and re-executes, escalating to
    {!Invariant_violation} when the violation persists. *)

type guard = {
  max_energy_jump : float;
  (** max |E(t) − E(t−1)| / max(1, |E(t−1)|) per step *)
  max_momentum_drift : float;
  (** max per-atom |P(t) − P(0)| component drift (scaled by n) *)
  max_restores : int;
  (** snapshot restores per step before escalating *)
}

val default_guard : guard
(** 5% relative energy jump, 1e-6 per-atom momentum drift, 4 restores. *)

exception Invariant_violation of string
(** A guard bound stayed violated after [max_restores] re-executions
    (or the initial state itself was invalid).  A [Printexc] printer is
    registered. *)

val install_guard : guard -> unit
(** Make [guard] the process-wide default for {!run} (the [?guard]
    argument overrides it per call).  Like fault plans, install before
    starting runs. *)

val clear_guard : unit -> unit
val current_guard : unit -> guard option

(** {1 Observation hooks}

    Registration points for the telemetry layer (Mdtel), which lives
    above [mdcore] and cannot be called directly.  Both cost a single
    atomic load per step when nothing is registered. *)

val set_step_listener : (System.t -> step_record -> unit) option -> unit
(** Called once per produced step record (after any fault retries and
    guard restores have settled — never for a rolled-back attempt),
    with the system in the state the record describes.  Step indices
    are local to the [run] call; segmented callers rebase them. *)

val set_alert_listener : (step:int -> reason:string -> unit) option -> unit
(** Called on every invariant-guard violation, including ones healed by
    a snapshot restore.  [reason] is the {!Invariant_violation}
    message; deterministic for a fixed workload. *)

val run : System.t -> engine:Engine.t -> steps:int ->
  ?max_step_retries:int -> ?guard:guard ->
  ?record:(step_record -> unit) -> unit -> step_record list
(** [run s ~engine ~steps ()] integrates [steps] steps and returns one
    record per step (including a step-0 record for the initial state).
    [record] is additionally called with each record as it is produced.

    [max_step_retries] (default 0) enables checkpointed recovery: the
    SoA state is snapshotted before every force evaluation, and when the
    engine raises {!Mdfault.Unrecovered} mid-step the state is rolled
    back and the step re-executed, up to that many times per step —
    ports pass [Mdfault.step_retries ()].  The re-execution draws fresh
    fault-stream values, so a transient device failure converges to the
    fault-free trajectory.  With 0 retries the fault-free path is
    unchanged (and allocation-free).

    [guard] (default: the installed guard, if any) additionally runs the
    invariant checks above after every step.  Each step also calls
    [Sim_util.Deadline.check], so a deadline-supervised caller can bound
    the wall-clock cost of a wedged run at one-step granularity. *)
