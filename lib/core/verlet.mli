(** Velocity-Verlet integration — the paper's 5-step kernel (Fig. 4):

    {v 1. advance velocities
       2. calculate forces on each of the N atoms
       3. move atoms based on their position, velocities & forces
       4. update positions
       5. calculate new kinetic and total energies v}

    arranged in the standard velocity-Verlet order: the half-kick with the
    previous accelerations, the drift, the force evaluation at the new
    positions, the second half-kick, and the energy bookkeeping.  The force
    evaluation is pluggable (an {!Engine.t}) — offloading it is the entire
    subject of the paper. *)

type step_record = {
  step : int;
  sim_time : float;         (** step · Δt *)
  pe : float;
  ke : float;
  total_energy : float;
  temperature : float;
}

val prepare : System.t -> engine:Engine.t -> float
(** Evaluate forces for the initial configuration (velocity Verlet needs
    a(t) before the first step); returns the initial PE. *)

val step : System.t -> engine:Engine.t -> float
(** Advance one Δt.  Assumes accelerations correspond to current positions
    (guaranteed after {!prepare} or a previous [step]).  Returns the new
    PE. *)

val half_kick : System.t -> unit
(** v += a·Δt/2 — exposed so ports that offload only the force evaluation
    can drive the integration themselves, as the paper's PPE/CPU does. *)

val drift : System.t -> unit
(** x += v·Δt, with periodic re-wrap. *)

val run : System.t -> engine:Engine.t -> steps:int ->
  ?max_step_retries:int ->
  ?record:(step_record -> unit) -> unit -> step_record list
(** [run s ~engine ~steps ()] integrates [steps] steps and returns one
    record per step (including a step-0 record for the initial state).
    [record] is additionally called with each record as it is produced.

    [max_step_retries] (default 0) enables checkpointed recovery: the
    SoA state is snapshotted before every force evaluation, and when the
    engine raises {!Mdfault.Unrecovered} mid-step the state is rolled
    back and the step re-executed, up to that many times per step —
    ports pass [Mdfault.step_retries ()].  The re-execution draws fresh
    fault-stream values, so a transient device failure converges to the
    fault-free trajectory.  With 0 retries the fault-free path is
    unchanged (and allocation-free). *)
