(* The inner loops are written against raw float arrays (not Vec3) so that
   the reference is honest about the memory access pattern the cache model
   replays: three coordinate loads per candidate neighbour. *)

let compute_gather_stats (s : System.t) =
  let { System.n; box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe2 = ref 0.0 and hits = ref 0 in
  (* double-counted PE, halved at the end *)
  for i = 0 to n - 1 do
    let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then begin
        let dx = Min_image.delta ~box (xi -. pos_x.{j})
        and dy = Min_image.delta ~box (yi -. pos_y.{j})
        and dz = Min_image.delta ~box (zi -. pos_z.{j}) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < rc2 then begin
          let f_over_r = Params.lj_force_over_r params r2 in
          fx := !fx +. (f_over_r *. dx);
          fy := !fy +. (f_over_r *. dy);
          fz := !fz +. (f_over_r *. dz);
          pe2 := !pe2 +. Params.lj_potential params r2;
          incr hits
        end
      end
    done;
    acc_x.{i} <- !fx *. inv_mass;
    acc_y.{i} <- !fy *. inv_mass;
    acc_z.{i} <- !fz *. inv_mass
  done;
  (0.5 *. !pe2, !hits)

let compute_gather s = fst (compute_gather_stats s)

(* One row of the gather sum; writes only acc_*.(i). *)
let gather_row (s : System.t) rc2 inv_mass i =
  let { System.n; box; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } = s in
  let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
  let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
  let pe2 = ref 0.0 in
  for j = 0 to n - 1 do
    if j <> i then begin
      let dx = Min_image.delta ~box (xi -. pos_x.{j})
      and dy = Min_image.delta ~box (yi -. pos_y.{j})
      and dz = Min_image.delta ~box (zi -. pos_z.{j}) in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
      if r2 < rc2 then begin
        let f_over_r = Params.lj_force_over_r s.System.params r2 in
        fx := !fx +. (f_over_r *. dx);
        fy := !fy +. (f_over_r *. dy);
        fz := !fz +. (f_over_r *. dz);
        pe2 := !pe2 +. Params.lj_potential s.System.params r2
      end
    end
  done;
  acc_x.{i} <- !fx *. inv_mass;
  acc_y.{i} <- !fy *. inv_mass;
  acc_z.{i} <- !fz *. inv_mass;
  !pe2

let compute_gather_pool ?pool (s : System.t) =
  let pool = match pool with Some p -> p | None -> Mdpar.get () in
  let n = s.System.n in
  let rc2 = Params.cutoff2 s.System.params in
  let inv_mass = 1.0 /. s.System.params.Params.mass in
  (* Rows are disjoint: each participant writes only the acceleration
     slots of the rows it claims, so the forces are bit-identical to the
     serial loop for any pool size.  The PE partials land in slots keyed
     by chunk index and combine in chunk order, so the sum is a pure
     function of the pool size (and equals the serial sum at size 1). *)
  let pe2 =
    Mdpar.parallel_for_reduce pool ~lo:0 ~hi:(n - 1) ~init:0.0
      ~combine:( +. )
      ~body:(fun i -> gather_row s rc2 inv_mass i)
  in
  0.5 *. pe2

let compute_gather_domains ?domains (s : System.t) =
  match domains with
  | None -> compute_gather_pool s
  | Some d ->
    if d <= 0 then invalid_arg "Forces.compute_gather_domains: domains";
    compute_gather_pool ~pool:(Mdpar.get ~domains:(min d s.System.n) ()) s

(* The pre-pool implementation, kept verbatim as the bench ablation
   baseline: one [Domain.spawn] + [Domain.join] per force call. *)
let compute_gather_spawn ?domains (s : System.t) =
  let n = s.System.n in
  let domains =
    match domains with
    | Some d ->
      if d <= 0 then invalid_arg "Forces.compute_gather_spawn: domains";
      d
    | None -> Domain.recommended_domain_count ()
  in
  let domains = min domains n in
  let rc2 = Params.cutoff2 s.System.params in
  let inv_mass = 1.0 /. s.System.params.Params.mass in
  let chunk k = (k * n / domains, ((k + 1) * n / domains) - 1) in
  let run_chunk k =
    let lo, hi = chunk k in
    let pe2 = ref 0.0 in
    for i = lo to hi do
      pe2 := !pe2 +. gather_row s rc2 inv_mass i
    done;
    !pe2
  in
  let workers =
    List.init (domains - 1) (fun k -> Domain.spawn (fun () -> run_chunk (k + 1)))
  in
  let first = run_chunk 0 in
  let partials = List.map Domain.join workers in
  0.5 *. List.fold_left ( +. ) first partials

let compute_newton3 (s : System.t) =
  let { System.n; box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe = ref 0.0 in
  System.clear_accelerations s;
  for i = 0 to n - 2 do
    let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
    for j = i + 1 to n - 1 do
      let dx = Min_image.delta ~box (xi -. pos_x.{j})
      and dy = Min_image.delta ~box (yi -. pos_y.{j})
      and dz = Min_image.delta ~box (zi -. pos_z.{j}) in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
      if r2 < rc2 then begin
        let f_over_r = Params.lj_force_over_r params r2 in
        let ax = f_over_r *. dx *. inv_mass
        and ay = f_over_r *. dy *. inv_mass
        and az = f_over_r *. dz *. inv_mass in
        acc_x.{i} <- acc_x.{i} +. ax;
        acc_y.{i} <- acc_y.{i} +. ay;
        acc_z.{i} <- acc_z.{i} +. az;
        acc_x.{j} <- acc_x.{j} -. ax;
        acc_y.{j} <- acc_y.{j} -. ay;
        acc_z.{j} <- acc_z.{j} -. az;
        pe := !pe +. Params.lj_potential params r2
      end
    done
  done;
  !pe

let compute_gather_searched (s : System.t) =
  let { System.n; box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe2 = ref 0.0 in
  for i = 0 to n - 1 do
    let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then begin
        let dx = Min_image.delta_search ~box (xi -. pos_x.{j})
        and dy = Min_image.delta_search ~box (yi -. pos_y.{j})
        and dz = Min_image.delta_search ~box (zi -. pos_z.{j}) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < rc2 then begin
          let f_over_r = Params.lj_force_over_r params r2 in
          fx := !fx +. (f_over_r *. dx);
          fy := !fy +. (f_over_r *. dy);
          fz := !fz +. (f_over_r *. dz);
          pe2 := !pe2 +. Params.lj_potential params r2
        end
      end
    done;
    acc_x.{i} <- !fx *. inv_mass;
    acc_y.{i} <- !fy *. inv_mass;
    acc_z.{i} <- !fz *. inv_mass
  done;
  0.5 *. !pe2

let acceleration_on (s : System.t) i =
  let { System.n; box; params; pos_x; pos_y; pos_z; _ } = s in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  let acc = ref Vecmath.Vec3.zero and pe2 = ref 0.0 in
  let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
  for j = 0 to n - 1 do
    if j <> i then begin
      let dx = Min_image.delta ~box (xi -. pos_x.{j})
      and dy = Min_image.delta ~box (yi -. pos_y.{j})
      and dz = Min_image.delta ~box (zi -. pos_z.{j}) in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
      if r2 < rc2 then begin
        let f_over_r = Params.lj_force_over_r params r2 in
        acc :=
          Vecmath.Vec3.add !acc
            (Vecmath.Vec3.scale (f_over_r *. inv_mass)
               (Vecmath.Vec3.make dx dy dz));
        pe2 := !pe2 +. Params.lj_potential params r2
      end
    end
  done;
  (!acc, 0.5 *. !pe2)

let gather_engine =
  Engine.make ~name:"reference-gather" ~compute:compute_gather

let newton3_engine =
  Engine.make ~name:"reference-newton3" ~compute:compute_newton3
