let kinetic_energy (s : System.t) =
  let acc = ref 0.0 in
  for i = 0 to s.System.n - 1 do
    acc :=
      !acc
      +. (s.System.vel_x.{i} *. s.System.vel_x.{i})
      +. (s.System.vel_y.{i} *. s.System.vel_y.{i})
      +. (s.System.vel_z.{i} *. s.System.vel_z.{i})
  done;
  0.5 *. s.System.params.Params.mass *. !acc

let temperature (s : System.t) =
  if s.System.n < 2 then 0.0
  else 2.0 *. kinetic_energy s /. (3.0 *. float_of_int (s.System.n - 1))

let total_momentum (s : System.t) =
  let px = ref 0.0 and py = ref 0.0 and pz = ref 0.0 in
  for i = 0 to s.System.n - 1 do
    px := !px +. s.System.vel_x.{i};
    py := !py +. s.System.vel_y.{i};
    pz := !pz +. s.System.vel_z.{i}
  done;
  Vecmath.Vec3.scale s.System.params.Params.mass
    (Vecmath.Vec3.make !px !py !pz)

let total_energy s ~pe = kinetic_energy s +. pe

let bin_centers ~bins ~rmax =
  if bins <= 0 then invalid_arg "Observables.bin_centers: bins";
  let dr = rmax /. float_of_int bins in
  Array.init bins (fun b -> (float_of_int b +. 0.5) *. dr)

let radial_distribution (s : System.t) ~bins ~rmax =
  if bins <= 0 then invalid_arg "Observables.radial_distribution: bins";
  if rmax <= 0.0 || rmax > s.System.box /. 2.0 then
    invalid_arg "Observables.radial_distribution: rmax must be in (0, box/2]";
  let n = s.System.n in
  let dr = rmax /. float_of_int bins in
  let counts = Array.make bins 0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      let r2 =
        Min_image.dist2 ~box:s.System.box (System.position s i)
          (System.position s j)
      in
      if r2 < rmax *. rmax then begin
        let b = int_of_float (sqrt r2 /. dr) in
        let b = min b (bins - 1) in
        counts.(b) <- counts.(b) + 1
      end
    done
  done;
  (* Normalize by the ideal-gas expectation for each shell:
     n_ideal(b) = (N/2) * rho * 4 pi r^2 dr. *)
  let rho = System.density s in
  Array.mapi
    (fun b c ->
      let r = (float_of_int b +. 0.5) *. dr in
      let shell = 4.0 *. Float.pi *. r *. r *. dr in
      let ideal = float_of_int n /. 2.0 *. rho *. shell in
      if ideal = 0.0 then 0.0 else float_of_int c /. ideal)
    counts


let check_snapshots = function
  | [] -> invalid_arg "Observables: empty snapshot list"
  | first :: rest as all ->
    List.iter
      (fun (s : System.t) ->
        if s.System.n <> first.System.n then
          invalid_arg "Observables: snapshot size mismatch")
      rest;
    all

(* Unnormalized <v(0) . v(k)> averaged over atoms. *)
let vacf_raw snapshots =
  let snapshots = Array.of_list (check_snapshots snapshots) in
  let first = snapshots.(0) in
  let n = first.System.n in
  Array.map
    (fun (s : System.t) ->
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc :=
          !acc
          +. (first.System.vel_x.{i} *. s.System.vel_x.{i})
          +. (first.System.vel_y.{i} *. s.System.vel_y.{i})
          +. (first.System.vel_z.{i} *. s.System.vel_z.{i})
      done;
      !acc /. float_of_int n)
    snapshots

let velocity_autocorrelation snapshots =
  let raw = vacf_raw snapshots in
  let c0 = raw.(0) in
  if c0 = 0.0 then raw else Array.map (fun c -> c /. c0) raw

let diffusion_coefficient snapshots ~dt =
  if dt <= 0.0 then invalid_arg "Observables.diffusion_coefficient: dt";
  let raw = vacf_raw snapshots in
  let k = Array.length raw in
  if k < 2 then invalid_arg "Observables.diffusion_coefficient: need >= 2 snapshots";
  let integral = ref 0.0 in
  for i = 0 to k - 2 do
    integral := !integral +. (0.5 *. (raw.(i) +. raw.(i + 1)) *. dt)
  done;
  !integral /. 3.0
