module Vec3 = Vecmath.Vec3

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type f32buf = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

let create_buf n : buf =
  let a = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout n in
  Bigarray.Array1.fill a 0.0;
  a

let create_f32buf n : f32buf =
  let a = Bigarray.Array1.create Bigarray.Float32 Bigarray.C_layout n in
  Bigarray.Array1.fill a 0.0;
  a

type t = {
  n : int;
  box : float;
  params : Params.t;
  pos_x : buf;
  pos_y : buf;
  pos_z : buf;
  vel_x : buf;
  vel_y : buf;
  vel_z : buf;
  acc_x : buf;
  acc_y : buf;
  acc_z : buf;
  (* Lazily-allocated binary32 staging for the single-precision ports;
     refreshed (never reallocated) by [stage_positions_f32]. *)
  mutable stage32 : (f32buf * f32buf * f32buf) option;
}

let create ~n ~box ~params =
  Params.validate params;
  if n <= 0 then invalid_arg "System.create: n must be positive";
  if box < 2.0 *. params.Params.cutoff then
    invalid_arg
      (Printf.sprintf
         "System.create: box %g violates the minimum-image criterion (needs \
          >= 2 * cutoff = %g)"
         box
         (2.0 *. params.Params.cutoff));
  let z () = create_buf n in
  { n; box; params;
    pos_x = z (); pos_y = z (); pos_z = z ();
    vel_x = z (); vel_y = z (); vel_z = z ();
    acc_x = z (); acc_y = z (); acc_z = z ();
    stage32 = None }

let copy_buf (a : buf) : buf =
  let b = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout
      (Bigarray.Array1.dim a) in
  Bigarray.Array1.blit a b;
  b

let copy t =
  { t with
    pos_x = copy_buf t.pos_x; pos_y = copy_buf t.pos_y;
    pos_z = copy_buf t.pos_z;
    vel_x = copy_buf t.vel_x; vel_y = copy_buf t.vel_y;
    vel_z = copy_buf t.vel_z;
    acc_x = copy_buf t.acc_x; acc_y = copy_buf t.acc_y;
    acc_z = copy_buf t.acc_z;
    (* Staging is a per-system scratch cache: sharing it would let the
       copy and the original clobber each other's staged coordinates. *)
    stage32 = None }

let restore ~dst ~src =
  if dst.n <> src.n then invalid_arg "System.restore: size mismatch";
  let b s d = Bigarray.Array1.blit s d in
  b src.pos_x dst.pos_x; b src.pos_y dst.pos_y; b src.pos_z dst.pos_z;
  b src.vel_x dst.vel_x; b src.vel_y dst.vel_y; b src.vel_z dst.vel_z;
  b src.acc_x dst.acc_x; b src.acc_y dst.acc_y; b src.acc_z dst.acc_z

let position t i = Vec3.make t.pos_x.{i} t.pos_y.{i} t.pos_z.{i}
let velocity t i = Vec3.make t.vel_x.{i} t.vel_y.{i} t.vel_z.{i}
let acceleration t i = Vec3.make t.acc_x.{i} t.acc_y.{i} t.acc_z.{i}

(* Fold a coordinate into [0, box).  A single fmod plus correction is
   enough because the integrator moves atoms far less than a box length
   per step; arbitrary inputs are handled for robustness.  A tiny
   negative remainder makes [r +. box] round to [box] exactly, which
   would leak a coordinate outside the documented range — clamp it to
   the 0.0 it is one ulp away from. *)
let wrap_coord box x =
  let r = Float.rem x box in
  let r = if r < 0.0 then r +. box else r in
  if r >= box then 0.0 else r

let wrap_atom t i =
  t.pos_x.{i} <- wrap_coord t.box t.pos_x.{i};
  t.pos_y.{i} <- wrap_coord t.box t.pos_y.{i};
  t.pos_z.{i} <- wrap_coord t.box t.pos_z.{i}

let set_position t i (v : Vec3.t) =
  t.pos_x.{i} <- v.x;
  t.pos_y.{i} <- v.y;
  t.pos_z.{i} <- v.z;
  wrap_atom t i

let set_velocity t i (v : Vec3.t) =
  t.vel_x.{i} <- v.x;
  t.vel_y.{i} <- v.y;
  t.vel_z.{i} <- v.z

let clear_accelerations t =
  Bigarray.Array1.fill t.acc_x 0.0;
  Bigarray.Array1.fill t.acc_y 0.0;
  Bigarray.Array1.fill t.acc_z 0.0

(* Refresh (allocating on first use) the reusable binary32 position
   staging.  Storing a double into a float32 Bigarray rounds to nearest
   single exactly as [F32.round] does, so reads from these buffers are
   bit-identical to the former per-access [Array.map F32.round]. *)
let stage_positions_f32 t =
  let ((px, py, pz) as bufs) =
    match t.stage32 with
    | Some b -> b
    | None ->
      let b = (create_f32buf t.n, create_f32buf t.n, create_f32buf t.n) in
      t.stage32 <- Some b;
      b
  in
  for i = 0 to t.n - 1 do
    px.{i} <- t.pos_x.{i};
    py.{i} <- t.pos_y.{i};
    pz.{i} <- t.pos_z.{i}
  done;
  bufs

let check_compatible a b =
  if a.n <> b.n then invalid_arg "System: size mismatch"

let max_delta3 n (ax : buf) (ay : buf) (az : buf) (bx : buf) (by : buf)
    (bz : buf) =
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    worst := Float.max !worst (abs_float (ax.{i} -. bx.{i}));
    worst := Float.max !worst (abs_float (ay.{i} -. by.{i}));
    worst := Float.max !worst (abs_float (az.{i} -. bz.{i}))
  done;
  !worst

let max_position_delta a b =
  check_compatible a b;
  max_delta3 a.n a.pos_x a.pos_y a.pos_z b.pos_x b.pos_y b.pos_z

let max_acceleration_delta a b =
  check_compatible a b;
  max_delta3 a.n a.acc_x a.acc_y a.acc_z b.acc_x b.acc_y b.acc_z

let equal_positions ?(eps = 0.0) a b =
  a.n = b.n && max_position_delta a b <= eps

let density t = float_of_int t.n /. (t.box ** 3.0)

let finite t =
  let ok = ref true in
  let scan (a : buf) =
    if !ok then
      for i = 0 to t.n - 1 do
        if not (Float.is_finite a.{i}) then ok := false
      done
  in
  scan t.pos_x; scan t.pos_y; scan t.pos_z;
  scan t.vel_x; scan t.vel_y; scan t.vel_z;
  scan t.acc_x; scan t.acc_y; scan t.acc_z;
  !ok
