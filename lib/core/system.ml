module Vec3 = Vecmath.Vec3

type t = {
  n : int;
  box : float;
  params : Params.t;
  pos_x : float array;
  pos_y : float array;
  pos_z : float array;
  vel_x : float array;
  vel_y : float array;
  vel_z : float array;
  acc_x : float array;
  acc_y : float array;
  acc_z : float array;
}

let create ~n ~box ~params =
  Params.validate params;
  if n <= 0 then invalid_arg "System.create: n must be positive";
  if box < 2.0 *. params.Params.cutoff then
    invalid_arg
      (Printf.sprintf
         "System.create: box %g violates the minimum-image criterion (needs \
          >= 2 * cutoff = %g)"
         box
         (2.0 *. params.Params.cutoff));
  let z () = Array.make n 0.0 in
  { n; box; params;
    pos_x = z (); pos_y = z (); pos_z = z ();
    vel_x = z (); vel_y = z (); vel_z = z ();
    acc_x = z (); acc_y = z (); acc_z = z () }

let copy t =
  { t with
    pos_x = Array.copy t.pos_x; pos_y = Array.copy t.pos_y;
    pos_z = Array.copy t.pos_z;
    vel_x = Array.copy t.vel_x; vel_y = Array.copy t.vel_y;
    vel_z = Array.copy t.vel_z;
    acc_x = Array.copy t.acc_x; acc_y = Array.copy t.acc_y;
    acc_z = Array.copy t.acc_z }

let restore ~dst ~src =
  if dst.n <> src.n then invalid_arg "System.restore: size mismatch";
  let b s d = Array.blit s 0 d 0 src.n in
  b src.pos_x dst.pos_x; b src.pos_y dst.pos_y; b src.pos_z dst.pos_z;
  b src.vel_x dst.vel_x; b src.vel_y dst.vel_y; b src.vel_z dst.vel_z;
  b src.acc_x dst.acc_x; b src.acc_y dst.acc_y; b src.acc_z dst.acc_z

let position t i = Vec3.make t.pos_x.(i) t.pos_y.(i) t.pos_z.(i)
let velocity t i = Vec3.make t.vel_x.(i) t.vel_y.(i) t.vel_z.(i)
let acceleration t i = Vec3.make t.acc_x.(i) t.acc_y.(i) t.acc_z.(i)

(* Fold a coordinate into [0, box).  A single fmod plus correction is
   enough because the integrator moves atoms far less than a box length
   per step; arbitrary inputs are handled for robustness. *)
let wrap_coord box x =
  let r = Float.rem x box in
  if r < 0.0 then r +. box else r

let wrap_atom t i =
  t.pos_x.(i) <- wrap_coord t.box t.pos_x.(i);
  t.pos_y.(i) <- wrap_coord t.box t.pos_y.(i);
  t.pos_z.(i) <- wrap_coord t.box t.pos_z.(i)

let set_position t i (v : Vec3.t) =
  t.pos_x.(i) <- v.x;
  t.pos_y.(i) <- v.y;
  t.pos_z.(i) <- v.z;
  wrap_atom t i

let set_velocity t i (v : Vec3.t) =
  t.vel_x.(i) <- v.x;
  t.vel_y.(i) <- v.y;
  t.vel_z.(i) <- v.z

let clear_accelerations t =
  Array.fill t.acc_x 0 t.n 0.0;
  Array.fill t.acc_y 0 t.n 0.0;
  Array.fill t.acc_z 0 t.n 0.0

let check_compatible a b =
  if a.n <> b.n then invalid_arg "System: size mismatch"

let max_delta3 n ax ay az bx by bz =
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    worst := Float.max !worst (abs_float (ax.(i) -. bx.(i)));
    worst := Float.max !worst (abs_float (ay.(i) -. by.(i)));
    worst := Float.max !worst (abs_float (az.(i) -. bz.(i)))
  done;
  !worst

let max_position_delta a b =
  check_compatible a b;
  max_delta3 a.n a.pos_x a.pos_y a.pos_z b.pos_x b.pos_y b.pos_z

let max_acceleration_delta a b =
  check_compatible a b;
  max_delta3 a.n a.acc_x a.acc_y a.acc_z b.acc_x b.acc_y b.acc_z

let equal_positions ?(eps = 0.0) a b =
  a.n = b.n && max_position_delta a b <= eps

let density t = float_of_int t.n /. (t.box ** 3.0)

let finite t =
  let ok = ref true in
  let scan a =
    if !ok then
      for i = 0 to t.n - 1 do
        if not (Float.is_finite a.(i)) then ok := false
      done
  in
  scan t.pos_x; scan t.pos_y; scan t.pos_z;
  scan t.vel_x; scan t.vel_y; scan t.vel_z;
  scan t.acc_x; scan t.acc_y; scan t.acc_z;
  !ok
