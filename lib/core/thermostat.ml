let scale_velocities (s : System.t) factor =
  for i = 0 to s.System.n - 1 do
    s.System.vel_x.{i} <- factor *. s.System.vel_x.{i};
    s.System.vel_y.{i} <- factor *. s.System.vel_y.{i};
    s.System.vel_z.{i} <- factor *. s.System.vel_z.{i}
  done

let rescale s ~target =
  if target < 0.0 then invalid_arg "Thermostat.rescale: negative target";
  let current = Observables.temperature s in
  if current > 0.0 then scale_velocities s (sqrt (target /. current))

let berendsen s ~target ~tau =
  if target < 0.0 then invalid_arg "Thermostat.berendsen: negative target";
  if tau <= 0.0 then invalid_arg "Thermostat.berendsen: tau must be positive";
  let current = Observables.temperature s in
  if current > 0.0 then begin
    let dt = s.System.params.Params.dt in
    let lambda2 = 1.0 +. (dt /. tau *. ((target /. current) -. 1.0)) in
    (* Guard against pathological overshoot on tiny tau or cold systems. *)
    let lambda2 = Float.max 0.25 (Float.min 4.0 lambda2) in
    scale_velocities s (sqrt lambda2)
  end

(* Stochastic velocity rescaling (a simplified canonical-sampling
   variant of Bussi et al. 2007): Berendsen's deterministic relaxation
   plus a noise term sized so temperature fluctuates with the canonical
   variance instead of being damped flat.  Carries a private RNG, which
   makes it the one stateful thermostat — its state must travel in
   checkpoints for bitwise resume. *)
type csvr = { cv_target : float; cv_tau : float; cv_rng : Sim_util.Rng.t }

let csvr ?(seed = 1234) ~target ~tau () =
  if target < 0.0 then invalid_arg "Thermostat.csvr: negative target";
  if tau <= 0.0 then invalid_arg "Thermostat.csvr: tau must be positive";
  { cv_target = target; cv_tau = tau; cv_rng = Sim_util.Rng.create seed }

let csvr_apply cv (s : System.t) =
  let current = Observables.temperature s in
  if current > 0.0 && cv.cv_target > 0.0 then begin
    let dt = s.System.params.Params.dt in
    let c = dt /. cv.cv_tau in
    let nf = float_of_int (3 * (s.System.n - 1)) in
    let xi = Sim_util.Rng.gaussian cv.cv_rng in
    let ratio = cv.cv_target /. current in
    let lambda2 =
      1.0 +. (c *. (ratio -. 1.0))
      +. (2.0 *. sqrt (c *. ratio /. nf) *. xi)
    in
    let lambda2 = Float.max 0.25 (Float.min 4.0 lambda2) in
    scale_velocities s (sqrt lambda2)
  end

type csvr_state = {
  csvr_target : float;
  csvr_tau : float;
  csvr_rng : Sim_util.Rng.state;
}

let csvr_state cv =
  { csvr_target = cv.cv_target;
    csvr_tau = cv.cv_tau;
    csvr_rng = Sim_util.Rng.state cv.cv_rng }

let csvr_of_state st =
  { cv_target = st.csvr_target;
    cv_tau = st.csvr_tau;
    cv_rng = Sim_util.Rng.of_state st.csvr_rng }

let equilibrate_csvr s ~engine ~csvr:cv ~steps () =
  if steps < 0 then invalid_arg "Thermostat.equilibrate_csvr: steps < 0";
  Verlet.run s ~engine ~steps
    ~record:(fun r -> if r.Verlet.step > 0 then csvr_apply cv s)
    ()

let equilibrate s ~engine ~target ~steps ?tau () =
  if steps < 0 then invalid_arg "Thermostat.equilibrate: steps < 0";
  let tau =
    match tau with
    | Some t -> t
    | None -> 20.0 *. s.System.params.Params.dt
  in
  Verlet.run s ~engine ~steps
    ~record:(fun r ->
      if r.Verlet.step > 0 then berendsen s ~target ~tau)
    ()
