(** Periodic minimum-image displacement, two ways.

    The paper's inner loop spends much of its time "searching the 27
    neighboring unit cells for the instances of each atom pair which are
    closest" — a brute-force minimum-image search over the ±1 box shifts in
    each axis.  That search is what the Cell port first de-branches
    (copysign) and then SIMDizes (all three axes at once), so we keep the
    search variant alongside the closed-form one and test that they agree. *)

val wrap : box:float -> float -> float
(** Fold a coordinate into [\[0, box)].  Strictly below [box]: when a
    tiny negative remainder makes [rem + box] round to [box], the result
    clamps to [0.0]. *)

val delta : box:float -> float -> float
(** [delta ~box dx] is the closed-form minimum-image displacement:
    dx − box·round(dx/box).  Result lies in [\[-box/2, box/2\]]. *)

val delta_search : box:float -> float -> float
(** The same quantity by scanning the three candidate images
    (dx − box, dx, dx + box) and keeping the smallest in magnitude —
    exactly the paper's searched formulation (valid for
    |dx| ≤ 3·box/2, which wrapped coordinates guarantee). *)

val delta_search_branchless : box:float -> float -> float
(** The branch-free rewrite of {!delta_search} using [copysign], the
    paper's first SPE optimization: shift by
    −copysign(box, dx) when |dx| > box/2. *)

val pair_delta : box:float -> xi:float -> xj:float -> float
(** Minimum-image [xi − xj] for wrapped coordinates. *)

val dist2 : box:float -> Vecmath.Vec3.t -> Vecmath.Vec3.t -> float
(** Squared minimum-image distance between two wrapped positions. *)
