(** Temperature control for NVT-style runs.

    The paper's kernel is pure NVE (no thermostat), but any downstream
    user equilibrating a system needs one; these are the two standard
    weak-coupling schemes. *)

val rescale : System.t -> target:float -> unit
(** Velocity rescaling: scale all velocities so the instantaneous
    temperature equals [target] exactly.  No-op on a zero-temperature
    system.  [target] must be nonnegative. *)

val berendsen : System.t -> target:float -> tau:float -> unit
(** One Berendsen weak-coupling step: velocities scale by
    sqrt(1 + (dt/tau)(target/T - 1)), relaxing T toward [target] with
    time constant [tau] (> 0, in reduced time units).  Gentler than
    {!rescale}; the standard equilibration choice. *)

val equilibrate : System.t -> engine:Engine.t -> target:float ->
  steps:int -> ?tau:float -> unit -> Verlet.step_record list
(** Integrate [steps] velocity-Verlet steps applying a Berendsen step
    after each (default [tau] = 20·dt), returning the records.  Leaves
    the system near [target] temperature. *)

(** {1 Stochastic velocity rescaling (CSVR)}

    A simplified canonical-sampling thermostat (after Bussi, Donadio &
    Parrinello 2007): the Berendsen relaxation plus a Gaussian noise
    term sized for canonical temperature fluctuations.  Unlike
    {!rescale}/{!berendsen} it is {e stateful} — it owns an RNG — so it
    is the thermostat whose state checkpoints must carry for bitwise
    resume. *)

type csvr

val csvr : ?seed:int -> target:float -> tau:float -> unit -> csvr
(** Fresh thermostat (default [seed] 1234).  [target >= 0], [tau > 0]. *)

val csvr_apply : csvr -> System.t -> unit
(** One stochastic rescaling step; advances the thermostat RNG by one
    Gaussian draw.  λ² is clamped to [\[0.25, 4\]] like {!berendsen}. *)

type csvr_state = {
  csvr_target : float;
  csvr_tau : float;
  csvr_rng : Sim_util.Rng.state;
}
(** Serializable snapshot: configuration plus exact RNG position. *)

val csvr_state : csvr -> csvr_state
val csvr_of_state : csvr_state -> csvr

val equilibrate_csvr : System.t -> engine:Engine.t -> csvr:csvr ->
  steps:int -> unit -> Verlet.step_record list
(** Like {!equilibrate} but driven by a [csvr] thermostat. *)
