module Rng = Sim_util.Rng

let lattice_box ~n ~density =
  if n <= 0 then invalid_arg "Init.lattice_box: n must be positive";
  if density <= 0.0 then invalid_arg "Init.lattice_box: density";
  (float_of_int n /. density) ** (1.0 /. 3.0)

(* Place [n] atoms on a face-centred-cubic lattice (4 sites per cubic
   cell, m^3 cells with m = ceil((n/4)^(1/3))), thinning the site list
   evenly when n is not exactly 4*m^3.  FCC is the standard LJ starting
   configuration: at liquid densities its nearest-neighbour distance sits
   near the potential minimum, so the initial forces are gentle and the
   integrator's first steps stay well-conditioned. *)
let fcc_offsets =
  [| (0.0, 0.0, 0.0); (0.5, 0.5, 0.0); (0.5, 0.0, 0.5); (0.0, 0.5, 0.5) |]

let place_lattice system =
  let n = system.System.n in
  let box = system.System.box in
  let m =
    let rec fit c = if 4 * c * c * c >= n then c else fit (c + 1) in
    fit 1
  in
  let sites = 4 * m * m * m in
  let cell = box /. float_of_int m in
  let stride = float_of_int sites /. float_of_int n in
  for k = 0 to n - 1 do
    let site = min (int_of_float (float_of_int k *. stride)) (sites - 1) in
    let basis = site mod 4 in
    let c = site / 4 in
    let iz = c / (m * m) in
    let iy = c / m mod m in
    let ix = c mod m in
    let ox, oy, oz = fcc_offsets.(basis) in
    let coord i o = (float_of_int i +. 0.25 +. o) *. cell in
    System.set_position system k
      (Vecmath.Vec3.make (coord ix ox) (coord iy oy) (coord iz oz))
  done

let remove_net_momentum system =
  let n = system.System.n in
  let avg (arr : System.buf) =
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      sum := !sum +. arr.{i}
    done;
    !sum /. float_of_int n
  in
  let mx = avg system.System.vel_x
  and my = avg system.System.vel_y
  and mz = avg system.System.vel_z in
  for i = 0 to n - 1 do
    system.System.vel_x.{i} <- system.System.vel_x.{i} -. mx;
    system.System.vel_y.{i} <- system.System.vel_y.{i} -. my;
    system.System.vel_z.{i} <- system.System.vel_z.{i} -. mz
  done

let maxwell_velocities system ~temperature rng =
  if temperature < 0.0 then invalid_arg "Init.maxwell_velocities: temperature";
  let sigma = sqrt (temperature /. system.System.params.Params.mass) in
  for i = 0 to system.System.n - 1 do
    System.set_velocity system i
      (Vecmath.Vec3.make
         (Rng.gaussian_scaled rng ~mean:0.0 ~sigma)
         (Rng.gaussian_scaled rng ~mean:0.0 ~sigma)
         (Rng.gaussian_scaled rng ~mean:0.0 ~sigma))
  done;
  remove_net_momentum system

let jitter_positions system ~magnitude rng =
  if magnitude < 0.0 then invalid_arg "Init.jitter_positions: magnitude";
  for i = 0 to system.System.n - 1 do
    let p = System.position system i in
    System.set_position system i
      (Vecmath.Vec3.make
         (p.x +. Rng.uniform rng (-.magnitude) magnitude)
         (p.y +. Rng.uniform rng (-.magnitude) magnitude)
         (p.z +. Rng.uniform rng (-.magnitude) magnitude))
  done

(* Capped steepest descent: push atoms down the potential gradient with a
   bounded per-step displacement.  When the atom count is not a perfect
   4*m^3, the thinned FCC lattice leaves a few sub-sigma pairs whose r^-12
   repulsion would wreck the integrator's first steps; a handful of
   descent iterations relaxes them without disturbing the bulk.  The
   cell-list engine keeps this O(n) whenever the box is large enough. *)
let relax system ~iterations ~max_step =
  if iterations < 0 then invalid_arg "Init.relax: negative iterations";
  if max_step <= 0.0 then invalid_arg "Init.relax: max_step must be positive";
  let n = system.System.n in
  let compute =
    if Cell_list.cells_per_axis system >= 3 then Cell_list.compute
    else Forces.compute_gather
  in
  (* Step size chosen so typical forces move atoms well below max_step;
     the cap is what matters for the near-overlap pairs. *)
  let gamma = 1e-3 in
  let cap v = Float.min max_step (Float.max (-.max_step) v) in
  for _ = 1 to iterations do
    ignore (compute system);
    for i = 0 to n - 1 do
      system.System.pos_x.{i} <-
        system.System.pos_x.{i} +. cap (gamma *. system.System.acc_x.{i});
      system.System.pos_y.{i} <-
        system.System.pos_y.{i} +. cap (gamma *. system.System.acc_y.{i});
      system.System.pos_z.{i} <-
        system.System.pos_z.{i} +. cap (gamma *. system.System.acc_z.{i});
      System.wrap_atom system i
    done
  done;
  System.clear_accelerations system

let random_unit_step rng =
  (* Marsaglia rejection: uniform direction on the sphere. *)
  let rec draw () =
    let x = Rng.uniform rng (-1.0) 1.0
    and y = Rng.uniform rng (-1.0) 1.0
    and z = Rng.uniform rng (-1.0) 1.0 in
    let n2 = (x *. x) +. (y *. y) +. (z *. z) in
    if n2 > 1.0 || n2 < 1e-6 then draw ()
    else begin
      let n = sqrt n2 in
      Vecmath.Vec3.make (x /. n) (y /. n) (z /. n)
    end
  in
  draw ()

let build_chains ?(seed = 42) ?(density = 0.3) ?(temperature = 1.0)
    ?(params = Params.default) ~n_chains ~length ~r0 () =
  if n_chains <= 0 || length <= 0 then
    invalid_arg "Init.build_chains: counts must be positive";
  if r0 <= 0.0 then invalid_arg "Init.build_chains: r0 must be positive";
  let n = n_chains * length in
  let box = lattice_box ~n ~density in
  let system = System.create ~n ~box ~params in
  let rng = Rng.create seed in
  (* Chain origins on a coarse cubic grid. *)
  let m =
    let rec fit c = if c * c * c >= n_chains then c else fit (c + 1) in
    fit 1
  in
  let cell = box /. float_of_int m in
  for c = 0 to n_chains - 1 do
    let iz = c / (m * m) and iy = c / m mod m and ix = c mod m in
    let origin =
      Vecmath.Vec3.make
        ((float_of_int ix +. 0.5) *. cell)
        ((float_of_int iy +. 0.5) *. cell)
        ((float_of_int iz +. 0.5) *. cell)
    in
    let pos = ref origin in
    for k = 0 to length - 1 do
      System.set_position system ((c * length) + k) !pos;
      pos :=
        Vecmath.Vec3.add !pos (Vecmath.Vec3.scale r0 (random_unit_step rng))
    done
  done;
  relax system ~iterations:40 ~max_step:(0.05 *. params.Params.sigma);
  maxwell_velocities system ~temperature (Rng.split rng);
  system

let build ?(seed = 42) ?(density = 0.8) ?(temperature = 1.0)
    ?(params = Params.default) ~n () =
  let box = lattice_box ~n ~density in
  let system = System.create ~n ~box ~params in
  let rng = Rng.create seed in
  place_lattice system;
  (* 2% of the FCC cell: enough to break symmetry, small enough to keep
     the initial configuration far from the r^-12 wall. *)
  let m = Float.cbrt (float_of_int n /. 4.0) in
  jitter_positions system ~magnitude:(0.02 *. box /. Float.max 1.0 m)
    (Rng.split rng);
  relax system ~iterations:25 ~max_step:(0.05 *. params.Params.sigma);
  maxwell_velocities system ~temperature (Rng.split rng);
  system
