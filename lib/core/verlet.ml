type step_record = {
  step : int;
  sim_time : float;
  pe : float;
  ke : float;
  total_energy : float;
  temperature : float;
}

let half_kick (s : System.t) =
  let h = 0.5 *. s.System.params.Params.dt in
  for i = 0 to s.System.n - 1 do
    s.System.vel_x.(i) <- s.System.vel_x.(i) +. (h *. s.System.acc_x.(i));
    s.System.vel_y.(i) <- s.System.vel_y.(i) +. (h *. s.System.acc_y.(i));
    s.System.vel_z.(i) <- s.System.vel_z.(i) +. (h *. s.System.acc_z.(i))
  done

let drift (s : System.t) =
  let dt = s.System.params.Params.dt in
  for i = 0 to s.System.n - 1 do
    s.System.pos_x.(i) <- s.System.pos_x.(i) +. (dt *. s.System.vel_x.(i));
    s.System.pos_y.(i) <- s.System.pos_y.(i) +. (dt *. s.System.vel_y.(i));
    s.System.pos_z.(i) <- s.System.pos_z.(i) +. (dt *. s.System.vel_z.(i));
    System.wrap_atom s i
  done

let prepare s ~engine = engine.Engine.compute s

let step s ~engine =
  half_kick s;
  drift s;
  let pe = engine.Engine.compute s in
  half_kick s;
  pe

let make_record s ~step:n ~pe =
  let ke = Observables.kinetic_energy s in
  { step = n;
    sim_time = float_of_int n *. s.System.params.Params.dt;
    pe;
    ke;
    total_energy = ke +. pe;
    temperature = Observables.temperature s }

let run s ~engine ~steps ?(max_step_retries = 0) ?(record = fun _ -> ()) () =
  if steps < 0 then invalid_arg "Verlet.run: steps < 0";
  if max_step_retries < 0 then invalid_arg "Verlet.run: max_step_retries < 0";
  (* Checkpointed execution: snapshot the full SoA state before each
     force evaluation, and on a mid-step device failure (an unrecovered
     fault escaping the engine) roll back and re-execute the step.  The
     snapshot buffer is reused across steps; the fault-free path with
     [max_step_retries = 0] allocates nothing and runs the exact
     pre-checkpointing code. *)
  let checkpoint = if max_step_retries > 0 then Some (System.copy s) else None in
  let checkpointed f =
    match checkpoint with
    | None -> f ()
    | Some snap ->
      System.restore ~dst:snap ~src:s;
      let rec go attempt =
        match f () with
        | r ->
          if attempt > 0 then Mdfault.note_recovered_step ();
          r
        | exception Mdfault.Unrecovered _ when attempt < max_step_retries ->
          System.restore ~dst:s ~src:snap;
          go (attempt + 1)
      in
      go 0
  in
  let pe0 = checkpointed (fun () -> prepare s ~engine) in
  let first = make_record s ~step:0 ~pe:pe0 in
  record first;
  let rest =
    List.init steps (fun k ->
        let pe = checkpointed (fun () -> step s ~engine) in
        let r = make_record s ~step:(k + 1) ~pe in
        record r;
        r)
  in
  first :: rest
