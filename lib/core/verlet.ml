type step_record = {
  step : int;
  sim_time : float;
  pe : float;
  ke : float;
  total_energy : float;
  temperature : float;
}

let half_kick (s : System.t) =
  let h = 0.5 *. s.System.params.Params.dt in
  for i = 0 to s.System.n - 1 do
    s.System.vel_x.{i} <- s.System.vel_x.{i} +. (h *. s.System.acc_x.{i});
    s.System.vel_y.{i} <- s.System.vel_y.{i} +. (h *. s.System.acc_y.{i});
    s.System.vel_z.{i} <- s.System.vel_z.{i} +. (h *. s.System.acc_z.{i})
  done

let drift (s : System.t) =
  let dt = s.System.params.Params.dt in
  for i = 0 to s.System.n - 1 do
    s.System.pos_x.{i} <- s.System.pos_x.{i} +. (dt *. s.System.vel_x.{i});
    s.System.pos_y.{i} <- s.System.pos_y.{i} +. (dt *. s.System.vel_y.{i});
    s.System.pos_z.{i} <- s.System.pos_z.{i} +. (dt *. s.System.vel_z.{i});
    System.wrap_atom s i
  done

let prepare s ~engine = engine.Engine.compute s

let step s ~engine =
  half_kick s;
  drift s;
  let pe = engine.Engine.compute s in
  half_kick s;
  pe

let make_record s ~step:n ~pe =
  let ke = Observables.kinetic_energy s in
  { step = n;
    sim_time = float_of_int n *. s.System.params.Params.dt;
    pe;
    ke;
    total_energy = ke +. pe;
    temperature = Observables.temperature s }

(* ------------------------------------------------------------------ *)
(* Invariant guard                                                     *)
(* ------------------------------------------------------------------ *)

type guard = {
  max_energy_jump : float;
  max_momentum_drift : float;
  max_restores : int;
}

let default_guard =
  (* Velocity Verlet conserves energy to a few parts in 1e5 per step at
     the dt used here, and net momentum to rounding error; silent
     corruption (a flipped mantissa/exponent bit in a coordinate or
     acceleration) shows up orders of magnitude above both bounds. *)
  { max_energy_jump = 0.05; max_momentum_drift = 1e-6; max_restores = 4 }

exception Invariant_violation of string

let () =
  Printexc.register_printer (function
    | Invariant_violation reason -> Some ("Verlet.Invariant_violation: " ^ reason)
    | _ -> None)

let installed_guard : guard option Atomic.t = Atomic.make None
let install_guard g = Atomic.set installed_guard (Some g)
let clear_guard () = Atomic.set installed_guard None
let current_guard () = Atomic.get installed_guard

(* Observation hooks: telemetry lives above mdcore (it depends on the
   ports' counters), so it registers closures here instead of being
   called directly.  Same single-atomic-load cost profile as the
   installed guard when nothing is registered. *)

let step_listener : (System.t -> step_record -> unit) option Atomic.t =
  Atomic.make None

let set_step_listener f = Atomic.set step_listener f

let notify_step s r =
  match Atomic.get step_listener with None -> () | Some f -> f s r

let alert_listener : (step:int -> reason:string -> unit) option Atomic.t =
  Atomic.make None

let set_alert_listener f = Atomic.set alert_listener f

let notify_alert ~step ~reason =
  match Atomic.get alert_listener with
  | None -> ()
  | Some f -> f ~step ~reason

let check_invariants g s ~prev ~(r : step_record) ~p0 =
  if
    not
      (Float.is_finite r.pe && Float.is_finite r.ke && System.finite s)
  then
    Some
      (Printf.sprintf "non-finite state at step %d (NaN/Inf coordinate or energy)"
         r.step)
  else begin
    let energy_bad =
      match prev with
      | None -> None
      | Some (p : step_record) ->
        let jump =
          abs_float (r.total_energy -. p.total_energy)
          /. Float.max 1.0 (abs_float p.total_energy)
        in
        if jump > g.max_energy_jump then
          Some
            (Printf.sprintf
               "energy jump %.3g at step %d exceeds guard bound %.3g" jump
               r.step g.max_energy_jump)
        else None
    in
    match energy_bad with
    | Some _ as bad -> bad
    | None ->
      let p = Observables.total_momentum s in
      let drift =
        Float.max
          (abs_float (p.Vecmath.Vec3.x -. p0.Vecmath.Vec3.x))
          (Float.max
             (abs_float (p.Vecmath.Vec3.y -. p0.Vecmath.Vec3.y))
             (abs_float (p.Vecmath.Vec3.z -. p0.Vecmath.Vec3.z)))
      in
      let bound = g.max_momentum_drift *. float_of_int s.System.n in
      if drift > bound then
        Some
          (Printf.sprintf
             "net-momentum drift %.3g at step %d exceeds guard bound %.3g"
             drift r.step bound)
      else None
  end

let run s ~engine ~steps ?(max_step_retries = 0) ?guard ?(record = fun _ -> ())
    () =
  if steps < 0 then invalid_arg "Verlet.run: steps < 0";
  if max_step_retries < 0 then invalid_arg "Verlet.run: max_step_retries < 0";
  let guard =
    match guard with Some _ as g -> g | None -> Atomic.get installed_guard
  in
  (* Checkpointed execution: snapshot the full SoA state before each
     force evaluation, and on a mid-step device failure (an unrecovered
     fault escaping the engine) roll back and re-execute the step.  The
     snapshot buffer is reused across steps; the fault-free, guard-free
     path with [max_step_retries = 0] allocates nothing and runs the
     exact pre-checkpointing code. *)
  let checkpoint =
    if max_step_retries > 0 || guard <> None then Some (System.copy s)
    else None
  in
  let checkpointed f =
    match checkpoint with
    | None -> f ()
    | Some snap ->
      System.restore ~dst:snap ~src:s;
      let rec go attempt =
        match f () with
        | r ->
          if attempt > 0 then Mdfault.note_recovered_step ();
          r
        | exception Mdfault.Unrecovered _ when attempt < max_step_retries ->
          System.restore ~dst:s ~src:snap;
          go (attempt + 1)
      in
      go 0
  in
  (* The guard validates the freshly produced record against the previous
     one; on violation it rolls the state back to the pre-step snapshot
     (the newest valid generation) and re-executes.  Re-execution draws
     fresh fault-stream values, so transient silent corruption — a
     texture-lane or DRAM bit flip — converges back to the clean
     trajectory; persistent violations escalate to Invariant_violation. *)
  let guarded ~prev ~p0 exec ~step_index =
    match guard with
    | None ->
      let pe = checkpointed exec in
      make_record s ~step:step_index ~pe
    | Some g ->
      let snap = Option.get checkpoint in
      let rec go restores =
        let pe = checkpointed exec in
        let r = make_record s ~step:step_index ~pe in
        match check_invariants g s ~prev ~r ~p0 with
        | None -> r
        | Some reason ->
          notify_alert ~step:step_index ~reason;
          if step_index > 0 && restores < g.max_restores then begin
            System.restore ~dst:s ~src:snap;
            Mdfault.note_guard_restore ();
            go (restores + 1)
          end
          else raise (Invariant_violation reason)
      in
      go 0
  in
  let p0 = Observables.total_momentum s in
  Sim_util.Deadline.check ();
  let first = guarded ~prev:None ~p0 (fun () -> prepare s ~engine) ~step_index:0 in
  record first;
  notify_step s first;
  let prev = ref first in
  let rest =
    List.init steps (fun k ->
        Sim_util.Deadline.check ();
        let r =
          guarded ~prev:(Some !prev) ~p0
            (fun () -> step s ~engine)
            ~step_index:(k + 1)
        in
        record r;
        notify_step s r;
        prev := r;
        r)
  in
  first :: rest
