let accumulate_bonds topology (s : System.t) =
  let { System.box; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; params; _ } =
    s
  in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe = ref 0.0 in
  Array.iter
    (fun (b : Topology.bond) ->
      let dx = Min_image.delta ~box (pos_x.{b.Topology.i} -. pos_x.{b.Topology.j})
      and dy = Min_image.delta ~box (pos_y.{b.Topology.i} -. pos_y.{b.Topology.j})
      and dz = Min_image.delta ~box (pos_z.{b.Topology.i} -. pos_z.{b.Topology.j}) in
      let r = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
      let stretch = r -. b.Topology.r0 in
      pe := !pe +. (0.5 *. b.Topology.k_bond *. stretch *. stretch);
      if r > 0.0 then begin
        (* F_i = -k (r - r0) rhat, applied equal and opposite. *)
        let coeff = -.b.Topology.k_bond *. stretch /. r *. inv_mass in
        acc_x.{b.Topology.i} <- acc_x.{b.Topology.i} +. (coeff *. dx);
        acc_y.{b.Topology.i} <- acc_y.{b.Topology.i} +. (coeff *. dy);
        acc_z.{b.Topology.i} <- acc_z.{b.Topology.i} +. (coeff *. dz);
        acc_x.{b.Topology.j} <- acc_x.{b.Topology.j} -. (coeff *. dx);
        acc_y.{b.Topology.j} <- acc_y.{b.Topology.j} -. (coeff *. dy);
        acc_z.{b.Topology.j} <- acc_z.{b.Topology.j} -. (coeff *. dz)
      end)
    (Topology.bonds topology);
  !pe

let accumulate_angles topology (s : System.t) =
  let { System.box; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; params; _ } =
    s
  in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe = ref 0.0 in
  Array.iter
    (fun (a : Topology.angle) ->
      let i = a.Topology.a and j = a.Topology.center and k = a.Topology.c in
      (* u = r_i - r_j, v = r_k - r_j (minimum image) *)
      let ux = Min_image.delta ~box (pos_x.{i} -. pos_x.{j})
      and uy = Min_image.delta ~box (pos_y.{i} -. pos_y.{j})
      and uz = Min_image.delta ~box (pos_z.{i} -. pos_z.{j}) in
      let vx = Min_image.delta ~box (pos_x.{k} -. pos_x.{j})
      and vy = Min_image.delta ~box (pos_y.{k} -. pos_y.{j})
      and vz = Min_image.delta ~box (pos_z.{k} -. pos_z.{j}) in
      let nu = sqrt ((ux *. ux) +. (uy *. uy) +. (uz *. uz)) in
      let nv = sqrt ((vx *. vx) +. (vy *. vy) +. (vz *. vz)) in
      if nu > 0.0 && nv > 0.0 then begin
        let dot = (ux *. vx) +. (uy *. vy) +. (uz *. vz) in
        let cos_t = Float.max (-1.0) (Float.min 1.0 (dot /. (nu *. nv))) in
        let theta = acos cos_t in
        let delta = theta -. a.Topology.theta0 in
        pe := !pe +. (0.5 *. a.Topology.k_angle *. delta *. delta);
        let sin_t = sqrt (Float.max 1e-12 (1.0 -. (cos_t *. cos_t))) in
        (* dV/dtheta, then dtheta/dr via the standard gradient:
           dtheta/dr_i = -1/(nu sin) (vhat - cos uhat),
           dtheta/dr_k = -1/(nv sin) (uhat - cos vhat),
           dtheta/dr_j = -(dtheta/dr_i + dtheta/dr_k). *)
        let dvdt = a.Topology.k_angle *. delta in
        let uhx = ux /. nu and uhy = uy /. nu and uhz = uz /. nu in
        let vhx = vx /. nv and vhy = vy /. nv and vhz = vz /. nv in
        (* F_i = -dV/dr_i = +(k dtheta / (|u| sin)) (vhat - cos uhat):
           the minus of the gradient cancels the minus in
           dtheta/dcos = -1/sin. *)
        let gi = dvdt /. (nu *. sin_t) in
        let gix = gi *. (vhx -. (cos_t *. uhx)) in
        let giy = gi *. (vhy -. (cos_t *. uhy)) in
        let giz = gi *. (vhz -. (cos_t *. uhz)) in
        let gk = dvdt /. (nv *. sin_t) in
        let gkx = gk *. (uhx -. (cos_t *. vhx)) in
        let gky = gk *. (uhy -. (cos_t *. vhy)) in
        let gkz = gk *. (uhz -. (cos_t *. vhz)) in
        acc_x.{i} <- acc_x.{i} +. (gix *. inv_mass);
        acc_y.{i} <- acc_y.{i} +. (giy *. inv_mass);
        acc_z.{i} <- acc_z.{i} +. (giz *. inv_mass);
        acc_x.{k} <- acc_x.{k} +. (gkx *. inv_mass);
        acc_y.{k} <- acc_y.{k} +. (gky *. inv_mass);
        acc_z.{k} <- acc_z.{k} +. (gkz *. inv_mass);
        acc_x.{j} <- acc_x.{j} -. ((gix +. gkx) *. inv_mass);
        acc_y.{j} <- acc_y.{j} -. ((giy +. gky) *. inv_mass);
        acc_z.{j} <- acc_z.{j} -. ((giz +. gkz) *. inv_mass)
      end)
    (Topology.angles topology);
  !pe

let compute_nonbonded_excluded topology (s : System.t) =
  let { System.n; box; params; pos_x; pos_y; pos_z; acc_x; acc_y; acc_z; _ } =
    s
  in
  let rc2 = Params.cutoff2 params in
  let inv_mass = 1.0 /. params.Params.mass in
  let pe2 = ref 0.0 in
  for i = 0 to n - 1 do
    let xi = pos_x.{i} and yi = pos_y.{i} and zi = pos_z.{i} in
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i && not (Topology.excluded topology i j) then begin
        let dx = Min_image.delta ~box (xi -. pos_x.{j})
        and dy = Min_image.delta ~box (yi -. pos_y.{j})
        and dz = Min_image.delta ~box (zi -. pos_z.{j}) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < rc2 then begin
          let f_over_r = Params.lj_force_over_r params r2 in
          fx := !fx +. (f_over_r *. dx);
          fy := !fy +. (f_over_r *. dy);
          fz := !fz +. (f_over_r *. dz);
          pe2 := !pe2 +. Params.lj_potential params r2
        end
      end
    done;
    acc_x.{i} <- !fx *. inv_mass;
    acc_y.{i} <- !fy *. inv_mass;
    acc_z.{i} <- !fz *. inv_mass
  done;
  0.5 *. !pe2

let molecular_engine topology =
  Engine.make ~name:"molecular" ~compute:(fun s ->
      let pe_nb = compute_nonbonded_excluded topology s in
      let pe_bond = accumulate_bonds topology s in
      let pe_angle = accumulate_angles topology s in
      pe_nb +. pe_bond +. pe_angle)
