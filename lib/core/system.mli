(** The simulated collection of atoms, in structure-of-arrays layout.

    SoA is the layout every port in the paper works against: "the positions
    of atoms are usually stored in arrays" — the Opteron walks them
    linearly, the Cell DMAs contiguous spans of them into local stores,
    the GPU uploads them as a texture.  Storage is unboxed
    [(float, float64_elt, c_layout) Bigarray.Array1.t] buffers: contiguous
    malloc'd memory outside the OCaml heap, so hot loops stream flat
    doubles with no GC scanning and checkpoints can encode the raw
    IEEE-754 bytes directly.  Positions are kept inside the periodic box
    [\[0, box)³] at all times (enforced by {!wrap_atom}). *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** One SoA coordinate stream; index with [a.{i}]. *)

type f32buf = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Binary32 staging stream for the single-precision device ports.
    Stores round to nearest single (exactly {!Sim_util.F32.round});
    reads return the widened single. *)

val create_buf : int -> buf
(** Zero-filled [float64] buffer. *)

val create_f32buf : int -> f32buf
(** Zero-filled [float32] buffer. *)

type t = {
  n : int;
  box : float;                  (** cubic box side length *)
  params : Params.t;
  pos_x : buf;
  pos_y : buf;
  pos_z : buf;
  vel_x : buf;
  vel_y : buf;
  vel_z : buf;
  acc_x : buf;
  acc_y : buf;
  acc_z : buf;
  mutable stage32 : (f32buf * f32buf * f32buf) option;
      (** Reusable binary32 position staging, managed by
          {!stage_positions_f32}; [None] until first staged. *)
}

val create : n:int -> box:float -> params:Params.t -> t
(** Zero-initialized buffers.  Requires [n > 0] and [box >= 2 * cutoff]
    (the minimum-image criterion — with a smaller box an atom would
    interact with two images of the same neighbour). *)

val copy : t -> t

val restore : dst:t -> src:t -> unit
(** Blit all nine buffers of [src] over [dst] (positions, velocities,
    accelerations) — checkpoint/rollback for mid-step device-failure
    recovery.  Requires equal [n]. *)

val position : t -> int -> Vecmath.Vec3.t
val velocity : t -> int -> Vecmath.Vec3.t
val acceleration : t -> int -> Vecmath.Vec3.t
val set_position : t -> int -> Vecmath.Vec3.t -> unit
(** Wraps into the box. *)

val set_velocity : t -> int -> Vecmath.Vec3.t -> unit

val wrap_coord : float -> float -> float
(** [wrap_coord box x] folds [x] into [\[0, box)].  The result is
    strictly below [box] even when a tiny negative remainder would make
    [rem + box] round to [box] (it clamps to [0.0]). *)

val wrap_atom : t -> int -> unit
(** Re-impose periodic boundary conditions on atom [i]'s stored position. *)

val clear_accelerations : t -> unit

val stage_positions_f32 : t -> f32buf * f32buf * f32buf
(** Refresh and return the reusable binary32 staging buffers [(x, y, z)]
    holding the current positions rounded to single precision.  The
    buffers are allocated once per system and overwritten on every call
    — the Cell and GPU ports stage through these instead of allocating
    a rounded copy per force evaluation. *)

val equal_positions : ?eps:float -> t -> t -> bool
val max_position_delta : t -> t -> float
(** Largest absolute componentwise position difference (for port
    tolerance checks); systems must have equal [n]. *)

val max_acceleration_delta : t -> t -> float
val density : t -> float
(** n / box³. *)

val finite : t -> bool
(** Whether every stored coordinate, velocity and acceleration is finite
    (no NaN/Inf) — the cheapest corruption screen the invariant guard
    runs after each step. *)
