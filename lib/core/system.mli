(** The simulated collection of atoms, in structure-of-arrays layout.

    SoA is the layout every port in the paper works against: "the positions
    of atoms are usually stored in arrays" — the Opteron walks them
    linearly, the Cell DMAs contiguous spans of them into local stores,
    the GPU uploads them as a texture.  Positions are kept inside the
    periodic box [\[0, box)³] at all times (enforced by {!wrap_atom}). *)

type t = {
  n : int;
  box : float;                  (** cubic box side length *)
  params : Params.t;
  pos_x : float array;
  pos_y : float array;
  pos_z : float array;
  vel_x : float array;
  vel_y : float array;
  vel_z : float array;
  acc_x : float array;
  acc_y : float array;
  acc_z : float array;
}

val create : n:int -> box:float -> params:Params.t -> t
(** Zero-initialized arrays.  Requires [n > 0] and [box >= 2 * cutoff]
    (the minimum-image criterion — with a smaller box an atom would
    interact with two images of the same neighbour). *)

val copy : t -> t

val restore : dst:t -> src:t -> unit
(** Blit all nine arrays of [src] over [dst] (positions, velocities,
    accelerations) — checkpoint/rollback for mid-step device-failure
    recovery.  Requires equal [n]. *)

val position : t -> int -> Vecmath.Vec3.t
val velocity : t -> int -> Vecmath.Vec3.t
val acceleration : t -> int -> Vecmath.Vec3.t
val set_position : t -> int -> Vecmath.Vec3.t -> unit
(** Wraps into the box. *)

val set_velocity : t -> int -> Vecmath.Vec3.t -> unit

val wrap_atom : t -> int -> unit
(** Re-impose periodic boundary conditions on atom [i]'s stored position. *)

val clear_accelerations : t -> unit

val equal_positions : ?eps:float -> t -> t -> bool
val max_position_delta : t -> t -> float
(** Largest absolute componentwise position difference (for port
    tolerance checks); systems must have equal [n]. *)

val max_acceleration_delta : t -> t -> float
val density : t -> float
(** n / box³. *)

val finite : t -> bool
(** Whether every stored coordinate, velocity and acceleration is finite
    (no NaN/Inf) — the cheapest corruption screen the invariant guard
    runs after each step. *)
