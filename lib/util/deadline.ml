exception Expired of float

let () =
  Printexc.register_printer (function
    | Expired budget ->
      Some (Printf.sprintf "Deadline.Expired(%gs wall-clock budget)" budget)
    | _ -> None)

(* Fast path: a single atomic counter of live budgets anywhere in the
   process.  [check] in a tight integration loop must cost one load when no
   deadline is armed, mirroring the disabled paths of Mdobs and Mdfault. *)
let active_budgets = Atomic.make 0

type budget = { expires_at : float; seconds : float }

let key : budget option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = Atomic.get active_budgets > 0

let check () =
  if Atomic.get active_budgets > 0 then
    match !(Domain.DLS.get key) with
    | None -> ()
    | Some b -> if Unix.gettimeofday () > b.expires_at then raise (Expired b.seconds)

let with_budget ~seconds f =
  if not (seconds > 0.0) then
    invalid_arg "Deadline.with_budget: seconds must be positive";
  let slot = Domain.DLS.get key in
  let saved = !slot in
  slot := Some { expires_at = Unix.gettimeofday () +. seconds; seconds };
  Atomic.incr active_budgets;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr active_budgets;
      slot := saved)
    f

let expire_now () =
  let slot = Domain.DLS.get key in
  match !slot with
  | None -> ()
  | Some b -> slot := Some { b with expires_at = neg_infinity }
