(** Per-domain wall-clock budgets for supervised execution.

    A long-running experiment or port run is wrapped in {!with_budget};
    cooperative {!check} calls sprinkled through the hot loops (one per
    Verlet step) raise {!Expired} once the host clock passes the deadline.
    Budgets are domain-local so a pool of harness workers can each carry an
    independent per-experiment deadline; the disabled path is a single
    atomic load, preserving the zero-cost-when-off convention of the
    observability and fault layers.

    Deadlines use the {e host} clock, not simulated device time: the
    supervisor exists to bound real wall-clock spend (hung experiments,
    pathological retry storms), which virtual clocks by construction cannot
    measure. *)

exception Expired of float
(** Raised by {!check} when the current domain's budget (payload: the
    configured budget in seconds) has been exceeded. *)

val with_budget : seconds:float -> (unit -> 'a) -> 'a
(** [with_budget ~seconds f] runs [f] with a deadline [seconds] from now on
    this domain.  Nested budgets shadow (inner wins until it returns).  The
    budget is removed however [f] exits.  Raises [Invalid_argument] unless
    [seconds > 0]. *)

val check : unit -> unit
(** Raise {!Expired} if this domain is past its deadline; free when no
    budget is armed anywhere in the process. *)

val active : unit -> bool
(** Whether any domain currently holds a budget. *)

val expire_now : unit -> unit
(** Force this domain's current budget (if any) to be already expired — the
    next {!check} raises.  Test hook: lets suites exercise expiry without
    sleeping. *)
