type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "offset %d: %s" st.pos msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then (
    st.pos <- st.pos + n;
    value)
  else error st (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar value as UTF-8 into [buf]. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then (
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F))))
  else if u < 0x10000 then (
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F))))
  else (
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F))))

let hex4 st =
  if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match st.src.[st.pos] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> error st "invalid hex digit in \\u escape"
    in
    v := (!v * 16) + d;
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let u = hex4 st in
                if u >= 0xD800 && u <= 0xDBFF then
                  (* high surrogate: require the low half *)
                  if
                    st.pos + 2 <= String.length st.src
                    && st.src.[st.pos] = '\\'
                    && st.src.[st.pos + 1] = 'u'
                  then (
                    st.pos <- st.pos + 2;
                    let lo = hex4 st in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      error st "invalid low surrogate"
                    else
                      add_utf8 buf
                        (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)))
                  else error st "unpaired high surrogate"
                else if u >= 0xDC00 && u <= 0xDFFF then
                  error st "unpaired low surrogate"
                else add_utf8 buf u
            | _ -> error st "invalid escape character");
            loop ())
    | Some c when Char.code c < 0x20 -> error st "control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let n = String.length st.src in
  if peek st = Some '-' then advance st;
  (* RFC 8259 integer part: "0" or a nonzero-led digit run.  A leading
     zero followed by another digit ("01") is not a valid number, and
     [float_of_string] would accept it, so check here. *)
  (match (peek st, if st.pos + 1 < n then Some st.src.[st.pos + 1] else None)
   with
  | Some '0', Some '0' .. '9' -> error st "leading zero in number"
  | _ -> ());
  while
    st.pos < n
    &&
    match st.src.[st.pos] with
    | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
    | _ -> false
  do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> error st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then (
    advance st;
    Obj [])
  else
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          members ((key, v) :: acc)
      | Some '}' ->
          advance st;
          Obj (List.rev ((key, v) :: acc))
      | _ -> error st "expected ',' or '}'"
    in
    members []

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then (
    advance st;
    List [])
  else
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          elements (v :: acc)
      | Some ']' ->
          advance st;
          List (List.rev (v :: acc))
      | _ -> error st "expected ',' or ']'"
    in
    elements []

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then error st "trailing content";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj o -> Some o | _ -> None
