type t = { mutable state : int64; mutable cached_gauss : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.of_int seed; cached_gauss = None }

let copy t = { state = t.state; cached_gauss = t.cached_gauss }

type state = { bits : int64; cached : float option }

let state t = { bits = t.state; cached = t.cached_gauss }
let of_state s = { state = s.bits; cached_gauss = s.cached }

let set_state t s =
  t.state <- s.bits;
  t.cached_gauss <- s.cached

(* SplitMix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed; cached_gauss = None }

(* Largest exact multiple of [n] not exceeding [range]: accepting only
   draws strictly below it leaves every residue class the same number of
   accepted values.  An inclusive bound derived from [range - 1] would
   accept one extra value and overweight residue 0. *)
let rejection_limit ~range n = Int64.mul n (Int64.div range n)

let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: bound must be positive";
  (* Rejection sampling over the top 62 bits avoids modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let n64 = Int64.of_int n in
  let lim = rejection_limit ~range:(Int64.add mask 1L) n64 in
  let rec draw () =
    let raw = Int64.logand (next_int64 t) mask in
    if raw >= lim then draw () else Int64.to_int (Int64.rem raw n64)
  in
  draw ()

let float t =
  (* 53 high bits give a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let gaussian t =
  match t.cached_gauss with
  | Some g ->
    t.cached_gauss <- None;
    g
  | None ->
    let rec draw () =
      let u = uniform t (-1.0) 1.0 and v = uniform t (-1.0) 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then draw ()
      else begin
        let scale = sqrt (-2.0 *. log s /. s) in
        t.cached_gauss <- Some (v *. scale);
        u *. scale
      end
    in
    draw ()

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
