(** Perf-regression gating: compare a fresh benchmark run against a
    committed baseline with per-entry relative tolerances.

    A baseline file is JSON in one of two shapes:

    - a dedicated baseline (schema ["mdsim-bench-baseline-v1"]) with
      [entries_ns], an optional [default_tolerance], and optional
      per-entry [tolerances] overrides;
    - any [BENCH_results.json] (schema ["mdsim-bench-v1"] or
      ["mdsim-bench-v2"]), whose [results_ns] map is taken as the
      baseline with the default tolerance throughout.

    A measured entry {e regresses} when
    [measured > baseline *. (1. +. tolerance)]; tolerance [9.0] means
    "up to 10x slower passes" — deliberately generous for noisy CI
    runners.  Entries present in the baseline but absent from the run
    (or vice versa) are reported as notes, not failures, so partial
    runs ([MDSIM_BENCH_SKIP_REPRO=1]) still gate cleanly. *)

type baseline = {
  schema : string;
  default_tolerance : float;
  entries : (string * float * float) list;
      (** (name, baseline_ns, tolerance) sorted by name *)
}

type status = Pass | Regression | Improvement

type comparison = {
  name : string;
  baseline_ns : float;
  measured_ns : float;
  tolerance : float;
  ratio : float;  (** measured / baseline *)
  status : status;
}

type outcome = {
  comparisons : comparison list;  (** sorted by name *)
  missing : string list;  (** in baseline, not measured *)
  unbaselined : string list;  (** measured, not in baseline *)
  failed : bool;  (** true iff any comparison regressed *)
}

val parse_baseline :
  ?default_tolerance:float -> string -> (baseline, string) result
(** Parse baseline JSON text.  [default_tolerance] (default [9.0])
    applies where the file does not override it. *)

val load_baseline :
  ?default_tolerance:float -> string -> (baseline, string) result
(** [parse_baseline] on a file path. *)

val compare : baseline -> (string * float) list -> outcome
(** Compare measured (name, ns) rows against the baseline.  An entry
    at least 2x {e faster} than baseline is flagged [Improvement] — a
    hint to refresh the baseline — but never fails the check. *)

val render : outcome -> string
(** Human-readable diff: one row per comparison with the allowed and
    observed ratios, regressions marked, notes for missing entries. *)
