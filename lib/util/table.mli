(** Plain-text and CSV rendering for experiment results.

    Every reproduced table/figure is ultimately a small grid of labelled
    numbers; this module renders them in the same row/series layout the
    paper uses so outputs can be compared side by side. *)

type align = Left | Right

type t
(** A table under construction: a header row plus data rows. *)

val create : headers:string list -> t
(** [create ~headers] starts a table.  Every subsequently added row must
    have exactly as many cells as there are headers. *)

val add_row : t -> string list -> unit
val add_float_row : t -> string -> ?fmt:(float -> string) -> float list -> unit
(** [add_float_row t label xs] adds a row whose first cell is [label] and
    remaining cells are formatted floats (default: 4 significant digits). *)

val row_count : t -> int

val headers : t -> string list
val rows : t -> string list list
(** Raw cells in insertion order — used by the harness manifest to persist
    completed tables verbatim. *)

val of_rows : headers:string list -> string list list -> t
(** Rebuild a table from {!headers}/{!rows} output.  Raises
    [Invalid_argument] on ragged rows, like {!add_row}. *)

val render : ?aligns:align list -> t -> string
(** Fixed-width text rendering with a header separator.  [aligns] defaults
    to left for the first column and right for the rest. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines). *)

val to_markdown : t -> string
(** GitHub-flavoured Markdown table (pipes in cells are escaped). *)

val fmt_seconds : float -> string
(** Human-readable time: "123.4 us", "45.67 ms", "1.234 s". *)

val fmt_sig4 : float -> string
(** Four significant digits. *)
