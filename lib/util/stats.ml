let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty array")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let minimum xs =
  require_nonempty "Stats.minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  require_nonempty "Stats.maximum" xs;
  Array.fold_left max xs.(0) xs

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort Float.compare c;
  c

let percentile xs p =
  require_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let s = sorted_copy xs in
  let n = Array.length s in
  if n = 1 then s.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

let median xs = percentile xs 50.0

type linear_fit = { slope : float; intercept : float; r2 : float }

let linear_regression ~x ~y =
  let n = Array.length x in
  if n <> Array.length y then
    invalid_arg "Stats.linear_regression: length mismatch";
  if n < 2 then invalid_arg "Stats.linear_regression: need at least 2 points";
  let fx = mean x and fy = mean y in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = x.(i) -. fx and dy = y.(i) -. fy in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 then invalid_arg "Stats.linear_regression: x is constant";
  let slope = !sxy /. !sxx in
  let intercept = fy -. (slope *. fx) in
  let r2 = if !syy = 0.0 then 1.0 else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

let power_law_exponent ~x ~y =
  let check name v =
    if v <= 0.0 then invalid_arg ("Stats.power_law_exponent: nonpositive " ^ name)
  in
  Array.iter (check "x") x;
  Array.iter (check "y") y;
  let lx = Array.map log x and ly = Array.map log y in
  (linear_regression ~x:lx ~y:ly).slope

let geometric_mean xs =
  require_nonempty "Stats.geometric_mean" xs;
  Array.iter (fun v ->
      if v <= 0.0 then invalid_arg "Stats.geometric_mean: nonpositive value")
    xs;
  exp (mean (Array.map log xs))

let relative_error ~expected ~actual =
  if expected = 0.0 then invalid_arg "Stats.relative_error: expected = 0";
  abs_float (actual -. expected) /. abs_float expected
