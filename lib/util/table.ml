type align = Left | Right

type t = { headers : string list; mutable rows : string list list }

let create ~headers =
  if headers = [] then invalid_arg "Table.create: no headers";
  { headers; rows = [] }

let width t = List.length t.headers

let add_row t cells =
  if List.length cells <> width t then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" (width t)
         (List.length cells));
  t.rows <- t.rows @ [ cells ]

let fmt_sig4 x =
  if x = 0.0 then "0"
  else if Float.is_nan x then "nan"
  else if Float.is_integer x && abs_float x < 1e7 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let fmt_seconds s =
  let a = abs_float s in
  if a = 0.0 then "0 s"
  else if a < 1e-6 then Printf.sprintf "%.1f ns" (s *. 1e9)
  else if a < 1e-3 then Printf.sprintf "%.2f us" (s *. 1e6)
  else if a < 1.0 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else Printf.sprintf "%.3f s" s

let add_float_row t label ?(fmt = fmt_sig4) xs =
  add_row t (label :: List.map fmt xs)

let row_count t = List.length t.rows
let headers t = t.headers
let rows t = t.rows

let of_rows ~headers rows =
  let t = create ~headers in
  List.iter (add_row t) rows;
  t

let default_aligns t = Left :: List.init (width t - 1) (fun _ -> Right)

let render ?aligns t =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> width t then
        invalid_arg "Table.render: aligns length mismatch";
      a
    | None -> default_aligns t
  in
  let all = t.headers :: t.rows in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map (fun _ -> 0) t.headers)
      all
  in
  let pad align w c =
    let fill = String.make (w - String.length c) ' ' in
    match align with Left -> c ^ fill | Right -> fill ^ c
  in
  let render_row row =
    let cells =
      List.map2 (fun (a, w) c -> pad a w c) (List.combine aligns widths) row
    in
    String.concat "  " cells
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row t.headers :: sep :: List.map render_row t.rows)

let to_markdown t =
  let escape c =
    String.concat "\\|" (String.split_on_char '|' c)
  in
  let line row = "| " ^ String.concat " | " (List.map escape row) ^ " |" in
  let sep =
    "|" ^ String.concat "|" (List.map (fun _ -> "---") t.headers) ^ "|"
  in
  String.concat "\n" (line t.headers :: sep :: List.map line t.rows) ^ "\n"

let csv_cell c =
  let needs_quote =
    String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c
  in
  if needs_quote then begin
    let buf = Buffer.create (String.length c + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf ch)
      c;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else c

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (List.map line (t.headers :: t.rows)) ^ "\n"
