type baseline = {
  schema : string;
  default_tolerance : float;
  entries : (string * float * float) list;
}

type status = Pass | Regression | Improvement

type comparison = {
  name : string;
  baseline_ns : float;
  measured_ns : float;
  tolerance : float;
  ratio : float;
  status : status;
}

type outcome = {
  comparisons : comparison list;
  missing : string list;
  unbaselined : string list;
  failed : bool;
}

let known_schemas =
  [ "mdsim-bench-baseline-v1"; "mdsim-bench-v1"; "mdsim-bench-v2" ]

let parse_baseline ?(default_tolerance = 9.0) text =
  match Minijson.parse text with
  | exception Minijson.Parse_error msg -> Error ("invalid JSON: " ^ msg)
  | json -> (
      let schema =
        Option.bind (Minijson.member "schema" json) Minijson.to_string
        |> Option.value ~default:"(missing)"
      in
      if not (List.mem schema known_schemas) then
        Error
          (Printf.sprintf "unrecognized baseline schema %S (expected one of %s)"
             schema
             (String.concat ", " known_schemas))
      else
        let default_tolerance =
          Option.bind (Minijson.member "default_tolerance" json)
            Minijson.to_float
          |> Option.value ~default:default_tolerance
        in
        let overrides =
          Option.bind (Minijson.member "tolerances" json) Minijson.to_obj
          |> Option.value ~default:[]
          |> List.filter_map (fun (k, v) ->
                 Option.map (fun f -> (k, f)) (Minijson.to_float v))
        in
        let entries_field =
          match Minijson.member "entries_ns" json with
          | Some o -> Some o
          | None -> Minijson.member "results_ns" json
        in
        match Option.bind entries_field Minijson.to_obj with
        | None -> Error "baseline has no entries_ns/results_ns object"
        | Some fields ->
            let entries =
              List.filter_map
                (fun (name, v) ->
                  Option.map
                    (fun ns ->
                      let tol =
                        Option.value
                          (List.assoc_opt name overrides)
                          ~default:default_tolerance
                      in
                      (name, ns, tol))
                    (Minijson.to_float v))
                fields
              |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
            in
            if entries = [] then Error "baseline has no numeric entries"
            else Ok { schema; default_tolerance; entries })

let load_baseline ?default_tolerance path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> parse_baseline ?default_tolerance text

let compare baseline measured =
  let measured_tbl = Hashtbl.create 64 in
  List.iter (fun (n, ns) -> Hashtbl.replace measured_tbl n ns) measured;
  let comparisons =
    List.filter_map
      (fun (name, baseline_ns, tolerance) ->
        match Hashtbl.find_opt measured_tbl name with
        | None -> None
        | Some measured_ns ->
            let ratio =
              if baseline_ns > 0. then measured_ns /. baseline_ns else infinity
            in
            let status =
              if measured_ns > baseline_ns *. (1. +. tolerance) then Regression
              else if ratio < 0.5 then Improvement
              else Pass
            in
            Some { name; baseline_ns; measured_ns; tolerance; ratio; status })
      baseline.entries
  in
  let missing =
    List.filter_map
      (fun (name, _, _) ->
        if Hashtbl.mem measured_tbl name then None else Some name)
      baseline.entries
  in
  let baseline_names =
    List.map (fun (n, _, _) -> n) baseline.entries
  in
  let unbaselined =
    List.filter (fun (n, _) -> not (List.mem n baseline_names)) measured
    |> List.map fst
    |> List.sort String.compare
  in
  let failed = List.exists (fun c -> c.status = Regression) comparisons in
  { comparisons; missing; unbaselined; failed }

let fmt_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let render outcome =
  let b = Buffer.create 2048 in
  Buffer.add_string b "== bench --check: measured vs baseline ==\n";
  List.iter
    (fun c ->
      let mark =
        match c.status with
        | Regression -> "REGRESSION"
        | Improvement -> "improved"
        | Pass -> "ok"
      in
      Buffer.add_string b
        (Printf.sprintf "  %-44s %10s vs %10s  %5.2fx (allowed %.2fx)  %s\n"
           c.name (fmt_ns c.measured_ns) (fmt_ns c.baseline_ns) c.ratio
           (1. +. c.tolerance) mark))
    outcome.comparisons;
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "  note: baseline entry %S not measured this run\n" n))
    outcome.missing;
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "  note: measured entry %S has no baseline\n" n))
    outcome.unbaselined;
  let n_reg =
    List.length
      (List.filter (fun c -> c.status = Regression) outcome.comparisons)
  in
  Buffer.add_string b
    (if outcome.failed then
       Printf.sprintf "FAIL: %d of %d compared entries regressed beyond tolerance\n"
         n_reg
         (List.length outcome.comparisons)
     else
       Printf.sprintf "PASS: %d compared entries within tolerance\n"
         (List.length outcome.comparisons));
  Buffer.contents b
