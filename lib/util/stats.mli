(** Small statistics toolkit used by the experiment harness to summarize
    runtimes and to check scaling *shapes* (e.g. "MTA-2 runtime grows as
    N^2 while the Opteron grows faster") via regression in log space. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for arrays of length <2. *)

val stddev : float array -> float
val minimum : float array -> float
val maximum : float array -> float

val sorted_copy : float array -> float array
(** Ascending copy ordered by [Float.compare] (total: [-0.] before [0.],
    NaNs first), leaving the input untouched. *)

val median : float array -> float
(** Median by sorting a copy; average of the middle two for even lengths. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics. *)

type linear_fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination *)
}

val linear_regression : x:float array -> y:float array -> linear_fit
(** Ordinary least squares fit of [y = slope*x + intercept]. *)

val power_law_exponent : x:float array -> y:float array -> float
(** Exponent [k] of the best fit [y = c * x^k], i.e. the slope of the
    log-log regression.  Inputs must be strictly positive. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values. *)

val relative_error : expected:float -> actual:float -> float
(** |actual - expected| / |expected|. *)
