(** Deterministic pseudo-random number generation.

    All stochastic components of the simulators (initial velocities,
    placement jitter, sampled address traces) draw from this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    splittable, 64-bit state generator with good statistical quality and an
    exactly specified output sequence, which makes cross-run determinism a
    testable property. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds produce equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay [t]'s future
    stream. *)

type state = { bits : int64; cached : float option }
(** Complete serializable snapshot of a generator: the SplitMix64 counter
    and the Box–Muller cached deviate.  Restoring both is required for
    bitwise replay — dropping the cache would shift every subsequent
    {!gaussian} draw by one. *)

val state : t -> state
(** [state t] captures [t]'s position in its stream. *)

val of_state : state -> t
(** [of_state s] is a generator that resumes exactly at [s]. *)

val set_state : t -> state -> unit
(** [set_state t s] rewinds (or fast-forwards) [t] to [s] in place. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t].  Used to give each subsystem its own stream so that adding draws in
    one subsystem does not perturb another. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int_below : t -> int -> int
(** [int_below t n] is uniform in [\[0, n)].  [n] must be positive.
    Implemented by rejection over the top 62 raw bits: draws at or above
    {!rejection_limit} of the 2{^62} range are redrawn, so no residue is
    overrepresented. *)

val rejection_limit : range:int64 -> int64 -> int64
(** [rejection_limit ~range n] is the largest exact multiple of [n] not
    exceeding [range] — the exclusive acceptance bound used by
    {!int_below}.  Exposed so tests can check the bound on small ranges
    where the bias of an off-by-one is observable. *)

val float : t -> float
(** Uniform in [\[0, 1)], with 53 random bits. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller; draws are cached pairwise). *)

val gaussian_scaled : t -> mean:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle driven by [t]. *)
