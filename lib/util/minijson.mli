(** A minimal JSON parser for reading our own artifacts
    (bench baselines, counters profiles) without an external
    dependency.  Full RFC 8259 value grammar; numbers are parsed as
    [float]; surrogate-pair escapes are decoded to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised with a [position: message] description. *)

val parse : string -> t
(** Parse a complete JSON document; trailing non-whitespace is an
    error. *)

val member : string -> t -> t option
(** First binding of a key in an [Obj]; [None] on missing key or
    non-object. *)

val to_float : t -> float option
val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
